// Dsm: distributed shared memory between two SPIN kernels, built entirely
// from extensions — the paper's §4.1 names DSM (after Munin) among the
// services implementable from the Translation events.
//
// Node 0 is the home: it keeps the directory. Reads replicate pages;
// a write invalidates every other copy before it is granted. Coherence
// messages ride the RPC extension over simulated Ethernet.
//
// Run with: go run ./examples/dsm
package main

import (
	"fmt"
	"log"

	"spin"
	"spin/internal/dsm"
	"spin/internal/netstack"
	"spin/internal/sal"
	"spin/internal/sim"
	"spin/internal/vm"
)

const pages = 4

func main() {
	cluster := sim.NewCluster()
	var machines []*spin.Machine
	var rpcs []*netstack.RPC
	var addrs []netstack.IPAddr
	for i := 0; i < 2; i++ {
		m, err := spin.NewMachine(fmt.Sprintf("node-%d", i),
			spin.Config{IP: netstack.Addr(10, 0, 9, byte(1+i))})
		if err != nil {
			log.Fatal(err)
		}
		am, err := netstack.NewActiveMessages(m.Stack)
		if err != nil {
			log.Fatal(err)
		}
		cluster.Add(m.Engine)
		machines = append(machines, m)
		rpcs = append(rpcs, netstack.NewRPC(am))
		addrs = append(addrs, m.Stack.IP)
	}
	if err := sal.Connect(machines[0].AddNIC(sal.LanceModel), machines[1].AddNIC(sal.LanceModel)); err != nil {
		log.Fatal(err)
	}

	var nodes []*dsm.Node
	for i, m := range machines {
		ctx := m.VM.TransSvc.Create()
		asid := m.VM.VirtSvc.NewASID()
		region, err := m.VM.VirtSvc.Allocate(asid, pages*sal.PageSize, vm.AnyAttrib)
		if err != nil {
			log.Fatal(err)
		}
		node, err := dsm.NewNode(dsm.Config{
			Index: i, System: m.VM, Ctx: ctx, Region: region,
			RPC: rpcs[i], Peers: addrs, Cluster: cluster,
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, node)
		// Stash for access below.
		ctxs = append(ctxs, ctx)
		regions = append(regions, region)
	}

	access := func(n, page int, write bool) {
		mode := sal.ProtRead
		verb := "read"
		if write {
			mode |= sal.ProtWrite
			verb = "write"
		}
		m := machines[n]
		start := m.Clock.Now()
		addr := regions[n].Start() + uint64(page)*sal.PageSize
		if f, _ := m.VM.Access(ctxs[n], addr, mode); f != nil {
			log.Fatalf("node %d %s page %d: %v", n, verb, page, f.Kind)
		}
		fmt.Printf("node %d %-5s page %d -> %-11s (%8s)\n",
			n, verb, page, nodes[n].ModeOf(page), m.Clock.Now().Sub(start))
	}

	fmt.Println("--- both nodes read page 0: replicated read-shared ---")
	access(0, 0, false)
	access(1, 0, false)

	fmt.Println("--- node 1 writes page 0: node 0's copy is invalidated ---")
	access(1, 0, true)
	fmt.Printf("node 0 now holds page 0 %s (invalidations=%d)\n",
		nodes[0].ModeOf(0), nodes[0].Invalidations)

	fmt.Println("--- node 0 reads again: the writer is downgraded ---")
	access(0, 0, false)
	fmt.Printf("node 1 now holds page 0 %s\n", nodes[1].ModeOf(0))

	fmt.Println("--- ownership ping-pong on page 1 ---")
	for i := 0; i < 4; i++ {
		access(i%2, 1, true)
	}
	if err := nodes[0].DirectoryInvariant(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("directory invariant holds: never a writer alongside readers")
	fmt.Printf("protocol totals: node1 fetches=%d, invalidations=%d+%d, write-upgrades=%d+%d\n",
		nodes[1].Fetches, nodes[0].Invalidations, nodes[1].Invalidations,
		nodes[0].WriteUpgrades, nodes[1].WriteUpgrades)
}

var (
	ctxs    []*vm.Context
	regions []*vm.VirtAddr
)
