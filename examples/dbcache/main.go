// Dbcache: the paper's opening motivation made concrete — "the
// implementations of disk buffering and paging algorithms found in modern
// operating systems can be inappropriate for database applications,
// resulting in poor performance [Stonebraker 81]".
//
// A database extension manages its own buffer pool in physical memory and
// installs a handler on the PhysAddr.Reclaim event. When the kernel needs
// memory back and nominates one of the database's pages, the handler
// consults the database's own priority knowledge — which pages are hot
// index roots and which are cold scan buffers — and volunteers a cold page
// instead. A conventional kernel would evict blindly.
//
// Run with: go run ./examples/dbcache
package main

import (
	"fmt"
	"log"

	"spin"
	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/sal"
	"spin/internal/vm"
)

const poolPages = 16

func main() {
	m, err := spin.NewMachine("dbhost", spin.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// The database's buffer pool: individual page capabilities, so the
	// kernel can reclaim at page granularity.
	type bufPage struct {
		cap  *vm.PhysAddr
		name string
		hot  bool
	}
	var pool []*bufPage
	byCap := make(map[*vm.PhysAddr]*bufPage)
	for i := 0; i < poolPages; i++ {
		p, err := m.VM.PhysSvc.Allocate(sal.PageSize, vm.AnyAttrib)
		if err != nil {
			log.Fatal(err)
		}
		bp := &bufPage{cap: p, name: fmt.Sprintf("page-%02d", i)}
		// The first four pages are index roots: hot.
		bp.hot = i < 4
		pool = append(pool, bp)
		byCap[p] = bp
	}

	// The database's reclaim policy: never give up a hot page while a
	// cold one remains.
	nominations := 0
	_, err = m.Dispatcher.Install(vm.EvReclaim, func(arg, _ any) any {
		candidate, ok := arg.(*vm.PhysAddr)
		if !ok {
			return (*vm.PhysAddr)(nil)
		}
		bp, ours := byCap[candidate]
		if !ours || !bp.hot {
			return (*vm.PhysAddr)(nil) // fine, take it
		}
		// The kernel picked an index root: volunteer a cold page.
		for i := len(pool) - 1; i >= 0; i-- {
			if !pool[i].hot {
				nominations++
				return pool[i].cap
			}
		}
		return (*vm.PhysAddr)(nil)
	}, dispatch.InstallOptions{Installer: domain.Identity{Name: "dbms"}})
	if err != nil {
		log.Fatal(err)
	}

	// Memory pressure: the kernel reclaims eight times, always picking a
	// hot page as its candidate (worst case for the database).
	fmt.Printf("buffer pool: %d pages (%d hot index roots)\n", poolPages, 4)
	survived := func() (hot, cold int) {
		for _, bp := range pool {
			if _, err := m.VM.PhysSvc.IsDirty(bp.cap); err == nil {
				if bp.hot {
					hot++
				} else {
					cold++
				}
			}
		}
		return
	}
	for round := 0; round < 8; round++ {
		candidate := pool[round%4].cap // kernel targets a hot page
		victim, err := m.VM.PhysSvc.Reclaim(candidate)
		if err != nil {
			log.Fatal(err)
		}
		vb := byCap[victim]
		delete(byCap, victim)
		for i, bp := range pool {
			if bp == vb {
				pool = append(pool[:i], pool[i+1:]...)
				break
			}
		}
		fmt.Printf("reclaim %d: kernel wanted %s (hot), database gave up %s (hot=%v)\n",
			round+1, "an index root", vb.name, vb.hot)
	}
	hot, cold := survived()
	fmt.Printf("\nafter pressure: %d hot pages survive, %d cold remain; %d nominations\n",
		hot, cold, nominations)
	if hot == 4 {
		fmt.Println("the database's working set survived — its policy, not the kernel's")
	}
}
