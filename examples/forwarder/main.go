// Forwarder: the paper's protocol-forwarding experiment (§5.3, Table 6).
//
// A middle SPIN machine installs a forwarding node into its protocol stack
// that redirects all data AND control packets for a port to a secondary
// host. Because it intercepts below the transport layer, a TCP connection
// through it is truly end-to-end between client and server — the middle
// host holds no transport state — unlike a user-level socket splice.
//
// Run with: go run ./examples/forwarder
package main

import (
	"fmt"
	"log"

	"spin"
	"spin/internal/netstack"
	"spin/internal/sal"
	"spin/internal/sim"
)

func main() {
	client := boot("client", netstack.Addr(10, 0, 0, 1))
	mid := boot("mid", netstack.Addr(10, 0, 0, 2))
	server := boot("server", netstack.Addr(10, 0, 0, 3))

	// client <-> mid <-> server over Ethernet.
	cNIC := client.AddNIC(sal.LanceModel)
	m1 := mid.AddNIC(sal.LanceModel)
	m2 := mid.AddNIC(sal.LanceModel)
	sNIC := server.AddNIC(sal.LanceModel)
	must(sal.Connect(cNIC, m1))
	must(sal.Connect(m2, sNIC))
	mid.Stack.AddRoute(client.Stack.IP, m1)
	mid.Stack.AddRoute(server.Stack.IP, m2)

	// Install the in-kernel forwarding extension for TCP port 80 on mid:
	// traffic to mid:80 lands on the server; replies are masqueraded.
	fwd, err := netstack.NewForwarder(mid.Stack, netstack.ProtoTCP, 80, server.Stack.IP)
	must(err)
	rev, err := netstack.NewReverseForwarder(mid.Stack, netstack.ProtoTCP, 80, server.Stack.IP, client.Stack.IP)
	must(err)

	// The real server lives behind the forwarder.
	srv, err := netstack.NewHTTPServer(server.Stack, 80, netstack.InKernelDelivery,
		netstack.ContentMap{"/": []byte("served from 10.0.0.3 via the forwarder on 10.0.0.2")})
	must(err)

	// The client talks to MID's address; it never learns the server's.
	var body []byte
	done := false
	must(netstack.HTTPGet(client.Stack, mid.Stack.IP, 80, "/", netstack.InKernelDelivery,
		func(status string, b []byte) {
			body = b
			done = true
		}))

	cluster := sim.NewCluster(client.Engine, mid.Engine, server.Engine)
	if !cluster.RunUntil(func() bool { return done }, 0) {
		log.Fatal("transaction never completed")
	}

	fmt.Printf("client asked %v for /, got: %q\n", mid.Stack.IP, body)
	fmt.Printf("packets forwarded: %d inbound, %d return\n", fwd.Forwarded, rev.Forwarded)
	fmt.Printf("server handled %d request(s)\n", srv.Requests)
	fmt.Printf("TCP state on the middle host: %d connections — end-to-end semantics preserved\n",
		mid.Stack.TCP().Conns())
}

func boot(name string, ip netstack.IPAddr) *spin.Machine {
	m, err := spin.NewMachine(name, spin.Config{IP: ip})
	must(err)
	return m
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
