// Webserver: the paper's §5.4 web-server experiment as a runnable example.
//
// A SPIN web server controls its own caching policy — LRU for small files,
// no-cache for large files — and, because the large-file path reads through
// the file system's non-caching interface, it also avoids double buffering.
// The HTTP protocol engine runs entirely in the kernel, splicing the
// protocol stack to the file system.
//
// Run with: go run ./examples/webserver
package main

import (
	"fmt"
	"log"
	"strings"

	"spin"
	"spin/internal/fs"
	"spin/internal/netstack"
	"spin/internal/sal"
	"spin/internal/sim"
)

func main() {
	server, err := spin.NewMachine("www", spin.Config{IP: netstack.Addr(10, 0, 0, 2)})
	if err != nil {
		log.Fatal(err)
	}
	client, err := spin.NewMachine("browser", spin.Config{IP: netstack.Addr(10, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	if err := sal.Connect(server.AddNIC(sal.ForeModel), client.AddNIC(sal.ForeModel)); err != nil {
		log.Fatal(err)
	}
	cluster := sim.NewCluster(server.Engine, client.Engine)

	// Publish a small site plus one large object.
	site := map[string]string{
		"/index.html": strings.Repeat("<p>spin</p>", 200), // ~2 KB: cached
		"/logo.png":   strings.Repeat("\x89PNG", 800),     // ~3 KB: cached
		"/dist.tar":   strings.Repeat("tarball-", 20_000), // 160 KB: no-cache
	}
	for path, body := range site {
		if err := server.FS.Create(path, []byte(body)); err != nil {
			log.Fatal(err)
		}
	}
	cache := fs.NewWebCache(server.FS, 128<<10, 64<<10)
	if _, err := netstack.NewHTTPServer(server.Stack, 80, netstack.InKernelDelivery, cache); err != nil {
		log.Fatal(err)
	}

	get := func(path string) (sim.Duration, int) {
		done := false
		var size int
		start := client.Clock.Now()
		err := netstack.HTTPGet(client.Stack, server.Stack.IP, 80, path,
			netstack.InKernelDelivery, func(_ string, body []byte) {
				size = len(body)
				done = true
			})
		if err != nil {
			log.Fatal(err)
		}
		if !cluster.RunUntil(func() bool { return done }, 0) {
			log.Fatalf("GET %s never completed", path)
		}
		return client.Clock.Now().Sub(start), size
	}

	fmt.Println("in-kernel web server with hybrid cache (LRU small / no-cache large)")
	for _, path := range []string{"/index.html", "/index.html", "/logo.png", "/logo.png", "/dist.tar", "/dist.tar"} {
		lat, size := get(path)
		state := "no-cache"
		if cache.Cached(path) {
			state = "cached"
		}
		fmt.Printf("GET %-12s -> %6d bytes in %10v  [%s]\n", path, size, lat, state)
	}
	bufHits, bufMisses := server.FS.CacheStats()
	fmt.Printf("\nweb cache: %d hits / %d misses / %d large bypasses; buffer cache: %d hits / %d misses\n",
		cache.Hits, cache.Misses, cache.LargeReads, bufHits, bufMisses)
	fmt.Println("note: the large object never occupies either cache — no double buffering")
}
