// Quickstart: boot a SPIN kernel, dynamically link an extension into it,
// and watch the extension interact with the system through events.
//
// The extension below is the paper's Figure 1 scenario: a Gatekeeper module
// that imports the Console interface through the in-kernel nameserver and
// dynamic linker, plus an application-specific system call installed as a
// guarded handler on the Trap.SystemCall event.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spin"
	"spin/internal/domain"
	"spin/internal/safe"
)

func main() {
	// Boot a SPIN kernel on simulated Alpha-like hardware.
	machine, err := spin.NewMachine("quickstart", spin.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("booted", machine.Name, "at virtual time", machine.Clock.Now())

	// --- 1. Dynamic linking: the Gatekeeper extension ----------------
	//
	// The extension is packaged as a safe object file: it imports
	// Console.Write (to be patched by the in-kernel linker) and exports
	// its own entry point. The compiler signature stands in for
	// Modula-3's type-safety certification.
	var consoleWrite func(string)
	gatekeeper := safe.NewObjectFile("Gatekeeper").
		Import("Console.Write", &consoleWrite).
		Export("Gatekeeper.IntruderAlert", func() {
			consoleWrite("Intruder Alert!\n")
		}).
		Sign(safe.Compiler)

	dom, err := machine.LoadExtension(gatekeeper)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("linked extension into domain:", dom.Name(), "resolved:", dom.FullyResolved())

	// Call through the freshly patched symbol — a cross-domain call at
	// procedure-call cost.
	alert, _ := dom.LookupExport("Gatekeeper.IntruderAlert")
	alert.Value.Interface().(func())()
	fmt.Printf("console output: %q\n", machine.Console.Output())

	// --- 2. Type safety: a rogue extension is refused -----------------
	var wrongType func(int) int // Console.Write is func(string)
	rogue := safe.NewObjectFile("Rogue").
		Import("Console.Write", &wrongType).
		Sign(safe.Compiler)
	if _, err := machine.LoadExtension(rogue); err != nil {
		fmt.Println("rogue extension rejected:", err)
	}

	// An unsigned object never reaches the linker at all.
	unsigned := safe.NewObjectFile("Unsigned").Sign(safe.Unsigned)
	if _, err := machine.LoadExtension(unsigned); err != nil {
		fmt.Println("unsigned extension rejected:", err)
	}

	// --- 3. An application-specific system call -----------------------
	//
	// Extensions define new system calls by installing guarded handlers
	// on the trap event; applications then reach them with ordinary
	// system-call cost.
	calls := 0
	if _, err := machine.RegisterSyscall("gatekeeper.stats",
		domain.Identity{Name: "gatekeeper"},
		func(arg any) any {
			calls++
			return fmt.Sprintf("alerts=%d", calls)
		}); err != nil {
		log.Fatal(err)
	}
	before := machine.Clock.Now()
	result := machine.Syscall("gatekeeper.stats", nil)
	fmt.Printf("syscall result: %v (cost %v)\n", result, machine.Clock.Now().Sub(before))
	fmt.Println("extensions loaded:", machine.Extensions())
}
