// Videoserver: the paper's client/server video system (§1.2, §5.4).
//
// The server is structured as kernel extensions: one reads video frames
// from the file system, one sends them over the network, and one installs a
// handler on the SendPacket event that transforms a single send into a
// multicast to the client list. Each client machine installs an extension
// that receives video packets in the kernel, decompresses them, and writes
// them to the frame buffer — no user/kernel data crossings anywhere.
//
// Run with: go run ./examples/videoserver
package main

import (
	"fmt"
	"log"

	"spin"
	"spin/internal/netstack"
	"spin/internal/sal"
	"spin/internal/sim"
)

const (
	clients   = 4
	frames    = 90 // 3 seconds at 30 fps
	frameSize = 4096
	videoPort = 6000
)

func main() {
	server, err := spin.NewMachine("video-server", spin.Config{IP: netstack.Addr(10, 1, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	engines := []*sim.Engine{server.Engine}

	// Store the "movie" on the server's disk and read frames through the
	// file system extension.
	movie := make([]byte, frames*frameSize)
	for i := range movie {
		movie[i] = byte(i)
	}
	if err := server.FS.Create("/movie.mjpeg", movie); err != nil {
		log.Fatal(err)
	}
	source := func(n int) []byte {
		data, err := server.FS.Read("/movie.mjpeg")
		if err != nil {
			return nil
		}
		off := n * frameSize
		return data[off : off+frameSize]
	}
	vs, err := netstack.NewVideoServer(server.Stack, videoPort, source)
	if err != nil {
		log.Fatal(err)
	}

	// Attach client machines over T3 links and install the viewer
	// extension on each.
	var viewers []*netstack.VideoClient
	for i := 0; i < clients; i++ {
		viewer, err := spin.NewMachine(fmt.Sprintf("viewer-%d", i),
			spin.Config{IP: netstack.Addr(10, 1, 0, byte(10+i))})
		if err != nil {
			log.Fatal(err)
		}
		srvNIC := server.AddNIC(sal.T3Model)
		if err := sal.Connect(srvNIC, viewer.AddNIC(sal.T3Model)); err != nil {
			log.Fatal(err)
		}
		server.Stack.AddRoute(viewer.Stack.IP, srvNIC)
		vc, err := netstack.NewVideoClient(viewer.Stack, videoPort)
		if err != nil {
			log.Fatal(err)
		}
		vs.Subscribe(viewer.Stack.IP)
		viewers = append(viewers, vc)
		engines = append(engines, viewer.Engine)
	}

	// Stream at 30 fps of virtual time.
	const interval = sim.Duration(33333333) // ~1/30 s
	for f := 0; f < frames; f++ {
		f := f
		server.Engine.At(sim.Time(f)*sim.Time(interval), func() { vs.SendFrame(f) })
	}
	start := server.Clock.Now()
	server.Clock.ResetBusy()
	sim.NewCluster(engines...).Run(0)

	fmt.Printf("streamed %d frames to %d clients in %v of virtual time\n",
		vs.FramesSent, vs.Clients(), server.Clock.Now().Sub(start))
	fmt.Printf("stack traversals: %d (one per frame); driver sends: %d (one per client per frame)\n",
		vs.FramesSent, vs.PacketsSent)
	fmt.Printf("server CPU utilization: %.1f%%\n", 100*server.Clock.Utilization(start))
	for i, vc := range viewers {
		fmt.Printf("viewer-%d displayed %d frames (last=%d)\n", i, vc.FramesShown, vc.LastFrame)
	}
}
