// Unixserver: a miniature of the paper's UNIX server (§1.2, §4.1, §4.2).
//
// The bulk of the paper's UNIX server is ordinary user-space code; what it
// needs from SPIN is a small set of extensions providing threads, virtual
// memory and device interfaces. This example builds those extensions: a
// UNIX address-space abstraction with copy-on-write fork on top of the
// decomposed VM services, backed by the strand scheduler's thread package,
// and exercises a fork/exec-ish workload.
//
// Run with: go run ./examples/unixserver
package main

import (
	"fmt"
	"log"

	"spin"
	"spin/internal/domain"
	"spin/internal/sal"
	"spin/internal/strand"
	"spin/internal/unixsrv"
	"spin/internal/vm"
)

func main() {
	m, err := spin.NewMachine("unix-server", spin.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// --- The process abstraction, built from the core services --------
	ident := domain.Identity{Name: "unix-server"}
	parent := vm.NewAddressSpace(m.VM, ident)
	text, err := parent.AllocateMemory(4*sal.PageSize, sal.ProtRead|sal.ProtExec)
	if err != nil {
		log.Fatal(err)
	}
	data, err := parent.AllocateMemory(8*sal.PageSize, sal.ProtRead|sal.ProtWrite)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("init: text @%#x (%d pages, r-x), data @%#x (%d pages, rw-)\n",
		text.Start(), text.Pages(), data.Start(), data.Pages())

	// Touch the data segment so there is state to share.
	for i := 0; i < data.Pages(); i++ {
		if f, _ := m.VM.Access(parent.Ctx, data.Start()+uint64(i)*sal.PageSize, sal.ProtWrite); f != nil {
			log.Fatalf("init write fault: %v", f.Kind)
		}
	}

	// fork(): copy the address space with copy-on-write sharing.
	child, err := parent.Copy(domain.Identity{Name: "child"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fork: child shares all frames copy-on-write")

	// The child writes two pages: each write faults once, the handler
	// gives it private copies; the parent's view is untouched.
	for i := 0; i < 2; i++ {
		if f, _ := m.VM.Access(child.Ctx, data.Start()+uint64(i)*sal.PageSize, sal.ProtWrite); f != nil {
			log.Fatalf("child write fault unresolved: %v", f.Kind)
		}
	}
	pf, _ := m.VM.TransSvc.FrameOf(parent.Ctx, data, 0)
	cf, _ := m.VM.TransSvc.FrameOf(child.Ctx, data, 0)
	fmt.Printf("after child writes: COW faults=%d; page0 frames parent=%d child=%d (split)\n",
		child.CowFaults, pf, cf)
	pf2, _ := m.VM.TransSvc.FrameOf(parent.Ctx, data, 3)
	cf2, _ := m.VM.TransSvc.FrameOf(child.Ctx, data, 3)
	fmt.Printf("untouched page3 frames parent=%d child=%d (still shared)\n", pf2, cf2)

	// --- Threads: the server's concurrency, on the strand interface ---
	pkg := m.Threads
	results := make([]int, 3)
	pkg.Fork("boot", func() {
		var workers []*strand.Thread
		for i := range results {
			i := i
			workers = append(workers, pkg.Fork(fmt.Sprintf("worker-%d", i), func() {
				results[i] = i * i
			}))
		}
		for _, w := range workers {
			pkg.Join(w)
		}
	})
	m.Sched.Run()
	fmt.Println("worker results:", results)
	fmt.Printf("context switches: %d, virtual time: %v\n", m.Sched.Switches(), m.Clock.Now())

	parent.Destroy()
	child.Destroy()
	fmt.Println("address spaces destroyed; free pages:", m.VM.PhysSvc.FreePages())

	// --- The full UNIX server: processes with fork/wait and file I/O ---
	srv := m.NewUnixServer()
	srv.Spawn("init", func(p *unixsrv.Process) {
		_, _ = p.Write(1, []byte("init: booting userland\n"))
		pid, err := p.Fork(func(sh *unixsrv.Process) {
			fd, _ := sh.Open("/etc/motd", true, true)
			_, _ = sh.Write(fd, []byte("Welcome to SPIN/UNIX"))
			_ = sh.Close(fd)
			_, _ = sh.Write(1, []byte(fmt.Sprintf("sh(pid %d): wrote /etc/motd\n", sh.Getpid())))
			sh.Exit(0)
		})
		if err != nil {
			log.Fatal(err)
		}
		_, code, _ := p.Wait()
		fd, _ := p.Open("/etc/motd", false, false)
		motd, _ := p.Read(fd, 100)
		_, _ = p.Write(1, []byte(fmt.Sprintf("init: child %d exited %d; motd=%q\n", pid, code, motd)))
	})
	srv.Run()
	fmt.Print(m.Console.Output())
	fmt.Printf("UNIX server done at virtual time %v\n", m.Clock.Now())
}
