package bcode

import (
	"bytes"
	"errors"
	"testing"
)

// The verifier is an untrusted-input boundary exactly like the packet and
// DNS decoders: arbitrary bytes arrive claiming to be a program, and the
// whole safety story rests on Verify either rejecting them or guaranteeing
// they run bounded and fault-free. FuzzVerify drives random encodings
// through Decode+Verify and executes every accepted program under a
// step-budget watchdog; any runtime fault, budget overrun, or
// interpreter/compiler divergence on an accepted program is a soundness
// bug, not bad input.

func fuzzSpec() Spec { return Spec{Words: 8} }

// fuzzContexts are the execution environments every accepted program runs
// under: empty, short, and realistically sized byte regions.
func fuzzContexts() []*Context {
	small := &Context{Bytes: []byte{0x45}}
	full := &Context{Bytes: bytes.Repeat([]byte{0xa5, 0x00, 0xff, 0x13}, 16)}
	for i := range full.W {
		full.W[i] = uint64(i) * 0x0101010101010101
	}
	return []*Context{{}, small, full}
}

func FuzzVerify(f *testing.F) {
	// Seed with an accepted filter, a near-miss (back edge), and raw junk.
	f.Add(New(
		LdCtx(3, 0),
		JneImm(3, 6, 2),
		MovImm(0, 1),
		Exit(),
		MovImm(0, 0),
		Exit(),
	).Encode())
	f.Add(New(MovImm(0, 0), Insn{Op: OpJa, Off: -2}, Exit()).Encode())
	f.Add(New(MovImm(0, 1), Exit()).Encode())
	f.Add([]byte("\x95\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte{0x20, 0x00, 0xff, 0x7f, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrVerifyTruncated) {
				t.Fatalf("decode failed with untyped error: %v", err)
			}
			return
		}
		if err := Verify(p, fuzzSpec()); err != nil {
			// Rejected: must carry a typed reason.
			var ve *VerifyError
			if !errors.As(err, &ve) {
				t.Fatalf("rejection without *VerifyError: %v", err)
			}
			return
		}
		// Accepted: the program must run to Exit within len(p.Insns)
		// steps on every context, fault-free, and the compiled closure
		// must agree with the reference interpreter bit for bit.
		compiled := p.compileRegs()
		for i, ctx := range fuzzContexts() {
			iv, iregs, steps, rerr := p.RunSteps(ctx, len(p.Insns))
			if rerr != nil {
				t.Fatalf("ctx %d: verified program faulted: %v\nprogram: %+v", i, rerr, p.Insns)
			}
			if steps > len(p.Insns) {
				t.Fatalf("ctx %d: %d steps > %d instructions (termination bound broken)", i, steps, len(p.Insns))
			}
			cv, cregs := compiled(ctx)
			if iv != cv || iregs != cregs {
				t.Fatalf("ctx %d: compiled diverged: interp (%d, %v) vs compiled (%d, %v)\nprogram: %+v",
					i, iv, iregs, cv, cregs, p.Insns)
			}
		}
	})
}

// FuzzDecode asserts the wire codec is a bijection on whole-instruction
// inputs: Decode(b) re-encodes to exactly b, and decoding the re-encoding
// yields the same program.
func FuzzDecode(f *testing.F) {
	f.Add(New(MovImm(0, 1), Exit()).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88})
	f.Add(bytes.Repeat([]byte{0x00}, 24))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			if len(data)%InsnSize == 0 {
				t.Fatalf("whole-instruction input rejected: %v", err)
			}
			return
		}
		enc := p.Encode()
		if !bytes.Equal(enc, data) {
			t.Fatalf("re-encode differs:\n in  %x\n out %x", data, enc)
		}
		p2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(p2.Insns) != len(p.Insns) {
			t.Fatalf("re-decode length %d, want %d", len(p2.Insns), len(p.Insns))
		}
		for i := range p.Insns {
			if p.Insns[i] != p2.Insns[i] {
				t.Fatalf("insn %d differs: %+v vs %+v", i, p.Insns[i], p2.Insns[i])
			}
		}
	})
}
