package bcode

// Assembler helpers: thin constructors so in-tree call sites and tests can
// write programs as Go literals instead of raw Insn structs. They perform
// no validation — that is Verify's job, and keeping them dumb lets the
// adversarial tests assemble intentionally broken programs.

// MovImm sets dst = imm.
func MovImm(dst uint8, imm int32) Insn { return Insn{Op: OpMovImm, Dst: dst, Imm: imm} }

// MovReg sets dst = src.
func MovReg(dst, src uint8) Insn { return Insn{Op: OpMovReg, Dst: dst, Src: src} }

// AddImm sets dst += imm (also the pointer-advance form).
func AddImm(dst uint8, imm int32) Insn { return Insn{Op: OpAddImm, Dst: dst, Imm: imm} }

// SubImm sets dst -= imm.
func SubImm(dst uint8, imm int32) Insn { return Insn{Op: OpSubImm, Dst: dst, Imm: imm} }

// MulImm sets dst *= imm.
func MulImm(dst uint8, imm int32) Insn { return Insn{Op: OpMulImm, Dst: dst, Imm: imm} }

// DivImm sets dst /= imm.
func DivImm(dst uint8, imm int32) Insn { return Insn{Op: OpDivImm, Dst: dst, Imm: imm} }

// ModImm sets dst %= imm.
func ModImm(dst uint8, imm int32) Insn { return Insn{Op: OpModImm, Dst: dst, Imm: imm} }

// AndImm sets dst &= imm.
func AndImm(dst uint8, imm int32) Insn { return Insn{Op: OpAndImm, Dst: dst, Imm: imm} }

// OrImm sets dst |= imm.
func OrImm(dst uint8, imm int32) Insn { return Insn{Op: OpOrImm, Dst: dst, Imm: imm} }

// XorImm sets dst ^= imm.
func XorImm(dst uint8, imm int32) Insn { return Insn{Op: OpXorImm, Dst: dst, Imm: imm} }

// LshImm sets dst <<= imm (amount masked to 63).
func LshImm(dst uint8, imm int32) Insn { return Insn{Op: OpLshImm, Dst: dst, Imm: imm} }

// RshImm sets dst >>= imm (amount masked to 63).
func RshImm(dst uint8, imm int32) Insn { return Insn{Op: OpRshImm, Dst: dst, Imm: imm} }

// AddReg sets dst += src (also pointer + scalar).
func AddReg(dst, src uint8) Insn { return Insn{Op: OpAddReg, Dst: dst, Src: src} }

// SubReg sets dst -= src.
func SubReg(dst, src uint8) Insn { return Insn{Op: OpSubReg, Dst: dst, Src: src} }

// MulReg sets dst *= src.
func MulReg(dst, src uint8) Insn { return Insn{Op: OpMulReg, Dst: dst, Src: src} }

// DivReg sets dst /= src (src == 0 yields 0).
func DivReg(dst, src uint8) Insn { return Insn{Op: OpDivReg, Dst: dst, Src: src} }

// ModReg sets dst %= src (src == 0 leaves dst unchanged).
func ModReg(dst, src uint8) Insn { return Insn{Op: OpModReg, Dst: dst, Src: src} }

// AndReg sets dst &= src.
func AndReg(dst, src uint8) Insn { return Insn{Op: OpAndReg, Dst: dst, Src: src} }

// OrReg sets dst |= src.
func OrReg(dst, src uint8) Insn { return Insn{Op: OpOrReg, Dst: dst, Src: src} }

// XorReg sets dst ^= src.
func XorReg(dst, src uint8) Insn { return Insn{Op: OpXorReg, Dst: dst, Src: src} }

// LshReg sets dst <<= src (amount masked to 63).
func LshReg(dst, src uint8) Insn { return Insn{Op: OpLshReg, Dst: dst, Src: src} }

// RshReg sets dst >>= src (amount masked to 63).
func RshReg(dst, src uint8) Insn { return Insn{Op: OpRshReg, Dst: dst, Src: src} }

// Neg sets dst = -dst.
func Neg(dst uint8) Insn { return Insn{Op: OpNeg, Dst: dst} }

// LdCtx loads context word field into dst.
func LdCtx(dst uint8, field int32) Insn { return Insn{Op: OpLdCtx, Dst: dst, Imm: field} }

// LdB loads one byte at [src+off] from the byte region into dst.
func LdB(dst, src uint8, off int16) Insn { return Insn{Op: OpLdB, Dst: dst, Src: src, Off: off} }

// LdH loads two big-endian bytes at [src+off] into dst.
func LdH(dst, src uint8, off int16) Insn { return Insn{Op: OpLdH, Dst: dst, Src: src, Off: off} }

// LdW loads four big-endian bytes at [src+off] into dst.
func LdW(dst, src uint8, off int16) Insn { return Insn{Op: OpLdW, Dst: dst, Src: src, Off: off} }

// Ja jumps forward off instructions (relative to the next instruction).
func Ja(off int16) Insn { return Insn{Op: OpJa, Off: off} }

// JeqImm jumps forward off if dst == imm.
func JeqImm(dst uint8, imm int32, off int16) Insn {
	return Insn{Op: OpJeqImm, Dst: dst, Imm: imm, Off: off}
}

// JneImm jumps forward off if dst != imm.
func JneImm(dst uint8, imm int32, off int16) Insn {
	return Insn{Op: OpJneImm, Dst: dst, Imm: imm, Off: off}
}

// JgtImm jumps forward off if dst > imm (unsigned).
func JgtImm(dst uint8, imm int32, off int16) Insn {
	return Insn{Op: OpJgtImm, Dst: dst, Imm: imm, Off: off}
}

// JgeImm jumps forward off if dst >= imm (unsigned).
func JgeImm(dst uint8, imm int32, off int16) Insn {
	return Insn{Op: OpJgeImm, Dst: dst, Imm: imm, Off: off}
}

// JltImm jumps forward off if dst < imm (unsigned).
func JltImm(dst uint8, imm int32, off int16) Insn {
	return Insn{Op: OpJltImm, Dst: dst, Imm: imm, Off: off}
}

// JleImm jumps forward off if dst <= imm (unsigned).
func JleImm(dst uint8, imm int32, off int16) Insn {
	return Insn{Op: OpJleImm, Dst: dst, Imm: imm, Off: off}
}

// JsetImm jumps forward off if dst & imm != 0.
func JsetImm(dst uint8, imm int32, off int16) Insn {
	return Insn{Op: OpJsetImm, Dst: dst, Imm: imm, Off: off}
}

// JeqReg jumps forward off if dst == src.
func JeqReg(dst, src uint8, off int16) Insn {
	return Insn{Op: OpJeqReg, Dst: dst, Src: src, Off: off}
}

// JneReg jumps forward off if dst != src.
func JneReg(dst, src uint8, off int16) Insn {
	return Insn{Op: OpJneReg, Dst: dst, Src: src, Off: off}
}

// JgtReg jumps forward off if dst > src (unsigned).
func JgtReg(dst, src uint8, off int16) Insn {
	return Insn{Op: OpJgtReg, Dst: dst, Src: src, Off: off}
}

// JgeReg jumps forward off if dst >= src (unsigned).
func JgeReg(dst, src uint8, off int16) Insn {
	return Insn{Op: OpJgeReg, Dst: dst, Src: src, Off: off}
}

// JltReg jumps forward off if dst < src (unsigned).
func JltReg(dst, src uint8, off int16) Insn {
	return Insn{Op: OpJltReg, Dst: dst, Src: src, Off: off}
}

// JleReg jumps forward off if dst <= src (unsigned).
func JleReg(dst, src uint8, off int16) Insn {
	return Insn{Op: OpJleReg, Dst: dst, Src: src, Off: off}
}

// JsetReg jumps forward off if dst & src != 0.
func JsetReg(dst, src uint8, off int16) Insn {
	return Insn{Op: OpJsetReg, Dst: dst, Src: src, Off: off}
}

// Exit returns r0 as the verdict.
func Exit() Insn { return Insn{Op: OpExit} }
