// Package bcode implements SPIN's missing piece in this reproduction: a
// verified extension bytecode. The paper's central claim (§1, §3) is that
// untrusted code can run inside the kernel because the *language and
// verifier* — not hardware protection — enforce isolation. Our in-tree
// extensions are trusted Go closures, so that claim was unreproduced until
// now. This package follows the shape of the modern descendants (eBPF, Rex):
// a small fixed-register bytecode whose programs are checked once at install
// time and then executed at native speed with no runtime supervision.
//
// The ISA is deliberately tiny:
//
//   - 8 general registers r0..r7 holding 64-bit values. r0 is the verdict
//     register; the program's result is r0 at Exit.
//   - ALU ops (add/sub/mul/div/mod/and/or/xor/shifts/neg/mov) in immediate
//     and register forms. Division and modulus by a zero register are
//     defined (div → 0, mod → dst unchanged); shifts mask their amount.
//   - Loads only: LdCtx reads one 64-bit word of the install point's
//     context record; LdB/LdH/LdW read 1/2/4 bytes (big-endian, network
//     order) from the context's byte region through a packet-pointer
//     register. There are NO store instructions — a program cannot write
//     kernel memory, full stop.
//   - Conditional and unconditional jumps whose offsets must be forward.
//   - Exit, returning r0 as the verdict (0 = pass/false, nonzero = match).
//
// Entry ABI: r1 holds a packet pointer to the start of the byte region,
// r2 holds its length; every other register is uninitialized and must be
// written before use. Pointers are represented as offsets from the region
// base, so pointer arithmetic is ordinary unsigned arithmetic and every
// load is bounds-checked against the region length (out-of-range loads
// yield 0 — defined, never a fault).
//
// Safety comes from Verify (see verify.go): bounds-checked context reads,
// forward-only branches (termination: each instruction executes at most
// once), a maximum program size, and a type lattice distinguishing
// packet-pointer registers from scalars so a scalar can never be
// dereferenced. Run (interp.go) is the reference interpreter; Compile
// (compile.go) lowers a verified program to a Go closure for the hot path.
package bcode

import (
	"encoding/binary"
	"fmt"
)

// Core limits of the ISA.
const (
	// NumRegs is the size of the register file.
	NumRegs = 8
	// MaxInsns bounds program length; with forward-only branches it also
	// bounds execution steps.
	MaxInsns = 512
	// MaxCtxWords bounds the context record a load point may expose, so
	// Context can hold it inline without allocating.
	MaxCtxWords = 16
	// InsnSize is the wire size of one encoded instruction.
	InsnSize = 8
)

// Verdict conventions. A program may return any value; the load points
// interpret 0 as "pass / no match" and anything else as "match / drop".
const (
	VerdictPass uint64 = 0
	VerdictDrop uint64 = 1
)

// Opcodes. The imm forms take a 32-bit immediate (sign-extended to 64);
// the reg forms take a second register. Gaps are reserved.
const (
	OpMovImm uint8 = 0x01
	OpAddImm uint8 = 0x02
	OpSubImm uint8 = 0x03
	OpMulImm uint8 = 0x04
	OpDivImm uint8 = 0x05
	OpModImm uint8 = 0x06
	OpAndImm uint8 = 0x07
	OpOrImm  uint8 = 0x08
	OpXorImm uint8 = 0x09
	OpLshImm uint8 = 0x0a
	OpRshImm uint8 = 0x0b

	OpMovReg uint8 = 0x11
	OpAddReg uint8 = 0x12
	OpSubReg uint8 = 0x13
	OpMulReg uint8 = 0x14
	OpDivReg uint8 = 0x15
	OpModReg uint8 = 0x16
	OpAndReg uint8 = 0x17
	OpOrReg  uint8 = 0x18
	OpXorReg uint8 = 0x19
	OpLshReg uint8 = 0x1a
	OpRshReg uint8 = 0x1b
	OpNeg    uint8 = 0x1c

	OpLdCtx uint8 = 0x20
	OpLdB   uint8 = 0x21
	OpLdH   uint8 = 0x22
	OpLdW   uint8 = 0x23

	OpJa      uint8 = 0x30
	OpJeqImm  uint8 = 0x31
	OpJneImm  uint8 = 0x32
	OpJgtImm  uint8 = 0x33
	OpJgeImm  uint8 = 0x34
	OpJltImm  uint8 = 0x35
	OpJleImm  uint8 = 0x36
	OpJsetImm uint8 = 0x37

	OpJeqReg  uint8 = 0x41
	OpJneReg  uint8 = 0x42
	OpJgtReg  uint8 = 0x43
	OpJgeReg  uint8 = 0x44
	OpJltReg  uint8 = 0x45
	OpJleReg  uint8 = 0x46
	OpJsetReg uint8 = 0x47

	OpExit uint8 = 0x95
)

// Insn is one decoded instruction. Jump offsets are relative to the next
// instruction (target = pc + 1 + Off) and counted in instructions.
type Insn struct {
	Op  uint8
	Dst uint8
	Src uint8
	Off int16
	Imm int32
}

// Program is a decoded bytecode program. A Program is inert data until it
// passes Verify; only then may it be interpreted or compiled.
type Program struct {
	Insns []Insn
}

// New builds a program from assembled instructions.
func New(insns ...Insn) *Program { return &Program{Insns: insns} }

// Context is the read-only record a load point exposes to a program:
// up to MaxCtxWords 64-bit words (the fields — addresses, ports, counters)
// plus one byte region (for packets, the payload). The words array is
// inline so a Context can live on the caller's stack.
type Context struct {
	W     [MaxCtxWords]uint64
	Bytes []byte
}

// Spec describes the context shape a load point provides, which Verify
// checks context reads against.
type Spec struct {
	// Words is how many context words (W[0..Words-1]) are readable.
	Words int
}

// Encode serializes the program: InsnSize bytes per instruction, little
// endian, eBPF-style layout (op, regs nibble-packed, off, imm).
func (p *Program) Encode() []byte {
	out := make([]byte, len(p.Insns)*InsnSize)
	for i, in := range p.Insns {
		b := out[i*InsnSize:]
		b[0] = in.Op
		b[1] = (in.Dst & 0x0f) | (in.Src << 4)
		binary.LittleEndian.PutUint16(b[2:], uint16(in.Off))
		binary.LittleEndian.PutUint32(b[4:], uint32(in.Imm))
	}
	return out
}

// Decode parses an encoded program. It is purely structural — opcodes,
// register numbers and offsets are validated by Verify, not here — but a
// length that is not a whole number of instructions is rejected as
// ErrVerifyTruncated: a truncated program must never reach the verifier
// looking intact.
func Decode(b []byte) (*Program, error) {
	if len(b)%InsnSize != 0 {
		return nil, fmt.Errorf("bcode: %d byte program: %w", len(b), ErrVerifyTruncated)
	}
	insns := make([]Insn, len(b)/InsnSize)
	for i := range insns {
		e := b[i*InsnSize:]
		insns[i] = Insn{
			Op:  e[0],
			Dst: e[1] & 0x0f,
			Src: e[1] >> 4,
			Off: int16(binary.LittleEndian.Uint16(e[2:])),
			Imm: int32(binary.LittleEndian.Uint32(e[4:])),
		}
	}
	return &Program{Insns: insns}, nil
}
