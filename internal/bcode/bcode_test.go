package bcode

import (
	"bytes"
	"reflect"
	"testing"
)

// portFilter is the running example: drop TCP (proto 6) packets to port 80
// whose payload starts with 'G' — proto in W[0], dst port in W[4].
func portFilter() *Program {
	return New(
		LdCtx(3, 0),       // 0: r3 = proto
		JneImm(3, 6, 6),   // 1: not TCP -> 8 (pass)
		LdCtx(3, 4),       // 2: r3 = dst port
		JneImm(3, 80, 4),  // 3: not :80 -> 8 (pass)
		LdB(4, 1, 0),      // 4: r4 = payload[0]
		JneImm(4, 'G', 2), // 5: not a GET -> 8 (pass)
		MovImm(0, 1),      // 6: verdict: drop
		Exit(),            // 7
		MovImm(0, 0),      // 8: verdict: pass
		Exit(),            // 9
	)
}

func testSpec() Spec { return Spec{Words: 8} }

func TestExampleFilterVerifiesAndRuns(t *testing.T) {
	p := portFilter()
	if err := Verify(p, testSpec()); err != nil {
		t.Fatalf("verify: %v", err)
	}
	run := p.Compile()
	cases := []struct {
		proto, port uint64
		payload     []byte
		want        uint64
	}{
		{6, 80, []byte("GET / HTTP/1.0"), VerdictDrop},
		{6, 80, []byte("POST /"), VerdictPass},
		{6, 443, []byte("GET /"), VerdictPass},
		{17, 80, []byte("GET /"), VerdictPass},
		{6, 80, nil, VerdictPass}, // empty payload: LdB yields 0
	}
	for i, c := range cases {
		var ctx Context
		ctx.W[0] = c.proto
		ctx.W[4] = c.port
		ctx.Bytes = c.payload
		if got := run(&ctx); got != c.want {
			t.Errorf("case %d: compiled verdict %d, want %d", i, got, c.want)
		}
		if got := p.Run(&ctx); got != c.want {
			t.Errorf("case %d: interpreted verdict %d, want %d", i, got, c.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := portFilter()
	enc := p.Encode()
	if len(enc) != len(p.Insns)*InsnSize {
		t.Fatalf("encoded %d bytes, want %d", len(enc), len(p.Insns)*InsnSize)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(dec.Insns, p.Insns) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", dec.Insns, p.Insns)
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("re-encode differs from original encoding")
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc := portFilter().Encode()
	if _, err := Decode(enc[:len(enc)-3]); err == nil {
		t.Fatal("decode of truncated program succeeded")
	}
}

func TestInterpreterDefinedEdgeCases(t *testing.T) {
	spec := testSpec()
	cases := []struct {
		name string
		prog *Program
		ctx  Context
		want uint64
	}{
		{
			// Division by a zero register yields 0, not a fault.
			name: "div-by-zero-reg",
			prog: New(MovImm(0, 100), MovImm(3, 0), DivReg(0, 3), Exit()),
			want: 0,
		},
		{
			// Modulus by a zero register leaves dst unchanged.
			name: "mod-by-zero-reg",
			prog: New(MovImm(0, 7), MovImm(3, 0), ModReg(0, 3), Exit()),
			want: 7,
		},
		{
			// Shift amounts are masked to 63.
			name: "oversized-shift",
			prog: New(MovImm(0, 1), MovImm(3, 64), LshReg(0, 3), Exit()),
			want: 1,
		},
		{
			// Out-of-range loads yield 0: advance the pointer past the end.
			name: "oob-load",
			prog: New(AddImm(1, 1000), LdW(0, 1, 0), Exit()),
			ctx:  Context{Bytes: []byte{1, 2, 3, 4}},
			want: 0,
		},
		{
			// A short region fails the width check even at offset 0.
			name: "short-load",
			prog: New(LdW(0, 1, 0), Exit()),
			ctx:  Context{Bytes: []byte{0xff, 0xff}},
			want: 0,
		},
		{
			// Big-endian (network order) word load.
			name: "be-word",
			prog: New(LdW(0, 1, 0), Exit()),
			ctx:  Context{Bytes: []byte{0x12, 0x34, 0x56, 0x78}},
			want: 0x12345678,
		},
		{
			// r2 arrives holding the region length.
			name: "length-reg",
			prog: New(MovReg(0, 2), Exit()),
			ctx:  Context{Bytes: make([]byte, 9)},
			want: 9,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := Verify(c.prog, spec); err != nil {
				t.Fatalf("verify: %v", err)
			}
			ctx := c.ctx
			if got := c.prog.Run(&ctx); got != c.want {
				t.Errorf("interpreted: got %d, want %d", got, c.want)
			}
			ctx = c.ctx
			if got := c.prog.Compile()(&ctx); got != c.want {
				t.Errorf("compiled: got %d, want %d", got, c.want)
			}
		})
	}
}

func TestRunStepsBudget(t *testing.T) {
	p := New(MovImm(0, 1), Exit())
	if _, _, _, err := p.RunSteps(&Context{}, 1); err == nil {
		t.Fatal("budget 1 on a 2-step program did not error")
	}
	v, _, steps, err := p.RunSteps(&Context{}, len(p.Insns))
	if err != nil || v != 1 || steps != 2 {
		t.Fatalf("got v=%d steps=%d err=%v, want v=1 steps=2 err=nil", v, steps, err)
	}
}

func TestCompiledAllocFree(t *testing.T) {
	p := portFilter()
	if err := Verify(p, testSpec()); err != nil {
		t.Fatal(err)
	}
	run := p.Compile()
	var ctx Context
	ctx.W[0], ctx.W[4] = 6, 80
	ctx.Bytes = []byte("GET /index.html")
	allocs := testing.AllocsPerRun(1000, func() {
		if run(&ctx) != VerdictDrop {
			t.Fatal("wrong verdict")
		}
	})
	if allocs != 0 {
		t.Fatalf("compiled filter allocates %.1f/op, want 0", allocs)
	}
}
