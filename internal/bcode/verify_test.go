package bcode

import (
	"errors"
	"testing"
)

// TestVerifyRejectsAdversarialCorpus is the table of hostile programs: each
// attacks one verifier invariant and must be rejected with its specific
// typed reason — a rejection for the "wrong" reason is a test failure,
// because it usually means one check is shadowing a hole in another.
func TestVerifyRejectsAdversarialCorpus(t *testing.T) {
	spec := Spec{Words: 8}
	oversized := make([]Insn, MaxInsns+1)
	for i := range oversized {
		oversized[i] = MovImm(0, 0)
	}
	oversized[len(oversized)-1] = Exit()

	cases := []struct {
		name string
		prog *Program
		want error
	}{
		{
			name: "back-edge-loop",
			prog: New(MovImm(0, 0), Insn{Op: OpJa, Off: -2}, Exit()),
			want: ErrVerifyBackEdge,
		},
		{
			name: "self-loop",
			prog: New(MovImm(0, 0), Insn{Op: OpJa, Off: -1}, Exit()),
			want: ErrVerifyBackEdge,
		},
		{
			name: "conditional-back-edge",
			prog: New(MovImm(0, 10), SubImm(0, 1), Insn{Op: OpJneImm, Dst: 0, Imm: 0, Off: -2}, Exit()),
			want: ErrVerifyBackEdge,
		},
		{
			name: "jump-past-end",
			prog: New(MovImm(0, 0), Ja(5), Exit()),
			want: ErrVerifyJumpRange,
		},
		{
			name: "ctx-read-past-spec",
			prog: New(LdCtx(0, 8), Exit()),
			want: ErrVerifyCtxOOB,
		},
		{
			name: "ctx-read-negative",
			prog: New(LdCtx(0, -1), Exit()),
			want: ErrVerifyCtxOOB,
		},
		{
			name: "deref-scalar",
			prog: New(MovImm(3, 5), LdB(0, 3, 0), Exit()),
			want: ErrVerifyType,
		},
		{
			name: "deref-forged-pointer",
			// Launder a scalar into a "pointer" through MovReg of a scalar:
			// still a scalar, still rejected at the load.
			prog: New(MovImm(3, 0x1000), MovReg(4, 3), LdW(0, 4, 0), Exit()),
			want: ErrVerifyType,
		},
		{
			name: "pointer-subtraction",
			prog: New(MovImm(0, 0), SubImm(1, 4), Exit()),
			want: ErrVerifyType,
		},
		{
			name: "pointer-into-arith",
			prog: New(MovImm(0, 1), AddReg(0, 1), Exit()),
			want: ErrVerifyType,
		},
		{
			name: "pointer-comparison",
			prog: New(MovImm(0, 0), JeqImm(1, 0, 0), Exit()),
			want: ErrVerifyType,
		},
		{
			name: "pointer-verdict",
			prog: New(MovReg(0, 1), Exit()),
			want: ErrVerifyType,
		},
		{
			name: "uninit-read",
			prog: New(MovImm(0, 0), AddReg(0, 5), Exit()),
			want: ErrVerifyUninit,
		},
		{
			name: "uninit-verdict",
			prog: New(LdCtx(3, 0), Exit()),
			want: ErrVerifyUninit,
		},
		{
			name: "type-divergent-merge",
			// r3 is a pointer on one path and a scalar on the other; the
			// merge makes it unusable on either interpretation.
			prog: New(
				LdCtx(4, 0),     // 0: r4 = proto
				JeqImm(4, 6, 2), // 1: -> 4
				MovReg(3, 1),    // 2: r3 = ptr
				Ja(1),           // 3: -> 5
				MovImm(3, 0),    // 4: r3 = scalar
				MovReg(0, 3),    // 5: r0 = merged r3
				Exit(),          // 6
			),
			want: ErrVerifyUninit,
		},
		{
			name: "oversized-program",
			prog: New(oversized...),
			want: ErrVerifyTooLarge,
		},
		{
			name: "empty-program",
			prog: New(),
			want: ErrVerifyEmpty,
		},
		{
			name: "div-by-zero-imm",
			prog: New(MovImm(0, 1), DivImm(0, 0), Exit()),
			want: ErrVerifyDivZero,
		},
		{
			name: "mod-by-zero-imm",
			prog: New(MovImm(0, 1), ModImm(0, 0), Exit()),
			want: ErrVerifyDivZero,
		},
		{
			name: "register-out-of-range",
			prog: New(Insn{Op: OpMovImm, Dst: 9, Imm: 1}, MovImm(0, 0), Exit()),
			want: ErrVerifyRegister,
		},
		{
			name: "src-register-out-of-range",
			prog: New(MovImm(0, 0), Insn{Op: OpAddReg, Dst: 0, Src: 12}, Exit()),
			want: ErrVerifyRegister,
		},
		{
			name: "unknown-opcode",
			prog: New(Insn{Op: 0x7f}, MovImm(0, 0), Exit()),
			want: ErrVerifyOpcode,
		},
		{
			name: "store-like-opcode-rejected",
			// The ISA has no stores; anything shaped like one (eBPF's 0x62
			// ST) is just an unknown opcode.
			prog: New(MovImm(0, 0), Insn{Op: 0x62, Dst: 1, Imm: 1}, Exit()),
			want: ErrVerifyOpcode,
		},
		{
			name: "falls-off-end",
			prog: New(MovImm(0, 0), MovImm(3, 1)),
			want: ErrVerifyNoExit,
		},
		{
			name: "conditional-in-final-slot",
			// A conditional in the last slot cannot have a legal target
			// (tgt >= pc+1 == len), so it is a range rejection.
			prog: New(MovImm(0, 0), JeqImm(0, 0, 0)),
			want: ErrVerifyJumpRange,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Verify(c.prog, spec)
			if err == nil {
				t.Fatal("hostile program passed verification")
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("rejected with %v, want %v", err, c.want)
			}
			var ve *VerifyError
			if !errors.As(err, &ve) {
				t.Fatalf("error %v is not a *VerifyError", err)
			}
		})
	}
}

// TestVerifyTruncatedEncoding covers the decode-side typed error: an
// encoding that is not a whole number of instructions.
func TestVerifyTruncatedEncoding(t *testing.T) {
	enc := New(MovImm(0, 0), Exit()).Encode()
	for _, cut := range []int{1, 7, 9, 15} {
		if _, err := Decode(enc[:cut]); !errors.Is(err, ErrVerifyTruncated) {
			t.Errorf("decode of %d bytes: err %v, want ErrVerifyTruncated", cut, err)
		}
	}
	if _, err := Decode(enc); err != nil {
		t.Fatalf("whole encoding failed to decode: %v", err)
	}
}

// TestVerifyAcceptsUnreachableGarbage: instructions no path reaches are
// ignored — they can never execute, so their content is irrelevant.
func TestVerifyAcceptsUnreachableGarbage(t *testing.T) {
	p := New(
		MovImm(0, 0),
		Ja(1),         // over the garbage
		Insn{Op: 0xee}, // unreachable
		Exit(),
	)
	if err := Verify(p, Spec{Words: 0}); err != nil {
		t.Fatalf("unreachable garbage rejected: %v", err)
	}
	if got := p.Run(&Context{}); got != 0 {
		t.Fatalf("verdict %d, want 0", got)
	}
}
