package bcode

// The compiler lowers a verified program into a form the hot path can
// execute with zero allocations and no per-instruction decode: immediates
// are sign-extended once, shift amounts pre-masked, register-form
// comparisons renumbered onto the immediate-form switch arms, and jump
// offsets resolved to absolute targets. The result is wrapped in a Go
// closure (func(*Context) uint64), which is what the load points install —
// the dispatcher's guard slot, the stack's XDP slot and the scheduler's
// steal-policy slot all hold ordinary closures, so a verified program and
// a trusted Go predicate are indistinguishable at the call site.
//
// The compiled executor intentionally shares no execution code with the
// reference interpreter (interp.go): the differential property test drives
// both over the same seeded programs and contexts precisely because they
// are two independent implementations of the semantics.

// cop is one lowered micro-op.
type cop struct {
	op  uint8
	dst uint8
	src uint8
	k   uint64 // sign-extended immediate (pre-masked for shifts)
	off uint64 // byte-load offset, sign-extended
	tgt int32  // absolute jump target
}

// lower translates p's instructions to micro-ops. Register numbers and
// jump targets are clamped, so even a program that skipped Verify cannot
// make the executor fault — it would only compute garbage.
func lower(p *Program) []cop {
	n := len(p.Insns)
	cops := make([]cop, n)
	for i, in := range p.Insns {
		c := cop{
			op:  in.Op,
			dst: in.Dst & (NumRegs - 1),
			src: in.Src & (NumRegs - 1),
			k:   uint64(int64(in.Imm)),
			off: uint64(int64(in.Off)),
		}
		switch in.Op {
		case OpLshImm, OpRshImm:
			c.k &= 63
		case OpLdCtx:
			c.k &= MaxCtxWords - 1
		case OpJa, OpJeqImm, OpJneImm, OpJgtImm, OpJgeImm, OpJltImm, OpJleImm, OpJsetImm,
			OpJeqReg, OpJneReg, OpJgtReg, OpJgeReg, OpJltReg, OpJleReg, OpJsetReg:
			tgt := i + 1 + int(in.Off)
			if tgt < 0 || tgt > n {
				tgt = n // clamp: garbage terminates instead of faulting
			}
			c.tgt = int32(tgt)
		}
		cops[i] = c
	}
	return cops
}

// Compile lowers p to a closure executing it against one Context per call.
// p should have passed Verify: compiled code elides every check the
// verifier discharges statically. The closure allocates nothing and is
// safe for concurrent use; all mutable state lives in its stack frame.
func (p *Program) Compile() func(*Context) uint64 {
	cops := lower(p)
	return func(ctx *Context) uint64 {
		v, _ := execCops(cops, ctx)
		return v
	}
}

// compileRegs is the compiler's debug variant: same lowering and executor,
// but the final register file is returned so the differential test can
// compare it against the reference interpreter's.
func (p *Program) compileRegs() func(*Context) (uint64, [NumRegs]uint64) {
	cops := lower(p)
	return func(ctx *Context) (uint64, [NumRegs]uint64) {
		return execCops(cops, ctx)
	}
}

// execCops runs lowered micro-ops. The register file is a local array —
// nothing escapes, so a run costs zero heap allocations.
func execCops(cops []cop, ctx *Context) (uint64, [NumRegs]uint64) {
	var r [NumRegs]uint64
	r[2] = uint64(len(ctx.Bytes))
	for pc := 0; pc < len(cops); {
		c := &cops[pc]
		switch c.op {
		case OpMovImm:
			r[c.dst] = c.k
		case OpAddImm:
			r[c.dst] += c.k
		case OpSubImm:
			r[c.dst] -= c.k
		case OpMulImm:
			r[c.dst] *= c.k
		case OpDivImm:
			if c.k == 0 {
				r[c.dst] = 0
			} else {
				r[c.dst] /= c.k
			}
		case OpModImm:
			if c.k != 0 {
				r[c.dst] %= c.k
			}
		case OpAndImm:
			r[c.dst] &= c.k
		case OpOrImm:
			r[c.dst] |= c.k
		case OpXorImm:
			r[c.dst] ^= c.k
		case OpLshImm:
			r[c.dst] <<= c.k
		case OpRshImm:
			r[c.dst] >>= c.k
		case OpMovReg:
			r[c.dst] = r[c.src]
		case OpAddReg:
			r[c.dst] += r[c.src]
		case OpSubReg:
			r[c.dst] -= r[c.src]
		case OpMulReg:
			r[c.dst] *= r[c.src]
		case OpDivReg:
			if v := r[c.src]; v == 0 {
				r[c.dst] = 0
			} else {
				r[c.dst] /= v
			}
		case OpModReg:
			if v := r[c.src]; v != 0 {
				r[c.dst] %= v
			}
		case OpAndReg:
			r[c.dst] &= r[c.src]
		case OpOrReg:
			r[c.dst] |= r[c.src]
		case OpXorReg:
			r[c.dst] ^= r[c.src]
		case OpLshReg:
			r[c.dst] <<= r[c.src] & 63
		case OpRshReg:
			r[c.dst] >>= r[c.src] & 63
		case OpNeg:
			r[c.dst] = -r[c.dst]
		case OpLdCtx:
			r[c.dst] = ctx.W[c.k]
		case OpLdB:
			b := ctx.Bytes
			if off := r[c.src] + c.off; off < uint64(len(b)) {
				r[c.dst] = uint64(b[off])
			} else {
				r[c.dst] = 0
			}
		case OpLdH:
			b := ctx.Bytes
			if off := r[c.src] + c.off; off < uint64(len(b)) && uint64(len(b))-off >= 2 {
				r[c.dst] = uint64(b[off])<<8 | uint64(b[off+1])
			} else {
				r[c.dst] = 0
			}
		case OpLdW:
			b := ctx.Bytes
			if off := r[c.src] + c.off; off < uint64(len(b)) && uint64(len(b))-off >= 4 {
				r[c.dst] = uint64(b[off])<<24 | uint64(b[off+1])<<16 | uint64(b[off+2])<<8 | uint64(b[off+3])
			} else {
				r[c.dst] = 0
			}
		case OpJa:
			pc = int(c.tgt)
			continue
		case OpJeqImm:
			if r[c.dst] == c.k {
				pc = int(c.tgt)
				continue
			}
		case OpJneImm:
			if r[c.dst] != c.k {
				pc = int(c.tgt)
				continue
			}
		case OpJgtImm:
			if r[c.dst] > c.k {
				pc = int(c.tgt)
				continue
			}
		case OpJgeImm:
			if r[c.dst] >= c.k {
				pc = int(c.tgt)
				continue
			}
		case OpJltImm:
			if r[c.dst] < c.k {
				pc = int(c.tgt)
				continue
			}
		case OpJleImm:
			if r[c.dst] <= c.k {
				pc = int(c.tgt)
				continue
			}
		case OpJsetImm:
			if r[c.dst]&c.k != 0 {
				pc = int(c.tgt)
				continue
			}
		case OpJeqReg:
			if r[c.dst] == r[c.src] {
				pc = int(c.tgt)
				continue
			}
		case OpJneReg:
			if r[c.dst] != r[c.src] {
				pc = int(c.tgt)
				continue
			}
		case OpJgtReg:
			if r[c.dst] > r[c.src] {
				pc = int(c.tgt)
				continue
			}
		case OpJgeReg:
			if r[c.dst] >= r[c.src] {
				pc = int(c.tgt)
				continue
			}
		case OpJltReg:
			if r[c.dst] < r[c.src] {
				pc = int(c.tgt)
				continue
			}
		case OpJleReg:
			if r[c.dst] <= r[c.src] {
				pc = int(c.tgt)
				continue
			}
		case OpJsetReg:
			if r[c.dst]&r[c.src] != 0 {
				pc = int(c.tgt)
				continue
			}
		case OpExit:
			return r[0], r
		default:
			return 0, r // unverified garbage: defined, inert
		}
		pc++
	}
	return 0, r
}
