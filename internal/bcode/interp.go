package bcode

import (
	"errors"
	"fmt"
)

// Runtime errors from the reference interpreter. A verified program can
// produce none of these; they exist so the interpreter is safe to run on
// arbitrary (fuzzed, unverified) programs under a step budget.
var (
	// ErrBudget reports a program that exceeded its step budget.
	ErrBudget = errors.New("bcode: step budget exhausted")
	// ErrRuntime reports a structural fault (bad opcode, bad register,
	// jump out of range) hit at execution time.
	ErrRuntime = errors.New("bcode: runtime fault")
)

// Run interprets p against ctx and returns the verdict (r0 at Exit).
// p must have passed Verify; on a verified program Run cannot fail, so
// the error path is dropped for convenience at the load points that keep
// the reference interpreter in service (debug builds, differential tests).
func (p *Program) Run(ctx *Context) uint64 {
	v, _, _, _ := p.RunSteps(ctx, len(p.Insns))
	return v
}

// RunSteps is the defensive reference interpreter: it executes at most
// budget instructions and checks every structural property (register
// numbers, jump ranges, opcodes) at runtime, so it is safe on programs
// that have NOT been verified — the fuzz watchdog runs accepted programs
// through it and asserts no error and steps <= len(p.Insns).
//
// It returns the verdict, the final register file, the number of
// instructions executed, and any runtime fault.
func (p *Program) RunSteps(ctx *Context, budget int) (uint64, [NumRegs]uint64, int, error) {
	var r [NumRegs]uint64
	n := len(p.Insns)
	bytes := ctx.Bytes
	r[2] = uint64(len(bytes))
	steps := 0
	for pc := 0; pc < n; {
		if steps >= budget {
			return 0, r, steps, fmt.Errorf("%w after %d steps", ErrBudget, steps)
		}
		steps++
		in := p.Insns[pc]
		if in.Dst >= NumRegs || in.Src >= NumRegs {
			return 0, r, steps, fmt.Errorf("%w: pc %d: register out of range", ErrRuntime, pc)
		}
		imm := uint64(int64(in.Imm)) // sign-extended
		switch in.Op {
		case OpMovImm:
			r[in.Dst] = imm
		case OpAddImm:
			r[in.Dst] += imm
		case OpSubImm:
			r[in.Dst] -= imm
		case OpMulImm:
			r[in.Dst] *= imm
		case OpDivImm:
			if imm == 0 {
				r[in.Dst] = 0
			} else {
				r[in.Dst] /= imm
			}
		case OpModImm:
			if imm != 0 {
				r[in.Dst] %= imm
			}
		case OpAndImm:
			r[in.Dst] &= imm
		case OpOrImm:
			r[in.Dst] |= imm
		case OpXorImm:
			r[in.Dst] ^= imm
		case OpLshImm:
			r[in.Dst] <<= imm & 63
		case OpRshImm:
			r[in.Dst] >>= imm & 63
		case OpMovReg:
			r[in.Dst] = r[in.Src]
		case OpAddReg:
			r[in.Dst] += r[in.Src]
		case OpSubReg:
			r[in.Dst] -= r[in.Src]
		case OpMulReg:
			r[in.Dst] *= r[in.Src]
		case OpDivReg:
			if r[in.Src] == 0 {
				r[in.Dst] = 0
			} else {
				r[in.Dst] /= r[in.Src]
			}
		case OpModReg:
			if r[in.Src] != 0 {
				r[in.Dst] %= r[in.Src]
			}
		case OpAndReg:
			r[in.Dst] &= r[in.Src]
		case OpOrReg:
			r[in.Dst] |= r[in.Src]
		case OpXorReg:
			r[in.Dst] ^= r[in.Src]
		case OpLshReg:
			r[in.Dst] <<= r[in.Src] & 63
		case OpRshReg:
			r[in.Dst] >>= r[in.Src] & 63
		case OpNeg:
			r[in.Dst] = -r[in.Dst]
		case OpLdCtx:
			if in.Imm < 0 || int(in.Imm) >= MaxCtxWords {
				return 0, r, steps, fmt.Errorf("%w: pc %d: context word %d out of range", ErrRuntime, pc, in.Imm)
			}
			r[in.Dst] = ctx.W[in.Imm]
		case OpLdB:
			r[in.Dst] = loadBytes(bytes, r[in.Src]+uint64(int64(in.Off)), 1)
		case OpLdH:
			r[in.Dst] = loadBytes(bytes, r[in.Src]+uint64(int64(in.Off)), 2)
		case OpLdW:
			r[in.Dst] = loadBytes(bytes, r[in.Src]+uint64(int64(in.Off)), 4)
		case OpJa:
			pc = pc + 1 + int(in.Off)
			if pc < 0 || pc > n {
				return 0, r, steps, fmt.Errorf("%w: jump out of range", ErrRuntime)
			}
			continue
		case OpJeqImm, OpJneImm, OpJgtImm, OpJgeImm, OpJltImm, OpJleImm, OpJsetImm:
			if condImm(in.Op, r[in.Dst], imm) {
				pc = pc + 1 + int(in.Off)
				if pc < 0 || pc > n {
					return 0, r, steps, fmt.Errorf("%w: jump out of range", ErrRuntime)
				}
				continue
			}
		case OpJeqReg, OpJneReg, OpJgtReg, OpJgeReg, OpJltReg, OpJleReg, OpJsetReg:
			if condImm(in.Op&^0x70|0x30, r[in.Dst], r[in.Src]) {
				pc = pc + 1 + int(in.Off)
				if pc < 0 || pc > n {
					return 0, r, steps, fmt.Errorf("%w: jump out of range", ErrRuntime)
				}
				continue
			}
		case OpExit:
			return r[0], r, steps, nil
		default:
			return 0, r, steps, fmt.Errorf("%w: pc %d: unknown opcode %#02x", ErrRuntime, pc, in.Op)
		}
		pc++
	}
	return 0, r, steps, fmt.Errorf("%w: control fell off the end", ErrRuntime)
}

// condImm evaluates one comparison opcode (imm-form numbering) against two
// operand values. All comparisons are unsigned over the full 64 bits.
func condImm(op uint8, a, b uint64) bool {
	switch op {
	case OpJeqImm:
		return a == b
	case OpJneImm:
		return a != b
	case OpJgtImm:
		return a > b
	case OpJgeImm:
		return a >= b
	case OpJltImm:
		return a < b
	case OpJleImm:
		return a <= b
	case OpJsetImm:
		return a&b != 0
	}
	return false
}

// loadBytes reads size big-endian bytes at offset off from the context's
// byte region. Any out-of-range access — including offsets that wrapped
// around from "negative" pointer arithmetic — yields 0 by definition, so a
// load can never fault.
func loadBytes(b []byte, off uint64, size uint64) uint64 {
	if off >= uint64(len(b)) || uint64(len(b))-off < size {
		return 0
	}
	var v uint64
	for i := uint64(0); i < size; i++ {
		v = v<<8 | uint64(b[off+i])
	}
	return v
}
