package bcode

import (
	"errors"
	"fmt"
)

// Typed verification failures. Every rejection wraps exactly one of these,
// so callers (and the adversarial-corpus tests) can assert the precise
// reason with errors.Is.
var (
	// ErrVerifyEmpty rejects a program with no instructions.
	ErrVerifyEmpty = errors.New("empty program")
	// ErrVerifyTooLarge rejects programs longer than MaxInsns.
	ErrVerifyTooLarge = errors.New("program exceeds MaxInsns")
	// ErrVerifyTruncated rejects encodings that are not a whole number of
	// instructions (returned by Decode).
	ErrVerifyTruncated = errors.New("truncated encoding")
	// ErrVerifyOpcode rejects an unknown opcode.
	ErrVerifyOpcode = errors.New("unknown opcode")
	// ErrVerifyRegister rejects a register number outside r0..r7.
	ErrVerifyRegister = errors.New("register out of range")
	// ErrVerifyBackEdge rejects a backward (or self) jump — the termination
	// guarantee is that control only moves forward.
	ErrVerifyBackEdge = errors.New("backward jump")
	// ErrVerifyJumpRange rejects a jump past the end of the program.
	ErrVerifyJumpRange = errors.New("jump target out of range")
	// ErrVerifyCtxOOB rejects a context-word read outside the load point's
	// declared Spec.
	ErrVerifyCtxOOB = errors.New("context read out of bounds")
	// ErrVerifyType rejects type confusion: dereferencing a scalar,
	// arithmetic (other than advancing) on a packet pointer, comparing or
	// returning a pointer.
	ErrVerifyType = errors.New("type confusion")
	// ErrVerifyUninit rejects reading a register no path has written
	// (including the verdict register at Exit).
	ErrVerifyUninit = errors.New("uninitialized register")
	// ErrVerifyDivZero rejects division or modulus by a zero immediate.
	ErrVerifyDivZero = errors.New("division by zero immediate")
	// ErrVerifyNoExit rejects programs where execution can fall off the end.
	ErrVerifyNoExit = errors.New("control reaches end of program")
)

// VerifyError locates one rejection: the instruction and the typed reason.
type VerifyError struct {
	PC     int
	Reason error
	Detail string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("bcode: verify: pc %d: %s: %v", e.PC, e.Detail, e.Reason)
}

func (e *VerifyError) Unwrap() error { return e.Reason }

func vErr(pc int, reason error, format string, args ...any) error {
	return &VerifyError{PC: pc, Reason: reason, Detail: fmt.Sprintf(format, args...)}
}

// regType is the verifier's abstract value for one register.
type regType uint8

const (
	// typeUninit marks a register no path has written (or whose type
	// differs between merging paths — unusable either way).
	typeUninit regType = iota
	// typeScalar marks an ordinary 64-bit value.
	typeScalar
	// typePtr marks a packet pointer into the context's byte region.
	typePtr
)

func (t regType) String() string {
	switch t {
	case typeScalar:
		return "scalar"
	case typePtr:
		return "ptr"
	}
	return "uninit"
}

// regState is the abstract register file at one program point.
type regState [NumRegs]regType

// merge joins two predecessor states: equal types survive, conflicting
// types become uninitialized (conservative: a register whose type depends
// on the path taken cannot be used).
func merge(a, b regState) regState {
	var out regState
	for i := range a {
		if a[i] == b[i] {
			out[i] = a[i]
		} else {
			out[i] = typeUninit
		}
	}
	return out
}

// Verify checks p against the safety invariants for a load point exposing
// spec. On success the program is guaranteed to
//
//   - terminate within len(p.Insns) steps (every branch is forward, so no
//     instruction executes twice),
//   - read only declared context words and bounds-checked byte-region
//     offsets (out-of-range byte loads yield 0 by definition),
//   - never dereference a scalar or leak a pointer into a scalar
//     computation or the verdict,
//   - never read a register before writing it, and
//   - never divide by a constant zero (register divisors are defined at
//     runtime: div → 0, mod → dst unchanged).
//
// Because branches are forward-only, a single in-order abstract
// interpretation pass visits every reachable instruction with the merged
// state of all its predecessors before simulating it. Unreachable
// instructions are ignored — they can never execute.
func Verify(p *Program, spec Spec) error {
	if spec.Words < 0 || spec.Words > MaxCtxWords {
		return fmt.Errorf("bcode: verify: bad spec: %d context words (max %d)", spec.Words, MaxCtxWords)
	}
	n := len(p.Insns)
	if n == 0 {
		return vErr(0, ErrVerifyEmpty, "program has no instructions")
	}
	if n > MaxInsns {
		return vErr(0, ErrVerifyTooLarge, "%d instructions (max %d)", n, MaxInsns)
	}

	type point struct {
		reach bool
		regs  regState
	}
	pts := make([]point, n)
	// Entry ABI: r1 = packet pointer (byte-region base), r2 = region
	// length. Everything else must be written before use.
	var entry regState
	entry[1] = typePtr
	entry[2] = typeScalar
	pts[0] = point{reach: true, regs: entry}

	// flow propagates the post-state st into successor pc.
	flow := func(from int, st regState, to int) {
		if !pts[to].reach {
			pts[to] = point{reach: true, regs: st}
			return
		}
		pts[to].regs = merge(pts[to].regs, st)
	}

	// checkReg validates a register number.
	checkReg := func(pc int, r uint8, role string) error {
		if r >= NumRegs {
			return vErr(pc, ErrVerifyRegister, "%s r%d", role, r)
		}
		return nil
	}
	// useScalar validates reading r as a scalar operand.
	useScalar := func(pc int, st *regState, r uint8, role string) error {
		if err := checkReg(pc, r, role); err != nil {
			return err
		}
		switch st[r] {
		case typeScalar:
			return nil
		case typePtr:
			return vErr(pc, ErrVerifyType, "%s r%d is a packet pointer, want scalar", role, r)
		}
		return vErr(pc, ErrVerifyUninit, "%s r%d read before write", role, r)
	}

	for pc := 0; pc < n; pc++ {
		if !pts[pc].reach {
			continue
		}
		st := pts[pc].regs
		in := p.Insns[pc]
		// Register fields must be valid even when an op ignores them
		// (Exit, Ja): the execution engines index the register file by
		// these bytes, and a "reserved" field holding garbage is exactly
		// the kind of latitude a verifier must not grant.
		if in.Dst >= NumRegs || in.Src >= NumRegs {
			return vErr(pc, ErrVerifyRegister, "dst r%d / src r%d", in.Dst, in.Src)
		}

		// branch validates a jump and flows st to its target.
		branch := func(conditional bool) error {
			if in.Off < 0 {
				return vErr(pc, ErrVerifyBackEdge, "jump offset %d", in.Off)
			}
			tgt := pc + 1 + int(in.Off)
			if tgt >= n {
				return vErr(pc, ErrVerifyJumpRange, "jump to %d (program has %d instructions)", tgt, n)
			}
			flow(pc, st, tgt)
			if conditional {
				// tgt < n implies pc+1 <= tgt < n, so the fallthrough
				// successor always exists here.
				flow(pc, st, pc+1)
			}
			return nil
		}
		// fallthrough to pc+1 for straight-line instructions.
		next := func() error {
			if pc+1 >= n {
				return vErr(pc, ErrVerifyNoExit, "final instruction is not Exit")
			}
			flow(pc, st, pc+1)
			return nil
		}

		var err error
		switch in.Op {
		case OpMovImm:
			if err = checkReg(pc, in.Dst, "dst"); err == nil {
				st[in.Dst] = typeScalar
				err = next()
			}
		case OpAddImm:
			// The one pointer-arithmetic form: advancing a packet pointer
			// by an immediate keeps it a pointer (loads stay
			// bounds-checked at runtime).
			if err = checkReg(pc, in.Dst, "dst"); err == nil {
				if st[in.Dst] == typeUninit {
					err = vErr(pc, ErrVerifyUninit, "dst r%d read before write", in.Dst)
				} else {
					err = next()
				}
			}
		case OpSubImm, OpMulImm, OpAndImm, OpOrImm, OpXorImm, OpLshImm, OpRshImm:
			if err = useScalar(pc, &st, in.Dst, "dst"); err == nil {
				err = next()
			}
		case OpDivImm, OpModImm:
			if in.Imm == 0 {
				err = vErr(pc, ErrVerifyDivZero, "%s by zero immediate", opName(in.Op))
			} else if err = useScalar(pc, &st, in.Dst, "dst"); err == nil {
				err = next()
			}
		case OpMovReg:
			if err = checkReg(pc, in.Dst, "dst"); err == nil {
				if err = checkReg(pc, in.Src, "src"); err == nil {
					if st[in.Src] == typeUninit {
						err = vErr(pc, ErrVerifyUninit, "src r%d read before write", in.Src)
					} else {
						st[in.Dst] = st[in.Src]
						err = next()
					}
				}
			}
		case OpAddReg:
			// ptr += scalar advances a packet pointer; scalar += scalar is
			// plain arithmetic; every combination involving a pointer on
			// the right (or both sides) is confusion.
			if err = checkReg(pc, in.Dst, "dst"); err == nil {
				switch {
				case st[in.Dst] == typeUninit:
					err = vErr(pc, ErrVerifyUninit, "dst r%d read before write", in.Dst)
				default:
					if err = useScalar(pc, &st, in.Src, "src"); err == nil {
						err = next()
					}
				}
			}
		case OpSubReg, OpMulReg, OpDivReg, OpModReg, OpAndReg, OpOrReg, OpXorReg, OpLshReg, OpRshReg:
			if err = useScalar(pc, &st, in.Dst, "dst"); err == nil {
				if err = useScalar(pc, &st, in.Src, "src"); err == nil {
					err = next()
				}
			}
		case OpNeg:
			if err = useScalar(pc, &st, in.Dst, "dst"); err == nil {
				err = next()
			}
		case OpLdCtx:
			if err = checkReg(pc, in.Dst, "dst"); err == nil {
				if in.Imm < 0 || int(in.Imm) >= spec.Words {
					err = vErr(pc, ErrVerifyCtxOOB, "context word %d (spec has %d)", in.Imm, spec.Words)
				} else {
					st[in.Dst] = typeScalar
					err = next()
				}
			}
		case OpLdB, OpLdH, OpLdW:
			if err = checkReg(pc, in.Dst, "dst"); err == nil {
				if err = checkReg(pc, in.Src, "src"); err == nil {
					switch st[in.Src] {
					case typePtr:
						st[in.Dst] = typeScalar
						err = next()
					case typeScalar:
						err = vErr(pc, ErrVerifyType, "src r%d is a scalar, %s needs a packet pointer", in.Src, opName(in.Op))
					default:
						err = vErr(pc, ErrVerifyUninit, "src r%d read before write", in.Src)
					}
				}
			}
		case OpJa:
			err = branch(false)
		case OpJeqImm, OpJneImm, OpJgtImm, OpJgeImm, OpJltImm, OpJleImm, OpJsetImm:
			if err = useScalar(pc, &st, in.Dst, "dst"); err == nil {
				err = branch(true)
			}
		case OpJeqReg, OpJneReg, OpJgtReg, OpJgeReg, OpJltReg, OpJleReg, OpJsetReg:
			if err = useScalar(pc, &st, in.Dst, "dst"); err == nil {
				if err = useScalar(pc, &st, in.Src, "src"); err == nil {
					err = branch(true)
				}
			}
		case OpExit:
			switch st[0] {
			case typeScalar:
				// verdict ok; no successors.
			case typePtr:
				err = vErr(pc, ErrVerifyType, "verdict r0 is a packet pointer")
			default:
				err = vErr(pc, ErrVerifyUninit, "verdict r0 never written")
			}
		default:
			err = vErr(pc, ErrVerifyOpcode, "opcode %#02x", in.Op)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func opName(op uint8) string {
	switch op {
	case OpDivImm:
		return "div"
	case OpModImm:
		return "mod"
	case OpLdB:
		return "ldb"
	case OpLdH:
		return "ldh"
	case OpLdW:
		return "ldw"
	}
	return fmt.Sprintf("op %#02x", op)
}
