package bcode

import (
	"math/rand"
	"testing"
)

// The differential property test: the compiler must never silently diverge
// from the reference interpreter. A seeded generator produces random
// programs biased toward verifiability, Verify filters them (the generator
// tracks types along the straight-line path only, so merges occasionally
// reject a candidate — that is fine, the verifier is the oracle), and every
// accepted program runs under both implementations across random contexts.
// Verdicts AND final register files must match exactly.

const (
	diffPrograms        = 150
	diffContextsPerProg = 8
	diffSeed            = 0x5b0de

	genSpecWords = 8
)

// genProgram emits one random candidate program of 6..40 instructions,
// well-formed along its fallthrough path: registers are only read after a
// straight-line write, jumps are forward into the body, the last
// instruction is Exit. Join-point type conflicts can still slip in, which
// is exactly what Verify is for.
func genProgram(rng *rand.Rand) *Program {
	n := 6 + rng.Intn(35)
	insns := make([]Insn, 0, n)
	var t [NumRegs]regType
	t[1] = typePtr
	t[2] = typeScalar

	pick := func(want regType) (uint8, bool) {
		var regs []uint8
		for r := uint8(0); r < NumRegs; r++ {
			if t[r] == want {
				regs = append(regs, r)
			}
		}
		if len(regs) == 0 {
			return 0, false
		}
		return regs[rng.Intn(len(regs))], true
	}

	// Verdict first, so r0 is a scalar on the fallthrough path whatever
	// else the body does.
	insns = append(insns, MovImm(0, int32(rng.Uint32())))
	t[0] = typeScalar

	for len(insns) < n-1 {
		i := len(insns)
		switch rng.Intn(10) {
		case 0: // fresh scalar
			dst := uint8(rng.Intn(NumRegs))
			insns = append(insns, MovImm(dst, int32(rng.Uint32())))
			t[dst] = typeScalar
		case 1: // ALU imm
			if dst, ok := pick(typeScalar); ok {
				ops := []uint8{OpAddImm, OpSubImm, OpMulImm, OpAndImm, OpOrImm, OpXorImm, OpLshImm, OpRshImm, OpDivImm, OpModImm}
				op := ops[rng.Intn(len(ops))]
				imm := int32(rng.Uint32())
				if (op == OpDivImm || op == OpModImm) && imm == 0 {
					imm = 3
				}
				insns = append(insns, Insn{Op: op, Dst: dst, Imm: imm})
			}
		case 2: // ALU reg
			dst, ok1 := pick(typeScalar)
			src, ok2 := pick(typeScalar)
			if ok1 && ok2 {
				ops := []uint8{OpAddReg, OpSubReg, OpMulReg, OpDivReg, OpModReg, OpAndReg, OpOrReg, OpXorReg, OpLshReg, OpRshReg}
				insns = append(insns, Insn{Op: ops[rng.Intn(len(ops))], Dst: dst, Src: src})
			}
		case 3: // context word load
			dst := uint8(rng.Intn(NumRegs))
			insns = append(insns, LdCtx(dst, int32(rng.Intn(genSpecWords))))
			t[dst] = typeScalar
		case 4: // byte-region load through a pointer
			if src, ok := pick(typePtr); ok {
				dst := uint8(rng.Intn(NumRegs))
				ops := []uint8{OpLdB, OpLdH, OpLdW}
				insns = append(insns, Insn{Op: ops[rng.Intn(len(ops))], Dst: dst, Src: src, Off: int16(rng.Intn(70) - 4)})
				t[dst] = typeScalar
			}
		case 5: // advance a pointer
			if dst, ok := pick(typePtr); ok {
				insns = append(insns, AddImm(dst, int32(rng.Intn(32))))
			}
		case 6: // copy a register
			srcT := typeScalar
			if rng.Intn(3) == 0 {
				srcT = typePtr
			}
			if src, ok := pick(srcT); ok {
				dst := uint8(rng.Intn(NumRegs))
				if dst != 0 || srcT == typeScalar { // never a pointer verdict
					insns = append(insns, MovReg(dst, src))
					t[dst] = t[src]
				}
			}
		case 7: // negate
			if dst, ok := pick(typeScalar); ok {
				insns = append(insns, Neg(dst))
			}
		case 8, 9: // forward jump into the body
			room := n - 2 - i // furthest legal relative offset
			if room <= 0 {
				continue
			}
			off := int16(rng.Intn(room + 1))
			if rng.Intn(4) == 0 {
				insns = append(insns, Ja(off))
			} else if dst, ok := pick(typeScalar); ok {
				condImms := []uint8{OpJeqImm, OpJneImm, OpJgtImm, OpJgeImm, OpJltImm, OpJleImm, OpJsetImm}
				condRegs := []uint8{OpJeqReg, OpJneReg, OpJgtReg, OpJgeReg, OpJltReg, OpJleReg, OpJsetReg}
				if src, ok2 := pick(typeScalar); ok2 && rng.Intn(2) == 0 {
					insns = append(insns, Insn{Op: condRegs[rng.Intn(len(condRegs))], Dst: dst, Src: src, Off: off})
				} else {
					insns = append(insns, Insn{Op: condImms[rng.Intn(len(condImms))], Dst: dst, Imm: int32(rng.Uint32()), Off: off})
				}
			}
		}
	}
	insns = append(insns, Exit())
	return &Program{Insns: insns}
}

func genContext(rng *rand.Rand) *Context {
	var ctx Context
	for i := 0; i < genSpecWords; i++ {
		ctx.W[i] = rng.Uint64()
	}
	if n := rng.Intn(65); n > 0 {
		b := make([]byte, n)
		rng.Read(b)
		ctx.Bytes = b
	}
	return &ctx
}

func TestDifferentialInterpreterVsCompiled(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed))
	spec := Spec{Words: genSpecWords}
	accepted, attempts, pairs := 0, 0, 0
	for accepted < diffPrograms {
		attempts++
		if attempts > diffPrograms*50 {
			t.Fatalf("generator acceptance collapsed: %d accepted after %d attempts", accepted, attempts)
		}
		p := genProgram(rng)
		if Verify(p, spec) != nil {
			continue
		}
		accepted++
		// Round-trip through the wire encoding too: what runs is what a
		// loader would decode.
		dec, err := Decode(p.Encode())
		if err != nil {
			t.Fatalf("program %d: re-decode: %v", accepted, err)
		}
		compiled := dec.compileRegs()
		for c := 0; c < diffContextsPerProg; c++ {
			ctx := genContext(rng)
			iv, iregs, steps, ierr := p.RunSteps(ctx, len(p.Insns))
			if ierr != nil {
				t.Fatalf("program %d ctx %d: verified program faulted in interpreter: %v", accepted, c, ierr)
			}
			if steps > len(p.Insns) {
				t.Fatalf("program %d ctx %d: %d steps exceeds instruction count %d", accepted, c, steps, len(p.Insns))
			}
			cv, cregs := compiled(ctx)
			if iv != cv {
				t.Fatalf("program %d ctx %d: verdict diverged: interp %d, compiled %d\nprogram: %+v",
					accepted, c, iv, cv, p.Insns)
			}
			if iregs != cregs {
				t.Fatalf("program %d ctx %d: registers diverged:\ninterp   %v\ncompiled %v\nprogram: %+v",
					accepted, c, iregs, cregs, p.Insns)
			}
			pairs++
		}
	}
	if pairs < 1000 {
		t.Fatalf("only %d program x context pairs, want >= 1000", pairs)
	}
	t.Logf("differential: %d programs (%d candidates), %d pairs, all identical", accepted, attempts, pairs)
}
