package netstack

import (
	"testing"

	"spin/internal/sal"
	"spin/internal/sim"
)

// Fault injection: TCP must deliver all data, in order, exactly once,
// across lossy links — the retransmission and cumulative-ACK machinery
// under stress.

func lossyPair(t *testing.T, rate float64, seed uint64) (*host, *host, *sim.Cluster) {
	t.Helper()
	a, b, cl := pair(t, sal.LanceModel)
	a.nic.InjectLoss(rate, seed)
	b.nic.InjectLoss(rate, seed+1)
	return a, b, cl
}

func TestTCPSurvivesModerateLoss(t *testing.T) {
	a, b, cl := lossyPair(t, 0.05, 42)
	const total = 32 * 1024
	var received []byte
	_ = b.stack.TCP().Listen(80, nil, func(c *Conn) {
		c.OnData = func(_ *Conn, d []byte) { received = append(received, d...) }
	})
	conn, _ := a.stack.TCP().Connect(Addr(10, 0, 0, 2), 80, nil)
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	conn.OnConnect = func(c *Conn) { _ = c.Send(payload) }
	cl.RunUntil(func() bool { return len(received) >= total }, sim.Time(10*60*sim.Second))
	if len(received) != total {
		t.Fatalf("received %d of %d bytes (drops a=%d b=%d, retransmits=%d)",
			len(received), total, a.nic.Dropped(), b.nic.Dropped(), conn.Retransmits())
	}
	for i := range received {
		if received[i] != byte(i*7) {
			t.Fatalf("corruption at byte %d", i)
		}
	}
	if conn.Retransmits() == 0 && a.nic.Dropped() > 0 {
		t.Error("frames dropped but no retransmissions recorded")
	}
}

func TestTCPSurvivesHandshakeLoss(t *testing.T) {
	// High loss: even the SYN/SYN-ACK may be dropped repeatedly; the
	// retransmission timer must eventually establish the connection.
	a, b, cl := lossyPair(t, 0.3, 7)
	established := false
	_ = b.stack.TCP().Listen(80, nil, func(c *Conn) {})
	conn, _ := a.stack.TCP().Connect(Addr(10, 0, 0, 2), 80, nil)
	conn.OnConnect = func(*Conn) { established = true }
	ok := cl.RunUntil(func() bool { return established }, sim.Time(10*60*sim.Second))
	if !ok {
		t.Fatalf("handshake never completed under loss (drops a=%d b=%d)",
			a.nic.Dropped(), b.nic.Dropped())
	}
}

func TestTCPNoDuplicateDeliveryUnderLoss(t *testing.T) {
	// Losing ACKs forces retransmission of segments the receiver already
	// has; the receiver must not deliver duplicates.
	a, b, cl := lossyPair(t, 0.15, 99)
	const chunks, chunkSize = 32, 512
	var received []byte
	_ = b.stack.TCP().Listen(80, nil, func(c *Conn) {
		c.OnData = func(_ *Conn, d []byte) { received = append(received, d...) }
	})
	conn, _ := a.stack.TCP().Connect(Addr(10, 0, 0, 2), 80, nil)
	conn.OnConnect = func(c *Conn) {
		for i := 0; i < chunks; i++ {
			buf := make([]byte, chunkSize)
			for j := range buf {
				buf[j] = byte(i)
			}
			_ = c.Send(buf)
		}
	}
	cl.RunUntil(func() bool { return len(received) >= chunks*chunkSize }, sim.Time(10*60*sim.Second))
	if len(received) != chunks*chunkSize {
		t.Fatalf("received %d, want %d", len(received), chunks*chunkSize)
	}
	for i, v := range received {
		if v != byte(i/chunkSize) {
			t.Fatalf("out-of-order or duplicated data at offset %d", i)
		}
	}
}

func TestTCPCongestionWindowCollapsesOnLoss(t *testing.T) {
	// After a retransmission timeout, cwnd returns to 1 and ssthresh
	// halves (slow start restart).
	a, b, cl := pair(t, sal.LanceModel)
	_ = b.stack.TCP().Listen(80, nil, func(c *Conn) {})
	conn, _ := a.stack.TCP().Connect(Addr(10, 0, 0, 2), 80, nil)
	established := false
	conn.OnConnect = func(*Conn) { established = true }
	cl.RunUntil(func() bool { return established }, sim.Time(60*sim.Second))

	// Grow the window with a clean transfer.
	_ = conn.Send(make([]byte, 16*1024))
	cl.Run(0)
	grown := conn.cwnd
	if grown <= 1 {
		t.Fatalf("cwnd did not grow: %d", grown)
	}
	// Now lose everything for a while: send into a black hole.
	a.nic.InjectLoss(1.0, 5)
	_ = conn.Send(make([]byte, 4*1024))
	// Let at least one retransmission timeout fire.
	deadline := a.eng.Now().Add(sim.Duration(2 * retxTimeout))
	cl.Run(sim.Time(deadline))
	if conn.cwnd != 1 {
		t.Errorf("cwnd after timeout = %d, want 1", conn.cwnd)
	}
	if conn.ssthresh >= grown {
		t.Errorf("ssthresh = %d, want < %d", conn.ssthresh, grown)
	}
	if conn.Retransmits() == 0 {
		t.Error("no retransmissions under total loss")
	}
}

func TestUDPIsLossyByDesign(t *testing.T) {
	// Sanity check the injection itself: UDP offers no recovery, so a
	// lossy link loses datagrams.
	a, b, cl := lossyPair(t, 0.5, 11)
	sink, _ := b.stack.UDP().Sink(9, InKernelDelivery)
	const n = 64
	for i := 0; i < n; i++ {
		_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, make([]byte, 64))
	}
	cl.Run(0)
	if sink.Packets() == n {
		t.Error("no datagrams lost at 50% injected loss")
	}
	if sink.Packets() == 0 {
		t.Error("all datagrams lost at 50% injected loss")
	}
	if a.nic.Dropped()+sink.Packets() != n {
		t.Errorf("drops (%d) + delivered (%d) != sent (%d)", a.nic.Dropped(), sink.Packets(), n)
	}
}
