package netstack

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"spin/internal/sal"
	"spin/internal/sim"
)

// establishedPair returns an ESTABLISHED client conn from a to b (port 80)
// plus the server side's conn.
func establishedPair(t *testing.T) (a, b *host, cl *sim.Cluster, client, server *Conn) {
	t.Helper()
	a, b, cl = pair(t, sal.LanceModel)
	if err := b.stack.TCP().Listen(80, nil, func(c *Conn) { server = c }); err != nil {
		t.Fatal(err)
	}
	client, err := a.stack.TCP().Connect(Addr(10, 0, 0, 2), 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(0)
	if client.State() != StateEstablished || server == nil {
		t.Fatalf("handshake failed: client %v, server %v", client.State(), server)
	}
	return a, b, cl, client, server
}

// The foreground bugfix at the TCP layer: a SYN that is never answered is
// retransmitted with exponential backoff at most MaxRetx times, then the
// connection is torn down — OnClose fires, the shard table empties,
// Err() reports ErrTimedOut — instead of retransmitting forever.
func TestRetxCapSynSent(t *testing.T) {
	a, _, cl := pair(t, sal.LanceModel)
	a.stack.TCP().SetMaxRetx(2)
	c, err := a.stack.TCP().Connect(Addr(10, 0, 0, 9), 80, nil) // dropped at the peer's IP layer
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	c.OnClose = func(*Conn) { closed = true }
	start := a.eng.Now()
	cl.Run(0) // terminates: the retransmit timer must not rearm forever
	elapsed := a.eng.Now().Sub(start)
	if c.State() != StateClosed || !closed {
		t.Fatalf("state %v, OnClose %v — want closed", c.State(), closed)
	}
	if !errors.Is(c.Err(), ErrTimedOut) {
		t.Errorf("Err = %v, want ErrTimedOut", c.Err())
	}
	if got := a.stack.TCP().Conns(); got != 0 {
		t.Errorf("Conns = %d after timeout", got)
	}
	// 2 retransmissions then the final timer: 200+400+800ms, plus the
	// last SYN's in-flight delivery draining after the teardown.
	if elapsed < 1400*sim.Millisecond || elapsed > 1410*sim.Millisecond {
		t.Errorf("gave up after %v, want ~1.4s", elapsed)
	}
	if got := c.Retransmits(); got != 2 {
		t.Errorf("Retransmits = %d, want 2", got)
	}
}

// Data on an established connection hits the same cap when the peer goes
// silent (its NIC starts refusing every frame): the sender times out,
// tears down, and reports ErrTimedOut — no infinite data retransmission.
func TestRetxCapEstablishedData(t *testing.T) {
	a, b, cl, client, _ := establishedPair(t)
	a.stack.TCP().SetMaxRetx(2)
	b.nic.OnReceive = func(sal.NetFrame) bool { return false } // partition b
	closed := false
	client.OnClose = func(*Conn) { closed = true }
	if err := client.Send([]byte("into the void")); err != nil {
		t.Fatal(err)
	}
	cl.Run(0)
	if !closed || client.State() != StateClosed {
		t.Fatalf("client not torn down: state %v", client.State())
	}
	if !errors.Is(client.Err(), ErrTimedOut) {
		t.Errorf("Err = %v, want ErrTimedOut", client.Err())
	}
	if got := a.stack.TCP().Conns(); got != 0 {
		t.Errorf("sender Conns = %d", got)
	}
	if st := a.stack.TCP().Stats(); st.TimedOut != 1 {
		t.Errorf("TimedOut = %d", st.TimedOut)
	}
}

// An ACK that makes forward progress resets the retransmission budget:
// a lossy-but-alive path never accumulates attempts toward the cap.
func TestRetxBudgetResetsOnProgress(t *testing.T) {
	a, _, cl, client, server := establishedPair(t)
	a.stack.TCP().SetMaxRetx(3)
	var rx int
	server.OnData = func(_ *Conn, p []byte) { rx += len(p) }
	for i := 0; i < 5; i++ {
		if err := client.Send([]byte("chunk")); err != nil {
			t.Fatal(err)
		}
		cl.Run(0)
	}
	if rx != 25 {
		t.Fatalf("server received %d bytes, want 25", rx)
	}
	if client.State() != StateEstablished || client.Err() != nil {
		t.Errorf("healthy conn degraded: %v, %v", client.State(), client.Err())
	}
}

// Satellite bugfix: Close in SYN_SENT with data queued behind the
// handshake reports ErrClosed (the bytes are discarded, not silently
// dropped) and cancels the armed retransmit timer.
func TestCloseSynSentQueuedData(t *testing.T) {
	a, _, cl := pair(t, sal.LanceModel)
	c, err := a.stack.TCP().Connect(Addr(10, 0, 0, 9), 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("queued before handshake")); err != nil {
		t.Fatal(err) // SYN_SENT queues silently
	}
	cerr := c.Close()
	if !errors.Is(cerr, ErrClosed) {
		t.Fatalf("Close = %v, want ErrClosed", cerr)
	}
	if !strings.Contains(cerr.Error(), "23 queued bytes") {
		t.Errorf("Close error does not report the discarded bytes: %v", cerr)
	}
	if !errors.Is(c.Err(), ErrClosed) {
		t.Errorf("Err = %v, want ErrClosed", c.Err())
	}
	if got := a.stack.TCP().Conns(); got != 0 {
		t.Errorf("Conns = %d after close", got)
	}
	// The retransmit timer was cancelled: no pending events, no virtual
	// time passes.
	start := a.eng.Now()
	cl.Run(0)
	if elapsed := a.eng.Now().Sub(start); elapsed != 0 {
		t.Errorf("events still pending %v after close — retx timer not cancelled", elapsed)
	}
	// A Close without queued data reports nothing.
	c2, err := a.stack.TCP().Connect(Addr(10, 0, 0, 9), 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Errorf("clean SYN_SENT close = %v, want nil", err)
	}
}

// Satellite bugfix: State, Retransmits, ZeroWindowProbes and Err are read
// concurrently by monitoring code while the engine mutates the connection
// — they must be race-free (run under -race) and never observe torn
// values. The engine goroutine drives a handshake, data with a partitioned
// peer (forcing retransmissions), and the timeout teardown, while readers
// hammer the accessors.
func TestConnAccessorRaceTorture(t *testing.T) {
	a, b, cl, client, _ := establishedPair(t)
	a.stack.TCP().SetMaxRetx(3)
	b.nic.OnReceive = func(sal.NetFrame) bool { return false }

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if s := client.State(); s != StateEstablished && s != StateClosed && s != StateSynSent {
					// Transitional states are fine too; the point is the
					// value is always a real state, never torn.
					_ = s
				}
				if n := client.Retransmits(); n < 0 || n > 64 {
					t.Errorf("implausible Retransmits %d", n)
					return
				}
				_ = client.ZeroWindowProbes()
				if err := client.Err(); err != nil && !errors.Is(err, ErrTimedOut) {
					t.Errorf("unexpected Err %v", err)
					return
				}
			}
		}()
	}
	if err := client.Send(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	cl.Run(0) // retransmit to exhaustion, teardown
	stop.Store(true)
	wg.Wait()
	if !errors.Is(client.Err(), ErrTimedOut) {
		t.Fatalf("Err = %v after torture, want ErrTimedOut", client.Err())
	}
}
