package netstack

import (
	"errors"
	"testing"

	"spin/internal/bcode"
	"spin/internal/dispatch"
	"spin/internal/faultinject"
	"spin/internal/sal"
)

// dropUDPToPort builds a verified filter: drop UDP datagrams to port.
func dropUDPToPort(port int64) *bcode.Program {
	return bcode.New(
		bcode.LdCtx(3, CtxProto),
		bcode.JneImm(3, int32(ProtoUDP), 3), // not UDP -> pass
		bcode.LdCtx(4, CtxDstPort),
		bcode.JneImm(4, int32(port), 1), // other port -> pass
		bcode.Ja(2),                     // -> drop
		bcode.MovImm(0, 0),
		bcode.Exit(),
		bcode.MovImm(0, 1),
		bcode.Exit(),
	)
}

func TestXDPDropAndPass(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	x, err := b.stack.AttachXDP("udp7-drop", dropUDPToPort(7))
	if err != nil {
		t.Fatal(err)
	}
	blocked, allowed := 0, 0
	_ = b.stack.UDP().Bind(7, InKernelDelivery, func(*Packet) { blocked++ })
	_ = b.stack.UDP().Bind(9, InKernelDelivery, func(*Packet) { allowed++ })
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 7, []byte("evil"))
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, []byte("fine"))
	cl.Run(0)
	if blocked != 0 {
		t.Error("xdp-dropped packet was delivered")
	}
	if allowed != 1 {
		t.Error("unmatched packet lost")
	}
	runs, drops := x.Stats()
	if runs != 2 || drops != 1 {
		t.Errorf("stats = (%d runs, %d drops), want (2, 1)", runs, drops)
	}
	// Dropped packets never reach the graph, so only one counts as
	// received.
	if got, _ := b.stack.Stats(); got != 1 {
		t.Errorf("received = %d, want 1", got)
	}

	b.stack.DetachXDP()
	if b.stack.XDP() != nil {
		t.Fatal("XDP still attached after detach")
	}
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 7, []byte("now fine"))
	cl.Run(0)
	if blocked != 1 {
		t.Error("packet still dropped after detach")
	}
}

func TestXDPRejectsUnverifiable(t *testing.T) {
	_, b, _ := pair(t, sal.LanceModel)
	loop := bcode.New(
		bcode.MovImm(0, 0),
		bcode.Insn{Op: bcode.OpJa, Off: -2},
		bcode.Exit(),
	)
	if _, err := b.stack.AttachXDP("loop", loop); !errors.Is(err, bcode.ErrVerifyBackEdge) {
		t.Fatalf("err = %v, want ErrVerifyBackEdge", err)
	}
	if b.stack.XDP() != nil {
		t.Fatal("rejected program attached anyway")
	}
	// Reading context words past the packet ABI is install-time rejected
	// too, even though the interpreter would tolerate it.
	oob := bcode.New(bcode.LdCtx(0, PacketCtxWords), bcode.Exit())
	if _, err := b.stack.AttachXDP("oob", oob); !errors.Is(err, bcode.ErrVerifyCtxOOB) {
		t.Fatalf("err = %v, want ErrVerifyCtxOOB", err)
	}
}

func TestBCodeFilterDrop(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	f, err := NewBCodeFilter(b.stack, "fw", dropUDPToPort(1500), Drop)
	if err != nil {
		t.Fatal(err)
	}
	blocked, allowed := 0, 0
	_ = b.stack.UDP().Bind(1500, InKernelDelivery, func(*Packet) { blocked++ })
	_ = b.stack.UDP().Bind(3000, InKernelDelivery, func(*Packet) { allowed++ })
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 1500, []byte("evil"))
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 3000, []byte("fine"))
	cl.Run(0)
	if blocked != 0 {
		t.Error("filtered packet delivered")
	}
	if allowed != 1 {
		t.Error("allowed packet lost")
	}
	runs, matched := f.Stats()
	if runs != 2 || matched != 1 {
		t.Errorf("stats = (%d runs, %d matched), want (2, 1)", runs, matched)
	}
	f.Remove()
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 1500, []byte("now fine"))
	cl.Run(0)
	if blocked != 1 {
		t.Error("packet still filtered after Remove")
	}
}

func TestBCodeFilterDivert(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	// Divert UDP payloads beginning with 'G' (first payload byte via a
	// bounds-checked LdB through the packet pointer).
	prog := bcode.New(
		bcode.LdCtx(3, CtxProto),
		bcode.JneImm(3, int32(ProtoUDP), 3),
		bcode.LdB(4, 1, 0),
		bcode.JneImm(4, 'G', 1),
		bcode.Ja(2),
		bcode.MovImm(0, 0),
		bcode.Exit(),
		bcode.MovImm(0, 1),
		bcode.Exit(),
	)
	f, err := NewBCodeFilter(b.stack, "snoop", prog, Divert)
	if err != nil {
		t.Fatal(err)
	}
	var diverted []byte
	f.Consumer = func(p *Packet) { diverted = p.Payload }
	normal := 0
	_ = b.stack.UDP().Bind(80, InKernelDelivery, func(*Packet) { normal++ })
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 80, []byte("GET /"))
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 80, []byte("POST /"))
	cl.Run(0)
	if string(diverted) != "GET /" {
		t.Errorf("diverted %q", diverted)
	}
	if normal != 1 {
		t.Errorf("normal deliveries = %d, want 1", normal)
	}
}

func TestBCodeFilterRejectsUnverifiable(t *testing.T) {
	_, b, _ := pair(t, sal.LanceModel)
	// Dereferencing a scalar is the classic type-confusion program.
	bad := bcode.New(
		bcode.MovImm(3, 64),
		bcode.LdB(0, 3, 0),
		bcode.Exit(),
	)
	if _, err := NewBCodeFilter(b.stack, "bad", bad, Drop); !errors.Is(err, bcode.ErrVerifyType) {
		t.Fatalf("err = %v, want ErrVerifyType", err)
	}
	if n := len(b.stack.BCodePrograms()); n != 0 {
		t.Fatalf("%d programs tracked after rejected install", n)
	}
}

func TestPacketContextMapping(t *testing.T) {
	pkt := &Packet{
		Src: Addr(10, 0, 0, 1), Dst: Addr(10, 0, 0, 2),
		Proto: ProtoTCP, SrcPort: 4321, DstPort: 80,
		Flags: FlagSYN | FlagACK, TTL: 17,
		Payload: []byte("hello"),
	}
	var ctx bcode.Context
	packetContext(&ctx, pkt)
	want := map[int]uint64{
		CtxProto:   uint64(ProtoTCP),
		CtxSrc:     uint64(Addr(10, 0, 0, 1)),
		CtxDst:     uint64(Addr(10, 0, 0, 2)),
		CtxSrcPort: 4321,
		CtxDstPort: 80,
		CtxLen:     5,
		CtxTTL:     17,
		CtxFlags:   uint64(FlagSYN | FlagACK),
	}
	for word, v := range want {
		if ctx.W[word] != v {
			t.Errorf("ctx word %d = %d, want %d", word, ctx.W[word], v)
		}
	}
	if string(ctx.Bytes) != "hello" {
		t.Errorf("ctx bytes = %q", ctx.Bytes)
	}
}

func TestBCodeProgramsSnapshot(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	if _, err := b.stack.AttachXDP("early", dropUDPToPort(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewBCodeFilter(b.stack, "late", dropUDPToPort(1500), Drop); err != nil {
		t.Fatal(err)
	}
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 7, []byte("x"))
	cl.Run(0)
	progs := b.stack.BCodePrograms()
	if len(progs) != 2 {
		t.Fatalf("%d programs, want 2", len(progs))
	}
	byName := map[string]BCodeProgStat{}
	for _, p := range progs {
		byName[p.Name] = p
	}
	if p := byName["early"]; p.Point != "xdp" || p.Runs != 1 || p.Matched != 1 || p.Insns != 9 {
		t.Errorf("xdp stat = %+v", p)
	}
	if p := byName["late"]; p.Point != "ip-filter" || p.Quarantined {
		t.Errorf("filter stat = %+v", p)
	}
}

// TestBCodeFilterQuarantine is the PR 4 backstop in miniature: a program
// that verifies fine but whose action faults at run time (modeled by a
// panic rule on the "bcode.run" site) burns its fault budget, is
// quarantined and unlinked, and the receive path keeps flowing.
func TestBCodeFilterQuarantine(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	b.stack.disp.SetQuarantinePolicy(dispatch.DefaultQuarantinePolicy)
	inj := faultinject.New(0xbadc0de, b.eng.Clock)
	inj.Arm(faultinject.Rule{Site: "bcode.run", Kind: faultinject.KindPanic, MaxFires: 8})
	b.stack.disp.SetInjector(inj)

	f, err := NewBCodeFilter(b.stack, "hostile", dropUDPToPort(53), Drop)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	_ = b.stack.UDP().Bind(53, InKernelDelivery, func(*Packet) { delivered++ })
	for i := 0; i < 20; i++ {
		_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 53, []byte("query"))
		cl.Run(0)
	}
	if got := inj.FiredAt("bcode.run"); got != 8 {
		t.Errorf("fired = %d, want 8 (the fault threshold)", got)
	}
	if !f.Quarantined() {
		t.Fatal("hostile filter not quarantined")
	}
	// Containment means a faulting filter fails open: the panic is caught
	// at the dispatch boundary, the handler never claims the packet, and
	// delivery proceeds — for all 20 packets, both during the fault storm
	// and after the unlink. The kernel lost nothing.
	if delivered != 20 {
		t.Errorf("delivered = %d, want 20 (faults contained, RX never stalls)", delivered)
	}
	progs := b.stack.BCodePrograms()
	if len(progs) != 1 || !progs[0].Quarantined {
		t.Errorf("program snapshot = %+v, want quarantined entry", progs)
	}
}
