package netstack

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"spin/internal/sim"
)

// UDPHandler receives a datagram delivered to a bound port.
type UDPHandler func(pkt *Packet)

// UDP is the stack's UDP module: a port table with handler endpoints. SPIN
// endpoints are in-kernel handlers (procedure-call delivery); the baselines
// wrap handlers in socket-cost shims.
//
// The port table is a copy-on-write snapshot behind an atomic pointer:
// deliver — the per-packet path — is one lock-free load; Bind/Unbind copy
// the map under a writer mutex and swap. Concurrent Bind/Unbind/deliver is
// race-free; a delivery in flight sees either the old or the new table.
type UDP struct {
	stack *Stack

	// mu serializes writers (Bind, Unbind, EphemeralPort's cursor).
	mu    sync.Mutex
	ports atomic.Pointer[map[uint16]udpBinding]
	// cursor is the next ephemeral-port offset to try, guarded by mu.
	cursor int
}

type udpBinding struct {
	h     UDPHandler
	cost  DeliveryCost
	owner string
}

func newUDP(s *Stack) *UDP {
	u := &UDP{stack: s}
	empty := make(map[uint16]udpBinding)
	u.ports.Store(&empty)
	return u
}

// Bind installs handler as the endpoint for port. cost models the delivery
// path (InKernelDelivery for SPIN extensions).
func (u *UDP) Bind(port uint16, cost DeliveryCost, h UDPHandler) error {
	return u.BindOwned("", port, cost, h)
}

// BindOwned is Bind with a recorded owning principal, so the endpoint is
// released by UnbindOwner when the owner's domain is destroyed.
func (u *UDP) BindOwned(owner string, port uint16, cost DeliveryCost, h UDPHandler) error {
	if cost == nil {
		cost = InKernelDelivery
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	old := *u.ports.Load()
	if _, dup := old[port]; dup {
		return fmt.Errorf("netstack: UDP port %d in use", port)
	}
	next := make(map[uint16]udpBinding, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[port] = udpBinding{h: h, cost: cost, owner: owner}
	u.ports.Store(&next)
	return nil
}

// Unbind releases port.
func (u *UDP) Unbind(port uint16) {
	u.mu.Lock()
	defer u.mu.Unlock()
	old := *u.ports.Load()
	if _, ok := old[port]; !ok {
		return
	}
	next := make(map[uint16]udpBinding, len(old))
	for k, v := range old {
		if k != port {
			next[k] = v
		}
	}
	u.ports.Store(&next)
}

// UnbindOwner releases every port bound under owner in one snapshot swap —
// the UDP module's teardown reclaimer. Deliveries in flight see either the
// old table (and run the departing handler one last time) or the new one.
// It returns the number of ports released.
func (u *UDP) UnbindOwner(owner string) int {
	if owner == "" {
		return 0
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	old := *u.ports.Load()
	next := make(map[uint16]udpBinding, len(old))
	removed := 0
	for k, v := range old {
		if v.owner == owner {
			removed++
			continue
		}
		next[k] = v
	}
	if removed > 0 {
		u.ports.Store(&next)
	}
	return removed
}

// Ephemeral ports are allocated from [EphemeralMin, EphemeralMax]; the
// allocator never wraps into the well-known range (a uint16 increment past
// 65535 lands on port 0).
const (
	EphemeralMin = 20000
	EphemeralMax = 65535
)

// ErrPortsExhausted reports that every ephemeral port is bound.
var ErrPortsExhausted = errors.New("netstack: ephemeral UDP ports exhausted")

// EphemeralPort returns a fresh high port in [EphemeralMin, EphemeralMax],
// or ErrPortsExhausted when every port in the range is bound.
func (u *UDP) EphemeralPort() (uint16, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	ports := *u.ports.Load()
	const span = EphemeralMax - EphemeralMin + 1
	for i := 0; i < span; i++ {
		p := uint16(EphemeralMin + (u.cursor+i)%span)
		if _, used := ports[p]; !used {
			u.cursor = (u.cursor + i + 1) % span
			return p, nil
		}
	}
	return 0, ErrPortsExhausted
}

// Send transmits a datagram. The payload is copied into a pooled packet,
// so the caller keeps ownership of its slice (and handlers may re-send the
// payload of a packet being delivered to them, as Echo does).
func (u *UDP) Send(srcPort uint16, dst IPAddr, dstPort uint16, payload []byte) error {
	pkt := AllocPacket()
	pkt.Src, pkt.Dst, pkt.Proto = u.stack.IP, dst, ProtoUDP
	pkt.SrcPort, pkt.DstPort = srcPort, dstPort
	pkt.SetPayload(payload)
	pkt.TTL = 32
	return u.stack.SendIP(pkt)
}

// deliver hands a datagram to its bound endpoint (after graph handlers
// declined to claim it). Lock-free: one atomic load of the port table.
func (u *UDP) deliver(pkt *Packet) {
	b, ok := (*u.ports.Load())[pkt.DstPort]
	if !ok {
		return // port unreachable; silently dropped in this model
	}
	b.cost(u.stack.clock, pkt)
	if b.h != nil {
		b.h(pkt)
	}
}

// Echo starts a UDP echo server on port with the given delivery cost:
// payload is bounced back to the sender. Used by the Table 5 latency
// benchmark.
func (u *UDP) Echo(port uint16, cost DeliveryCost) error {
	return u.Bind(port, cost, func(pkt *Packet) {
		_ = u.Send(port, pkt.Src, pkt.SrcPort, pkt.Payload)
	})
}

// Sink binds port to a pure consumer, counting packets and bytes — the
// bandwidth benchmark's receiver. It returns the counter.
func (u *UDP) Sink(port uint16, cost DeliveryCost) (*SinkStats, error) {
	st := &SinkStats{}
	err := u.Bind(port, cost, func(pkt *Packet) {
		st.packets.Add(1)
		st.bytes.Add(int64(len(pkt.Payload)))
	})
	return st, err
}

// SinkStats counts sink deliveries. Counters are atomics, so counts are
// exact when deliveries arrive from parallel RX workers.
type SinkStats struct {
	packets atomic.Int64
	bytes   atomic.Int64
}

// Packets reports datagrams delivered to the sink.
func (st *SinkStats) Packets() int64 { return st.packets.Load() }

// Bytes reports payload bytes delivered to the sink.
func (st *SinkStats) Bytes() int64 { return st.bytes.Load() }

// Flood sends n payload-sized datagrams back to back — the bandwidth
// benchmark's sender half. Returns virtual time consumed at the sender.
func (u *UDP) Flood(srcPort uint16, dst IPAddr, dstPort uint16, n, size int) sim.Duration {
	start := u.stack.clock.Now()
	buf := make([]byte, size)
	for i := 0; i < n; i++ {
		_ = u.Send(srcPort, dst, dstPort, buf)
	}
	return u.stack.clock.Now().Sub(start)
}
