package netstack

import (
	"fmt"

	"spin/internal/sim"
)

// UDPHandler receives a datagram delivered to a bound port.
type UDPHandler func(pkt *Packet)

// UDP is the stack's UDP module: a port table with handler endpoints. SPIN
// endpoints are in-kernel handlers (procedure-call delivery); the baselines
// wrap handlers in socket-cost shims.
type UDP struct {
	stack *Stack
	ports map[uint16]udpBinding
	next  uint16
}

type udpBinding struct {
	h    UDPHandler
	cost DeliveryCost
}

func newUDP(s *Stack) *UDP {
	return &UDP{stack: s, ports: make(map[uint16]udpBinding), next: 20000}
}

// Bind installs handler as the endpoint for port. cost models the delivery
// path (InKernelDelivery for SPIN extensions).
func (u *UDP) Bind(port uint16, cost DeliveryCost, h UDPHandler) error {
	if _, dup := u.ports[port]; dup {
		return fmt.Errorf("netstack: UDP port %d in use", port)
	}
	if cost == nil {
		cost = InKernelDelivery
	}
	u.ports[port] = udpBinding{h: h, cost: cost}
	return nil
}

// Unbind releases port.
func (u *UDP) Unbind(port uint16) { delete(u.ports, port) }

// EphemeralPort returns a fresh high port.
func (u *UDP) EphemeralPort() uint16 {
	for {
		u.next++
		if _, used := u.ports[u.next]; !used {
			return u.next
		}
	}
}

// Send transmits a datagram.
func (u *UDP) Send(srcPort uint16, dst IPAddr, dstPort uint16, payload []byte) error {
	pkt := &Packet{
		Src: u.stack.IP, Dst: dst, Proto: ProtoUDP,
		SrcPort: srcPort, DstPort: dstPort,
		Payload: payload, TTL: 32,
	}
	return u.stack.SendIP(pkt)
}

// deliver hands a datagram to its bound endpoint (after graph handlers
// declined to claim it).
func (u *UDP) deliver(pkt *Packet) {
	b, ok := u.ports[pkt.DstPort]
	if !ok {
		return // port unreachable; silently dropped in this model
	}
	b.cost(u.stack.clock, pkt)
	if b.h != nil {
		b.h(pkt)
	}
}

// Echo starts a UDP echo server on port with the given delivery cost:
// payload is bounced back to the sender. Used by the Table 5 latency
// benchmark.
func (u *UDP) Echo(port uint16, cost DeliveryCost) error {
	return u.Bind(port, cost, func(pkt *Packet) {
		_ = u.Send(port, pkt.Src, pkt.SrcPort, pkt.Payload)
	})
}

// Sink binds port to a pure consumer, counting packets and bytes — the
// bandwidth benchmark's receiver. It returns the counter.
func (u *UDP) Sink(port uint16, cost DeliveryCost) (*SinkStats, error) {
	st := &SinkStats{}
	err := u.Bind(port, cost, func(pkt *Packet) {
		st.Packets++
		st.Bytes += int64(len(pkt.Payload))
	})
	return st, err
}

// SinkStats counts sink deliveries.
type SinkStats struct {
	Packets int64
	Bytes   int64
}

// Flood sends n payload-sized datagrams back to back — the bandwidth
// benchmark's sender half. Returns virtual time consumed at the sender.
func (u *UDP) Flood(srcPort uint16, dst IPAddr, dstPort uint16, n, size int) sim.Duration {
	start := u.stack.clock.Now()
	buf := make([]byte, size)
	for i := 0; i < n; i++ {
		_ = u.Send(srcPort, dst, dstPort, buf)
	}
	return u.stack.clock.Now().Sub(start)
}
