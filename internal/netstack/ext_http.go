package netstack

import (
	"fmt"
	"strings"
)

// HTTPContent supplies document bodies to the in-kernel HTTP server. The
// web server experiment (paper §5.4) wires this to the file system with a
// hybrid cache; tests can use a map.
type HTTPContent interface {
	// Get returns the body for path, or ok=false for 404.
	Get(path string) (body []byte, ok bool)
}

// ContentMap is a trivial in-memory HTTPContent.
type ContentMap map[string][]byte

// Get implements HTTPContent.
func (m ContentMap) Get(path string) ([]byte, bool) {
	b, ok := m[path]
	return b, ok
}

// HTTPServer is the HTTP extension: the HyperText Transport Protocol
// implemented directly within the kernel, "splicing together the protocol
// stack and the local file system" so a server can respond quickly.
type HTTPServer struct {
	stack   *Stack
	content HTTPContent
	// Requests counts GETs served.
	Requests int64
	// NotFound counts 404s.
	NotFound int64
}

// NewHTTPServer starts the extension listening on port (normally 80).
func NewHTTPServer(stack *Stack, port uint16, cost DeliveryCost, content HTTPContent) (*HTTPServer, error) {
	return NewHTTPServerOwned("", stack, port, cost, content)
}

// NewHTTPServerOwned is NewHTTPServer with a recorded owning principal, so
// the listener is withdrawn when the owner's domain is destroyed
// (DestroyDomain's "net.tcp" reclaimer) — the crash-only kill switch the
// failover experiments flip on a backend.
func NewHTTPServerOwned(owner string, stack *Stack, port uint16, cost DeliveryCost, content HTTPContent) (*HTTPServer, error) {
	h := &HTTPServer{stack: stack, content: content}
	err := stack.TCP().ListenOwned(owner, port, cost, func(c *Conn) {
		var reqBuf []byte
		c.OnData = func(c *Conn, data []byte) {
			reqBuf = append(reqBuf, data...)
			if !strings.Contains(string(reqBuf), "\r\n\r\n") {
				return // request incomplete
			}
			h.serve(c, string(reqBuf))
			reqBuf = nil
		}
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// serve parses one request and sends the response on the connection. When
// tracing is enabled the whole serve — parse, content lookup, response
// send — is one sample in the "net.http.serve" latency series.
func (h *HTTPServer) serve(c *Conn, req string) {
	if tr := h.stack.disp.Tracer(); tr != nil {
		start := h.stack.clock.Now()
		defer func() {
			tr.Observe("net.http.serve", h.stack.clock.Now().Sub(start))
		}()
	}
	h.serve1(c, req)
}

func (h *HTTPServer) serve1(c *Conn, req string) {
	line, _, _ := strings.Cut(req, "\r\n")
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "GET" {
		_ = c.Send([]byte("HTTP/1.0 400 Bad Request\r\n\r\n"))
		c.Close()
		return
	}
	path := fields[1]
	body, ok := h.content.Get(path)
	if !ok {
		h.NotFound++
		_ = c.Send([]byte("HTTP/1.0 404 Not Found\r\n\r\n"))
		c.Close()
		return
	}
	h.Requests++
	head := fmt.Sprintf("HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n", len(body))
	_ = c.Send(append([]byte(head), body...))
	c.Close()
}

// HTTPGet performs one HTTP transaction from this stack to server:port,
// invoking done with the response body when the transfer completes (the
// server closing the connection ends the body).
func HTTPGet(stack *Stack, server IPAddr, port uint16, path string, cost DeliveryCost, done func(status string, body []byte)) error {
	conn, err := stack.TCP().Connect(server, port, cost)
	if err != nil {
		return err
	}
	var resp []byte
	finished := false
	conn.OnConnect = func(c *Conn) {
		_ = c.Send([]byte("GET " + path + " HTTP/1.0\r\n\r\n"))
	}
	conn.OnData = func(c *Conn, data []byte) {
		resp = append(resp, data...)
	}
	conn.OnClose = func(c *Conn) {
		if finished {
			return
		}
		finished = true
		c.Close() // complete our half of the teardown
		if done == nil {
			return
		}
		headers, body, found := strings.Cut(string(resp), "\r\n\r\n")
		status, _, _ := strings.Cut(headers, "\r\n")
		if !found {
			done(status, nil)
			return
		}
		done(status, []byte(body))
	}
	return nil
}
