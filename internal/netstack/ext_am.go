package netstack

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Active Messages and RPC extensions (the "A.M." and "RPC" boxes of Figure
// 5): network transports for a remote procedure call package and active
// messages [von Eicken et al. 92]. Both ride UDP in this implementation.

// amPort is the UDP port the active-message layer claims.
const amPort = 7001

// AMHandler runs in the kernel on message arrival — the active-message
// model: the message names its handler, which executes immediately on
// receipt.
type AMHandler func(src IPAddr, arg uint64, payload []byte)

// ActiveMessages is the active-message extension on one stack.
type ActiveMessages struct {
	stack    *Stack
	handlers map[uint16]AMHandler
	// Delivered counts handler invocations.
	Delivered int64
}

// NewActiveMessages installs the extension.
func NewActiveMessages(stack *Stack) (*ActiveMessages, error) {
	am := &ActiveMessages{stack: stack, handlers: make(map[uint16]AMHandler)}
	err := stack.UDP().Bind(amPort, InKernelDelivery, func(pkt *Packet) {
		if len(pkt.Payload) < 10 {
			return
		}
		idx := binary.BigEndian.Uint16(pkt.Payload[:2])
		arg := binary.BigEndian.Uint64(pkt.Payload[2:10])
		if h, ok := am.handlers[idx]; ok {
			am.Delivered++
			h(pkt.Src, arg, pkt.Payload[10:])
		}
	})
	if err != nil {
		return nil, err
	}
	return am, nil
}

// Register assigns handler index idx.
func (am *ActiveMessages) Register(idx uint16, h AMHandler) { am.handlers[idx] = h }

// Send fires an active message at dst's handler idx.
func (am *ActiveMessages) Send(dst IPAddr, idx uint16, arg uint64, payload []byte) error {
	buf := make([]byte, 10+len(payload))
	binary.BigEndian.PutUint16(buf[:2], idx)
	binary.BigEndian.PutUint64(buf[2:10], arg)
	copy(buf[10:], payload)
	return am.stack.UDP().Send(amPort, dst, amPort, buf)
}

// RPC is a remote procedure call package using ActiveMessages as its
// network transport.
type RPC struct {
	am    *ActiveMessages
	procs map[uint64]func([]byte) []byte
	// pending maps call id -> reply continuation.
	pending map[uint64]func([]byte)
	nextID  uint64
}

// AM handler indices used by the RPC layer.
const (
	amRPCCall  = 100
	amRPCReply = 101
)

// NewRPC installs the RPC extension over an active-message layer.
func NewRPC(am *ActiveMessages) *RPC {
	r := &RPC{
		am:      am,
		procs:   make(map[uint64]func([]byte) []byte),
		pending: make(map[uint64]func([]byte)),
		nextID:  1,
	}
	am.Register(amRPCCall, func(src IPAddr, callID uint64, payload []byte) {
		if len(payload) < 8 {
			return
		}
		procID := binary.BigEndian.Uint64(payload[:8])
		proc, ok := r.procs[procID]
		var result []byte
		if ok {
			result = proc(payload[8:])
		}
		_ = am.Send(src, amRPCReply, callID, result)
	})
	am.Register(amRPCReply, func(_ IPAddr, callID uint64, payload []byte) {
		if k, ok := r.pending[callID]; ok {
			delete(r.pending, callID)
			k(payload)
		}
	})
	return r
}

// Export registers a procedure under procID.
func (r *RPC) Export(procID uint64, proc func([]byte) []byte) { r.procs[procID] = proc }

// ErrNilContinuation guards Call misuse.
var ErrNilContinuation = errors.New("netstack: RPC call needs a continuation")

// Call invokes procID at dst; reply invokes k. (Asynchronous: the simulation
// makes the reply a later event.)
func (r *RPC) Call(dst IPAddr, procID uint64, arg []byte, k func(result []byte)) error {
	if k == nil {
		return ErrNilContinuation
	}
	id := r.nextID
	r.nextID++
	r.pending[id] = k
	buf := make([]byte, 8+len(arg))
	binary.BigEndian.PutUint64(buf[:8], procID)
	copy(buf[8:], arg)
	if err := r.am.Send(dst, amRPCCall, id, buf); err != nil {
		delete(r.pending, id)
		return fmt.Errorf("netstack: rpc call: %w", err)
	}
	return nil
}

// Pending reports in-flight calls (tests).
func (r *RPC) Pending() int { return len(r.pending) }
