package netstack

import (
	"fmt"
	"strings"

	"spin/internal/dispatch"
	"spin/internal/domain"
)

// PacketFilter: the paper's §2.1 argues that "little language" in-kernel
// packet filters [Mogul et al. 87, Yuhara et al. 94] are subsumed by SPIN's
// extension model — a filter is just a guard composed from predicates, and
// its action is an ordinary handler running at native speed. This extension
// provides the predicate combinators and installs the result on the
// protocol graph.

// Predicate tests one packet. Predicates compose with And/Or/Not.
type Predicate func(*Packet) bool

// MatchProto matches the IP protocol number.
func MatchProto(proto uint8) Predicate {
	return func(p *Packet) bool { return p.Proto == proto }
}

// MatchSrc matches the source address.
func MatchSrc(addr IPAddr) Predicate {
	return func(p *Packet) bool { return p.Src == addr }
}

// MatchDst matches the destination address.
func MatchDst(addr IPAddr) Predicate {
	return func(p *Packet) bool { return p.Dst == addr }
}

// MatchDstPortRange matches destination ports in [lo, hi].
func MatchDstPortRange(lo, hi uint16) Predicate {
	return func(p *Packet) bool { return p.DstPort >= lo && p.DstPort <= hi }
}

// MatchPayloadPrefix matches packets whose payload starts with prefix.
func MatchPayloadPrefix(prefix []byte) Predicate {
	return func(p *Packet) bool {
		return len(p.Payload) >= len(prefix) && string(p.Payload[:len(prefix)]) == string(prefix)
	}
}

// And is true when every predicate is.
func And(ps ...Predicate) Predicate {
	return func(p *Packet) bool {
		for _, pred := range ps {
			if !pred(p) {
				return false
			}
		}
		return true
	}
}

// Or is true when any predicate is.
func Or(ps ...Predicate) Predicate {
	return func(p *Packet) bool {
		for _, pred := range ps {
			if pred(p) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(pred Predicate) Predicate {
	return func(p *Packet) bool { return !pred(p) }
}

// FilterAction is what a matching filter does with the packet.
type FilterAction int

// Filter actions.
const (
	// Observe counts the packet and lets processing continue.
	Observe FilterAction = iota
	// Drop claims the packet, suppressing further processing.
	Drop
	// Divert claims the packet and hands it to the filter's consumer.
	Divert
)

func (a FilterAction) String() string {
	switch a {
	case Observe:
		return "observe"
	case Drop:
		return "drop"
	case Divert:
		return "divert"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// PacketFilter is one installed filter.
type PacketFilter struct {
	stack  *Stack
	name   string
	action FilterAction
	ref    dispatch.HandlerRef
	// Consumer receives diverted packets.
	Consumer func(*Packet)
	// Matched counts packets the predicate accepted.
	Matched int64
}

// NewPacketFilter installs a filter at the IP layer of stack. The predicate
// becomes the handler's guard — evaluated by the dispatcher like any other
// guard, with the same per-guard cost the §5.5 experiment measures.
func NewPacketFilter(stack *Stack, name string, pred Predicate, action FilterAction) (*PacketFilter, error) {
	f := &PacketFilter{stack: stack, name: name, action: action}
	ref, err := stack.disp.Install(EvIPArrived, func(arg, _ any) any {
		pkt := arg.(*Packet)
		f.Matched++
		switch f.action {
		case Drop:
			pkt.Claimed = true
			return true
		case Divert:
			pkt.Claimed = true
			if f.Consumer != nil {
				f.Consumer(pkt)
			}
			return true
		default:
			return false
		}
	}, dispatch.InstallOptions{
		Installer: domain.Identity{Name: "filter:" + name},
		Guard: func(arg any) bool {
			pkt, ok := arg.(*Packet)
			return ok && pred(pkt)
		},
	})
	if err != nil {
		return nil, err
	}
	f.ref = ref
	return f, nil
}

// Remove uninstalls the filter.
func (f *PacketFilter) Remove() { _ = f.stack.disp.Remove(f.ref) }

// String describes the filter.
func (f *PacketFilter) String() string {
	return fmt.Sprintf("filter %s (%s): matched %d", strings.TrimSpace(f.name), f.action, f.Matched)
}
