package netstack

// Concurrency torture and counter-exactness tests for the parallel-safe
// netstack, in the style of internal/dispatch/race_test.go: run under -race.
// All injection goes through InjectRX against unconnected NICs, so every
// handler reached from an RX worker is a pure consumer — the transmit paths
// (echo replies, TCP resets) fail at the disconnected driver before they
// could touch the single-threaded simulation engine.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spin/internal/sal"
	"spin/internal/trace"
)

// parallelHost builds one machine with n attached, unconnected NICs — the
// fixture for worker-mode RX tests.
func parallelHost(t *testing.T, n int) *host {
	t.Helper()
	h := newNetHost(t, "parallel", Addr(10, 0, 0, 1), sal.LanceModel)
	for i := 1; i < n; i++ {
		// Inject-only NICs never take interrupts, so sharing a vector is
		// harmless.
		h.stack.Attach(sal.NewNIC(sal.LanceModel, h.eng, h.ic, sal.VecNIC1))
	}
	return h
}

// inject delivers pkt to the queue, retrying through transient backpressure,
// and counts every attempt.
func inject(s *Stack, nic int, pkt *Packet, attempts *atomic.Int64) {
	for {
		attempts.Add(1)
		if s.InjectRX(nic, pkt) {
			return
		}
		runtime.Gosched()
	}
}

// drainAll empties every RX queue on the simulation goroutine (after workers
// stop) so queue contents can be accounted exactly.
func drainAll(s *Stack) {
	for _, q := range *s.rxqs.Load() {
		for s.drainRX(q, DefaultRXQueueDepth) > 0 {
		}
	}
}

// Torture: concurrent Bind/Unbind/EphemeralPort/AddRoute/Listen/Unlisten
// against parallel RX workers pushing UDP datagrams, fragment streams, and
// stray TCP segments up the graph must be race-free, and the atomic counters
// must balance exactly: accepted + dropped = attempts, received = accepted.
func TestConcurrentBindRaiseReassembleTorture(t *testing.T) {
	const nics = 4
	h := parallelHost(t, nics)
	s := h.stack
	sink, err := s.UDP().Sink(9, InKernelDelivery)
	if err != nil {
		t.Fatal(err)
	}
	s.StartRXWorkers()

	const (
		injectors   = 4
		perInjector = 2000 // divisible by 4: the case split below is exact
		mutIters    = 1500
	)
	var attempts, accepted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < injectors; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perInjector; i++ {
				var pkt *Packet
				switch i % 4 {
				case 0: // datagram to the stable sink binding
					pkt = &Packet{Src: Addr(10, 0, 0, 2), Dst: s.IP, Proto: ProtoUDP,
						SrcPort: 1, DstPort: 9, Payload: make([]byte, 16), TTL: 32}
				case 1: // datagram to a port a mutator churns
					pkt = &Packet{Src: Addr(10, 0, 0, 2), Dst: s.IP, Proto: ProtoUDP,
						SrcPort: 1, DstPort: uint16(100 + g), Payload: make([]byte, 16), TTL: 32}
				case 2: // lone fragment that never completes (exercises eviction)
					pkt = &Packet{Src: Addr(10, 0, 0, byte(g+2)), Dst: s.IP, Proto: ProtoUDP,
						SrcPort: 1, DstPort: 99, FragID: uint32(i + 1), FragOffset: 0,
						MoreFrags: true, Payload: make([]byte, 64), TTL: 32}
				case 3: // stray TCP segment: no conn, not a SYN -> reset path
					pkt = &Packet{Src: Addr(10, 0, 0, 3), Dst: s.IP, Proto: ProtoTCP,
						SrcPort: uint16(g + 1), DstPort: 81, Flags: FlagACK, Seq: 1, TTL: 32}
				}
				inject(s, (g+i)%nics, pkt, &attempts)
				accepted.Add(1)
			}
		}()
	}
	// Mutators churn every COW table while deliveries are in flight.
	for m := 0; m < injectors; m++ {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			port := uint16(100 + m)
			for i := 0; i < mutIters; i++ {
				if err := s.UDP().Bind(port, nil, func(*Packet) {}); err != nil {
					t.Error(err)
					return
				}
				s.UDP().Unbind(port)
				p, err := s.UDP().EphemeralPort()
				if err != nil {
					t.Error(err)
					return
				}
				if err := s.UDP().Bind(p, nil, nil); err != nil {
					t.Error(err)
					return
				}
				s.UDP().Unbind(p)
				s.AddRoute(Addr(10, 1, byte(m), byte(i)), h.nic)
				if err := s.TCP().Listen(uint16(200+m), nil, func(*Conn) {}); err != nil {
					t.Error(err)
					return
				}
				s.TCP().Unlisten(uint16(200 + m))
			}
		}()
	}
	wg.Wait()
	s.StopRXWorkers()
	drainAll(s)

	acc, dropped := s.RXStats()
	if acc != accepted.Load() {
		t.Errorf("queue accepted = %d, injectors saw %d", acc, accepted.Load())
	}
	if acc+dropped != attempts.Load() {
		t.Errorf("accepted %d + dropped %d != attempts %d", acc, dropped, attempts.Load())
	}
	received, _ := s.Stats()
	if received != acc {
		t.Errorf("received %d packets, accepted %d — drained packets lost", received, acc)
	}
	const sinkWant = injectors * perInjector / 4
	if got := sink.Packets(); got != sinkWant {
		t.Errorf("sink delivered %d datagrams, want exactly %d", got, sinkWant)
	}
	if pending, _ := s.ReassemblyStats(); pending > reasmShards*maxPendingPerShard {
		t.Errorf("reassembly pending %d exceeds cap %d", pending, reasmShards*maxPendingPerShard)
	}
	if s.TCP().Conns() != 0 {
		t.Errorf("stray segments created %d connections", s.TCP().Conns())
	}
}

// Counter exactness (satellite of the COW refactor): Stack.Stats, RXStats and
// SinkStats totals are exact when deliveries arrive from parallel workers —
// atomics must not drop counts.
func TestStatsExactUnderParallelDelivery(t *testing.T) {
	const nics = 2
	h := parallelHost(t, nics)
	s := h.stack
	const payload = 32
	sink, err := s.UDP().Sink(9, InKernelDelivery)
	if err != nil {
		t.Fatal(err)
	}
	s.StartRXWorkers()
	defer s.StopRXWorkers()

	const goroutines, per = 4, 4000
	var attempts atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The receive path never writes to a plain UDP packet, so one
			// packet per producer can ride every injection.
			pkt := &Packet{Src: Addr(10, 0, 0, 2), Dst: s.IP, Proto: ProtoUDP,
				SrcPort: uint16(g + 1), DstPort: 9, Payload: make([]byte, payload), TTL: 32}
			for i := 0; i < per; i++ {
				inject(s, (g+i)%nics, pkt, &attempts)
			}
		}()
	}
	wg.Wait()
	const total = int64(goroutines * per)
	deadline := time.Now().Add(30 * time.Second)
	for sink.Packets() < total {
		if time.Now().After(deadline) {
			t.Fatalf("sink drained %d of %d datagrams before deadline", sink.Packets(), total)
		}
		time.Sleep(time.Millisecond)
	}
	if got := sink.Packets(); got != total {
		t.Errorf("sink.Packets = %d, want exactly %d", got, total)
	}
	if got := sink.Bytes(); got != total*payload {
		t.Errorf("sink.Bytes = %d, want exactly %d", got, total*payload)
	}
	received, _ := s.Stats()
	if received != total {
		t.Errorf("Stats received = %d, want exactly %d", received, total)
	}
	acc, dropped := s.RXStats()
	if acc != total {
		t.Errorf("RXStats accepted = %d, want %d", acc, total)
	}
	if acc+dropped != attempts.Load() {
		t.Errorf("accepted %d + dropped %d != attempts %d", acc, dropped, attempts.Load())
	}
}

// Regression (UDP Bind/deliver race): concurrent Bind/Unbind of the very port
// packets are being delivered to must be race-free — deliver loads one port
// table snapshot and sees either the old or the new binding, never a torn
// map. The pre-COW table was a plain map mutated under deliveries.
func TestConcurrentBindUnbindWithDeliveries(t *testing.T) {
	h := parallelHost(t, 1)
	s := h.stack
	s.StartRXWorkers()

	var delivered, attempts atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pkt := &Packet{Src: Addr(10, 0, 0, 2), Dst: s.IP, Proto: ProtoUDP,
			SrcPort: 1, DstPort: 7, Payload: make([]byte, 8), TTL: 32}
		for i := 0; i < 20000; i++ {
			inject(s, 0, pkt, &attempts)
		}
	}()
	for b := 0; b < 2; b++ {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One binder churns the delivery port itself, the other churns a
			// neighbor (forcing table copies that must not tear deliveries).
			port := uint16(7 + b)
			for i := 0; i < 4000; i++ {
				err := s.UDP().Bind(port, nil, func(*Packet) { delivered.Add(1) })
				if err != nil {
					t.Errorf("bind %d: %v", port, err)
					return
				}
				s.UDP().Unbind(port)
			}
		}()
	}
	wg.Wait()
	s.StopRXWorkers()
	drainAll(s)
	// Delivery count depends on interleaving; the invariants are no race, no
	// panic, and exact packet accounting.
	received, _ := s.Stats()
	acc, dropped := s.RXStats()
	if received != acc || acc+dropped != attempts.Load() {
		t.Errorf("received=%d accepted=%d dropped=%d attempts=%d", received, acc, dropped, attempts.Load())
	}
	if delivered.Load() > received {
		t.Errorf("delivered %d > received %d", delivered.Load(), received)
	}
}

// Backpressure is explicit: a full RX queue drops the packet, counts it, and
// emits a trace record — it never buffers without bound.
func TestRXQueueBackpressureDrops(t *testing.T) {
	h := newNetHost(t, "bp", Addr(10, 0, 0, 1), sal.LanceModel)
	s := h.stack
	tr := trace.New(64)
	s.Dispatcher().SetTracer(tr)
	sink, err := s.UDP().Sink(9, InKernelDelivery)
	if err != nil {
		t.Fatal(err)
	}
	// No workers and no engine steps: the queue fills at DefaultRXQueueDepth.
	const over = 50
	var ok, rejected int
	for i := 0; i < DefaultRXQueueDepth+over; i++ {
		pkt := &Packet{Src: Addr(10, 0, 0, 2), Dst: s.IP, Proto: ProtoUDP,
			SrcPort: 1, DstPort: 9, Payload: make([]byte, 8), TTL: 32}
		if s.InjectRX(0, pkt) {
			ok++
		} else {
			rejected++
		}
	}
	if ok != DefaultRXQueueDepth || rejected != over {
		t.Fatalf("accepted %d rejected %d, want %d and %d", ok, rejected, DefaultRXQueueDepth, over)
	}
	if _, dropped := s.RXStats(); dropped != over {
		t.Errorf("rx.dropped = %d, want %d", dropped, over)
	}
	found := 0
	for _, rec := range tr.Snapshot() {
		if rec.Event == "net.rx.dropped" {
			found++
		}
	}
	if found == 0 {
		t.Error("no net.rx.dropped trace records emitted for dropped packets")
	}
	// The engine drains exactly what was accepted.
	h.eng.Run(0)
	if got := sink.Packets(); got != DefaultRXQueueDepth {
		t.Errorf("sink drained %d, want %d", got, DefaultRXQueueDepth)
	}
}

// The driver half of backpressure: when the stack upcall refuses a frame the
// NIC counts it as dropped-on-receive.
func TestNICCountsRefusedFrames(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	b.nic.OnReceive = func(sal.NetFrame) bool { return false }
	if err := a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	cl.Run(0)
	if got := b.nic.RXDropped(); got != 1 {
		t.Errorf("RXDropped = %d, want 1", got)
	}
	if got := a.nic.RXDropped(); got != 0 {
		t.Errorf("sender RXDropped = %d, want 0", got)
	}
}

// InjectRX bounds-checks the NIC index rather than panicking.
func TestInjectRXBounds(t *testing.T) {
	h := parallelHost(t, 2)
	pkt := &Packet{Src: Addr(10, 0, 0, 2), Dst: h.stack.IP, Proto: ProtoUDP, DstPort: 9, TTL: 32}
	for _, idx := range []int{-1, 2, 100} {
		if h.stack.InjectRX(idx, pkt) {
			t.Errorf("InjectRX(%d) accepted on a 2-NIC stack", idx)
		}
	}
}

// Workers stop cleanly and can be restarted; packets queued across the
// restart are not lost.
func TestRXWorkerRestart(t *testing.T) {
	h := parallelHost(t, 1)
	s := h.stack
	sink, err := s.UDP().Sink(9, InKernelDelivery)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		s.StartRXWorkers()
		var attempts atomic.Int64
		pkt := &Packet{Src: Addr(10, 0, 0, 2), Dst: s.IP, Proto: ProtoUDP,
			SrcPort: 1, DstPort: 9, Payload: make([]byte, 8), TTL: 32}
		for i := 0; i < 500; i++ {
			inject(s, 0, pkt, &attempts)
		}
		s.StopRXWorkers()
		drainAll(s) // pick up anything queued when the workers exited
		if got, want := sink.Packets(), int64(500*round); got != want {
			t.Fatalf("round %d: sink = %d, want %d", round, got, want)
		}
	}
}
