package netstack

import (
	"errors"
	"fmt"

	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/sal"
	"spin/internal/sim"
)

// Event names in the protocol graph (Figure 5). Every event carries a
// *Packet argument; handlers return true to claim the packet.
const (
	EvEtherArrived = "Ether.PktArrived"
	EvATMArrived   = "ATM.PktArrived"
	EvIPArrived    = "IP.PacketArrived"
	EvICMPArrived  = "ICMP.PktArrived"
	EvUDPArrived   = "UDP.PktArrived"
	EvTCPArrived   = "TCP.PktArrived"
	// EvSendPacket is raised on the outbound path; the video server's
	// multicast extension installs here.
	EvSendPacket = "Video.SendPacket"
)

// anyClaimed folds handler results: the packet is claimed if any handler
// claimed it.
func anyClaimed(results []any) any {
	for _, r := range results {
		if b, ok := r.(bool); ok && b {
			return true
		}
	}
	return false
}

// Endpoint delivery semantics differ between systems: a SPIN extension
// receives the packet in the kernel for free (a procedure call); a user
// process behind a socket pays the socket/copy/wakeup path. DeliveryCost
// lets the baseline reuse this stack while charging its structure.
type DeliveryCost func(clock *sim.Clock, p *Packet)

// InKernelDelivery is SPIN's: the handler IS the endpoint; no extra cost
// beyond the dispatch already charged.
func InKernelDelivery(*sim.Clock, *Packet) {}

// Stack is one machine's protocol stack. It attaches NIC drivers at the
// bottom, defines the protocol-graph events on the machine's dispatcher,
// and hosts the UDP/TCP port tables.
type Stack struct {
	Host    string
	IP      IPAddr
	engine  *sim.Engine
	clock   *sim.Clock
	profile *sim.Profile
	disp    *dispatch.Dispatcher

	// routes maps destination address -> outbound NIC.
	routes map[IPAddr]*sal.NIC
	// defaultNIC carries packets with no specific route.
	defaultNIC *sal.NIC

	udp *UDP
	tcp *TCP

	// fragID numbers outbound fragmented datagrams; reasm collects
	// inbound fragments.
	fragID uint32
	reasm  *reassembly

	received int64
	sent     int64
}

// NewStack builds a protocol stack on the machine's dispatcher and defines
// the graph events. ident names the stack for authorization purposes.
func NewStack(host string, ip IPAddr, engine *sim.Engine, profile *sim.Profile, disp *dispatch.Dispatcher) (*Stack, error) {
	s := &Stack{
		Host:    host,
		IP:      ip,
		engine:  engine,
		clock:   engine.Clock,
		profile: profile,
		disp:    disp,
		routes:  make(map[IPAddr]*sal.NIC),
		reasm:   newReassembly(),
	}
	// The IP module is the default implementation module for
	// IP.PacketArrived: its authorizer hands each installer a guard
	// comparing the packet's protocol type against what the handler may
	// service (the paper's worked example). Installers declare the
	// protocols they service via identity name prefix "proto:<n>:".
	ipAuth := func(installer domain.Identity) (dispatch.Guard, error) {
		var proto uint8
		if n, err := fmt.Sscanf(installer.Name, "proto:%d:", &proto); n == 1 && err == nil {
			p := proto
			return func(arg any) bool {
				pkt, ok := arg.(*Packet)
				return ok && pkt.Proto == p
			}, nil
		}
		return nil, nil // no protocol claim: unrestricted (trusted stack parts)
	}
	events := []struct {
		name string
		opts dispatch.DefineOptions
	}{
		{EvEtherArrived, dispatch.DefineOptions{Combiner: anyClaimed}},
		{EvATMArrived, dispatch.DefineOptions{Combiner: anyClaimed}},
		{EvIPArrived, dispatch.DefineOptions{Combiner: anyClaimed, Authorizer: ipAuth}},
		{EvICMPArrived, dispatch.DefineOptions{Combiner: anyClaimed}},
		{EvUDPArrived, dispatch.DefineOptions{Combiner: anyClaimed}},
		{EvTCPArrived, dispatch.DefineOptions{Combiner: anyClaimed}},
		{EvSendPacket, dispatch.DefineOptions{Combiner: anyClaimed}},
	}
	for _, e := range events {
		if err := disp.Define(e.name, e.opts); err != nil {
			return nil, err
		}
	}
	s.udp = newUDP(s)
	s.tcp = newTCP(s)

	// ICMP echo: the Ping module's primary handler.
	_, err := disp.Install(EvICMPArrived, func(arg, _ any) any {
		pkt := arg.(*Packet)
		if pkt.ICMPType == 8 { // echo request -> reply
			reply := &Packet{
				Src: s.IP, Dst: pkt.Src, Proto: ProtoICMP,
				ICMPType: 0, ICMPSeq: pkt.ICMPSeq,
				Payload: append([]byte(nil), pkt.Payload...),
				TTL:     32,
			}
			_ = s.SendIP(reply)
			return true
		}
		return false
	}, dispatch.InstallOptions{Installer: domain.Identity{Name: "proto:1:ping", Trusted: true}})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// UDP exposes the stack's UDP module.
func (s *Stack) UDP() *UDP { return s.udp }

// TCP exposes the stack's TCP module.
func (s *Stack) TCP() *TCP { return s.tcp }

// Dispatcher exposes the machine dispatcher (extensions install handlers
// through it).
func (s *Stack) Dispatcher() *dispatch.Dispatcher { return s.disp }

// Engine exposes the machine engine (timers).
func (s *Stack) Engine() *sim.Engine { return s.engine }

// Clock exposes the machine clock.
func (s *Stack) Clock() *sim.Clock { return s.clock }

// Profile exposes the machine cost profile.
func (s *Stack) Profile() *sim.Profile { return s.profile }

// Attach connects a NIC as a driver at the bottom of the graph. The first
// attached NIC becomes the default route. Incoming frames are handed to a
// separately scheduled protocol-processing step (one context switch), then
// pushed up through the event graph.
func (s *Stack) Attach(nic *sal.NIC) {
	if s.defaultNIC == nil {
		s.defaultNIC = nic
	}
	linkEvent := EvEtherArrived
	if nic.Model.CellSize > 0 {
		linkEvent = EvATMArrived
	}
	nic.OnReceive = func(f sal.NetFrame) {
		pkt, ok := f.Payload.(*Packet)
		if !ok {
			return
		}
		// Protocol processing runs in a separately scheduled kernel
		// thread outside the interrupt handler (paper §5.3).
		s.engine.After(0, func() {
			s.clock.Advance(s.profile.ContextSwitch)
			s.receive(linkEvent, pkt)
		})
	}
}

// AddRoute directs packets for dst out through nic.
func (s *Stack) AddRoute(dst IPAddr, nic *sal.NIC) {
	s.routes[dst] = nic
}

// receive pushes one packet up the graph, timing the whole inbound path
// when tracing is enabled (the tracer pointer is the dispatcher's single
// enable/disable switch, so the disabled cost is one nil load per packet).
func (s *Stack) receive(linkEvent string, pkt *Packet) {
	tr := s.disp.Tracer()
	if tr == nil {
		s.receive1(linkEvent, pkt)
		return
	}
	start := s.clock.Now()
	s.receive1(linkEvent, pkt)
	tr.Observe("net.rx", s.clock.Now().Sub(start))
}

func (s *Stack) receive1(linkEvent string, pkt *Packet) {
	s.received++
	// Link layer processing + event.
	s.clock.Advance(s.profile.ProtoLayer)
	if claimed, _ := s.disp.Raise(linkEvent, pkt).(bool); claimed {
		return
	}
	// IP layer: header validation, checksum over header.
	s.clock.Advance(s.profile.ProtoLayer)
	if claimed, _ := s.disp.Raise(EvIPArrived, pkt).(bool); claimed {
		return
	}
	if pkt.Dst != s.IP {
		// Not ours and nobody claimed it: drop (no transparent
		// routing unless a forwarder extension claims it).
		return
	}
	// Reassemble fragmented datagrams before transport processing.
	if pkt.MoreFrags || pkt.FragID != 0 {
		s.clock.Advance(s.profile.ProtoLayer / 2)
		whole, waited := s.reasm.reassemble(pkt, s.clock.Now())
		if whole == nil {
			return // awaiting more fragments
		}
		if tr := s.disp.Tracer(); tr != nil {
			// Reassembly latency: first fragment arrival to completion.
			tr.Observe("net.ip.reassemble", waited)
		}
		pkt = whole
	}
	// Transport layer: header processing plus checksum verification over
	// the payload.
	s.clock.Advance(s.profile.ProtoLayer)
	s.clock.Advance(sim.Duration(len(pkt.Payload)) * ChecksumPerByte)
	switch pkt.Proto {
	case ProtoICMP:
		s.disp.Raise(EvICMPArrived, pkt)
	case ProtoUDP:
		if claimed, _ := s.disp.Raise(EvUDPArrived, pkt).(bool); !claimed {
			s.udp.deliver(pkt)
		}
	case ProtoTCP:
		if claimed, _ := s.disp.Raise(EvTCPArrived, pkt).(bool); !claimed {
			s.tcp.deliver(pkt)
		}
	}
}

// ErrNoRoute reports a destination with no attached NIC.
var ErrNoRoute = errors.New("netstack: no route to host")

// ChecksumPerByte is the CPU cost of checksumming one payload byte
// (~1 cycle/byte at 133 MHz). Charged once on send and once on receive.
const ChecksumPerByte = 8 * sim.Nanosecond

// SendIP transmits pkt: transport+IP header build, then the driver.
func (s *Stack) SendIP(pkt *Packet) error {
	if pkt.TTL == 0 {
		pkt.TTL = 32
	}
	nic := s.routes[pkt.Dst]
	if nic == nil {
		nic = s.defaultNIC
	}
	if nic == nil {
		return ErrNoRoute
	}
	// Transport + IP header construction, plus the transport checksum
	// over the payload.
	s.clock.Advance(2 * s.profile.ProtoLayer)
	s.clock.Advance(sim.Duration(len(pkt.Payload)) * ChecksumPerByte)
	s.sent++
	if mtu := mtuFor(nic); pkt.WireSize()-EtherHeader > mtu {
		return s.sendFragmented(pkt, nic, mtu)
	}
	return nic.Send(sal.NetFrame{Size: pkt.WireSize(), Payload: pkt})
}

// Ping sends an ICMP echo request; reply invokes cb with the round-trip
// observed at this stack's clock.
func (s *Stack) Ping(dst IPAddr, seq uint16, payload int, cb func(rtt sim.Duration)) error {
	start := s.clock.Now()
	ref, err := s.disp.Install(EvICMPArrived, func(arg, _ any) any {
		pkt := arg.(*Packet)
		if pkt.ICMPType == 0 && pkt.ICMPSeq == seq {
			if cb != nil {
				cb(s.clock.Now().Sub(start))
			}
			return true
		}
		return false
	}, dispatch.InstallOptions{Installer: domain.Identity{Name: "proto:1:ping-client"}})
	if err != nil {
		return err
	}
	_ = ref
	return s.SendIP(&Packet{
		Src: s.IP, Dst: dst, Proto: ProtoICMP,
		ICMPType: 8, ICMPSeq: seq, Payload: make([]byte, payload), TTL: 32,
	})
}

// Stats reports packets received and sent at the IP layer.
func (s *Stack) Stats() (received, sent int64) { return s.received, s.sent }
