package netstack

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/faultinject"
	"spin/internal/sal"
	"spin/internal/sim"
	"spin/internal/trace"
)

// Event names in the protocol graph (Figure 5). Every event carries a
// *Packet argument; handlers return true to claim the packet.
const (
	EvEtherArrived = "Ether.PktArrived"
	EvATMArrived   = "ATM.PktArrived"
	EvIPArrived    = "IP.PacketArrived"
	EvICMPArrived  = "ICMP.PktArrived"
	EvUDPArrived   = "UDP.PktArrived"
	EvTCPArrived   = "TCP.PktArrived"
	// EvSendPacket is raised on the outbound path; the video server's
	// multicast extension installs here.
	EvSendPacket = "Video.SendPacket"
)

// anyClaimed folds handler results: the packet is claimed if any handler
// claimed it.
func anyClaimed(results []any) any {
	for _, r := range results {
		if b, ok := r.(bool); ok && b {
			return true
		}
	}
	return false
}

// Endpoint delivery semantics differ between systems: a SPIN extension
// receives the packet in the kernel for free (a procedure call); a user
// process behind a socket pays the socket/copy/wakeup path. DeliveryCost
// lets the baseline reuse this stack while charging its structure.
type DeliveryCost func(clock *sim.Clock, p *Packet)

// InKernelDelivery is SPIN's: the handler IS the endpoint; no extra cost
// beyond the dispatch already charged.
func InKernelDelivery(*sim.Clock, *Packet) {}

// RX queue sizing: each attached NIC gets a bounded receive queue; a full
// queue drops the frame (counted, traced) rather than buffering without
// bound. rxBatch is how many packets a parallel RX worker dequeues per
// wakeup.
const (
	DefaultRXQueueDepth = 1024
	rxBatch             = 64
)

// rxQueue is one NIC's bounded receive queue. The driver upcall enqueues in
// interrupt context; protocol processing dequeues — either one engine-
// scheduled step per packet (the deterministic simulation path) or a
// dedicated worker goroutine draining batches (the parallel path).
type rxQueue struct {
	nic       *sal.NIC
	linkEvent string
	ch        chan *Packet
	accepted  atomic.Int64
	dropped   atomic.Int64
	// batch is the drain's scratch buffer (capacity rxBatch), owned by
	// whichever single goroutine is draining this queue — the engine in
	// simulation mode, the queue's worker in parallel mode.
	batch []*Packet
}

// rxCtx is the receive context shared by every packet of one drained batch:
// the dispatcher's tracer and fault-injector pointers are loaded once per
// batch instead of once per packet, amortizing the snapshot loads across
// the batch.
type rxCtx struct {
	tr  *trace.Tracer
	inj *faultinject.Injector
}

// rxctx snapshots the current receive context.
func (s *Stack) rxctx() rxCtx {
	return rxCtx{tr: s.disp.Tracer(), inj: s.disp.InjectorInstalled()}
}

// Stack is one machine's protocol stack. It attaches NIC drivers at the
// bottom, defines the protocol-graph events on the machine's dispatcher,
// and hosts the UDP/TCP port tables.
//
// Concurrency model (mirrors the dispatcher's): the per-packet receive path
// is lock-free. The route table, UDP port table and TCP connection/listener
// tables are immutable snapshots behind atomic pointers; writers (AddRoute,
// Bind, Listen, connection setup/teardown) serialize on a mutex, copy, and
// swap. Counters are atomics, so Stats totals are exact under parallel
// delivery. Fragment reassembly is sharded by fragment key with one small
// lock per shard. The only part of the stack that must stay on the
// simulation goroutine is the engine itself (timers, NIC sends): parallel
// RX workers may push packets up the graph concurrently as long as the
// installed handlers do not transmit or arm timers.
type Stack struct {
	Host    string
	IP      IPAddr
	engine  *sim.Engine
	clock   *sim.Clock
	profile *sim.Profile
	disp    *dispatch.Dispatcher

	// mu serializes stack-table writers (AddRoute, Attach). The receive
	// path never takes it.
	mu sync.Mutex
	// routes maps destination address -> outbound NIC (copy-on-write).
	routes atomic.Pointer[map[IPAddr]*sal.NIC]
	// defaultNIC carries packets with no specific route.
	defaultNIC atomic.Pointer[sal.NIC]

	// rxqs is the copy-on-write list of per-NIC receive queues, in Attach
	// order.
	rxqs atomic.Pointer[[]*rxQueue]
	// workersOn is set while StartRXWorkers' goroutines drain the queues
	// (the engine-scheduled drain steps are suppressed).
	workersOn  atomic.Bool
	workerStop chan struct{}
	workerWg   sync.WaitGroup

	udp *UDP
	tcp *TCP

	// fragID numbers outbound fragmented datagrams; reasm collects
	// inbound fragments.
	fragID uint32 // accessed atomically
	reasm  *reassembly

	received atomic.Int64
	sent     atomic.Int64
	// forwarding, when set, makes the stack an IP router: transit packets
	// (destination not this host, unclaimed by any extension) are re-sent
	// along the route table with TTL decremented instead of dropped —
	// multi-hop delivery through a SPIN machine acting as a router node.
	forwarding atomic.Bool
	forwarded  atomic.Int64
	ttlExpired atomic.Int64
	// rxPanics counts handler panics contained in the receive path: a
	// faulty protocol handler costs its packet, never the RX worker or the
	// kernel (paper §4.3 applied to the data path).
	rxPanics atomic.Int64

	// xdp is the verified early-drop program evaluated before the
	// link-layer event fires (see ext_bcode.go); bcodeFilters tracks the
	// dispatcher-installed bytecode filters for the debug surfaces.
	xdp          atomic.Pointer[XDPFilter]
	bcodeMu      sync.Mutex
	bcodeFilters []*BCodeFilter
}

// NewStack builds a protocol stack on the machine's dispatcher and defines
// the graph events. ident names the stack for authorization purposes.
func NewStack(host string, ip IPAddr, engine *sim.Engine, profile *sim.Profile, disp *dispatch.Dispatcher) (*Stack, error) {
	s := &Stack{
		Host:    host,
		IP:      ip,
		engine:  engine,
		clock:   engine.Clock,
		profile: profile,
		disp:    disp,
		reasm:   newReassembly(),
	}
	emptyRoutes := make(map[IPAddr]*sal.NIC)
	s.routes.Store(&emptyRoutes)
	emptyQueues := []*rxQueue(nil)
	s.rxqs.Store(&emptyQueues)
	// The IP module is the default implementation module for
	// IP.PacketArrived: its authorizer hands each installer a guard
	// comparing the packet's protocol type against what the handler may
	// service (the paper's worked example). Installers declare the
	// protocols they service via identity name prefix "proto:<n>:".
	ipAuth := func(installer domain.Identity) (dispatch.Guard, error) {
		var proto uint8
		if n, err := fmt.Sscanf(installer.Name, "proto:%d:", &proto); n == 1 && err == nil {
			p := proto
			return func(arg any) bool {
				pkt, ok := arg.(*Packet)
				return ok && pkt.Proto == p
			}, nil
		}
		return nil, nil // no protocol claim: unrestricted (trusted stack parts)
	}
	events := []struct {
		name string
		opts dispatch.DefineOptions
	}{
		{EvEtherArrived, dispatch.DefineOptions{Combiner: anyClaimed}},
		{EvATMArrived, dispatch.DefineOptions{Combiner: anyClaimed}},
		{EvIPArrived, dispatch.DefineOptions{Combiner: anyClaimed, Authorizer: ipAuth}},
		{EvICMPArrived, dispatch.DefineOptions{Combiner: anyClaimed}},
		{EvUDPArrived, dispatch.DefineOptions{Combiner: anyClaimed}},
		{EvTCPArrived, dispatch.DefineOptions{Combiner: anyClaimed}},
		{EvSendPacket, dispatch.DefineOptions{Combiner: anyClaimed}},
	}
	for _, e := range events {
		if err := disp.Define(e.name, e.opts); err != nil {
			return nil, err
		}
	}
	s.udp = newUDP(s)
	s.tcp = newTCP(s)

	// ICMP echo: the Ping module's primary handler.
	_, err := disp.Install(EvICMPArrived, func(arg, _ any) any {
		pkt := arg.(*Packet)
		if pkt.ICMPType == 8 { // echo request -> reply
			reply := AllocPacket()
			reply.Src, reply.Dst, reply.Proto = s.IP, pkt.Src, ProtoICMP
			reply.ICMPType, reply.ICMPSeq = 0, pkt.ICMPSeq
			reply.SetPayload(pkt.Payload)
			reply.TTL = 32
			_ = s.SendIP(reply)
			return true
		}
		return false
	}, dispatch.InstallOptions{Installer: domain.Identity{Name: "proto:1:ping", Trusted: true}})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// UDP exposes the stack's UDP module.
func (s *Stack) UDP() *UDP { return s.udp }

// TCP exposes the stack's TCP module.
func (s *Stack) TCP() *TCP { return s.tcp }

// Dispatcher exposes the machine dispatcher (extensions install handlers
// through it).
func (s *Stack) Dispatcher() *dispatch.Dispatcher { return s.disp }

// Engine exposes the machine engine (timers).
func (s *Stack) Engine() *sim.Engine { return s.engine }

// Clock exposes the machine clock.
func (s *Stack) Clock() *sim.Clock { return s.clock }

// Profile exposes the machine cost profile.
func (s *Stack) Profile() *sim.Profile { return s.profile }

// Attach connects a NIC as a driver at the bottom of the graph. The first
// attached NIC becomes the default route. Incoming frames land in the NIC's
// bounded RX queue; protocol processing drains the queue in a separately
// scheduled kernel thread (one context switch per packet, paper §5.3). A
// full queue drops the frame — explicit backpressure, never unbounded
// buffering.
func (s *Stack) Attach(nic *sal.NIC) {
	s.mu.Lock()
	if s.defaultNIC.Load() == nil {
		s.defaultNIC.Store(nic)
	}
	linkEvent := EvEtherArrived
	if nic.Model.CellSize > 0 {
		linkEvent = EvATMArrived
	}
	q := &rxQueue{
		nic: nic, linkEvent: linkEvent,
		ch:    make(chan *Packet, DefaultRXQueueDepth),
		batch: make([]*Packet, 0, rxBatch),
	}
	old := *s.rxqs.Load()
	next := make([]*rxQueue, len(old)+1)
	copy(next, old)
	next[len(old)] = q
	s.rxqs.Store(&next)
	s.mu.Unlock()
	nic.OnReceive = func(f sal.NetFrame) bool {
		pkt, ok := f.Payload.(*Packet)
		if !ok {
			return false
		}
		if !s.enqueueRX(q, pkt) {
			// The sender donated its reference; a queue-full drop is the
			// end of the packet's life.
			pkt.Release()
			return false
		}
		return true
	}
}

// enqueueRX places one packet on a NIC's receive queue. In simulation mode
// it also schedules the matching drain step (so per-packet virtual timing is
// identical to a directly scheduled receive); in worker mode the queue's
// worker goroutine picks the packet up. A full queue drops the packet and
// counts it.
func (s *Stack) enqueueRX(q *rxQueue, pkt *Packet) bool {
	select {
	case q.ch <- pkt:
		q.accepted.Add(1)
		if !s.workersOn.Load() {
			// Protocol processing runs in a separately scheduled kernel
			// thread outside the interrupt handler (paper §5.3).
			s.engine.After(0, func() { s.drainRX(q, 1) })
		}
		return true
	default:
		q.dropped.Add(1)
		if tr := s.disp.Tracer(); tr != nil {
			tr.Trace(trace.Record{Event: "net.rx.dropped", Origin: "net", Start: s.clock.Now()})
		}
		return false
	}
}

// drainRX dequeues up to max packets in batches of rxBatch and pushes each
// up the graph, charging the protocol-thread context switch per packet. The
// receive context (tracer, injector) is loaded once per batch. It returns
// how many packets ran. Single-drainer per queue: it uses q.batch.
func (s *Stack) drainRX(q *rxQueue, max int) int {
	total := 0
	for total < max {
		lim := max - total
		if lim > rxBatch {
			lim = rxBatch
		}
		b := q.batch[:0]
	fill:
		for len(b) < lim {
			select {
			case pkt := <-q.ch:
				b = append(b, pkt)
			default:
				break fill
			}
		}
		if len(b) == 0 {
			return total
		}
		s.receiveBatch(q.linkEvent, b)
		total += len(b)
		if len(b) < lim {
			return total // queue drained
		}
	}
	return total
}

// receiveBatch runs one dequeued batch up the graph under a shared receive
// context, releasing each packet after its synchronous delivery (handlers
// that keep payload bytes have copied them by then).
func (s *Stack) receiveBatch(linkEvent string, pkts []*Packet) {
	ctx := s.rxctx()
	for i, pkt := range pkts {
		s.clock.Advance(s.profile.ContextSwitch)
		s.safeReceive(ctx, linkEvent, pkt)
		pkt.Release()
		pkts[i] = nil
	}
}

// safeReceive pushes one packet up the graph behind a panic guard: a handler
// panic that escapes the dispatcher's containment (or an injected one from
// the "net.rx" site) is recovered here, counted, and traced — the packet is
// lost, the RX worker (or the engine's drain step) keeps draining.
func (s *Stack) safeReceive(ctx rxCtx, linkEvent string, pkt *Packet) {
	defer func() {
		if r := recover(); r != nil {
			s.rxPanics.Add(1)
			if ctx.tr != nil {
				ctx.tr.Trace(trace.Record{
					Event: "net.rx.panic", Origin: "net",
					Start: s.clock.Now(), Outcome: trace.OutcomeFaulted,
				})
			}
		}
	}()
	s.receive(ctx, linkEvent, pkt)
}

// ReceiveOne pushes a single packet up the graph synchronously, bypassing
// the NIC queues — the direct entry the RX benchmarks use to measure the
// per-packet path (with and without an XDP program attached) without queue
// noise.
func (s *Stack) ReceiveOne(pkt *Packet) {
	s.safeReceive(s.rxctx(), EvEtherArrived, pkt)
}

// StartRXWorkers switches the stack to parallel receive: one goroutine per
// attached NIC drains that NIC's queue in batches of up to rxBatch,
// replacing the engine-scheduled per-packet drains. The receive path itself
// is lock-free (COW tables, sharded reassembly, atomic counters), so
// workers push packets up the graph fully in parallel.
//
// Restriction: handlers reached from a worker must not transmit or arm
// timers — the simulation engine's queue is single-threaded. Pure consumers
// (Sink, bound UDP handlers, filters) are safe. Tests and benchmarks inject
// packets with InjectRX; NIC interrupt delivery stays on the engine. Attach
// every NIC before starting workers: queues attached later are not drained
// until workers are restarted.
func (s *Stack) StartRXWorkers() {
	if s.workersOn.Swap(true) {
		return // already running
	}
	s.workerStop = make(chan struct{})
	stop := s.workerStop
	for _, q := range *s.rxqs.Load() {
		q := q
		s.workerWg.Add(1)
		go func() {
			defer s.workerWg.Done()
			for {
				select {
				case <-stop:
					return
				case pkt := <-q.ch:
					// Batch: gather what else accumulated before
					// processing, so per-batch work (context snapshot,
					// trace loads) amortizes.
					b := append(q.batch[:0], pkt)
				fill:
					for len(b) < rxBatch {
						select {
						case p := <-q.ch:
							b = append(b, p)
						default:
							break fill
						}
					}
					s.receiveBatch(q.linkEvent, b)
				}
			}
		}()
	}
}

// StopRXWorkers stops the parallel RX workers and waits for them to exit.
// Packets still queued are left in place (the next drain — engine or worker
// — picks them up).
func (s *Stack) StopRXWorkers() {
	if !s.workersOn.Load() {
		return
	}
	close(s.workerStop)
	s.workerWg.Wait()
	s.workersOn.Store(false)
}

// InjectRX enqueues pkt directly on the nicIndex'th attached NIC's receive
// queue, bypassing the wire — the entry point for parallel RX tests and
// benchmarks (safe from any goroutine once StartRXWorkers is running). It
// reports false if the queue was full and the packet was not enqueued; on
// false the caller keeps its reference (it may retry), on true the stack
// takes ownership of pooled packets (non-pooled ones are unaffected —
// Release is a no-op — so tests may re-inject the same literal).
func (s *Stack) InjectRX(nicIndex int, pkt *Packet) bool {
	qs := *s.rxqs.Load()
	if nicIndex < 0 || nicIndex >= len(qs) {
		return false
	}
	return s.enqueueRX(qs[nicIndex], pkt)
}

// Detach disconnects a NIC from the stack: the driver upcall is unhooked,
// the NIC's receive queue is unlinked (undrained packets are discarded with
// the queue), routes through the NIC are withdrawn, and the default route is
// promoted to the next attached NIC (or cleared). A worker goroutine still
// parked on the detached queue idles harmlessly until StopRXWorkers. It
// reports whether the NIC was attached.
func (s *Stack) Detach(nic *sal.NIC) bool {
	if nic == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.rxqs.Load()
	next := make([]*rxQueue, 0, len(old))
	found := false
	for _, q := range old {
		if q.nic == nic {
			found = true
			continue
		}
		next = append(next, q)
	}
	if !found {
		return false
	}
	nic.OnReceive = nil
	s.rxqs.Store(&next)
	oldRoutes := *s.routes.Load()
	nextRoutes := make(map[IPAddr]*sal.NIC, len(oldRoutes))
	for k, v := range oldRoutes {
		if v != nic {
			nextRoutes[k] = v
		}
	}
	s.routes.Store(&nextRoutes)
	if s.defaultNIC.Load() == nic {
		if len(next) > 0 {
			s.defaultNIC.Store(next[0].nic)
		} else {
			s.defaultNIC.Store(nil)
		}
	}
	return true
}

// RXStats sums the per-NIC receive-queue counters: packets accepted into a
// queue and packets dropped at a full queue.
func (s *Stack) RXStats() (accepted, dropped int64) {
	for _, q := range *s.rxqs.Load() {
		accepted += q.accepted.Load()
		dropped += q.dropped.Load()
	}
	return accepted, dropped
}

// RXPanics reports handler panics contained by the receive path's guard.
func (s *Stack) RXPanics() int64 { return s.rxPanics.Load() }

// ReassemblyStats reports datagrams awaiting fragments and partial buffers
// evicted by the TTL sweep or the pending cap.
func (s *Stack) ReassemblyStats() (pending int, evicted int64) {
	return s.reasm.Pending(), s.reasm.Evicted()
}

// AddRoute directs packets for dst out through nic.
func (s *Stack) AddRoute(dst IPAddr, nic *sal.NIC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.routes.Load()
	next := make(map[IPAddr]*sal.NIC, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[dst] = nic
	s.routes.Store(&next)
}

// routeFor resolves the outbound NIC for dst: the specific route if one is
// installed, else the default NIC. Lock-free.
func (s *Stack) routeFor(dst IPAddr) *sal.NIC {
	if nic := (*s.routes.Load())[dst]; nic != nil {
		return nic
	}
	return s.defaultNIC.Load()
}

// receive pushes one packet up the graph, timing the whole inbound path
// when tracing is enabled (the tracer pointer is the dispatcher's single
// enable/disable switch, loaded once per batch into ctx, so the disabled
// cost is one nil check per packet).
func (s *Stack) receive(ctx rxCtx, linkEvent string, pkt *Packet) {
	if ctx.tr == nil {
		s.receive1(ctx, linkEvent, pkt)
		return
	}
	start := s.clock.Now()
	s.receive1(ctx, linkEvent, pkt)
	ctx.tr.Observe("net.rx", s.clock.Now().Sub(start))
}

func (s *Stack) receive1(ctx rxCtx, linkEvent string, pkt *Packet) {
	// Injection site "net.rx": drop/error discards the packet before the
	// graph sees it; a panic rule exercises the safeReceive guard.
	if f := ctx.inj.Fire("net.rx"); f.Kind == faultinject.KindDrop || f.Kind == faultinject.KindError {
		return
	}
	// XDP position: the attached verified program (if any) sees the packet
	// before any layer counts or events — the cheapest possible drop.
	if s.xdpDrop(pkt) {
		return
	}
	s.received.Add(1)
	// Link layer processing + event.
	s.clock.Advance(s.profile.ProtoLayer)
	if claimed, _ := s.disp.Raise(linkEvent, pkt).(bool); claimed {
		return
	}
	// IP layer: header validation, checksum over header.
	s.clock.Advance(s.profile.ProtoLayer)
	if claimed, _ := s.disp.Raise(EvIPArrived, pkt).(bool); claimed {
		return
	}
	if pkt.Dst != s.IP {
		// Not ours and nobody claimed it: route it onward if this stack
		// is a router, else drop (no transparent routing unless a
		// forwarder extension claims it).
		if s.forwarding.Load() {
			s.forward(pkt)
		}
		return
	}
	// Reassemble fragmented datagrams before transport processing.
	if pkt.MoreFrags || pkt.FragID != 0 {
		// Injection site "net.ip.reassemble": losing a fragment leaves a
		// partial buffer for the TTL sweep to evict — the leak the
		// reassembler must absorb.
		if f := ctx.inj.Fire("net.ip.reassemble"); f.Kind == faultinject.KindDrop || f.Kind == faultinject.KindError {
			return
		}
		s.clock.Advance(s.profile.ProtoLayer / 2)
		whole, waited := s.reasm.reassemble(pkt, s.clock.Now())
		if whole == nil {
			return // awaiting more fragments
		}
		if ctx.tr != nil {
			// Reassembly latency: first fragment arrival to completion.
			ctx.tr.Observe("net.ip.reassemble", waited)
		}
		// The reassembled datagram is a fresh pooled packet; released
		// here after its synchronous delivery (the fragment that
		// completed it is released by the batch drain as usual).
		defer whole.Release()
		pkt = whole
	}
	// Transport layer: header processing plus checksum verification over
	// the payload.
	s.clock.Advance(s.profile.ProtoLayer)
	s.clock.Advance(sim.Duration(len(pkt.Payload)) * ChecksumPerByte)
	switch pkt.Proto {
	case ProtoICMP:
		s.disp.Raise(EvICMPArrived, pkt)
	case ProtoUDP:
		if claimed, _ := s.disp.Raise(EvUDPArrived, pkt).(bool); !claimed {
			s.udp.deliver(pkt)
		}
	case ProtoTCP:
		if claimed, _ := s.disp.Raise(EvTCPArrived, pkt).(bool); !claimed {
			s.tcp.deliver(ctx, pkt)
		}
	}
}

// EnableForwarding turns the stack into an IP router: inbound packets for
// other hosts are re-sent along the route table (specific routes first,
// then the default NIC) with TTL decremented, so a SPIN machine with
// several NICs can sit inside a multi-hop topology as a router node. Off by
// default — an end host silently drops transit traffic.
func (s *Stack) EnableForwarding(on bool) { s.forwarding.Store(on) }

// Forwarded reports transit packets this stack routed onward.
func (s *Stack) Forwarded() int64 { return s.forwarded.Load() }

// TTLExpired reports transit packets dropped because their TTL reached
// zero — the loop guard firing.
func (s *Stack) TTLExpired() int64 { return s.ttlExpired.Load() }

// forward re-sends one transit packet along the route table. The RX path
// only borrows the packet (the batch drain releases it after delivery), so
// the TX path gets its own reference.
func (s *Stack) forward(pkt *Packet) {
	pkt.TTL--
	if pkt.TTL <= 0 {
		s.ttlExpired.Add(1)
		if tr := s.disp.Tracer(); tr != nil {
			tr.Trace(trace.Record{Event: "net.ip.ttl-expired", Origin: "net", Start: s.clock.Now()})
		}
		return
	}
	s.forwarded.Add(1)
	_ = s.SendIP(pkt.Retain())
}

// ErrNoRoute reports a destination with no attached NIC.
var ErrNoRoute = errors.New("netstack: no route to host")

// ChecksumPerByte is the CPU cost of checksumming one payload byte
// (~1 cycle/byte at 133 MHz). Charged once on send and once on receive.
const ChecksumPerByte = 8 * sim.Nanosecond

// SendIP transmits pkt: transport+IP header build, then the driver. The
// caller donates its reference to pkt; the stack releases it on every
// failure path, and delivery on the receiving machine releases it after the
// handlers run.
func (s *Stack) SendIP(pkt *Packet) error {
	if pkt.TTL == 0 {
		pkt.TTL = 32
	}
	if pkt.Dst == s.IP {
		// Loopback: a packet addressed to the stack's own IP never touches
		// a NIC — it re-enters the receive path on the next engine step,
		// the way a loopback interface short-circuits the driver. Without
		// this, a service colocated with its own client (the DNS authority
		// resolving through itself, a balancer probing a local backend)
		// deadlocks on a query no wire will ever carry.
		s.clock.Advance(2 * s.profile.ProtoLayer)
		s.clock.Advance(sim.Duration(len(pkt.Payload)) * ChecksumPerByte)
		s.sent.Add(1)
		s.engine.After(0, func() {
			s.clock.Advance(s.profile.ContextSwitch)
			s.safeReceive(s.rxctx(), EvEtherArrived, pkt)
			pkt.Release()
		})
		return nil
	}
	nic := s.routeFor(pkt.Dst)
	if nic == nil {
		pkt.Release()
		return ErrNoRoute
	}
	// Transport + IP header construction, plus the transport checksum
	// over the payload.
	s.clock.Advance(2 * s.profile.ProtoLayer)
	s.clock.Advance(sim.Duration(len(pkt.Payload)) * ChecksumPerByte)
	s.sent.Add(1)
	if mtu := mtuFor(nic); pkt.WireSize()-EtherHeader > mtu {
		return s.sendFragmented(pkt, nic, mtu)
	}
	if err := nic.Send(sal.NetFrame{Size: pkt.WireSize(), Payload: pkt}); err != nil {
		pkt.Release()
		return err
	}
	return nil
}

// Ping sends an ICMP echo request; reply invokes cb with the round-trip
// observed at this stack's clock.
func (s *Stack) Ping(dst IPAddr, seq uint16, payload int, cb func(rtt sim.Duration)) error {
	start := s.clock.Now()
	ref, err := s.disp.Install(EvICMPArrived, func(arg, _ any) any {
		pkt := arg.(*Packet)
		if pkt.ICMPType == 0 && pkt.ICMPSeq == seq {
			if cb != nil {
				cb(s.clock.Now().Sub(start))
			}
			return true
		}
		return false
	}, dispatch.InstallOptions{Installer: domain.Identity{Name: "proto:1:ping-client"}})
	if err != nil {
		return err
	}
	_ = ref
	req := AllocPacket()
	req.Src, req.Dst, req.Proto = s.IP, dst, ProtoICMP
	req.ICMPType, req.ICMPSeq = 8, seq
	req.AllocPayload(payload)
	req.TTL = 32
	return s.SendIP(req)
}

// Stats reports packets received and sent at the IP layer. Counters are
// atomics; totals are exact under parallel delivery.
func (s *Stack) Stats() (received, sent int64) { return s.received.Load(), s.sent.Load() }
