package netstack

import (
	"bytes"
	"testing"
	"testing/quick"

	"spin/internal/sal"
	"spin/internal/sim"
)

func TestUDPFragmentsOverEthernet(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	var got []byte
	_ = b.stack.UDP().Bind(9, InKernelDelivery, func(p *Packet) { got = p.Payload })
	payload := bytes.Repeat([]byte{0xAB}, 8132) // > 1500 MTU: must fragment
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, payload)
	cl.Run(0)
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembled %d bytes, want %d", len(got), len(payload))
	}
	sent, _, _, _ := a.nic.Stats()
	if sent < 6 {
		t.Errorf("only %d frames sent for an 8132B datagram over 1500 MTU", sent)
	}
	if b.stack.reasm.Pending() != 0 {
		t.Errorf("reassembly buffers leaked: %d", b.stack.reasm.Pending())
	}
}

func TestNoFragmentationUnderMTU(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	var got *Packet
	_ = b.stack.UDP().Bind(9, InKernelDelivery, func(p *Packet) { got = p })
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, make([]byte, 1000))
	cl.Run(0)
	if got == nil {
		t.Fatal("no delivery")
	}
	sent, _, _, _ := a.nic.Stats()
	if sent != 1 {
		t.Errorf("%d frames for a sub-MTU datagram", sent)
	}
}

func TestATMNoFragmentationFor8K(t *testing.T) {
	// ATM's 9180-byte MTU carries the 8132-byte test packets whole (the
	// Table 5 configuration).
	a, b, cl := pair(t, sal.ForeModel)
	var deliveries int
	_ = b.stack.UDP().Bind(9, InKernelDelivery, func(p *Packet) { deliveries++ })
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, make([]byte, 8132))
	cl.Run(0)
	sent, _, _, _ := a.nic.Stats()
	if sent != 1 {
		t.Errorf("ATM fragmented an 8132B datagram into %d frames", sent)
	}
	if deliveries != 1 {
		t.Errorf("deliveries = %d", deliveries)
	}
}

func TestFragmentLossLosesWholeDatagram(t *testing.T) {
	// UDP has no recovery: if any fragment is lost the datagram never
	// reassembles, and the partial buffer stays pending (bounded by the
	// test; real stacks would time it out).
	a, b, cl := pair(t, sal.LanceModel)
	a.nic.InjectLoss(0.4, 13)
	delivered := 0
	_ = b.stack.UDP().Bind(9, InKernelDelivery, func(p *Packet) { delivered++ })
	const n = 16
	for i := 0; i < n; i++ {
		_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, make([]byte, 4000))
	}
	cl.Run(0)
	if delivered == n {
		t.Error("no datagram lost despite fragment loss")
	}
	if a.nic.Dropped() == 0 {
		t.Error("injection did not drop")
	}
}

func TestInterleavedFragmentStreams(t *testing.T) {
	// Fragments of datagrams from two senders interleave at the receiver;
	// reassembly must keep them separate (keyed by source and id).
	recv := newNetHost(t, "recv", Addr(10, 0, 0, 1), sal.LanceModel)
	s1 := newNetHost(t, "s1", Addr(10, 0, 0, 2), sal.LanceModel)
	s2 := newNetHost(t, "s2", Addr(10, 0, 0, 3), sal.LanceModel)
	nic2 := sal.NewNIC(sal.LanceModel, recv.eng, recv.ic, sal.VecNIC1)
	if err := sal.Connect(s1.nic, recv.nic); err != nil {
		t.Fatal(err)
	}
	if err := sal.Connect(s2.nic, nic2); err != nil {
		t.Fatal(err)
	}
	recv.stack.Attach(nic2)

	var got [][]byte
	_ = recv.stack.UDP().Bind(9, InKernelDelivery, func(p *Packet) {
		got = append(got, append([]byte(nil), p.Payload...))
	})
	p1 := bytes.Repeat([]byte{1}, 5000)
	p2 := bytes.Repeat([]byte{2}, 5000)
	_ = s1.stack.UDP().Send(1, Addr(10, 0, 0, 1), 9, p1)
	_ = s2.stack.UDP().Send(1, Addr(10, 0, 0, 1), 9, p2)
	sim.NewCluster(recv.eng, s1.eng, s2.eng).Run(0)
	if len(got) != 2 {
		t.Fatalf("delivered %d datagrams", len(got))
	}
	seen := map[byte]bool{}
	for _, d := range got {
		if len(d) != 5000 {
			t.Fatalf("datagram length %d", len(d))
		}
		for _, v := range d {
			if v != d[0] {
				t.Fatal("interleaved fragments mixed payloads")
			}
		}
		seen[d[0]] = true
	}
	if !seen[1] || !seen[2] {
		t.Error("missing one sender's datagram")
	}
}

// Property: any payload size round-trips through fragmentation and
// reassembly byte-for-byte.
func TestFragmentationRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		size := int(seed)%20000 + 1
		a, b, cl := pair(t, sal.LanceModel)
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i ^ int(seed))
		}
		var got []byte
		_ = b.stack.UDP().Bind(9, InKernelDelivery, func(p *Packet) { got = p.Payload })
		_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, payload)
		cl.Run(0)
		return bytes.Equal(got, payload)
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
