package netstack

import (
	"bytes"
	"testing"
	"testing/quick"

	"spin/internal/sal"
	"spin/internal/sim"
)

func TestUDPFragmentsOverEthernet(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	var got []byte
	_ = b.stack.UDP().Bind(9, InKernelDelivery, func(p *Packet) { got = p.Payload })
	payload := bytes.Repeat([]byte{0xAB}, 8132) // > 1500 MTU: must fragment
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, payload)
	cl.Run(0)
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembled %d bytes, want %d", len(got), len(payload))
	}
	sent, _, _, _ := a.nic.Stats()
	if sent < 6 {
		t.Errorf("only %d frames sent for an 8132B datagram over 1500 MTU", sent)
	}
	if b.stack.reasm.Pending() != 0 {
		t.Errorf("reassembly buffers leaked: %d", b.stack.reasm.Pending())
	}
}

func TestNoFragmentationUnderMTU(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	var got *Packet
	_ = b.stack.UDP().Bind(9, InKernelDelivery, func(p *Packet) { got = p })
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, make([]byte, 1000))
	cl.Run(0)
	if got == nil {
		t.Fatal("no delivery")
	}
	sent, _, _, _ := a.nic.Stats()
	if sent != 1 {
		t.Errorf("%d frames for a sub-MTU datagram", sent)
	}
}

func TestATMNoFragmentationFor8K(t *testing.T) {
	// ATM's 9180-byte MTU carries the 8132-byte test packets whole (the
	// Table 5 configuration).
	a, b, cl := pair(t, sal.ForeModel)
	var deliveries int
	_ = b.stack.UDP().Bind(9, InKernelDelivery, func(p *Packet) { deliveries++ })
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, make([]byte, 8132))
	cl.Run(0)
	sent, _, _, _ := a.nic.Stats()
	if sent != 1 {
		t.Errorf("ATM fragmented an 8132B datagram into %d frames", sent)
	}
	if deliveries != 1 {
		t.Errorf("deliveries = %d", deliveries)
	}
}

func TestFragmentLossLosesWholeDatagram(t *testing.T) {
	// UDP has no recovery: if any fragment is lost the datagram never
	// reassembles, and the partial buffer stays pending (bounded by the
	// test; real stacks would time it out).
	a, b, cl := pair(t, sal.LanceModel)
	a.nic.InjectLoss(0.4, 13)
	delivered := 0
	_ = b.stack.UDP().Bind(9, InKernelDelivery, func(p *Packet) { delivered++ })
	const n = 16
	for i := 0; i < n; i++ {
		_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, make([]byte, 4000))
	}
	cl.Run(0)
	if delivered == n {
		t.Error("no datagram lost despite fragment loss")
	}
	if a.nic.Dropped() == 0 {
		t.Error("injection did not drop")
	}
}

func TestInterleavedFragmentStreams(t *testing.T) {
	// Fragments of datagrams from two senders interleave at the receiver;
	// reassembly must keep them separate (keyed by source and id).
	recv := newNetHost(t, "recv", Addr(10, 0, 0, 1), sal.LanceModel)
	s1 := newNetHost(t, "s1", Addr(10, 0, 0, 2), sal.LanceModel)
	s2 := newNetHost(t, "s2", Addr(10, 0, 0, 3), sal.LanceModel)
	nic2 := sal.NewNIC(sal.LanceModel, recv.eng, recv.ic, sal.VecNIC1)
	if err := sal.Connect(s1.nic, recv.nic); err != nil {
		t.Fatal(err)
	}
	if err := sal.Connect(s2.nic, nic2); err != nil {
		t.Fatal(err)
	}
	recv.stack.Attach(nic2)

	var got [][]byte
	_ = recv.stack.UDP().Bind(9, InKernelDelivery, func(p *Packet) {
		got = append(got, append([]byte(nil), p.Payload...))
	})
	p1 := bytes.Repeat([]byte{1}, 5000)
	p2 := bytes.Repeat([]byte{2}, 5000)
	_ = s1.stack.UDP().Send(1, Addr(10, 0, 0, 1), 9, p1)
	_ = s2.stack.UDP().Send(1, Addr(10, 0, 0, 1), 9, p2)
	sim.NewCluster(recv.eng, s1.eng, s2.eng).Run(0)
	if len(got) != 2 {
		t.Fatalf("delivered %d datagrams", len(got))
	}
	seen := map[byte]bool{}
	for _, d := range got {
		if len(d) != 5000 {
			t.Fatalf("datagram length %d", len(d))
		}
		for _, v := range d {
			if v != d[0] {
				t.Fatal("interleaved fragments mixed payloads")
			}
		}
		seen[d[0]] = true
	}
	if !seen[1] || !seen[2] {
		t.Error("missing one sender's datagram")
	}
}

// markedFrag builds one fragment of datagram (src, id) whose payload is all
// marker bytes, so an uncopied (zero-filled) hole in a reassembled datagram
// is visible.
func markedFrag(src IPAddr, id uint32, off int, more bool, size int) *Packet {
	p := make([]byte, size)
	for i := range p {
		p[i] = fragMarker
	}
	return &Packet{
		Src: src, Dst: Addr(10, 0, 0, 1), Proto: ProtoUDP, DstPort: 9,
		FragID: id, FragOffset: off, MoreFrags: more, Payload: p, TTL: 32,
	}
}

// Regression (overlap double-count): a duplicated 400-byte head plus a final
// fragment at offset 500 delivers 900 payload bytes for a 600-byte datagram —
// the pre-fix reassembler counted bytes received and completed it with a
// zero-filled hole at [400, 500). Completion requires contiguous coverage.
func TestDuplicateFragmentsDoNotFakeCompleteness(t *testing.T) {
	r := newReassembly()
	now := sim.Time(0)
	src := Addr(10, 0, 0, 2)
	if whole, _ := r.reassemble(markedFrag(src, 7, 0, true, 400), now); whole != nil {
		t.Fatal("completed after first fragment")
	}
	if whole, _ := r.reassemble(markedFrag(src, 7, 0, true, 400), now); whole != nil {
		t.Fatal("completed after a duplicate of the first fragment")
	}
	if whole, _ := r.reassemble(markedFrag(src, 7, 500, false, 100), now); whole != nil {
		t.Fatal("completed a 600-byte datagram with a hole at [400, 500)")
	}
	if r.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", r.Pending())
	}
	// Filling the hole completes it, and every byte was actually copied.
	whole, _ := r.reassemble(markedFrag(src, 7, 400, true, 100), now)
	if whole == nil {
		t.Fatal("contiguously covered datagram did not complete")
	}
	if len(whole.Payload) != 600 {
		t.Fatalf("reassembled %d bytes, want 600", len(whole.Payload))
	}
	for i, v := range whole.Payload {
		if v != fragMarker {
			t.Fatalf("uncopied byte %#x at offset %d", v, i)
		}
	}
	if r.Pending() != 0 {
		t.Errorf("pending = %d after completion", r.Pending())
	}
}

// Overlapping (not just duplicate) fragments must also complete exactly once
// with every byte copied.
func TestOverlappingFragmentsCompleteOnce(t *testing.T) {
	r := newReassembly()
	now := sim.Time(0)
	src := Addr(10, 0, 0, 3)
	completions := 0
	for _, f := range []*Packet{
		markedFrag(src, 8, 0, true, 400),
		markedFrag(src, 8, 300, true, 200), // overlaps [300, 400)
		markedFrag(src, 8, 0, true, 400),   // full duplicate
		markedFrag(src, 8, 500, false, 100),
	} {
		if whole, _ := r.reassemble(f, now); whole != nil {
			completions++
			if len(whole.Payload) != 600 {
				t.Fatalf("reassembled %d bytes, want 600", len(whole.Payload))
			}
			for i, v := range whole.Payload {
				if v != fragMarker {
					t.Fatalf("uncopied byte %#x at offset %d", v, i)
				}
			}
		}
	}
	if completions != 1 {
		t.Errorf("datagram completed %d times, want exactly once", completions)
	}
}

// sameShardIDs returns n fragment IDs for src that all hash to one shard, so
// shard-local bounds can be tested deterministically.
func sameShardIDs(src IPAddr, n int) []uint32 {
	ids := make([]uint32, 0, n)
	want := -1
	for id := uint32(1); len(ids) < n; id++ {
		sh := (fragKey{src: src, id: id}).shard()
		if want == -1 {
			want = sh
		}
		if sh == want {
			ids = append(ids, id)
		}
	}
	return ids
}

// Regression (reassembly leak): partial datagrams whose tail never arrives
// are swept by the virtual-time TTL — Pending returns to 0 instead of
// pinning a buffer per lost fragment forever.
func TestReassemblyTTLSweepEvictsStalePartials(t *testing.T) {
	r := newReassembly()
	const stale = 5
	for i := 0; i < stale; i++ {
		src := Addr(10, 0, 0, byte(i))
		if whole, _ := r.reassemble(markedFrag(src, 1, 0, true, 100), sim.Time(0)); whole != nil {
			t.Fatal("partial completed")
		}
	}
	if r.Pending() != stale {
		t.Fatalf("pending = %d, want %d", r.Pending(), stale)
	}
	r.sweep(sim.Time(ReasmTTL)) // exactly at the TTL: not yet expired
	if r.Pending() != stale {
		t.Fatalf("sweep at TTL evicted early: pending = %d", r.Pending())
	}
	r.sweep(sim.Time(ReasmTTL) + 1)
	if r.Pending() != 0 {
		t.Errorf("pending = %d after TTL sweep, want 0", r.Pending())
	}
	if r.Evicted() != stale {
		t.Errorf("evicted = %d, want %d", r.Evicted(), stale)
	}
}

// The lazy per-shard sweep: a new datagram arriving in a shard evicts that
// shard's expired partials without a global sweep.
func TestReassemblyLazySweepOnNewKey(t *testing.T) {
	r := newReassembly()
	src := Addr(10, 0, 0, 2)
	ids := sameShardIDs(src, 2)
	if whole, _ := r.reassemble(markedFrag(src, ids[0], 0, true, 100), sim.Time(0)); whole != nil {
		t.Fatal("partial completed")
	}
	late := sim.Time(ReasmTTL) + sim.Time(sim.Millisecond)
	if whole, _ := r.reassemble(markedFrag(src, ids[1], 0, true, 100), late); whole != nil {
		t.Fatal("partial completed")
	}
	if r.Pending() != 1 {
		t.Errorf("pending = %d, want 1 (stale partial lazily evicted)", r.Pending())
	}
	if r.Evicted() != 1 {
		t.Errorf("evicted = %d, want 1", r.Evicted())
	}
}

// The per-shard cap: pending partials in one shard never exceed
// maxPendingPerShard; the oldest is evicted to admit a new datagram.
func TestReassemblyCapEvictsOldest(t *testing.T) {
	r := newReassembly()
	src := Addr(10, 0, 0, 4)
	ids := sameShardIDs(src, maxPendingPerShard+1)
	for i, id := range ids {
		// Strictly increasing arrival times, all within the TTL of each
		// other, so only the cap (not the TTL) can evict.
		at := sim.Time(i) * sim.Time(sim.Microsecond)
		if whole, _ := r.reassemble(markedFrag(src, id, 0, true, 8), at); whole != nil {
			t.Fatal("partial completed")
		}
	}
	if r.Pending() != maxPendingPerShard {
		t.Errorf("pending = %d, want cap %d", r.Pending(), maxPendingPerShard)
	}
	if r.Evicted() != 1 {
		t.Errorf("evicted = %d, want 1", r.Evicted())
	}
	// The evicted one is the oldest: its key is gone from the shard.
	sh := &r.shards[(fragKey{src: src, id: ids[0]}).shard()]
	sh.mu.Lock()
	_, oldestAlive := sh.parts[fragKey{src: src, id: ids[0]}]
	_, newestAlive := sh.parts[fragKey{src: src, id: ids[len(ids)-1]}]
	sh.mu.Unlock()
	if oldestAlive {
		t.Error("oldest partial survived the cap eviction")
	}
	if !newestAlive {
		t.Error("newest partial was evicted instead of the oldest")
	}
}

// End-to-end leak bound: after fragment loss leaves partial datagrams
// pending, a virtual-time TTL sweep returns Pending to 0 and counts the
// evictions in ReassemblyStats.
func TestStackReassemblyPendingReturnsToZero(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	a.nic.InjectLoss(0.4, 13)
	_ = b.stack.UDP().Bind(9, InKernelDelivery, func(*Packet) {})
	const n = 16
	for i := 0; i < n; i++ {
		_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, make([]byte, 4000))
	}
	cl.Run(0)
	pending, _ := b.stack.ReassemblyStats()
	if pending == 0 {
		t.Fatal("fragment loss left nothing pending; loss seed no longer bites")
	}
	// Let the TTL elapse in virtual time, then sweep.
	b.eng.After(ReasmTTL+sim.Millisecond, func() {
		b.stack.reasm.sweep(b.stack.clock.Now())
	})
	cl.Run(0)
	after, evicted := b.stack.ReassemblyStats()
	if after != 0 {
		t.Errorf("pending = %d after TTL sweep, want 0", after)
	}
	if evicted != int64(pending) {
		t.Errorf("evicted = %d, want %d", evicted, pending)
	}
}

// Property: any payload size round-trips through fragmentation and
// reassembly byte-for-byte.
func TestFragmentationRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		size := int(seed)%20000 + 1
		a, b, cl := pair(t, sal.LanceModel)
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i ^ int(seed))
		}
		var got []byte
		_ = b.stack.UDP().Bind(9, InKernelDelivery, func(p *Packet) { got = p.Payload })
		_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, payload)
		cl.Run(0)
		return bytes.Equal(got, payload)
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
