package netstack

import (
	"fmt"
	"sync"
	"sync/atomic"

	"spin/internal/bcode"
	"spin/internal/dispatch"
	"spin/internal/domain"
)

// Verified bytecode in the RX path. Two load points share the packet
// context ABI below:
//
//   - AttachXDP hangs one compiled program below the protocol graph, at
//     the very top of receive1 — the XDP position. Its verdict is binary
//     (nonzero = drop before the link-layer event fires), its cost is one
//     atomic load when absent, and it cannot reach kernel memory at all:
//     the verifier proved every load in bounds before the program was
//     admitted.
//
//   - NewBCodeFilter installs a program as a dispatcher guard on
//     EvIPArrived (through dispatch.VerifiedGuard) with an ordinary
//     handler performing the PacketFilter action. Because the handler is
//     dispatcher-managed, PR 4's quarantine is the backstop: a
//     verified-but-misbehaving filter that faults at the "bcode.run"
//     injection site burns its fault budget and is unlinked like any
//     other bad extension.

// Packet context ABI: the words a packet-attached program may LdCtx, plus
// the payload as the byte region. This layout is load-bearing — programs
// are compiled against it — so treat it as a wire format: extend by
// appending, never reorder.
const (
	CtxProto   = 0 // IP protocol number
	CtxSrc     = 1 // source address
	CtxDst     = 2 // destination address
	CtxSrcPort = 3 // transport source port
	CtxDstPort = 4 // transport destination port
	CtxLen     = 5 // payload length in bytes
	CtxTTL     = 6 // remaining hop budget
	CtxFlags   = 7 // TCP flags
	// PacketCtxWords is how many words the packet ABI exposes.
	PacketCtxWords = 8
)

// PacketSpec is the verification spec for packet-attached programs.
var PacketSpec = bcode.Spec{Words: PacketCtxWords}

// ctxPool recycles contexts for the per-packet program runs. The compiled
// program is called through a func value, so a stack-local Context would be
// forced to escape — one heap allocation per received packet, on a path the
// smoke gate holds to zero.
var ctxPool = sync.Pool{New: func() any { return new(bcode.Context) }}

// packetContext fills ctx from pkt.
func packetContext(ctx *bcode.Context, pkt *Packet) {
	ctx.W[CtxProto] = uint64(pkt.Proto)
	ctx.W[CtxSrc] = uint64(pkt.Src)
	ctx.W[CtxDst] = uint64(pkt.Dst)
	ctx.W[CtxSrcPort] = uint64(pkt.SrcPort)
	ctx.W[CtxDstPort] = uint64(pkt.DstPort)
	ctx.W[CtxLen] = uint64(len(pkt.Payload))
	ctx.W[CtxTTL] = uint64(int64(pkt.TTL))
	ctx.W[CtxFlags] = uint64(pkt.Flags)
	ctx.Bytes = pkt.Payload
}

// XDPFilter is one verified early-drop program attached below the protocol
// graph.
type XDPFilter struct {
	name  string
	prog  *bcode.Program
	run   func(*bcode.Context) uint64
	runs  atomic.Int64
	drops atomic.Int64
}

// Name identifies the filter.
func (x *XDPFilter) Name() string { return x.name }

// Stats reports packets evaluated and packets dropped.
func (x *XDPFilter) Stats() (runs, drops int64) { return x.runs.Load(), x.drops.Load() }

// AttachXDP verifies prog against the packet ABI, compiles it, and attaches
// it at the earliest point of the receive path, replacing any previous XDP
// program. A program that fails verification never attaches.
func (s *Stack) AttachXDP(name string, prog *bcode.Program) (*XDPFilter, error) {
	if err := bcode.Verify(prog, PacketSpec); err != nil {
		return nil, fmt.Errorf("netstack: xdp %s: %w", name, err)
	}
	x := &XDPFilter{name: name, prog: prog, run: prog.Compile()}
	s.xdp.Store(x)
	return x, nil
}

// DetachXDP removes the attached XDP program, if any.
func (s *Stack) DetachXDP() { s.xdp.Store(nil) }

// XDP returns the attached XDP program, or nil.
func (s *Stack) XDP() *XDPFilter { return s.xdp.Load() }

// xdpDrop evaluates the attached program (if any) against pkt, charging one
// guard evaluation, and reports whether the packet is to be dropped.
func (s *Stack) xdpDrop(pkt *Packet) bool {
	x := s.xdp.Load()
	if x == nil {
		return false
	}
	s.clock.Advance(s.profile.GuardEval)
	x.runs.Add(1)
	ctx := ctxPool.Get().(*bcode.Context)
	packetContext(ctx, pkt)
	verdict := x.run(ctx)
	ctx.Bytes = nil // drop the payload reference before pooling
	ctxPool.Put(ctx)
	if verdict == bcode.VerdictPass {
		return false
	}
	x.drops.Add(1)
	return true
}

// BCodeFilter is one verified program installed as a dispatcher guard on
// the IP layer, with a PacketFilter-style action handler behind it.
type BCodeFilter struct {
	stack  *Stack
	name   string
	action FilterAction
	prog   *bcode.Program
	ref    dispatch.HandlerRef
	owner  domain.Identity
	runs   atomic.Int64
	// Matched counts packets the program's verdict accepted.
	matched atomic.Int64
	// Consumer receives diverted packets.
	Consumer func(*Packet)
}

// NewBCodeFilter verifies prog and installs it at the IP layer of stack:
// the program becomes the handler's guard via dispatch.VerifiedGuard, the
// action runs as an ordinary handler. The handler body passes the
// "bcode.run" fault-injection site, and the dispatcher's quarantine is the
// backstop if it faults — the chaos suite drives exactly that scenario.
func NewBCodeFilter(stack *Stack, name string, prog *bcode.Program, action FilterAction) (*BCodeFilter, error) {
	f := &BCodeFilter{
		stack:  stack,
		name:   name,
		action: action,
		prog:   prog,
		owner:  domain.Identity{Name: "bcode:" + name},
	}
	guard, err := dispatch.VerifiedGuard(prog, PacketSpec, func(arg any, ctx *bcode.Context) bool {
		pkt, ok := arg.(*Packet)
		if !ok {
			return false
		}
		f.runs.Add(1)
		packetContext(ctx, pkt)
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("netstack: bcode filter %s: %w", name, err)
	}
	ref, err := stack.disp.Install(EvIPArrived, func(arg, _ any) any {
		pkt := arg.(*Packet)
		// Injection site "bcode.run": a panic rule models a filter whose
		// action faults at run time; the dispatcher contains it, counts it
		// against this handler, and quarantines at threshold.
		stack.disp.InjectorInstalled().Fire("bcode.run")
		f.matched.Add(1)
		switch f.action {
		case Drop:
			pkt.Claimed = true
			return true
		case Divert:
			pkt.Claimed = true
			if f.Consumer != nil {
				f.Consumer(pkt)
			}
			return true
		default:
			return false
		}
	}, dispatch.InstallOptions{Installer: f.owner, Guard: guard})
	if err != nil {
		return nil, err
	}
	f.ref = ref
	stack.bcodeMu.Lock()
	stack.bcodeFilters = append(stack.bcodeFilters, f)
	stack.bcodeMu.Unlock()
	return f, nil
}

// Name identifies the filter.
func (f *BCodeFilter) Name() string { return f.name }

// Stats reports guard evaluations and action invocations.
func (f *BCodeFilter) Stats() (runs, matched int64) { return f.runs.Load(), f.matched.Load() }

// Quarantined reports whether the dispatcher has unlinked this filter for
// exhausting its fault budget.
func (f *BCodeFilter) Quarantined() bool {
	for _, rec := range f.stack.disp.Quarantined() {
		if rec.Owner == f.owner {
			return true
		}
	}
	return false
}

// Remove uninstalls the filter (a no-op if quarantine already did).
func (f *BCodeFilter) Remove() {
	_ = f.stack.disp.Remove(f.ref)
	f.stack.bcodeMu.Lock()
	defer f.stack.bcodeMu.Unlock()
	for i, g := range f.stack.bcodeFilters {
		if g == f {
			f.stack.bcodeFilters = append(f.stack.bcodeFilters[:i], f.stack.bcodeFilters[i+1:]...)
			return
		}
	}
}

// BCodeProgStat describes one loaded verified program for the debug
// surfaces (spin-dbg bcode, /debug/bcode).
type BCodeProgStat struct {
	Name        string
	Point       string // "xdp" or "ip-filter"
	Insns       int
	Runs        int64
	Matched     int64
	Quarantined bool
}

// BCodePrograms snapshots every verified program loaded into this stack.
func (s *Stack) BCodePrograms() []BCodeProgStat {
	var out []BCodeProgStat
	if x := s.xdp.Load(); x != nil {
		runs, drops := x.Stats()
		out = append(out, BCodeProgStat{
			Name: x.name, Point: "xdp", Insns: len(x.prog.Insns),
			Runs: runs, Matched: drops,
		})
	}
	s.bcodeMu.Lock()
	filters := append([]*BCodeFilter(nil), s.bcodeFilters...)
	s.bcodeMu.Unlock()
	for _, f := range filters {
		runs, matched := f.Stats()
		out = append(out, BCodeProgStat{
			Name: f.name, Point: "ip-filter", Insns: len(f.prog.Insns),
			Runs: runs, Matched: matched, Quarantined: f.Quarantined(),
		})
	}
	return out
}
