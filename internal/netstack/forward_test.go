package netstack

import (
	"testing"

	"spin/internal/sal"
	"spin/internal/sim"
)

// routerTriple wires a — r — b: the router machine has one NIC per segment,
// IP forwarding enabled, and routes programmed for both ends.
func routerTriple(t *testing.T) (a, r, b *host, cl *sim.Cluster) {
	t.Helper()
	a = newNetHost(t, "a", Addr(10, 0, 1, 1), sal.LanceModel)
	r = newNetHost(t, "r", Addr(10, 0, 0, 254), sal.LanceModel)
	b = newNetHost(t, "b", Addr(10, 0, 2, 1), sal.LanceModel)
	// Second router NIC on its own vector, attached to the same stack.
	rnic2 := sal.NewNIC(sal.LanceModel, r.eng, r.ic, sal.VecNIC0+1)
	r.stack.Attach(rnic2)
	if err := sal.Connect(a.nic, r.nic); err != nil {
		t.Fatal(err)
	}
	if err := sal.Connect(rnic2, b.nic); err != nil {
		t.Fatal(err)
	}
	r.stack.AddRoute(a.stack.IP, r.nic)
	r.stack.AddRoute(b.stack.IP, rnic2)
	r.stack.EnableForwarding(true)
	// End hosts: single NIC, default route suffices.
	return a, r, b, sim.NewCluster(a.eng, r.eng, b.eng)
}

func TestForwardingRoutesTransitTraffic(t *testing.T) {
	a, r, b, cl := routerTriple(t)
	var rtt sim.Duration
	if err := a.stack.Ping(b.stack.IP, 1, 16, func(d sim.Duration) { rtt = d }); err != nil {
		t.Fatal(err)
	}
	cl.Run(0)
	if rtt == 0 {
		t.Fatal("no ping reply across the router")
	}
	// Request and reply both transit the router.
	if got := r.stack.Forwarded(); got != 2 {
		t.Errorf("router forwarded %d packets, want 2", got)
	}
	if got := r.stack.TTLExpired(); got != 0 {
		t.Errorf("router expired %d TTLs, want 0", got)
	}
	// A direct pair ping must be cheaper than the two-hop path.
	da, db, dcl := pair(t, sal.LanceModel)
	_ = db
	var direct sim.Duration
	if err := da.stack.Ping(Addr(10, 0, 0, 2), 1, 16, func(d sim.Duration) { direct = d }); err != nil {
		t.Fatal(err)
	}
	dcl.Run(0)
	if direct >= rtt {
		t.Errorf("two-hop rtt %v not slower than direct %v", rtt, direct)
	}
}

func TestForwardingTTLExpiry(t *testing.T) {
	a, r, b, cl := routerTriple(t)
	got := 0
	b.stack.UDP().Bind(9, InKernelDelivery, func(*Packet) { got++ })
	// TTL 1 dies at the router; TTL 2 reaches b.
	for _, ttl := range []int{1, 2} {
		pkt := AllocPacket()
		pkt.Src, pkt.Dst, pkt.Proto = a.stack.IP, b.stack.IP, ProtoUDP
		pkt.SrcPort, pkt.DstPort = 5000, 9
		pkt.AllocPayload(8)
		pkt.TTL = ttl
		if err := a.stack.SendIP(pkt); err != nil {
			t.Fatal(err)
		}
		cl.Run(0)
	}
	if got != 1 {
		t.Errorf("b received %d datagrams, want 1 (TTL=1 must die in transit)", got)
	}
	if exp := r.stack.TTLExpired(); exp != 1 {
		t.Errorf("router expired %d TTLs, want 1", exp)
	}
}

func TestForwardingDisabledDropsTransit(t *testing.T) {
	a, r, b, cl := routerTriple(t)
	r.stack.EnableForwarding(false)
	delivered := false
	b.stack.UDP().Bind(9, InKernelDelivery, func(*Packet) { delivered = true })
	if err := a.stack.UDP().Send(5000, b.stack.IP, 9, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	cl.Run(0)
	if delivered {
		t.Error("transit datagram delivered with forwarding off")
	}
	if got := r.stack.Forwarded(); got != 0 {
		t.Errorf("router forwarded %d with forwarding off", got)
	}
}
