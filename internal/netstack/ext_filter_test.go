package netstack

import (
	"testing"

	"spin/internal/sal"
)

func TestFilterObserveCountsWithoutInterfering(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	filt, err := NewPacketFilter(b.stack, "udp-watch", MatchProto(ProtoUDP), Observe)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	_ = b.stack.UDP().Bind(9, InKernelDelivery, func(*Packet) { delivered++ })
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, []byte("x"))
	_ = a.stack.Ping(Addr(10, 0, 0, 2), 1, 8, nil)
	cl.Run(0)
	if delivered != 1 {
		t.Errorf("delivered = %d; observe filter interfered", delivered)
	}
	if filt.Matched != 1 {
		t.Errorf("matched = %d, want 1 (UDP only)", filt.Matched)
	}
}

func TestFilterDrop(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	// Firewall: drop everything to ports 1000-2000 from this source.
	_, err := NewPacketFilter(b.stack, "fw",
		And(MatchProto(ProtoUDP), MatchDstPortRange(1000, 2000), MatchSrc(Addr(10, 0, 0, 1))),
		Drop)
	if err != nil {
		t.Fatal(err)
	}
	blocked, allowed := 0, 0
	_ = b.stack.UDP().Bind(1500, InKernelDelivery, func(*Packet) { blocked++ })
	_ = b.stack.UDP().Bind(3000, InKernelDelivery, func(*Packet) { allowed++ })
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 1500, []byte("evil"))
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 3000, []byte("fine"))
	cl.Run(0)
	if blocked != 0 {
		t.Error("firewalled packet delivered")
	}
	if allowed != 1 {
		t.Error("allowed packet lost")
	}
}

func TestFilterDivert(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	var diverted []byte
	filt, err := NewPacketFilter(b.stack, "snoop",
		And(MatchProto(ProtoUDP), MatchPayloadPrefix([]byte("SNMP"))),
		Divert)
	if err != nil {
		t.Fatal(err)
	}
	filt.Consumer = func(p *Packet) { diverted = p.Payload }
	normal := 0
	_ = b.stack.UDP().Bind(161, InKernelDelivery, func(*Packet) { normal++ })
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 161, []byte("SNMPv2 trap"))
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 161, []byte("other"))
	cl.Run(0)
	if string(diverted) != "SNMPv2 trap" {
		t.Errorf("diverted %q", diverted)
	}
	if normal != 1 {
		t.Errorf("normal deliveries = %d, want 1 (only the non-SNMP one)", normal)
	}
}

func TestPredicateCombinators(t *testing.T) {
	p := &Packet{Proto: ProtoTCP, Src: Addr(1, 2, 3, 4), DstPort: 80, Payload: []byte("GET /")}
	cases := []struct {
		name string
		pred Predicate
		want bool
	}{
		{"proto", MatchProto(ProtoTCP), true},
		{"wrong proto", MatchProto(ProtoUDP), false},
		{"src", MatchSrc(Addr(1, 2, 3, 4)), true},
		{"dst", MatchDst(Addr(9, 9, 9, 9)), false},
		{"port range", MatchDstPortRange(1, 100), true},
		{"payload", MatchPayloadPrefix([]byte("GET")), true},
		{"payload too long", MatchPayloadPrefix([]byte("GET /index.html")), false},
		{"and", And(MatchProto(ProtoTCP), MatchDstPortRange(1, 100)), true},
		{"and fails", And(MatchProto(ProtoTCP), MatchDstPortRange(443, 443)), false},
		{"or", Or(MatchProto(ProtoUDP), MatchDstPortRange(80, 80)), true},
		{"or fails", Or(MatchProto(ProtoUDP), MatchDstPortRange(443, 443)), false},
		{"not", Not(MatchProto(ProtoUDP)), true},
	}
	for _, c := range cases {
		if got := c.pred(p); got != c.want {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFilterRemove(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	filt, _ := NewPacketFilter(b.stack, "fw", MatchProto(ProtoUDP), Drop)
	delivered := 0
	_ = b.stack.UDP().Bind(9, InKernelDelivery, func(*Packet) { delivered++ })
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, []byte("1"))
	cl.Run(0)
	filt.Remove()
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, []byte("2"))
	cl.Run(0)
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1 (second packet after removal)", delivered)
	}
	if filt.String() == "" {
		t.Error("String empty")
	}
}
