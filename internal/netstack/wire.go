package netstack

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire codec: the byte-level frame format for a Packet. The simulation
// normally passes *Packet by reference (only sizes affect timing), but the
// byte form is the boundary where untrusted input enters the stack — frames
// replayed from a capture, crafted by the network debugger, or injected by
// a hostile peer. ParsePacket therefore validates every field it reads and
// is fuzzed (FuzzParsePacket); nothing it returns can make the stack panic
// or allocate without bound.
//
// Layout (big-endian):
//
//	ether(14): dst MAC, src MAC, ethertype 0x0800
//	ip(20):    version, total length(2), frag id(4), frag offset(2),
//	           flags, TTL, protocol, src(4), dst(4)
//	transport: UDP(8) ports/length; TCP(20) ports/seq/ack/flags/window;
//	           ICMP(8) type/seq — matching the header size constants the
//	           cost model charges for.

// etherTypeIPv4 marks IP payloads in the ethernet header.
const etherTypeIPv4 = 0x0800

// ipMoreFrags is the MoreFrags bit in the IP flags byte.
const ipMoreFrags = 0x01

// Errors returned by ParsePacket.
var (
	ErrFrameTooShort = errors.New("netstack: frame too short")
	ErrBadEtherType  = errors.New("netstack: not an IPv4 frame")
	ErrBadIPVersion  = errors.New("netstack: bad IP version")
	ErrBadLength     = errors.New("netstack: IP total length inconsistent")
)

// transportHeaderLen returns the transport header size for proto (0 for
// unknown protocols, which carry their payload right after the IP header).
func transportHeaderLen(proto uint8) int {
	switch proto {
	case ProtoUDP:
		return UDPHeader
	case ProtoTCP:
		return TCPHeader
	case ProtoICMP:
		return ICMPHeader
	}
	return 0
}

// clampU16 saturates v into the uint16 range for encoding.
func clampU16(v int) uint16 {
	if v < 0 {
		return 0
	}
	if v > 0xffff {
		return 0xffff
	}
	return uint16(v)
}

// EncodePacket renders pkt in wire form. Fields wider in the struct than on
// the wire (TTL, Window, FragOffset) saturate; the parse side of a
// round-trip is therefore canonical.
func EncodePacket(pkt *Packet) []byte {
	return AppendPacket(nil, pkt)
}

// AppendPacket appends pkt's wire form to dst and returns the extended
// buffer — the allocation-free encoder for hot paths that reuse a scratch
// buffer (the append is recognized by the compiler as grow-and-clear, so a
// dst with enough capacity costs nothing).
func AppendPacket(dst []byte, pkt *Packet) []byte {
	thdr := transportHeaderLen(pkt.Proto)
	total := IPHeader + thdr + len(pkt.Payload)
	off := len(dst)
	dst = append(dst, make([]byte, EtherHeader+total)...)
	b := dst[off:]

	// Ethernet: MACs are not modelled (zero), ethertype IPv4.
	binary.BigEndian.PutUint16(b[12:14], etherTypeIPv4)

	ip := b[EtherHeader:]
	ip[0] = 4
	binary.BigEndian.PutUint16(ip[1:3], clampU16(total))
	binary.BigEndian.PutUint32(ip[3:7], pkt.FragID)
	binary.BigEndian.PutUint16(ip[7:9], clampU16(pkt.FragOffset))
	if pkt.MoreFrags {
		ip[9] = ipMoreFrags
	}
	if pkt.TTL < 0 || pkt.TTL > 0xff {
		ip[10] = 0xff
	} else {
		ip[10] = byte(pkt.TTL)
	}
	ip[11] = pkt.Proto
	binary.BigEndian.PutUint32(ip[12:16], uint32(pkt.Src))
	binary.BigEndian.PutUint32(ip[16:20], uint32(pkt.Dst))

	t := ip[IPHeader:]
	switch pkt.Proto {
	case ProtoUDP:
		binary.BigEndian.PutUint16(t[0:2], pkt.SrcPort)
		binary.BigEndian.PutUint16(t[2:4], pkt.DstPort)
		binary.BigEndian.PutUint16(t[4:6], clampU16(UDPHeader+len(pkt.Payload)))
	case ProtoTCP:
		binary.BigEndian.PutUint16(t[0:2], pkt.SrcPort)
		binary.BigEndian.PutUint16(t[2:4], pkt.DstPort)
		binary.BigEndian.PutUint32(t[4:8], pkt.Seq)
		binary.BigEndian.PutUint32(t[8:12], pkt.Ack)
		t[12] = 5 << 4 // data offset: 5 words, no options
		t[13] = byte(pkt.Flags)
		binary.BigEndian.PutUint16(t[14:16], clampU16(pkt.Window))
	case ProtoICMP:
		t[0] = pkt.ICMPType
		binary.BigEndian.PutUint16(t[4:6], pkt.ICMPSeq)
	}
	copy(b[EtherHeader+IPHeader+thdr:], pkt.Payload)
	return dst
}

// ParsePacket decodes one wire frame into a Packet, validating every field:
// frame and header lengths, ethertype, IP version, and the total-length
// consistency that bounds the payload slice. It never panics on arbitrary
// input and the returned packet's payload aliases b (callers that keep the
// packet past the frame's lifetime must Clone).
func ParsePacket(b []byte) (*Packet, error) {
	pkt := &Packet{}
	if err := parsePacketInto(pkt, b, false); err != nil {
		return nil, err
	}
	return pkt, nil
}

// ParsePacketPooled decodes one wire frame into a pooled packet whose
// payload is copied into the packet's own buffer — the decoder for hot
// paths, where the frame buffer is reused and the packet flows into the RX
// queues. The caller owns the returned packet's single reference.
func ParsePacketPooled(b []byte) (*Packet, error) {
	pkt := AllocPacket()
	if err := parsePacketInto(pkt, b, true); err != nil {
		pkt.Release()
		return nil, err
	}
	return pkt, nil
}

// parsePacketInto decodes b into pkt; copyPayload selects whether the
// payload is copied into pkt's own buffer or aliases b.
func parsePacketInto(pkt *Packet, b []byte, copyPayload bool) error {
	if len(b) < EtherHeader+IPHeader {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooShort, len(b))
	}
	if et := binary.BigEndian.Uint16(b[12:14]); et != etherTypeIPv4 {
		return fmt.Errorf("%w: ethertype %#04x", ErrBadEtherType, et)
	}
	ip := b[EtherHeader:]
	if ip[0] != 4 {
		return fmt.Errorf("%w: %d", ErrBadIPVersion, ip[0])
	}
	proto := ip[11]
	thdr := transportHeaderLen(proto)
	total := int(binary.BigEndian.Uint16(ip[1:3]))
	if total < IPHeader+thdr {
		return fmt.Errorf("%w: total %d < headers %d", ErrBadLength, total, IPHeader+thdr)
	}
	if total > len(ip) {
		return fmt.Errorf("%w: total %d > frame %d", ErrBadLength, total, len(ip))
	}
	pkt.Proto = proto
	pkt.FragID = binary.BigEndian.Uint32(ip[3:7])
	pkt.FragOffset = int(binary.BigEndian.Uint16(ip[7:9]))
	pkt.MoreFrags = ip[9]&ipMoreFrags != 0
	pkt.TTL = int(ip[10])
	pkt.Src = IPAddr(binary.BigEndian.Uint32(ip[12:16]))
	pkt.Dst = IPAddr(binary.BigEndian.Uint32(ip[16:20]))
	t := ip[IPHeader:]
	switch proto {
	case ProtoUDP:
		pkt.SrcPort = binary.BigEndian.Uint16(t[0:2])
		pkt.DstPort = binary.BigEndian.Uint16(t[2:4])
		if udpLen := int(binary.BigEndian.Uint16(t[4:6])); udpLen != total-IPHeader {
			return fmt.Errorf("%w: udp length %d, ip carries %d", ErrBadLength, udpLen, total-IPHeader)
		}
	case ProtoTCP:
		pkt.SrcPort = binary.BigEndian.Uint16(t[0:2])
		pkt.DstPort = binary.BigEndian.Uint16(t[2:4])
		pkt.Seq = binary.BigEndian.Uint32(t[4:8])
		pkt.Ack = binary.BigEndian.Uint32(t[8:12])
		if off := int(t[12] >> 4); off != 5 {
			return fmt.Errorf("%w: tcp data offset %d words (options unsupported)", ErrBadLength, off)
		}
		pkt.Flags = TCPFlags(t[13])
		pkt.Window = int(binary.BigEndian.Uint16(t[14:16]))
	case ProtoICMP:
		pkt.ICMPType = t[0]
		pkt.ICMPSeq = binary.BigEndian.Uint16(t[4:6])
	}
	if copyPayload {
		pkt.SetPayload(t[thdr : total-IPHeader])
	} else {
		pkt.Payload = t[thdr : total-IPHeader]
	}
	return nil
}
