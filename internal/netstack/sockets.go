package netstack

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spin/internal/sim"
)

// Stdlib-compatible sockets: net.Conn / net.Listener / net.Addr adapters
// over the simulated TCP endpoints, plus a Dialer that resolves names and
// waits out the handshake. The point is that *unmodified* Go application
// code — including net/http with a custom DialContext — runs against the
// simulated stack.
//
// The hard part is marrying two worlds: the simulation is a single-
// threaded discrete-event engine (callbacks, virtual time), while stdlib
// networking code blocks real goroutines. The Driver bridges them: every
// blocking operation takes the driver lock and *becomes the simulation's
// clock*, stepping the engine until its predicate holds, then parking on a
// condition variable when the event queue runs dry. Virtual time therefore
// advances exactly as far as the blocked callers need it to — no wall-
// clock polling, no background ticker — and a run remains deterministic
// because the engine still executes events in virtual-time order under one
// lock, regardless of which goroutine happens to be stepping.

// Stepper is any event source the Driver can advance: a single machine's
// sim.Engine or a whole topology's sim.Cluster. Step executes the next
// pending event and reports whether there was one.
type Stepper interface {
	Step() bool
}

// Driver serializes a simulation shared by blocking goroutines. All engine
// access — stepping, scheduling, reading adapter state — happens under its
// lock; engine callbacks (OnData, timers) thus run with the lock held and
// may touch adapter buffers directly.
//
// Once a Driver wraps an engine or cluster, advance the simulation only
// through it (blocking socket calls, Run, Drain) — mixing in direct
// Engine.Run calls would race the stepping goroutines.
type Driver struct {
	mu   sync.Mutex
	cond *sync.Cond
	src  Stepper
	// pending counts goroutines blocked entering Run. A stepping WaitUntil
	// yields to them instead of executing more events: an injector is
	// conceptually an event at the current virtual time, so racing the
	// clock ahead of it would starve it forever once perpetual timers
	// (periodic health probes, keepalives) keep the event queue non-empty.
	pending atomic.Int64
}

// NewDriver wraps an event source.
func NewDriver(src Stepper) *Driver {
	d := &Driver{src: src}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// Run injects fn into the simulation: it runs under the driver lock and
// wakes every blocked operation to re-check what changed.
func (d *Driver) Run(fn func()) {
	d.pending.Add(1)
	d.mu.Lock()
	d.pending.Add(-1)
	fn()
	d.cond.Broadcast()
	d.mu.Unlock()
}

// WaitUntil blocks the calling goroutine until pred holds, stepping the
// simulation as needed. pred runs under the driver lock and may have side
// effects (consuming buffered data); it is re-evaluated after every step
// and every Run injection. If the event queue drains with pred still
// false — or another goroutine is waiting to inject — the caller parks
// until the injection lands: exactly a blocking socket's semantics.
//
// Fairness vs. determinism: yielding to pending injectors keeps concurrent
// blocking goroutines (net/http's split read/write loops) live even when
// periodic timers never let the queue drain. The byte-identical-replay
// contract is narrower: it holds when blocking calls are issued from one
// goroutine at a time, so every step interleaving is fixed by virtual time
// alone.
func (d *Driver) WaitUntil(pred func() bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if pred() {
			return
		}
		if d.pending.Load() > 0 {
			d.cond.Wait()
			continue
		}
		if d.src.Step() {
			d.cond.Broadcast()
			continue
		}
		d.cond.Wait()
	}
}

// Drain steps the simulation until the event queue is empty, without
// parking — the harness call for "let everything in flight settle".
func (d *Driver) Drain() {
	d.mu.Lock()
	for d.src.Step() {
		d.cond.Broadcast()
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}

// SockAddr is the net.Addr for simulated TCP endpoints.
type SockAddr struct {
	IP   IPAddr
	Port uint16
}

// Network returns "tcp": to application code the simulated stack is just a
// TCP network.
func (a SockAddr) Network() string { return "tcp" }

func (a SockAddr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// sockDeadline is one direction's deadline: a virtual-time event that
// marks the direction expired when it fires.
type sockDeadline struct {
	ev      *sim.Event
	expired bool
}

// set arms the deadline d from now; zero clears it. Caller holds the
// driver lock.
func (dl *sockDeadline) set(engine *sim.Engine, d sim.Duration, armed bool) {
	if dl.ev != nil {
		dl.ev.Cancel()
		dl.ev = nil
	}
	dl.expired = false
	if !armed {
		return
	}
	if d <= 0 {
		dl.expired = true
		return
	}
	dl.ev = engine.After(d, func() {
		dl.expired = true
	})
}

// SockConn adapts one *Conn to net.Conn. Reads block (stepping the
// simulation) until data, EOF, an error, or a deadline; writes queue into
// the TCP send buffer and never block. Obtain one from Sockets.Dial /
// Dialer.DialContext or a Sockets listener.
type SockConn struct {
	d      *Driver
	c      *Conn
	stack  *Stack
	rx     []byte
	dead   bool // OnClose fired: peer FIN, teardown, or local close done
	closed bool // local Close called
	rd, wr sockDeadline
}

// newSockConn wires the adapter's callbacks; call with the driver lock
// held (inside Run or an engine callback) and before any payload can
// arrive.
func newSockConn(d *Driver, stack *Stack, c *Conn) *SockConn {
	s := &SockConn{d: d, c: c, stack: stack}
	c.OnData = func(_ *Conn, payload []byte) {
		// The packet owning payload is pooled; copy before it is reused.
		s.rx = append(s.rx, payload...)
	}
	c.OnClose = func(*Conn) { s.dead = true }
	return s
}

// Conn exposes the underlying TCP endpoint (tests assert on its state).
func (s *SockConn) Conn() *Conn { return s.c }

// Read blocks until buffered payload, EOF, a connection error, or the read
// deadline, driving the simulation forward while it waits.
func (s *SockConn) Read(p []byte) (n int, err error) {
	if len(p) == 0 {
		return 0, nil
	}
	s.d.WaitUntil(func() bool {
		switch {
		case s.closed:
			err = net.ErrClosed
		case len(s.rx) > 0:
			n = copy(p, s.rx)
			rest := copy(s.rx, s.rx[n:])
			s.rx = s.rx[:rest]
		case s.rd.expired:
			err = os.ErrDeadlineExceeded
		case s.dead:
			if e := s.c.Err(); e != nil {
				err = e
			} else {
				err = io.EOF
			}
		default:
			return false
		}
		return true
	})
	return n, err
}

// Write queues p into the TCP send buffer (which copies it). It never
// blocks — the simulated send buffer is unbounded — so the write deadline
// only gates already-failed connections.
func (s *SockConn) Write(p []byte) (n int, err error) {
	s.d.Run(func() {
		switch {
		case s.closed:
			err = net.ErrClosed
		case s.wr.expired:
			err = os.ErrDeadlineExceeded
		default:
			err = s.c.Send(p)
		}
	})
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close closes the connection (FIN, or teardown in SYN_SENT) and wakes any
// blocked reads. Queued-but-unsent data in SYN_SENT surfaces the TCP
// layer's ErrClosed report.
func (s *SockConn) Close() (err error) {
	s.d.Run(func() {
		if s.closed {
			err = net.ErrClosed
			return
		}
		s.closed = true
		s.rd.set(s.stack.engine, 0, false)
		s.wr.set(s.stack.engine, 0, false)
		err = s.c.Close()
	})
	return err
}

// LocalAddr returns the connection's local endpoint.
func (s *SockConn) LocalAddr() net.Addr {
	return SockAddr{IP: s.stack.IP, Port: s.c.LocalPort()}
}

// RemoteAddr returns the connection's remote endpoint.
func (s *SockConn) RemoteAddr() net.Addr {
	ip, port := s.c.Remote()
	return SockAddr{IP: ip, Port: port}
}

// SetDeadline implements net.Conn: the wall-clock deadline's distance from
// now is mapped 1:1 onto virtual time. For deterministic tests prefer
// SetReadDeadlineVT.
func (s *SockConn) SetDeadline(t time.Time) error {
	return errors.Join(s.SetReadDeadline(t), s.SetWriteDeadline(t))
}

// SetReadDeadline implements net.Conn; see SetDeadline.
func (s *SockConn) SetReadDeadline(t time.Time) error {
	d, armed := wallDeadline(t)
	s.d.Run(func() { s.rd.set(s.stack.engine, d, armed) })
	return nil
}

// SetWriteDeadline implements net.Conn; see SetDeadline.
func (s *SockConn) SetWriteDeadline(t time.Time) error {
	d, armed := wallDeadline(t)
	s.d.Run(func() { s.wr.set(s.stack.engine, d, armed) })
	return nil
}

// SetReadDeadlineVT arms the read deadline d of virtual time from now
// (d <= 0 expires immediately); it is the deterministic alternative to
// SetReadDeadline.
func (s *SockConn) SetReadDeadlineVT(d sim.Duration) {
	s.d.Run(func() { s.rd.set(s.stack.engine, d, true) })
}

// ClearReadDeadline clears a deadline set by SetReadDeadlineVT.
func (s *SockConn) ClearReadDeadline() {
	s.d.Run(func() { s.rd.set(s.stack.engine, 0, false) })
}

// wallDeadline converts net.Conn wall-clock deadline conventions: the zero
// time clears, otherwise the distance from now becomes a virtual duration.
func wallDeadline(t time.Time) (sim.Duration, bool) {
	if t.IsZero() {
		return 0, false
	}
	return sim.Duration(time.Until(t).Nanoseconds()), true
}

// SockListener adapts a TCP listen port to net.Listener. The TCP accept
// callback (engine context, driver lock held) wires a SockConn immediately
// — before any payload lands — and queues it for Accept.
type SockListener struct {
	d       *Driver
	stack   *Stack
	port    uint16
	backlog []*SockConn
	closed  bool
}

// Accept blocks until a connection reaches ESTABLISHED, driving the
// simulation while it waits.
func (l *SockListener) Accept() (c net.Conn, err error) {
	l.d.WaitUntil(func() bool {
		switch {
		case len(l.backlog) > 0:
			c = l.backlog[0]
			l.backlog = l.backlog[1:]
		case l.closed:
			err = net.ErrClosed
		default:
			return false
		}
		return true
	})
	return c, err
}

// Close withdraws the listener and wakes blocked Accepts. Connections
// already accepted live on.
func (l *SockListener) Close() (err error) {
	l.d.Run(func() {
		if l.closed {
			err = net.ErrClosed
			return
		}
		l.closed = true
		l.stack.TCP().Unlisten(l.port)
	})
	return err
}

// Addr returns the listening endpoint.
func (l *SockListener) Addr() net.Addr { return SockAddr{IP: l.stack.IP, Port: l.port} }

// Sockets is one machine's stdlib-compatible socket layer: a Driver (often
// shared across a topology), the machine's stack, and its resolver.
type Sockets struct {
	d        *Driver
	stack    *Stack
	resolver *Resolver
}

// NewSockets builds the socket layer. resolver may be nil, in which case
// only literal addresses dial.
func NewSockets(d *Driver, stack *Stack, resolver *Resolver) *Sockets {
	return &Sockets{d: d, stack: stack, resolver: resolver}
}

// Driver returns the simulation driver (for Run/Drain from harness code).
func (s *Sockets) Driver() *Driver { return s.d }

// Stack returns the machine's protocol stack (layered adapters — the
// load balancer's health prober — need its engine and transports).
func (s *Sockets) Stack() *Stack { return s.stack }

// Resolver returns the machine's stub resolver (nil if none).
func (s *Sockets) Resolver() *Resolver { return s.resolver }

// Listen opens a net.Listener on port.
func (s *Sockets) Listen(port uint16) (net.Listener, error) {
	l := &SockListener{d: s.d, stack: s.stack, port: port}
	var err error
	s.d.Run(func() {
		err = s.stack.TCP().Listen(port, nil, func(c *Conn) {
			if l.closed {
				_ = c.Close()
				return
			}
			l.backlog = append(l.backlog, newSockConn(s.d, s.stack, c))
		})
	})
	if err != nil {
		return nil, err
	}
	return l, nil
}

// Dialer dials simulated TCP by name or literal address:
// Resolve → Connect → block until ESTABLISHED or failure. The zero
// Timeout leans on the TCP retransmission cap, which bounds every dial in
// virtual time — a dial to a dead or partitioned machine returns
// ErrTimedOut instead of hanging.
type Dialer struct {
	s *Sockets
	// Timeout, when positive, additionally caps the whole dial
	// (resolve + handshake) in virtual time.
	Timeout sim.Duration
}

// Dialer returns a Dialer over this socket layer.
func (s *Sockets) Dialer() *Dialer { return &Dialer{s: s} }

// Dial implements the net.Dial shape for "tcp" addresses ("host:port").
func (dl *Dialer) Dial(network, address string) (net.Conn, error) {
	return dl.DialContext(context.Background(), network, address)
}

// DialContext implements the net.Dialer.DialContext shape — drop it into
// http.Transport.DialContext and net/http runs against the simulation.
// Context cancellation is observed at simulation steps (virtual-time
// bounds, not the context, are the guarantee against hanging).
func (dl *Dialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	switch network {
	case "tcp", "tcp4":
	default:
		return nil, fmt.Errorf("netstack: dial %s: unsupported network", network)
	}
	host, portStr, err := net.SplitHostPort(address)
	if err != nil {
		return nil, fmt.Errorf("netstack: dial %s: %w", address, err)
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return nil, fmt.Errorf("netstack: dial %s: bad port: %w", address, err)
	}
	var deadline sockDeadline
	if dl.Timeout > 0 {
		dl.s.d.Run(func() { deadline.set(dl.s.stack.engine, dl.Timeout, true) })
		defer dl.s.d.Run(func() { deadline.set(dl.s.stack.engine, 0, false) })
	}
	addrs, err := dl.resolve(ctx, host, &deadline)
	if err != nil {
		return nil, fmt.Errorf("netstack: dial %s: %w", address, err)
	}
	var lastErr error
	for _, ip := range addrs {
		c, err := dl.dialIP(ctx, ip, uint16(port), &deadline)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, os.ErrDeadlineExceeded) {
			break
		}
	}
	return nil, fmt.Errorf("netstack: dial %s: %w", address, lastErr)
}

// resolve turns host into candidate addresses: a literal IPv4 parses
// directly, anything else goes through the resolver.
func (dl *Dialer) resolve(ctx context.Context, host string, deadline *sockDeadline) ([]IPAddr, error) {
	if ip, ok := parseIPv4(host); ok {
		return []IPAddr{ip}, nil
	}
	if dl.s.resolver == nil {
		return nil, fmt.Errorf("%w: no resolver for %q", ErrNameNotFound, host)
	}
	var (
		addrs []IPAddr
		rerr  error
		done  bool
	)
	dl.s.d.Run(func() {
		dl.s.resolver.LookupA(host, func(a []IPAddr, e error) {
			addrs, rerr, done = a, e, true
		})
	})
	dl.s.d.WaitUntil(func() bool {
		if deadline.expired && !done {
			rerr, done = os.ErrDeadlineExceeded, true
		}
		if ctx.Err() != nil && !done {
			rerr, done = ctx.Err(), true
		}
		return done
	})
	if rerr != nil {
		return nil, rerr
	}
	return addrs, nil
}

// dialIP opens the connection and pumps the simulation until the handshake
// resolves: ESTABLISHED, or a teardown whose cause (ErrTimedOut after the
// retransmission cap, a RST) comes from Conn.Err.
func (dl *Dialer) dialIP(ctx context.Context, ip IPAddr, port uint16, deadline *sockDeadline) (net.Conn, error) {
	var (
		sc   *SockConn
		cerr error
	)
	dl.s.d.Run(func() {
		c, err := dl.s.stack.TCP().Connect(ip, port, nil)
		if err != nil {
			cerr = err
			return
		}
		sc = newSockConn(dl.s.d, dl.s.stack, c)
	})
	if cerr != nil {
		return nil, cerr
	}
	dl.s.d.WaitUntil(func() bool {
		switch {
		case sc.c.State() == StateEstablished:
		case sc.dead || sc.c.State() == StateClosed:
			if cerr = sc.c.Err(); cerr == nil {
				cerr = ErrClosed
			}
		case deadline.expired:
			cerr = os.ErrDeadlineExceeded
		case ctx.Err() != nil:
			cerr = ctx.Err()
		default:
			return false
		}
		return true
	})
	if cerr != nil {
		dl.s.d.Run(func() { _ = sc.c.Close() })
		return nil, cerr
	}
	return sc, nil
}

// parseIPv4 parses a dotted-quad literal.
func parseIPv4(s string) (IPAddr, bool) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, false
	}
	var ip uint32
	for _, p := range parts {
		n, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, false
		}
		ip = ip<<8 | uint32(n)
	}
	return IPAddr(ip), true
}
