package netstack

import (
	"errors"
	"testing"

	"spin/internal/sal"
)

// Regression (ephemeral-port wraparound): the pre-fix allocator incremented a
// uint16 past 65535 and wrapped to port 0, handing out well-known ports. The
// allocator is clamped to [EphemeralMin, EphemeralMax] and wraps inside the
// range.
func TestEphemeralPortWrapsInsideRange(t *testing.T) {
	h := newNetHost(t, "eph", Addr(10, 0, 0, 1), sal.LanceModel)
	u := h.stack.UDP()
	// Park the cursor on the last port of the range.
	u.mu.Lock()
	u.cursor = EphemeralMax - EphemeralMin
	u.mu.Unlock()
	p1, err := u.EphemeralPort()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != EphemeralMax {
		t.Fatalf("port at cursor end = %d, want %d", p1, EphemeralMax)
	}
	if err := u.Bind(p1, nil, nil); err != nil {
		t.Fatal(err)
	}
	// The next allocation crosses the boundary: it must wrap to the bottom
	// of the ephemeral range, never to port 0 or the well-known range.
	p2, err := u.EphemeralPort()
	if err != nil {
		t.Fatal(err)
	}
	if p2 != EphemeralMin {
		t.Fatalf("port after wrap = %d, want %d", p2, EphemeralMin)
	}
	for i := 0; i < 100; i++ {
		p, err := u.EphemeralPort()
		if err != nil {
			t.Fatal(err)
		}
		if p < EphemeralMin {
			t.Fatalf("allocator escaped the ephemeral range: port %d", p)
		}
	}
}

// Allocation skips bound ports and reports exhaustion with an error instead
// of looping or wrapping out of range.
func TestEphemeralPortExhaustion(t *testing.T) {
	h := newNetHost(t, "exh", Addr(10, 0, 0, 1), sal.LanceModel)
	u := h.stack.UDP()
	// Occupy the whole range directly (Bind would copy the table 45536
	// times); the allocator only reads the snapshot.
	full := make(map[uint16]udpBinding, EphemeralMax-EphemeralMin+1)
	for p := EphemeralMin; p <= EphemeralMax; p++ {
		full[uint16(p)] = udpBinding{}
	}
	u.ports.Store(&full)
	if _, err := u.EphemeralPort(); !errors.Is(err, ErrPortsExhausted) {
		t.Fatalf("err = %v, want ErrPortsExhausted", err)
	}
	// Freeing one port anywhere in the range makes it allocatable again.
	u.Unbind(40000)
	p, err := u.EphemeralPort()
	if err != nil {
		t.Fatal(err)
	}
	if p != 40000 {
		t.Fatalf("allocated %d, want the single free port 40000", p)
	}
}
