package netstack

import (
	"encoding/binary"

	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/sal"
	"spin/internal/sim"
)

// The networked video system (paper §1.2, §5.4, Figure 6). The server is
// three kernel extensions: one reads video frames from storage, one sends
// them over the network, and one registers itself as a handler on the
// SendPacket event, transforming the single send into a multicast to a list
// of clients. Because each outgoing packet is pushed through the protocol
// graph only once — not once per client stream — the server scales to more
// clients than one that processes each packet in isolation.

// VideoFrameSource supplies compressed frame payloads (the file-system
// extension in the real experiment; synthetic bytes in benches).
type VideoFrameSource func(frame int) []byte

// VideoServer streams frames to registered clients.
type VideoServer struct {
	stack  *Stack
	source VideoFrameSource
	port   uint16

	clients []IPAddr
	ref     dispatch.HandlerRef

	// FramesSent counts frames pushed through the graph (once per frame,
	// regardless of client count).
	FramesSent int64
	// PacketsSent counts per-client transmissions by the multicast
	// handler.
	PacketsSent int64
}

// NewVideoServer builds the server extension trio on stack. Frames go to
// UDP port `port` on every subscribed client.
func NewVideoServer(stack *Stack, port uint16, source VideoFrameSource) (*VideoServer, error) {
	vs := &VideoServer{stack: stack, source: source, port: port}
	// The multicast extension: a handler on SendPacket that fans a single
	// logical send out to the client list.
	ref, err := stack.disp.Install(EvSendPacket, func(arg, _ any) any {
		pkt := arg.(*Packet)
		for _, dst := range vs.clients {
			out := pkt.Clone()
			out.Dst = dst
			// Per-client work: header patch, per-packet UDP
			// checksum, driver handoff; the protocol-stack
			// traversal already happened once for the template.
			vs.stack.clock.Advance(vs.stack.profile.ProcCall)
			vs.stack.clock.Advance(sim.Duration(len(out.Payload)) * ChecksumPerByte)
			nic := vs.stack.routeFor(dst)
			if nic == nil {
				continue
			}
			vs.PacketsSent++
			_ = nic.Send(frameFor(out))
		}
		return true
	}, dispatch.InstallOptions{Installer: domain.Identity{Name: "video-multicast"}})
	if err != nil {
		return nil, err
	}
	vs.ref = ref
	return vs, nil
}

func frameFor(p *Packet) (f sal.NetFrame) {
	return sal.NetFrame{Size: p.WireSize(), Payload: p}
}

// Subscribe adds a client stream.
func (vs *VideoServer) Subscribe(client IPAddr) { vs.clients = append(vs.clients, client) }

// Clients reports the subscriber count.
func (vs *VideoServer) Clients() int { return len(vs.clients) }

// SendFrame reads frame number n from the source and pushes it through the
// protocol graph exactly once; the multicast handler fans it out.
func (vs *VideoServer) SendFrame(n int) {
	payload := vs.source(n)
	// Read path + single UDP/IP traversal for the template packet.
	vs.stack.clock.Advance(2 * vs.stack.profile.ProtoLayer)
	pkt := &Packet{
		Src: vs.stack.IP, Proto: ProtoUDP,
		SrcPort: vs.port, DstPort: vs.port,
		Payload: payload, TTL: 32,
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	pkt.Payload = append(hdr[:], pkt.Payload...)
	vs.FramesSent++
	vs.stack.disp.Raise(EvSendPacket, pkt)
}

// Remove uninstalls the multicast handler.
func (vs *VideoServer) Remove() { _ = vs.stack.disp.Remove(vs.ref) }

// VideoClient is the client-side extension: it awaits incoming video
// packets, decompresses them, and writes them directly to the frame buffer
// — all within the kernel.
type VideoClient struct {
	stack *Stack
	// decompressPerByte models the decompression work per payload byte.
	decompressPerByte sim.Duration
	// fb, when attached, receives decompressed frames; without one the
	// extension charges an equivalent memory-write cost.
	fb *sal.Framebuffer

	FramesShown int64
	LastFrame   int
}

// AttachFramebuffer directs decompressed frames to a display device.
func (vc *VideoClient) AttachFramebuffer(fb *sal.Framebuffer) { vc.fb = fb }

// NewVideoClient installs the client extension on UDP port `port`.
func NewVideoClient(stack *Stack, port uint16) (*VideoClient, error) {
	vc := &VideoClient{stack: stack, decompressPerByte: 2}
	err := stack.UDP().Bind(port, InKernelDelivery, func(pkt *Packet) {
		if len(pkt.Payload) < 4 {
			return
		}
		n := int(binary.BigEndian.Uint32(pkt.Payload[:4]))
		body := pkt.Payload[4:]
		// Decompress and write to the framebuffer.
		vc.stack.clock.Advance(sim.Duration(len(body)) * vc.decompressPerByte)
		if vc.fb != nil {
			vc.fb.WriteFrame(body)
		} else {
			vc.stack.clock.Advance(sim.Duration(len(body)/8) * vc.stack.profile.CopyPerWord)
		}
		vc.FramesShown++
		vc.LastFrame = n
	})
	if err != nil {
		return nil, err
	}
	return vc, nil
}
