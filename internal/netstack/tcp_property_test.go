package netstack

import (
	"bytes"
	"testing"
	"testing/quick"

	"spin/internal/sal"
	"spin/internal/sim"
)

// Property: for any traffic profile — arbitrary chunk sizes, arbitrary
// moderate loss — TCP delivers every byte, in order, exactly once, in both
// directions.
func TestTCPBidirectionalIntegrityProperty(t *testing.T) {
	check := func(chunkSeeds []uint16, lossPct uint8, seed uint64) bool {
		lossRate := float64(lossPct%16) / 100 // 0-15%
		nChunks := len(chunkSeeds)
		if nChunks == 0 {
			return true
		}
		if nChunks > 12 {
			chunkSeeds = chunkSeeds[:12]
			nChunks = 12
		}
		a, b, cl := pair(t, sal.LanceModel)
		if lossRate > 0 {
			a.nic.InjectLoss(lossRate, seed|1)
			b.nic.InjectLoss(lossRate, seed|2)
		}
		// Build the payloads: client sends chunks; server echoes each
		// chunk back doubled.
		var sent []byte
		for i, cs := range chunkSeeds {
			size := int(cs)%2000 + 1
			chunk := make([]byte, size)
			for j := range chunk {
				chunk[j] = byte(i + j)
			}
			sent = append(sent, chunk...)
		}
		var serverGot, clientGot []byte
		_ = b.stack.TCP().Listen(80, nil, func(c *Conn) {
			c.OnData = func(c *Conn, d []byte) {
				serverGot = append(serverGot, d...)
				_ = c.Send(d) // echo
			}
		})
		conn, err := a.stack.TCP().Connect(Addr(10, 0, 0, 2), 80, nil)
		if err != nil {
			return false
		}
		conn.OnConnect = func(c *Conn) {
			off := 0
			for _, cs := range chunkSeeds {
				size := int(cs)%2000 + 1
				_ = c.Send(sent[off : off+size])
				off += size
			}
		}
		conn.OnData = func(_ *Conn, d []byte) { clientGot = append(clientGot, d...) }
		done := func() bool {
			return len(serverGot) == len(sent) && len(clientGot) == len(sent)
		}
		cl.RunUntil(done, sim.Time(30*60*sim.Second))
		return bytes.Equal(serverGot, sent) && bytes.Equal(clientGot, sent)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
