package netstack

import (
	"fmt"
	"strings"
)

// Graph renders the installed protocol graph — events (ovals) routing to
// handlers (boxes) — the textual analogue of the paper's Figure 5. Only
// protocol-graph events are shown.
func (s *Stack) Graph() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol graph of %s (%v)\n", s.Host, s.IP)
	order := []string{
		EvEtherArrived, EvATMArrived, EvIPArrived,
		EvICMPArrived, EvUDPArrived, EvTCPArrived, EvSendPacket,
	}
	for _, ev := range order {
		owners := s.disp.HandlerOwners(ev)
		fmt.Fprintf(&b, "  (%s)\n", ev)
		if len(owners) == 0 {
			fmt.Fprintf(&b, "      -> [default transport demux]\n")
			continue
		}
		for _, o := range owners {
			fmt.Fprintf(&b, "      -> [%s]\n", o)
		}
	}
	// Port tables are handlers too (snapshot loads; safe during traffic).
	if ports := *s.udp.ports.Load(); len(ports) > 0 {
		fmt.Fprintf(&b, "  UDP ports:")
		for p := range ports {
			fmt.Fprintf(&b, " %d", p)
		}
		fmt.Fprintln(&b)
	}
	if listeners := *s.tcp.listeners.Load(); len(listeners) > 0 {
		fmt.Fprintf(&b, "  TCP listeners:")
		for p := range listeners {
			fmt.Fprintf(&b, " %d", p)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
