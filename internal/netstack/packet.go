// Package netstack implements SPIN's network protocol architecture (paper
// §5.3, Figure 5): a protocol graph in which each incoming packet is
// "pushed" through by events and "pulled" by handlers. Handlers at the top
// of the graph can process a message entirely within the kernel — that is
// what the forwarder, HTTP, video and active-message extensions in this
// package do — or copy it out to an application (which is what the OSF/1
// baseline models).
//
// The stack is real: IP with per-protocol guarded dispatch, ICMP echo, UDP
// ports, and a compact TCP with handshake, sliding window, retransmission
// and slow start. Costs are charged to the owning machine's virtual clock;
// frames travel between machines over sal NIC/link models.
package netstack

import "fmt"

// IPAddr is an IPv4-style address.
type IPAddr uint32

// Addr builds an address from dotted quads.
func Addr(a, b, c, d byte) IPAddr {
	return IPAddr(a)<<24 | IPAddr(b)<<16 | IPAddr(c)<<8 | IPAddr(d)
}

func (a IPAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// TCPFlags is the TCP flag set.
type TCPFlags uint8

// TCP flags.
const (
	FlagSYN TCPFlags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

func (f TCPFlags) String() string {
	s := ""
	if f&FlagSYN != 0 {
		s += "S"
	}
	if f&FlagACK != 0 {
		s += "A"
	}
	if f&FlagFIN != 0 {
		s += "F"
	}
	if f&FlagRST != 0 {
		s += "R"
	}
	if s == "" {
		s = "-"
	}
	return s
}

// Header sizes in bytes.
const (
	EtherHeader = 14
	IPHeader    = 20
	UDPHeader   = 8
	TCPHeader   = 20
	ICMPHeader  = 8
)

// Packet is one packet traversing the graph. It carries all layers' fields
// at once (the simulation passes the object by reference; only sizes affect
// timing).
type Packet struct {
	Src, Dst IPAddr
	Proto    uint8

	// Transport.
	SrcPort, DstPort uint16

	// TCP.
	Seq, Ack uint32
	Flags    TCPFlags
	Window   int

	// ICMP.
	ICMPType uint8 // 8 echo request, 0 echo reply
	ICMPSeq  uint16

	Payload []byte

	// Claimed is set by an extension that consumed the packet at some
	// layer, suppressing default downstream processing (how the
	// forwarder intercepts packets below the transport).
	Claimed bool

	// TTL guards against forwarding loops.
	TTL int

	// IP fragmentation: FragID groups the fragments of one datagram,
	// FragOffset is this fragment's payload offset, MoreFrags marks
	// non-final fragments.
	FragID     uint32
	FragOffset int
	MoreFrags  bool
}

// WireSize returns the packet's size on the wire including link, network
// and transport headers.
func (p *Packet) WireSize() int {
	n := EtherHeader + IPHeader + len(p.Payload)
	switch p.Proto {
	case ProtoUDP:
		n += UDPHeader
	case ProtoTCP:
		n += TCPHeader
	case ProtoICMP:
		n += ICMPHeader
	}
	return n
}

// Clone returns a deep copy (payload included); forwarding and multicast
// paths copy so that later mutation does not alias.
func (p *Packet) Clone() *Packet {
	q := *p
	q.Payload = append([]byte(nil), p.Payload...)
	q.Claimed = false
	return &q
}

func (p *Packet) String() string {
	proto := "?"
	switch p.Proto {
	case ProtoICMP:
		proto = "icmp"
	case ProtoTCP:
		proto = "tcp"
	case ProtoUDP:
		proto = "udp"
	}
	return fmt.Sprintf("%s %v:%d->%v:%d len=%d", proto, p.Src, p.SrcPort, p.Dst, p.DstPort, len(p.Payload))
}
