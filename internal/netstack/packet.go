// Package netstack implements SPIN's network protocol architecture (paper
// §5.3, Figure 5): a protocol graph in which each incoming packet is
// "pushed" through by events and "pulled" by handlers. Handlers at the top
// of the graph can process a message entirely within the kernel — that is
// what the forwarder, HTTP, video and active-message extensions in this
// package do — or copy it out to an application (which is what the OSF/1
// baseline models).
//
// The stack is real: IP with per-protocol guarded dispatch, ICMP echo, UDP
// ports, and a compact TCP with handshake, sliding window, retransmission
// and slow start. Costs are charged to the owning machine's virtual clock;
// frames travel between machines over sal NIC/link models.
package netstack

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// IPAddr is an IPv4-style address.
type IPAddr uint32

// Addr builds an address from dotted quads.
func Addr(a, b, c, d byte) IPAddr {
	return IPAddr(a)<<24 | IPAddr(b)<<16 | IPAddr(c)<<8 | IPAddr(d)
}

func (a IPAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// TCPFlags is the TCP flag set.
type TCPFlags uint8

// TCP flags.
const (
	FlagSYN TCPFlags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

func (f TCPFlags) String() string {
	s := ""
	if f&FlagSYN != 0 {
		s += "S"
	}
	if f&FlagACK != 0 {
		s += "A"
	}
	if f&FlagFIN != 0 {
		s += "F"
	}
	if f&FlagRST != 0 {
		s += "R"
	}
	if s == "" {
		s = "-"
	}
	return s
}

// Header sizes in bytes.
const (
	EtherHeader = 14
	IPHeader    = 20
	UDPHeader   = 8
	TCPHeader   = 20
	ICMPHeader  = 8
)

// Packet is one packet traversing the graph. It carries all layers' fields
// at once (the simulation passes the object by reference; only sizes affect
// timing).
type Packet struct {
	Src, Dst IPAddr
	Proto    uint8

	// Transport.
	SrcPort, DstPort uint16

	// TCP.
	Seq, Ack uint32
	Flags    TCPFlags
	Window   int

	// ICMP.
	ICMPType uint8 // 8 echo request, 0 echo reply
	ICMPSeq  uint16

	Payload []byte

	// Claimed is set by an extension that consumed the packet at some
	// layer, suppressing default downstream processing (how the
	// forwarder intercepts packets below the transport).
	Claimed bool

	// TTL guards against forwarding loops.
	TTL int

	// IP fragmentation: FragID groups the fragments of one datagram,
	// FragOffset is this fragment's payload offset, MoreFrags marks
	// non-final fragments.
	FragID     uint32
	FragOffset int
	MoreFrags  bool

	// Pool state. pooled marks packets from AllocPacket; refs is their
	// reference count, manipulated atomically (a plain int32 rather than
	// atomic.Int32 so existing by-value Packet copies stay legal — copies
	// clear it). Both are zero on ordinary &Packet{} literals, which makes
	// Retain/Release strict no-ops for them.
	pooled bool
	refs   int32
}

// Pooled, refcounted packets. At C10M rates the receive path cannot afford
// one garbage-collected Packet (plus payload) per segment: steady-state
// delivery must run at zero allocations per packet. Packets that flow
// through the wire or the RX queues therefore come from a sync.Pool and
// carry a reference count.
//
// Ownership protocol:
//
//   - AllocPacket returns a packet with one reference, owned by the caller.
//   - Handing a packet to SendIP / NIC.Send / enqueueRX donates that
//     reference: the stack releases it after transmission or delivery
//     (including the drop paths — full RX queue, no route, injected loss).
//   - Handlers reached during delivery borrow the packet: its payload is
//     valid only for the duration of the callback. A handler that keeps
//     data must copy it (every in-tree handler does), and one that re-sends
//     the packet itself must Clone or Retain.
//   - Release on a non-pooled packet is a no-op, so tests and benchmarks
//     may still inject plain &Packet{} literals (even the same one
//     repeatedly).
var pktPool = sync.Pool{New: func() any { return new(Packet) }}

// maxPooledPayload bounds the payload capacity a packet keeps when it
// returns to the pool; larger buffers (reassembled jumbo datagrams) are
// dropped for the GC so the pool holds only MTU-scale memory.
const maxPooledPayload = 16 << 10

// AllocPacket returns a zeroed packet from the pool with one reference,
// owned by the caller. Pass it to a send/enqueue entry point (donating the
// reference) or Release it.
func AllocPacket() *Packet {
	p := pktPool.Get().(*Packet)
	p.pooled = true
	atomic.StoreInt32(&p.refs, 1)
	return p
}

// Retain adds a reference and returns p, for handing the same packet to a
// second owner. No-op on non-pooled packets.
func (p *Packet) Retain() *Packet {
	if p.pooled {
		atomic.AddInt32(&p.refs, 1)
	}
	return p
}

// Release drops one reference; the last release zeroes the packet and
// returns it (payload buffer included) to the pool. Strict no-op for
// packets not obtained from AllocPacket.
func (p *Packet) Release() {
	if !p.pooled {
		return
	}
	n := atomic.AddInt32(&p.refs, -1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("netstack: Packet released more times than retained")
	}
	payload := p.Payload
	if cap(payload) > maxPooledPayload {
		payload = nil
	}
	*p = Packet{Payload: payload[:0]}
	pktPool.Put(p)
}

// SetPayload copies b into the packet's own buffer (reusing pooled
// capacity), so the caller keeps ownership of b.
func (p *Packet) SetPayload(b []byte) {
	p.Payload = append(p.Payload[:0], b...)
}

// AllocPayload sets the payload to n zero bytes, reusing the packet's
// buffer when it is large enough, and returns the slice.
func (p *Packet) AllocPayload(n int) []byte {
	if cap(p.Payload) < n {
		p.Payload = make([]byte, n)
	} else {
		p.Payload = p.Payload[:n]
		for i := range p.Payload {
			p.Payload[i] = 0
		}
	}
	return p.Payload
}

// adoptPayload hands the packet ownership of buf directly (no copy) — for
// reassembly, which built the buffer itself and discards it afterwards.
func (p *Packet) adoptPayload(buf []byte) {
	p.Payload = buf
}

// CopyHeaderFrom copies every header field of src into p, leaving p's
// payload and pool state untouched.
func (p *Packet) CopyHeaderFrom(src *Packet) {
	payload, pooled, refs := p.Payload, p.pooled, p.refs
	*p = *src
	p.Payload, p.pooled, p.refs = payload, pooled, refs
	p.Claimed = false
}

// WireSize returns the packet's size on the wire including link, network
// and transport headers.
func (p *Packet) WireSize() int {
	n := EtherHeader + IPHeader + len(p.Payload)
	switch p.Proto {
	case ProtoUDP:
		n += UDPHeader
	case ProtoTCP:
		n += TCPHeader
	case ProtoICMP:
		n += ICMPHeader
	}
	return n
}

// Clone returns a deep copy (payload included); forwarding and multicast
// paths copy so that later mutation does not alias. The clone is a fresh
// pooled packet with its own single reference.
func (p *Packet) Clone() *Packet {
	q := AllocPacket()
	q.CopyHeaderFrom(p)
	q.SetPayload(p.Payload)
	return q
}

func (p *Packet) String() string {
	proto := "?"
	switch p.Proto {
	case ProtoICMP:
		proto = "icmp"
	case ProtoTCP:
		proto = "tcp"
	case ProtoUDP:
		proto = "udp"
	}
	return fmt.Sprintf("%s %v:%d->%v:%d len=%d", proto, p.Src, p.SrcPort, p.Dst, p.DstPort, len(p.Payload))
}
