package netstack

import (
	"bytes"
	"errors"
	"testing"
)

func wireSamplePackets() []*Packet {
	return []*Packet{
		{Src: Addr(10, 0, 0, 1), Dst: Addr(10, 0, 0, 2), Proto: ProtoUDP,
			SrcPort: 4000, DstPort: 53, TTL: 32, Payload: []byte("query")},
		{Src: Addr(10, 0, 0, 2), Dst: Addr(10, 0, 0, 1), Proto: ProtoTCP,
			SrcPort: 80, DstPort: 5501, Seq: 1000, Ack: 2000,
			Flags: FlagSYN | FlagACK, Window: 32 * 1024, TTL: 32, Payload: []byte("hi")},
		{Src: Addr(192, 168, 0, 7), Dst: Addr(192, 168, 0, 9), Proto: ProtoICMP,
			ICMPType: 8, ICMPSeq: 7, TTL: 64, Payload: make([]byte, 56)},
		{Src: Addr(10, 0, 0, 3), Dst: Addr(10, 0, 0, 4), Proto: ProtoUDP,
			SrcPort: 9, DstPort: 9, TTL: 1, FragID: 42, FragOffset: 1480,
			MoreFrags: true, Payload: bytes.Repeat([]byte{0xab}, 512)},
	}
}

// samePacket compares the wire-visible fields of two packets.
func samePacket(a, b *Packet) bool {
	return a.Src == b.Src && a.Dst == b.Dst && a.Proto == b.Proto &&
		a.SrcPort == b.SrcPort && a.DstPort == b.DstPort &&
		a.Seq == b.Seq && a.Ack == b.Ack && a.Flags == b.Flags &&
		a.Window == b.Window && a.ICMPType == b.ICMPType && a.ICMPSeq == b.ICMPSeq &&
		a.TTL == b.TTL && a.FragID == b.FragID && a.FragOffset == b.FragOffset &&
		a.MoreFrags == b.MoreFrags && bytes.Equal(a.Payload, b.Payload)
}

func TestWireRoundTrip(t *testing.T) {
	for i, pkt := range wireSamplePackets() {
		b := EncodePacket(pkt)
		if len(b) != pkt.WireSize() {
			t.Errorf("packet %d: encoded %d bytes, WireSize %d", i, len(b), pkt.WireSize())
		}
		got, err := ParsePacket(b)
		if err != nil {
			t.Fatalf("packet %d: parse: %v", i, err)
		}
		if !samePacket(pkt, got) {
			t.Errorf("packet %d: round trip\n  sent %+v\n  got  %+v", i, pkt, got)
		}
	}
}

func TestParsePacketRejectsMalformed(t *testing.T) {
	good := EncodePacket(wireSamplePackets()[0])
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrFrameTooShort},
		{"truncated-ip", func(b []byte) []byte { return b[:EtherHeader+3] }, ErrFrameTooShort},
		{"bad-ethertype", func(b []byte) []byte { b[12] = 0x86; return b }, ErrBadEtherType},
		{"bad-version", func(b []byte) []byte { b[EtherHeader] = 6; return b }, ErrBadIPVersion},
		{"total-past-frame", func(b []byte) []byte {
			b[EtherHeader+1] = 0xff
			b[EtherHeader+2] = 0xff
			return b
		}, ErrBadLength},
		{"total-below-headers", func(b []byte) []byte {
			b[EtherHeader+1] = 0
			b[EtherHeader+2] = 4
			return b
		}, ErrBadLength},
		{"udp-length-mismatch", func(b []byte) []byte {
			b[EtherHeader+IPHeader+4] = 0xee
			return b
		}, ErrBadLength},
	}
	for _, tc := range cases {
		b := tc.mutate(append([]byte(nil), good...))
		if _, err := ParsePacket(b); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// TCP options (data offset > 5) are unsupported and must be rejected,
	// not mis-sliced.
	tcp := EncodePacket(wireSamplePackets()[1])
	tcp[EtherHeader+IPHeader+12] = 8 << 4
	if _, err := ParsePacket(tcp); !errors.Is(err, ErrBadLength) {
		t.Errorf("tcp options: err = %v, want ErrBadLength", err)
	}
}

func TestEncodeSaturatesWideFields(t *testing.T) {
	pkt := &Packet{Src: 1, Dst: 2, Proto: ProtoTCP, TTL: 4096, Window: 1 << 20,
		FragOffset: 1 << 20, Payload: []byte("x")}
	got, err := ParsePacket(EncodePacket(pkt))
	if err != nil {
		t.Fatal(err)
	}
	if got.TTL != 255 || got.Window != 0xffff || got.FragOffset != 0xffff {
		t.Errorf("saturation: ttl=%d window=%d fragoff=%d", got.TTL, got.Window, got.FragOffset)
	}
}
