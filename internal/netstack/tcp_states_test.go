package netstack

import (
	"testing"

	"spin/internal/sal"
	"spin/internal/sim"
)

// Edge cases of the TCP state machine.

func establish(t *testing.T, a, b *host, cl *sim.Cluster) (client *Conn, server **Conn) {
	t.Helper()
	var srvConn *Conn
	if err := b.stack.TCP().Listen(80, nil, func(c *Conn) { srvConn = c }); err != nil {
		t.Fatal(err)
	}
	conn, err := a.stack.TCP().Connect(Addr(10, 0, 0, 2), 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	up := false
	conn.OnConnect = func(*Conn) { up = true }
	if !cl.RunUntil(func() bool { return up && srvConn != nil }, sim.Time(60*sim.Second)) {
		t.Fatal("handshake failed")
	}
	return conn, &srvConn
}

func TestTCPSimultaneousClose(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	client, srv := establish(t, a, b, cl)
	// Both sides close at (virtually) the same instant: FINs cross.
	client.Close()
	(*srv).Close()
	cl.Run(sim.Time(60 * sim.Second))
	if client.State() != StateClosed {
		t.Errorf("client state = %v", client.State())
	}
	if (*srv).State() != StateClosed {
		t.Errorf("server state = %v", (*srv).State())
	}
	if a.stack.TCP().Conns()+b.stack.TCP().Conns() != 0 {
		t.Error("connections leaked after simultaneous close")
	}
}

func TestTCPHalfClose(t *testing.T) {
	// Client closes its direction; the server may still send before
	// closing its own.
	a, b, cl := pair(t, sal.LanceModel)
	client, srv := establish(t, a, b, cl)
	var clientGot []byte
	client.OnData = func(_ *Conn, d []byte) { clientGot = append(clientGot, d...) }
	serverSawClose := false
	(*srv).OnClose = func(c *Conn) {
		serverSawClose = true
		_ = c.Send([]byte("parting gift"))
		c.Close()
	}
	client.Close()
	cl.Run(sim.Time(60 * sim.Second))
	if !serverSawClose {
		t.Fatal("server never saw the close")
	}
	if string(clientGot) != "parting gift" {
		t.Errorf("client got %q after half-close", clientGot)
	}
	if client.State() != StateClosed || (*srv).State() != StateClosed {
		t.Errorf("states = %v / %v", client.State(), (*srv).State())
	}
}

func TestTCPRSTMidConnection(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	client, srv := establish(t, a, b, cl)
	closed := false
	client.OnClose = func(*Conn) { closed = true }
	// Forge a RST from the server side (e.g. its process died).
	rp, lp := (*srv).localPort, (*srv).remotePort
	rst := &Packet{
		Src: b.stack.IP, Dst: a.stack.IP, Proto: ProtoTCP,
		SrcPort: rp, DstPort: lp, Flags: FlagRST, TTL: 32,
	}
	_ = b.stack.SendIP(rst)
	cl.Run(sim.Time(60 * sim.Second))
	if client.State() != StateClosed {
		t.Errorf("client state after RST = %v", client.State())
	}
	if !closed {
		t.Error("OnClose not fired on RST")
	}
}

func TestTCPServerRetransmitsSYNACK(t *testing.T) {
	// Drop the server's first SYN-ACK: its retransmission timer must
	// recover the handshake.
	a, b, cl := pair(t, sal.LanceModel)
	// Lose ~the first outbound frame from b (seed chosen so the first
	// Float64 < rate).
	b.nic.InjectLoss(0.9, 3)
	accepted := false
	_ = b.stack.TCP().Listen(80, nil, func(*Conn) { accepted = true })
	conn, _ := a.stack.TCP().Connect(Addr(10, 0, 0, 2), 80, nil)
	up := false
	conn.OnConnect = func(*Conn) { up = true }
	cl.RunUntil(func() bool { return up }, sim.Time(60*sim.Second))
	// Stop losing so the test converges if it has not already, and drain
	// until the server side completes too.
	b.nic.InjectLoss(0, 0)
	cl.RunUntil(func() bool { return up && accepted }, sim.Time(10*60*sim.Second))
	if !up || !accepted {
		t.Fatalf("handshake never recovered (up=%v accepted=%v, b dropped %d)",
			up, accepted, b.nic.Dropped())
	}
}

func TestTCPDataBeforeAcceptCallbackQueues(t *testing.T) {
	// Client sends immediately at OnConnect; the server's OnData is
	// assigned in the accept callback, which runs at ESTABLISHED —
	// data arriving with the handshake-completing ACK must be seen.
	a, b, cl := pair(t, sal.LanceModel)
	var got []byte
	_ = b.stack.TCP().Listen(80, nil, func(c *Conn) {
		c.OnData = func(_ *Conn, d []byte) { got = append(got, d...) }
	})
	conn, _ := a.stack.TCP().Connect(Addr(10, 0, 0, 2), 80, nil)
	conn.OnConnect = func(c *Conn) { _ = c.Send([]byte("eager")) }
	cl.Run(sim.Time(60 * sim.Second))
	if string(got) != "eager" {
		t.Errorf("got %q", got)
	}
}

func TestTCPSendOnClosedFails(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	client, _ := establish(t, a, b, cl)
	client.Close()
	cl.Run(sim.Time(60 * sim.Second))
	if err := client.Send([]byte("too late")); err == nil {
		t.Error("send on closed connection accepted")
	}
}

func TestTCPWindowLimitsInFlight(t *testing.T) {
	// With a tiny peer window, the sender must not blast the whole
	// buffer at once.
	a, b, cl := pair(t, sal.LanceModel)
	client, _ := establish(t, a, b, cl)
	client.sndWnd = 2 * DefaultMSS // pretend the peer advertised 2 MSS
	_ = client.Send(make([]byte, 10*DefaultMSS))
	inFlight := int(client.sndNxt - client.sndUna)
	if inFlight > 2*DefaultMSS {
		t.Errorf("in-flight %d exceeds advertised window %d", inFlight, 2*DefaultMSS)
	}
	cl.Run(sim.Time(60 * sim.Second))
	if len(client.sendBuf) != 0 || len(client.inflight) != 0 {
		t.Error("transfer did not complete after window opened via ACKs")
	}
}

func TestTCPConcurrentConnections(t *testing.T) {
	// Several simultaneous connections to one listener stay isolated.
	a, b, cl := pair(t, sal.LanceModel)
	got := map[uint16][]byte{}
	_ = b.stack.TCP().Listen(80, nil, func(c *Conn) {
		c.OnData = func(c *Conn, d []byte) {
			_, port := c.Remote()
			got[port] = append(got[port], d...)
		}
	})
	const n = 5
	var conns []*Conn
	for i := 0; i < n; i++ {
		i := i
		c, err := a.stack.TCP().Connect(Addr(10, 0, 0, 2), 80, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.OnConnect = func(c *Conn) {
			_ = c.Send([]byte{byte('A' + i)})
		}
		conns = append(conns, c)
	}
	cl.Run(sim.Time(60 * sim.Second))
	if len(got) != n {
		t.Fatalf("distinct peers = %d, want %d", len(got), n)
	}
	seen := map[byte]bool{}
	for _, d := range got {
		if len(d) != 1 {
			t.Fatalf("stream mixed: %q", d)
		}
		seen[d[0]] = true
	}
	if len(seen) != n {
		t.Errorf("payloads = %v", seen)
	}
}
