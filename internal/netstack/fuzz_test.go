package netstack

import (
	"bytes"
	"encoding/binary"
	"testing"

	"spin/internal/sim"
)

// FuzzParsePacket throws arbitrary bytes at the wire decoder. Any input may
// be rejected, but none may panic; an accepted packet must survive an
// encode/parse round trip unchanged (the parse is canonical).
func FuzzParsePacket(f *testing.F) {
	for _, pkt := range wireSamplePackets() {
		f.Add(EncodePacket(pkt))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, EtherHeader+IPHeader))
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := ParsePacket(data)
		if err != nil {
			return
		}
		round, err := ParsePacket(EncodePacket(pkt))
		if err != nil {
			t.Fatalf("re-parse of re-encoded packet failed: %v\npacket: %+v", err, pkt)
		}
		if !samePacket(pkt, round) {
			t.Fatalf("round trip changed packet:\n  first %+v\n  round %+v", pkt, round)
		}
	})
}

// FuzzParseDNSMessage throws arbitrary bytes at the DNS decoder — like
// the packet decoder it is an untrusted-input boundary. Any input may be
// rejected, but none may panic (compression pointers are the classic
// attack surface: loops, forward jumps, out-of-bounds targets); an
// accepted message must survive an encode/parse round trip unchanged,
// because the parse is canonical (names lower-cased and flattened).
func FuzzParseDNSMessage(f *testing.F) {
	seeds := []*DNSMessage{
		{ID: 1, RD: true, Questions: []DNSQuestion{{Name: "web.spin.test", Type: DNSTypeA}}},
		{ID: 2, Response: true, RA: true,
			Questions: []DNSQuestion{{Name: "web.spin.test", Type: DNSTypeA}},
			Answers:   []DNSRR{{Name: "web.spin.test", Type: DNSTypeA, TTL: 60, Data: []byte{10, 0, 0, 2}}}},
		{ID: 3, Response: true, RCode: DNSRCodeNXDomain,
			Questions: []DNSQuestion{{Name: "nope.spin.test", Type: DNSTypeA}}},
		{ID: 4, Questions: []DNSQuestion{{Name: "v6.spin.test", Type: DNSTypeAAAA}}},
	}
	for _, m := range seeds {
		wire, err := EncodeDNSMessage(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	// A compressed answer (pointer to the question name) and hostile
	// pointer shapes.
	f.Add([]byte{
		0x12, 0x34, 0x84, 0x80, 0, 1, 0, 1, 0, 0, 0, 0,
		3, 'w', 'e', 'b', 4, 's', 'p', 'i', 'n', 0, 0, 1, 0, 1,
		0xC0, 12, 0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 10, 0, 0, 2,
	})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 12, 0, 1, 0, 1})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, dnsHeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseDNSMessage(data)
		if err != nil {
			return
		}
		wire, err := EncodeDNSMessage(m)
		if err != nil {
			t.Fatalf("re-encode of parsed message failed: %v\nmessage: %+v", err, m)
		}
		round, err := ParseDNSMessage(wire)
		if err != nil {
			t.Fatalf("re-parse of re-encoded message failed: %v\nmessage: %+v", err, m)
		}
		second, err := EncodeDNSMessage(round)
		if err != nil || !bytes.Equal(wire, second) {
			t.Fatalf("round trip not canonical (%v):\n  %x\n  %x", err, wire, second)
		}
	})
}

// FuzzFragmentReassembly drives the reassembly buffer with an arbitrary
// fragment stream decoded from the fuzz input: any offsets, lengths,
// more-fragments flags, sources and IDs, including the hostile shapes the
// wire can produce (ParsePacket bounds offsets at 64K, but reassembly must
// defend itself). Reassembly must never panic, never hand back an oversized
// datagram, and never retain a buffer past its final fragment.
//
// This target found two real bugs in the pre-hardened reassemble: a
// negative FragOffset panicked the payload copy, and a large offset let a
// single datagram allocate an unbounded buffer. Every fragment payload is
// filled with a marker byte, so a completed datagram containing anything
// else (a zero-filled hole) proves a third bug: counting duplicate or
// overlapping fragments toward completeness.
func FuzzFragmentReassembly(f *testing.F) {
	// One well-formed split of a 3KB datagram, plus adversarial shapes.
	var good []byte
	for off := 0; off < 3000; off += 1480 {
		end := off + 1480
		if end > 3000 {
			end = 3000
		}
		good = appendFragDesc(good, 1, 7, uint16(off), end < 3000, uint16(end-off))
	}
	f.Add(good)
	f.Add(appendFragDesc(nil, 1, 1, 0xffff, true, 0xff)) // offset at the bound
	f.Add(appendFragDesc(nil, 2, 9, 0, false, 0))        // empty final fragment
	f.Add(append(good, good...))                         // duplicate delivery
	// Overlap shapes: a duplicated head whose repeated bytes would complete
	// a 600-byte datagram with a hole at [400, 500) if overlaps were
	// double-counted, and a mid-stream overlap plus duplicate that does
	// legitimately complete.
	hole := appendFragDesc(nil, 1, 2, 0, true, 400)
	hole = appendFragDesc(hole, 1, 2, 0, true, 400)
	hole = appendFragDesc(hole, 1, 2, 500, false, 100)
	f.Add(hole)
	overlap := appendFragDesc(nil, 1, 3, 0, true, 400)
	overlap = appendFragDesc(overlap, 1, 3, 300, true, 200)
	overlap = appendFragDesc(overlap, 1, 3, 0, true, 400)
	overlap = appendFragDesc(overlap, 1, 3, 500, false, 100)
	f.Add(overlap)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newReassembly()
		now := sim.Time(0)
		keys := make(map[fragKey]bool)
		for len(data) >= 8 {
			src := IPAddr(data[0] % 4)
			id := uint32(data[1] % 4)
			off := int(binary.BigEndian.Uint16(data[2:4]))
			more := data[4]&1 != 0
			plen := int(binary.BigEndian.Uint16(data[5:7])) % 2048
			// Signed shapes: the stream can also ask for a negative
			// offset, which a hand-built Packet could carry.
			if data[7]&0x80 != 0 {
				off = -off
			}
			data = data[8:]
			payload := make([]byte, plen)
			for i := range payload {
				payload[i] = fragMarker
			}
			pkt := &Packet{
				Src: src, Dst: src, Proto: ProtoUDP,
				FragID: id, FragOffset: off, MoreFrags: more,
				Payload: payload,
			}
			keys[fragKey{src: pkt.Src, id: pkt.FragID}] = true
			now = now.Add(sim.Microsecond)
			whole, waited := r.reassemble(pkt, now)
			if whole != nil {
				if len(whole.Payload) > MaxDatagram {
					t.Fatalf("reassembled %d bytes > MaxDatagram", len(whole.Payload))
				}
				if whole.MoreFrags || whole.FragOffset != 0 || whole.FragID != 0 {
					t.Fatalf("reassembled datagram still marked fragmented: %+v", whole)
				}
				if waited < 0 {
					t.Fatalf("negative reassembly latency %v", waited)
				}
				for i, v := range whole.Payload {
					if v != fragMarker {
						t.Fatalf("reassembled datagram has uncopied byte %#x at offset %d of %d: overlap/duplicate fragments were double-counted",
							v, i, len(whole.Payload))
					}
				}
			}
		}
		if r.Pending() > len(keys) {
			t.Fatalf("%d pending buffers from %d distinct datagram keys", r.Pending(), len(keys))
		}
	})
}

// fragMarker fills every fuzzed fragment payload; any other byte in a
// completed datagram is a hole the reassembler failed to detect.
const fragMarker = 0xA5

// appendFragDesc encodes one fragment descriptor in the fuzz stream format
// consumed above: src, id, offset(2), flags, length(2), pad.
func appendFragDesc(b []byte, src, id byte, off uint16, more bool, plen uint16) []byte {
	var moreB byte
	if more {
		moreB = 1
	}
	return append(b, src, id, byte(off>>8), byte(off), moreB, byte(plen>>8), byte(plen), 0)
}
