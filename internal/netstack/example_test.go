package netstack_test

import (
	"fmt"

	"spin/internal/dispatch"
	"spin/internal/netstack"
	"spin/internal/sal"
	"spin/internal/sim"
)

func newHost(name string, ip netstack.IPAddr) (*sim.Engine, *netstack.Stack, *sal.NIC) {
	eng := sim.NewEngine()
	prof := &sim.SPINProfile
	disp := dispatch.New(eng, prof)
	ic := sal.NewInterruptController(eng, prof)
	nic := sal.NewNIC(sal.LanceModel, eng, ic, sal.VecNIC0)
	stack, err := netstack.NewStack(name, ip, eng, prof, disp)
	if err != nil {
		panic(err)
	}
	stack.Attach(nic)
	return eng, stack, nic
}

// Example sends a UDP datagram between two machines' in-kernel endpoints
// over simulated Ethernet.
func Example() {
	engA, a, nicA := newHost("a", netstack.Addr(10, 0, 0, 1))
	engB, b, nicB := newHost("b", netstack.Addr(10, 0, 0, 2))
	_ = sal.Connect(nicA, nicB)

	_ = b.UDP().Bind(7, netstack.InKernelDelivery, func(p *netstack.Packet) {
		fmt.Printf("got %q\n", p.Payload)
	})
	_ = a.UDP().Send(5000, b.IP, 7, []byte("hello"))
	sim.NewCluster(engA, engB).Run(0)
	// Output: got "hello"
}

// ExampleNewPacketFilter composes predicates into an in-kernel firewall —
// the guard-based answer to "little language" packet filters.
func ExampleNewPacketFilter() {
	engA, a, nicA := newHost("a", netstack.Addr(10, 0, 0, 1))
	engB, b, nicB := newHost("b", netstack.Addr(10, 0, 0, 2))
	_ = sal.Connect(nicA, nicB)

	_, _ = netstack.NewPacketFilter(b, "firewall",
		netstack.And(
			netstack.MatchProto(netstack.ProtoUDP),
			netstack.MatchDstPortRange(1, 1023),
		),
		netstack.Drop)

	_ = b.UDP().Bind(22, netstack.InKernelDelivery, func(*netstack.Packet) {
		fmt.Println("privileged port reached")
	})
	_ = b.UDP().Bind(8080, netstack.InKernelDelivery, func(*netstack.Packet) {
		fmt.Println("high port reached")
	})
	_ = a.UDP().Send(5000, b.IP, 22, []byte("x"))
	_ = a.UDP().Send(5000, b.IP, 8080, []byte("x"))
	sim.NewCluster(engA, engB).Run(0)
	// Output: high port reached
}
