package netstack

import (
	"sync"
	"sync/atomic"

	"spin/internal/sal"
	"spin/internal/sim"
)

// IP fragmentation and reassembly. Datagrams larger than the outbound
// medium's MTU are split into fragments at the IP layer and reassembled at
// the destination before transport processing — so UDP endpoints see whole
// datagrams regardless of media (the paper's ATM bandwidth test sends
// 8132-byte packets; over Ethernet the same datagram fragments).

// EthernetMTU is the classic 1500-byte IP MTU.
const EthernetMTU = 1500

// mtuFor returns the IP MTU of a NIC's medium: cell-based media (ATM AAL5)
// carry large frames natively; Ethernet-like media are limited.
func mtuFor(nic *sal.NIC) int {
	if nic.Model.CellSize > 0 {
		return 9180 // ATM AAL5 default IP MTU
	}
	return EthernetMTU
}

// fragment state on Packet: FragID groups fragments of one datagram,
// FragOffset is the payload offset, MoreFrags marks non-final fragments.
// (Fields live on Packet in packet.go.)

// Reassembly bounds: a partial datagram older than ReasmTTL (virtual time
// since its first fragment) is evicted, and each shard holds at most
// maxPendingPerShard partial datagrams (oldest evicted first). Both bounds
// exist because UDP has no recovery — a single lost fragment would
// otherwise pin its buffer forever.
const (
	ReasmTTL           = 500 * sim.Millisecond
	maxPendingPerShard = 64
	reasmShards        = 8
)

// reassembly buffers partially arrived datagrams, keyed by (src, id) and
// sharded by key hash so concurrent fragment streams on different shards
// never contend on one lock.
type reassembly struct {
	shards  [reasmShards]reasmShard
	evicted atomic.Int64
}

type reasmShard struct {
	mu    sync.Mutex
	parts map[fragKey]*fragBuffer
}

type fragKey struct {
	src IPAddr
	id  uint32
}

// shard spreads keys across the shard array (Fibonacci hashing over both
// fields).
func (k fragKey) shard() int {
	h := uint32(k.src)*2654435761 ^ k.id*0x9E3779B9
	return int(h % reasmShards)
}

// byteRange is a covered half-open payload interval [start, end).
type byteRange struct{ start, end int }

type fragBuffer struct {
	data []byte
	// covered is the sorted, merged list of payload intervals actually
	// written by arrived fragments. received is their union size — a
	// duplicate or overlapping fragment contributes only its newly covered
	// bytes, so retransmissions can never fake completeness.
	covered  []byteRange
	received int
	total    int // total payload length; -1 until the final fragment
	template Packet
	firstAt  sim.Time // arrival of the first fragment, for latency and TTL
}

// addCovered merges [start, end) into the covered list and returns how many
// bytes were newly covered.
func (b *fragBuffer) addCovered(start, end int) int {
	if end <= start {
		return 0
	}
	merged := make([]byteRange, 0, len(b.covered)+1)
	add := byteRange{start, end}
	fresh := end - start
	i := 0
	for ; i < len(b.covered) && b.covered[i].end < add.start; i++ {
		merged = append(merged, b.covered[i])
	}
	for ; i < len(b.covered) && b.covered[i].start <= add.end; i++ {
		r := b.covered[i]
		// Subtract the overlap with the existing range from the fresh count.
		lo, hi := max(add.start, r.start), min(add.end, r.end)
		if hi > lo {
			fresh -= hi - lo
		}
		if r.start < add.start {
			add.start = r.start
		}
		if r.end > add.end {
			add.end = r.end
		}
	}
	merged = append(merged, add)
	merged = append(merged, b.covered[i:]...)
	b.covered = merged
	b.received += fresh
	return fresh
}

// complete reports whether the payload [0, total) is contiguously covered.
// Counting alone is not enough: without the contiguity check a stream that
// covers [100, 700) would "complete" a 600-byte datagram with a zero-filled
// hole at the front.
func (b *fragBuffer) complete() bool {
	return b.total >= 0 && len(b.covered) > 0 &&
		b.covered[0].start == 0 && b.covered[0].end >= b.total
}

// MaxDatagram bounds a reassembled datagram's payload (the IP total-length
// field is 16 bits). Fragments claiming offsets beyond it are malformed —
// from a hostile or corrupted header — and are dropped rather than allowed
// to grow the buffer without bound.
const MaxDatagram = 64 << 10

func newReassembly() *reassembly {
	r := &reassembly{}
	for i := range r.shards {
		r.shards[i].parts = make(map[fragKey]*fragBuffer)
	}
	return r
}

// sendFragmented splits pkt into MTU-sized fragments and transmits each.
// Each fragment is a pooled packet with its own payload copy (a fragment in
// flight must not alias the original, which is released here); the
// reference the caller donated for pkt is consumed.
func (s *Stack) sendFragmented(pkt *Packet, nic *sal.NIC, mtu int) error {
	transportHdr := pkt.WireSize() - EtherHeader - IPHeader - len(pkt.Payload)
	maxPayload := mtu - IPHeader - transportHdr
	if maxPayload <= 0 {
		maxPayload = mtu / 2
	}
	id := atomic.AddUint32(&s.fragID, 1)
	payload := pkt.Payload
	for off := 0; off < len(payload); off += maxPayload {
		end := off + maxPayload
		if end > len(payload) {
			end = len(payload)
		}
		frag := AllocPacket()
		frag.CopyHeaderFrom(pkt)
		frag.SetPayload(payload[off:end])
		frag.FragID = id
		frag.FragOffset = off
		frag.MoreFrags = end < len(payload)
		// Per-fragment IP header build.
		s.clock.Advance(s.profile.ProtoLayer / 2)
		if err := nic.Send(sal.NetFrame{Size: frag.WireSize(), Payload: frag}); err != nil {
			frag.Release()
			pkt.Release()
			return err
		}
	}
	pkt.Release()
	return nil
}

// reassemble accepts one fragment at virtual time now; it returns the whole
// datagram when complete (with the latency since its first fragment), or
// nil while fragments are outstanding. Malformed fragments — negative
// offsets, or an end past MaxDatagram — are dropped: found by
// FuzzFragmentReassembly, a negative offset previously panicked the copy
// below and an oversized offset let one datagram allocate without bound.
//
// Concurrent streams proceed in parallel across shards; within a shard the
// lock covers one fragment's bookkeeping.
func (r *reassembly) reassemble(pkt *Packet, now sim.Time) (*Packet, sim.Duration) {
	if pkt.FragOffset < 0 || pkt.FragOffset > MaxDatagram ||
		pkt.FragOffset+len(pkt.Payload) > MaxDatagram {
		return nil, 0
	}
	key := fragKey{src: pkt.Src, id: pkt.FragID}
	sh := &r.shards[key.shard()]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	buf, ok := sh.parts[key]
	if !ok {
		// A new datagram starting: evict what the TTL says is dead, then
		// make room under the cap. Both scans are bounded by the cap.
		r.sweepShardLocked(sh, now)
		if len(sh.parts) >= maxPendingPerShard {
			r.evictOldestLocked(sh)
		}
		buf = &fragBuffer{total: -1, template: *pkt, firstAt: now}
		sh.parts[key] = buf
	}
	end := pkt.FragOffset + len(pkt.Payload)
	if end > len(buf.data) {
		grown := make([]byte, end)
		copy(grown, buf.data)
		buf.data = grown
	}
	copy(buf.data[pkt.FragOffset:], pkt.Payload)
	buf.addCovered(pkt.FragOffset, end)
	if !pkt.MoreFrags {
		buf.total = end
	}
	if buf.complete() {
		delete(sh.parts, key)
		// The whole datagram is a pooled packet adopting the buffer the
		// reassembler built — no final copy. The caller (receive1) owns
		// the reference and releases it after delivery.
		whole := AllocPacket()
		whole.CopyHeaderFrom(&buf.template)
		whole.adoptPayload(buf.data[:buf.total])
		whole.FragID = 0
		whole.FragOffset = 0
		whole.MoreFrags = false
		return whole, now.Sub(buf.firstAt)
	}
	return nil, 0
}

// sweepShardLocked evicts partial datagrams whose first fragment is older
// than ReasmTTL. Callers hold sh.mu.
func (r *reassembly) sweepShardLocked(sh *reasmShard, now sim.Time) {
	for k, b := range sh.parts {
		if now.Sub(b.firstAt) > ReasmTTL {
			delete(sh.parts, k)
			r.evicted.Add(1)
		}
	}
}

// evictOldestLocked drops the shard's oldest partial datagram. Callers hold
// sh.mu.
func (r *reassembly) evictOldestLocked(sh *reasmShard) {
	var oldestKey fragKey
	var oldest *fragBuffer
	for k, b := range sh.parts {
		if oldest == nil || b.firstAt < oldest.firstAt {
			oldestKey, oldest = k, b
		}
	}
	if oldest != nil {
		delete(sh.parts, oldestKey)
		r.evicted.Add(1)
	}
}

// sweep evicts every partial datagram older than ReasmTTL across all shards
// — the virtual-time TTL sweep (also applied lazily per shard as new
// datagrams arrive).
func (r *reassembly) sweep(now sim.Time) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		r.sweepShardLocked(sh, now)
		sh.mu.Unlock()
	}
}

// Pending reports datagrams awaiting fragments (tests).
func (r *reassembly) Pending() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n += len(sh.parts)
		sh.mu.Unlock()
	}
	return n
}

// Evicted reports partial datagrams dropped by the TTL sweep or the
// pending cap.
func (r *reassembly) Evicted() int64 { return r.evicted.Load() }
