package netstack

import (
	"spin/internal/sal"
	"spin/internal/sim"
)

// IP fragmentation and reassembly. Datagrams larger than the outbound
// medium's MTU are split into fragments at the IP layer and reassembled at
// the destination before transport processing — so UDP endpoints see whole
// datagrams regardless of media (the paper's ATM bandwidth test sends
// 8132-byte packets; over Ethernet the same datagram fragments).

// EthernetMTU is the classic 1500-byte IP MTU.
const EthernetMTU = 1500

// mtuFor returns the IP MTU of a NIC's medium: cell-based media (ATM AAL5)
// carry large frames natively; Ethernet-like media are limited.
func mtuFor(nic *sal.NIC) int {
	if nic.Model.CellSize > 0 {
		return 9180 // ATM AAL5 default IP MTU
	}
	return EthernetMTU
}

// fragment state on Packet: FragID groups fragments of one datagram,
// FragOffset is the payload offset, MoreFrags marks non-final fragments.
// (Fields live on Packet in packet.go.)

// reassembly buffers partially arrived datagrams, keyed by (src, id).
type reassembly struct {
	parts map[fragKey]*fragBuffer
}

type fragKey struct {
	src IPAddr
	id  uint32
}

type fragBuffer struct {
	data     []byte
	received int
	total    int // total payload length; -1 until the final fragment
	template Packet
	firstAt  sim.Time // arrival of the first fragment, for latency tracing
}

// MaxDatagram bounds a reassembled datagram's payload (the IP total-length
// field is 16 bits). Fragments claiming offsets beyond it are malformed —
// from a hostile or corrupted header — and are dropped rather than allowed
// to grow the buffer without bound.
const MaxDatagram = 64 << 10

func newReassembly() *reassembly {
	return &reassembly{parts: make(map[fragKey]*fragBuffer)}
}

// sendFragmented splits pkt into MTU-sized fragments and transmits each.
func (s *Stack) sendFragmented(pkt *Packet, nic *sal.NIC, mtu int) error {
	transportHdr := pkt.WireSize() - EtherHeader - IPHeader - len(pkt.Payload)
	maxPayload := mtu - IPHeader - transportHdr
	if maxPayload <= 0 {
		maxPayload = mtu / 2
	}
	s.fragID++
	id := s.fragID
	payload := pkt.Payload
	for off := 0; off < len(payload); off += maxPayload {
		end := off + maxPayload
		if end > len(payload) {
			end = len(payload)
		}
		frag := *pkt
		frag.Payload = payload[off:end]
		frag.FragID = id
		frag.FragOffset = off
		frag.MoreFrags = end < len(payload)
		frag.Claimed = false
		// Per-fragment IP header build.
		s.clock.Advance(s.profile.ProtoLayer / 2)
		if err := nic.Send(sal.NetFrame{Size: frag.WireSize(), Payload: &frag}); err != nil {
			return err
		}
	}
	return nil
}

// reassemble accepts one fragment at virtual time now; it returns the whole
// datagram when complete (with the latency since its first fragment), or
// nil while fragments are outstanding. Malformed fragments — negative
// offsets, or an end past MaxDatagram — are dropped: found by
// FuzzFragmentReassembly, a negative offset previously panicked the copy
// below and an oversized offset let one datagram allocate without bound.
func (r *reassembly) reassemble(pkt *Packet, now sim.Time) (*Packet, sim.Duration) {
	if pkt.FragOffset < 0 || pkt.FragOffset > MaxDatagram ||
		pkt.FragOffset+len(pkt.Payload) > MaxDatagram {
		return nil, 0
	}
	key := fragKey{src: pkt.Src, id: pkt.FragID}
	buf, ok := r.parts[key]
	if !ok {
		buf = &fragBuffer{total: -1, template: *pkt, firstAt: now}
		r.parts[key] = buf
	}
	end := pkt.FragOffset + len(pkt.Payload)
	if end > len(buf.data) {
		grown := make([]byte, end)
		copy(grown, buf.data)
		buf.data = grown
	}
	copy(buf.data[pkt.FragOffset:], pkt.Payload)
	buf.received += len(pkt.Payload)
	if !pkt.MoreFrags {
		buf.total = end
	}
	if buf.total >= 0 && buf.received >= buf.total {
		delete(r.parts, key)
		whole := buf.template
		whole.Payload = buf.data[:buf.total]
		whole.FragID = 0
		whole.FragOffset = 0
		whole.MoreFrags = false
		whole.Claimed = false
		return &whole, now.Sub(buf.firstAt)
	}
	return nil, 0
}

// Pending reports datagrams awaiting fragments (tests).
func (r *reassembly) Pending() int { return len(r.parts) }
