package netstack

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"spin/internal/sal"
	"spin/internal/sim"
)

// sockPair builds two connected hosts sharing one driver, with socket
// layers on both (no resolvers: these tests dial literals).
func sockPair(t *testing.T) (sa, sb *Sockets, a, b *host) {
	t.Helper()
	a, b, cl := pair(t, sal.LanceModel)
	d := NewDriver(cl)
	return NewSockets(d, a.stack, nil), NewSockets(d, b.stack, nil), a, b
}

// The core blocking-adapter contract: a listener accepts, both directions
// carry data, close delivers EOF, and the connections drain from both
// shard tables.
func TestSockConnEchoAndEOF(t *testing.T) {
	sa, sb, a, b := sockPair(t)
	ln, err := sb.Listen(7)
	if err != nil {
		t.Fatal(err)
	}
	if got := ln.Addr().String(); got != "10.0.0.2:7" {
		t.Errorf("listener addr = %q", got)
	}

	srvDone := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			srvDone <- err
			return
		}
		// Echo until EOF, then close.
		buf := make([]byte, 64)
		for {
			n, err := c.Read(buf)
			if n > 0 {
				if _, werr := c.Write(buf[:n]); werr != nil {
					srvDone <- werr
					return
				}
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				srvDone <- err
				return
			}
		}
		srvDone <- c.Close()
	}()

	c, err := sa.Dialer().Dial("tcp", "10.0.0.2:7")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.RemoteAddr().String(); got != "10.0.0.2:7" {
		t.Errorf("RemoteAddr = %q", got)
	}
	if got := c.LocalAddr().(SockAddr); got.IP != a.stack.IP {
		t.Errorf("LocalAddr = %v", got)
	}
	for _, msg := range []string{"hello", "extensible", "kernels"} {
		if _, err := c.Write([]byte(msg)); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != msg {
			t.Fatalf("echo = %q, want %q", buf, msg)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-srvDone; err != nil {
		t.Fatalf("server: %v", err)
	}
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	// Let the FIN exchange and TIME_WAIT run out: both tables empty.
	sa.Driver().Drain()
	if got := a.stack.TCP().Conns() + b.stack.TCP().Conns(); got != 0 {
		t.Errorf("connections left after close: %d", got)
	}
	// Operations on the closed conn fail with net.ErrClosed.
	if _, err := c.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Errorf("write after close: %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) {
		t.Errorf("read after close: %v", err)
	}
}

// A virtual-time read deadline unblocks a reader with
// os.ErrDeadlineExceeded (which satisfies net.Error.Timeout), and clearing
// it restores blocking reads.
func TestSockReadDeadline(t *testing.T) {
	sa, sb, _, _ := sockPair(t)
	ln, err := sb.Listen(7)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		accepted <- c
	}()
	c, err := sa.Dialer().Dial("tcp", "10.0.0.2:7")
	if err != nil {
		t.Fatal(err)
	}
	sc := c.(*SockConn)
	sc.SetReadDeadlineVT(10 * sim.Millisecond)
	_, rerr := c.Read(make([]byte, 1))
	if !errors.Is(rerr, os.ErrDeadlineExceeded) {
		t.Fatalf("read error = %v, want os.ErrDeadlineExceeded", rerr)
	}
	var nerr net.Error
	if !errors.As(rerr, &nerr) || !nerr.Timeout() {
		t.Errorf("deadline error is not a net.Error timeout: %v", rerr)
	}
	// Cleared deadline: the next read blocks until the peer writes.
	sc.ClearReadDeadline()
	srv := <-accepted
	go func() {
		if _, err := srv.Write([]byte("late")); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "late" {
		t.Fatalf("read after clear = %q, %v", buf, err)
	}
}

// Dialing a port nobody listens on fails fast on the RST, not by timeout.
func TestSockDialRefused(t *testing.T) {
	sa, _, a, _ := sockPair(t)
	start := a.eng.Now()
	_, err := sa.Dialer().Dial("tcp", "10.0.0.2:81")
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if elapsed := a.eng.Now().Sub(start); elapsed > 100*sim.Millisecond {
		t.Errorf("refused dial took %v — RST should beat the retransmit timer", elapsed)
	}
	if got := a.stack.TCP().Conns(); got != 0 {
		t.Errorf("refused dial left %d connections", got)
	}
}

// A dial with no resolver and no literal address fails immediately.
func TestSockDialNoResolver(t *testing.T) {
	sa, _, _, _ := sockPair(t)
	_, err := sa.Dialer().Dial("tcp", "web.spin.test:80")
	if !errors.Is(err, ErrNameNotFound) {
		t.Fatalf("err = %v, want ErrNameNotFound", err)
	}
	if _, err := sa.Dialer().Dial("unix", "/tmp/x"); err == nil {
		t.Fatal("unsupported network accepted")
	}
}

// The foreground bugfix, end to end at the socket layer: a dial whose SYNs
// all vanish returns ErrTimedOut after the capped, exponentially backed-
// off retransmissions — in bounded virtual time — and leaves no
// connection behind.
func TestSockDialTimedOut(t *testing.T) {
	sa, _, a, _ := sockPair(t)
	a.stack.TCP().SetMaxRetx(3)
	start := a.eng.Now()
	// 10.0.0.9 routes to the peer NIC, but the peer stack drops the
	// foreign-addressed frames: every SYN disappears.
	_, err := sa.Dialer().Dial("tcp", "10.0.0.9:80")
	if !errors.Is(err, ErrTimedOut) {
		t.Fatalf("err = %v, want ErrTimedOut", err)
	}
	elapsed := a.eng.Now().Sub(start)
	// Backoff doubles from the 200ms base; with MaxRetx=3 the conn sends
	// 3 retransmissions and gives up when the last timer fires:
	// 200+400+800+1600 = 3s virtual.
	if elapsed < 3000*sim.Millisecond || elapsed > 3100*sim.Millisecond {
		t.Errorf("timed-out dial took %v, want ~3s", elapsed)
	}
	if got := a.stack.TCP().Conns(); got != 0 {
		t.Errorf("timed-out dial left %d connections", got)
	}
	if st := a.stack.TCP().Stats(); st.TimedOut != 1 {
		t.Errorf("TimedOut stat = %d, want 1", st.TimedOut)
	}
}

// Closing a listener unblocks Accept with net.ErrClosed.
func TestSockListenerClose(t *testing.T) {
	_, sb, _, _ := sockPair(t)
	ln, err := sb.Listen(7)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		got <- err
	}()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-got; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Accept after close = %v, want net.ErrClosed", err)
	}
	// The port is free again.
	if _, err := sb.Listen(7); err != nil {
		t.Fatalf("relisten: %v", err)
	}
}

// Wall-clock deadline conventions (the net.Conn contract) map onto virtual
// time: a past deadline expires reads and writes immediately, a future one
// expires after its distance in virtual time, and the zero time clears both
// directions.
func TestSockWallDeadlines(t *testing.T) {
	sa, sb, _, _ := sockPair(t)
	ln, err := sb.Listen(7)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if _, err := ln.Accept(); err != nil {
			t.Error(err)
		}
	}()
	c, err := sa.Dialer().Dial("tcp", "10.0.0.2:7")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.LocalAddr().Network(); got != "tcp" {
		t.Errorf("Network() = %q", got)
	}
	if c.(*SockConn).Conn().State() != StateEstablished {
		t.Error("underlying conn not established")
	}
	if err := c.SetDeadline(time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("read past deadline = %v", err)
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("write past deadline = %v", err)
	}
	if err := c.SetDeadline(time.Time{}); err != nil { // zero clears
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("x")); err != nil {
		t.Errorf("write after clear = %v", err)
	}
	// A future wall deadline becomes a virtual-time distance; the blocked
	// read steps the simulation up to it and expires.
	if err := c.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("read past future deadline = %v", err)
	}
}

// A dial by hostname goes Resolve -> Connect: the resolver supplies the
// address and the returned conn is to the resolved endpoint.
func TestSockDialByName(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	d := NewDriver(cl)
	res := NewResolver(a.stack, ResolverConfig{
		Servers:   []IPAddr{Addr(10, 0, 0, 2)},
		Transport: &fakeTransport{answers: []IPAddr{Addr(10, 0, 0, 2)}},
	})
	sa := NewSockets(d, a.stack, res)
	sb := NewSockets(d, b.stack, nil)
	ln, err := sb.Listen(7)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if _, err := ln.Accept(); err != nil {
			t.Error(err)
		}
	}()
	c, err := sa.Dialer().Dial("tcp", "web.spin.test:7")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.RemoteAddr().String(); got != "10.0.0.2:7" {
		t.Errorf("RemoteAddr = %q", got)
	}
	if st := res.Stats(); st.Lookups != 1 || st.Sent != 1 {
		t.Errorf("resolver stats = %+v", st)
	}
}

// The Dialer's own virtual-time Timeout caps a dial even when the TCP
// retransmission budget would keep trying, and a canceled context aborts
// immediately; malformed addresses fail before any traffic.
func TestSockDialDeadlineAndContext(t *testing.T) {
	sa, _, a, _ := sockPair(t)
	a.stack.TCP().SetMaxRetx(10) // retx budget far beyond the dial deadline
	dl := sa.Dialer()
	dl.Timeout = 300 * sim.Millisecond
	start := a.eng.Now()
	_, err := dl.Dial("tcp", "10.0.0.9:80")
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want os.ErrDeadlineExceeded", err)
	}
	if elapsed := a.eng.Now().Sub(start); elapsed < 300*sim.Millisecond || elapsed > 310*sim.Millisecond {
		t.Errorf("deadline-capped dial took %v, want ~300ms", elapsed)
	}
	if got := a.stack.TCP().Conns(); got != 0 {
		t.Errorf("capped dial left %d connections", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sa.Dialer().DialContext(ctx, "tcp", "10.0.0.9:80"); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled dial = %v", err)
	}
	if _, err := sa.Dialer().Dial("tcp", "noport"); err == nil {
		t.Error("address without port accepted")
	}
	if _, err := sa.Dialer().Dial("tcp", "10.0.0.2:99999"); err == nil {
		t.Error("out-of-range port accepted")
	}
}
