package netstack

import (
	"strings"
	"testing"

	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/sal"
	"spin/internal/sim"
)

func domainIdent(name string) domain.Identity { return domain.Identity{Name: name} }

// host bundles one simulated machine's networking for tests.
type host struct {
	eng   *sim.Engine
	disp  *dispatch.Dispatcher
	ic    *sal.InterruptController
	nic   *sal.NIC
	stack *Stack
}

func newNetHost(t *testing.T, name string, ip IPAddr, model sal.NICModel) *host {
	t.Helper()
	eng := sim.NewEngine()
	prof := &sim.SPINProfile
	disp := dispatch.New(eng, prof)
	ic := sal.NewInterruptController(eng, prof)
	nic := sal.NewNIC(model, eng, ic, sal.VecNIC0)
	stack, err := NewStack(name, ip, eng, prof, disp)
	if err != nil {
		t.Fatal(err)
	}
	stack.Attach(nic)
	return &host{eng: eng, disp: disp, ic: ic, nic: nic, stack: stack}
}

// pair returns two connected hosts and their cluster.
func pair(t *testing.T, model sal.NICModel) (*host, *host, *sim.Cluster) {
	t.Helper()
	a := newNetHost(t, "a", Addr(10, 0, 0, 1), model)
	b := newNetHost(t, "b", Addr(10, 0, 0, 2), model)
	if err := sal.Connect(a.nic, b.nic); err != nil {
		t.Fatal(err)
	}
	return a, b, sim.NewCluster(a.eng, b.eng)
}

func TestAddrString(t *testing.T) {
	if got := Addr(10, 1, 2, 3).String(); got != "10.1.2.3" {
		t.Errorf("String = %q", got)
	}
}

func TestPacketWireSize(t *testing.T) {
	p := &Packet{Proto: ProtoUDP, Payload: make([]byte, 100)}
	if got := p.WireSize(); got != EtherHeader+IPHeader+UDPHeader+100 {
		t.Errorf("WireSize = %d", got)
	}
	p.Proto = ProtoTCP
	if got := p.WireSize(); got != EtherHeader+IPHeader+TCPHeader+100 {
		t.Errorf("tcp WireSize = %d", got)
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{Payload: []byte("abc"), Claimed: true}
	q := p.Clone()
	q.Payload[0] = 'x'
	if p.Payload[0] != 'a' {
		t.Error("clone aliases payload")
	}
	if q.Claimed {
		t.Error("clone kept Claimed")
	}
}

func TestICMPPing(t *testing.T) {
	a, _, cl := pair(t, sal.LanceModel)
	var rtt sim.Duration
	if err := a.stack.Ping(Addr(10, 0, 0, 2), 1, 16, func(d sim.Duration) { rtt = d }); err != nil {
		t.Fatal(err)
	}
	cl.Run(0)
	if rtt == 0 {
		t.Fatal("no ping reply")
	}
	if rtt < 100*sim.Microsecond || rtt > 2*sim.Millisecond {
		t.Errorf("ping rtt = %v, implausible", rtt)
	}
}

func TestUDPEcho(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	if err := b.stack.UDP().Echo(7, InKernelDelivery); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := a.stack.UDP().Bind(5000, InKernelDelivery, func(pkt *Packet) {
		got = pkt.Payload
	}); err != nil {
		t.Fatal(err)
	}
	_ = a.stack.UDP().Send(5000, Addr(10, 0, 0, 2), 7, []byte("ping me"))
	cl.Run(0)
	if string(got) != "ping me" {
		t.Errorf("echoed %q", got)
	}
}

func TestUDPPortConflictAndUnbind(t *testing.T) {
	a, _, _ := pair(t, sal.LanceModel)
	if err := a.stack.UDP().Bind(9, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.stack.UDP().Bind(9, nil, nil); err == nil {
		t.Error("duplicate bind accepted")
	}
	a.stack.UDP().Unbind(9)
	if err := a.stack.UDP().Bind(9, nil, nil); err != nil {
		t.Errorf("rebind after unbind: %v", err)
	}
}

func TestUDPGuardedDemux(t *testing.T) {
	// An extension installs on UDP.PktArrived with a port guard — the
	// packet never reaches the port table.
	a, b, cl := pair(t, sal.LanceModel)
	var extGot, portGot int
	_, err := b.disp.Install(EvUDPArrived, func(arg, _ any) any {
		extGot++
		return true // claim
	}, dispatch.InstallOptions{Guard: func(arg any) bool {
		p, ok := arg.(*Packet)
		return ok && p.DstPort == 99
	}})
	if err != nil {
		t.Fatal(err)
	}
	_ = b.stack.UDP().Bind(99, nil, func(*Packet) { portGot++ })
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 99, []byte("x"))
	cl.Run(0)
	if extGot != 1 || portGot != 0 {
		t.Errorf("ext=%d port=%d; extension should intercept", extGot, portGot)
	}
}

func TestIPAuthorizerProtocolGuard(t *testing.T) {
	// The IP module's authorizer constrains installers to their declared
	// protocol (paper's worked example).
	a, b, cl := pair(t, sal.LanceModel)
	var got []uint8
	_, err := b.disp.Install(EvIPArrived, func(arg, _ any) any {
		got = append(got, arg.(*Packet).Proto)
		return false // observe only
	}, dispatch.InstallOptions{Installer: domainIdent("proto:17:udp-watcher")})
	if err != nil {
		t.Fatal(err)
	}
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, []byte("u"))
	_ = a.stack.Ping(Addr(10, 0, 0, 2), 3, 8, nil)
	cl.Run(0)
	for _, p := range got {
		if p != ProtoUDP {
			t.Errorf("watcher saw proto %d", p)
		}
	}
	if len(got) == 0 {
		t.Error("watcher saw nothing")
	}
}

func TestTCPConnectSendClose(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	var serverGot []byte
	serverClosed := false
	err := b.stack.TCP().Listen(80, nil, func(c *Conn) {
		c.OnData = func(c *Conn, data []byte) {
			serverGot = append(serverGot, data...)
		}
		c.OnClose = func(c *Conn) {
			serverClosed = true
			c.Close()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := a.stack.TCP().Connect(Addr(10, 0, 0, 2), 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnConnect = func(c *Conn) {
		_ = c.Send([]byte("hello tcp"))
		c.Close()
	}
	cl.Run(0)
	if string(serverGot) != "hello tcp" {
		t.Errorf("server got %q", serverGot)
	}
	if !serverClosed {
		t.Error("server never saw close")
	}
	if conn.State() != StateClosed {
		t.Errorf("client state %v", conn.State())
	}
	if got := a.stack.TCP().Conns() + b.stack.TCP().Conns(); got != 0 {
		t.Errorf("%d connections leaked", got)
	}
}

func TestTCPLargeTransfer(t *testing.T) {
	// Multi-segment transfer exercises windowing and cumulative ACKs.
	a, b, cl := pair(t, sal.LanceModel)
	const total = 64 * 1024
	var received int
	_ = b.stack.TCP().Listen(80, nil, func(c *Conn) {
		c.OnData = func(c *Conn, data []byte) { received += len(data) }
	})
	conn, _ := a.stack.TCP().Connect(Addr(10, 0, 0, 2), 80, nil)
	conn.OnConnect = func(c *Conn) {
		_ = c.Send(make([]byte, total))
	}
	cl.Run(0)
	if received != total {
		t.Errorf("received %d of %d", received, total)
	}
	if conn.Retransmits() != 0 {
		t.Errorf("lossless link retransmitted %d times", conn.Retransmits())
	}
}

func TestTCPRefusedPortGetsReset(t *testing.T) {
	a, _, cl := pair(t, sal.LanceModel)
	conn, _ := a.stack.TCP().Connect(Addr(10, 0, 0, 2), 81, nil)
	connected := false
	conn.OnConnect = func(*Conn) { connected = true }
	cl.Run(sim.Time(2 * sim.Second))
	if connected {
		t.Error("connected to closed port")
	}
	if conn.State() != StateClosed {
		t.Errorf("state = %v, want CLOSED after RST", conn.State())
	}
}

func TestTCPStateStrings(t *testing.T) {
	if StateEstablished.String() != "ESTABLISHED" || StateClosed.String() != "CLOSED" {
		t.Error("state names wrong")
	}
	if (FlagSYN | FlagACK).String() != "SA" {
		t.Errorf("flags = %q", (FlagSYN | FlagACK).String())
	}
}

func TestForwarderUDP(t *testing.T) {
	// Three hosts: client -> mid (forwarder) -> server, and back.
	client := newNetHost(t, "client", Addr(10, 0, 0, 1), sal.LanceModel)
	mid := newNetHost(t, "mid", Addr(10, 0, 0, 2), sal.LanceModel)
	server := newNetHost(t, "server", Addr(10, 0, 0, 3), sal.LanceModel)
	// mid has two NICs: one to client, one to server.
	mid2 := sal.NewNIC(sal.LanceModel, mid.eng, mid.ic, sal.VecNIC1)
	if err := sal.Connect(client.nic, mid.nic); err != nil {
		t.Fatal(err)
	}
	if err := sal.Connect(mid2, server.nic); err != nil {
		t.Fatal(err)
	}
	mid.stack.Attach(mid2)
	mid.stack.AddRoute(Addr(10, 0, 0, 1), mid.nic)
	mid.stack.AddRoute(Addr(10, 0, 0, 3), mid2)

	fwd, err := NewForwarder(mid.stack, ProtoUDP, 7, Addr(10, 0, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	rev, err := NewReverseForwarder(mid.stack, ProtoUDP, 7, Addr(10, 0, 0, 3), Addr(10, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	_ = server.stack.UDP().Echo(7, InKernelDelivery)
	var got []byte
	_ = client.stack.UDP().Bind(5000, nil, func(p *Packet) { got = p.Payload })
	// Client sends to MID's address; the forwarder redirects to server.
	_ = client.stack.UDP().Send(5000, Addr(10, 0, 0, 2), 7, []byte("via mid"))
	cl := sim.NewCluster(client.eng, mid.eng, server.eng)
	cl.Run(0)
	if string(got) != "via mid" {
		t.Fatalf("reply = %q", got)
	}
	if fwd.Forwarded != 1 || rev.Forwarded != 1 {
		t.Errorf("forward counts = %d,%d", fwd.Forwarded, rev.Forwarded)
	}
}

func TestForwarderPreservesTCPEndToEnd(t *testing.T) {
	// TCP through the in-kernel forwarder: the handshake and teardown run
	// end-to-end between client and server (control packets forwarded
	// too) — the property the user-level splice cannot preserve.
	client := newNetHost(t, "client", Addr(10, 0, 0, 1), sal.LanceModel)
	mid := newNetHost(t, "mid", Addr(10, 0, 0, 2), sal.LanceModel)
	server := newNetHost(t, "server", Addr(10, 0, 0, 3), sal.LanceModel)
	mid2 := sal.NewNIC(sal.LanceModel, mid.eng, mid.ic, sal.VecNIC1)
	_ = sal.Connect(client.nic, mid.nic)
	_ = sal.Connect(mid2, server.nic)
	mid.stack.Attach(mid2)
	mid.stack.AddRoute(Addr(10, 0, 0, 1), mid.nic)
	mid.stack.AddRoute(Addr(10, 0, 0, 3), mid2)
	_, _ = NewForwarder(mid.stack, ProtoTCP, 80, Addr(10, 0, 0, 3))
	_, _ = NewReverseForwarder(mid.stack, ProtoTCP, 80, Addr(10, 0, 0, 3), Addr(10, 0, 0, 1))

	var got []byte
	_ = server.stack.TCP().Listen(80, nil, func(c *Conn) {
		c.OnData = func(c *Conn, d []byte) {
			got = append(got, d...)
			c.Close()
		}
	})
	conn, _ := client.stack.TCP().Connect(Addr(10, 0, 0, 2), 80, nil)
	conn.OnConnect = func(c *Conn) { _ = c.Send([]byte("tcp thru fwd")) }
	cl := sim.NewCluster(client.eng, mid.eng, server.eng)
	cl.Run(sim.Time(5 * sim.Second))
	if string(got) != "tcp thru fwd" {
		t.Errorf("server got %q", got)
	}
	// Mid never terminated the connection: no TCP state there.
	if mid.stack.TCP().Conns() != 0 {
		t.Error("forwarder host holds TCP state; splice semantics leaked in")
	}
}

func TestHTTPServerAndClient(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	content := ContentMap{"/index.html": []byte("<h1>SPIN</h1>")}
	srv, err := NewHTTPServer(b.stack, 80, nil, content)
	if err != nil {
		t.Fatal(err)
	}
	var status string
	var body []byte
	err = HTTPGet(a.stack, Addr(10, 0, 0, 2), 80, "/index.html", nil, func(s string, b []byte) {
		status, body = s, b
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(sim.Time(5 * sim.Second))
	if !strings.Contains(status, "200") {
		t.Errorf("status = %q", status)
	}
	if string(body) != "<h1>SPIN</h1>" {
		t.Errorf("body = %q", body)
	}
	if srv.Requests != 1 {
		t.Errorf("requests = %d", srv.Requests)
	}
}

func TestHTTP404(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	srv, _ := NewHTTPServer(b.stack, 80, nil, ContentMap{})
	var status string
	_ = HTTPGet(a.stack, Addr(10, 0, 0, 2), 80, "/nope", nil, func(s string, _ []byte) { status = s })
	cl.Run(sim.Time(5 * sim.Second))
	if !strings.Contains(status, "404") {
		t.Errorf("status = %q", status)
	}
	if srv.NotFound != 1 {
		t.Errorf("notfound = %d", srv.NotFound)
	}
}

func TestActiveMessages(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	amA, err := NewActiveMessages(a.stack)
	if err != nil {
		t.Fatal(err)
	}
	amB, err := NewActiveMessages(b.stack)
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	amB.Register(5, func(src IPAddr, arg uint64, payload []byte) {
		got = arg
		// Reply with arg+1 to handler 6 on the source.
		_ = amB.Send(src, 6, arg+1, nil)
	})
	var replied uint64
	amA.Register(6, func(_ IPAddr, arg uint64, _ []byte) { replied = arg })
	_ = amA.Send(Addr(10, 0, 0, 2), 5, 41, []byte("am"))
	cl.Run(0)
	if got != 41 || replied != 42 {
		t.Errorf("got=%d replied=%d", got, replied)
	}
}

func TestRPCRoundTrip(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	amA, _ := NewActiveMessages(a.stack)
	amB, _ := NewActiveMessages(b.stack)
	_ = NewRPC(amB).exportDouble()
	rpcA := NewRPC(amA)
	var result []byte
	if err := rpcA.Call(Addr(10, 0, 0, 2), 7, []byte("abc"), func(r []byte) { result = r }); err != nil {
		t.Fatal(err)
	}
	cl.Run(0)
	if string(result) != "abcabc" {
		t.Errorf("result = %q", result)
	}
	if rpcA.Pending() != 0 {
		t.Errorf("pending = %d", rpcA.Pending())
	}
	if err := rpcA.Call(Addr(10, 0, 0, 2), 7, nil, nil); err == nil {
		t.Error("nil continuation accepted")
	}
}

// exportDouble registers proc 7 = payload doubling; helper keeps the test
// terse.
func (r *RPC) exportDouble() *RPC {
	r.Export(7, func(arg []byte) []byte { return append(arg, arg...) })
	return r
}

func TestVideoMulticast(t *testing.T) {
	// One server, three clients on a shared T3 segment (star via
	// separate links in the model: each client its own NIC pair).
	srv := newNetHost(t, "server", Addr(10, 0, 1, 1), sal.T3Model)
	var clients []*host
	var engines []*sim.Engine
	engines = append(engines, srv.eng)
	for i := 0; i < 3; i++ {
		c := newNetHost(t, "client", Addr(10, 0, 1, byte(10+i)), sal.T3Model)
		nic := sal.NewNIC(sal.T3Model, srv.eng, srv.ic, sal.InterruptVector(10+i))
		if err := sal.Connect(nic, c.nic); err != nil {
			t.Fatal(err)
		}
		srv.stack.AddRoute(c.stack.IP, nic)
		clients = append(clients, c)
		engines = append(engines, c.eng)
	}
	vs, err := NewVideoServer(srv.stack, 6000, func(frame int) []byte {
		return make([]byte, 1400)
	})
	if err != nil {
		t.Fatal(err)
	}
	var vcs []*VideoClient
	for _, c := range clients {
		vc, err := NewVideoClient(c.stack, 6000)
		if err != nil {
			t.Fatal(err)
		}
		vcs = append(vcs, vc)
		vs.Subscribe(c.stack.IP)
	}
	for f := 0; f < 5; f++ {
		vs.SendFrame(f)
	}
	sim.NewCluster(engines...).Run(0)
	if vs.FramesSent != 5 {
		t.Errorf("frames sent = %d", vs.FramesSent)
	}
	if vs.PacketsSent != 15 {
		t.Errorf("packets sent = %d, want 15 (5 frames x 3 clients)", vs.PacketsSent)
	}
	for i, vc := range vcs {
		if vc.FramesShown != 5 {
			t.Errorf("client %d showed %d frames", i, vc.FramesShown)
		}
		if vc.LastFrame != 4 {
			t.Errorf("client %d last frame %d", i, vc.LastFrame)
		}
	}
}

func TestGraphRendering(t *testing.T) {
	a, _, _ := pair(t, sal.LanceModel)
	_ = a.stack.UDP().Bind(7, nil, nil)
	_ = a.stack.TCP().Listen(80, nil, nil)
	g := a.stack.Graph()
	for _, want := range []string{"IP.PacketArrived", "UDP ports: 7", "TCP listeners: 80", "proto:1:ping"} {
		if !strings.Contains(g, want) {
			t.Errorf("graph missing %q:\n%s", want, g)
		}
	}
}

func TestStackNoRoute(t *testing.T) {
	eng := sim.NewEngine()
	disp := dispatch.New(eng, &sim.SPINProfile)
	s, err := NewStack("lonely", Addr(1, 1, 1, 1), eng, &sim.SPINProfile, disp)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SendIP(&Packet{Dst: Addr(2, 2, 2, 2)}); err != ErrNoRoute {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestVideoClientWithFramebuffer(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	vc, err := NewVideoClient(b.stack, 6000)
	if err != nil {
		t.Fatal(err)
	}
	fb := sal.NewFramebuffer(b.eng.Clock, 320, 240)
	vc.AttachFramebuffer(fb)
	vs, err := NewVideoServer(a.stack, 6000, func(int) []byte {
		frame := make([]byte, 1000)
		for i := range frame {
			frame[i] = 0x5A
		}
		return frame
	})
	if err != nil {
		t.Fatal(err)
	}
	vs.Subscribe(b.stack.IP)
	vs.SendFrame(0)
	cl.Run(0)
	frames, _ := fb.Stats()
	if frames != 1 {
		t.Fatalf("framebuffer frames = %d", frames)
	}
	px, _ := fb.Pixel(0, 0)
	if px != 0x5A {
		t.Errorf("pixel = %#x, want 0x5A", px)
	}
}

// Loopback: a packet addressed to the stack's own IP re-enters the receive
// path without a NIC (there is none here), so a service colocated with its
// own client — the DNS authority resolving through itself, a balancer
// probing a local backend — works like any remote one.
func TestLoopbackSelfDelivery(t *testing.T) {
	eng := sim.NewEngine()
	disp := dispatch.New(eng, &sim.SPINProfile)
	s, err := NewStack("solo", Addr(10, 0, 0, 7), eng, &sim.SPINProfile, disp)
	if err != nil {
		t.Fatal(err)
	}

	// UDP round trip to self: request in, reply out, both over loopback.
	var got []byte
	if err := s.UDP().Bind(7, InKernelDelivery, func(pkt *Packet) {
		_ = s.UDP().Send(7, pkt.Src, pkt.SrcPort, append([]byte("re:"), pkt.Payload...))
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.UDP().Bind(9000, InKernelDelivery, func(pkt *Packet) {
		got = append([]byte(nil), pkt.Payload...)
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.UDP().Send(9000, s.IP, 7, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	eng.Run(0)
	if string(got) != "re:ping" {
		t.Fatalf("loopback UDP reply = %q", got)
	}
	received, sent := s.Stats()
	if sent != 2 || received != 2 {
		t.Errorf("stats = %d received, %d sent; want 2, 2", received, sent)
	}

	// TCP handshake to self: SYN, SYN-ACK and ACK all loop back.
	if err := s.TCP().Listen(80, InKernelDelivery, func(c *Conn) {}); err != nil {
		t.Fatal(err)
	}
	established := false
	conn, err := s.TCP().Connect(s.IP, 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnConnect = func(*Conn) { established = true }
	eng.Run(0)
	if !established {
		t.Fatal("loopback TCP connect never established")
	}
}
