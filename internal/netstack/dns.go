package netstack

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"spin/internal/sim"
)

// In-kernel DNS: the network half of SPIN's naming story. The domain
// nameserver (internal/domain) resolves interfaces inside one kernel;
// this module resolves machine names across the virtual internet, so
// extensions (and plain Go programs over the socket adapters) can
// resolve-then-dial instead of hard-coding addresses.
//
// The wire format is a real DNS subset — header, QNAME label encoding with
// compression-pointer decoding, A/AAAA questions and answers, NXDOMAIN —
// and like wire.go it is an untrusted-input boundary: ParseDNSMessage
// validates every field, never panics, and is fuzzed (FuzzParseDNSMessage).
// The transport is pluggable (DNSTransport); the default speaks UDP over
// the simulated stack. Lookups are seeded-deterministic: query IDs and
// retry jitter come from a sim.Rand, timeouts are virtual-time events, and
// both caches expire against the virtual clock, so a topology run with DNS
// replays byte-identically.

// DNSPort is the well-known DNS server port.
const DNSPort = 53

// DNS record/query types (the supported subset).
const (
	DNSTypeA    = 1
	DNSTypeAAAA = 28
)

// dnsClassIN is the only class the subset speaks.
const dnsClassIN = 1

// DNS response codes (RCode).
const (
	DNSRCodeOK       = 0
	DNSRCodeFormErr  = 1
	DNSRCodeNXDomain = 3
)

// dnsHeaderLen is the fixed DNS header size.
const dnsHeaderLen = 12

// maxDNSName is the maximum encoded name length (RFC 1035 §2.3.4).
const maxDNSName = 255

// maxDNSPointerJumps bounds compression-pointer chases while decoding one
// name; every jump must also target an earlier offset, so decoding always
// terminates.
const maxDNSPointerJumps = 32

// Errors from the DNS codec and resolver.
var (
	// ErrBadDNSMessage reports a message the codec rejected; the wrapped
	// detail says which field.
	ErrBadDNSMessage = errors.New("netstack: malformed DNS message")
	// ErrNameNotFound is the negative result: NXDOMAIN, or a name with no
	// records of the queried type (NODATA).
	ErrNameNotFound = errors.New("netstack: DNS name not found")
	// ErrDNSTimeout reports that every configured attempt went
	// unanswered.
	ErrDNSTimeout = errors.New("netstack: DNS query timed out")
)

// DNSQuestion is one query: a canonical (lower-case, no trailing dot) name
// and a record type.
type DNSQuestion struct {
	Name string
	Type uint16
}

// DNSRR is one resource record. Data is the raw RDATA (4 bytes for A, 16
// for AAAA); TTL is in seconds, as on the wire.
type DNSRR struct {
	Name string
	Type uint16
	TTL  uint32
	Data []byte
}

// DNSMessage is the decoded subset of a DNS message: header identity and
// flags, questions, and answers. Authority/additional sections are not
// modeled (their counts must be zero).
type DNSMessage struct {
	ID       uint16
	Response bool
	// RD/RA are the recursion-desired/-available flags, carried so
	// replies echo what real resolvers expect.
	RD, RA bool
	RCode  uint8
	// Questions and Answers; the subset bounds both (see ParseDNSMessage).
	Questions []DNSQuestion
	Answers   []DNSRR
}

// canonicalDNSName lower-cases name, strips one trailing dot, and
// validates the label structure (1–63 bytes per label, no '.' inside a
// label, 255 bytes encoded).
func canonicalDNSName(name string) (string, error) {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	if name == "" {
		return "", nil // the root
	}
	if len(name)+2 > maxDNSName {
		return "", fmt.Errorf("%w: name %q too long", ErrBadDNSMessage, name)
	}
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 || len(label) > 63 {
			return "", fmt.Errorf("%w: bad label in %q", ErrBadDNSMessage, name)
		}
	}
	return name, nil
}

// appendDNSName appends name in wire label form (no compression).
func appendDNSName(dst []byte, name string) []byte {
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			dst = append(dst, byte(len(label)))
			dst = append(dst, label...)
		}
	}
	return append(dst, 0)
}

// parseDNSName decodes one name starting at off, following compression
// pointers (bounded, backward-only). It returns the canonical name and the
// offset just past the name in the original stream.
func parseDNSName(b []byte, off int) (string, int, error) {
	var sb strings.Builder
	next := -1 // offset after the first pointer, -1 until one is seen
	jumps, total := 0, 0
	for {
		if off >= len(b) {
			return "", 0, fmt.Errorf("%w: truncated name", ErrBadDNSMessage)
		}
		l := int(b[off])
		switch {
		case l == 0:
			off++
			if next < 0 {
				next = off
			}
			return sb.String(), next, nil
		case l&0xC0 == 0xC0:
			if off+1 >= len(b) {
				return "", 0, fmt.Errorf("%w: truncated pointer", ErrBadDNSMessage)
			}
			target := (l&0x3F)<<8 | int(b[off+1])
			if target >= off {
				return "", 0, fmt.Errorf("%w: forward compression pointer", ErrBadDNSMessage)
			}
			if jumps++; jumps > maxDNSPointerJumps {
				return "", 0, fmt.Errorf("%w: compression pointer chain too long", ErrBadDNSMessage)
			}
			if next < 0 {
				next = off + 2
			}
			off = target
		case l&0xC0 != 0:
			return "", 0, fmt.Errorf("%w: reserved label type %#x", ErrBadDNSMessage, l)
		default:
			if off+1+l > len(b) {
				return "", 0, fmt.Errorf("%w: truncated label", ErrBadDNSMessage)
			}
			if total += l + 1; total > maxDNSName {
				return "", 0, fmt.Errorf("%w: name too long", ErrBadDNSMessage)
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			for _, c := range b[off+1 : off+1+l] {
				if c == '.' {
					return "", 0, fmt.Errorf("%w: dot inside label", ErrBadDNSMessage)
				}
				if 'A' <= c && c <= 'Z' {
					c += 'a' - 'A'
				}
				sb.WriteByte(c)
			}
			off += 1 + l
		}
	}
}

// AppendDNSMessage appends m's wire form to dst. Names are validated and
// written uncompressed, so a parse of the result is canonical.
func AppendDNSMessage(dst []byte, m *DNSMessage) ([]byte, error) {
	var flags uint16
	if m.Response {
		flags |= 0x8000
	}
	if m.RD {
		flags |= 0x0100
	}
	if m.RA {
		flags |= 0x0080
	}
	flags |= uint16(m.RCode & 0x0F)
	dst = append(dst,
		byte(m.ID>>8), byte(m.ID),
		byte(flags>>8), byte(flags),
		byte(len(m.Questions)>>8), byte(len(m.Questions)),
		byte(len(m.Answers)>>8), byte(len(m.Answers)),
		0, 0, 0, 0) // NS and AR counts: not modeled
	for i := range m.Questions {
		q := &m.Questions[i]
		name, err := canonicalDNSName(q.Name)
		if err != nil {
			return nil, err
		}
		dst = appendDNSName(dst, name)
		dst = append(dst, byte(q.Type>>8), byte(q.Type), 0, dnsClassIN)
	}
	for i := range m.Answers {
		rr := &m.Answers[i]
		name, err := canonicalDNSName(rr.Name)
		if err != nil {
			return nil, err
		}
		if len(rr.Data) > 0xFFFF {
			return nil, fmt.Errorf("%w: RDATA too long", ErrBadDNSMessage)
		}
		dst = appendDNSName(dst, name)
		dst = append(dst, byte(rr.Type>>8), byte(rr.Type), 0, dnsClassIN,
			byte(rr.TTL>>24), byte(rr.TTL>>16), byte(rr.TTL>>8), byte(rr.TTL),
			byte(len(rr.Data)>>8), byte(len(rr.Data)))
		dst = append(dst, rr.Data...)
	}
	return dst, nil
}

// EncodeDNSMessage renders m in wire form.
func EncodeDNSMessage(m *DNSMessage) ([]byte, error) {
	return AppendDNSMessage(nil, m)
}

// ParseDNSMessage decodes one DNS message, validating every field: header
// and section lengths, label structure, pointer chains, class, RDATA
// bounds. Section counts are checked against the bytes actually present
// before anything is allocated, so a hostile header cannot demand
// unbounded memory. It never panics on arbitrary input; returned slices
// copy out of b.
func ParseDNSMessage(b []byte) (*DNSMessage, error) {
	if len(b) < dnsHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadDNSMessage, len(b))
	}
	m := &DNSMessage{
		ID: uint16(b[0])<<8 | uint16(b[1]),
	}
	flags := uint16(b[2])<<8 | uint16(b[3])
	m.Response = flags&0x8000 != 0
	if op := (flags >> 11) & 0xF; op != 0 {
		return nil, fmt.Errorf("%w: opcode %d unsupported", ErrBadDNSMessage, op)
	}
	m.RD = flags&0x0100 != 0
	m.RA = flags&0x0080 != 0
	m.RCode = uint8(flags & 0x0F)
	qd := int(b[4])<<8 | int(b[5])
	an := int(b[6])<<8 | int(b[7])
	ns := int(b[8])<<8 | int(b[9])
	ar := int(b[10])<<8 | int(b[11])
	if ns != 0 || ar != 0 {
		return nil, fmt.Errorf("%w: authority/additional sections unsupported", ErrBadDNSMessage)
	}
	// A question costs >= 5 bytes on the wire, a record >= 11: reject
	// counts the message cannot possibly hold.
	if qd*5+an*11 > len(b)-dnsHeaderLen {
		return nil, fmt.Errorf("%w: counts qd=%d an=%d exceed %d bytes", ErrBadDNSMessage, qd, an, len(b))
	}
	off := dnsHeaderLen
	for i := 0; i < qd; i++ {
		name, next, err := parseDNSName(b, off)
		if err != nil {
			return nil, err
		}
		off = next
		if off+4 > len(b) {
			return nil, fmt.Errorf("%w: truncated question", ErrBadDNSMessage)
		}
		qtype := uint16(b[off])<<8 | uint16(b[off+1])
		if class := uint16(b[off+2])<<8 | uint16(b[off+3]); class != dnsClassIN {
			return nil, fmt.Errorf("%w: class %d unsupported", ErrBadDNSMessage, class)
		}
		off += 4
		m.Questions = append(m.Questions, DNSQuestion{Name: name, Type: qtype})
	}
	for i := 0; i < an; i++ {
		name, next, err := parseDNSName(b, off)
		if err != nil {
			return nil, err
		}
		off = next
		if off+10 > len(b) {
			return nil, fmt.Errorf("%w: truncated record", ErrBadDNSMessage)
		}
		rr := DNSRR{Name: name}
		rr.Type = uint16(b[off])<<8 | uint16(b[off+1])
		if class := uint16(b[off+2])<<8 | uint16(b[off+3]); class != dnsClassIN {
			return nil, fmt.Errorf("%w: class %d unsupported", ErrBadDNSMessage, class)
		}
		rr.TTL = uint32(b[off+4])<<24 | uint32(b[off+5])<<16 | uint32(b[off+6])<<8 | uint32(b[off+7])
		rdlen := int(b[off+8])<<8 | int(b[off+9])
		off += 10
		if off+rdlen > len(b) {
			return nil, fmt.Errorf("%w: RDATA %d bytes past end", ErrBadDNSMessage, rdlen)
		}
		if rdlen > 0 {
			rr.Data = append([]byte(nil), b[off:off+rdlen]...)
		}
		off += rdlen
		m.Answers = append(m.Answers, rr)
	}
	return m, nil
}

// Zone is one machine's authoritative name data: canonical names mapped to
// A records with a virtual-time TTL. Registration flows through the domain
// nameserver (Machine.ServeDNS exports the zone's interface and the server
// imports it back), keeping SPIN's naming discipline: the network
// nameserver is an extension wired up by name, not a special case.
type Zone struct {
	mu   sync.Mutex
	recs map[string]zoneEntry
}

type zoneEntry struct {
	addrs []IPAddr
	ttl   sim.Duration
}

// NewZone returns an empty zone.
func NewZone() *Zone {
	return &Zone{recs: make(map[string]zoneEntry)}
}

// AddA maps name to addrs with the given TTL (how long resolvers may cache
// the answer, in virtual time; <= 0 means 60 virtual seconds). Re-adding a
// name replaces its records.
func (z *Zone) AddA(name string, ttl sim.Duration, addrs ...IPAddr) error {
	cn, err := canonicalDNSName(name)
	if err != nil {
		return err
	}
	if cn == "" {
		return fmt.Errorf("%w: empty zone name", ErrBadDNSMessage)
	}
	if ttl <= 0 {
		ttl = 60 * sim.Second
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	z.recs[cn] = zoneEntry{addrs: append([]IPAddr(nil), addrs...), ttl: ttl}
	return nil
}

// Remove withdraws name from the zone, reporting whether it was present.
func (z *Zone) Remove(name string) bool {
	cn, err := canonicalDNSName(name)
	if err != nil {
		return false
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	_, ok := z.recs[cn]
	delete(z.recs, cn)
	return ok
}

// LookupA reports the A records for a canonical name; ok is false when the
// name does not exist at all (NXDOMAIN, as opposed to NODATA).
func (z *Zone) LookupA(name string) (addrs []IPAddr, ttl sim.Duration, ok bool) {
	cn, err := canonicalDNSName(name)
	if err != nil {
		return nil, 0, false
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	e, ok := z.recs[cn]
	if !ok {
		return nil, 0, false
	}
	return append([]IPAddr(nil), e.addrs...), e.ttl, true
}

// Names lists the zone's names, sorted.
func (z *Zone) Names() []string {
	z.mu.Lock()
	defer z.mu.Unlock()
	out := make([]string, 0, len(z.recs))
	for n := range z.recs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ZoneLookup is the authority interface a DNS server answers from — the
// symbol a zone exports through the domain nameserver.
type ZoneLookup func(name string) (addrs []IPAddr, ttl sim.Duration, ok bool)

// DNSServerStats counts one server's traffic.
type DNSServerStats struct {
	Queries   int64 // well-formed queries received
	Answered  int64 // replies carrying A records
	NXDomain  int64 // names not in the zone
	NoData    int64 // names present but without records of the asked type
	Malformed int64 // datagrams the codec (or shape check) rejected
}

// DNSServer answers A queries on UDP port 53 from a ZoneLookup authority.
type DNSServer struct {
	stack  *Stack
	lookup ZoneLookup

	mu    sync.Mutex
	stats DNSServerStats
}

// NewDNSServer binds the server to UDP port 53 with the given delivery
// cost model. lookup is the authority — typically a Zone's LookupA,
// imported through the machine's domain nameserver.
func NewDNSServer(stack *Stack, cost DeliveryCost, lookup ZoneLookup) (*DNSServer, error) {
	return NewDNSServerOwned("", stack, cost, lookup)
}

// NewDNSServerOwned is NewDNSServer with a recorded owning principal, so
// the port is released when the owner's domain is destroyed.
func NewDNSServerOwned(owner string, stack *Stack, cost DeliveryCost, lookup ZoneLookup) (*DNSServer, error) {
	if lookup == nil {
		return nil, errors.New("netstack: DNS server needs a zone lookup")
	}
	s := &DNSServer{stack: stack, lookup: lookup}
	if err := stack.UDP().BindOwned(owner, DNSPort, cost, s.serve); err != nil {
		return nil, err
	}
	return s, nil
}

// Close releases the server's port.
func (s *DNSServer) Close() { s.stack.UDP().Unbind(DNSPort) }

// Stats snapshots the server counters.
func (s *DNSServer) Stats() DNSServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// serve answers one query datagram. Malformed or non-query traffic is
// dropped (the resolver's timeout covers it); a well-formed single-question
// query always gets a reply: answers, NODATA, or NXDOMAIN.
func (s *DNSServer) serve(pkt *Packet) {
	q, err := ParseDNSMessage(pkt.Payload)
	if err != nil || q.Response || len(q.Questions) != 1 {
		s.mu.Lock()
		s.stats.Malformed++
		s.mu.Unlock()
		return
	}
	question := q.Questions[0]
	reply := &DNSMessage{
		ID: q.ID, Response: true, RD: q.RD, RA: true,
		Questions: []DNSQuestion{question},
	}
	addrs, ttl, exists := s.lookup(question.Name)
	s.mu.Lock()
	s.stats.Queries++
	switch {
	case !exists:
		reply.RCode = DNSRCodeNXDomain
		s.stats.NXDomain++
	case question.Type != DNSTypeA || len(addrs) == 0:
		// The name exists but has nothing of the asked type: NODATA — an
		// empty NOERROR answer (we only store A records).
		s.stats.NoData++
	default:
		ttlSec := uint32((ttl + sim.Second - 1) / sim.Second)
		if ttlSec == 0 {
			ttlSec = 1
		}
		for _, a := range addrs {
			reply.Answers = append(reply.Answers, DNSRR{
				Name: question.Name, Type: DNSTypeA, TTL: ttlSec,
				Data: []byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)},
			})
		}
		s.stats.Answered++
	}
	s.mu.Unlock()
	wire, err := EncodeDNSMessage(reply)
	if err != nil {
		return
	}
	_ = s.stack.UDP().Send(DNSPort, pkt.Src, pkt.SrcPort, wire)
}

// DNSTransport carries one encoded query to a server and delivers the raw
// reply — the pluggable layer under the Resolver. done must be called at
// most once, from the simulation goroutine; the transport never runs its
// own timer (timeout policy lives in the Resolver, which calls cancel).
type DNSTransport interface {
	Query(server IPAddr, msg []byte, done func(reply []byte, err error)) (cancel func(), err error)
}

// dnsOverUDP is the default transport: each query binds a fresh ephemeral
// UDP port for its reply and releases it on the first reply or on cancel.
type dnsOverUDP struct {
	stack *Stack
	cost  DeliveryCost
}

// NewDNSOverUDP returns the UDP transport for stack. cost models reply
// delivery (nil means InKernelDelivery).
func NewDNSOverUDP(stack *Stack, cost DeliveryCost) DNSTransport {
	return &dnsOverUDP{stack: stack, cost: cost}
}

func (t *dnsOverUDP) Query(server IPAddr, msg []byte, done func([]byte, error)) (func(), error) {
	port, err := t.stack.UDP().EphemeralPort()
	if err != nil {
		return nil, err
	}
	fired := false
	err = t.stack.UDP().Bind(port, t.cost, func(pkt *Packet) {
		if fired {
			return
		}
		fired = true
		t.stack.UDP().Unbind(port)
		done(append([]byte(nil), pkt.Payload...), nil)
	})
	if err != nil {
		return nil, err
	}
	if err := t.stack.UDP().Send(port, server, DNSPort, msg); err != nil {
		t.stack.UDP().Unbind(port)
		return nil, err
	}
	cancel := func() {
		if !fired {
			fired = true
			t.stack.UDP().Unbind(port)
		}
	}
	return cancel, nil
}

// ResolverConfig tunes a Resolver. The zero value resolves against no
// servers (every lookup fails), so Servers is the one required field.
type ResolverConfig struct {
	// Servers are tried in order, one per attempt, wrapping around.
	Servers []IPAddr
	// Transport overrides the default UDP transport.
	Transport DNSTransport
	// Timeout is the first attempt's wait (default 500ms virtual); later
	// attempts double it.
	Timeout sim.Duration
	// Attempts is the total number of queries sent before giving up
	// (default 3).
	Attempts int
	// PositiveTTLCap clamps how long answers may be cached (default 1h
	// virtual) regardless of the record TTL.
	PositiveTTLCap sim.Duration
	// NegativeTTL is how long NXDOMAIN/NODATA results are cached
	// (default 5s virtual).
	NegativeTTL sim.Duration
	// Seed drives query IDs and retry jitter; fixed seed, fixed byte
	// stream.
	Seed uint64
	// Cost models delivery of replies on the default transport.
	Cost DeliveryCost
}

// ResolverStats counts one resolver's work.
type ResolverStats struct {
	Lookups      int64 // LookupA calls
	CacheHits    int64 // answered from the positive cache
	NegativeHits int64 // answered from the negative cache
	Sent         int64 // queries actually transmitted
	Retries      int64 // attempts past the first
	Timeouts     int64 // lookups that exhausted every attempt
	Failures     int64 // negative answers (NXDOMAIN/NODATA)
}

// Resolver is a caching stub resolver over a DNSTransport. All methods
// must be called from the simulation goroutine (they arm engine timers);
// the socket adapters' Dialer wraps LookupA for blocking callers.
type Resolver struct {
	stack *Stack
	cfg   ResolverConfig
	txp   DNSTransport
	rand  *sim.Rand

	pos   map[string]dnsPosEntry
	neg   map[string]dnsNegEntry
	stats ResolverStats
}

type dnsPosEntry struct {
	addrs   []IPAddr
	expires sim.Time
}

type dnsNegEntry struct {
	err     error
	expires sim.Time
}

// NewResolver builds a resolver for stack from cfg, applying defaults.
func NewResolver(stack *Stack, cfg ResolverConfig) *Resolver {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * sim.Millisecond
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 3
	}
	if cfg.PositiveTTLCap <= 0 {
		cfg.PositiveTTLCap = sim.Duration(sim.Second) * 3600
	}
	if cfg.NegativeTTL <= 0 {
		cfg.NegativeTTL = 5 * sim.Second
	}
	txp := cfg.Transport
	if txp == nil {
		txp = NewDNSOverUDP(stack, cfg.Cost)
	}
	return &Resolver{
		stack: stack, cfg: cfg, txp: txp,
		rand: sim.NewRand(cfg.Seed ^ 0xd15ba11ad),
		pos:  make(map[string]dnsPosEntry),
		neg:  make(map[string]dnsNegEntry),
	}
}

// Stats snapshots the resolver counters.
func (r *Resolver) Stats() ResolverStats { return r.stats }

// FlushCache drops both caches (benchmarks measure uncached resolves).
func (r *Resolver) FlushCache() {
	r.pos = make(map[string]dnsPosEntry)
	r.neg = make(map[string]dnsNegEntry)
}

// FlushAll is FlushCache under the name the withdrawal plumbing uses.
func (r *Resolver) FlushAll() { r.FlushCache() }

// Flush drops any cached answer (positive or negative) for one name, so
// the next lookup goes back to the authority — the hook a zone withdrawal
// uses to bound staleness at the negative TTL instead of the record's
// remaining positive TTL. It reports whether anything was cached.
// Simulation-goroutine context, like every Resolver method.
func (r *Resolver) Flush(name string) bool {
	cn, err := canonicalDNSName(name)
	if err != nil || cn == "" {
		return false
	}
	_, hadPos := r.pos[cn]
	_, hadNeg := r.neg[cn]
	delete(r.pos, cn)
	delete(r.neg, cn)
	return hadPos || hadNeg
}

// LookupA resolves name to its A records. cb runs exactly once —
// synchronously for cache hits and malformed names, otherwise when a reply
// lands or the last attempt times out, always on the simulation goroutine.
func (r *Resolver) LookupA(name string, cb func(addrs []IPAddr, err error)) {
	r.stats.Lookups++
	cn, err := canonicalDNSName(name)
	if err != nil || cn == "" {
		if err == nil {
			err = fmt.Errorf("%w: empty name", ErrBadDNSMessage)
		}
		cb(nil, err)
		return
	}
	now := r.stack.clock.Now()
	if e, ok := r.pos[cn]; ok {
		if now < e.expires {
			r.stats.CacheHits++
			cb(append([]IPAddr(nil), e.addrs...), nil)
			return
		}
		delete(r.pos, cn)
	}
	if e, ok := r.neg[cn]; ok {
		if now < e.expires {
			r.stats.NegativeHits++
			cb(nil, e.err)
			return
		}
		delete(r.neg, cn)
	}
	if len(r.cfg.Servers) == 0 {
		cb(nil, fmt.Errorf("%w: no DNS servers configured", ErrDNSTimeout))
		return
	}
	lk := &dnsLookup{r: r, name: cn, cb: cb}
	lk.attempt()
}

// dnsLookup is one in-flight resolution: its attempt counter walks the
// server list with doubling timeouts until a reply lands or the budget is
// spent.
type dnsLookup struct {
	r        *Resolver
	name     string
	cb       func([]IPAddr, error)
	tries    int
	done     bool
	id       uint16
	cancelTx func()
	timeout  *sim.Event
}

func (lk *dnsLookup) attempt() {
	r := lk.r
	server := r.cfg.Servers[lk.tries%len(r.cfg.Servers)]
	lk.id = uint16(r.rand.Uint64())
	msg := &DNSMessage{
		ID: lk.id, RD: true,
		Questions: []DNSQuestion{{Name: lk.name, Type: DNSTypeA}},
	}
	wire, err := EncodeDNSMessage(msg)
	if err != nil {
		lk.finish(nil, err)
		return
	}
	if lk.tries > 0 {
		r.stats.Retries++
	}
	lk.tries++
	r.stats.Sent++
	cancel, err := r.txp.Query(server, wire, lk.onReply)
	if lk.done {
		// The transport delivered the reply synchronously; there is
		// nothing to time out.
		return
	}
	if err != nil {
		// Transport refusal (ports exhausted, no route): burn the attempt
		// after a timeout rather than spinning through the budget
		// instantly.
		cancel = func() {}
	}
	lk.cancelTx = cancel
	// Exponential backoff per attempt plus seeded jitter, so a fleet of
	// resolvers retrying through the same outage does not self-
	// synchronize — and so the retry times are a pure function of the
	// seed.
	base := r.cfg.Timeout << (lk.tries - 1)
	jitter := sim.Duration(r.rand.Uint64() % uint64(base/8+1))
	lk.timeout = r.stack.engine.After(base+jitter, lk.onTimeout)
}

func (lk *dnsLookup) onReply(reply []byte, err error) {
	if lk.done {
		return
	}
	if err != nil {
		lk.retryOrFail()
		return
	}
	m, perr := ParseDNSMessage(reply)
	if perr != nil || !m.Response || m.ID != lk.id ||
		len(m.Questions) != 1 || m.Questions[0].Name != lk.name || m.Questions[0].Type != DNSTypeA {
		// A reply that is not ours (stale, spoofed-looking, or mangled)
		// is ignored; the timeout still stands guard. The transport has
		// already released its port, so the pending attempt can only end
		// by timeout.
		return
	}
	r := lk.r
	now := r.stack.clock.Now()
	if m.RCode == DNSRCodeNXDomain {
		err := fmt.Errorf("%w: %s: NXDOMAIN", ErrNameNotFound, lk.name)
		r.neg[lk.name] = dnsNegEntry{err: err, expires: now.Add(r.cfg.NegativeTTL)}
		r.stats.Failures++
		lk.finish(nil, err)
		return
	}
	if m.RCode != DNSRCodeOK {
		lk.retryOrFail()
		return
	}
	var addrs []IPAddr
	minTTL := r.cfg.PositiveTTLCap
	for _, rr := range m.Answers {
		if rr.Type != DNSTypeA || len(rr.Data) != 4 || rr.Name != lk.name {
			continue
		}
		addrs = append(addrs, IPAddr(uint32(rr.Data[0])<<24|uint32(rr.Data[1])<<16|uint32(rr.Data[2])<<8|uint32(rr.Data[3])))
		if ttl := sim.Duration(rr.TTL) * sim.Second; ttl < minTTL {
			minTTL = ttl
		}
	}
	if len(addrs) == 0 {
		// NOERROR with no usable answers: NODATA.
		err := fmt.Errorf("%w: %s: no A records", ErrNameNotFound, lk.name)
		r.neg[lk.name] = dnsNegEntry{err: err, expires: now.Add(r.cfg.NegativeTTL)}
		r.stats.Failures++
		lk.finish(nil, err)
		return
	}
	if minTTL < sim.Second {
		minTTL = sim.Second
	}
	r.pos[lk.name] = dnsPosEntry{addrs: addrs, expires: now.Add(minTTL)}
	lk.finish(append([]IPAddr(nil), addrs...), nil)
}

func (lk *dnsLookup) onTimeout() {
	lk.timeout = nil
	if lk.done {
		return
	}
	if lk.cancelTx != nil {
		lk.cancelTx()
	}
	lk.retryOrFail()
}

func (lk *dnsLookup) retryOrFail() {
	if lk.tries < lk.r.cfg.Attempts {
		lk.attempt()
		return
	}
	lk.r.stats.Timeouts++
	lk.finish(nil, fmt.Errorf("%w: %s after %d attempts", ErrDNSTimeout, lk.name, lk.tries))
}

func (lk *dnsLookup) finish(addrs []IPAddr, err error) {
	if lk.done {
		return
	}
	lk.done = true
	if lk.timeout != nil {
		lk.timeout.Cancel()
		lk.timeout = nil
	}
	if lk.cancelTx != nil {
		lk.cancelTx()
		lk.cancelTx = nil
	}
	lk.cb(addrs, err)
}
