package netstack

import (
	"spin/internal/dispatch"
	"spin/internal/domain"
)

// Forwarder is the protocol-forwarding extension (paper §5.3, Table 6): it
// installs a node into the protocol stack which redirects all data *and
// control* packets destined for a particular port to a secondary host.
// Because it intercepts at the IP layer — below the transport — TCP
// end-to-end semantics (connection establishment, termination, window and
// congestion behaviour) pass through intact, which the paper contrasts with
// a user-level socket splice.
type Forwarder struct {
	stack *Stack
	refs  []dispatch.HandlerRef
	// Forwarded counts redirected packets.
	Forwarded int64
}

// NewForwarder redirects packets with destination port `port` and protocol
// `proto` (ProtoTCP or ProtoUDP) arriving at this stack to `target`.
// Packets from the target back to the original senders flow through the
// same node in reverse (source-port match).
func NewForwarder(stack *Stack, proto uint8, port uint16, target IPAddr) (*Forwarder, error) {
	f := &Forwarder{stack: stack}
	ident := domain.Identity{Name: "forward-ext"}

	// Inbound: client -> this host -> target.
	ref1, err := stack.disp.Install(EvIPArrived, func(arg, _ any) any {
		pkt := arg.(*Packet)
		if pkt.TTL <= 1 {
			return false
		}
		fwd := pkt.Clone()
		fwd.Dst = target
		fwd.TTL = pkt.TTL - 1
		f.Forwarded++
		_ = stack.SendIP(fwd)
		pkt.Claimed = true
		return true
	}, dispatch.InstallOptions{
		Installer: ident,
		Guard: func(arg any) bool {
			pkt, ok := arg.(*Packet)
			return ok && pkt.Proto == proto && pkt.DstPort == port && pkt.Dst == stack.IP
		},
	})
	if err != nil {
		return nil, err
	}
	f.refs = append(f.refs, ref1)
	return f, nil
}

// NewReverseForwarder complements NewForwarder on the return path: packets
// arriving at this stack *from* `from` with source port `port` are
// redirected to `target` (the original client side), with the source
// rewritten to this host so the client's connection state matches the
// address it originally dialed.
func NewReverseForwarder(stack *Stack, proto uint8, port uint16, from, target IPAddr) (*Forwarder, error) {
	f := &Forwarder{stack: stack}
	ident := domain.Identity{Name: "forward-ext-rev"}
	ref, err := stack.disp.Install(EvIPArrived, func(arg, _ any) any {
		pkt := arg.(*Packet)
		if pkt.TTL <= 1 {
			return false
		}
		fwd := pkt.Clone()
		fwd.Src = stack.IP
		fwd.Dst = target
		fwd.TTL = pkt.TTL - 1
		f.Forwarded++
		_ = stack.SendIP(fwd)
		pkt.Claimed = true
		return true
	}, dispatch.InstallOptions{
		Installer: ident,
		Guard: func(arg any) bool {
			pkt, ok := arg.(*Packet)
			return ok && pkt.Proto == proto && pkt.SrcPort == port && pkt.Src == from
		},
	})
	if err != nil {
		return nil, err
	}
	f.refs = append(f.refs, ref)
	return f, nil
}

// Remove uninstalls the forwarder.
func (f *Forwarder) Remove() {
	for _, r := range f.refs {
		_ = f.stack.disp.Remove(r)
	}
}
