package netstack

import (
	"bytes"
	"errors"
	"testing"

	"spin/internal/sal"
	"spin/internal/sim"
)

func TestDNSMessageRoundTrip(t *testing.T) {
	msgs := []*DNSMessage{
		{ID: 1, RD: true, Questions: []DNSQuestion{{Name: "web.spin.test", Type: DNSTypeA}}},
		{ID: 0xBEEF, Response: true, RD: true, RA: true,
			Questions: []DNSQuestion{{Name: "web.spin.test", Type: DNSTypeA}},
			Answers: []DNSRR{
				{Name: "web.spin.test", Type: DNSTypeA, TTL: 60, Data: []byte{10, 0, 0, 2}},
				{Name: "web.spin.test", Type: DNSTypeA, TTL: 60, Data: []byte{10, 0, 0, 3}},
			}},
		{ID: 7, Response: true, RCode: DNSRCodeNXDomain,
			Questions: []DNSQuestion{{Name: "nope.spin.test", Type: DNSTypeA}}},
		{ID: 9, Questions: []DNSQuestion{{Name: "v6.spin.test", Type: DNSTypeAAAA}}},
		{ID: 3}, // header-only
	}
	for _, m := range msgs {
		wire, err := EncodeDNSMessage(m)
		if err != nil {
			t.Fatalf("encode %+v: %v", m, err)
		}
		got, err := ParseDNSMessage(wire)
		if err != nil {
			t.Fatalf("parse %+v: %v", m, err)
		}
		round, err := EncodeDNSMessage(got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(wire, round) {
			t.Errorf("round trip not canonical:\n  %x\n  %x", wire, round)
		}
	}
}

// Names are canonicalized while parsing: case folds, and compression
// pointers decode to the same flat name the encoder writes.
func TestParseDNSNameCompression(t *testing.T) {
	// Header + question "WEB.Spin.Test" + answer whose name is a pointer
	// to offset 12 (the question name).
	msg := []byte{
		0x12, 0x34, 0x84, 0x80, 0, 1, 0, 1, 0, 0, 0, 0,
		3, 'W', 'E', 'B', 4, 'S', 'p', 'i', 'n', 4, 'T', 'e', 's', 't', 0,
		0, DNSTypeA, 0, 1,
		0xC0, 12, // pointer to the question name
		0, DNSTypeA, 0, 1, 0, 0, 0, 60, 0, 4, 10, 0, 0, 2,
	}
	m, err := ParseDNSMessage(msg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Questions[0].Name != "web.spin.test" {
		t.Errorf("question name = %q", m.Questions[0].Name)
	}
	if m.Answers[0].Name != "web.spin.test" {
		t.Errorf("answer name = %q", m.Answers[0].Name)
	}
	// Re-encoding writes the name uncompressed; the reply still parses to
	// the same message.
	wire, err := EncodeDNSMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ParseDNSMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Answers[0].Name != "web.spin.test" || !bytes.Equal(m2.Answers[0].Data, []byte{10, 0, 0, 2}) {
		t.Errorf("re-parse lost the answer: %+v", m2.Answers[0])
	}
}

func TestParseDNSMessageRejects(t *testing.T) {
	header := func(qd, an, ns, ar byte) []byte {
		return []byte{0, 1, 0, 0, 0, qd, 0, an, 0, ns, 0, ar}
	}
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"short header", []byte{1, 2, 3}},
		{"count bomb", header(0xFF, 0xFF, 0, 0)},
		{"authority section", header(0, 0, 1, 0)},
		{"additional section", header(0, 0, 0, 1)},
		{"truncated question", append(header(1, 0, 0, 0), 3, 'a')},
		{"bad class", append(header(1, 0, 0, 0), 0, 0, DNSTypeA, 0, 99)},
		{"forward pointer", append(header(1, 0, 0, 0), 0xC0, 14, 0, 0)},
		{"self pointer", append(header(1, 0, 0, 0), 0xC0, 12, 0, 0)},
		{"reserved label type", append(header(1, 0, 0, 0), 0x80, 0, 0)},
		{"opcode", []byte{0, 1, 0x28, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"rdata past end", append(header(0, 1, 0, 0),
			0, 0, DNSTypeA, 0, 1, 0, 0, 0, 60, 0, 200)},
	}
	for _, tc := range cases {
		if _, err := ParseDNSMessage(tc.in); !errors.Is(err, ErrBadDNSMessage) {
			t.Errorf("%s: err = %v, want ErrBadDNSMessage", tc.name, err)
		}
	}
}

func TestZone(t *testing.T) {
	z := NewZone()
	if err := z.AddA("Web.Spin.Test.", 30*sim.Second, Addr(10, 0, 0, 2)); err != nil {
		t.Fatal(err)
	}
	addrs, ttl, ok := z.LookupA("web.spin.test")
	if !ok || len(addrs) != 1 || addrs[0] != Addr(10, 0, 0, 2) || ttl != 30*sim.Second {
		t.Fatalf("LookupA = %v %v %v", addrs, ttl, ok)
	}
	if _, _, ok := z.LookupA("WEB.SPIN.TEST"); !ok {
		t.Error("zone lookups should be case-insensitive")
	}
	if _, _, ok := z.LookupA("other.spin.test"); ok {
		t.Error("absent name resolved")
	}
	if err := z.AddA("", 0, Addr(1, 2, 3, 4)); err == nil {
		t.Error("empty name accepted")
	}
	if got := z.Names(); len(got) != 1 || got[0] != "web.spin.test" {
		t.Errorf("Names = %v", got)
	}
	z.Remove("web.spin.test")
	if _, _, ok := z.LookupA("web.spin.test"); ok {
		t.Error("removed name still resolves")
	}
}

// dnsServerPair builds the standard fixture: host b serves a zone with
// web.spin.test (two A records) and empty.spin.test (a name with no
// records — the NODATA case).
func dnsServerPair(t *testing.T) (a, b *host, cl *sim.Cluster, srv *DNSServer) {
	t.Helper()
	a, b, cl = pair(t, sal.LanceModel)
	zone := NewZone()
	if err := zone.AddA("web.spin.test", 60*sim.Second, Addr(10, 0, 0, 2), Addr(10, 0, 0, 9)); err != nil {
		t.Fatal(err)
	}
	if err := zone.AddA("empty.spin.test", 60*sim.Second); err != nil {
		t.Fatal(err)
	}
	srv, err := NewDNSServer(b.stack, nil, zone.LookupA)
	if err != nil {
		t.Fatal(err)
	}
	return a, b, cl, srv
}

// rawQuery sends one encoded message from a to b:53 and returns the raw
// reply (nil if none arrived).
func rawQuery(t *testing.T, a *host, cl *sim.Cluster, wire []byte) []byte {
	t.Helper()
	port, err := a.stack.UDP().EphemeralPort()
	if err != nil {
		t.Fatal(err)
	}
	var reply []byte
	if err := a.stack.UDP().Bind(port, nil, func(pkt *Packet) {
		reply = append([]byte(nil), pkt.Payload...)
	}); err != nil {
		t.Fatal(err)
	}
	defer a.stack.UDP().Unbind(port)
	if err := a.stack.UDP().Send(port, Addr(10, 0, 0, 2), DNSPort, wire); err != nil {
		t.Fatal(err)
	}
	cl.Run(0)
	return reply
}

func TestDNSServerAnswers(t *testing.T) {
	a, _, cl, srv := dnsServerPair(t)
	ask := func(name string, qtype uint16) *DNSMessage {
		t.Helper()
		wire, err := EncodeDNSMessage(&DNSMessage{ID: 42, RD: true,
			Questions: []DNSQuestion{{Name: name, Type: qtype}}})
		if err != nil {
			t.Fatal(err)
		}
		raw := rawQuery(t, a, cl, wire)
		if raw == nil {
			t.Fatalf("no reply for %s", name)
		}
		m, err := ParseDNSMessage(raw)
		if err != nil {
			t.Fatal(err)
		}
		if m.ID != 42 || !m.Response || !m.RA {
			t.Fatalf("bad reply header: %+v", m)
		}
		return m
	}

	if m := ask("web.spin.test", DNSTypeA); m.RCode != DNSRCodeOK || len(m.Answers) != 2 ||
		!bytes.Equal(m.Answers[0].Data, []byte{10, 0, 0, 2}) {
		t.Errorf("A answer = %+v", m)
	}
	if m := ask("nope.spin.test", DNSTypeA); m.RCode != DNSRCodeNXDomain || len(m.Answers) != 0 {
		t.Errorf("NXDOMAIN reply = %+v", m)
	}
	// NODATA both ways: a name with no records, and an AAAA question
	// against an A-only name.
	if m := ask("empty.spin.test", DNSTypeA); m.RCode != DNSRCodeOK || len(m.Answers) != 0 {
		t.Errorf("NODATA (no records) reply = %+v", m)
	}
	if m := ask("web.spin.test", DNSTypeAAAA); m.RCode != DNSRCodeOK || len(m.Answers) != 0 {
		t.Errorf("NODATA (AAAA) reply = %+v", m)
	}

	// Garbage is dropped, not answered.
	if raw := rawQuery(t, a, cl, []byte{1, 2, 3}); raw != nil {
		t.Errorf("malformed datagram got a reply: %x", raw)
	}
	st := srv.Stats()
	if st.Queries != 4 || st.Answered != 1 || st.NXDomain != 1 || st.NoData != 2 || st.Malformed != 1 {
		t.Errorf("server stats = %+v", st)
	}
}

func TestResolverLookupAndCache(t *testing.T) {
	a, _, cl, _ := dnsServerPair(t)
	r := NewResolver(a.stack, ResolverConfig{Servers: []IPAddr{Addr(10, 0, 0, 2)}, Seed: 1})

	var addrs []IPAddr
	var rerr error
	r.LookupA("WEB.spin.test", func(g []IPAddr, e error) { addrs, rerr = g, e })
	cl.Run(0)
	if rerr != nil || len(addrs) != 2 || addrs[0] != Addr(10, 0, 0, 2) || addrs[1] != Addr(10, 0, 0, 9) {
		t.Fatalf("LookupA = %v, %v", addrs, rerr)
	}

	// Second lookup answers synchronously from the cache — no new query.
	done := false
	r.LookupA("web.spin.test", func(g []IPAddr, e error) {
		done = true
		if e != nil || len(g) != 2 {
			t.Errorf("cached lookup = %v, %v", g, e)
		}
	})
	if !done {
		t.Fatal("cache hit was not synchronous")
	}
	st := r.Stats()
	if st.Lookups != 2 || st.Sent != 1 || st.CacheHits != 1 {
		t.Errorf("stats = %+v", st)
	}

	// After the TTL passes the entry expires and the resolver queries
	// again.
	a.eng.After(61*sim.Second, func() {
		r.LookupA("web.spin.test", func([]IPAddr, error) {})
	})
	cl.Run(0)
	if st := r.Stats(); st.Sent != 2 {
		t.Errorf("post-TTL Sent = %d, want 2", st.Sent)
	}
}

// Negative answers (NXDOMAIN and NODATA) are cached for NegativeTTL:
// repeat lookups answer synchronously without traffic, and the entry
// expires on the virtual clock.
func TestResolverNegativeCache(t *testing.T) {
	for _, tc := range []struct {
		name  string
		qname string
	}{
		{"nxdomain", "nope.spin.test"},
		{"nodata", "empty.spin.test"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, _, cl, _ := dnsServerPair(t)
			r := NewResolver(a.stack, ResolverConfig{
				Servers:     []IPAddr{Addr(10, 0, 0, 2)},
				NegativeTTL: 5 * sim.Second,
				Seed:        1,
			})
			var first error
			r.LookupA(tc.qname, func(_ []IPAddr, e error) { first = e })
			cl.Run(0)
			if !errors.Is(first, ErrNameNotFound) {
				t.Fatalf("first lookup err = %v, want ErrNameNotFound", first)
			}
			var second error
			done := false
			r.LookupA(tc.qname, func(_ []IPAddr, e error) { second, done = e, true })
			if !done {
				t.Fatal("negative cache hit was not synchronous")
			}
			if !errors.Is(second, ErrNameNotFound) {
				t.Fatalf("second lookup err = %v", second)
			}
			if st := r.Stats(); st.Sent != 1 || st.NegativeHits != 1 || st.Failures != 1 {
				t.Errorf("stats = %+v", st)
			}
			// Past the negative TTL the resolver asks again.
			a.eng.After(6*sim.Second, func() {
				r.LookupA(tc.qname, func([]IPAddr, error) {})
			})
			cl.Run(0)
			if st := r.Stats(); st.Sent != 2 {
				t.Errorf("post-TTL Sent = %d, want 2", st.Sent)
			}
		})
	}
}

// fakeTransport drops the first failures queries and answers the rest
// (synchronously) from answers; it records every query it sees.
type fakeTransport struct {
	failures int
	answers  []IPAddr
	queries  [][]byte
}

func (f *fakeTransport) Query(server IPAddr, msg []byte, done func([]byte, error)) (func(), error) {
	f.queries = append(f.queries, append([]byte(nil), msg...))
	if len(f.queries) <= f.failures {
		return func() {}, nil // dropped: no reply will come
	}
	q, err := ParseDNSMessage(msg)
	if err != nil {
		return nil, err
	}
	reply := &DNSMessage{ID: q.ID, Response: true, RD: q.RD, RA: true, Questions: q.Questions}
	for _, a := range f.answers {
		reply.Answers = append(reply.Answers, DNSRR{Name: q.Questions[0].Name, Type: DNSTypeA,
			TTL: 60, Data: []byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}})
	}
	wire, err := EncodeDNSMessage(reply)
	if err != nil {
		return nil, err
	}
	done(wire, nil)
	return func() {}, nil
}

// The timeout path: attempts, backoff bounds, and the fact that timeouts
// are NOT negatively cached (a later lookup tries the network again).
func TestResolverTimeoutPath(t *testing.T) {
	const timeout = 100 * sim.Millisecond
	cases := []struct {
		name        string
		failures    int // queries the transport eats before answering
		wantErr     error
		wantSent    int64
		wantRetries int64
		// virtual-time bounds for the whole lookup: backoff doubles per
		// attempt (100, 200, 400ms) with up to base/8 seeded jitter each.
		minElapsed, maxElapsed sim.Duration
	}{
		{"answers first try", 0, nil, 1, 0, 0, 0},
		{"one retry", 1, nil, 2, 1, timeout, timeout + timeout/8},
		{"second retry", 2, nil, 3, 2, 300 * sim.Millisecond, 337500 * sim.Microsecond},
		{"all attempts dropped", 3, ErrDNSTimeout, 3, 2, 700 * sim.Millisecond, 787500 * sim.Microsecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newNetHost(t, "r", Addr(10, 0, 0, 1), sal.LanceModel)
			ft := &fakeTransport{failures: tc.failures, answers: []IPAddr{Addr(10, 0, 0, 7)}}
			r := NewResolver(h.stack, ResolverConfig{
				Servers:   []IPAddr{Addr(10, 0, 0, 2)},
				Transport: ft,
				Timeout:   timeout,
				Attempts:  3,
				Seed:      42,
			})
			start := h.eng.Now()
			var got []IPAddr
			var gerr error
			fired := false
			r.LookupA("web.spin.test", func(a []IPAddr, e error) { got, gerr, fired = a, e, true })
			h.eng.Run(0)
			if !fired {
				t.Fatal("callback never fired")
			}
			elapsed := h.eng.Now().Sub(start)
			if tc.wantErr != nil {
				if !errors.Is(gerr, tc.wantErr) {
					t.Fatalf("err = %v, want %v", gerr, tc.wantErr)
				}
			} else if gerr != nil || len(got) != 1 || got[0] != Addr(10, 0, 0, 7) {
				t.Fatalf("lookup = %v, %v", got, gerr)
			}
			if elapsed < tc.minElapsed || elapsed > tc.maxElapsed {
				t.Errorf("elapsed %v outside [%v, %v]", elapsed, tc.minElapsed, tc.maxElapsed)
			}
			st := r.Stats()
			if st.Sent != tc.wantSent || st.Retries != tc.wantRetries {
				t.Errorf("stats = %+v, want Sent=%d Retries=%d", st, tc.wantSent, tc.wantRetries)
			}
			// Timeouts are not cached: the next lookup hits the network
			// again (and succeeds, now that the transport stopped eating
			// queries).
			if tc.wantErr != nil {
				ft.failures = 0
				ft.queries = nil
				var again error
				r.LookupA("web.spin.test", func(_ []IPAddr, e error) { again = e })
				h.eng.Run(0)
				if again != nil || len(ft.queries) == 0 {
					t.Errorf("post-timeout lookup: err=%v queries=%d (timeout must not be cached)", again, len(ft.queries))
				}
			}
		})
	}
}

// Fixed seed, fixed query byte stream: IDs and retry jitter replay.
func TestResolverDeterministic(t *testing.T) {
	run := func(seed uint64) [][]byte {
		h := newNetHost(t, "r", Addr(10, 0, 0, 1), sal.LanceModel)
		ft := &fakeTransport{failures: 2, answers: []IPAddr{Addr(10, 0, 0, 7)}}
		r := NewResolver(h.stack, ResolverConfig{
			Servers: []IPAddr{Addr(10, 0, 0, 2)}, Transport: ft,
			Timeout: 50 * sim.Millisecond, Attempts: 3, Seed: seed,
		})
		r.LookupA("web.spin.test", func([]IPAddr, error) {})
		h.eng.Run(0)
		return ft.queries
	}
	a1, a2, b := run(7), run(7), run(8)
	if len(a1) != 3 {
		t.Fatalf("sent %d queries, want 3", len(a1))
	}
	for i := range a1 {
		if !bytes.Equal(a1[i], a2[i]) {
			t.Errorf("query %d differs under the same seed", i)
		}
	}
	same := true
	for i := range a1 {
		if i >= len(b) || !bytes.Equal(a1[i], b[i]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical query streams")
	}
}

// Close releases port 53: queries after Close go unanswered and the port
// can be rebound; constructor error paths (no authority, port taken) fail
// cleanly.
func TestDNSServerCloseAndRebind(t *testing.T) {
	a, b, cl, srv := dnsServerPair(t)
	if _, err := NewDNSServer(b.stack, nil, nil); err == nil {
		t.Error("server without a zone lookup accepted")
	}
	if _, err := NewDNSServer(b.stack, nil, NewZone().LookupA); err == nil {
		t.Error("second bind of port 53 accepted")
	}
	srv.Close()
	wire, err := EncodeDNSMessage(&DNSMessage{ID: 9, RD: true,
		Questions: []DNSQuestion{{Name: "web.spin.test", Type: DNSTypeA}}})
	if err != nil {
		t.Fatal(err)
	}
	if raw := rawQuery(t, a, cl, wire); raw != nil {
		t.Fatal("closed server answered")
	}
	if _, err := NewDNSServer(b.stack, nil, NewZone().LookupA); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

// FlushCache drops the positive cache: the next lookup goes back to the
// network (benchmarks measure uncached resolves through exactly this).
func TestResolverFlushCache(t *testing.T) {
	a, _, _ := pair(t, sal.LanceModel)
	ft := &fakeTransport{answers: []IPAddr{Addr(10, 0, 0, 2)}}
	r := NewResolver(a.stack, ResolverConfig{Servers: []IPAddr{Addr(10, 0, 0, 9)}, Transport: ft})
	lookup := func() {
		t.Helper()
		done := false
		r.LookupA("web.spin.test", func(_ []IPAddr, err error) {
			if err != nil {
				t.Fatal(err)
			}
			done = true
		})
		if !done {
			t.Fatal("synchronous transport did not complete the lookup")
		}
	}
	lookup()
	lookup() // served from cache
	if st := r.Stats(); st.Sent != 1 || st.CacheHits != 1 {
		t.Fatalf("stats before flush = %+v", st)
	}
	r.FlushCache()
	lookup()
	if st := r.Stats(); st.Sent != 2 {
		t.Fatalf("flush did not force a network lookup: %+v", st)
	}
}

// Flush(name) drops one name, leaving the rest of the cache warm — the
// targeted invalidation a DNS withdrawal (vnet.RemoveName) uses so the
// stale window is the negative TTL, not the withdrawn record's remaining
// positive TTL.
func TestResolverFlushName(t *testing.T) {
	a, _, _ := pair(t, sal.LanceModel)
	ft := &fakeTransport{answers: []IPAddr{Addr(10, 0, 0, 2)}}
	r := NewResolver(a.stack, ResolverConfig{Servers: []IPAddr{Addr(10, 0, 0, 9)}, Transport: ft})
	lookup := func(name string) {
		t.Helper()
		done := false
		r.LookupA(name, func(_ []IPAddr, err error) {
			if err != nil {
				t.Fatal(err)
			}
			done = true
		})
		if !done {
			t.Fatal("synchronous transport did not complete the lookup")
		}
	}
	lookup("web.spin.test")
	lookup("api.spin.test")
	if !r.Flush("WEB.spin.test.") { // canonicalized: case- and dot-insensitive
		t.Error("Flush of a cached name reported nothing flushed")
	}
	if r.Flush("gone.spin.test") {
		t.Error("Flush of an uncached name reported a flush")
	}
	lookup("api.spin.test") // still cached
	lookup("web.spin.test") // must go back to the network
	st := r.Stats()
	if st.Sent != 3 {
		t.Errorf("Sent = %d, want 3 (web twice, api once)", st.Sent)
	}
	if st.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1 (api only)", st.CacheHits)
	}
	// FlushAll empties both caches: every name re-queries the authority.
	r.FlushAll()
	lookup("api.spin.test")
	lookup("web.spin.test")
	if st = r.Stats(); st.Sent != 5 {
		t.Errorf("Sent = %d after FlushAll, want 5", st.Sent)
	}
}
