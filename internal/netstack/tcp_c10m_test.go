package netstack

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/sal"
	"spin/internal/sim"
)

// C10M hot-path behavior: RFC-correct resets, zero-window persist, bounded
// half-open state under SYN flood, and exact accounting across shards.

// TestTCPResetForms covers both RFC 793 RST forms: a segment carrying an
// ACK is refuted with Seq = its ACK number; a segment without one (bare SYN
// to a closed port) gets Seq 0 and an ACK covering the offending segment.
func TestTCPResetForms(t *testing.T) {
	cases := []struct {
		name      string
		in        Packet
		wantFlags TCPFlags
		wantSeq   uint32
		wantAck   uint32
	}{
		{
			name:      "bare SYN to closed port",
			in:        Packet{Flags: FlagSYN, Seq: 7000, Window: 1024},
			wantFlags: FlagRST | FlagACK,
			wantSeq:   0,
			wantAck:   7001, // SYN occupies one sequence number
		},
		{
			name:      "ACK segment to closed port",
			in:        Packet{Flags: FlagACK, Seq: 7000, Ack: 4242},
			wantFlags: FlagRST,
			wantSeq:   4242,
			wantAck:   0,
		},
		{
			name:      "FIN without ACK to closed port",
			in:        Packet{Flags: FlagFIN, Seq: 9000},
			wantFlags: FlagRST | FlagACK,
			wantSeq:   0,
			wantAck:   9001,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b, cl := pair(t, sal.LanceModel)
			var got *Packet
			_, err := a.disp.Install(EvTCPArrived, func(arg, _ any) any {
				got = arg.(*Packet).Clone()
				return true // claim: keep a's TCP from processing the RST
			}, dispatch.InstallOptions{Installer: domain.Identity{Name: "proto:6:rst-capture", Trusted: true}})
			if err != nil {
				t.Fatal(err)
			}
			pkt := AllocPacket()
			pkt.CopyHeaderFrom(&tc.in)
			pkt.Src, pkt.Dst, pkt.Proto = a.stack.IP, b.stack.IP, ProtoTCP
			pkt.SrcPort, pkt.DstPort = 5555, 99 // nothing listens on 99
			if err := a.stack.SendIP(pkt); err != nil {
				t.Fatal(err)
			}
			cl.Run(sim.Time(sim.Second))
			if got == nil {
				t.Fatal("no RST came back")
			}
			if got.Flags != tc.wantFlags || got.Seq != tc.wantSeq || got.Ack != tc.wantAck {
				t.Errorf("RST = flags %v seq %d ack %d, want flags %v seq %d ack %d",
					got.Flags, got.Seq, got.Ack, tc.wantFlags, tc.wantSeq, tc.wantAck)
			}
			if st := b.stack.TCP().Stats(); st.Resets != 1 {
				t.Errorf("Resets = %d, want 1", st.Resets)
			}
		})
	}
}

// TestTCPZeroWindowPersist: a zero-window advertisement must pause the
// sender (previously it was silently ignored), and the persist probe on the
// retransmission timer must discover the reopened window.
func TestTCPZeroWindowPersist(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	client, srv := establish(t, a, b, cl)
	var serverGot []byte
	(*srv).OnData = func(_ *Conn, d []byte) { serverGot = append(serverGot, d...) }

	// The peer advertises window 0 (a duplicate ACK carrying the closed
	// window, forged here since the in-tree receiver never closes its
	// fixed window).
	client.handle(&Packet{Flags: FlagACK, Seq: client.rcvNxt, Ack: client.sndUna, Window: 0})
	if client.sndWnd != 0 {
		t.Fatalf("sndWnd = %d after zero-window ACK, want 0", client.sndWnd)
	}

	payload := bytes.Repeat([]byte("w"), 100)
	if err := client.Send(payload); err != nil {
		t.Fatal(err)
	}
	// Nothing may leave while the window is closed...
	if got := client.sndNxt - client.sndUna; got != 0 {
		t.Fatalf("%d bytes in flight against a zero window", got)
	}
	// ...until the persist probe (on the retx timer) elicits an ACK whose
	// window has reopened, unsticking the transfer.
	cl.Run(sim.Time(60 * sim.Second))
	if !bytes.Equal(serverGot, payload) {
		t.Fatalf("server got %d bytes, want %d", len(serverGot), len(payload))
	}
	if client.ZeroWindowProbes() == 0 {
		t.Error("no persist probes recorded")
	}
}

// TestTCPSynFloodBounded: 10k SYNs to one listener must cost at most
// MaxHalfOpen compact entries — never a *Conn — with the overflow counted
// as evictions, while an established connection rides out the flood.
func TestTCPSynFloodBounded(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	client, srv := establish(t, a, b, cl)
	var serverGot []byte
	(*srv).OnData = func(_ *Conn, d []byte) { serverGot = append(serverGot, d...) }

	const flood = 10000
	syn := &Packet{} // reused: Deliver borrows, never retains
	for i := 0; i < flood; i++ {
		syn.Src = Addr(172, 16, byte(i>>8), byte(i))
		syn.SrcPort = uint16(1024 + i%50000)
		syn.Dst, syn.DstPort, syn.Proto = b.stack.IP, 80, ProtoTCP
		syn.Flags, syn.Seq, syn.Window = FlagSYN, uint32(i), 8192
		b.stack.TCP().Deliver(syn)
	}

	st := b.stack.TCP().Stats()
	if st.HalfOpen > MaxHalfOpen {
		t.Errorf("HalfOpen = %d, exceeds bound %d", st.HalfOpen, MaxHalfOpen)
	}
	if st.HalfOpenEvicted == 0 {
		t.Error("flood past the bound evicted nothing")
	}
	if st.HalfOpen+int(st.HalfOpenEvicted) < flood {
		t.Errorf("half-open %d + evicted %d < %d SYNs", st.HalfOpen, st.HalfOpenEvicted, flood)
	}
	if got := b.stack.TCP().Conns(); got != 1 {
		t.Errorf("Conns = %d after flood, want 1 (no conn before the final ACK)", got)
	}

	// The established connection still works.
	if err := client.Send([]byte("still here")); err != nil {
		t.Fatal(err)
	}
	cl.Run(sim.Time(60 * sim.Second))
	if string(serverGot) != "still here" {
		t.Fatalf("established conn got %q through the flood", serverGot)
	}
}

// TestTCPConnsExactUnderParallelSetup drives full server-side handshakes
// and teardowns from many goroutines at once (direct Deliver, no wire) and
// checks the per-shard counters stay exact. Run with -race.
func TestTCPConnsExactUnderParallelSetup(t *testing.T) {
	eng := sim.NewEngine()
	d := dispatch.New(eng, &sim.SPINProfile)
	st, err := NewStack("c10m", Addr(10, 0, 0, 1), eng, &sim.SPINProfile, d)
	if err != nil {
		t.Fatal(err)
	}
	tcp := st.TCP()
	if err := tcp.Listen(80, nil, func(*Conn) {}); err != nil {
		t.Fatal(err)
	}

	const workers, each = 8, 500
	handshake := func(w int, teardown bool) {
		pkt := &Packet{}
		for i := 0; i < each; i++ {
			src := Addr(10, 1, byte(w), byte(i))
			sport := uint16(2000 + i)
			pkt.Src, pkt.SrcPort = src, sport
			pkt.Dst, pkt.DstPort, pkt.Proto = st.IP, 80, ProtoTCP
			if !teardown {
				pkt.Flags, pkt.Seq, pkt.Ack, pkt.Window = FlagSYN, 10, 0, rcvWindow
				tcp.Deliver(pkt)
				pkt.Flags, pkt.Seq, pkt.Ack = FlagACK, 11, serverISS+1
				tcp.Deliver(pkt)
			} else {
				pkt.Flags, pkt.Seq, pkt.Ack = FlagRST, 11, 0
				tcp.Deliver(pkt)
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) { defer wg.Done(); handshake(w, false) }(w)
	}
	wg.Wait()
	if got := tcp.Conns(); got != workers*each {
		t.Fatalf("Conns = %d after parallel setup, want %d", got, workers*each)
	}
	if st := tcp.Stats(); st.Accepted != workers*each {
		t.Fatalf("Accepted = %d, want %d", st.Accepted, workers*each)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) { defer wg.Done(); handshake(w, true) }(w)
	}
	wg.Wait()
	if got := tcp.Conns(); got != 0 {
		t.Fatalf("Conns = %d after parallel teardown, want 0", got)
	}
}

// TestTCPDuplicateFinalACK: retransmitted final ACKs (half-open entry
// already consumed) must reach the established connection, not trigger a
// reset.
func TestTCPDuplicateFinalACK(t *testing.T) {
	eng := sim.NewEngine()
	d := dispatch.New(eng, &sim.SPINProfile)
	st, err := NewStack("dup", Addr(10, 0, 0, 1), eng, &sim.SPINProfile, d)
	if err != nil {
		t.Fatal(err)
	}
	tcp := st.TCP()
	if err := tcp.Listen(80, nil, func(*Conn) {}); err != nil {
		t.Fatal(err)
	}
	pkt := &Packet{Src: Addr(10, 2, 0, 1), SrcPort: 4000, Dst: st.IP, DstPort: 80, Proto: ProtoTCP}
	pkt.Flags, pkt.Seq, pkt.Window = FlagSYN, 10, 1024
	tcp.Deliver(pkt)
	pkt.Flags, pkt.Seq, pkt.Ack = FlagACK, 11, serverISS+1
	tcp.Deliver(pkt)
	tcp.Deliver(pkt) // duplicate
	stt := tcp.Stats()
	if stt.Conns != 1 || stt.Accepted != 1 || stt.Resets != 0 {
		t.Fatalf("conns=%d accepted=%d resets=%d, want 1/1/0", stt.Conns, stt.Accepted, stt.Resets)
	}
}

// Packet pool mechanics.

func TestPacketPoolRetainRelease(t *testing.T) {
	p := AllocPacket()
	p.Proto = ProtoUDP
	p.SetPayload([]byte("hello"))
	p.Retain()
	p.Release()
	if p.Proto != ProtoUDP || string(p.Payload) != "hello" {
		t.Fatal("packet recycled while a reference was live")
	}
	p.Release() // final: back to the pool

	q := AllocPacket()
	if q.Proto != 0 || q.Seq != 0 || q.Claimed || len(q.Payload) != 0 {
		t.Fatalf("pooled packet not zeroed: %+v", q)
	}
	q.Release()

	// Non-pooled packets ignore the protocol entirely.
	lit := &Packet{Payload: []byte("x")}
	lit.Release()
	lit.Release()
	if lit.Retain() != lit || string(lit.Payload) != "x" {
		t.Fatal("Release/Retain must be no-ops on literals")
	}
}

func TestPacketOverRelease(t *testing.T) {
	// The final release zeroes the pool state before the packet returns
	// to the pool, so a stray extra Release on a stale pointer is a
	// defensive no-op — it cannot corrupt whoever holds the packet next.
	q := AllocPacket()
	q.Release()
	q.Release()
	fresh := AllocPacket()
	if fresh.Proto != 0 || len(fresh.Payload) != 0 {
		t.Fatalf("pool handed out a corrupted packet: %+v", fresh)
	}
	fresh.Release()
}

func TestPacketCloneIsIndependent(t *testing.T) {
	p := AllocPacket()
	p.Proto, p.Seq = ProtoTCP, 42
	p.SetPayload([]byte("abc"))
	q := p.Clone()
	p.Release()
	if q.Proto != ProtoTCP || q.Seq != 42 || string(q.Payload) != "abc" {
		t.Fatalf("clone lost fields: %+v", q)
	}
	q.Payload[0] = 'x'
	q.Release()
}

// Wire codec: pooled/append variants agree with the originals.

func TestWireCodecPooledParity(t *testing.T) {
	src := &Packet{
		Src: Addr(10, 0, 0, 1), Dst: Addr(10, 0, 0, 2), Proto: ProtoTCP,
		SrcPort: 1234, DstPort: 80, Seq: 99, Ack: 7, Flags: FlagACK,
		Window: 512, TTL: 32, Payload: []byte("payload bytes"),
	}
	plain := EncodePacket(src)
	scratch := make([]byte, 0, 2048)
	appended := AppendPacket(scratch, src)
	if !bytes.Equal(plain, appended) {
		t.Fatal("AppendPacket disagrees with EncodePacket")
	}

	p1, err1 := ParsePacket(plain)
	p2, err2 := ParsePacketPooled(plain)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if fmt.Sprint(p1) != fmt.Sprint(p2) || !bytes.Equal(p1.Payload, p2.Payload) ||
		p1.Seq != p2.Seq || p1.Flags != p2.Flags || p1.Window != p2.Window {
		t.Fatalf("pooled parse disagrees: %v vs %v", p1, p2)
	}
	// The pooled packet must own its payload (the frame buffer is reused
	// by callers).
	plain[len(plain)-1] ^= 0xff
	if !bytes.Equal(p2.Payload, []byte("payload bytes")) {
		t.Fatal("pooled parse aliases the frame buffer")
	}
	p2.Release()

	if _, err := ParsePacketPooled(plain[:10]); err == nil {
		t.Fatal("short frame must not parse")
	}
}
