package netstack

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"spin/internal/faultinject"
	"spin/internal/sim"
)

// TCPState is a connection state (RFC 793 subset).
type TCPState int

// Connection states.
const (
	StateClosed TCPState = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateLastAck
	StateTimeWait
)

func (s TCPState) String() string {
	names := []string{"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
		"FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "LAST_ACK", "TIME_WAIT"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// DefaultMSS is the default maximum segment size (Ethernet-friendly).
const DefaultMSS = 1460

// rcvWindow is the fixed receive window advertised (bytes).
const rcvWindow = 32 * 1024

// retxTimeout is the (fixed) retransmission timeout.
const retxTimeout = 200 * sim.Millisecond

// timeWaitDelay is the TIME_WAIT linger before the connection is reaped.
const timeWaitDelay = 500 * sim.Millisecond

type connKey struct {
	remote     IPAddr
	remotePort uint16
	localPort  uint16
}

// Conn is one TCP connection endpoint.
type Conn struct {
	tcp        *TCP
	state      TCPState
	remote     IPAddr
	localPort  uint16
	remotePort uint16

	mss int

	// Send side.
	sndUna, sndNxt uint32
	sendBuf        []byte // not yet segmented
	inflight       []segment
	cwnd           int // congestion window, segments
	ssthresh       int // slow-start threshold, segments
	sndWnd         int // peer's advertised window, bytes
	retxEv         *sim.Event
	retransmits    int64

	// Receive side.
	rcvNxt uint32

	delivery DeliveryCost

	// OnConnect fires when the connection reaches ESTABLISHED.
	OnConnect func(*Conn)
	// OnData receives in-order payload bytes.
	OnData func(*Conn, []byte)
	// OnClose fires when the connection fully closes.
	OnClose func(*Conn)

	// acceptCb is the listener's accept callback, held until the
	// handshake completes on server-side connections.
	acceptCb func(*Conn)

	peerClosed bool
	closed     bool
}

type segment struct {
	seq  uint32
	data []byte
	fin  bool
}

// State reports the connection state.
func (c *Conn) State() TCPState { return c.state }

// Remote reports the peer address/port.
func (c *Conn) Remote() (IPAddr, uint16) { return c.remote, c.remotePort }

// Retransmits reports how many segments were retransmitted.
func (c *Conn) Retransmits() int64 { return c.retransmits }

// Listener accepts inbound connections on a port.
type Listener struct {
	port   uint16
	cost   DeliveryCost
	accept func(*Conn)
	owner  string
}

// TCP is the stack's TCP module. The paper notes SPIN used the DEC OSF/1
// TCP engine as a kernel-asserted extension; here the engine is implemented
// natively, which only strengthens the reproduction.
//
// The connection and listener tables are copy-on-write snapshots behind
// atomic pointers: deliver's per-segment lookup is lock-free; writers
// (Listen, Unlisten, Connect, connection setup/teardown) copy under a
// mutex and swap. Individual Conn state machines remain single-threaded —
// segments for one connection must be delivered from the simulation
// goroutine, since handling them transmits and arms timers.
type TCP struct {
	stack *Stack

	// mu serializes table writers and the ephemeral-port scan.
	mu        sync.Mutex
	conns     atomic.Pointer[map[connKey]*Conn]
	listeners atomic.Pointer[map[uint16]*Listener]
	nextPort  uint16 // guarded by mu
}

func newTCP(s *Stack) *TCP {
	t := &TCP{stack: s, nextPort: 30000}
	emptyConns := make(map[connKey]*Conn)
	t.conns.Store(&emptyConns)
	emptyListeners := make(map[uint16]*Listener)
	t.listeners.Store(&emptyListeners)
	return t
}

// storeConn publishes a new conns snapshot with key -> c added (or removed
// when c is nil). Callers hold t.mu.
func (t *TCP) storeConn(key connKey, c *Conn) {
	old := *t.conns.Load()
	next := make(map[connKey]*Conn, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	if c == nil {
		delete(next, key)
	} else {
		next[key] = c
	}
	t.conns.Store(&next)
}

// Listen accepts connections on port; accept runs when a connection reaches
// ESTABLISHED.
func (t *TCP) Listen(port uint16, cost DeliveryCost, accept func(*Conn)) error {
	return t.ListenOwned("", port, cost, accept)
}

// ListenOwned is Listen with a recorded owning principal, so the listener is
// withdrawn by UnlistenOwner when the owner's domain is destroyed.
func (t *TCP) ListenOwned(owner string, port uint16, cost DeliveryCost, accept func(*Conn)) error {
	if cost == nil {
		cost = InKernelDelivery
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.listeners.Load()
	if _, dup := old[port]; dup {
		return fmt.Errorf("netstack: TCP port %d in use", port)
	}
	next := make(map[uint16]*Listener, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[port] = &Listener{port: port, cost: cost, accept: accept, owner: owner}
	t.listeners.Store(&next)
	return nil
}

// Unlisten stops accepting on port.
func (t *TCP) Unlisten(port uint16) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.listeners.Load()
	if _, ok := old[port]; !ok {
		return
	}
	next := make(map[uint16]*Listener, len(old))
	for k, v := range old {
		if k != port {
			next[k] = v
		}
	}
	t.listeners.Store(&next)
}

// UnlistenOwner withdraws every listener registered under owner in one
// snapshot swap — the TCP module's teardown reclaimer. Established
// connections accepted earlier run their normal state machines to
// completion; only the ability to accept new ones is revoked. It returns
// the number of listeners withdrawn.
func (t *TCP) UnlistenOwner(owner string) int {
	if owner == "" {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.listeners.Load()
	next := make(map[uint16]*Listener, len(old))
	removed := 0
	for k, v := range old {
		if v.owner == owner {
			removed++
			continue
		}
		next[k] = v
	}
	if removed > 0 {
		t.listeners.Store(&next)
	}
	return removed
}

// Connect opens a connection to dst:port. The returned Conn is in SYN_SENT;
// OnConnect fires at ESTABLISHED.
func (t *TCP) Connect(dst IPAddr, port uint16, cost DeliveryCost) (*Conn, error) {
	if cost == nil {
		cost = InKernelDelivery
	}
	t.mu.Lock()
	local := t.ephemeralPortLocked()
	c := &Conn{
		tcp: t, state: StateSynSent,
		remote: dst, localPort: local, remotePort: port,
		mss: DefaultMSS, cwnd: 1, ssthresh: 16, sndWnd: rcvWindow,
		delivery: cost,
		sndUna:   100, sndNxt: 100,
	}
	t.storeConn(connKey{dst, port, local}, c)
	t.mu.Unlock()
	c.sendSeg(&Packet{Flags: FlagSYN, Seq: c.sndNxt, Window: rcvWindow})
	c.sndNxt++
	c.armRetx()
	return c, nil
}

// ephemeralPortLocked picks a free local port. Callers hold t.mu.
func (t *TCP) ephemeralPortLocked() uint16 {
	conns := *t.conns.Load()
	for {
		t.nextPort++
		if t.nextPort < 30000 {
			t.nextPort = 30000 // wrapped uint16: stay out of the low range
		}
		free := true
		for k := range conns {
			if k.localPort == t.nextPort {
				free = false
				break
			}
		}
		if free {
			return t.nextPort
		}
	}
}

// Send queues payload for transmission.
func (c *Conn) Send(payload []byte) error {
	if c.closed || c.state != StateEstablished && c.state != StateCloseWait {
		if c.state == StateSynSent || c.state == StateSynRcvd {
			// Queue until established.
			c.sendBuf = append(c.sendBuf, payload...)
			return nil
		}
		return errors.New("netstack: send on non-established connection")
	}
	c.sendBuf = append(c.sendBuf, payload...)
	c.pump()
	return nil
}

// Close begins an orderly shutdown.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	switch c.state {
	case StateEstablished:
		c.state = StateFinWait1
	case StateCloseWait:
		c.state = StateLastAck
	default:
		c.teardown()
		return
	}
	c.queueFIN()
}

func (c *Conn) queueFIN() {
	// FIN rides after any queued data; represent as zero-data fin
	// segment appended once the buffer drains.
	c.pump()
	if len(c.sendBuf) == 0 {
		c.sendFIN()
	}
	// Otherwise pump() sends it once data drains (checked in onAck).
}

func (c *Conn) sendFIN() {
	c.sendSeg(&Packet{Flags: FlagFIN | FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: rcvWindow})
	c.inflight = append(c.inflight, segment{seq: c.sndNxt, fin: true})
	c.sndNxt++
	c.armRetx()
}

// pump sends as much buffered data as the congestion and peer windows
// allow.
func (c *Conn) pump() {
	if c.state != StateEstablished && c.state != StateCloseWait &&
		c.state != StateFinWait1 && c.state != StateLastAck {
		return
	}
	for len(c.sendBuf) > 0 {
		inFlightBytes := int(c.sndNxt - c.sndUna)
		windowBytes := c.cwnd * c.mss
		if windowBytes > c.sndWnd {
			windowBytes = c.sndWnd
		}
		if inFlightBytes >= windowBytes {
			return // window full; ACKs will re-pump
		}
		n := c.mss
		if n > len(c.sendBuf) {
			n = len(c.sendBuf)
		}
		if n > windowBytes-inFlightBytes {
			n = windowBytes - inFlightBytes
		}
		if n <= 0 {
			return
		}
		data := append([]byte(nil), c.sendBuf[:n]...)
		c.sendBuf = c.sendBuf[n:]
		c.sendSeg(&Packet{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: rcvWindow, Payload: data})
		c.inflight = append(c.inflight, segment{seq: c.sndNxt, data: data})
		c.sndNxt += uint32(n)
		c.armRetx()
	}
	if (c.state == StateFinWait1 || c.state == StateLastAck) && len(c.sendBuf) == 0 && !c.finInflight() {
		c.sendFIN()
	}
}

func (c *Conn) finInflight() bool {
	for _, s := range c.inflight {
		if s.fin {
			return true
		}
	}
	return false
}

// sendSeg fills in addressing and transmits one segment.
func (c *Conn) sendSeg(p *Packet) {
	p.Src = c.tcp.stack.IP
	p.Dst = c.remote
	p.Proto = ProtoTCP
	p.SrcPort = c.localPort
	p.DstPort = c.remotePort
	p.TTL = 32
	_ = c.tcp.stack.SendIP(p)
}

func (c *Conn) armRetx() {
	if c.retxEv != nil && !c.retxEv.Cancelled() {
		return
	}
	c.retxEv = c.tcp.stack.engine.After(retxTimeout, c.onRetxTimeout)
}

func (c *Conn) cancelRetx() {
	if c.retxEv != nil {
		c.retxEv.Cancel()
		c.retxEv = nil
	}
}

func (c *Conn) onRetxTimeout() {
	c.retxEv = nil
	if len(c.inflight) == 0 && c.state != StateSynSent && c.state != StateSynRcvd {
		return
	}
	// Multiplicative decrease; back to slow start.
	c.ssthresh = c.cwnd / 2
	if c.ssthresh < 1 {
		c.ssthresh = 1
	}
	c.cwnd = 1
	c.retransmits++
	switch c.state {
	case StateSynSent:
		c.sendSeg(&Packet{Flags: FlagSYN, Seq: c.sndUna, Window: rcvWindow})
	case StateSynRcvd:
		c.sendSeg(&Packet{Flags: FlagSYN | FlagACK, Seq: c.sndNxt - 1, Ack: c.rcvNxt, Window: rcvWindow})
	default:
		if len(c.inflight) > 0 {
			s := c.inflight[0]
			flags := FlagACK
			if s.fin {
				flags |= FlagFIN
			}
			c.sendSeg(&Packet{Flags: flags, Seq: s.seq, Ack: c.rcvNxt, Window: rcvWindow, Payload: s.data})
		}
	}
	c.armRetx()
}

// deliver routes one inbound TCP segment, feeding the per-segment latency
// series when tracing is enabled.
func (t *TCP) deliver(pkt *Packet) {
	f := t.stack.disp.InjectorInstalled().Fire("net.tcp.deliver")
	if f.Kind == faultinject.KindDrop || f.Kind == faultinject.KindError {
		return // injected segment loss; retransmission recovers
	}
	if tr := t.stack.disp.Tracer(); tr != nil {
		start := t.stack.clock.Now()
		defer func() {
			tr.Observe("net.tcp.deliver", t.stack.clock.Now().Sub(start))
		}()
	}
	t.deliver1(pkt)
}

func (t *TCP) deliver1(pkt *Packet) {
	key := connKey{pkt.Src, pkt.SrcPort, pkt.DstPort}
	if c, ok := (*t.conns.Load())[key]; ok {
		c.handle(pkt)
		return
	}
	// New connection? Must be a SYN to a listener.
	l, ok := (*t.listeners.Load())[pkt.DstPort]
	if !ok || pkt.Flags&FlagSYN == 0 || pkt.Flags&FlagACK != 0 {
		if pkt.Flags&FlagRST == 0 {
			t.reset(pkt)
		}
		return
	}
	c := &Conn{
		tcp: t, state: StateSynRcvd,
		remote: pkt.Src, localPort: pkt.DstPort, remotePort: pkt.SrcPort,
		mss: DefaultMSS, cwnd: 1, ssthresh: 16,
		sndWnd:   pkt.Window,
		delivery: l.cost,
		sndUna:   1000, sndNxt: 1000,
		rcvNxt: pkt.Seq + 1,
	}
	t.mu.Lock()
	if _, raced := (*t.conns.Load())[key]; raced {
		// A concurrent delivery of the same SYN already set the
		// connection up; its SYN-ACK is on the way.
		t.mu.Unlock()
		return
	}
	t.storeConn(key, c)
	t.mu.Unlock()
	c.acceptCb = l.accept
	c.sendSeg(&Packet{Flags: FlagSYN | FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: rcvWindow})
	c.sndNxt++
	c.armRetx()
}

// reset sends RST for an unexpected segment.
func (t *TCP) reset(pkt *Packet) {
	rst := &Packet{
		Src: t.stack.IP, Dst: pkt.Src, Proto: ProtoTCP,
		SrcPort: pkt.DstPort, DstPort: pkt.SrcPort,
		Flags: FlagRST, Seq: pkt.Ack, TTL: 32,
	}
	_ = t.stack.SendIP(rst)
}

// handle runs the per-connection state machine for one segment.
func (c *Conn) handle(pkt *Packet) {
	c.delivery(c.tcp.stack.clock, pkt)
	if pkt.Flags&FlagRST != 0 {
		c.teardown()
		return
	}
	if pkt.Window > 0 {
		c.sndWnd = pkt.Window
	}
	switch c.state {
	case StateSynSent:
		if pkt.Flags&(FlagSYN|FlagACK) == FlagSYN|FlagACK && pkt.Ack == c.sndNxt {
			c.sndUna = pkt.Ack
			c.rcvNxt = pkt.Seq + 1
			c.state = StateEstablished
			c.cancelRetx()
			c.sendSeg(&Packet{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: rcvWindow})
			if c.OnConnect != nil {
				c.OnConnect(c)
			}
			c.pump()
		}
		return
	case StateSynRcvd:
		if pkt.Flags&FlagACK != 0 && pkt.Ack == c.sndNxt {
			c.sndUna = pkt.Ack
			c.state = StateEstablished
			c.cancelRetx()
			if c.acceptCb != nil {
				c.acceptCb(c)
			}
			if c.OnConnect != nil {
				c.OnConnect(c)
			}
			// Fall through: the ACK may carry data.
		} else {
			if pkt.Flags&FlagSYN != 0 {
				// Duplicate SYN: our SYN-ACK was lost; resend it.
				c.sendSeg(&Packet{Flags: FlagSYN | FlagACK, Seq: c.sndNxt - 1, Ack: c.rcvNxt, Window: rcvWindow})
			}
			return
		}
	}

	if pkt.Flags&FlagACK != 0 {
		c.onAck(pkt.Ack)
	}
	if len(pkt.Payload) > 0 {
		c.onData(pkt)
	}
	if pkt.Flags&FlagFIN != 0 {
		c.onFIN(pkt)
	}
}

func (c *Conn) onAck(ack uint32) {
	if int32(ack-c.sndUna) <= 0 {
		return // duplicate/old
	}
	c.sndUna = ack
	// Drop fully acknowledged segments.
	keep := c.inflight[:0]
	finAcked := false
	for _, s := range c.inflight {
		end := s.seq + uint32(len(s.data))
		if s.fin {
			end = s.seq + 1
		}
		if int32(end-ack) <= 0 {
			if s.fin {
				finAcked = true
			}
			// Congestion window growth per ACKed segment: slow
			// start below ssthresh, then linear.
			if c.cwnd < c.ssthresh {
				c.cwnd++
			} else if c.cwnd < 128 {
				c.cwnd++ // coarse linear growth per window-full
			}
			continue
		}
		keep = append(keep, s)
	}
	c.inflight = keep
	if len(c.inflight) == 0 {
		c.cancelRetx()
	}
	if finAcked {
		switch c.state {
		case StateFinWait1:
			c.state = StateFinWait2
		case StateLastAck:
			c.teardown()
			return
		}
	}
	c.pump()
}

func (c *Conn) onData(pkt *Packet) {
	if pkt.Seq != c.rcvNxt {
		// Out of order: re-ACK what we have; sender retransmits.
		c.sendSeg(&Packet{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: rcvWindow})
		return
	}
	c.rcvNxt += uint32(len(pkt.Payload))
	if c.OnData != nil {
		c.OnData(c, pkt.Payload)
	}
	c.sendSeg(&Packet{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: rcvWindow})
}

func (c *Conn) onFIN(pkt *Packet) {
	c.rcvNxt = pkt.Seq + uint32(len(pkt.Payload)) + 1
	c.peerClosed = true
	c.sendSeg(&Packet{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: rcvWindow})
	switch c.state {
	case StateEstablished:
		c.state = StateCloseWait
	case StateFinWait1:
		// Simultaneous close; treat as FIN_WAIT_2 -> TIME_WAIT.
		c.state = StateTimeWait
		c.startTimeWait()
	case StateFinWait2:
		c.state = StateTimeWait
		c.startTimeWait()
	}
	if c.OnClose != nil && c.state == StateCloseWait {
		c.OnClose(c)
	}
}

func (c *Conn) startTimeWait() {
	c.tcp.stack.engine.After(timeWaitDelay, func() {
		c.teardown()
	})
}

// teardown removes the connection.
func (c *Conn) teardown() {
	if c.state == StateClosed {
		return
	}
	c.cancelRetx()
	prev := c.state
	c.state = StateClosed
	c.tcp.mu.Lock()
	c.tcp.storeConn(connKey{c.remote, c.remotePort, c.localPort}, nil)
	c.tcp.mu.Unlock()
	if c.OnClose != nil && prev != StateCloseWait {
		c.OnClose(c)
	}
}

// Conns reports the number of live connections (tests).
func (t *TCP) Conns() int { return len(*t.conns.Load()) }
