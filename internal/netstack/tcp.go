package netstack

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"spin/internal/faultinject"
	"spin/internal/sim"
)

// TCPState is a connection state (RFC 793 subset).
type TCPState int

// Connection states.
const (
	StateClosed TCPState = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateLastAck
	StateTimeWait
)

func (s TCPState) String() string {
	names := []string{"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
		"FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "LAST_ACK", "TIME_WAIT"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// DefaultMSS is the default maximum segment size (Ethernet-friendly).
const DefaultMSS = 1460

// rcvWindow is the fixed receive window advertised (bytes).
const rcvWindow = 32 * 1024

// retxTimeout is the base retransmission timeout; each unacknowledged
// retransmission doubles it (exponential backoff) up to retxBackoffCap
// doublings.
const retxTimeout = 200 * sim.Millisecond

// retxBackoffCap bounds the exponential backoff at retxTimeout << cap
// (6.4 s), so a long outage retries at a steady cadence instead of hours
// apart.
const retxBackoffCap = 5

// DefaultMaxRetx is the default retransmission cap: after this many
// unacknowledged retransmissions of the same data (or SYN) the connection
// is torn down with ErrTimedOut. With exponential backoff from retxTimeout
// the whole attempt is bounded at ~19 s of virtual time.
const DefaultMaxRetx = 6

// Errors surfaced by connections that fail rather than hang.
var (
	// ErrTimedOut reports that the retransmission cap was exhausted: the
	// peer (or the path to it) stayed silent through every backoff.
	ErrTimedOut = errors.New("netstack: connection timed out")
	// ErrClosed reports an operation on a closed connection — including a
	// Close in SYN_SENT that discards data queued before the handshake
	// completed.
	ErrClosed = errors.New("netstack: connection closed")
)

// timeWaitDelay is the TIME_WAIT linger before the connection is reaped.
const timeWaitDelay = 500 * sim.Millisecond

// serverISS is the deterministic initial send sequence for server-side
// connections (clients use 100); fixed values keep the simulation
// replayable.
const serverISS = 1000

// Connection-table sharding. The table is split into a fixed power-of-two
// number of shards by a hash of the 4-tuple key; each shard is an
// independently swapped copy-on-write snapshot, so connection setup or
// teardown copies one shard — a few hundred entries at a million
// connections — never the whole table.
// 2^16 shards keep a shard to ~16 entries at a million connections, so the
// COW copy an insert pays stays a few hundred bytes at any scale. The
// empty table costs ~1.5 MB per stack — the C10M trade.
const (
	tcpShards    = 1 << 16
	tcpShardMask = tcpShards - 1
)

// Half-open (SYN received, final ACK pending) table bounds. A SYN costs one
// compact entry in a bounded table, syncookie-style — never a *Conn — so a
// SYN flood is capped at MaxHalfOpen entries of a few dozen bytes each.
const (
	synShards = 64
	// MaxHalfOpen bounds the half-open table across all shards; beyond it
	// the oldest entries are evicted (counted in TCPStats.HalfOpenEvicted).
	MaxHalfOpen         = 4096
	maxHalfOpenPerShard = MaxHalfOpen / synShards
	// synTTL evicts half-open entries whose final ACK never arrived.
	synTTL = 5 * sim.Second
)

// connKey packs the 4-tuple that identifies a connection — remote address,
// remote port, local port (the local address is the stack's own) — into one
// comparable word.
type connKey uint64

func tcpKey(remote IPAddr, remotePort, localPort uint16) connKey {
	return connKey(uint64(remote)<<32 | uint64(remotePort)<<16 | uint64(localPort))
}

// hash mixes the packed key (splitmix64 finalizer) so that sequential ports
// and addresses spread across shards.
func (k connKey) hash() uint64 {
	h := uint64(k)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// connShard is one slice of the connection table: a copy-on-write sorted
// slice behind an atomic pointer. Lookup is a lock-free load plus binary
// search (zero allocations); insert/remove copy the slice under the shard
// mutex and swap. The per-shard counter keeps Conns() exact without
// touching the snapshots.
type connShard struct {
	mu  sync.Mutex
	tab atomic.Pointer[[]connEntry]
	n   atomic.Int64
}

type connEntry struct {
	key connKey
	c   *Conn
}

// synEntry is the compact half-open record for a SYN awaiting its final
// ACK: just enough to resend the SYN-ACK and materialize the connection.
type synEntry struct {
	rcvNxt uint32   // peer ISS + 1
	iss    uint32   // our initial send sequence for the SYN-ACK
	wnd    int      // peer's advertised window from the SYN
	at     sim.Time // arrival, for TTL/oldest eviction
}

type synShard struct {
	mu sync.Mutex
	m  map[connKey]synEntry
}

// Conn is one TCP connection endpoint.
type Conn struct {
	tcp        *TCP
	remote     IPAddr
	localPort  uint16
	remotePort uint16

	// state, the retransmission counters and the terminal error are
	// atomics: the state machine mutates them from the simulation
	// goroutine while observers (tests, debuggers, the socket adapters'
	// torture monitors) read them from anywhere.
	state         atomic.Int32
	retransmits   atomic.Int64
	zeroWndProbes atomic.Int64
	connErr       atomic.Pointer[error]

	mss int

	// Send side.
	sndUna, sndNxt uint32
	sendBuf        []byte // not yet segmented
	inflight       []segment
	cwnd           int // congestion window, segments
	ssthresh       int // slow-start threshold, segments
	sndWnd         int // peer's advertised window, bytes
	retxEv         *sim.Event
	// retxAttempts counts consecutive unacknowledged retransmissions of
	// the oldest outstanding data (or SYN); any forward ACK progress
	// resets it. It selects the backoff and enforces the MaxRetx cap.
	retxAttempts int

	// Receive side.
	rcvNxt uint32

	delivery DeliveryCost

	// OnConnect fires when the connection reaches ESTABLISHED.
	OnConnect func(*Conn)
	// OnData receives in-order payload bytes.
	OnData func(*Conn, []byte)
	// OnClose fires when the connection fully closes.
	OnClose func(*Conn)

	// acceptCb is the listener's accept callback. On server-side
	// connections it is published on the Conn before the Conn enters the
	// connection table, so a concurrent delivery can never observe the
	// connection without it.
	acceptCb func(*Conn)

	peerClosed bool
	closed     bool
}

type segment struct {
	seq  uint32
	data []byte
	fin  bool
}

// State reports the connection state. Safe to call from any goroutine.
func (c *Conn) State() TCPState { return TCPState(c.state.Load()) }

func (c *Conn) setState(s TCPState) { c.state.Store(int32(s)) }

// Remote reports the peer address/port.
func (c *Conn) Remote() (IPAddr, uint16) { return c.remote, c.remotePort }

// LocalPort reports the local port of the connection's 4-tuple.
func (c *Conn) LocalPort() uint16 { return c.localPort }

// Retransmits reports how many segments were retransmitted. Safe to call
// from any goroutine.
func (c *Conn) Retransmits() int64 { return c.retransmits.Load() }

// ZeroWindowProbes reports how many persist probes were sent against a
// peer's zero-window advertisement. Safe to call from any goroutine.
func (c *Conn) ZeroWindowProbes() int64 { return c.zeroWndProbes.Load() }

// Err reports why the connection failed: ErrTimedOut after retransmission
// exhaustion, ErrClosed (wrapped) when a close discarded queued data, nil
// for connections that closed cleanly or are still alive.
func (c *Conn) Err() error {
	if p := c.connErr.Load(); p != nil {
		return *p
	}
	return nil
}

// setErr records the connection's terminal error; the first one wins.
func (c *Conn) setErr(err error) {
	c.connErr.CompareAndSwap(nil, &err)
}

// Listener accepts inbound connections on a port.
type Listener struct {
	port   uint16
	cost   DeliveryCost
	accept func(*Conn)
	owner  string
}

// TCP is the stack's TCP module. The paper notes SPIN used the DEC OSF/1
// TCP engine as a kernel-asserted extension; here the engine is implemented
// natively, which only strengthens the reproduction.
//
// The connection table is sharded (see connShard): the per-segment lookup
// is a lock-free snapshot load plus binary search, and setup/teardown
// writers contend only within one shard. The listener table is a single
// copy-on-write map (listeners change rarely). Individual Conn state
// machines remain single-threaded — segments for one connection must be
// delivered from the simulation goroutine, since handling them transmits
// and arms timers.
type TCP struct {
	stack *Stack

	// mu serializes listener-table writers and the ephemeral-port cursor.
	mu        sync.Mutex
	listeners atomic.Pointer[map[uint16]*Listener]
	nextPort  uint16 // guarded by mu

	shards []connShard
	syn    []synShard

	// maxRetx is the per-connection retransmission cap (DefaultMaxRetx
	// unless overridden with SetMaxRetx before connections exist).
	maxRetx int

	accepted        atomic.Int64
	resets          atomic.Int64
	halfOpenEvicted atomic.Int64
	timedOut        atomic.Int64
}

func newTCP(s *Stack) *TCP {
	t := &TCP{
		stack:    s,
		nextPort: 30000,
		shards:   make([]connShard, tcpShards),
		syn:      make([]synShard, synShards),
		maxRetx:  DefaultMaxRetx,
	}
	for i := range t.syn {
		t.syn[i].m = make(map[connKey]synEntry)
	}
	emptyListeners := make(map[uint16]*Listener)
	t.listeners.Store(&emptyListeners)
	return t
}

func (t *TCP) connShardFor(key connKey) *connShard {
	return &t.shards[key.hash()&tcpShardMask]
}

func (t *TCP) synShardFor(key connKey) *synShard {
	return &t.syn[(key.hash()>>32)&(synShards-1)]
}

// lookup finds the connection for key: one atomic snapshot load and a
// binary search, lock- and allocation-free.
func (t *TCP) lookup(key connKey) *Conn {
	tp := t.connShardFor(key).tab.Load()
	if tp == nil {
		return nil
	}
	tab := *tp
	lo, hi := 0, len(tab)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if tab[mid].key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(tab) && tab[lo].key == key {
		return tab[lo].c
	}
	return nil
}

// insertConn publishes key -> c in its shard's sorted snapshot. The copy
// touches one shard only, so setup cost is O(table/shards), not O(table).
// It reports false — without modifying the table — if key is already
// present (a concurrent materialization of the same connection won).
func (t *TCP) insertConn(key connKey, c *Conn) bool {
	sh := t.connShardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var old []connEntry
	if tp := sh.tab.Load(); tp != nil {
		old = *tp
	}
	lo, hi := 0, len(old)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if old[mid].key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	pos := lo
	if pos < len(old) && old[pos].key == key {
		return false
	}
	next := make([]connEntry, len(old)+1)
	copy(next, old[:pos])
	next[pos] = connEntry{key: key, c: c}
	copy(next[pos+1:], old[pos:])
	sh.tab.Store(&next)
	sh.n.Add(1)
	return true
}

// removeConn withdraws key from its shard's snapshot, reporting whether it
// was present.
func (t *TCP) removeConn(key connKey) bool {
	sh := t.connShardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tp := sh.tab.Load()
	if tp == nil {
		return false
	}
	old := *tp
	pos := -1
	for i := range old {
		if old[i].key == key {
			pos = i
			break
		}
	}
	if pos < 0 {
		return false
	}
	next := make([]connEntry, len(old)-1)
	copy(next, old[:pos])
	copy(next[pos:], old[pos+1:])
	sh.tab.Store(&next)
	sh.n.Add(-1)
	return true
}

// Listen accepts connections on port; accept runs when a connection reaches
// ESTABLISHED.
func (t *TCP) Listen(port uint16, cost DeliveryCost, accept func(*Conn)) error {
	return t.ListenOwned("", port, cost, accept)
}

// ListenOwned is Listen with a recorded owning principal, so the listener is
// withdrawn by UnlistenOwner when the owner's domain is destroyed.
func (t *TCP) ListenOwned(owner string, port uint16, cost DeliveryCost, accept func(*Conn)) error {
	if cost == nil {
		cost = InKernelDelivery
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.listeners.Load()
	if _, dup := old[port]; dup {
		return fmt.Errorf("netstack: TCP port %d in use", port)
	}
	next := make(map[uint16]*Listener, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[port] = &Listener{port: port, cost: cost, accept: accept, owner: owner}
	t.listeners.Store(&next)
	return nil
}

// Unlisten stops accepting on port.
func (t *TCP) Unlisten(port uint16) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.listeners.Load()
	if _, ok := old[port]; !ok {
		return
	}
	next := make(map[uint16]*Listener, len(old))
	for k, v := range old {
		if k != port {
			next[k] = v
		}
	}
	t.listeners.Store(&next)
}

// UnlistenOwner withdraws every listener registered under owner in one
// snapshot swap — the TCP module's teardown reclaimer. Established
// connections accepted earlier run their normal state machines to
// completion; only the ability to accept new ones is revoked. It returns
// the number of listeners withdrawn.
func (t *TCP) UnlistenOwner(owner string) int {
	if owner == "" {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.listeners.Load()
	next := make(map[uint16]*Listener, len(old))
	removed := 0
	for k, v := range old {
		if v.owner == owner {
			removed++
			continue
		}
		next[k] = v
	}
	if removed > 0 {
		t.listeners.Store(&next)
	}
	return removed
}

// Connect opens a connection to dst:port. The returned Conn is in SYN_SENT;
// OnConnect fires at ESTABLISHED.
//
// Fault site "net.dial" fires per connect attempt: KindError fails the
// dial before any connection state exists (the caller sees the injected
// error synchronously), KindDrop loses the initial SYN — the handshake
// then completes late through the retransmission machinery, or times the
// connection out at the cap.
func (t *TCP) Connect(dst IPAddr, port uint16, cost DeliveryCost) (*Conn, error) {
	if cost == nil {
		cost = InKernelDelivery
	}
	dialFault := t.stack.disp.InjectorInstalled().Fire("net.dial")
	if dialFault.Kind == faultinject.KindError {
		return nil, fmt.Errorf("netstack: dial %v:%d: %w", dst, port, dialFault.Err)
	}
	t.mu.Lock()
	// A local port only has to be unique per 4-tuple (full demux), so the
	// same ephemeral port serves many remotes and outbound connection
	// count is not capped by the port range. The scan is bounded: with
	// fewer than 2^16 connections to this exact remote endpoint it
	// terminates in a few probes.
	var key connKey
	local, found := t.nextPort, false
	for i := 0; i < 1<<16; i++ {
		t.nextPort++
		if t.nextPort < 30000 {
			t.nextPort = 30000 // wrapped uint16: stay out of the low range
		}
		key = tcpKey(dst, port, t.nextPort)
		if t.lookup(key) == nil {
			local, found = t.nextPort, true
			break
		}
	}
	if !found {
		t.mu.Unlock()
		return nil, fmt.Errorf("netstack: no free local port for %v:%d: %w", dst, port, ErrPortsExhausted)
	}
	c := &Conn{
		tcp:    t,
		remote: dst, localPort: local, remotePort: port,
		mss: DefaultMSS, cwnd: 1, ssthresh: 16, sndWnd: rcvWindow,
		delivery: cost,
		sndUna:   100, sndNxt: 100,
	}
	c.setState(StateSynSent)
	t.insertConn(key, c)
	t.mu.Unlock()
	if dialFault.Kind != faultinject.KindDrop {
		c.sendSeg(c.seg(FlagSYN, c.sndNxt, 0, nil))
	}
	c.sndNxt++
	c.armRetx()
	return c, nil
}

// Send queues payload for transmission.
func (c *Conn) Send(payload []byte) error {
	st := c.State()
	if c.closed || st != StateEstablished && st != StateCloseWait {
		if !c.closed && st == StateSynSent {
			// Queue until established.
			c.sendBuf = append(c.sendBuf, payload...)
			return nil
		}
		if c.closed || st == StateClosed {
			return fmt.Errorf("netstack: send: %w", ErrClosed)
		}
		return errors.New("netstack: send on non-established connection")
	}
	c.sendBuf = append(c.sendBuf, payload...)
	c.pump()
	return nil
}

// Close begins an orderly shutdown. A close before the handshake completed
// aborts the connection; if data was queued behind the SYN (Send in
// SYN_SENT) it is discarded and the loss is reported as an error wrapping
// ErrClosed — the bytes were never acknowledged, or even sent.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	switch c.State() {
	case StateEstablished:
		c.setState(StateFinWait1)
	case StateCloseWait:
		c.setState(StateLastAck)
	default:
		var err error
		if c.State() == StateSynSent && len(c.sendBuf) > 0 {
			err = fmt.Errorf("%w: %d queued bytes discarded before handshake completed",
				ErrClosed, len(c.sendBuf))
			c.sendBuf = nil
			c.setErr(err)
		}
		c.teardown() // cancels any armed retransmit timer
		return err
	}
	c.queueFIN()
	return nil
}

func (c *Conn) queueFIN() {
	// FIN rides after any queued data; represent as zero-data fin
	// segment appended once the buffer drains.
	c.pump()
	if len(c.sendBuf) == 0 {
		c.sendFIN()
	}
	// Otherwise pump() sends it once data drains (checked in onAck).
}

func (c *Conn) sendFIN() {
	c.sendSeg(c.seg(FlagFIN|FlagACK, c.sndNxt, c.rcvNxt, nil))
	c.inflight = append(c.inflight, segment{seq: c.sndNxt, fin: true})
	c.sndNxt++
	c.armRetx()
}

// pump sends as much buffered data as the congestion and peer windows
// allow.
func (c *Conn) pump() {
	st := c.State()
	if st != StateEstablished && st != StateCloseWait &&
		st != StateFinWait1 && st != StateLastAck {
		return
	}
	for len(c.sendBuf) > 0 {
		if c.sndWnd == 0 {
			// Peer advertised a zero window: pause, and let the
			// retransmission timer send persist probes (the peer owes us
			// no ACK that would reopen the window unprompted).
			c.armRetx()
			return
		}
		inFlightBytes := int(c.sndNxt - c.sndUna)
		windowBytes := c.cwnd * c.mss
		if windowBytes > c.sndWnd {
			windowBytes = c.sndWnd
		}
		if inFlightBytes >= windowBytes {
			return // window full; ACKs will re-pump
		}
		n := c.mss
		if n > len(c.sendBuf) {
			n = len(c.sendBuf)
		}
		if n > windowBytes-inFlightBytes {
			n = windowBytes - inFlightBytes
		}
		if n <= 0 {
			return
		}
		data := append([]byte(nil), c.sendBuf[:n]...)
		c.sendBuf = c.sendBuf[n:]
		c.sendSeg(c.seg(FlagACK, c.sndNxt, c.rcvNxt, data))
		c.inflight = append(c.inflight, segment{seq: c.sndNxt, data: data})
		c.sndNxt += uint32(n)
		c.armRetx()
	}
	if st := c.State(); (st == StateFinWait1 || st == StateLastAck) && len(c.sendBuf) == 0 && !c.finInflight() {
		c.sendFIN()
	}
}

func (c *Conn) finInflight() bool {
	for _, s := range c.inflight {
		if s.fin {
			return true
		}
	}
	return false
}

// seg allocates a pooled segment carrying this connection's receive window;
// payload (if any) is copied into the packet's own buffer.
func (c *Conn) seg(flags TCPFlags, seq, ack uint32, payload []byte) *Packet {
	p := AllocPacket()
	p.Flags, p.Seq, p.Ack, p.Window = flags, seq, ack, rcvWindow
	if len(payload) > 0 {
		p.SetPayload(payload)
	}
	return p
}

// sendSeg fills in addressing and transmits one segment, donating the
// packet to the stack.
func (c *Conn) sendSeg(p *Packet) {
	p.Src = c.tcp.stack.IP
	p.Dst = c.remote
	p.Proto = ProtoTCP
	p.SrcPort = c.localPort
	p.DstPort = c.remotePort
	p.TTL = 32
	_ = c.tcp.stack.SendIP(p)
}

// rto is the current retransmission timeout: the base doubled per
// consecutive unacknowledged retransmission, capped at retxBackoffCap
// doublings.
func (c *Conn) rto() sim.Duration {
	shift := c.retxAttempts
	if shift > retxBackoffCap {
		shift = retxBackoffCap
	}
	return retxTimeout << shift
}

func (c *Conn) armRetx() {
	if c.retxEv != nil && !c.retxEv.Cancelled() {
		return
	}
	c.retxEv = c.tcp.stack.engine.After(c.rto(), c.onRetxTimeout)
}

func (c *Conn) cancelRetx() {
	if c.retxEv != nil {
		c.retxEv.Cancel()
		c.retxEv = nil
	}
}

// lossBackoff is the response to a retransmission timeout: multiplicative
// decrease, back to slow start.
func (c *Conn) lossBackoff() {
	c.ssthresh = c.cwnd / 2
	if c.ssthresh < 1 {
		c.ssthresh = 1
	}
	c.cwnd = 1
	c.retransmits.Add(1)
}

// retxExhausted enforces the retransmission cap: past tcp.maxRetx
// consecutive unacknowledged retransmissions the connection fails with
// ErrTimedOut — teardown fires OnClose and removes it from the shard
// table. Reports true when the caller must stop retransmitting.
func (c *Conn) retxExhausted() bool {
	if c.retxAttempts < c.tcp.maxRetx {
		return false
	}
	c.tcp.timedOut.Add(1)
	c.setErr(ErrTimedOut)
	c.teardown()
	return true
}

func (c *Conn) onRetxTimeout() {
	c.retxEv = nil
	switch {
	case c.State() == StateSynSent:
		if c.retxExhausted() {
			return
		}
		c.retxAttempts++
		c.lossBackoff()
		c.sendSeg(c.seg(FlagSYN, c.sndUna, 0, nil))
		c.armRetx()
	case len(c.inflight) > 0:
		if c.retxExhausted() {
			return
		}
		c.retxAttempts++
		c.lossBackoff()
		s := c.inflight[0]
		flags := FlagACK
		if s.fin {
			flags |= FlagFIN
		}
		c.sendSeg(c.seg(flags, s.seq, c.rcvNxt, s.data))
		c.armRetx()
	case c.sndWnd == 0 && len(c.sendBuf) > 0 && c.State() != StateClosed:
		// Zero-window persist (RFC 1122 §4.2.2.17): the peer advertised
		// window 0 and will send nothing further on its own; probe with a
		// single byte to elicit an ACK carrying the reopened window.
		// Probes are deliberately uncapped — the peer is alive and ACKing,
		// just full — so they never trip the MaxRetx teardown.
		c.zeroWndProbes.Add(1)
		data := append([]byte(nil), c.sendBuf[:1]...)
		c.sendBuf = c.sendBuf[1:]
		c.sendSeg(c.seg(FlagACK, c.sndNxt, c.rcvNxt, data))
		c.inflight = append(c.inflight, segment{seq: c.sndNxt, data: data})
		c.sndNxt++
		c.armRetx()
	}
}

// rxCtx carries the per-batch receive context (see stack.go); deliver
// threads it down so the tracer and injector snapshot loads amortize across
// a drained batch.

// Deliver hands one TCP segment directly to the module, as if it had
// arrived addressed to this stack with lower layers already charged — the
// direct-drive entry point for tests and benchmarks (the C10M scaling
// experiment pushes a million handshakes through it without a wire). The
// packet is borrowed: Deliver does not release it.
func (t *TCP) Deliver(pkt *Packet) { t.deliver(t.stack.rxctx(), pkt) }

// deliver routes one inbound TCP segment, feeding the per-segment latency
// series when tracing is enabled.
func (t *TCP) deliver(ctx rxCtx, pkt *Packet) {
	f := ctx.inj.Fire("net.tcp.deliver")
	if f.Kind == faultinject.KindDrop || f.Kind == faultinject.KindError {
		return // injected segment loss; retransmission recovers
	}
	if ctx.tr != nil {
		start := t.stack.clock.Now()
		defer func() {
			ctx.tr.Observe("net.tcp.deliver", t.stack.clock.Now().Sub(start))
		}()
	}
	t.deliver1(pkt)
}

func (t *TCP) deliver1(pkt *Packet) {
	key := tcpKey(pkt.Src, pkt.SrcPort, pkt.DstPort)
	if c := t.lookup(key); c != nil {
		c.handle(pkt)
		return
	}
	switch {
	case pkt.Flags&FlagSYN != 0 && pkt.Flags&FlagACK == 0:
		// A SYN to a listening port records a compact half-open entry —
		// no *Conn until the final ACK proves the peer is real.
		if l := (*t.listeners.Load())[pkt.DstPort]; l != nil {
			t.onSyn(key, pkt)
			return
		}
	case pkt.Flags&FlagACK != 0:
		if e, ok := t.takeSyn(key); ok {
			if pkt.Ack == e.iss+1 {
				t.completeHandshake(key, e, pkt)
				return
			}
			// Wrong ACK for the half-open entry: the entry is consumed
			// (the peer is confused or hostile) and the segment falls
			// through to a reset.
		} else if c := t.lookup(key); c != nil {
			// Lost a materialization race: a concurrent delivery of the
			// same final ACK established the connection between our two
			// lookups.
			c.handle(pkt)
			return
		}
	}
	if pkt.Flags&FlagRST == 0 {
		t.reset(pkt)
	}
}

// onSyn records (or refreshes) the half-open entry for a SYN and answers
// with a SYN-ACK. A duplicate SYN — ours was lost, or the client
// retransmitted — resends the SYN-ACK with the original ISS.
func (t *TCP) onSyn(key connKey, pkt *Packet) {
	sh := t.synShardFor(key)
	sh.mu.Lock()
	e, dup := sh.m[key]
	if !dup {
		if len(sh.m) >= maxHalfOpenPerShard {
			t.evictSynLocked(sh)
		}
		e = synEntry{rcvNxt: pkt.Seq + 1, iss: serverISS, wnd: pkt.Window, at: t.stack.clock.Now()}
		sh.m[key] = e
	}
	sh.mu.Unlock()

	synack := AllocPacket()
	synack.Src, synack.Dst, synack.Proto = t.stack.IP, pkt.Src, ProtoTCP
	synack.SrcPort, synack.DstPort = pkt.DstPort, pkt.SrcPort
	synack.Flags, synack.Seq, synack.Ack, synack.Window = FlagSYN|FlagACK, e.iss, e.rcvNxt, rcvWindow
	synack.TTL = 32
	_ = t.stack.SendIP(synack)
}

// takeSyn removes and returns the half-open entry for key, if present.
func (t *TCP) takeSyn(key connKey) (synEntry, bool) {
	sh := t.synShardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.m[key]
	if ok {
		delete(sh.m, key)
	}
	return e, ok
}

// evictSynLocked makes room in a full half-open shard: entries past synTTL
// go first, then the oldest. Callers hold sh.mu.
func (t *TCP) evictSynLocked(sh *synShard) {
	now := t.stack.clock.Now()
	for k, e := range sh.m {
		if now.Sub(e.at) > synTTL {
			delete(sh.m, k)
			t.halfOpenEvicted.Add(1)
		}
	}
	if len(sh.m) < maxHalfOpenPerShard {
		return
	}
	var oldestKey connKey
	var oldestAt sim.Time
	first := true
	for k, e := range sh.m {
		if first || e.at < oldestAt {
			oldestKey, oldestAt, first = k, e.at, false
		}
	}
	if !first {
		delete(sh.m, oldestKey)
		t.halfOpenEvicted.Add(1)
	}
}

// completeHandshake materializes the connection for a half-open entry whose
// final ACK arrived — the first point a server-side *Conn exists. The
// accept callback is published on the Conn before it enters the connection
// table, so no concurrent delivery can reach a connection without it.
func (t *TCP) completeHandshake(key connKey, e synEntry, pkt *Packet) {
	l := (*t.listeners.Load())[pkt.DstPort]
	if l == nil {
		// Listener withdrawn between SYN and ACK.
		t.reset(pkt)
		return
	}
	c := &Conn{
		tcp:    t,
		remote: pkt.Src, localPort: pkt.DstPort, remotePort: pkt.SrcPort,
		mss: DefaultMSS, cwnd: 1, ssthresh: 16,
		sndWnd:   e.wnd,
		delivery: l.cost,
		sndUna:   e.iss + 1, sndNxt: e.iss + 1,
		rcvNxt:   e.rcvNxt,
		acceptCb: l.accept,
	}
	c.setState(StateEstablished)
	if !t.insertConn(key, c) {
		// A concurrent delivery of the same final ACK materialized the
		// connection first; hand the segment to the winner.
		if w := t.lookup(key); w != nil {
			w.handle(pkt)
		}
		return
	}
	t.accepted.Add(1)
	if c.acceptCb != nil {
		c.acceptCb(c)
	}
	if c.OnConnect != nil {
		c.OnConnect(c)
	}
	// The ACK may carry data or FIN; run it through the normal machine.
	c.handle(pkt)
}

// reset sends RST for an unexpected segment, in the two RFC 793 forms: a
// segment carrying an ACK is refuted with Seq = its ACK number; a segment
// without one (a bare SYN to a closed port) gets Seq 0 plus an ACK of
// everything it occupied, so the peer can match the RST to its send.
func (t *TCP) reset(pkt *Packet) {
	t.resets.Add(1)
	rst := AllocPacket()
	rst.Src, rst.Dst, rst.Proto = t.stack.IP, pkt.Src, ProtoTCP
	rst.SrcPort, rst.DstPort = pkt.DstPort, pkt.SrcPort
	rst.TTL = 32
	if pkt.Flags&FlagACK != 0 {
		rst.Flags = FlagRST
		rst.Seq = pkt.Ack
	} else {
		seglen := uint32(len(pkt.Payload))
		if pkt.Flags&FlagSYN != 0 {
			seglen++
		}
		if pkt.Flags&FlagFIN != 0 {
			seglen++
		}
		rst.Flags = FlagRST | FlagACK
		rst.Seq = 0
		rst.Ack = pkt.Seq + seglen
	}
	_ = t.stack.SendIP(rst)
}

// handle runs the per-connection state machine for one segment.
func (c *Conn) handle(pkt *Packet) {
	c.delivery(c.tcp.stack.clock, pkt)
	if pkt.Flags&FlagRST != 0 {
		c.teardown()
		return
	}
	// The advertised window is taken at face value — including zero. A
	// zero window pauses pump(), and the persist probe in onRetxTimeout
	// keeps testing for it to reopen.
	c.sndWnd = pkt.Window
	if c.State() == StateSynSent {
		if pkt.Flags&(FlagSYN|FlagACK) == FlagSYN|FlagACK && pkt.Ack == c.sndNxt {
			c.sndUna = pkt.Ack
			c.rcvNxt = pkt.Seq + 1
			c.setState(StateEstablished)
			c.retxAttempts = 0
			c.cancelRetx()
			c.sendSeg(c.seg(FlagACK, c.sndNxt, c.rcvNxt, nil))
			if c.OnConnect != nil {
				c.OnConnect(c)
			}
			c.pump()
		}
		return
	}

	if pkt.Flags&FlagACK != 0 {
		c.onAck(pkt.Ack)
	}
	if len(pkt.Payload) > 0 {
		c.onData(pkt)
	}
	if pkt.Flags&FlagFIN != 0 {
		c.onFIN(pkt)
	}
}

func (c *Conn) onAck(ack uint32) {
	if int32(ack-c.sndUna) <= 0 {
		return // duplicate/old
	}
	c.sndUna = ack
	// Forward progress: the peer is alive, so the retransmission backoff
	// and cap restart from scratch for whatever is still outstanding.
	c.retxAttempts = 0
	// Drop fully acknowledged segments.
	keep := c.inflight[:0]
	finAcked := false
	for _, s := range c.inflight {
		end := s.seq + uint32(len(s.data))
		if s.fin {
			end = s.seq + 1
		}
		if int32(end-ack) <= 0 {
			if s.fin {
				finAcked = true
			}
			// Congestion window growth per ACKed segment: slow
			// start below ssthresh, then linear.
			if c.cwnd < c.ssthresh {
				c.cwnd++
			} else if c.cwnd < 128 {
				c.cwnd++ // coarse linear growth per window-full
			}
			continue
		}
		keep = append(keep, s)
	}
	c.inflight = keep
	if len(c.inflight) == 0 {
		c.cancelRetx()
	}
	if finAcked {
		switch c.State() {
		case StateFinWait1:
			c.setState(StateFinWait2)
		case StateLastAck:
			c.teardown()
			return
		}
	}
	c.pump()
}

func (c *Conn) onData(pkt *Packet) {
	if pkt.Seq != c.rcvNxt {
		// Out of order: re-ACK what we have; sender retransmits.
		c.sendSeg(c.seg(FlagACK, c.sndNxt, c.rcvNxt, nil))
		return
	}
	c.rcvNxt += uint32(len(pkt.Payload))
	if c.OnData != nil {
		c.OnData(c, pkt.Payload)
	}
	c.sendSeg(c.seg(FlagACK, c.sndNxt, c.rcvNxt, nil))
}

func (c *Conn) onFIN(pkt *Packet) {
	c.rcvNxt = pkt.Seq + uint32(len(pkt.Payload)) + 1
	c.peerClosed = true
	c.sendSeg(c.seg(FlagACK, c.sndNxt, c.rcvNxt, nil))
	switch c.State() {
	case StateEstablished:
		c.setState(StateCloseWait)
	case StateFinWait1:
		// Simultaneous close; treat as FIN_WAIT_2 -> TIME_WAIT.
		c.setState(StateTimeWait)
		c.startTimeWait()
	case StateFinWait2:
		c.setState(StateTimeWait)
		c.startTimeWait()
	}
	if c.OnClose != nil && c.State() == StateCloseWait {
		c.OnClose(c)
	}
}

func (c *Conn) startTimeWait() {
	c.tcp.stack.engine.After(timeWaitDelay, func() {
		c.teardown()
	})
}

// teardown removes the connection from its shard.
func (c *Conn) teardown() {
	if c.State() == StateClosed {
		return
	}
	c.cancelRetx()
	prev := c.State()
	c.setState(StateClosed)
	c.tcp.removeConn(tcpKey(c.remote, c.remotePort, c.localPort))
	if c.OnClose != nil && prev != StateCloseWait {
		c.OnClose(c)
	}
}

// SetMaxRetx overrides the retransmission cap for connections created
// after the call (tests shorten it; 0 or negative restores the default).
func (t *TCP) SetMaxRetx(n int) {
	if n <= 0 {
		n = DefaultMaxRetx
	}
	t.maxRetx = n
}

// Conns reports the number of live connections: the sum of the per-shard
// counters, exact under concurrent setup/teardown.
func (t *TCP) Conns() int {
	var n int64
	for i := range t.shards {
		n += t.shards[i].n.Load()
	}
	return int(n)
}

// TCPStats is a point-in-time summary of the TCP module.
type TCPStats struct {
	Conns           int   // connections in the shard table
	HalfOpen        int   // half-open entries awaiting their final ACK
	HalfOpenEvicted int64 // half-open entries dropped by the bounded table
	Accepted        int64 // server-side connections materialized by a final ACK
	Resets          int64 // RSTs sent for unexpected segments
	TimedOut        int64 // connections torn down by the retransmission cap
}

// Stats snapshots the module counters.
func (t *TCP) Stats() TCPStats {
	st := TCPStats{
		Conns:           t.Conns(),
		HalfOpenEvicted: t.halfOpenEvicted.Load(),
		Accepted:        t.accepted.Load(),
		Resets:          t.resets.Load(),
		TimedOut:        t.timedOut.Load(),
	}
	for i := range t.syn {
		sh := &t.syn[i]
		sh.mu.Lock()
		st.HalfOpen += len(sh.m)
		sh.mu.Unlock()
	}
	return st
}
