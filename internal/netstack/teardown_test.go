package netstack

import (
	"testing"

	"spin/internal/faultinject"
	"spin/internal/sal"
	"spin/internal/sim"
)

// Owner-tagged endpoint teardown and RX fault containment: the netstack
// half of crash-only domain destruction.

func TestUnbindOwnerReleasesPorts(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	delivered := 0
	_ = b.stack.UDP().BindOwned("ext", 100, InKernelDelivery, func(*Packet) { delivered++ })
	_ = b.stack.UDP().BindOwned("ext", 101, InKernelDelivery, func(*Packet) { delivered++ })
	_ = b.stack.UDP().Bind(102, InKernelDelivery, func(*Packet) { delivered++ })
	if n := b.stack.UDP().UnbindOwner("ext"); n != 2 {
		t.Fatalf("UnbindOwner = %d, want 2", n)
	}
	for _, port := range []uint16{100, 101, 102} {
		_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), port, []byte("x"))
	}
	cl.Run(0)
	if delivered != 1 {
		t.Errorf("%d datagrams delivered, want 1 (only the unowned binding survives)", delivered)
	}
	// The freed port is immediately rebindable; a repeat sweep finds nothing.
	if err := b.stack.UDP().Bind(100, InKernelDelivery, func(*Packet) {}); err != nil {
		t.Errorf("port not rebindable after UnbindOwner: %v", err)
	}
	if n := b.stack.UDP().UnbindOwner("ext"); n != 0 {
		t.Errorf("second UnbindOwner = %d, want 0", n)
	}
}

func TestUnlistenOwnerReleasesPorts(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	_ = b.stack.TCP().ListenOwned("ext", 80, nil, func(*Conn) {})
	_ = b.stack.TCP().ListenOwned("ext", 81, nil, func(*Conn) {})
	accepted := false
	_ = b.stack.TCP().Listen(82, nil, func(*Conn) { accepted = true })
	if n := b.stack.TCP().UnlistenOwner("ext"); n != 2 {
		t.Fatalf("UnlistenOwner = %d, want 2", n)
	}
	if err := b.stack.TCP().ListenOwned("ext2", 80, nil, func(*Conn) {}); err != nil {
		t.Errorf("port not relistenable after UnlistenOwner: %v", err)
	}
	// The surviving listener still accepts.
	if _, err := a.stack.TCP().Connect(Addr(10, 0, 0, 2), 82, nil); err != nil {
		t.Fatal(err)
	}
	if !cl.RunUntil(func() bool { return accepted }, sim.Time(10*sim.Second)) {
		t.Error("unowned listener no longer accepting after owner sweep")
	}
}

func TestDetachNIC(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	got := 0
	_ = b.stack.UDP().Bind(9, InKernelDelivery, func(*Packet) { got++ })
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, []byte("x"))
	cl.Run(0)
	if got != 1 {
		t.Fatalf("delivery before detach = %d", got)
	}
	if !b.stack.Detach(b.nic) {
		t.Fatal("Detach reported NIC not attached")
	}
	if b.stack.Detach(b.nic) {
		t.Error("second Detach found the NIC still attached")
	}
	if b.stack.Detach(nil) {
		t.Error("Detach(nil) = true")
	}
	// Traffic to the detached stack goes nowhere; the sender must not
	// crash and the receiver count must not move.
	_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, []byte("x"))
	cl.Run(0)
	if got != 1 {
		t.Errorf("delivery after detach = %d, want still 1", got)
	}
	if b.stack.InjectRX(0, &Packet{Dst: Addr(10, 0, 0, 2)}) {
		t.Error("InjectRX on a detached queue index succeeded")
	}
}

func TestRXPanicContained(t *testing.T) {
	a, b, cl := pair(t, sal.LanceModel)
	inj := faultinject.New(7, b.eng.Clock)
	b.disp.SetInjector(inj)
	inj.Arm(faultinject.Rule{Site: "net.rx", Kind: faultinject.KindPanic, MaxFires: 2})
	got := 0
	_ = b.stack.UDP().Bind(9, InKernelDelivery, func(*Packet) { got++ })
	for i := 0; i < 5; i++ {
		_ = a.stack.UDP().Send(1, Addr(10, 0, 0, 2), 9, []byte("x"))
		cl.Run(0)
	}
	if n := b.stack.RXPanics(); n != 2 {
		t.Errorf("RXPanics = %d, want the 2 injected", n)
	}
	if got != 3 {
		t.Errorf("%d datagrams delivered, want 3 (2 lost to contained panics)", got)
	}
}
