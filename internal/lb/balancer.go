package lb

import (
	"fmt"
	"sync/atomic"

	"spin/internal/netdbg"
	"spin/internal/netstack"
	"spin/internal/sim"
)

// Config tunes a Balancer.
type Config struct {
	// Seed drives vnode placement, probe jitter and request keys; fixed
	// seed, fixed routing.
	Seed uint64
	// Vnodes per member (default DefaultVnodes).
	Vnodes int
	// Breaker tunes every backend's circuit breaker.
	Breaker BreakerConfig
	// HealthInterval spaces active probes per backend (default 250ms
	// virtual; jittered by up to 1/8 so a fleet's probes don't
	// self-synchronize).
	HealthInterval sim.Duration
	// HealthTimeout bounds one probe's connect (default 100ms virtual).
	HealthTimeout sim.Duration
	// Port is the backend service port dialed by probes and the
	// ResilientDialer (default 80).
	Port uint16
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * sim.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 100 * sim.Millisecond
	}
	if c.Port == 0 {
		c.Port = 80
	}
	return c
}

// backend is one named service replica and its local health state.
type backend struct {
	name    string // ring member name
	host    string // DNS name probes and dials resolve
	breaker *Breaker

	probeTimer *sim.Event

	picks         atomic.Int64
	successes     atomic.Int64
	failures      atomic.Int64
	probes        atomic.Int64
	probeFailures atomic.Int64
}

// Balancer ties the ring to per-backend breakers: passive outlier
// detection (ReportFailure from the dialer) and active health checks both
// feed the breakers, and every breaker transition rebuilds the ring so
// only closed (healthy) backends receive traffic. All methods that mutate
// state must run in engine context (inside an engine callback, or under
// the socket Driver's lock via Driver.Run).
type Balancer struct {
	stack    *netstack.Stack
	resolver *netstack.Resolver
	engine   *sim.Engine
	clock    *sim.Clock
	cfg      Config
	rand     *sim.Rand

	ring     *Ring
	order    []string
	backends map[string]*backend

	healthOn bool

	ejections atomic.Int64
	// lastEjectAt / lastRejoinAt track ring convergence times for the
	// failover experiments (virtual ns as atomics for cross-goroutine
	// reads).
	lastEjectAt  atomic.Int64
	lastRejoinAt atomic.Int64
}

// NewBalancer builds a balancer on the client machine's stack and
// resolver. backends maps ring member names to the DNS hosts they dial
// (use AddBackend for the common name==host case). The ring starts with
// every backend in.
func NewBalancer(stack *netstack.Stack, resolver *netstack.Resolver, cfg Config) *Balancer {
	cfg = cfg.withDefaults()
	b := &Balancer{
		stack:    stack,
		resolver: resolver,
		engine:   stack.Engine(),
		clock:    stack.Clock(),
		cfg:      cfg,
		rand:     sim.NewRand(cfg.Seed ^ 0x1ba1a9ce4),
		ring:     NewRing(cfg.Seed, cfg.Vnodes),
		backends: make(map[string]*backend),
	}
	return b
}

// AddBackend registers a replica: name joins the ring, host (a DNS name;
// name itself if empty) is what probes and the dialer resolve.
func (b *Balancer) AddBackend(name, host string) {
	if host == "" {
		host = name
	}
	be := &backend{name: name, host: host}
	be.breaker = NewBreaker(b.engine, b.cfg.Breaker)
	be.breaker.onChange = func(from, to BreakerState) { b.onBreaker(be, from, to) }
	b.backends[name] = be
	b.order = append(b.order, name)
	b.rebuild()
}

// Port is the backend service port the balancer targets.
func (b *Balancer) Port() uint16 { return b.cfg.Port }

// Host returns the DNS name dialed for a ring member ("" if unknown).
func (b *Balancer) Host(name string) string {
	if be := b.backends[name]; be != nil {
		return be.host
	}
	return ""
}

// Members returns the ring's current (healthy) membership, sorted.
func (b *Balancer) Members() []string { return b.ring.Members() }

// Pick routes key to a healthy backend ("" when every breaker is open).
func (b *Balancer) Pick(key uint64) string {
	name := b.ring.Pick(key)
	if be := b.backends[name]; be != nil {
		be.picks.Add(1)
	}
	return name
}

// Sequence fills buf with key's failover order over healthy backends and
// returns the count (see Ring.Sequence). The first entry counts as a pick.
func (b *Balancer) Sequence(key uint64, buf []string) int {
	n := b.ring.Sequence(key, buf)
	if n > 0 {
		if be := b.backends[buf[0]]; be != nil {
			be.picks.Add(1)
		}
	}
	return n
}

// ReportSuccess feeds passive outlier detection: a request to name
// completed. Engine context.
func (b *Balancer) ReportSuccess(name string) {
	if be := b.backends[name]; be != nil {
		be.successes.Add(1)
		be.breaker.Success()
	}
}

// ReportFailure feeds passive outlier detection: a request to name failed
// (dial timeout, reset, withdrawn name). Engine context.
func (b *Balancer) ReportFailure(name string) {
	if be := b.backends[name]; be != nil {
		be.failures.Add(1)
		be.breaker.Fail()
	}
}

// Eject opens name's breaker immediately (e.g. on an authoritative
// withdrawal notice). Engine context.
func (b *Balancer) Eject(name string) {
	if be := b.backends[name]; be != nil {
		be.breaker.ForceOpen()
	}
}

// onBreaker reacts to a breaker transition: entering or leaving the open
// state changes ring membership. Half-open stays out of the ring — only
// probe traffic (active health checks) tests a recovering backend.
func (b *Balancer) onBreaker(be *backend, from, to BreakerState) {
	now := int64(b.clock.Now())
	if to == BreakerOpen {
		b.ejections.Add(1)
		b.lastEjectAt.Store(now)
	}
	if to == BreakerClosed && from != BreakerClosed {
		b.lastRejoinAt.Store(now)
	}
	b.rebuild()
}

// rebuild recomputes ring membership from breaker states.
func (b *Balancer) rebuild() {
	members := make([]string, 0, len(b.order))
	for _, name := range b.order {
		if b.backends[name].breaker.State() == BreakerClosed {
			members = append(members, name)
		}
	}
	b.ring.SetMembers(members)
}

// Ejections counts breaker openings across all backends.
func (b *Balancer) Ejections() int64 { return b.ejections.Load() }

// LastEjectAt is the virtual time of the most recent ejection (ring
// shrink); zero if none. Safe from any goroutine.
func (b *Balancer) LastEjectAt() sim.Time { return sim.Time(b.lastEjectAt.Load()) }

// LastRejoinAt is the virtual time of the most recent breaker re-close
// (ring regrow); zero if none. Safe from any goroutine.
func (b *Balancer) LastRejoinAt() sim.Time { return sim.Time(b.lastRejoinAt.Load()) }

// Successes returns backend name's successful-request count (the
// determinism experiments compare per-backend service counts).
func (b *Balancer) Successes(name string) int64 {
	if be := b.backends[name]; be != nil {
		return be.successes.Load()
	}
	return 0
}

// StartHealth arms the active health checker: each backend is probed
// (resolve + TCP connect, over the real virtual network) every
// HealthInterval plus seeded jitter; results feed its breaker, so a dead
// backend is ejected even with no client traffic, and a recovered one
// closes its half-open breaker. Engine context.
func (b *Balancer) StartHealth() {
	if b.healthOn {
		return
	}
	b.healthOn = true
	for i, name := range b.order {
		be := b.backends[name]
		// Stagger the first round so N backends aren't probed at one
		// instant.
		first := b.cfg.HealthInterval * sim.Duration(i+1) / sim.Duration(len(b.order)+1)
		be.probeTimer = b.engine.After(first+b.jitter(), func() { b.probe(be) })
	}
}

// StopHealth cancels probe timers and breaker timers so the engine queue
// can drain (call before Driver.Drain).
func (b *Balancer) StopHealth() {
	b.healthOn = false
	for _, name := range b.order {
		be := b.backends[name]
		if be.probeTimer != nil {
			be.probeTimer.Cancel()
			be.probeTimer = nil
		}
		be.breaker.Stop()
	}
}

// jitter returns up to HealthInterval/8 of seeded jitter.
func (b *Balancer) jitter() sim.Duration {
	return sim.Duration(b.rand.Uint64() % uint64(b.cfg.HealthInterval/8+1))
}

// probe runs one active health check against be and reschedules.
func (b *Balancer) probe(be *backend) {
	be.probeTimer = nil
	if !b.healthOn {
		return
	}
	be.probes.Add(1)
	done := false
	finish := func(ok bool) {
		if done {
			return
		}
		done = true
		if ok {
			be.breaker.Success()
		} else {
			be.probeFailures.Add(1)
			be.breaker.Fail()
		}
		if b.healthOn {
			be.probeTimer = b.engine.After(b.cfg.HealthInterval+b.jitter(), func() { b.probe(be) })
		}
	}
	b.resolver.LookupA(be.host, func(addrs []netstack.IPAddr, err error) {
		if done {
			return
		}
		if err != nil || len(addrs) == 0 {
			finish(false)
			return
		}
		conn, err := b.stack.TCP().Connect(addrs[0], b.cfg.Port, nil)
		if err != nil {
			finish(false)
			return
		}
		timeout := b.engine.After(b.cfg.HealthTimeout, func() {
			if !done {
				finish(false)
				_ = conn.Close()
			}
		})
		conn.OnConnect = func(c *netstack.Conn) {
			timeout.Cancel()
			finish(true)
			_ = c.Close()
		}
		conn.OnClose = func(*netstack.Conn) {
			timeout.Cancel()
			finish(false)
		}
	})
}

// Report snapshots the balancer for the netdbg "lb" command and
// spin-httpd's /debug/lb. Safe from engine context; counters are atomics.
func (b *Balancer) Report() netdbg.LBReport {
	r := netdbg.LBReport{
		Members:   b.ring.Members(),
		Ejections: b.ejections.Load(),
	}
	for _, name := range b.order {
		be := b.backends[name]
		r.Backends = append(r.Backends, netdbg.LBBackend{
			Name:          name,
			Host:          be.host,
			State:         be.breaker.State().String(),
			Picks:         be.picks.Load(),
			Successes:     be.successes.Load(),
			Failures:      be.failures.Load(),
			Probes:        be.probes.Load(),
			ProbeFailures: be.probeFailures.Load(),
			Ejections:     be.breaker.Ejections(),
		})
	}
	return r
}

// String renders a one-line summary (debug logging).
func (b *Balancer) String() string {
	return fmt.Sprintf("lb: %d/%d backends in ring, %d ejections",
		len(b.ring.Members()), len(b.order), b.ejections.Load())
}
