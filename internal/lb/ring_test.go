package lb

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("b%d", i)
	}
	return names
}

// Same seed, same members => identical routing; a different seed moves it.
func TestRingDeterministicSeeded(t *testing.T) {
	a := NewRing(42, 0)
	b := NewRing(42, 0)
	c := NewRing(43, 0)
	for _, r := range []*Ring{a, b, c} {
		r.SetMembers(ringMembers(5))
	}
	diverged := false
	for k := uint64(0); k < 1000; k++ {
		key := mix64(k)
		if a.Pick(key) != b.Pick(key) {
			t.Fatalf("same seed diverged at key %d", k)
		}
		if a.Pick(key) != c.Pick(key) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("seeds 42 and 43 route 1000 keys identically (seed ignored?)")
	}
}

// Every member owns a reasonable share of the keyspace.
func TestRingDistribution(t *testing.T) {
	r := NewRing(7, 0)
	r.SetMembers(ringMembers(5))
	counts := make(map[string]int)
	const keys = 10000
	for k := 0; k < keys; k++ {
		counts[r.Pick(mix64(uint64(k)))]++
	}
	for _, m := range ringMembers(5) {
		share := float64(counts[m]) / keys
		if share < 0.08 || share > 0.40 {
			t.Errorf("member %s owns %.1f%% of the keyspace, want roughly 20%%", m, share*100)
		}
	}
}

// Consistent hashing's point: removing one member remaps only that
// member's keys; everyone else's routing is untouched.
func TestRingMinimalDisruption(t *testing.T) {
	r := NewRing(11, 0)
	r.SetMembers(ringMembers(5))
	const keys = 5000
	before := make([]string, keys)
	for k := 0; k < keys; k++ {
		before[k] = r.Pick(mix64(uint64(k)))
	}
	r.SetMembers(ringMembers(5)[:4]) // drop b4
	moved := 0
	for k := 0; k < keys; k++ {
		after := r.Pick(mix64(uint64(k)))
		if before[k] == "b4" {
			if after == "b4" {
				t.Fatalf("key %d still routes to the removed member", k)
			}
			continue
		}
		if after != before[k] {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed member changed owner (want 0: consistent hashing)", moved)
	}
}

// Sequence yields every member exactly once, starting with Pick's answer.
func TestRingSequence(t *testing.T) {
	r := NewRing(3, 0)
	r.SetMembers(ringMembers(4))
	var buf [8]string
	for k := uint64(0); k < 200; k++ {
		key := mix64(k)
		n := r.Sequence(key, buf[:])
		if n != 4 {
			t.Fatalf("Sequence returned %d members, want 4", n)
		}
		if buf[0] != r.Pick(key) {
			t.Fatalf("Sequence[0] = %s, Pick = %s", buf[0], r.Pick(key))
		}
		seen := make(map[string]bool)
		for i := 0; i < n; i++ {
			if seen[buf[i]] {
				t.Fatalf("duplicate %s in sequence", buf[i])
			}
			seen[buf[i]] = true
		}
	}
	// Empty ring and empty buffer degrade to zero.
	r.SetMembers(nil)
	if r.Pick(1) != "" || r.Sequence(1, buf[:]) != 0 {
		t.Error("empty ring must Pick nothing")
	}
}

// The hot path allocates nothing.
func TestRingPickAllocFree(t *testing.T) {
	r := NewRing(9, 0)
	r.SetMembers(ringMembers(10))
	var buf [4]string
	key := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		key++
		_ = r.Pick(mix64(key))
		_ = r.Sequence(mix64(key), buf[:])
	})
	if allocs != 0 {
		t.Errorf("Pick+Sequence allocate %.1f/op, want 0", allocs)
	}
}

// BenchmarkLBPick gates the selection hot path: allocation-free, a few
// dozen ns. bench_smoke.sh records lb-pick-ns and fails CI on regression.
func BenchmarkLBPick(b *testing.B) {
	r := NewRing(9, 0)
	r.SetMembers(ringMembers(10))
	b.ReportAllocs()
	b.ResetTimer()
	var sink string
	for i := 0; i < b.N; i++ {
		sink = r.Pick(mix64(uint64(i)))
	}
	_ = sink
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "lb-pick-ns")
}
