package lb

import (
	"sync/atomic"

	"spin/internal/sim"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// Breaker states: Closed passes traffic, Open rejects it, HalfOpen admits
// probe traffic to test recovery.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "?"
}

// BreakerConfig tunes one circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures open the breaker
	// (default 3).
	FailureThreshold int
	// OpenTimeout is how long an open breaker rejects before admitting a
	// half-open probe (default 2s virtual).
	OpenTimeout sim.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 2 * sim.Second
	}
	return c
}

// Breaker is one backend's circuit breaker: closed → (threshold consecutive
// failures) → open → (OpenTimeout, on a virtual-time engine timer) →
// half-open → one probe success closes it, one probe failure re-opens it.
// Mutations happen only in engine context; the state itself is an atomic so
// observability renderers on other goroutines read it safely.
type Breaker struct {
	engine *sim.Engine
	cfg    BreakerConfig

	state    atomic.Int32
	failures int // consecutive, in the closed state
	timer    *sim.Event

	ejections atomic.Int64 // closed/half-open -> open transitions

	// onChange, when set, observes every state transition (the Balancer
	// uses it to rebuild the ring). Runs in engine context.
	onChange func(from, to BreakerState)
}

// NewBreaker builds a closed breaker whose open timer runs on engine.
func NewBreaker(engine *sim.Engine, cfg BreakerConfig) *Breaker {
	return &Breaker{engine: engine, cfg: cfg.withDefaults()}
}

// State reads the breaker's position (safe from any goroutine).
func (b *Breaker) State() BreakerState { return BreakerState(b.state.Load()) }

// Ejections counts how many times the breaker has opened.
func (b *Breaker) Ejections() int64 { return b.ejections.Load() }

// Allow reports whether a request may be sent through this breaker: closed
// and half-open pass (half-open traffic IS the probe), open rejects.
func (b *Breaker) Allow() bool { return b.State() != BreakerOpen }

// Success records a successful request: closed resets the failure streak,
// half-open closes the breaker (the probe proved recovery).
func (b *Breaker) Success() {
	switch b.State() {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		b.transition(BreakerClosed)
	}
}

// Fail records a failed request: a closed breaker opens at the threshold,
// a half-open breaker re-opens immediately (the probe failed).
func (b *Breaker) Fail() {
	switch b.State() {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.open()
		}
	case BreakerHalfOpen:
		b.open()
	}
}

// ForceOpen ejects the backend immediately (e.g. its name was withdrawn),
// skipping the failure threshold.
func (b *Breaker) ForceOpen() {
	if b.State() != BreakerOpen {
		b.open()
	}
}

func (b *Breaker) open() {
	b.ejections.Add(1)
	b.transition(BreakerOpen)
	b.timer = b.engine.After(b.cfg.OpenTimeout, func() {
		b.timer = nil
		if b.State() == BreakerOpen {
			b.transition(BreakerHalfOpen)
		}
	})
}

// Stop cancels the pending open timer (teardown before draining).
func (b *Breaker) Stop() {
	if b.timer != nil {
		b.timer.Cancel()
		b.timer = nil
	}
}

func (b *Breaker) transition(to BreakerState) {
	from := BreakerState(b.state.Load())
	if from == to {
		return
	}
	b.failures = 0
	b.state.Store(int32(to))
	if b.onChange != nil {
		b.onChange(from, to)
	}
}
