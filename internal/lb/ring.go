// Package lb is the resilient service-discovery and load-balancing layer:
// a consistent-hash ring over named backends, active health checks probing
// each backend over the (virtual) network, passive outlier detection
// feeding per-backend circuit breakers, and a ResilientDialer that wraps
// the socket layer's Dialer with per-attempt timeouts, capped
// exponential backoff with seeded jitter, a retry budget, and
// next-backend failover.
//
// Everything runs in virtual time on the owning machine's engine: probe
// intervals, breaker open timers, and backoff sleeps are engine events, and
// every probabilistic choice (vnode placement, jitter, request keys) comes
// from seeded generators — so a topology run that includes a balancer
// replays byte-identically, failures included.
//
// Concurrency discipline: Balancer and Breaker mutate state only in engine
// context (inside engine callbacks, or under the netstack.Driver lock via
// Driver.Run). Breaker states are additionally published through atomics so
// report renderers on other goroutines read safely.
package lb

import (
	"sort"
	"sync/atomic"
)

// ringPoint is one vnode on the ring: a hash position owned by a backend
// (an index into ringState.members).
type ringPoint struct {
	hash    uint64
	backend int32
}

// ringState is one immutable ring snapshot: vnode points sorted by hash,
// plus the member names they index.
type ringState struct {
	points  []ringPoint
	members []string
}

// Ring is a seeded consistent-hash ring. Membership changes rebuild an
// immutable snapshot behind an atomic pointer (the dispatcher's
// copy-on-write discipline), so Pick on the hot path is a lock-free load
// plus a binary search — no locks, no allocation.
type Ring struct {
	seed   uint64
	vnodes int
	state  atomic.Pointer[ringState]
}

// DefaultVnodes is the per-member vnode count: enough that removing one of
// a handful of backends moves only its own ~1/N share of the keyspace.
const DefaultVnodes = 64

// NewRing builds an empty ring. Vnode positions are a pure function of
// (seed, member name, vnode index), so two rings with the same seed and
// members route identically.
func NewRing(seed uint64, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{seed: seed, vnodes: vnodes}
	r.state.Store(&ringState{})
	return r
}

// mix64 is the splitmix64 finalizer (the repo's standard hash mixer).
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashString folds a name into 64 bits (FNV-1a).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// SetMembers rebuilds the ring around the given member set (order
// irrelevant; names are sorted internally so the snapshot is canonical).
func (r *Ring) SetMembers(names []string) {
	members := append([]string(nil), names...)
	sort.Strings(members)
	st := &ringState{
		members: members,
		points:  make([]ringPoint, 0, len(members)*r.vnodes),
	}
	for i, name := range members {
		base := mix64(r.seed ^ hashString(name))
		for v := 0; v < r.vnodes; v++ {
			st.points = append(st.points, ringPoint{
				hash:    mix64(base ^ uint64(v)*0x9E3779B97F4A7C15),
				backend: int32(i),
			})
		}
	}
	sort.Slice(st.points, func(a, b int) bool { return st.points[a].hash < st.points[b].hash })
	r.state.Store(st)
}

// Members returns the current member names, sorted (the snapshot's own
// slice; callers must not mutate it).
func (r *Ring) Members() []string { return r.state.Load().members }

// pickIdx finds the index of the first vnode at or clockwise of key.
func (st *ringState) pickIdx(key uint64) int {
	pts := st.points
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid].hash < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(pts) {
		return 0 // wrap
	}
	return lo
}

// Pick routes key to a member: the owner of the first vnode clockwise of
// the key. Allocation-free; returns "" on an empty ring.
func (r *Ring) Pick(key uint64) string {
	st := r.state.Load()
	if len(st.points) == 0 {
		return ""
	}
	return st.members[st.points[st.pickIdx(key)].backend]
}

// Sequence fills buf with the distinct members encountered walking the
// ring clockwise from key — the failover order for that key (the first
// entry is Pick's answer). It returns how many it wrote (min of ring size
// and len(buf)); allocation-free.
func (r *Ring) Sequence(key uint64, buf []string) int {
	st := r.state.Load()
	if len(st.points) == 0 || len(buf) == 0 {
		return 0
	}
	n := 0
	start := st.pickIdx(key)
	for i := 0; i < len(st.points) && n < len(buf) && n < len(st.members); i++ {
		name := st.members[st.points[(start+i)%len(st.points)].backend]
		dup := false
		for j := 0; j < n; j++ {
			if buf[j] == name {
				dup = true
				break
			}
		}
		if !dup {
			buf[n] = name
			n++
		}
	}
	return n
}
