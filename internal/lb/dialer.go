package lb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"strconv"
	"sync/atomic"

	"spin/internal/netdbg"
	"spin/internal/netstack"
	"spin/internal/sim"
)

// RetryPolicy tunes the ResilientDialer's failure handling.
type RetryPolicy struct {
	// MaxAttempts bounds dials per request, first try included (default 3).
	MaxAttempts int
	// AttemptTimeout caps each dial attempt in virtual time (default 1s).
	AttemptTimeout sim.Duration
	// BaseBackoff is the sleep before the first retry; each further retry
	// doubles it (default 20ms virtual).
	BaseBackoff sim.Duration
	// MaxBackoff caps the exponential backoff (default 500ms virtual).
	MaxBackoff sim.Duration
	// BudgetRatio is the fraction of a retry token each request earns
	// (default 0.1: at most one retry per ten requests in steady state, so
	// retries cannot amplify an outage into a storm).
	BudgetRatio float64
	// BudgetCap bounds accumulated tokens (default 10).
	BudgetCap float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.AttemptTimeout <= 0 {
		p.AttemptTimeout = sim.Second
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 20 * sim.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 500 * sim.Millisecond
	}
	if p.BudgetRatio <= 0 {
		p.BudgetRatio = 0.1
	}
	if p.BudgetCap <= 0 {
		p.BudgetCap = 10
	}
	return p
}

// maxFailoverCandidates bounds the per-dial candidate walk.
const maxFailoverCandidates = 16

// ResilientDialer wraps the socket layer's Dialer with ring-based backend
// selection, per-attempt timeouts, capped exponential backoff with seeded
// jitter, a token-bucket retry budget, and next-backend failover.
//
// Its DialContext ignores the address host (the ring picks the backend)
// but keeps the port, so an unmodified net/http client pointed at a
// service name ("http://app.spin.test/") fans out across replicas. Like
// the wrapped Dialer, it must be driven from blocking goroutines — one at
// a time for byte-identical replay.
type ResilientDialer struct {
	bal    *Balancer
	s      *netstack.Sockets
	inner  *netstack.Dialer
	policy RetryPolicy
	rand   *sim.Rand

	// budgetBits is the retry token bucket (a float64 via math.Float64bits):
	// mutated only under the driver lock, readable lock-free by reports.
	budgetBits atomic.Uint64
	reqSeq     uint64

	requests     atomic.Int64
	attempts     atomic.Int64
	retries      atomic.Int64
	failovers    atomic.Int64
	budgetSpent  atomic.Int64
	budgetDenied atomic.Int64
}

// NewResilientDialer wraps a machine's socket layer with balancer-driven
// failover. seed drives request keys and backoff jitter.
func NewResilientDialer(s *netstack.Sockets, bal *Balancer, policy RetryPolicy, seed uint64) *ResilientDialer {
	policy = policy.withDefaults()
	inner := s.Dialer()
	inner.Timeout = policy.AttemptTimeout
	rd := &ResilientDialer{
		bal:    bal,
		s:      s,
		inner:  inner,
		policy: policy,
		rand:   sim.NewRand(seed ^ 0x5e111e27),
	}
	rd.setBudget(policy.BudgetCap / 2) // start half-full: early failures may retry
	return rd
}

// budget / setBudget access the token bucket (float64 behind an atomic;
// writers hold the driver lock, readers may be anywhere).
func (rd *ResilientDialer) budget() float64     { return math.Float64frombits(rd.budgetBits.Load()) }
func (rd *ResilientDialer) setBudget(v float64) { rd.budgetBits.Store(math.Float64bits(v)) }

// Stats reports (requests, attempts, retries, failovers) so experiments
// can assert "no retry storm": attempts - requests must stay within the
// budget the request volume earned.
func (rd *ResilientDialer) Stats() (requests, attempts, retries, failovers int64) {
	return rd.requests.Load(), rd.attempts.Load(), rd.retries.Load(), rd.failovers.Load()
}

// Dial implements the net.Dial shape; see DialContext.
func (rd *ResilientDialer) Dial(network, address string) (net.Conn, error) {
	return rd.DialContext(context.Background(), network, address)
}

// ErrNoBackends reports a dial with every backend ejected.
var ErrNoBackends = errors.New("lb: no healthy backends")

// ErrBudgetExhausted reports a retry suppressed by the token bucket.
var ErrBudgetExhausted = errors.New("lb: retry budget exhausted")

// DialContext picks a backend from the ring and dials it by name, failing
// over along the key's ring order with backoff between attempts. Every
// retry (attempt past the first) spends one budget token; with the bucket
// empty the dial fails fast instead of piling on.
func (rd *ResilientDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	_, portStr, err := net.SplitHostPort(address)
	if err != nil {
		return nil, fmt.Errorf("lb: dial %s: %w", address, err)
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return nil, fmt.Errorf("lb: dial %s: bad port: %w", address, err)
	}
	rd.requests.Add(1)

	var (
		key        uint64
		candidates [maxFailoverCandidates]string
		n          int
	)
	rd.s.Driver().Run(func() {
		rd.setBudget(minf(rd.budget()+rd.policy.BudgetRatio, rd.policy.BudgetCap))
		rd.reqSeq++
		key = mix64(rd.rand.Uint64() ^ rd.reqSeq)
		n = rd.bal.Sequence(key, candidates[:])
	})
	if n == 0 {
		return nil, fmt.Errorf("lb: dial %s: %w", address, ErrNoBackends)
	}

	var lastErr error
	for attempt := 0; attempt < rd.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			// A retry must be paid for, then backed off.
			ok := false
			rd.s.Driver().Run(func() {
				if b := rd.budget(); b >= 1 {
					rd.setBudget(b - 1)
					ok = true
				}
			})
			if !ok {
				rd.budgetDenied.Add(1)
				return nil, fmt.Errorf("lb: dial %s: %w (last error: %v)", address, ErrBudgetExhausted, lastErr)
			}
			rd.budgetSpent.Add(1)
			rd.retries.Add(1)
			rd.sleep(rd.backoff(attempt))
		}
		name := candidates[attempt%n]
		if attempt > 0 && name != candidates[0] {
			rd.failovers.Add(1)
		}
		rd.attempts.Add(1)
		host := rd.bal.Host(name)
		conn, err := rd.inner.DialContext(ctx, network, net.JoinHostPort(host, strconv.FormatUint(port, 10)))
		rd.s.Driver().Run(func() {
			if err == nil {
				rd.bal.ReportSuccess(name)
			} else {
				rd.bal.ReportFailure(name)
			}
		})
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			break
		}
	}
	return nil, fmt.Errorf("lb: dial %s: %w", address, lastErr)
}

// backoff computes the capped exponential backoff with seeded jitter for
// retry number n (n >= 1).
func (rd *ResilientDialer) backoff(n int) sim.Duration {
	d := rd.policy.BaseBackoff << (n - 1)
	if d > rd.policy.MaxBackoff || d <= 0 {
		d = rd.policy.MaxBackoff
	}
	var jitter sim.Duration
	rd.s.Driver().Run(func() {
		jitter = sim.Duration(rd.rand.Uint64() % uint64(d/4+1))
	})
	return d + jitter
}

// sleep blocks the calling goroutine for d of virtual time, driving the
// simulation like any blocking socket call.
func (rd *ResilientDialer) sleep(d sim.Duration) {
	fired := false
	rd.s.Driver().Run(func() {
		rd.s.Stack().Engine().After(d, func() { fired = true })
	})
	rd.s.Driver().WaitUntil(func() bool { return fired })
}

// BudgetTokens reads the current retry-token balance (any goroutine).
func (rd *ResilientDialer) BudgetTokens() float64 { return rd.budget() }

// Report extends the balancer's report with the dialer's request and
// budget counters — the full picture the lb debug surfaces render.
func (rd *ResilientDialer) Report() netdbg.LBReport {
	r := rd.bal.Report()
	r.Requests = rd.requests.Load()
	r.Attempts = rd.attempts.Load()
	r.Retries = rd.retries.Load()
	r.Failovers = rd.failovers.Load()
	r.BudgetSpent = rd.budgetSpent.Load()
	r.BudgetDenied = rd.budgetDenied.Load()
	r.BudgetTokens = rd.budget()
	return r
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
