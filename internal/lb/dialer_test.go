package lb

import (
	"errors"
	"testing"

	"spin/internal/netstack"
	"spin/internal/sim"
)

// dialerRig is the loopback single-stack harness for ResilientDialer: DNS
// authority, resolver, listener and client share one stack, so blocking
// dials drive the engine through the socket driver with no topology.
type dialerRig struct {
	stack *netstack.Stack
	eng   *sim.Engine
	d     *netstack.Driver
	socks *netstack.Sockets
}

func newDialerRig(t *testing.T) *dialerRig {
	t.Helper()
	stack, eng := soloStack(t)
	zone := netstack.NewZone()
	for _, n := range []string{"app-a.spin.test", "app-b.spin.test"} {
		if err := zone.AddA(n, 60*sim.Second, stack.IP); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := netstack.NewDNSServer(stack, netstack.InKernelDelivery, zone.LookupA); err != nil {
		t.Fatal(err)
	}
	resolver := netstack.NewResolver(stack, netstack.ResolverConfig{
		Servers: []netstack.IPAddr{stack.IP}, Seed: 5,
	})
	d := netstack.NewDriver(eng)
	return &dialerRig{stack: stack, eng: eng, d: d, socks: netstack.NewSockets(d, stack, resolver)}
}

func (r *dialerRig) listen(t *testing.T) {
	t.Helper()
	if err := r.stack.TCP().Listen(80, netstack.InKernelDelivery, func(c *netstack.Conn) {}); err != nil {
		t.Fatal(err)
	}
}

// TestResilientDialerFailover: a healthy dial succeeds on the first
// attempt; with the service torn down, attempts fail over across backends
// with budgeted retries until both breakers open and dials fail fast with
// ErrNoBackends.
func TestResilientDialerFailover(t *testing.T) {
	r := newDialerRig(t)
	r.listen(t)
	bal := NewBalancer(r.stack, r.socks.Resolver(), Config{Seed: 7, Breaker: BreakerConfig{FailureThreshold: 2}})
	bal.AddBackend("app-a", "app-a.spin.test")
	bal.AddBackend("app-b", "app-b.spin.test")
	rd := NewResilientDialer(r.socks, bal, RetryPolicy{
		MaxAttempts:    3,
		AttemptTimeout: 200 * sim.Millisecond,
		BaseBackoff:    5 * sim.Millisecond,
		MaxBackoff:     20 * sim.Millisecond,
	}, 11)

	if _, err := rd.Dial("tcp", "no-port-here"); err == nil {
		t.Fatal("dial without port should fail")
	}
	if _, err := rd.Dial("tcp", "app.spin.test:notaport"); err == nil {
		t.Fatal("dial with bad port should fail")
	}

	c, err := rd.Dial("tcp", "app.spin.test:80")
	if err != nil {
		t.Fatalf("healthy dial: %v", err)
	}
	_ = c.Close()
	// Malformed addresses fail before the request counter.
	requests, attempts, retries, _ := rd.Stats()
	if requests != 1 || attempts != 1 || retries != 0 {
		t.Fatalf("after healthy dial: requests=%d attempts=%d retries=%d", requests, attempts, retries)
	}

	// Tear the service down: every attempt meets an RST. The next dials
	// burn budgeted retries across both backends until the breakers open,
	// then fail fast.
	r.d.Run(func() { r.stack.TCP().Unlisten(80) })
	for i := 0; i < 10; i++ {
		_, err = rd.Dial("tcp", "app.spin.test:80")
		if err == nil {
			t.Fatal("dial succeeded against a dead service")
		}
		if errors.Is(err, ErrNoBackends) {
			break
		}
	}
	if !errors.Is(err, ErrNoBackends) {
		t.Fatalf("dials never reached ErrNoBackends: %v", err)
	}
	rep := rd.Report()
	if rep.Retries < 2 || rep.Failovers < 1 || rep.BudgetSpent < 2 {
		t.Fatalf("retries=%d failovers=%d spent=%d, want retry+failover activity",
			rep.Retries, rep.Failovers, rep.BudgetSpent)
	}
	if rep.Ejections < 2 {
		t.Fatalf("ejections = %d, want both backends ejected", rep.Ejections)
	}
	if rd.BudgetTokens() >= 5 {
		t.Fatalf("budget = %.2f, want tokens spent from the starting 5", rd.BudgetTokens())
	}
}

// TestResilientDialerBudget: with a one-token cap the bucket starts at
// half a token, so the first retry is denied — the dial fails fast with
// ErrBudgetExhausted instead of piling on.
func TestResilientDialerBudget(t *testing.T) {
	r := newDialerRig(t) // no listener: every attempt fails
	bal := NewBalancer(r.stack, r.socks.Resolver(), Config{Seed: 7, Breaker: BreakerConfig{FailureThreshold: 100}})
	bal.AddBackend("app-a", "app-a.spin.test")
	bal.AddBackend("app-b", "app-b.spin.test")
	rd := NewResilientDialer(r.socks, bal, RetryPolicy{
		MaxAttempts:    3,
		AttemptTimeout: 200 * sim.Millisecond,
		BaseBackoff:    5 * sim.Millisecond,
		MaxBackoff:     20 * sim.Millisecond,
		BudgetCap:      1,
	}, 13)

	_, err := rd.Dial("tcp", "app.spin.test:80")
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	rep := rd.Report()
	if rep.BudgetDenied != 1 || rep.Attempts != 1 || rep.Retries != 0 {
		t.Fatalf("denied=%d attempts=%d retries=%d, want one denied retry after one attempt",
			rep.BudgetDenied, rep.Attempts, rep.Retries)
	}
}
