package lb

import (
	"strings"
	"testing"

	"spin/internal/dispatch"
	"spin/internal/netstack"
	"spin/internal/sim"
)

// soloStack builds one machine with no NIC: DNS server, resolver and
// backend listener all live on the same stack, reached over IP loopback.
func soloStack(t *testing.T) (*netstack.Stack, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	disp := dispatch.New(eng, &sim.SPINProfile)
	stack, err := netstack.NewStack("solo", netstack.Addr(10, 0, 0, 1), eng, &sim.SPINProfile, disp)
	if err != nil {
		t.Fatal(err)
	}
	return stack, eng
}

// TestBalancerHealthLoopback drives the full active health-check cycle on a
// single stack: both backends probed healthy, the listener torn down (probe
// connects now meet RSTs, breakers open, ring empties), then restored (the
// half-open probe succeeds, breakers close, ring regrows).
func TestBalancerHealthLoopback(t *testing.T) {
	stack, eng := soloStack(t)
	zone := netstack.NewZone()
	// app-b is registered with an empty host below, so probes resolve the
	// bare member name itself.
	for _, n := range []string{"app-a.spin.test", "app-b"} {
		if err := zone.AddA(n, 60*sim.Second, stack.IP); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := netstack.NewDNSServer(stack, netstack.InKernelDelivery, zone.LookupA); err != nil {
		t.Fatal(err)
	}
	resolver := netstack.NewResolver(stack, netstack.ResolverConfig{
		Servers: []netstack.IPAddr{stack.IP}, Seed: 3,
	})
	listen := func() {
		if err := stack.TCP().Listen(80, netstack.InKernelDelivery, func(c *netstack.Conn) {}); err != nil {
			t.Fatal(err)
		}
	}
	listen()

	bal := NewBalancer(stack, resolver, Config{Seed: 7})
	bal.AddBackend("app-a", "app-a.spin.test")
	bal.AddBackend("app-b", "") // host defaults to the member name
	if got := bal.Host("app-a"); got != "app-a.spin.test" {
		t.Fatalf("Host(app-a) = %q", got)
	}
	if got := bal.Host("app-b"); got != "app-b" {
		t.Fatalf("Host(app-b) = %q", got)
	}
	if bal.Host("nope") != "" {
		t.Fatal("Host of unknown member should be empty")
	}
	if bal.Port() != 80 {
		t.Fatalf("default port = %d", bal.Port())
	}
	if got := bal.Members(); len(got) != 2 {
		t.Fatalf("Members = %v, want both", got)
	}
	if name := bal.Pick(42); name != "app-a" && name != "app-b" {
		t.Fatalf("Pick = %q", name)
	}
	buf := make([]string, 2)
	if n := bal.Sequence(42, buf); n != 2 {
		t.Fatalf("Sequence = %d, want 2", n)
	}

	bal.StartHealth()
	bal.StartHealth() // idempotent
	eng.Run(sim.Time(2 * sim.Second))
	rep := bal.Report()
	for _, be := range rep.Backends {
		if be.Probes < 4 {
			t.Fatalf("%s: %d probes in 2s, want >= 4", be.Name, be.Probes)
		}
		if be.ProbeFailures != 0 {
			t.Fatalf("%s: %d probe failures against a live listener", be.Name, be.ProbeFailures)
		}
		if be.State != "closed" {
			t.Fatalf("%s: state %s, want closed", be.Name, be.State)
		}
	}
	if bal.Ejections() != 0 {
		t.Fatalf("ejections = %d before any failure", bal.Ejections())
	}

	// Kill the service: probe connects meet RSTs, three consecutive
	// failures open each breaker, the ring empties.
	stack.TCP().Unlisten(80)
	eng.Run(sim.Time(4 * sim.Second))
	if bal.Ejections() < 2 {
		t.Fatalf("ejections = %d after listener teardown, want >= 2", bal.Ejections())
	}
	if got := bal.Members(); len(got) != 0 {
		t.Fatalf("Members = %v after both breakers opened", got)
	}
	if name := bal.Pick(42); name != "" {
		t.Fatalf("Pick on empty ring = %q", name)
	}
	if n := bal.Sequence(42, buf); n != 0 {
		t.Fatalf("Sequence on empty ring = %d", n)
	}
	if bal.LastEjectAt() == 0 {
		t.Fatal("LastEjectAt unset after ejection")
	}

	// Restore the service: the next half-open probe succeeds, the
	// breakers close, the ring regrows.
	listen()
	eng.Run(sim.Time(10 * sim.Second))
	if got := bal.Members(); len(got) != 2 {
		t.Fatalf("Members = %v after service restored, want both", got)
	}
	if bal.LastRejoinAt() == 0 {
		t.Fatal("LastRejoinAt unset after recovery")
	}
	if !strings.Contains(bal.String(), "2/2 backends") {
		t.Fatalf("String = %q", bal.String())
	}

	// StopHealth cancels probe and breaker timers: the queue must drain.
	bal.StopHealth()
	eng.Run(0)
	if eng.Pending() != 0 {
		t.Fatalf("%d events still queued after StopHealth", eng.Pending())
	}
}

// TestBalancerPassiveOutlier exercises the dialer-fed path with no network
// at all: reported failures open the breaker and shrink the ring, an
// explicit Eject does the same immediately, successes reset streaks.
func TestBalancerPassiveOutlier(t *testing.T) {
	stack, _ := soloStack(t)
	bal := NewBalancer(stack, nil, Config{Seed: 9, Breaker: BreakerConfig{FailureThreshold: 2}})
	bal.AddBackend("a", "a.spin.test")
	bal.AddBackend("b", "b.spin.test")
	bal.AddBackend("c", "c.spin.test")

	bal.ReportFailure("a")
	bal.ReportSuccess("a") // resets the streak
	bal.ReportFailure("a")
	if len(bal.Members()) != 3 {
		t.Fatalf("Members shrank below threshold: %v", bal.Members())
	}
	bal.ReportFailure("a")
	bal.ReportFailure("a")
	if got := bal.Members(); len(got) != 2 {
		t.Fatalf("Members = %v after a's breaker opened", got)
	}
	bal.Eject("b")
	if got := bal.Members(); len(got) != 1 || got[0] != "c" {
		t.Fatalf("Members = %v after ejecting b, want [c]", got)
	}
	if bal.Ejections() != 2 {
		t.Fatalf("ejections = %d, want 2", bal.Ejections())
	}
	// Unknown names are ignored, not a panic.
	bal.ReportSuccess("nope")
	bal.ReportFailure("nope")
	bal.Eject("nope")
	if bal.Successes("a") != 1 {
		t.Fatalf("Successes(a) = %d", bal.Successes("a"))
	}
	if bal.Successes("nope") != 0 {
		t.Fatal("Successes of unknown member should be 0")
	}

	rep := bal.Report()
	if len(rep.Backends) != 3 || rep.Ejections != 2 {
		t.Fatalf("report: %+v", rep)
	}
	states := map[string]string{}
	for _, be := range rep.Backends {
		states[be.Name] = be.State
	}
	if states["a"] != "open" || states["b"] != "open" || states["c"] != "closed" {
		t.Fatalf("states = %v", states)
	}
	if !strings.Contains(rep.String(), "ejections=2") {
		t.Fatalf("report render: %q", rep.String())
	}
}
