package lb

import (
	"testing"

	"spin/internal/sim"
)

func newTestBreaker(t *testing.T) (*sim.Engine, *Breaker, *[]string) {
	t.Helper()
	eng := sim.NewEngine()
	transitions := &[]string{}
	br := NewBreaker(eng, BreakerConfig{FailureThreshold: 3, OpenTimeout: 2 * sim.Second})
	br.onChange = func(from, to BreakerState) {
		*transitions = append(*transitions, from.String()+">"+to.String())
	}
	return eng, br, transitions
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	_, br, _ := newTestBreaker(t)
	br.Fail()
	br.Fail()
	if br.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", br.State())
	}
	if !br.Allow() {
		t.Fatal("closed breaker must allow")
	}
	br.Fail()
	if br.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", br.State())
	}
	if br.Allow() {
		t.Fatal("open breaker must not allow")
	}
	if br.Ejections() != 1 {
		t.Fatalf("ejections = %d, want 1", br.Ejections())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	_, br, _ := newTestBreaker(t)
	br.Fail()
	br.Fail()
	br.Success()
	br.Fail()
	br.Fail()
	if br.State() != BreakerClosed {
		t.Fatalf("success did not reset the failure streak: %v", br.State())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	eng, br, transitions := newTestBreaker(t)
	for i := 0; i < 3; i++ {
		br.Fail()
	}
	// OpenTimeout elapses on the virtual clock -> half-open.
	eng.Run(0)
	if br.State() != BreakerHalfOpen {
		t.Fatalf("state after OpenTimeout = %v, want half-open", br.State())
	}
	if eng.Now() != sim.Time(2*sim.Second) {
		t.Fatalf("half-open at t=%v, want 2s", eng.Now())
	}
	// A failed probe re-opens and re-arms the timer...
	br.Fail()
	if br.State() != BreakerOpen {
		t.Fatalf("failed probe left state %v, want open", br.State())
	}
	eng.Run(0)
	if br.State() != BreakerHalfOpen {
		t.Fatalf("second OpenTimeout: state %v, want half-open", br.State())
	}
	// ...and a successful probe closes.
	br.Success()
	if br.State() != BreakerClosed {
		t.Fatalf("successful probe left state %v, want closed", br.State())
	}
	if br.Ejections() != 2 {
		t.Fatalf("ejections = %d, want 2", br.Ejections())
	}
	want := []string{
		"closed>open", "open>half-open",
		"half-open>open", "open>half-open",
		"half-open>closed",
	}
	if len(*transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", *transitions, want)
	}
	for i := range want {
		if (*transitions)[i] != want[i] {
			t.Fatalf("transition[%d] = %s, want %s", i, (*transitions)[i], want[i])
		}
	}
}

func TestBreakerForceOpenAndStop(t *testing.T) {
	eng, br, _ := newTestBreaker(t)
	br.ForceOpen()
	if br.State() != BreakerOpen {
		t.Fatalf("ForceOpen left state %v", br.State())
	}
	// Stop cancels the half-open timer: the engine drains without the
	// breaker ever leaving open. This is what lets Driver.Drain terminate.
	br.Stop()
	eng.Run(0)
	if br.State() != BreakerOpen {
		t.Fatalf("state after Stop+drain = %v, want open (timer cancelled)", br.State())
	}
}
