package dispatch

import (
	"strings"
	"sync"
	"testing"

	"spin/internal/domain"
	"spin/internal/faultinject"
	"spin/internal/sim"
	"spin/internal/trace"
)

func TestQuarantineAtFaultThreshold(t *testing.T) {
	d, _ := newTestDispatcher()
	d.SetQuarantinePolicy(QuarantinePolicy{FaultThreshold: 3})
	var notified []QuarantineRecord
	d.OnQuarantine(func(r QuarantineRecord) { notified = append(notified, r) })
	primaryRan := 0
	_ = d.Define("E", DefineOptions{
		Primary: func(_, _ any) any { primaryRan++; return "primary" },
	})
	_, err := d.Install("E", func(_, _ any) any { panic("broken extension") },
		InstallOptions{Installer: domain.Identity{Name: "bad-ext"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		d.Raise("E", nil)
	}
	// Faults 1..3 contained; at 3 the handler is unlinked, raises 4..6 run
	// the primary alone (fast path again).
	if _, _, faults := d.Stats("E"); faults != 3 {
		t.Fatalf("event faults = %d, want 3", faults)
	}
	if n := d.HandlerCount("E"); n != 1 {
		t.Fatalf("HandlerCount = %d after quarantine, want 1 (primary)", n)
	}
	if primaryRan != 6 {
		t.Fatalf("primary ran %d times, want 6 (fallback preserved)", primaryRan)
	}
	if got := d.Raise("E", nil); got != "primary" {
		t.Fatalf("post-quarantine raise = %v", got)
	}
	q := d.Quarantined()
	if len(q) != 1 || q[0].Event != "E" || q[0].Owner.Name != "bad-ext" || q[0].Faults != 3 {
		t.Fatalf("quarantine log = %+v", q)
	}
	if !strings.Contains(q[0].Reason, "threshold") {
		t.Fatalf("reason = %q", q[0].Reason)
	}
	if len(notified) != 1 || notified[0].Owner.Name != "bad-ext" {
		t.Fatalf("notifications = %+v", notified)
	}
	if d.QuarantinedOn("E") != 1 {
		t.Fatalf("QuarantinedOn = %d", d.QuarantinedOn("E"))
	}
}

func TestQuarantineAtOverrunBudget(t *testing.T) {
	d, eng := newTestDispatcher()
	d.SetQuarantinePolicy(QuarantinePolicy{OverrunBudget: 2})
	_ = d.Define("E", DefineOptions{
		Primary:    func(_, _ any) any { return "ok" },
		Constraint: Constraint{TimeBound: 10 * sim.Microsecond},
	})
	_, err := d.Install("E", func(_, _ any) any {
		eng.Clock.Advance(time50us)
		return "slow"
	}, InstallOptions{Installer: domain.Identity{Name: "slow-ext"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		d.Raise("E", nil)
	}
	if n := d.HandlerCount("E"); n != 1 {
		t.Fatalf("HandlerCount = %d, want 1 after overrun quarantine", n)
	}
	q := d.Quarantined()
	if len(q) != 1 || q[0].Overruns != 2 || !strings.Contains(q[0].Reason, "overrun") {
		t.Fatalf("quarantine log = %+v", q)
	}
}

const time50us = 50 * sim.Microsecond

func TestQuarantineDisabledByDefault(t *testing.T) {
	d, _ := newTestDispatcher()
	_ = d.Define("E", DefineOptions{Primary: func(_, _ any) any { return nil }})
	_, _ = d.Install("E", func(_, _ any) any { panic("x") },
		InstallOptions{Installer: domain.Identity{Name: "ext"}})
	for i := 0; i < 50; i++ {
		d.Raise("E", nil)
	}
	// Zero policy: containment only, the handler stays installed.
	if n := d.HandlerCount("E"); n != 2 {
		t.Fatalf("HandlerCount = %d, want 2 (no quarantine without policy)", n)
	}
	if len(d.Quarantined()) != 0 {
		t.Fatal("quarantine log non-empty under zero policy")
	}
}

func TestPrimaryNeverQuarantined(t *testing.T) {
	d, _ := newTestDispatcher()
	d.SetQuarantinePolicy(QuarantinePolicy{FaultThreshold: 2})
	_ = d.Define("E", DefineOptions{Primary: func(_, _ any) any { panic("primary bug") }})
	for i := 0; i < 10; i++ {
		d.Raise("E", nil)
	}
	if n := d.HandlerCount("E"); n != 1 {
		t.Fatalf("primary was quarantined (HandlerCount=%d)", n)
	}
	if _, _, faults := d.Stats("E"); faults != 10 {
		t.Fatalf("faults = %d, want 10 (still contained and counted)", faults)
	}
}

// TestQuarantinePreservesKeyedPrimary is the PR-1 regression: quarantining
// a faulty handler installed alongside a keyed event must leave the keyed
// demultiplexer (the primary) linked, so every keyed handler keeps working
// and RemovePrimary still refuses with ErrKeyedPrimary.
func TestQuarantinePreservesKeyedPrimary(t *testing.T) {
	d, _ := newTestDispatcher()
	d.SetQuarantinePolicy(QuarantinePolicy{FaultThreshold: 2})
	ke, err := d.DefineKeyed("Keyed.E", func(arg any) (uint64, bool) {
		k, ok := arg.(uint64)
		return k, ok
	}, DefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	keyedRan := 0
	if _, err := ke.InstallKeyed(7, func(_, _ any) any { keyedRan++; return nil }, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Install("Keyed.E", func(_, _ any) any { panic("bad") },
		InstallOptions{Installer: domain.Identity{Name: "bad-ext"}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		d.Raise("Keyed.E", uint64(7))
	}
	if len(d.Quarantined()) != 1 {
		t.Fatalf("quarantine log = %+v", d.Quarantined())
	}
	// The demux primary must survive and keep routing keyed raises.
	before := keyedRan
	d.Raise("Keyed.E", uint64(7))
	if keyedRan != before+1 {
		t.Fatal("keyed handler no longer reached after quarantine")
	}
	if err := d.RemovePrimary("Keyed.E", domain.Identity{Name: "anyone"}); err == nil {
		t.Fatal("RemovePrimary on keyed event succeeded after quarantine")
	}
}

// TestQuarantineConcurrentRaises crosses the threshold from many goroutines
// at once: exactly one unlink, one record, one notification.
func TestQuarantineConcurrentRaises(t *testing.T) {
	d, _ := newTestDispatcher()
	d.SetQuarantinePolicy(QuarantinePolicy{FaultThreshold: 10})
	var notifyMu sync.Mutex
	notifications := 0
	d.OnQuarantine(func(QuarantineRecord) {
		notifyMu.Lock()
		notifications++
		notifyMu.Unlock()
	})
	_ = d.Define("E", DefineOptions{Primary: func(_, _ any) any { return nil }})
	_, _ = d.Install("E", func(_, _ any) any { panic("x") },
		InstallOptions{Installer: domain.Identity{Name: "ext"}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				d.Raise("E", nil)
			}
		}()
	}
	wg.Wait()
	if n := d.HandlerCount("E"); n != 1 {
		t.Fatalf("HandlerCount = %d", n)
	}
	if got := len(d.Quarantined()); got != 1 {
		t.Fatalf("%d quarantine records, want 1", got)
	}
	notifyMu.Lock()
	defer notifyMu.Unlock()
	if notifications != 1 {
		t.Fatalf("%d notifications, want 1", notifications)
	}
}

func TestQuarantineEmitsTraceRecord(t *testing.T) {
	d, _ := newTestDispatcher()
	d.SetQuarantinePolicy(QuarantinePolicy{FaultThreshold: 1})
	tr := trace.New(64)
	d.SetTracer(tr)
	_ = d.Define("E", DefineOptions{Primary: func(_, _ any) any { return nil }})
	_, _ = d.Install("E", func(_, _ any) any { panic("x") },
		InstallOptions{Installer: domain.Identity{Name: "ext"}})
	d.Raise("E", nil)
	found := false
	for _, rec := range tr.Snapshot() {
		if rec.Event == "dispatch.quarantine" {
			found = true
		}
	}
	if !found {
		t.Fatal("no dispatch.quarantine trace record")
	}
}

func TestRemoveOwner(t *testing.T) {
	d, _ := newTestDispatcher()
	for _, ev := range []string{"A", "B", "C"} {
		_ = d.Define(ev, DefineOptions{Primary: func(_, _ any) any { return "p" }})
	}
	ext := domain.Identity{Name: "ext"}
	other := domain.Identity{Name: "other"}
	for _, ev := range []string{"A", "B"} {
		if _, err := d.Install(ev, func(_, _ any) any { return nil }, InstallOptions{Installer: ext}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Install("A", func(_, _ any) any { return nil }, InstallOptions{Installer: other}); err != nil {
		t.Fatal(err)
	}
	if got := d.RemoveOwner(ext); got != 2 {
		t.Fatalf("RemoveOwner removed %d, want 2", got)
	}
	if n := d.HandlerCount("A"); n != 2 { // primary + other's
		t.Fatalf("A has %d handlers, want 2", n)
	}
	if n := d.HandlerCount("B"); n != 1 {
		t.Fatalf("B has %d handlers, want 1", n)
	}
	// Idempotent: nothing left to remove.
	if got := d.RemoveOwner(ext); got != 0 {
		t.Fatalf("second RemoveOwner removed %d", got)
	}
}

// TestInjectedDispatchFaults drives the "dispatch.invoke" injection site:
// injected panics are contained, counted exactly once each, and feed the
// quarantine budget like organic faults.
func TestInjectedDispatchFaults(t *testing.T) {
	d, eng := newTestDispatcher()
	d.SetQuarantinePolicy(QuarantinePolicy{FaultThreshold: 4})
	inj := faultinject.New(1234, eng.Clock)
	inj.Arm(faultinject.Rule{Site: "dispatch.invoke", Kind: faultinject.KindPanic, MaxFires: 4})
	d.SetInjector(inj)
	_ = d.Define("E", DefineOptions{Primary: func(_, _ any) any { return "ok" }})
	_, _ = d.Install("E", func(_, _ any) any { return "ext" },
		InstallOptions{Installer: domain.Identity{Name: "ext"}})
	for i := 0; i < 20; i++ {
		d.Raise("E", nil)
	}
	total, last := d.ExtensionFaults()
	if total != inj.FiredAt("dispatch.invoke") {
		t.Fatalf("faults %d != injected %d (each counted exactly once)", total, inj.FiredAt("dispatch.invoke"))
	}
	if !strings.Contains(last, "faultinject") {
		t.Fatalf("last fault = %q, want injected description", last)
	}
	d.SetInjector(nil)
	if got := d.Raise("E", nil); got == nil {
		t.Fatal("raise failed after disarming injector")
	}
}

func TestQuarantinePolicyInEffectAndRecordString(t *testing.T) {
	d, _ := newTestDispatcher()
	d.SetQuarantinePolicy(QuarantinePolicy{FaultThreshold: 5, OverrunBudget: 9})
	if p := d.QuarantinePolicyInEffect(); p.FaultThreshold != 5 || p.OverrunBudget != 9 {
		t.Errorf("policy read back = %+v", p)
	}
	r := QuarantineRecord{
		Event: "E", Owner: domain.Identity{Name: "bad"},
		Faults: 5, Overruns: 0, Reason: "fault threshold (5) exhausted",
	}
	s := r.String()
	for _, want := range []string{"E", "bad", "threshold"} {
		if !strings.Contains(s, want) {
			t.Errorf("record String() = %q missing %q", s, want)
		}
	}
}

func TestInjectorInstalled(t *testing.T) {
	d, eng := newTestDispatcher()
	if d.InjectorInstalled() != nil {
		t.Fatal("injector present before SetInjector")
	}
	// A nil injector is inert at every site (Fire on nil is a no-op).
	if f := d.InjectorInstalled().Fire("dispatch.invoke"); f.Fired() {
		t.Error("nil injector fired")
	}
	in := faultinject.New(1, eng.Clock)
	d.SetInjector(in)
	if d.InjectorInstalled() != in {
		t.Error("injector not readable back")
	}
	d.SetInjector(nil)
	if d.InjectorInstalled() != nil {
		t.Error("injector still present after SetInjector(nil)")
	}
}
