package dispatch

import (
	"fmt"
	"sync"
)

// Keyed guard optimization — the paper's stated future work (§5.5:
// "Presently, we perform no guard-specific optimizations such as evaluating
// common subexpressions or representing guard predicates as decision
// trees. As the system matures, we plan to apply these optimizations.").
//
// Many guards share one shape: extract a key from the event argument and
// compare it to a constant (the IP protocol number, a UDP port, a fault's
// context id). A KeyedEvent lets the default implementation module declare
// the extraction once; handlers then install under constant keys, and a
// raise hashes directly to the matching handlers instead of evaluating
// every installed guard — dispatch cost becomes independent of the number
// of installed handlers.

// KeyFunc extracts the demultiplexing key from an event argument.
type KeyFunc func(arg any) (key uint64, ok bool)

// KeyedEvent is an event with an attached key index. It is layered over a
// regular dispatcher event: unkeyed handlers (and the primary) still work;
// keyed handlers bypass guard evaluation.
type KeyedEvent struct {
	d       *Dispatcher
	name    string
	keyOf   KeyFunc
	mu      sync.Mutex
	byKey   map[uint64][]*keyedEntry
	nextID  int
	raises  int64
	indexed int64
}

type keyedEntry struct {
	h       Handler
	closure any
	id      int
}

// DefineKeyed declares an event whose handlers demultiplex on a key. The
// event is defined on the underlying dispatcher with a primary handler that
// consults the key index — so raising it through Dispatcher.Raise works,
// and unkeyed handlers may still be installed alongside.
func (d *Dispatcher) DefineKeyed(name string, keyOf KeyFunc, opts DefineOptions) (*KeyedEvent, error) {
	if keyOf == nil {
		return nil, fmt.Errorf("dispatch: DefineKeyed(%q): nil key function", name)
	}
	ke := &KeyedEvent{
		d:     d,
		name:  name,
		keyOf: keyOf,
		byKey: make(map[uint64][]*keyedEntry),
	}
	userPrimary := opts.Primary
	userClosure := opts.PrimaryClosure
	opts.Primary = func(arg, _ any) any {
		// Index lookup: one hash probe regardless of handler count.
		ke.d.clock.Advance(ke.d.profile.GuardEval) // the single key extraction
		var results []any
		if key, ok := ke.keyOf(arg); ok {
			ke.mu.Lock()
			entries := append([]*keyedEntry(nil), ke.byKey[key]...)
			ke.indexed++
			ke.mu.Unlock()
			for _, e := range entries {
				ke.d.clock.Advance(ke.d.profile.HandlerInvoke)
				results = append(results, e.h(arg, e.closure))
			}
		}
		ke.mu.Lock()
		ke.raises++
		ke.mu.Unlock()
		if userPrimary != nil {
			results = append(results, userPrimary(arg, userClosure))
		}
		if len(results) == 0 {
			return nil
		}
		comb := opts.Combiner
		if comb == nil {
			comb = LastResult
		}
		return comb(results)
	}
	opts.PrimaryClosure = nil
	if err := d.Define(name, opts); err != nil {
		return nil, err
	}
	return ke, nil
}

// KeyedRef names a keyed handler for removal.
type KeyedRef struct {
	key uint64
	id  int
}

// InstallKeyed registers h for events whose key equals key.
func (ke *KeyedEvent) InstallKeyed(key uint64, h Handler, closure any) (KeyedRef, error) {
	if h == nil {
		return KeyedRef{}, fmt.Errorf("dispatch: nil keyed handler on %q", ke.name)
	}
	ke.mu.Lock()
	defer ke.mu.Unlock()
	e := &keyedEntry{h: h, closure: closure, id: ke.nextID}
	ke.nextID++
	ke.byKey[key] = append(ke.byKey[key], e)
	return KeyedRef{key: key, id: e.id}, nil
}

// RemoveKeyed uninstalls a keyed handler.
func (ke *KeyedEvent) RemoveKeyed(ref KeyedRef) error {
	ke.mu.Lock()
	defer ke.mu.Unlock()
	list := ke.byKey[ref.key]
	for i, e := range list {
		if e.id == ref.id {
			ke.byKey[ref.key] = append(list[:i], list[i+1:]...)
			if len(ke.byKey[ref.key]) == 0 {
				delete(ke.byKey, ref.key)
			}
			return nil
		}
	}
	return fmt.Errorf("dispatch: keyed handler %d not installed on %q", ref.id, ke.name)
}

// Stats reports raises and index hits.
func (ke *KeyedEvent) Stats() (raises, indexed int64) {
	ke.mu.Lock()
	defer ke.mu.Unlock()
	return ke.raises, ke.indexed
}

// Keys reports how many distinct keys have handlers.
func (ke *KeyedEvent) Keys() int {
	ke.mu.Lock()
	defer ke.mu.Unlock()
	return len(ke.byKey)
}
