package dispatch

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Keyed guard optimization — the paper's stated future work (§5.5:
// "Presently, we perform no guard-specific optimizations such as evaluating
// common subexpressions or representing guard predicates as decision
// trees. As the system matures, we plan to apply these optimizations.").
//
// Many guards share one shape: extract a key from the event argument and
// compare it to a constant (the IP protocol number, a UDP port, a fault's
// context id). A KeyedEvent lets the default implementation module declare
// the extraction once; handlers then install under constant keys, and a
// raise hashes directly to the matching handlers instead of evaluating
// every installed guard — dispatch cost becomes independent of the number
// of installed handlers.
//
// Like the dispatcher proper, the key index is copy-on-write: raises load
// the whole map through an atomic pointer and never lock; InstallKeyed and
// RemoveKeyed rebuild the map under a writer mutex and swap it in.

// KeyFunc extracts the demultiplexing key from an event argument.
type KeyFunc func(arg any) (key uint64, ok bool)

// KeyedEvent is an event with an attached key index. It is layered over a
// regular dispatcher event: unkeyed handlers (and the primary) still work;
// keyed handlers bypass guard evaluation.
type KeyedEvent struct {
	d     *Dispatcher
	name  string
	keyOf KeyFunc

	// mu serializes writers; nextID is guarded by it. The read path loads
	// byKey without locking; published maps and entry slices are immutable.
	mu      sync.Mutex
	byKey   atomic.Pointer[map[uint64][]*keyedEntry]
	nextID  int
	raises  atomic.Int64
	indexed atomic.Int64
}

type keyedEntry struct {
	h       Handler
	closure any
	id      int
}

// DefineKeyed declares an event whose handlers demultiplex on a key. The
// event is defined on the underlying dispatcher with a primary handler that
// consults the key index — so raising it through Dispatcher.Raise works,
// and unkeyed handlers may still be installed alongside. Because that
// primary *is* the demultiplexer, RemovePrimary on a keyed event fails with
// ErrKeyedPrimary rather than silently orphaning the index.
func (d *Dispatcher) DefineKeyed(name string, keyOf KeyFunc, opts DefineOptions) (*KeyedEvent, error) {
	if keyOf == nil {
		return nil, fmt.Errorf("dispatch: DefineKeyed(%q): nil key function", name)
	}
	ke := &KeyedEvent{
		d:     d,
		name:  name,
		keyOf: keyOf,
	}
	empty := make(map[uint64][]*keyedEntry)
	ke.byKey.Store(&empty)
	userPrimary := opts.Primary
	userClosure := opts.PrimaryClosure
	opts.Primary = func(arg, _ any) any {
		// Index lookup: one hash probe regardless of handler count.
		ke.d.clock.Advance(ke.d.profile.GuardEval) // the single key extraction
		var results []any
		if key, ok := ke.keyOf(arg); ok {
			entries := (*ke.byKey.Load())[key]
			ke.indexed.Add(1)
			for _, e := range entries {
				ke.d.clock.Advance(ke.d.profile.HandlerInvoke)
				results = append(results, e.h(arg, e.closure))
			}
		}
		ke.raises.Add(1)
		if userPrimary != nil {
			results = append(results, userPrimary(arg, userClosure))
		}
		if len(results) == 0 {
			return nil
		}
		comb := opts.Combiner
		if comb == nil {
			comb = LastResult
		}
		return comb(results)
	}
	opts.PrimaryClosure = nil
	opts.keyedDemux = true
	if err := d.Define(name, opts); err != nil {
		return nil, err
	}
	return ke, nil
}

// KeyedRef names a keyed handler for removal.
type KeyedRef struct {
	key uint64
	id  int
}

// cloneIndex copies the published key index so a writer can edit it. The
// entry slices are shared except for the key being edited, which callers
// must replace wholesale.
func (ke *KeyedEvent) cloneIndex() map[uint64][]*keyedEntry {
	old := *ke.byKey.Load()
	next := make(map[uint64][]*keyedEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	return next
}

// InstallKeyed registers h for events whose key equals key.
func (ke *KeyedEvent) InstallKeyed(key uint64, h Handler, closure any) (KeyedRef, error) {
	if h == nil {
		return KeyedRef{}, fmt.Errorf("dispatch: nil keyed handler on %q", ke.name)
	}
	ke.mu.Lock()
	defer ke.mu.Unlock()
	e := &keyedEntry{h: h, closure: closure, id: ke.nextID}
	ke.nextID++
	next := ke.cloneIndex()
	next[key] = append(append([]*keyedEntry(nil), next[key]...), e)
	ke.byKey.Store(&next)
	return KeyedRef{key: key, id: e.id}, nil
}

// RemoveKeyed uninstalls a keyed handler.
func (ke *KeyedEvent) RemoveKeyed(ref KeyedRef) error {
	ke.mu.Lock()
	defer ke.mu.Unlock()
	list := (*ke.byKey.Load())[ref.key]
	for i, e := range list {
		if e.id == ref.id {
			next := ke.cloneIndex()
			trimmed := append(append([]*keyedEntry(nil), list[:i]...), list[i+1:]...)
			if len(trimmed) == 0 {
				delete(next, ref.key)
			} else {
				next[ref.key] = trimmed
			}
			ke.byKey.Store(&next)
			return nil
		}
	}
	return fmt.Errorf("dispatch: keyed handler %d not installed on %q", ref.id, ke.name)
}

// Stats reports raises and index hits. Counters are atomics; totals are
// exact under parallel raises.
func (ke *KeyedEvent) Stats() (raises, indexed int64) {
	return ke.raises.Load(), ke.indexed.Load()
}

// Keys reports how many distinct keys have handlers.
func (ke *KeyedEvent) Keys() int {
	return len(*ke.byKey.Load())
}
