package dispatch

import (
	"testing"

	"spin/internal/sim"
)

type keyedArg struct {
	port    uint64
	payload string
}

func keyOfPort(arg any) (uint64, bool) {
	a, ok := arg.(*keyedArg)
	if !ok {
		return 0, false
	}
	return a.port, true
}

func TestKeyedDemux(t *testing.T) {
	d, _ := newTestDispatcher()
	ke, err := d.DefineKeyed("UDP.Demux", keyOfPort, DefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var got7, got9 []string
	_, _ = ke.InstallKeyed(7, func(arg, _ any) any {
		got7 = append(got7, arg.(*keyedArg).payload)
		return nil
	}, nil)
	_, _ = ke.InstallKeyed(9, func(arg, _ any) any {
		got9 = append(got9, arg.(*keyedArg).payload)
		return nil
	}, nil)
	d.Raise("UDP.Demux", &keyedArg{port: 7, payload: "a"})
	d.Raise("UDP.Demux", &keyedArg{port: 9, payload: "b"})
	d.Raise("UDP.Demux", &keyedArg{port: 5, payload: "c"}) // no handler
	if len(got7) != 1 || got7[0] != "a" {
		t.Errorf("got7 = %v", got7)
	}
	if len(got9) != 1 || got9[0] != "b" {
		t.Errorf("got9 = %v", got9)
	}
	raises, indexed := ke.Stats()
	if raises != 3 || indexed != 3 {
		t.Errorf("stats = %d,%d", raises, indexed)
	}
	if ke.Keys() != 2 {
		t.Errorf("keys = %d", ke.Keys())
	}
}

func TestKeyedCostIndependentOfHandlerCount(t *testing.T) {
	// The point of the optimization: dispatch cost does not grow with the
	// number of installed keyed handlers (it does with linear guards).
	cost := func(handlers int) sim.Duration {
		d, eng := newTestDispatcher()
		ke, _ := d.DefineKeyed("E", keyOfPort, DefineOptions{})
		for i := 0; i < handlers; i++ {
			_, _ = ke.InstallKeyed(uint64(1000+i), func(_, _ any) any { return nil }, nil)
		}
		// Raise to a key none of them match.
		before := eng.Clock.Now()
		d.Raise("E", &keyedArg{port: 1})
		return eng.Clock.Now().Sub(before)
	}
	if c1, c100 := cost(1), cost(100); c100 != c1 {
		t.Errorf("keyed dispatch cost grew with handlers: 1=%v 100=%v", c1, c100)
	}

	// Contrast: linear guards grow.
	linear := func(handlers int) sim.Duration {
		d, eng := newTestDispatcher()
		_ = d.Define("L", DefineOptions{})
		for i := 0; i < handlers; i++ {
			key := uint64(1000 + i)
			_, _ = d.Install("L", func(_, _ any) any { return nil },
				InstallOptions{Guard: func(arg any) bool {
					a, ok := arg.(*keyedArg)
					return ok && a.port == key
				}})
		}
		before := eng.Clock.Now()
		d.Raise("L", &keyedArg{port: 1})
		return eng.Clock.Now().Sub(before)
	}
	if l1, l100 := linear(1), linear(100); l100 <= l1 {
		t.Errorf("linear guards should grow: 1=%v 100=%v", l1, l100)
	}
}

func TestKeyedRemove(t *testing.T) {
	d, _ := newTestDispatcher()
	ke, _ := d.DefineKeyed("E", keyOfPort, DefineOptions{})
	calls := 0
	ref, _ := ke.InstallKeyed(7, func(_, _ any) any { calls++; return nil }, nil)
	d.Raise("E", &keyedArg{port: 7})
	if err := ke.RemoveKeyed(ref); err != nil {
		t.Fatal(err)
	}
	d.Raise("E", &keyedArg{port: 7})
	if calls != 1 {
		t.Errorf("calls = %d", calls)
	}
	if err := ke.RemoveKeyed(ref); err == nil {
		t.Error("double remove accepted")
	}
	if ke.Keys() != 0 {
		t.Errorf("keys = %d", ke.Keys())
	}
}

func TestKeyedCoexistsWithPrimaryAndCombiner(t *testing.T) {
	d, _ := newTestDispatcher()
	sum := func(results []any) any {
		total := 0
		for _, r := range results {
			if n, ok := r.(int); ok {
				total += n
			}
		}
		return total
	}
	ke, _ := d.DefineKeyed("E", keyOfPort, DefineOptions{
		Primary:  func(_, _ any) any { return 100 },
		Combiner: sum,
	})
	_, _ = ke.InstallKeyed(7, func(_, _ any) any { return 7 }, nil)
	_, _ = ke.InstallKeyed(7, func(_, _ any) any { return 3 }, nil)
	if got := d.Raise("E", &keyedArg{port: 7}); got != 110 {
		t.Errorf("combined = %v, want 110", got)
	}
	// No keyed match: primary alone.
	if got := d.Raise("E", &keyedArg{port: 1}); got != 100 {
		t.Errorf("primary-only = %v", got)
	}
}

func TestKeyedClosure(t *testing.T) {
	d, _ := newTestDispatcher()
	ke, _ := d.DefineKeyed("E", keyOfPort, DefineOptions{})
	var seen []string
	h := func(_, closure any) any { seen = append(seen, closure.(string)); return nil }
	_, _ = ke.InstallKeyed(1, h, "one")
	_, _ = ke.InstallKeyed(2, h, "two")
	d.Raise("E", &keyedArg{port: 2})
	d.Raise("E", &keyedArg{port: 1})
	if len(seen) != 2 || seen[0] != "two" || seen[1] != "one" {
		t.Errorf("seen = %v", seen)
	}
}

func TestKeyedRejectsNil(t *testing.T) {
	d, _ := newTestDispatcher()
	if _, err := d.DefineKeyed("E", nil, DefineOptions{}); err == nil {
		t.Error("nil key func accepted")
	}
	ke, _ := d.DefineKeyed("E2", keyOfPort, DefineOptions{})
	if _, err := ke.InstallKeyed(1, nil, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestKeyedWrongArgType(t *testing.T) {
	d, _ := newTestDispatcher()
	ke, _ := d.DefineKeyed("E", keyOfPort, DefineOptions{})
	ran := false
	_, _ = ke.InstallKeyed(1, func(_, _ any) any { ran = true; return nil }, nil)
	d.Raise("E", "not a keyedArg") // keyOf returns !ok
	if ran {
		t.Error("handler ran for unkeyable argument")
	}
}
