package dispatch

import (
	"sync"
	"testing"

	"spin/internal/domain"
	"spin/internal/sim"
	"spin/internal/trace"
)

func testIdent(name string) domain.Identity { return domain.Identity{Name: name} }

// Fast path: a traced single-handler raise produces one ring record with
// the right shape, and feeds both the event and per-handler series.
// Disabling tracing stops recording immediately.
func TestRaiseTracedFastPath(t *testing.T) {
	d, eng := newTestDispatcher()
	_ = d.Define("Traced.Fast", DefineOptions{
		Primary: func(_, _ any) any {
			eng.Clock.Advance(3 * sim.Microsecond)
			return "ok"
		},
	})
	tr := trace.New(64)
	d.SetTracer(tr)
	if d.Tracer() != tr {
		t.Fatal("Tracer() did not return the installed tracer")
	}
	if got := d.Raise("Traced.Fast", nil); got != "ok" {
		t.Fatalf("Raise = %v", got)
	}
	recs := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("ring records = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.Event != "Traced.Fast" || r.Origin != "dispatch" || r.Handlers != 1 ||
		r.Outcome != trace.OutcomeOK || r.Duration != 3*sim.Microsecond {
		t.Errorf("record = %+v", r)
	}
	if h, ok := tr.Histogram("Traced.Fast"); !ok || h.Count() != 1 {
		t.Error("event histogram missing")
	}
	if h, ok := tr.Histogram("Traced.Fast#primary"); !ok || h.Count() != 1 {
		t.Error("per-handler histogram missing")
	}
	d.SetTracer(nil)
	if d.Tracer() != nil {
		t.Fatal("Tracer() non-nil after disable")
	}
	d.Raise("Traced.Fast", nil)
	if got := len(tr.Snapshot()); got != 1 {
		t.Errorf("records after disable = %d, want 1", got)
	}
}

// Slow path: guards, an over-bound handler and a faulting handler are
// classified in the ring record, and each invoked handler gets a latency
// series keyed by its installer.
func TestRaiseTracedSlowPathOutcomes(t *testing.T) {
	d, eng := newTestDispatcher()
	_ = d.Define("Traced.Slow", DefineOptions{
		Constraint: Constraint{TimeBound: 5 * sim.Microsecond},
		Primary:    func(_, _ any) any { return "primary" },
	})
	_, _ = d.Install("Traced.Slow", func(_, _ any) any {
		eng.Clock.Advance(50 * sim.Microsecond) // over the bound: aborted
		return "slow"
	}, InstallOptions{Installer: testIdent("hog")})
	_, _ = d.Install("Traced.Slow", func(_, _ any) any { return "skipped" },
		InstallOptions{Installer: testIdent("gated"), Guard: func(any) bool { return false }})
	tr := trace.New(64)
	d.SetTracer(tr)

	d.Raise("Traced.Slow", nil)
	recs := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("ring records = %d, want 1", len(recs))
	}
	if r := recs[0]; r.Handlers != 2 || r.Outcome != trace.OutcomeAborted {
		t.Errorf("record = %+v, want 2 handlers ran, outcome abort", r)
	}
	if h, ok := tr.Histogram("Traced.Slow#hog"); !ok || h.Count() != 1 {
		t.Error("hog handler series missing")
	}
	if _, ok := tr.Histogram("Traced.Slow#gated"); ok {
		t.Error("guarded-out handler must not be observed")
	}

	// A faulting handler is contained and classified as a fault.
	_ = d.Define("Traced.Fault", DefineOptions{
		Primary: func(_, _ any) any { return nil },
	})
	_, _ = d.Install("Traced.Fault", func(_, _ any) any { panic("boom") },
		InstallOptions{Installer: testIdent("bad")})
	d.Raise("Traced.Fault", nil)
	recs = tr.Snapshot()
	last := recs[len(recs)-1]
	if last.Event != "Traced.Fault" || last.Outcome != trace.OutcomeFaulted {
		t.Errorf("fault record = %+v", last)
	}
}

// Torture (run under -race): parallel raises with tracing enabled while
// another goroutine toggles the tracer on and off. Record totals must be
// consistent with the raises that saw a tracer.
func TestRaiseTracedConcurrentToggle(t *testing.T) {
	d, _ := newTestDispatcher()
	_ = d.Define("Traced.Toggle", DefineOptions{Primary: func(_, _ any) any { return nil }})
	tr := trace.New(1024)
	const raisers = 4
	const perG = 20000
	var wg sync.WaitGroup
	for g := 0; g < raisers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				d.Raise("Traced.Toggle", i)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			d.SetTracer(tr)
			d.SetTracer(nil)
		}
		d.SetTracer(tr)
	}()
	wg.Wait()
	raises, _, _ := d.Stats("Traced.Toggle")
	if raises != raisers*perG {
		t.Errorf("raises = %d, want %d", raises, raisers*perG)
	}
	if pub := tr.Ring().Published(); pub > raisers*perG {
		t.Errorf("published %d records from %d raises", pub, raisers*perG)
	}
}
