// Package dispatch implements SPIN's central event dispatcher (paper §3.2).
//
// An event is a message announcing a state change or a request for service;
// in SPIN any procedure exported from an interface is also an event, and the
// right to call the procedure is the right to raise the event. A handler is
// a procedure of the same type, installed on the event through the
// dispatcher. The module that statically exports the procedure is the
// event's *default implementation module*; it holds the primary right to
// handle the event, approves or denies other installations, and may attach a
// guard to each approved handler.
//
// The dispatcher optimizes the common case: when exactly one synchronous,
// unguarded handler is installed, an event raise is a direct procedure call
// (one cross-domain call of virtual cost). Otherwise the dispatcher walks
// the guard/handler pairs, charging per-guard and per-handler costs — the
// linear behaviour measured in the paper's §5.5 scaling experiment.
package dispatch

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"spin/internal/domain"
	"spin/internal/sim"
)

// Handler is an event handler. arg is the event argument supplied by the
// raiser; closure is the handler-private value supplied at install time (the
// paper's footnote 1: a closure lets one handler serve several contexts).
type Handler func(arg, closure any) any

// Guard is a predicate evaluated by the dispatcher before its handler; if
// false, the handler is ignored for this raise.
type Guard func(arg any) bool

// Combiner folds the results of multiple handlers into the single result
// communicated back to the raiser [Pardyak & Bershad 94]. It receives the
// results of the handlers that actually ran, in execution order.
type Combiner func(results []any) any

// LastResult is the default combiner: procedure-call semantics, returning
// the result of the final handler executed (nil when none ran).
func LastResult(results []any) any {
	if len(results) == 0 {
		return nil
	}
	return results[len(results)-1]
}

// InstallAuthorizer is consulted by the dispatcher when a module other than
// the default implementation module asks to install a handler. It may deny
// the installation by returning an error, and may impose an additional guard
// of its own (e.g. IP's per-protocol-type guards).
type InstallAuthorizer func(installer domain.Identity) (Guard, error)

// Constraint expresses the default implementation module's trust in
// handlers for one event (paper §3.2: synchronous/asynchronous, bounded
// time, ordering).
type Constraint struct {
	// Async runs non-primary handlers in a separate kernel thread from
	// the raiser, isolating the raiser from handler latency. Results of
	// async handlers are not communicated to the raiser.
	Async bool
	// TimeBound, when non-zero, aborts (discards the result of and
	// counts) any handler that consumes more virtual time than the bound.
	TimeBound sim.Duration
	// Ordered preserves installation order among handlers. When false the
	// dispatcher may run them in undefined order (we still use install
	// order, but clients must not rely on it).
	Ordered bool
}

// ErrInstallDenied is returned when the default implementation module
// refuses a handler installation.
var ErrInstallDenied = errors.New("dispatch: installation denied")

// ErrNoSuchEvent is returned for operations on an undefined event name.
var ErrNoSuchEvent = errors.New("dispatch: no such event")

type handlerEntry struct {
	handler Handler
	guards  []Guard
	closure any
	owner   domain.Identity
	primary bool
	id      int
	event   string
}

type eventState struct {
	name       string
	authorizer InstallAuthorizer
	constraint Constraint
	combiner   Combiner
	handlers   []*handlerEntry
	nextID     int
	raises     int64
	aborts     int64
}

// Dispatcher routes event raises to handlers. One dispatcher serves one
// kernel instance.
type Dispatcher struct {
	clock   *sim.Clock
	profile *sim.Profile
	engine  *sim.Engine

	mu     sync.Mutex
	events map[string]*eventState
	// faults counts handler runtime exceptions contained at the dispatch
	// boundary; lastFault describes the most recent.
	faults    int64
	lastFault string
}

// New returns a dispatcher charging costs from profile against the engine's
// clock. Async handlers are scheduled on the engine.
func New(engine *sim.Engine, profile *sim.Profile) *Dispatcher {
	return &Dispatcher{
		clock:   engine.Clock,
		profile: profile,
		engine:  engine,
		events:  make(map[string]*eventState),
	}
}

// DefineOptions configures an event at definition time.
type DefineOptions struct {
	// Primary is the default implementation: the procedure the event
	// names. It may be nil for pure-announcement events.
	Primary Handler
	// PrimaryClosure is passed to the primary handler.
	PrimaryClosure any
	// Authorizer gates installations by other modules; nil admits all.
	Authorizer InstallAuthorizer
	// Constraint is the trust contract for additional handlers.
	Constraint Constraint
	// Combiner folds multiple results; nil means LastResult.
	Combiner Combiner
}

// Define declares an event. The caller is, by definition, the default
// implementation module for the event. Redefinition fails.
func (d *Dispatcher) Define(name string, opts DefineOptions) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.events[name]; dup {
		return fmt.Errorf("dispatch: event %q already defined", name)
	}
	st := &eventState{
		name:       name,
		authorizer: opts.Authorizer,
		constraint: opts.Constraint,
		combiner:   opts.Combiner,
	}
	if st.combiner == nil {
		st.combiner = LastResult
	}
	if opts.Primary != nil {
		st.handlers = append(st.handlers, &handlerEntry{
			handler: opts.Primary,
			closure: opts.PrimaryClosure,
			primary: true,
			id:      st.nextID,
			event:   name,
		})
		st.nextID++
	}
	d.events[name] = st
	return nil
}

// InstallOptions configures a handler installation.
type InstallOptions struct {
	// Guard restricts invocation; the installer may stack it on top of
	// any guard the authorizer imposes.
	Guard Guard
	// Closure is passed to the handler on each invocation.
	Closure any
	// Installer identifies the installing module for authorization.
	Installer domain.Identity
}

// HandlerRef names an installed handler for later removal.
type HandlerRef struct {
	event string
	id    int
}

// Install registers a handler on the named event after consulting the
// event's authorizer. The authorizer's guard (if any) is evaluated before
// the installer's own guard.
func (d *Dispatcher) Install(event string, h Handler, opts InstallOptions) (HandlerRef, error) {
	if h == nil {
		return HandlerRef{}, errors.New("dispatch: nil handler")
	}
	d.mu.Lock()
	st, ok := d.events[event]
	d.mu.Unlock()
	if !ok {
		return HandlerRef{}, fmt.Errorf("%w: %q", ErrNoSuchEvent, event)
	}
	var guards []Guard
	if st.authorizer != nil {
		g, err := st.authorizer(opts.Installer)
		if err != nil {
			return HandlerRef{}, fmt.Errorf("%w: %q: %v", ErrInstallDenied, event, err)
		}
		if g != nil {
			guards = append(guards, g)
		}
	}
	if opts.Guard != nil {
		guards = append(guards, opts.Guard)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e := &handlerEntry{
		handler: h,
		guards:  guards,
		closure: opts.Closure,
		owner:   opts.Installer,
		id:      st.nextID,
		event:   event,
	}
	st.nextID++
	st.handlers = append(st.handlers, e)
	return HandlerRef{event: event, id: e.id}, nil
}

// AddGuard stacks an additional guard on an installed handler, further
// constraining its invocation (paper: "A handler can stack additional guards
// on an event").
func (d *Dispatcher) AddGuard(ref HandlerRef, g Guard) error {
	if g == nil {
		return errors.New("dispatch: nil guard")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.events[ref.event]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchEvent, ref.event)
	}
	for _, e := range st.handlers {
		if e.id == ref.id {
			e.guards = append(e.guards, g)
			return nil
		}
	}
	return fmt.Errorf("dispatch: handler %d not installed on %q", ref.id, ref.event)
}

// Remove uninstalls a handler.
func (d *Dispatcher) Remove(ref HandlerRef) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.events[ref.event]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchEvent, ref.event)
	}
	for i, e := range st.handlers {
		if e.id == ref.id {
			st.handlers = append(st.handlers[:i], st.handlers[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("dispatch: handler %d not installed on %q", ref.id, ref.event)
}

// RemovePrimary removes the event's primary handler — permitted by the
// model ("Other modules may request that the dispatcher ... even remove the
// primary handler"), subject to the same authorizer.
func (d *Dispatcher) RemovePrimary(event string, requester domain.Identity) error {
	d.mu.Lock()
	st, ok := d.events[event]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchEvent, event)
	}
	if st.authorizer != nil {
		if _, err := st.authorizer(requester); err != nil {
			return fmt.Errorf("%w: %q: %v", ErrInstallDenied, event, err)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, e := range st.handlers {
		if e.primary {
			st.handlers = append(st.handlers[:i], st.handlers[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("dispatch: event %q has no primary handler", event)
}

// Raise dispatches the event synchronously and returns the combined result.
// Raising an undefined event returns nil (announcements into the void are
// legal; the raiser cannot distinguish "no event" from "no handlers").
func (d *Dispatcher) Raise(event string, arg any) any {
	d.mu.Lock()
	st, ok := d.events[event]
	if !ok {
		d.mu.Unlock()
		return nil
	}
	st.raises++
	// Fast path: exactly one unguarded synchronous handler — direct
	// procedure call from raiser to handler (still within the runtime's
	// exception containment).
	if len(st.handlers) == 1 && len(st.handlers[0].guards) == 0 && !st.constraint.Async {
		e := st.handlers[0]
		d.mu.Unlock()
		d.clock.Advance(d.profile.CrossDomainCall)
		res, _ := d.invokeBounded(0, e, arg)
		return res
	}
	handlers := make([]*handlerEntry, len(st.handlers))
	copy(handlers, st.handlers)
	constraint := st.constraint
	combiner := st.combiner
	d.mu.Unlock()

	var results []any
	for _, e := range handlers {
		pass := true
		for _, g := range e.guards {
			d.clock.Advance(d.profile.GuardEval)
			if !g(arg) {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		if constraint.Async && !e.primary {
			// Separate thread from the raiser: schedule on the
			// engine; result is not communicated back.
			e := e
			d.clock.Advance(d.profile.HandlerInvoke)
			d.engine.After(0, func() {
				d.runBounded(st, e, arg)
			})
			continue
		}
		d.clock.Advance(d.profile.HandlerInvoke)
		res, aborted := d.invokeBounded(constraint.TimeBound, e, arg)
		if aborted {
			d.mu.Lock()
			st.aborts++
			d.mu.Unlock()
			continue
		}
		results = append(results, res)
	}
	return combiner(results)
}

// runBounded executes an async handler under the event's time bound.
func (d *Dispatcher) runBounded(st *eventState, e *handlerEntry, arg any) {
	d.mu.Lock()
	bound := st.constraint.TimeBound
	d.mu.Unlock()
	if _, aborted := d.invokeBounded(bound, e, arg); aborted {
		d.mu.Lock()
		st.aborts++
		d.mu.Unlock()
	}
}

// invokeBounded runs the handler, enforcing the virtual-time bound: if the
// handler advanced the clock beyond the bound its result is discarded and it
// is reported aborted. (We cannot preempt mid-handler, but in virtual time
// the observable effect — bounded charge to the raiser, discarded result —
// matches the model; the kernel is preemptive, so a handler cannot take over
// the processor.)
//
// A handler that raises a runtime exception (panics) is contained by the
// language runtime: the exception is caught at the dispatch boundary, the
// handler's result is discarded, and the failure is counted — "the failure
// of an extension is no more catastrophic than the failure of code executing
// in the runtime libraries found in conventional systems" (§4.3). The raiser
// and all other handlers proceed.
func (d *Dispatcher) invokeBounded(bound sim.Duration, e *handlerEntry, arg any) (res any, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			d.mu.Lock()
			d.faults++
			d.lastFault = fmt.Sprintf("handler of %q (installer %q): %v", e.event, e.owner.Name, r)
			d.mu.Unlock()
			res, aborted = nil, true
		}
	}()
	if bound <= 0 {
		return e.handler(arg, e.closure), false
	}
	start := d.clock.Now()
	res = e.handler(arg, e.closure)
	if d.clock.Now().Sub(start) > bound {
		return nil, true
	}
	return res, false
}

// ExtensionFaults reports how many handler runtime exceptions the dispatcher
// has contained, and the most recent one's description.
func (d *Dispatcher) ExtensionFaults() (int64, string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faults, d.lastFault
}

// HandlerCount reports the number of handlers installed on event (including
// the primary).
func (d *Dispatcher) HandlerCount(event string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if st, ok := d.events[event]; ok {
		return len(st.handlers)
	}
	return 0
}

// Stats reports raise and abort counts for event.
func (d *Dispatcher) Stats(event string) (raises, aborts int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if st, ok := d.events[event]; ok {
		return st.raises, st.aborts
	}
	return 0, 0
}

// Events lists the defined event names, sorted. Used by the Figure 5
// protocol-graph dump.
func (d *Dispatcher) Events() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.events))
	for n := range d.events {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HandlerOwners reports the identities of the handlers installed on event in
// installation order ("" for the primary). Used by the Figure 5 graph dump.
func (d *Dispatcher) HandlerOwners(event string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.events[event]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(st.handlers))
	for _, e := range st.handlers {
		if e.primary {
			out = append(out, "(primary)")
		} else {
			out = append(out, e.owner.Name)
		}
	}
	return out
}
