// Package dispatch implements SPIN's central event dispatcher (paper §3.2).
//
// An event is a message announcing a state change or a request for service;
// in SPIN any procedure exported from an interface is also an event, and the
// right to call the procedure is the right to raise the event. A handler is
// a procedure of the same type, installed on the event through the
// dispatcher. The module that statically exports the procedure is the
// event's *default implementation module*; it holds the primary right to
// handle the event, approves or denies other installations, and may attach a
// guard to each approved handler.
//
// The dispatcher optimizes the common case: when exactly one synchronous,
// unguarded handler is installed, an event raise is a direct procedure call
// (one cross-domain call of virtual cost). Otherwise the dispatcher walks
// the guard/handler pairs, charging per-guard and per-handler costs — the
// linear behaviour measured in the paper's §5.5 scaling experiment.
//
// Concurrency model: the read path (Raise, Stats, introspection) is
// lock-free. Per-event state is published as an immutable snapshot through
// an atomic pointer, and the event table itself is a copy-on-write map
// behind another atomic pointer. Writers (Define, Install, AddGuard,
// Remove, RemovePrimary) serialize on a single mutex, build a fresh
// snapshot, and swap it in; raises in flight keep dispatching against the
// snapshot they loaded. Counters are atomics, so raise/abort/fault totals
// are exact under parallel raises. Authorizers are consulted while the
// writer lock is held, making authorization + insertion atomic with respect
// to concurrent installs — an authorizer must therefore not call back into
// the dispatcher's write operations.
package dispatch

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"spin/internal/domain"
	"spin/internal/faultinject"
	"spin/internal/sim"
	"spin/internal/trace"
)

// Handler is an event handler. arg is the event argument supplied by the
// raiser; closure is the handler-private value supplied at install time (the
// paper's footnote 1: a closure lets one handler serve several contexts).
type Handler func(arg, closure any) any

// Guard is a predicate evaluated by the dispatcher before its handler; if
// false, the handler is ignored for this raise.
type Guard func(arg any) bool

// Combiner folds the results of multiple handlers into the single result
// communicated back to the raiser [Pardyak & Bershad 94]. It receives the
// results of the handlers that actually ran, in execution order.
type Combiner func(results []any) any

// LastResult is the default combiner: procedure-call semantics, returning
// the result of the final handler executed (nil when none ran).
func LastResult(results []any) any {
	if len(results) == 0 {
		return nil
	}
	return results[len(results)-1]
}

// InstallAuthorizer is consulted by the dispatcher when a module other than
// the default implementation module asks to install a handler. It may deny
// the installation by returning an error, and may impose an additional guard
// of its own (e.g. IP's per-protocol-type guards). Authorizers run with the
// dispatcher's writer lock held and must not call back into Define, Install,
// AddGuard, Remove or RemovePrimary.
type InstallAuthorizer func(installer domain.Identity) (Guard, error)

// Constraint expresses the default implementation module's trust in
// handlers for one event (paper §3.2: synchronous/asynchronous, bounded
// time, ordering).
type Constraint struct {
	// Async runs non-primary handlers in a separate kernel thread from
	// the raiser, isolating the raiser from handler latency. Results of
	// async handlers are not communicated to the raiser.
	Async bool
	// TimeBound, when non-zero, aborts (discards the result of and
	// counts) any handler that consumes more virtual time than the bound.
	TimeBound sim.Duration
	// Ordered preserves installation order among handlers. When false the
	// dispatcher may run them in undefined order (we still use install
	// order, but clients must not rely on it).
	Ordered bool
}

// ErrInstallDenied is returned when the default implementation module
// refuses a handler installation.
var ErrInstallDenied = errors.New("dispatch: installation denied")

// ErrNoSuchEvent is returned for operations on an undefined event name.
var ErrNoSuchEvent = errors.New("dispatch: no such event")

// ErrKeyedPrimary is returned by RemovePrimary on an event defined through
// DefineKeyed: the primary there is the key demultiplexer, and removing it
// would silently disconnect every keyed handler. Remove keyed handlers
// individually with KeyedEvent.RemoveKeyed instead.
var ErrKeyedPrimary = errors.New("dispatch: primary is the keyed demultiplexer")

// handlerEntry is immutable once published in a snapshot. AddGuard replaces
// the entry (with a freshly copied guard slice) rather than mutating it, so
// a Raise iterating a snapshot never observes a guard list changing.
type handlerEntry struct {
	handler Handler
	guards  []Guard
	closure any
	owner   domain.Identity
	primary bool
	id      int
	event   string
	// faults and overruns are the handler's lifetime misbehaviour
	// counters, shared by pointer across snapshot copies so an AddGuard
	// replacement does not reset a handler's quarantine budget.
	faults   *atomic.Int64
	overruns *atomic.Int64
}

// newHandlerEntry allocates an entry with fresh misbehaviour counters.
func newHandlerEntry(e handlerEntry) *handlerEntry {
	e.faults = new(atomic.Int64)
	e.overruns = new(atomic.Int64)
	return &e
}

// withGuard returns a copy of e with g appended to its guard chain.
func (e *handlerEntry) withGuard(g Guard) *handlerEntry {
	ne := *e
	ne.guards = append(append([]Guard(nil), e.guards...), g)
	return &ne
}

// eventSnapshot is the immutable per-event state the read path dispatches
// against. Writers build a new snapshot and publish it atomically.
type eventSnapshot struct {
	authorizer InstallAuthorizer
	constraint Constraint
	combiner   Combiner
	handlers   []*handlerEntry
	// keyed marks events defined via DefineKeyed, whose primary is the
	// key-demultiplexing trampoline (see ErrKeyedPrimary).
	keyed bool
}

// clone returns a shallow copy of s with its own handler slice, ready for a
// writer to edit before publishing.
func (s *eventSnapshot) clone() *eventSnapshot {
	ns := *s
	ns.handlers = append([]*handlerEntry(nil), s.handlers...)
	return &ns
}

// eventState is the stable identity of a defined event: the atomically
// published snapshot plus counters. nextID is guarded by Dispatcher.mu.
type eventState struct {
	name   string
	snap   atomic.Pointer[eventSnapshot]
	raises atomic.Int64
	aborts atomic.Int64
	faults atomic.Int64
	nextID int
}

// Dispatcher routes event raises to handlers. One dispatcher serves one
// kernel instance.
type Dispatcher struct {
	clock   *sim.Clock
	profile *sim.Profile
	engine  *sim.Engine

	// mu serializes writers (Define/Install/AddGuard/Remove/RemovePrimary).
	// The read path never takes it.
	mu sync.Mutex
	// events is the copy-on-write event table: Define copies the map,
	// inserts, and swaps the pointer. eventState values are never removed
	// or replaced, so a loaded *eventState stays valid forever.
	events atomic.Pointer[map[string]*eventState]

	// faults counts handler runtime exceptions contained at the dispatch
	// boundary; lastFault (guarded by faultMu) describes the most recent.
	faults    atomic.Int64
	faultMu   sync.Mutex
	lastFault string

	// Quarantine policy: a handler whose lifetime fault count reaches
	// qFaultThreshold, or whose time-bound-overrun count reaches
	// qOverrunBudget, is atomically unlinked from its event (the event
	// falls back to its primary). Zero disables that dimension.
	qFaultThreshold atomic.Int64
	qOverrunBudget  atomic.Int64
	// qmu guards the quarantine log; onQuarantine is the notification
	// callback (invoked outside all dispatcher locks).
	qmu          sync.Mutex
	quarantined  []QuarantineRecord
	onQuarantine atomic.Pointer[func(QuarantineRecord)]

	// tracer, when non-nil, receives a trace record and latency samples
	// for every raise. Disabled tracing costs the read path exactly one
	// predictable-nil atomic load; enabling/disabling is one pointer swap
	// and raises in flight keep the tracer they loaded.
	tracer atomic.Pointer[trace.Tracer]

	// injector, when non-nil, is consulted at the "dispatch.invoke" fault-
	// injection site on every handler invocation. Same cost discipline as
	// the tracer: disabled is one predictable-nil load.
	injector atomic.Pointer[faultinject.Injector]
}

// New returns a dispatcher charging costs from profile against the engine's
// clock. Async handlers are scheduled on the engine.
func New(engine *sim.Engine, profile *sim.Profile) *Dispatcher {
	d := &Dispatcher{
		clock:   engine.Clock,
		profile: profile,
		engine:  engine,
	}
	empty := make(map[string]*eventState)
	d.events.Store(&empty)
	return d
}

// lookup finds an event without locking. Safe from any goroutine.
func (d *Dispatcher) lookup(name string) (*eventState, bool) {
	st, ok := (*d.events.Load())[name]
	return st, ok
}

// DefineOptions configures an event at definition time.
type DefineOptions struct {
	// Primary is the default implementation: the procedure the event
	// names. It may be nil for pure-announcement events.
	Primary Handler
	// PrimaryClosure is passed to the primary handler.
	PrimaryClosure any
	// Authorizer gates installations by other modules; nil admits all.
	Authorizer InstallAuthorizer
	// Constraint is the trust contract for additional handlers.
	Constraint Constraint
	// Combiner folds multiple results; nil means LastResult.
	Combiner Combiner

	// keyedDemux is set by DefineKeyed: the primary is the key index
	// trampoline and must not be removable via RemovePrimary.
	keyedDemux bool
}

// Define declares an event. The caller is, by definition, the default
// implementation module for the event. Redefinition fails.
func (d *Dispatcher) Define(name string, opts DefineOptions) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := *d.events.Load()
	if _, dup := old[name]; dup {
		return fmt.Errorf("dispatch: event %q already defined", name)
	}
	snap := &eventSnapshot{
		authorizer: opts.Authorizer,
		constraint: opts.Constraint,
		combiner:   opts.Combiner,
		keyed:      opts.keyedDemux,
	}
	if snap.combiner == nil {
		snap.combiner = LastResult
	}
	st := &eventState{name: name}
	if opts.Primary != nil {
		snap.handlers = append(snap.handlers, newHandlerEntry(handlerEntry{
			handler: opts.Primary,
			closure: opts.PrimaryClosure,
			primary: true,
			id:      st.nextID,
			event:   name,
		}))
		st.nextID++
	}
	st.snap.Store(snap)
	next := make(map[string]*eventState, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = st
	d.events.Store(&next)
	return nil
}

// InstallOptions configures a handler installation.
type InstallOptions struct {
	// Guard restricts invocation; the installer may stack it on top of
	// any guard the authorizer imposes.
	Guard Guard
	// Closure is passed to the handler on each invocation.
	Closure any
	// Installer identifies the installing module for authorization.
	Installer domain.Identity
}

// HandlerRef names an installed handler for later removal.
type HandlerRef struct {
	event string
	id    int
}

// Install registers a handler on the named event after consulting the
// event's authorizer. The authorizer's guard (if any) is evaluated before
// the installer's own guard. The authorizer consultation and the insertion
// are one atomic step with respect to concurrent installs: two racing
// installs cannot interleave authorizer guards with the wrong entry.
func (d *Dispatcher) Install(event string, h Handler, opts InstallOptions) (HandlerRef, error) {
	if h == nil {
		return HandlerRef{}, errors.New("dispatch: nil handler")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.lookup(event)
	if !ok {
		return HandlerRef{}, fmt.Errorf("%w: %q", ErrNoSuchEvent, event)
	}
	snap := st.snap.Load()
	var guards []Guard
	if snap.authorizer != nil {
		g, err := snap.authorizer(opts.Installer)
		if err != nil {
			return HandlerRef{}, fmt.Errorf("%w: %q: %v", ErrInstallDenied, event, err)
		}
		if g != nil {
			guards = append(guards, g)
		}
	}
	if opts.Guard != nil {
		guards = append(guards, opts.Guard)
	}
	e := newHandlerEntry(handlerEntry{
		handler: h,
		guards:  guards,
		closure: opts.Closure,
		owner:   opts.Installer,
		id:      st.nextID,
		event:   event,
	})
	st.nextID++
	ns := snap.clone()
	ns.handlers = append(ns.handlers, e)
	st.snap.Store(ns)
	return HandlerRef{event: event, id: e.id}, nil
}

// AddGuard stacks an additional guard on an installed handler, further
// constraining its invocation (paper: "A handler can stack additional guards
// on an event"). The handler entry is replaced, not mutated, so concurrent
// raises never observe a half-updated guard chain.
func (d *Dispatcher) AddGuard(ref HandlerRef, g Guard) error {
	if g == nil {
		return errors.New("dispatch: nil guard")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.lookup(ref.event)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchEvent, ref.event)
	}
	snap := st.snap.Load()
	for i, e := range snap.handlers {
		if e.id == ref.id {
			ns := snap.clone()
			ns.handlers[i] = e.withGuard(g)
			st.snap.Store(ns)
			return nil
		}
	}
	return fmt.Errorf("dispatch: handler %d not installed on %q", ref.id, ref.event)
}

// Remove uninstalls a handler.
func (d *Dispatcher) Remove(ref HandlerRef) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.lookup(ref.event)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchEvent, ref.event)
	}
	snap := st.snap.Load()
	for i, e := range snap.handlers {
		if e.id == ref.id {
			ns := snap.clone()
			ns.handlers = append(ns.handlers[:i:i], ns.handlers[i+1:]...)
			st.snap.Store(ns)
			return nil
		}
	}
	return fmt.Errorf("dispatch: handler %d not installed on %q", ref.id, ref.event)
}

// RemovePrimary removes the event's primary handler — permitted by the
// model ("Other modules may request that the dispatcher ... even remove the
// primary handler"), subject to the same authorizer. For events defined via
// DefineKeyed it fails with ErrKeyedPrimary: the primary there is the key
// demultiplexer, and removing it would silently orphan every keyed handler.
func (d *Dispatcher) RemovePrimary(event string, requester domain.Identity) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.lookup(event)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchEvent, event)
	}
	snap := st.snap.Load()
	if snap.keyed {
		return fmt.Errorf("%w: %q", ErrKeyedPrimary, event)
	}
	if snap.authorizer != nil {
		if _, err := snap.authorizer(requester); err != nil {
			return fmt.Errorf("%w: %q: %v", ErrInstallDenied, event, err)
		}
	}
	for i, e := range snap.handlers {
		if e.primary {
			ns := snap.clone()
			ns.handlers = append(ns.handlers[:i:i], ns.handlers[i+1:]...)
			st.snap.Store(ns)
			return nil
		}
	}
	return fmt.Errorf("dispatch: event %q has no primary handler", event)
}

// Raise dispatches the event synchronously and returns the combined result.
// Raising an undefined event returns nil (announcements into the void are
// legal; the raiser cannot distinguish "no event" from "no handlers").
//
// Raise acquires no locks: it loads the event table and the event's
// snapshot through atomic pointers and dispatches against that immutable
// view. Raises of unrelated events proceed fully in parallel; a raise
// concurrent with an install sees either the old or the new handler list,
// never a torn one. Events with Async constraints schedule handlers on the
// simulation engine, which is single-threaded — raise those only from the
// simulation goroutine.
func (d *Dispatcher) Raise(event string, arg any) any {
	st, ok := d.lookup(event)
	if !ok {
		return nil
	}
	st.raises.Add(1)
	snap := st.snap.Load()
	// Tracing disabled is the common case: tr is nil and the only cost on
	// this path is the one predictable-nil load above each branch below.
	tr := d.tracer.Load()
	// Fast path: exactly one unguarded synchronous handler — direct
	// procedure call from raiser to handler (still within the runtime's
	// exception containment and the event's time bound).
	if len(snap.handlers) == 1 && len(snap.handlers[0].guards) == 0 && !snap.constraint.Async {
		e := snap.handlers[0]
		d.clock.Advance(d.profile.CrossDomainCall)
		if tr == nil {
			res, aborted, _ := d.invokeBounded(st, snap.constraint.TimeBound, e, arg)
			if aborted {
				st.aborts.Add(1)
				return nil
			}
			return res
		}
		start := d.clock.Now()
		res, aborted, faulted := d.invokeBounded(st, snap.constraint.TimeBound, e, arg)
		dur := d.clock.Now().Sub(start)
		tr.Observe(handlerKey(e), dur)
		tr.Trace(trace.Record{
			Event: event, Origin: "dispatch", Handlers: 1,
			Start: start, Duration: dur, Outcome: outcomeOf(aborted, faulted),
		})
		if aborted {
			st.aborts.Add(1)
			return nil
		}
		return res
	}

	var start sim.Time
	if tr != nil {
		start = d.clock.Now()
	}
	var results []any
	ran := 0
	anyAbort, anyFault := false, false
	for _, e := range snap.handlers {
		pass := true
		for _, g := range e.guards {
			d.clock.Advance(d.profile.GuardEval)
			if !g(arg) {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		if snap.constraint.Async && !e.primary {
			// Separate thread from the raiser: schedule on the
			// engine; result is not communicated back.
			e := e
			bound := snap.constraint.TimeBound
			d.clock.Advance(d.profile.HandlerInvoke)
			ran++
			d.engine.After(0, func() {
				if _, aborted, _ := d.invokeBounded(st, bound, e, arg); aborted {
					st.aborts.Add(1)
				}
			})
			continue
		}
		d.clock.Advance(d.profile.HandlerInvoke)
		ran++
		var hstart sim.Time
		if tr != nil {
			hstart = d.clock.Now()
		}
		res, aborted, faulted := d.invokeBounded(st, snap.constraint.TimeBound, e, arg)
		if tr != nil {
			tr.Observe(handlerKey(e), d.clock.Now().Sub(hstart))
		}
		if aborted {
			st.aborts.Add(1)
			anyAbort = true
			anyFault = anyFault || faulted
			continue
		}
		results = append(results, res)
	}
	if tr != nil {
		tr.Trace(trace.Record{
			Event: event, Origin: "dispatch", Handlers: ran,
			Start: start, Duration: d.clock.Now().Sub(start),
			Outcome: outcomeOf(anyAbort, anyFault),
		})
	}
	return snap.combiner(results)
}

// handlerKey names a handler's latency series: the event plus the
// installer's identity ("#primary" for the default implementation).
func handlerKey(e *handlerEntry) string {
	if e.primary {
		return e.event + "#primary"
	}
	return e.event + "#" + e.owner.Name
}

// outcomeOf classifies a dispatch for its trace record.
func outcomeOf(aborted, faulted bool) trace.Outcome {
	switch {
	case faulted:
		return trace.OutcomeFaulted
	case aborted:
		return trace.OutcomeAborted
	default:
		return trace.OutcomeOK
	}
}

// SetTracer enables tracing (t non-nil) or disables it (t nil) with a
// single atomic pointer swap. Raises in flight keep whichever tracer they
// loaded at dispatch start.
func (d *Dispatcher) SetTracer(t *trace.Tracer) { d.tracer.Store(t) }

// Tracer returns the active tracer, or nil when tracing is disabled.
// Subsystems outside the dispatcher (netstack, scheduler, pager) use it to
// feed their own latency series through the same enable/disable switch.
func (d *Dispatcher) Tracer() *trace.Tracer { return d.tracer.Load() }

// invokeBounded runs the handler, enforcing the virtual-time bound: if the
// handler advanced the clock beyond the bound its result is discarded and it
// is reported aborted. (We cannot preempt mid-handler, but in virtual time
// the observable effect — bounded charge to the raiser, discarded result —
// matches the model; the kernel is preemptive, so a handler cannot take over
// the processor.)
//
// A handler that raises a runtime exception (panics) is contained by the
// language runtime: the exception is caught at the dispatch boundary, the
// handler's result is discarded, and the failure is counted — "the failure
// of an extension is no more catastrophic than the failure of code executing
// in the runtime libraries found in conventional systems" (§4.3). The raiser
// and all other handlers proceed. Faults are counted globally, per event,
// and per handler; a handler that exhausts its quarantine budget (fault
// threshold or time-bound-overrun budget) is atomically unlinked.
//
// "dispatch.invoke" is a fault-injection site: an armed KindPanic rule
// faults the handler here (inside the containment boundary), a KindDelay
// rule slows it against its time bound.
func (d *Dispatcher) invokeBounded(st *eventState, bound sim.Duration, e *handlerEntry, arg any) (res any, aborted, faulted bool) {
	defer func() {
		if r := recover(); r != nil {
			d.faults.Add(1)
			st.faults.Add(1)
			faults := e.faults.Add(1)
			d.faultMu.Lock()
			d.lastFault = fmt.Sprintf("handler of %q (installer %q): %v", e.event, e.owner.Name, r)
			d.faultMu.Unlock()
			if thr := d.qFaultThreshold.Load(); thr > 0 && faults >= thr {
				d.quarantine(st, e, fmt.Sprintf("%d faults (threshold %d), last: %v", faults, thr, r))
			}
			res, aborted, faulted = nil, true, true
		}
	}()
	inj := d.injector.Load()
	inj.Fire("dispatch.invoke")
	if bound <= 0 {
		return e.handler(arg, e.closure), false, false
	}
	start := d.clock.Now()
	res = e.handler(arg, e.closure)
	if d.clock.Now().Sub(start) > bound {
		overruns := e.overruns.Add(1)
		if budget := d.qOverrunBudget.Load(); budget > 0 && overruns >= budget {
			d.quarantine(st, e, fmt.Sprintf("%d time-bound overruns (budget %d)", overruns, budget))
		}
		return nil, true, false
	}
	return res, false, false
}

// ExtensionFaults reports how many handler runtime exceptions the dispatcher
// has contained, and the most recent one's description.
func (d *Dispatcher) ExtensionFaults() (int64, string) {
	d.faultMu.Lock()
	last := d.lastFault
	d.faultMu.Unlock()
	return d.faults.Load(), last
}

// HandlerCount reports the number of handlers installed on event (including
// the primary).
func (d *Dispatcher) HandlerCount(event string) int {
	if st, ok := d.lookup(event); ok {
		return len(st.snap.Load().handlers)
	}
	return 0
}

// Stats reports raise, abort and contained-fault counts for event.
// Counters are atomics; totals are exact even under parallel raises.
func (d *Dispatcher) Stats(event string) (raises, aborts, faults int64) {
	if st, ok := d.lookup(event); ok {
		return st.raises.Load(), st.aborts.Load(), st.faults.Load()
	}
	return 0, 0, 0
}

// Events lists the defined event names, sorted. Used by the Figure 5
// protocol-graph dump.
func (d *Dispatcher) Events() []string {
	m := *d.events.Load()
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HandlerOwners reports the identities of the handlers installed on event in
// installation order ("(primary)" for the primary). Used by the Figure 5
// graph dump.
func (d *Dispatcher) HandlerOwners(event string) []string {
	st, ok := d.lookup(event)
	if !ok {
		return nil
	}
	snap := st.snap.Load()
	out := make([]string, 0, len(snap.handlers))
	for _, e := range snap.handlers {
		if e.primary {
			out = append(out, "(primary)")
		} else {
			out = append(out, e.owner.Name)
		}
	}
	return out
}
