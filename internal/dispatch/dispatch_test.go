package dispatch

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"spin/internal/domain"
	"spin/internal/sim"
)

func newTestDispatcher() (*Dispatcher, *sim.Engine) {
	eng := sim.NewEngine()
	return New(eng, &sim.SPINProfile), eng
}

func TestDefineAndRaisePrimary(t *testing.T) {
	d, _ := newTestDispatcher()
	err := d.Define("Console.Open", DefineOptions{
		Primary: func(arg, _ any) any { return fmt.Sprintf("cap:%v", arg) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Raise("Console.Open", 3); got != "cap:3" {
		t.Errorf("Raise = %v", got)
	}
}

func TestRedefineFails(t *testing.T) {
	d, _ := newTestDispatcher()
	_ = d.Define("E", DefineOptions{})
	if err := d.Define("E", DefineOptions{}); err == nil {
		t.Error("redefinition accepted")
	}
}

func TestRaiseUndefinedReturnsNil(t *testing.T) {
	d, _ := newTestDispatcher()
	if got := d.Raise("Nothing", 1); got != nil {
		t.Errorf("Raise undefined = %v", got)
	}
}

func TestSingleHandlerFastPathCost(t *testing.T) {
	// With one unguarded synchronous handler, a raise costs exactly one
	// cross-domain procedure call — the paper's 0.13µs protected
	// in-kernel call.
	d, eng := newTestDispatcher()
	_ = d.Define("Null.Call", DefineOptions{
		Primary: func(_, _ any) any { return nil },
	})
	before := eng.Clock.Now()
	d.Raise("Null.Call", nil)
	cost := eng.Clock.Now().Sub(before)
	if cost != sim.SPINProfile.CrossDomainCall {
		t.Errorf("fast-path cost = %v, want %v", cost, sim.SPINProfile.CrossDomainCall)
	}
}

func TestGuardsFilterHandlers(t *testing.T) {
	d, _ := newTestDispatcher()
	_ = d.Define("IP.PacketArrived", DefineOptions{})
	var tcpGot, udpGot []int
	_, err := d.Install("IP.PacketArrived", func(arg, _ any) any {
		tcpGot = append(tcpGot, arg.(int))
		return nil
	}, InstallOptions{Guard: func(arg any) bool { return arg.(int) == 6 }})
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Install("IP.PacketArrived", func(arg, _ any) any {
		udpGot = append(udpGot, arg.(int))
		return nil
	}, InstallOptions{Guard: func(arg any) bool { return arg.(int) == 17 }})
	if err != nil {
		t.Fatal(err)
	}
	d.Raise("IP.PacketArrived", 6)
	d.Raise("IP.PacketArrived", 17)
	d.Raise("IP.PacketArrived", 1)
	if len(tcpGot) != 1 || tcpGot[0] != 6 {
		t.Errorf("tcp handler got %v", tcpGot)
	}
	if len(udpGot) != 1 || udpGot[0] != 17 {
		t.Errorf("udp handler got %v", udpGot)
	}
}

func TestAuthorizerDeniesInstall(t *testing.T) {
	d, _ := newTestDispatcher()
	_ = d.Define("Strand.Block", DefineOptions{
		Authorizer: func(installer domain.Identity) (Guard, error) {
			if !installer.Trusted {
				return nil, errors.New("untrusted")
			}
			return nil, nil
		},
	})
	_, err := d.Install("Strand.Block", func(_, _ any) any { return nil },
		InstallOptions{Installer: domain.Identity{Name: "rogue"}})
	if !errors.Is(err, ErrInstallDenied) {
		t.Errorf("err = %v, want ErrInstallDenied", err)
	}
	_, err = d.Install("Strand.Block", func(_, _ any) any { return nil },
		InstallOptions{Installer: domain.Identity{Name: "sched", Trusted: true}})
	if err != nil {
		t.Errorf("trusted install failed: %v", err)
	}
}

func TestAuthorizerImposedGuard(t *testing.T) {
	// The IP module's idiom: the authorizer constructs a guard comparing
	// the packet's protocol type to what the installer may service.
	d, _ := newTestDispatcher()
	_ = d.Define("IP.PacketArrived", DefineOptions{
		Authorizer: func(installer domain.Identity) (Guard, error) {
			// Suppose this installer is registered for proto 17 only.
			return func(arg any) bool { return arg.(int) == 17 }, nil
		},
	})
	var got []int
	_, err := d.Install("IP.PacketArrived", func(arg, _ any) any {
		got = append(got, arg.(int))
		return nil
	}, InstallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d.Raise("IP.PacketArrived", 6)
	d.Raise("IP.PacketArrived", 17)
	if len(got) != 1 || got[0] != 17 {
		t.Errorf("got %v, want [17]", got)
	}
}

func TestStackedGuards(t *testing.T) {
	d, _ := newTestDispatcher()
	_ = d.Define("E", DefineOptions{})
	calls := 0
	ref, _ := d.Install("E", func(_, _ any) any { calls++; return nil },
		InstallOptions{Guard: func(arg any) bool { return arg.(int) > 0 }})
	if err := d.AddGuard(ref, func(arg any) bool { return arg.(int) < 10 }); err != nil {
		t.Fatal(err)
	}
	d.Raise("E", 5)
	d.Raise("E", -1)
	d.Raise("E", 50)
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}

func TestClosurePassedToHandler(t *testing.T) {
	d, _ := newTestDispatcher()
	_ = d.Define("E", DefineOptions{})
	var seen []string
	h := func(arg, closure any) any {
		seen = append(seen, closure.(string))
		return nil
	}
	// One handler body used in two contexts via closures.
	_, _ = d.Install("E", h, InstallOptions{Closure: "ctx-a"})
	_, _ = d.Install("E", h, InstallOptions{Closure: "ctx-b"})
	d.Raise("E", nil)
	if len(seen) != 2 || seen[0] != "ctx-a" || seen[1] != "ctx-b" {
		t.Errorf("seen = %v", seen)
	}
}

func TestRemoveHandler(t *testing.T) {
	d, _ := newTestDispatcher()
	_ = d.Define("E", DefineOptions{})
	calls := 0
	ref, _ := d.Install("E", func(_, _ any) any { calls++; return nil }, InstallOptions{})
	d.Raise("E", nil)
	if err := d.Remove(ref); err != nil {
		t.Fatal(err)
	}
	d.Raise("E", nil)
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if err := d.Remove(ref); err == nil {
		t.Error("double remove accepted")
	}
}

func TestRemovePrimary(t *testing.T) {
	d, _ := newTestDispatcher()
	_ = d.Define("Sched.Pick", DefineOptions{
		Primary: func(_, _ any) any { return "round-robin" },
	})
	// Replace the global scheduler: remove primary, install new.
	if err := d.RemovePrimary("Sched.Pick", domain.Identity{Name: "app-sched"}); err != nil {
		t.Fatal(err)
	}
	_, _ = d.Install("Sched.Pick", func(_, _ any) any { return "lottery" }, InstallOptions{})
	if got := d.Raise("Sched.Pick", nil); got != "lottery" {
		t.Errorf("after replacement Raise = %v", got)
	}
}

func TestRemovePrimaryAuthorized(t *testing.T) {
	d, _ := newTestDispatcher()
	_ = d.Define("E", DefineOptions{
		Primary: func(_, _ any) any { return 1 },
		Authorizer: func(id domain.Identity) (Guard, error) {
			if !id.Trusted {
				return nil, errors.New("no")
			}
			return nil, nil
		},
	})
	if err := d.RemovePrimary("E", domain.Identity{Name: "rogue"}); !errors.Is(err, ErrInstallDenied) {
		t.Errorf("err = %v, want ErrInstallDenied", err)
	}
}

func TestCombiner(t *testing.T) {
	d, _ := newTestDispatcher()
	sum := func(results []any) any {
		total := 0
		for _, r := range results {
			total += r.(int)
		}
		return total
	}
	_ = d.Define("E", DefineOptions{Combiner: sum})
	for i := 1; i <= 3; i++ {
		i := i
		_, _ = d.Install("E", func(_, _ any) any { return i }, InstallOptions{})
	}
	if got := d.Raise("E", nil); got != 6 {
		t.Errorf("combined = %v, want 6", got)
	}
}

func TestDefaultCombinerLastResult(t *testing.T) {
	d, _ := newTestDispatcher()
	_ = d.Define("E", DefineOptions{})
	_, _ = d.Install("E", func(_, _ any) any { return "first" }, InstallOptions{})
	_, _ = d.Install("E", func(_, _ any) any { return "last" }, InstallOptions{})
	if got := d.Raise("E", nil); got != "last" {
		t.Errorf("Raise = %v, want last", got)
	}
}

func TestAsyncHandlersRunOnEngine(t *testing.T) {
	d, eng := newTestDispatcher()
	_ = d.Define("E", DefineOptions{Constraint: Constraint{Async: true}})
	ran := false
	_, _ = d.Install("E", func(_, _ any) any { ran = true; return "ignored" }, InstallOptions{})
	res := d.Raise("E", nil)
	if res != nil {
		t.Errorf("async result leaked to raiser: %v", res)
	}
	if ran {
		t.Error("async handler ran synchronously")
	}
	eng.Run(0)
	if !ran {
		t.Error("async handler never ran")
	}
}

func TestTimeBoundAbortsSlowHandler(t *testing.T) {
	d, eng := newTestDispatcher()
	_ = d.Define("E", DefineOptions{Constraint: Constraint{TimeBound: 10 * sim.Microsecond}})
	_, _ = d.Install("E", func(_, _ any) any {
		eng.Clock.Advance(50 * sim.Microsecond) // hog the processor
		return "slow"
	}, InstallOptions{})
	_, _ = d.Install("E", func(_, _ any) any { return "fast" }, InstallOptions{})
	got := d.Raise("E", nil)
	if got != "fast" {
		t.Errorf("Raise = %v; slow handler's result should be discarded", got)
	}
	_, aborts, _ := d.Stats("E")
	if aborts != 1 {
		t.Errorf("aborts = %d, want 1", aborts)
	}
}

func TestDispatchCostLinearInGuards(t *testing.T) {
	// §5.5: dispatch overhead is linear in the number of guards and
	// handlers installed on the event.
	cost := func(nGuards int, guardsTrue bool) sim.Duration {
		d, eng := newTestDispatcher()
		_ = d.Define("E", DefineOptions{Primary: func(_, _ any) any { return nil }})
		for i := 0; i < nGuards; i++ {
			_, _ = d.Install("E", func(_, _ any) any { return nil },
				InstallOptions{Guard: func(any) bool { return guardsTrue }})
		}
		before := eng.Clock.Now()
		d.Raise("E", nil)
		return eng.Clock.Now().Sub(before)
	}
	c0 := cost(0, false)
	c50false := cost(50, false)
	c50true := cost(50, true)
	wantFalse := 50 * sim.SPINProfile.GuardEval
	gotFalse := c50false - c0 - sim.SPINProfile.HandlerInvoke + sim.SPINProfile.CrossDomainCall
	// c0 used the fast path (CrossDomainCall); c50false pays
	// HandlerInvoke for the primary plus 50 guard evals.
	if gotFalse != wantFalse {
		t.Errorf("50 false guards added %v, want %v", gotFalse, wantFalse)
	}
	perHandler := (c50true - c50false) / 50
	if perHandler != sim.SPINProfile.HandlerInvoke {
		t.Errorf("per-invoked-handler cost = %v, want %v", perHandler, sim.SPINProfile.HandlerInvoke)
	}
}

func TestStatsAndIntrospection(t *testing.T) {
	d, _ := newTestDispatcher()
	_ = d.Define("A", DefineOptions{Primary: func(_, _ any) any { return nil }})
	_ = d.Define("B", DefineOptions{})
	_, _ = d.Install("B", func(_, _ any) any { return nil },
		InstallOptions{Installer: domain.Identity{Name: "ext1"}})
	d.Raise("A", nil)
	d.Raise("A", nil)
	raises, _, _ := d.Stats("A")
	if raises != 2 {
		t.Errorf("raises = %d", raises)
	}
	if got := d.Events(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("Events = %v", got)
	}
	if got := d.HandlerCount("B"); got != 1 {
		t.Errorf("HandlerCount = %d", got)
	}
	owners := d.HandlerOwners("B")
	if len(owners) != 1 || owners[0] != "ext1" {
		t.Errorf("owners = %v", owners)
	}
	if d.HandlerOwners("A")[0] != "(primary)" {
		t.Errorf("primary owner tag wrong: %v", d.HandlerOwners("A"))
	}
}

func TestInstallOnUndefinedEvent(t *testing.T) {
	d, _ := newTestDispatcher()
	_, err := d.Install("Nope", func(_, _ any) any { return nil }, InstallOptions{})
	if !errors.Is(err, ErrNoSuchEvent) {
		t.Errorf("err = %v, want ErrNoSuchEvent", err)
	}
}

func TestNilHandlerRejected(t *testing.T) {
	d, _ := newTestDispatcher()
	_ = d.Define("E", DefineOptions{})
	if _, err := d.Install("E", nil, InstallOptions{}); err == nil {
		t.Error("nil handler accepted")
	}
}

// Property: for any subset of guards true, exactly the handlers whose guards
// pass run, in installation order.
func TestGuardSelectionProperty(t *testing.T) {
	if err := quick.Check(func(mask uint16) bool {
		d, _ := newTestDispatcher()
		_ = d.Define("E", DefineOptions{Constraint: Constraint{Ordered: true}})
		var ran []int
		for i := 0; i < 16; i++ {
			i := i
			pass := mask&(1<<i) != 0
			_, _ = d.Install("E", func(_, _ any) any {
				ran = append(ran, i)
				return nil
			}, InstallOptions{Guard: func(any) bool { return pass }})
		}
		d.Raise("E", nil)
		want := 0
		for i := 0; i < 16; i++ {
			if mask&(1<<i) != 0 {
				if want >= len(ran) || ran[want] != i {
					return false
				}
				want++
			}
		}
		return want == len(ran)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPanickingHandlerContained(t *testing.T) {
	// §4.3: an extension's failure is isolated. A handler that raises a
	// runtime exception must not take down the raiser or suppress other
	// handlers.
	d, _ := newTestDispatcher()
	_ = d.Define("E", DefineOptions{})
	_, _ = d.Install("E", func(_, _ any) any {
		var p *int
		return *p // nil dereference: runtime exception in the extension
	}, InstallOptions{Installer: domain.Identity{Name: "buggy-ext"}})
	healthy := 0
	_, _ = d.Install("E", func(_, _ any) any { healthy++; return "ok" }, InstallOptions{})

	got := d.Raise("E", nil) // must not panic
	if got != "ok" {
		t.Errorf("Raise = %v; healthy handler's result lost", got)
	}
	if healthy != 1 {
		t.Errorf("healthy handler ran %d times", healthy)
	}
	faults, last := d.ExtensionFaults()
	if faults != 1 {
		t.Errorf("faults = %d", faults)
	}
	if !strings.Contains(last, "buggy-ext") || !strings.Contains(last, "E") {
		t.Errorf("fault description = %q", last)
	}
}

func TestPanickingAsyncHandlerContained(t *testing.T) {
	d, eng := newTestDispatcher()
	_ = d.Define("E", DefineOptions{Constraint: Constraint{Async: true}})
	_, _ = d.Install("E", func(_, _ any) any { panic("async boom") }, InstallOptions{})
	d.Raise("E", nil)
	eng.Run(0) // must not panic the engine
	faults, _ := d.ExtensionFaults()
	if faults != 1 {
		t.Errorf("faults = %d", faults)
	}
}

func TestPanickingPrimaryOnFastPath(t *testing.T) {
	// The direct-call fast path bypasses invokeBounded; a panicking
	// primary there would escape. Verify it is contained too.
	d, _ := newTestDispatcher()
	_ = d.Define("E", DefineOptions{Primary: func(_, _ any) any { panic("fast boom") }})
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic escaped the dispatcher: %v", r)
		}
	}()
	res := d.Raise("E", nil)
	if res != nil {
		t.Errorf("result = %v", res)
	}
	faults, _ := d.ExtensionFaults()
	if faults != 1 {
		t.Errorf("faults = %d", faults)
	}
}
