package dispatch

import (
	"sync"

	"spin/internal/bcode"
)

// Verified-bytecode guards: the dispatcher's guard slot is the paper's
// original home for "little language" predicates (§2.1), and this adapter
// is where an untrusted program becomes one. The program is verified and
// compiled exactly once, at install time; afterwards the dispatcher cannot
// tell a bytecode guard from a trusted Go predicate — both are closures
// evaluated on the Raise path at GuardEval cost.

// CtxBinder translates one raised event argument into a bytecode Context.
// It returns false when the argument is not of the shape the program
// expects (the guard then declines the event, matching how trusted guards
// type-check their argument first). Contexts are recycled between
// evaluations, so a binder must fill every word its spec exposes.
type CtxBinder func(arg any, ctx *bcode.Context) bool

// VerifiedGuard verifies prog against spec and compiles it into a Guard.
// The guard matches when the program's verdict is nonzero. Installing an
// unverifiable program fails here, before the handler touches the event
// table — install-time rejection is the whole safety model.
func VerifiedGuard(prog *bcode.Program, spec bcode.Spec, bind CtxBinder) (Guard, error) {
	if err := bcode.Verify(prog, spec); err != nil {
		return nil, err
	}
	run := prog.Compile()
	return func(arg any) bool {
		// Pooled: the compiled program is a func value, so a stack-local
		// Context would escape — one allocation per guard evaluation.
		ctx := guardCtxPool.Get().(*bcode.Context)
		defer func() { ctx.Bytes = nil; guardCtxPool.Put(ctx) }()
		if !bind(arg, ctx) {
			return false
		}
		return run(ctx) != bcode.VerdictPass
	}, nil
}

var guardCtxPool = sync.Pool{New: func() any { return new(bcode.Context) }}
