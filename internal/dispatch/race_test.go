package dispatch

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"spin/internal/domain"
	"spin/internal/sim"
)

// Regression (fast-path time bound): a lone unguarded handler takes the
// direct-call fast path, which must still enforce Constraint.TimeBound — the
// containment contract holds on every dispatch path, not just the guard walk.
func TestTimeBoundEnforcedOnFastPath(t *testing.T) {
	d, eng := newTestDispatcher()
	_ = d.Define("E", DefineOptions{Constraint: Constraint{TimeBound: 10 * sim.Microsecond}})
	_, _ = d.Install("E", func(_, _ any) any {
		eng.Clock.Advance(50 * sim.Microsecond) // hog the processor
		return "slow"
	}, InstallOptions{})
	if d.HandlerCount("E") != 1 {
		t.Fatalf("want exactly one handler for the fast path, have %d", d.HandlerCount("E"))
	}
	if got := d.Raise("E", nil); got != nil {
		t.Errorf("Raise = %v; over-bound fast-path result must be discarded", got)
	}
	raises, aborts, _ := d.Stats("E")
	if raises != 1 || aborts != 1 {
		t.Errorf("stats = %d raises, %d aborts; want 1, 1", raises, aborts)
	}
	// A fast handler under the same bound is unaffected.
	_ = d.Define("F", DefineOptions{
		Constraint: Constraint{TimeBound: 10 * sim.Microsecond},
		Primary:    func(_, _ any) any { return "fast" },
	})
	if got := d.Raise("F", nil); got != "fast" {
		t.Errorf("Raise = %v, want fast", got)
	}
	if _, aborts, _ := d.Stats("F"); aborts != 0 {
		t.Errorf("fast handler aborted: %d", aborts)
	}
}

// Regression (keyed primary): the primary of a DefineKeyed event is the key
// demultiplexer; RemovePrimary must refuse rather than silently orphan the
// index.
func TestRemovePrimaryRefusedOnKeyedEvent(t *testing.T) {
	d, _ := newTestDispatcher()
	ke, err := d.DefineKeyed("UDP.Demux", keyOfPort, DefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	_, _ = ke.InstallKeyed(7, func(_, _ any) any { calls++; return nil }, nil)
	if err := d.RemovePrimary("UDP.Demux", domain.Identity{Name: "rogue"}); !errors.Is(err, ErrKeyedPrimary) {
		t.Fatalf("RemovePrimary on keyed event: err = %v, want ErrKeyedPrimary", err)
	}
	// The index still routes.
	d.Raise("UDP.Demux", &keyedArg{port: 7})
	if calls != 1 {
		t.Errorf("keyed handler calls = %d, want 1 (index destroyed?)", calls)
	}
	// A plain event is still removable.
	_ = d.Define("Plain", DefineOptions{Primary: func(_, _ any) any { return nil }})
	if err := d.RemovePrimary("Plain", domain.Identity{}); err != nil {
		t.Errorf("RemovePrimary on plain event: %v", err)
	}
}

// Torture: concurrent Define/Install/AddGuard/Remove/Raise on a shared
// dispatcher must be race-free (run under -race; the pre-snapshot dispatcher
// fails here on the AddGuard-vs-Raise guard-slice race) and must never
// deliver a torn handler list to a raise.
func TestConcurrentInstallAddGuardRemoveRaise(t *testing.T) {
	d, _ := newTestDispatcher()
	const events = 4
	names := make([]string, events)
	for i := range names {
		names[i] = fmt.Sprintf("E%d", i)
		if err := d.Define(names[i], DefineOptions{
			Primary: func(_, _ any) any { return "primary" },
		}); err != nil {
			t.Fatal(err)
		}
	}
	const (
		raisers   = 4
		mutators  = 4
		iters     = 8000
		raiseIter = 60000
	)
	var wg sync.WaitGroup
	for r := 0; r < raisers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < raiseIter; i++ {
				d.Raise(names[(r+i)%events], i)
			}
		}()
	}
	for m := 0; m < mutators; m++ {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := names[m%events]
			for i := 0; i < iters; i++ {
				ref, err := d.Install(ev, func(_, _ any) any { return m }, InstallOptions{
					Guard:     func(arg any) bool { return arg.(int)%2 == 0 },
					Installer: domain.Identity{Name: fmt.Sprintf("ext%d", m)},
				})
				if err != nil {
					t.Error(err)
					return
				}
				if err := d.AddGuard(ref, func(arg any) bool { return arg.(int) >= 0 }); err != nil {
					t.Error(err)
					return
				}
				if err := d.Remove(ref); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// A definer churning fresh events exercises the COW event table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			name := fmt.Sprintf("Fresh%d", i)
			if err := d.Define(name, DefineOptions{Primary: func(_, _ any) any { return nil }}); err != nil {
				t.Error(err)
				return
			}
			d.Raise(name, i)
		}
	}()
	wg.Wait()
	for _, ev := range names {
		raises, _, _ := d.Stats(ev)
		if raises == 0 {
			t.Errorf("event %s saw no raises", ev)
		}
		// All mutator handlers were removed; only the primary remains.
		if got := d.HandlerCount(ev); got != 1 {
			t.Errorf("event %s handler count = %d, want 1", ev, got)
		}
	}
}

// Torture: concurrent keyed Install/Remove/Raise against one KeyedEvent.
func TestConcurrentKeyedInstallRemoveRaise(t *testing.T) {
	d, _ := newTestDispatcher()
	ke, err := d.DefineKeyed("K", keyOfPort, DefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				d.Raise("K", &keyedArg{port: uint64(r%8 + 1)})
			}
		}()
	}
	for m := 0; m < 4; m++ {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := uint64(m%8 + 1)
			for i := 0; i < 5000; i++ {
				ref, err := ke.InstallKeyed(key, func(_, _ any) any { return m }, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if err := ke.RemoveKeyed(ref); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	raises, indexed := ke.Stats()
	if raises != 80000 || indexed != 80000 {
		t.Errorf("stats = %d raises, %d indexed; want 80000, 80000", raises, indexed)
	}
	if ke.Keys() != 0 {
		t.Errorf("keys = %d, want 0 after all removals", ke.Keys())
	}
}

// Counter exactness: atomics must not drop counts under parallel raises —
// Stats raises/aborts and ExtensionFaults totals are exact.
func TestCountersExactUnderParallelRaises(t *testing.T) {
	d, eng := newTestDispatcher()
	_ = d.Define("Counted", DefineOptions{Primary: func(_, _ any) any { return nil }})
	_ = d.Define("Slow", DefineOptions{Constraint: Constraint{TimeBound: sim.Microsecond}})
	_, _ = d.Install("Slow", func(_, _ any) any {
		eng.Clock.Advance(10 * sim.Microsecond)
		return nil
	}, InstallOptions{})
	_ = d.Define("Faulty", DefineOptions{Primary: func(_, _ any) any { panic("boom") }})

	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				d.Raise("Counted", i)
				d.Raise("Slow", i)
				d.Raise("Faulty", i)
			}
		}()
	}
	wg.Wait()
	const total = goroutines * perG
	if raises, aborts, _ := d.Stats("Counted"); raises != total || aborts != 0 {
		t.Errorf("Counted stats = %d, %d; want %d, 0", raises, aborts, total)
	}
	if raises, aborts, _ := d.Stats("Slow"); raises != total || aborts != total {
		t.Errorf("Slow stats = %d, %d; want %d, %d", raises, aborts, total, total)
	}
	faults, last := d.ExtensionFaults()
	if faults != total {
		t.Errorf("faults = %d, want %d", faults, total)
	}
	if last == "" {
		t.Error("lastFault empty after faults")
	}
}
