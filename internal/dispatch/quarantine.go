package dispatch

import (
	"fmt"

	"spin/internal/domain"
	"spin/internal/faultinject"
	"spin/internal/sim"
	"spin/internal/trace"
)

// Quarantine — the recovery layer above exception containment. Catching a
// handler's runtime exception (invokeBounded) keeps one raise safe, but a
// repeatedly faulting extension would stay installed forever, failing every
// raise it guards. Under a quarantine policy the dispatcher tracks each
// handler's lifetime faults and time-bound overruns; a handler that
// exhausts either budget is atomically unlinked from its event — the event
// falls back to its primary — with a "dispatch.quarantine" trace record and
// a notification visible to whoever authorized the installation.
//
// Primaries are never quarantined: the default implementation module is the
// trusted fallback the policy protects (for keyed events the primary is the
// key demultiplexer, which RemovePrimary likewise refuses to unlink).

// QuarantinePolicy configures when a misbehaving handler is unlinked. A
// zero field disables that dimension; the zero policy disables quarantine
// entirely (exception containment still applies).
type QuarantinePolicy struct {
	// FaultThreshold unlinks a handler after this many contained runtime
	// exceptions.
	FaultThreshold int64
	// OverrunBudget unlinks a handler after this many time-bound overruns.
	OverrunBudget int64
}

// DefaultQuarantinePolicy is the policy machines boot with: tolerant
// enough that a transient bug survives, strict enough that a wedged
// extension cannot fail raises forever.
var DefaultQuarantinePolicy = QuarantinePolicy{FaultThreshold: 8, OverrunBudget: 64}

// SetQuarantinePolicy installs the policy. It applies to faults and
// overruns counted from now on (handler lifetime counters are not reset).
func (d *Dispatcher) SetQuarantinePolicy(p QuarantinePolicy) {
	d.qFaultThreshold.Store(p.FaultThreshold)
	d.qOverrunBudget.Store(p.OverrunBudget)
}

// QuarantinePolicyInEffect reports the active policy.
func (d *Dispatcher) QuarantinePolicyInEffect() QuarantinePolicy {
	return QuarantinePolicy{
		FaultThreshold: d.qFaultThreshold.Load(),
		OverrunBudget:  d.qOverrunBudget.Load(),
	}
}

// QuarantineRecord describes one handler unlinked by the quarantine policy.
type QuarantineRecord struct {
	// Event the handler was installed on.
	Event string
	// Owner is the installing module's identity.
	Owner domain.Identity
	// Faults and Overruns are the handler's lifetime counts at unlink time.
	Faults, Overruns int64
	// Reason describes which budget was exhausted.
	Reason string
	// At is the virtual time of the unlink.
	At sim.Time
}

func (r QuarantineRecord) String() string {
	return fmt.Sprintf("%v %s: handler by %q quarantined: %s", r.At, r.Event, r.Owner.Name, r.Reason)
}

// OnQuarantine registers fn to be called (outside all dispatcher locks)
// each time a handler is quarantined — the notification path through which
// the event's default implementation module, or its authorizer's owner,
// observes that an installation it approved has been withdrawn.
func (d *Dispatcher) OnQuarantine(fn func(QuarantineRecord)) {
	if fn == nil {
		d.onQuarantine.Store(nil)
		return
	}
	d.onQuarantine.Store(&fn)
}

// quarantine atomically unlinks handler e from its event. Called from the
// raise path (no dispatcher locks held) after a budget is exhausted;
// concurrent raises may both cross the threshold, in which case the loser
// finds the handler already gone and does nothing — one unlink, one record,
// one notification per quarantined handler.
func (d *Dispatcher) quarantine(st *eventState, e *handlerEntry, reason string) {
	if e.primary {
		return // the primary is the fallback, never the casualty
	}
	d.mu.Lock()
	snap := st.snap.Load()
	removed := false
	for i, cur := range snap.handlers {
		if cur.id == e.id {
			ns := snap.clone()
			ns.handlers = append(ns.handlers[:i:i], ns.handlers[i+1:]...)
			st.snap.Store(ns)
			removed = true
			break
		}
	}
	d.mu.Unlock()
	if !removed {
		return // lost the race to another quarantining raise (or a Remove)
	}
	rec := QuarantineRecord{
		Event:    st.name,
		Owner:    e.owner,
		Faults:   e.faults.Load(),
		Overruns: e.overruns.Load(),
		Reason:   reason,
		At:       d.clock.Now(),
	}
	d.qmu.Lock()
	d.quarantined = append(d.quarantined, rec)
	d.qmu.Unlock()
	if tr := d.tracer.Load(); tr != nil {
		tr.Trace(trace.Record{
			Event: "dispatch.quarantine", Origin: "dispatch",
			Start: rec.At, Outcome: trace.OutcomeFaulted,
		})
	}
	if fn := d.onQuarantine.Load(); fn != nil {
		(*fn)(rec)
	}
}

// Quarantined returns the quarantine log, oldest first.
func (d *Dispatcher) Quarantined() []QuarantineRecord {
	d.qmu.Lock()
	defer d.qmu.Unlock()
	return append([]QuarantineRecord(nil), d.quarantined...)
}

// QuarantinedOn reports how many handlers have been quarantined off event.
func (d *Dispatcher) QuarantinedOn(event string) int {
	d.qmu.Lock()
	defer d.qmu.Unlock()
	n := 0
	for _, r := range d.quarantined {
		if r.Event == event {
			n++
		}
	}
	return n
}

// RemoveOwner uninstalls every non-primary handler installed by owner,
// across all events, in one writer critical section — the dispatcher's half
// of crash-only domain teardown. Primaries (including keyed demultiplexers)
// are preserved: they belong to the default implementation module, not the
// departing extension. It returns the number of handlers removed.
func (d *Dispatcher) RemoveOwner(owner domain.Identity) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	removed := 0
	for _, st := range *d.events.Load() {
		snap := st.snap.Load()
		var kept []*handlerEntry
		for _, e := range snap.handlers {
			if !e.primary && e.owner.Name == owner.Name {
				removed++
				continue
			}
			kept = append(kept, e)
		}
		if len(kept) != len(snap.handlers) {
			ns := snap.clone()
			ns.handlers = kept
			st.snap.Store(ns)
		}
	}
	return removed
}

// SetInjector arms (in non-nil) or disarms (nil) fault injection with a
// single atomic pointer swap; the disabled cost is one predictable-nil load
// per handler invocation, mirroring SetTracer.
func (d *Dispatcher) SetInjector(in *faultinject.Injector) { d.injector.Store(in) }

// InjectorInstalled returns the active injector, or nil when injection is
// disabled. Subsystems outside the dispatcher (netstack, scheduler, pager)
// use it to consult their own sites through the same switch.
func (d *Dispatcher) InjectorInstalled() *faultinject.Injector { return d.injector.Load() }
