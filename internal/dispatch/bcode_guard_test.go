package dispatch

import (
	"errors"
	"testing"

	"spin/internal/bcode"
	"spin/internal/domain"
)

// evtCtx is the test event's context ABI: word 0 carries the event's
// integer argument.
var evtSpec = bcode.Spec{Words: 1}

func bindInt(arg any, ctx *bcode.Context) bool {
	v, ok := arg.(int)
	if !ok {
		return false
	}
	ctx.W[0] = uint64(v)
	return true
}

// matchOver builds a program matching arguments greater than n.
func matchOver(n int32) *bcode.Program {
	return bcode.New(
		bcode.LdCtx(1, 0),
		bcode.JgtImm(1, n, 2),
		bcode.MovImm(0, 0),
		bcode.Exit(),
		bcode.MovImm(0, 1),
		bcode.Exit(),
	)
}

func TestVerifiedGuardGatesHandler(t *testing.T) {
	d, _ := newTestDispatcher()
	_ = d.Define("Sensor.Sample", DefineOptions{})
	guard, err := VerifiedGuard(matchOver(100), evtSpec, bindInt)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	_, err = d.Install("Sensor.Sample", func(arg, _ any) any {
		fired++
		return nil
	}, InstallOptions{
		Installer: domain.Identity{Name: "bcode:over-100"},
		Guard:     guard,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{5, 100, 101, 5000} {
		d.Raise("Sensor.Sample", v)
	}
	if fired != 2 {
		t.Errorf("handler fired %d times, want 2 (101 and 5000)", fired)
	}
	// Arguments the binder cannot shape decline the event instead of
	// running the program on garbage.
	d.Raise("Sensor.Sample", "not an int")
	if fired != 2 {
		t.Error("guard matched an unbindable argument")
	}
}

func TestVerifiedGuardRejectsAtInstallTime(t *testing.T) {
	// The verdict register is never written on the fallthrough path —
	// Verify must catch it here, before any Raise.
	bad := bcode.New(
		bcode.LdCtx(1, 0),
		bcode.Exit(),
	)
	if _, err := VerifiedGuard(bad, evtSpec, bindInt); !errors.Is(err, bcode.ErrVerifyUninit) {
		t.Fatalf("err = %v, want ErrVerifyUninit", err)
	}
	// Context reads outside the declared spec likewise fail the install.
	oob := bcode.New(bcode.LdCtx(0, 1), bcode.Exit())
	if _, err := VerifiedGuard(oob, evtSpec, bindInt); !errors.Is(err, bcode.ErrVerifyCtxOOB) {
		t.Fatalf("err = %v, want ErrVerifyCtxOOB", err)
	}
}
