package dispatch_test

import (
	"fmt"

	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/sim"
)

// Example shows the paper's worked IP example: the default implementation
// module authorizes installations by handing each installer a guard over
// the protocol type it may service.
func Example() {
	eng := sim.NewEngine()
	d := dispatch.New(eng, &sim.SPINProfile)

	type packet struct{ proto int }
	_ = d.Define("IP.PacketArrived", dispatch.DefineOptions{
		Authorizer: func(installer domain.Identity) (dispatch.Guard, error) {
			// This installer registered for UDP (17) only.
			return func(arg any) bool { return arg.(*packet).proto == 17 }, nil
		},
	})
	_, _ = d.Install("IP.PacketArrived", func(arg, _ any) any {
		fmt.Println("UDP handler saw a packet")
		return true
	}, dispatch.InstallOptions{Installer: domain.Identity{Name: "udp"}})

	d.Raise("IP.PacketArrived", &packet{proto: 6})  // TCP: guard filters it
	d.Raise("IP.PacketArrived", &packet{proto: 17}) // UDP: handler runs
	// Output: UDP handler saw a packet
}

// ExampleDispatcher_DefineKeyed demonstrates the §5.5 future-work guard
// index: handlers install under constant keys and dispatch cost stays flat.
func ExampleDispatcher_DefineKeyed() {
	eng := sim.NewEngine()
	d := dispatch.New(eng, &sim.SPINProfile)
	type datagram struct{ port uint64 }
	ke, _ := d.DefineKeyed("UDP.Demux", func(arg any) (uint64, bool) {
		return arg.(*datagram).port, true
	}, dispatch.DefineOptions{})
	_, _ = ke.InstallKeyed(80, func(_, _ any) any {
		fmt.Println("port 80")
		return nil
	}, nil)
	d.Raise("UDP.Demux", &datagram{port: 80})
	d.Raise("UDP.Demux", &datagram{port: 443}) // no handler: ignored
	// Output: port 80
}
