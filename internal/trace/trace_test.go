package trace

import (
	"strings"
	"testing"

	"spin/internal/sim"
)

func TestRingPutSnapshotOrder(t *testing.T) {
	r := NewRing(16)
	if r.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", r.Cap())
	}
	for i := 0; i < 10; i++ {
		r.Put(&Record{Event: "E", Start: sim.Time(i)})
	}
	snap := r.Snapshot()
	if len(snap) != 10 {
		t.Fatalf("snapshot len = %d, want 10", len(snap))
	}
	for i, rec := range snap {
		if rec.Seq != uint64(i) || rec.Start != sim.Time(i) {
			t.Errorf("record %d: seq=%d start=%v", i, rec.Seq, rec.Start)
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 40; i++ {
		r.Put(&Record{Start: sim.Time(i)})
	}
	snap := r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot len = %d, want 16", len(snap))
	}
	if snap[0].Seq != 24 || snap[15].Seq != 39 {
		t.Errorf("wrapped window = [%d, %d], want [24, 39]", snap[0].Seq, snap[15].Seq)
	}
	if r.Published() != 40 {
		t.Errorf("Published = %d, want 40", r.Published())
	}
}

func TestRingRoundsCapacityUp(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{1, 16}, {16, 16}, {17, 32}, {1000, 1024}} {
		if got := NewRing(tc.ask).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	samples := []sim.Duration{0, 1, 2, 3, 4, 100, 1000, 100000}
	for _, d := range samples {
		h.Observe(d)
	}
	if h.Count() != int64(len(samples)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(samples))
	}
	if h.Max() != 100000 {
		t.Errorf("Max = %v, want 100µs", h.Max())
	}
	// d=0 -> bucket 0; d=1 -> [1,2); d=2,3 -> [2,4); d=4 -> [4,8).
	snap := h.Snapshot()
	counts := map[sim.Duration]int64{}
	for _, b := range snap {
		counts[b.Low] = b.Count
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 2 || counts[4] != 1 {
		t.Errorf("low buckets wrong: %v", snap)
	}
	var total int64
	for _, b := range snap {
		total += b.Count
	}
	if total != int64(len(samples)) {
		t.Errorf("bucket total = %d, want %d", total, len(samples))
	}
	if q := h.Quantile(1.0); q < 65536 { // 100000 falls in [65536, 131072)
		t.Errorf("p100 = %v, want >= 65.5µs bucket", q)
	}
	if h.Mean() <= 0 {
		t.Errorf("Mean = %v, want > 0", h.Mean())
	}
	if s := h.String(); !strings.Contains(s, "n=8") {
		t.Errorf("String missing sample count: %q", s)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	if s := h.String(); !strings.Contains(s, "no samples") {
		t.Errorf("String = %q", s)
	}
}

func TestTracerObserveAndSeries(t *testing.T) {
	tr := New(64)
	tr.Observe("a", 10)
	tr.Observe("b", 20)
	tr.Observe("a", 30)
	if got := tr.Series(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Series = %v", got)
	}
	h, ok := tr.Histogram("a")
	if !ok || h.Count() != 2 {
		t.Fatalf("Histogram(a): ok=%v count=%d", ok, h.Count())
	}
	if _, ok := tr.Histogram("missing"); ok {
		t.Error("Histogram(missing) = ok")
	}
}

func TestTracerTraceFeedsRingAndHisto(t *testing.T) {
	tr := New(64)
	tr.Trace(Record{Event: "IP.PacketArrived", Origin: "dispatch", Handlers: 2,
		Start: 100, Duration: 50, Outcome: OutcomeOK})
	tr.Trace(Record{Event: "IP.PacketArrived", Origin: "dispatch", Handlers: 2,
		Start: 200, Duration: 70, Outcome: OutcomeAborted})
	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("ring records = %d, want 2", len(recs))
	}
	if recs[1].Outcome != OutcomeAborted {
		t.Errorf("outcome = %v", recs[1].Outcome)
	}
	h, ok := tr.Histogram("IP.PacketArrived")
	if !ok || h.Count() != 2 {
		t.Fatalf("event histogram: ok=%v count=%d", ok, h.Count())
	}
	dump := tr.Dump()
	if !strings.Contains(dump, "IP.PacketArrived") || !strings.Contains(dump, "abort") {
		t.Errorf("Dump missing content:\n%s", dump)
	}
	histo := tr.DumpHisto()
	if !strings.Contains(histo, "IP.PacketArrived") || !strings.Contains(histo, "n=2") {
		t.Errorf("DumpHisto missing content:\n%s", histo)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{OutcomeOK: "ok", OutcomeAborted: "abort", OutcomeFaulted: "fault", Outcome(9): "?"} {
		if o.String() != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), want)
		}
	}
}
