// Package trace is the kernel-wide event tracing and latency profiling
// subsystem — the other half of the paper's §3.2 monitoring style
// ("extensions passively monitor system activity, and provide up-to-date
// performance information to applications"). Where internal/monitor counts
// raises, trace records where virtual time goes: a fixed-size lock-free
// ring buffer of per-dispatch records, plus per-event and per-handler
// latency histograms in log₂ buckets that the dispatcher, netstack packet
// path, strand scheduler and VM pager feed.
//
// Tracing is zero-cost when disabled: subsystems hold an
// atomic.Pointer[Tracer] and the disabled path is a single predictable-nil
// load. Enabling or disabling is one atomic pointer swap; raises in flight
// keep using whichever tracer they loaded. All record/observe paths are
// lock-free (atomic slot stores in the ring, atomic bucket counters in the
// histograms, copy-on-write histogram table), so tracing never serializes
// the dispatcher's parallel Raise path.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"spin/internal/sim"
)

// Tracer owns one kernel's trace ring and histogram table.
type Tracer struct {
	ring *Ring

	// histos is a copy-on-write map name -> *Histogram: Observe on an
	// existing series is lock-free; mu serializes only the insertion of
	// new series (rare — the set of event names stabilizes immediately).
	mu     sync.Mutex
	histos atomic.Pointer[map[string]*Histogram]
}

// DefaultRingSize is the default trace ring capacity.
const DefaultRingSize = 4096

// New returns a tracer with a ring of at least ringSize records
// (DefaultRingSize if ringSize <= 0).
func New(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	t := &Tracer{ring: NewRing(ringSize)}
	empty := make(map[string]*Histogram)
	t.histos.Store(&empty)
	return t
}

// Trace publishes one record to the ring and feeds the event's latency
// histogram.
func (t *Tracer) Trace(rec Record) {
	r := rec
	t.ring.Put(&r)
	t.Observe(rec.Event, rec.Duration)
}

// Observe records one latency sample for the named series, creating the
// series on first use.
func (t *Tracer) Observe(name string, d sim.Duration) {
	if h, ok := (*t.histos.Load())[name]; ok {
		h.Observe(d)
		return
	}
	t.histogram(name).Observe(d)
}

// histogram returns the named series, inserting it under the writer lock if
// new (copy-on-write, so concurrent Observes never see a torn map).
func (t *Tracer) histogram(name string) *Histogram {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.histos.Load()
	if h, ok := old[name]; ok {
		return h
	}
	next := make(map[string]*Histogram, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	h := NewHistogram()
	next[name] = h
	t.histos.Store(&next)
	return h
}

// Histogram returns the named latency series, if it has samples.
func (t *Tracer) Histogram(name string) (*Histogram, bool) {
	h, ok := (*t.histos.Load())[name]
	return h, ok
}

// Series lists the histogram series names, sorted.
func (t *Tracer) Series() []string {
	m := *t.histos.Load()
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns the ring's buffered records, oldest first.
func (t *Tracer) Snapshot() []Record { return t.ring.Snapshot() }

// Ring exposes the underlying ring (tests, torture harnesses).
func (t *Tracer) Ring() *Ring { return t.ring }

// Dump renders the trace ring as a text report: one line per buffered
// record, newest last.
func (t *Tracer) Dump() string {
	recs := t.Snapshot()
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace ring: %d records buffered, %d published (cap %d)\n",
		len(recs), t.ring.Published(), t.ring.Cap())
	for _, r := range recs {
		fmt.Fprintf(&sb, "  #%-6d t=%-12v %-9s %-28s handlers=%-2d dur=%-10v %s\n",
			r.Seq, r.Start, r.Origin, r.Event, r.Handlers, r.Duration, r.Outcome)
	}
	return sb.String()
}

// DumpHisto renders every latency series: count, mean, p50/p99, max, and
// the log₂ bucket bars.
func (t *Tracer) DumpHisto() string {
	var sb strings.Builder
	names := t.Series()
	fmt.Fprintf(&sb, "latency histograms: %d series\n", len(names))
	for _, name := range names {
		h, _ := t.Histogram(name)
		if h.Count() == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%s\n%s", name, h.String())
	}
	return sb.String()
}
