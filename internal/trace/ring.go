package trace

import (
	"sync/atomic"

	"spin/internal/sim"
)

// Outcome classifies how a dispatch ended.
type Outcome uint8

// Outcomes.
const (
	// OutcomeOK: every handler that ran completed within its time bound.
	OutcomeOK Outcome = iota
	// OutcomeAborted: at least one handler exceeded the event's time bound
	// and had its result discarded.
	OutcomeAborted
	// OutcomeFaulted: at least one handler raised a runtime exception that
	// was contained at the dispatch boundary.
	OutcomeFaulted
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeAborted:
		return "abort"
	case OutcomeFaulted:
		return "fault"
	}
	return "?"
}

// Record is one traced dispatch (or other kernel activity). Records are
// immutable once published to the ring.
type Record struct {
	// Seq is the record's global sequence number, assigned at publish.
	Seq uint64
	// Event is the event name (or subsystem label for non-dispatch records).
	Event string
	// Origin names the subsystem that produced the record ("dispatch",
	// "net", "sched", "vm").
	Origin string
	// Handlers is the number of handlers the dispatch ran (0 for
	// non-dispatch records).
	Handlers int
	// Start is the virtual time the activity began.
	Start sim.Time
	// Duration is the virtual time the activity consumed.
	Duration sim.Duration
	// Outcome classifies the completion.
	Outcome Outcome
}

// Ring is a fixed-size lock-free ring buffer of trace records. Writers claim
// a slot with one atomic add and publish an immutable *Record with one
// atomic store — the same snapshot discipline as the dispatcher's event
// state. Readers load slot pointers atomically, so a concurrent Snapshot
// sees a mix of old and new records but never a torn one. When the ring
// wraps, the oldest records are overwritten.
type Ring struct {
	slots  []atomic.Pointer[Record]
	mask   uint64
	cursor atomic.Uint64 // next sequence number to claim
}

// NewRing returns a ring holding size records, rounded up to a power of two
// (minimum 16).
func NewRing(size int) *Ring {
	n := 16
	for n < size {
		n <<= 1
	}
	return &Ring{slots: make([]atomic.Pointer[Record], n), mask: uint64(n - 1)}
}

// Cap reports the ring's capacity in records.
func (r *Ring) Cap() int { return len(r.slots) }

// Published reports how many records have ever been published (≥ Cap means
// the ring has wrapped).
func (r *Ring) Published() uint64 { return r.cursor.Load() }

// Put publishes rec, stamping its sequence number. The rec must not be
// mutated afterwards.
func (r *Ring) Put(rec *Record) {
	seq := r.cursor.Add(1) - 1
	rec.Seq = seq
	r.slots[seq&r.mask].Store(rec)
}

// Snapshot returns the buffered records ordered oldest to newest. Records
// published concurrently with the snapshot may or may not appear; slots a
// wrapping writer is about to overwrite may surface as newer records — the
// result is sorted by sequence number so callers always see a coherent
// timeline.
func (r *Ring) Snapshot() []Record {
	cursor := r.cursor.Load()
	n := uint64(len(r.slots))
	lo := uint64(0)
	if cursor > n {
		lo = cursor - n
	}
	out := make([]Record, 0, cursor-lo)
	for seq := lo; seq < cursor; seq++ {
		if rec := r.slots[seq&r.mask].Load(); rec != nil {
			out = append(out, *rec)
		}
	}
	// Slots may have been overwritten between loading cursor and reading;
	// restore timeline order by sequence number (mostly sorted already).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Seq < out[j-1].Seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
