package trace

import (
	"fmt"
	"sync"
	"testing"

	"spin/internal/sim"
)

// Torture (run under -race): concurrent Trace from many writers while
// readers Snapshot and Dump. The ring's atomic slot stores and the
// histograms' atomic buckets must never race, records must never tear, and
// the published and histogram totals must be exact.
func TestRingTortureConcurrentPutSnapshot(t *testing.T) {
	tr := New(256)
	const (
		writers = 8
		readers = 4
		perW    = 20000
	)
	var writerWg, readerWg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		w := w
		writerWg.Add(1)
		go func() {
			defer writerWg.Done()
			name := fmt.Sprintf("ev%d", w%4)
			for i := 0; i < perW; i++ {
				tr.Trace(Record{
					Event:    name,
					Origin:   "torture",
					Handlers: w,
					Start:    sim.Time(i),
					Duration: sim.Duration(i % 1024),
					Outcome:  Outcome(i % 3),
				})
			}
		}()
	}
	for r := 0; r < readers; r++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := tr.Snapshot()
				// The snapshot must be sequence-ordered and untorn: every
				// record carries the fields its writer set together.
				for i, rec := range snap {
					if rec.Origin != "torture" {
						t.Errorf("torn record: %+v", rec)
						return
					}
					if i > 0 && rec.Seq < snap[i-1].Seq {
						t.Errorf("snapshot out of order: %d after %d", rec.Seq, snap[i-1].Seq)
						return
					}
				}
				_ = tr.Dump()
				_ = tr.DumpHisto()
			}
		}()
	}
	writerWg.Wait()
	close(stop)
	readerWg.Wait()
	if got := tr.Ring().Published(); got != writers*perW {
		t.Errorf("published = %d, want %d", got, writers*perW)
	}
	var histoTotal int64
	for _, name := range tr.Series() {
		h, _ := tr.Histogram(name)
		histoTotal += h.Count()
	}
	if histoTotal != writers*perW {
		t.Errorf("histogram samples = %d, want %d", histoTotal, writers*perW)
	}
}

// Concurrent first-Observe on many distinct names exercises the
// copy-on-write histogram table insertion path.
func TestTracerConcurrentNewSeries(t *testing.T) {
	tr := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Observe(fmt.Sprintf("series-%d-%d", g, i), sim.Duration(i))
				tr.Observe("shared", sim.Duration(i))
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Series()); got != 8*200+1 {
		t.Errorf("series count = %d, want %d", got, 8*200+1)
	}
	h, _ := tr.Histogram("shared")
	if h.Count() != 8*200 {
		t.Errorf("shared count = %d, want %d", h.Count(), 8*200)
	}
}
