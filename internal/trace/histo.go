package trace

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"

	"spin/internal/sim"
)

// histoBuckets is the number of log₂ latency buckets. Bucket 0 counts
// non-positive durations; bucket i (i ≥ 1) counts durations in
// [2^(i-1), 2^i) nanoseconds of virtual time. 63 value buckets cover the
// full range of sim.Duration.
const histoBuckets = 64

// Histogram accumulates virtual-time latencies in log₂ buckets. All fields
// are atomics: Observe is called from the dispatcher's lock-free Raise path
// (potentially many goroutines at once) and readers take a consistent-enough
// view without stopping writers — each bucket is exact, the set of buckets
// is only approximately simultaneous, which is fine for a profile.
type Histogram struct {
	buckets [histoBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // total Duration, for the mean
	max     atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a duration to its log₂ bucket index.
func bucketOf(d sim.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// BucketLow returns the inclusive lower bound of bucket i.
func BucketLow(i int) sim.Duration {
	if i <= 0 {
		return 0
	}
	return sim.Duration(1) << (i - 1)
}

// Observe records one latency sample.
func (h *Histogram) Observe(d sim.Duration) {
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	if d > 0 {
		h.sum.Add(int64(d))
	}
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count reports the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean reports the mean observed latency (0 with no samples).
func (h *Histogram) Mean() sim.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return sim.Duration(h.sum.Load() / n)
}

// Max reports the largest observed latency.
func (h *Histogram) Max() sim.Duration { return sim.Duration(h.max.Load()) }

// Buckets returns a snapshot of the non-empty buckets as (low bound, count)
// pairs in ascending bucket order.
type Bucket struct {
	Low   sim.Duration
	Count int64
}

// Snapshot returns the non-empty buckets in ascending latency order.
func (h *Histogram) Snapshot() []Bucket {
	var out []Bucket
	for i := 0; i < histoBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			out = append(out, Bucket{Low: BucketLow(i), Count: n})
		}
	}
	return out
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the buckets, returning
// the upper bound of the bucket containing the quantile sample.
func (h *Histogram) Quantile(q float64) sim.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histoBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return sim.Duration(1)<<i - 1
		}
	}
	return h.Max()
}

// String renders the histogram as an ASCII bar chart, one line per
// non-empty bucket.
func (h *Histogram) String() string {
	snap := h.Snapshot()
	if len(snap) == 0 {
		return "  (no samples)\n"
	}
	var peak int64
	for _, b := range snap {
		if b.Count > peak {
			peak = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range snap {
		bar := int(40 * b.Count / peak)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&sb, "  %10v %-40s %d\n", b.Low, strings.Repeat("#", bar), b.Count)
	}
	fmt.Fprintf(&sb, "  n=%d mean=%v p50=%v p99=%v max=%v\n",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
	return sb.String()
}
