// Package sal is the reproduction's analogue of SPIN's sal component: a
// low-level interface to simulated hardware — MMU and TLB, physical memory
// with per-frame state bits, interrupt delivery, console, disk, and network
// interfaces (Lance Ethernet, FORE ATM, Digital T3) — offering functionality
// such as "install a page table entry", "get a character from the console",
// and "read block 22 from SCSI unit 0".
//
// In the paper, sal is built from DEC OSF/1 kernel sources so that SPIN can
// track vendor hardware; here it is built on the sim package's virtual
// clock, so that VM, scheduling and networking experiments exercise the same
// structural paths the paper measured.
package sal

import (
	"fmt"

	"spin/internal/sim"
)

// PageSize is the Alpha page size: 8 KB.
const PageSize = 8192

// PageShift is log2(PageSize).
const PageShift = 13

// Prot is a page protection bit mask.
type Prot uint8

// Protection bits.
const (
	ProtNone Prot = 0
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

func (p Prot) String() string {
	if p == ProtNone {
		return "---"
	}
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// FaultKind classifies an MMU exception, mirroring the Translation
// interface's events (paper Figure 3).
type FaultKind int

// Fault kinds.
const (
	FaultNone FaultKind = iota
	// FaultBadAddress: access to an unallocated virtual address.
	FaultBadAddress
	// FaultPageNotPresent: allocated but unmapped virtual page.
	FaultPageNotPresent
	// FaultProtection: mapped page, insufficient protection.
	FaultProtection
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultBadAddress:
		return "bad-address"
	case FaultPageNotPresent:
		return "page-not-present"
	case FaultProtection:
		return "protection-fault"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault describes one MMU exception.
type Fault struct {
	Context uint64
	VPN     uint64 // virtual page number
	Access  Prot   // the attempted access
	Kind    FaultKind
}

// PTE is a page table entry.
type PTE struct {
	Frame uint64
	Prot  Prot
	Valid bool
}

// pageTable is one addressing context's page table: VPN -> PTE. Contexts
// also record which VPNs are *allocated* (known to the VM system) so the MMU
// can distinguish bad-address faults from page-not-present faults.
type pageTable struct {
	id        uint64
	entries   map[uint64]PTE
	allocated map[uint64]bool
}

// tlbEntry caches one translation.
type tlbEntry struct {
	ctx, vpn uint64
	pte      PTE
}

// TLBSize is the number of entries in the (fully associative, FIFO) TLB,
// sized like the Alpha 21064's 32-entry DTB.
const TLBSize = 32

// MMU simulates the memory management unit: per-context page tables, a
// unified TLB, and fault classification. All state-changing operations
// charge profile costs against the clock.
type MMU struct {
	clock   *sim.Clock
	profile *sim.Profile

	contexts map[uint64]*pageTable
	nextCtx  uint64

	tlb      []tlbEntry
	tlbHits  int64
	tlbMiss  int64
	faultCnt int64
}

// NewMMU returns an MMU charging against clock with profile costs.
func NewMMU(clock *sim.Clock, profile *sim.Profile) *MMU {
	return &MMU{
		clock:    clock,
		profile:  profile,
		contexts: make(map[uint64]*pageTable),
		nextCtx:  1,
	}
}

// CreateContext allocates a fresh addressing context and returns its id.
func (m *MMU) CreateContext() uint64 {
	m.clock.Advance(m.profile.PageTableOp)
	id := m.nextCtx
	m.nextCtx++
	m.contexts[id] = &pageTable{
		id:        id,
		entries:   make(map[uint64]PTE),
		allocated: make(map[uint64]bool),
	}
	return id
}

// DestroyContext removes a context and flushes its TLB entries.
func (m *MMU) DestroyContext(ctx uint64) error {
	if _, ok := m.contexts[ctx]; !ok {
		return fmt.Errorf("sal: no context %d", ctx)
	}
	m.clock.Advance(m.profile.PageTableOp)
	delete(m.contexts, ctx)
	m.flushContext(ctx)
	return nil
}

// MarkAllocated records that VPN is an allocated (VM-known) virtual page in
// ctx; accesses to it fault as page-not-present rather than bad-address.
func (m *MMU) MarkAllocated(ctx, vpn uint64, allocated bool) error {
	pt, ok := m.contexts[ctx]
	if !ok {
		return fmt.Errorf("sal: no context %d", ctx)
	}
	if allocated {
		pt.allocated[vpn] = true
	} else {
		delete(pt.allocated, vpn)
	}
	return nil
}

// Install writes a PTE ("install a page table entry") and invalidates any
// stale TLB entry for (ctx, vpn).
func (m *MMU) Install(ctx, vpn uint64, pte PTE) error {
	pt, ok := m.contexts[ctx]
	if !ok {
		return fmt.Errorf("sal: no context %d", ctx)
	}
	m.clock.Advance(m.profile.PageTableOp)
	pte.Valid = true
	pt.entries[vpn] = pte
	pt.allocated[vpn] = true
	m.invalidate(ctx, vpn)
	return nil
}

// Remove deletes the mapping for (ctx, vpn).
func (m *MMU) Remove(ctx, vpn uint64) error {
	pt, ok := m.contexts[ctx]
	if !ok {
		return fmt.Errorf("sal: no context %d", ctx)
	}
	m.clock.Advance(m.profile.PageTableOp)
	delete(pt.entries, vpn)
	m.invalidate(ctx, vpn)
	return nil
}

// Protect changes the protection on an existing mapping.
func (m *MMU) Protect(ctx, vpn uint64, prot Prot) error {
	pt, ok := m.contexts[ctx]
	if !ok {
		return fmt.Errorf("sal: no context %d", ctx)
	}
	pte, ok := pt.entries[vpn]
	if !ok {
		return fmt.Errorf("sal: context %d has no mapping for vpn %d", ctx, vpn)
	}
	m.clock.Advance(m.profile.PageTableOp)
	pte.Prot = prot
	pt.entries[vpn] = pte
	m.invalidate(ctx, vpn)
	return nil
}

// Examine returns the PTE for (ctx, vpn) without charging translation costs
// (a kernel-privileged inspection).
func (m *MMU) Examine(ctx, vpn uint64) (PTE, bool) {
	pt, ok := m.contexts[ctx]
	if !ok {
		return PTE{}, false
	}
	pte, ok := pt.entries[vpn]
	return pte, ok
}

// Translate performs one access: TLB lookup, page-table walk on miss, fault
// classification. On success it returns the frame number.
func (m *MMU) Translate(ctx, vpn uint64, access Prot) (uint64, *Fault) {
	// TLB lookup: free in virtual time (happens within a cycle).
	for i := range m.tlb {
		e := &m.tlb[i]
		if e.ctx == ctx && e.vpn == vpn {
			if e.pte.Prot&access != access {
				m.faultCnt++
				return 0, &Fault{Context: ctx, VPN: vpn, Access: access, Kind: FaultProtection}
			}
			m.tlbHits++
			return e.pte.Frame, nil
		}
	}
	m.tlbMiss++
	pt, ok := m.contexts[ctx]
	if !ok {
		m.faultCnt++
		return 0, &Fault{Context: ctx, VPN: vpn, Access: access, Kind: FaultBadAddress}
	}
	// Page-table walk: a few memory references.
	m.clock.Advance(4 * m.profile.CopyPerWord)
	pte, mapped := pt.entries[vpn]
	if !mapped {
		kind := FaultBadAddress
		if pt.allocated[vpn] {
			kind = FaultPageNotPresent
		}
		m.faultCnt++
		return 0, &Fault{Context: ctx, VPN: vpn, Access: access, Kind: kind}
	}
	if pte.Prot&access != access {
		m.faultCnt++
		return 0, &Fault{Context: ctx, VPN: vpn, Access: access, Kind: FaultProtection}
	}
	// Refill TLB, FIFO eviction.
	if len(m.tlb) >= TLBSize {
		m.tlb = m.tlb[1:]
	}
	m.tlb = append(m.tlb, tlbEntry{ctx: ctx, vpn: vpn, pte: pte})
	return pte.Frame, nil
}

// invalidate drops the TLB entry for (ctx, vpn) if cached.
func (m *MMU) invalidate(ctx, vpn uint64) {
	for i := range m.tlb {
		if m.tlb[i].ctx == ctx && m.tlb[i].vpn == vpn {
			m.tlb = append(m.tlb[:i], m.tlb[i+1:]...)
			return
		}
	}
}

// flushContext drops all TLB entries belonging to ctx.
func (m *MMU) flushContext(ctx uint64) {
	out := m.tlb[:0]
	for _, e := range m.tlb {
		if e.ctx != ctx {
			out = append(out, e)
		}
	}
	m.tlb = out
}

// TLBStats reports hit/miss counts.
func (m *MMU) TLBStats() (hits, misses int64) { return m.tlbHits, m.tlbMiss }

// Faults reports the number of faults classified.
func (m *MMU) Faults() int64 { return m.faultCnt }
