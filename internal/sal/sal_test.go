package sal

import (
	"testing"
	"testing/quick"

	"spin/internal/sim"
)

func newHW() (*sim.Engine, *MMU) {
	eng := sim.NewEngine()
	return eng, NewMMU(eng.Clock, &sim.SPINProfile)
}

func TestMMUInstallTranslate(t *testing.T) {
	_, m := newHW()
	ctx := m.CreateContext()
	if err := m.Install(ctx, 5, PTE{Frame: 42, Prot: ProtRead | ProtWrite}); err != nil {
		t.Fatal(err)
	}
	frame, fault := m.Translate(ctx, 5, ProtRead)
	if fault != nil {
		t.Fatalf("fault: %v", fault.Kind)
	}
	if frame != 42 {
		t.Errorf("frame = %d", frame)
	}
}

func TestMMUFaultClassification(t *testing.T) {
	_, m := newHW()
	ctx := m.CreateContext()

	// Unallocated address: bad address.
	_, fault := m.Translate(ctx, 9, ProtRead)
	if fault == nil || fault.Kind != FaultBadAddress {
		t.Errorf("unallocated: %v", fault)
	}

	// Allocated but unmapped: page not present.
	_ = m.MarkAllocated(ctx, 9, true)
	_, fault = m.Translate(ctx, 9, ProtRead)
	if fault == nil || fault.Kind != FaultPageNotPresent {
		t.Errorf("allocated+unmapped: %v", fault)
	}

	// Mapped read-only, write access: protection fault.
	_ = m.Install(ctx, 9, PTE{Frame: 1, Prot: ProtRead})
	_, fault = m.Translate(ctx, 9, ProtWrite)
	if fault == nil || fault.Kind != FaultProtection {
		t.Errorf("write to read-only: %v", fault)
	}

	// Unknown context: bad address.
	_, fault = m.Translate(999, 0, ProtRead)
	if fault == nil || fault.Kind != FaultBadAddress {
		t.Errorf("bad context: %v", fault)
	}
}

func TestMMUTLBHitAfterFill(t *testing.T) {
	_, m := newHW()
	ctx := m.CreateContext()
	_ = m.Install(ctx, 1, PTE{Frame: 10, Prot: ProtRead})
	m.Translate(ctx, 1, ProtRead) // miss, fills TLB
	m.Translate(ctx, 1, ProtRead) // hit
	hits, misses := m.TLBStats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1,1", hits, misses)
	}
}

func TestMMUTLBInvalidationOnProtect(t *testing.T) {
	_, m := newHW()
	ctx := m.CreateContext()
	_ = m.Install(ctx, 1, PTE{Frame: 10, Prot: ProtRead | ProtWrite})
	m.Translate(ctx, 1, ProtWrite) // fill TLB with rw entry
	if err := m.Protect(ctx, 1, ProtRead); err != nil {
		t.Fatal(err)
	}
	// A write must now fault; a stale TLB entry would wrongly permit it.
	_, fault := m.Translate(ctx, 1, ProtWrite)
	if fault == nil || fault.Kind != FaultProtection {
		t.Errorf("stale TLB entry survived Protect: %v", fault)
	}
}

func TestMMUTLBEviction(t *testing.T) {
	_, m := newHW()
	ctx := m.CreateContext()
	for i := uint64(0); i < TLBSize+8; i++ {
		_ = m.Install(ctx, i, PTE{Frame: i, Prot: ProtRead})
		m.Translate(ctx, i, ProtRead)
	}
	// Entry 0 must have been evicted (FIFO): next access misses.
	_, missesBefore := m.TLBStats()
	m.Translate(ctx, 0, ProtRead)
	_, missesAfter := m.TLBStats()
	if missesAfter != missesBefore+1 {
		t.Error("expected TLB miss after eviction")
	}
}

func TestMMURemoveAndDestroy(t *testing.T) {
	_, m := newHW()
	ctx := m.CreateContext()
	_ = m.Install(ctx, 3, PTE{Frame: 7, Prot: ProtRead})
	if err := m.Remove(ctx, 3); err != nil {
		t.Fatal(err)
	}
	// Page stays allocated after unmap -> not-present, not bad-address.
	_, fault := m.Translate(ctx, 3, ProtRead)
	if fault == nil || fault.Kind != FaultPageNotPresent {
		t.Errorf("after Remove: %v", fault)
	}
	if err := m.DestroyContext(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.DestroyContext(ctx); err == nil {
		t.Error("double destroy accepted")
	}
}

func TestMMUExamine(t *testing.T) {
	_, m := newHW()
	ctx := m.CreateContext()
	_ = m.Install(ctx, 2, PTE{Frame: 5, Prot: ProtExec})
	pte, ok := m.Examine(ctx, 2)
	if !ok || pte.Frame != 5 || pte.Prot != ProtExec {
		t.Errorf("Examine = %+v, %v", pte, ok)
	}
	if _, ok := m.Examine(ctx, 3); ok {
		t.Error("Examine of unmapped page succeeded")
	}
}

func TestProtString(t *testing.T) {
	if s := (ProtRead | ProtWrite).String(); s != "rw-" {
		t.Errorf("String = %q", s)
	}
	if s := ProtNone.String(); s != "---" {
		t.Errorf("String = %q", s)
	}
}

func TestPhysMemDirtyBits(t *testing.T) {
	pm := NewPhysMem(64 << 20)
	if pm.NumFrames() != (64<<20)/PageSize {
		t.Errorf("frames = %d", pm.NumFrames())
	}
	if err := pm.Touch(3, false); err != nil {
		t.Fatal(err)
	}
	fr, _ := pm.Frame(3)
	if fr.Dirty || !fr.Referenced {
		t.Errorf("after read touch: %+v", fr)
	}
	_ = pm.Touch(3, true)
	if !fr.Dirty {
		t.Error("write touch did not set dirty")
	}
	if err := pm.Touch(1<<40, false); err == nil {
		t.Error("out-of-range touch accepted")
	}
}

func TestPhysMemColors(t *testing.T) {
	pm := NewPhysMem(64 << 20)
	f0, _ := pm.Frame(0)
	fN, _ := pm.Frame(NumColors)
	if f0.Color != fN.Color {
		t.Error("frames one cache-size apart must share a color")
	}
	f1, _ := pm.Frame(1)
	if f0.Color == f1.Color {
		t.Error("adjacent frames must differ in color")
	}
}

func TestConsole(t *testing.T) {
	var c Console
	c.Write("hello ")
	c.Write("world")
	if c.Output() != "hello world" {
		t.Errorf("Output = %q", c.Output())
	}
	c.FeedInput("ab")
	ch, ok := c.GetChar()
	if !ok || ch != 'a' {
		t.Errorf("GetChar = %c,%v", ch, ok)
	}
	c.GetChar()
	if _, ok := c.GetChar(); ok {
		t.Error("empty input returned a char")
	}
}

func TestDiskReadWrite(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng.Clock)
	d.WriteBlock(22, []byte("SCSI unit 0"))
	got := d.ReadBlock(22)
	if string(got[:11]) != "SCSI unit 0" {
		t.Errorf("block 22 = %q", got[:11])
	}
	if len(got) != DiskBlockSize {
		t.Errorf("block size %d", len(got))
	}
	zero := d.ReadBlock(99)
	for _, b := range zero[:16] {
		if b != 0 {
			t.Fatal("unwritten block nonzero")
		}
	}
	r, w := d.Stats()
	if r != 2 || w != 1 {
		t.Errorf("stats = %d,%d", r, w)
	}
}

func TestDiskLatencyModel(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng.Clock)
	d.ReadBlock(10)
	afterRandom := eng.Clock.Now()
	if afterRandom.Sub(0) != d.SeekTime+d.TransferPerBlock {
		t.Errorf("random read took %v", afterRandom.Sub(0))
	}
	d.ReadBlock(11) // sequential: no seek
	if eng.Clock.Now().Sub(afterRandom) != d.TransferPerBlock {
		t.Errorf("sequential read took %v", eng.Clock.Now().Sub(afterRandom))
	}
	if eng.Clock.Busy() != 0 {
		t.Error("disk waits must be idle time, not busy")
	}
}

func TestInterruptDelivery(t *testing.T) {
	eng := sim.NewEngine()
	ic := NewInterruptController(eng, &sim.SPINProfile)
	var got any
	ic.Register(VecDisk, func(p any) { got = p })
	ic.RaiseAt(100, VecDisk, "done")
	eng.Run(0)
	if got != "done" {
		t.Errorf("payload = %v", got)
	}
	if ic.Count(VecDisk) != 1 {
		t.Errorf("count = %d", ic.Count(VecDisk))
	}
	if eng.Clock.Busy() != sim.SPINProfile.InterruptEntry {
		t.Errorf("busy = %v, want interrupt entry cost", eng.Clock.Busy())
	}
}

func TestNICModelWireBytes(t *testing.T) {
	// Ethernet: payload + framing.
	if got := LanceModel.WireBytes(1500); got != 1524 {
		t.Errorf("Lance WireBytes(1500) = %d", got)
	}
	// ATM: cellized. 8132+8 = 8140 bytes => 170 cells (48B payload each)
	// => 9010 wire bytes.
	if got := ForeModel.WireBytes(8132); got != 170*53 {
		t.Errorf("Fore WireBytes(8132) = %d, want %d", got, 170*53)
	}
}

func TestNICModelTxTime(t *testing.T) {
	// 1524 bytes at 10 Mb/s = 1219.2µs.
	got := LanceModel.TxTime(1500)
	want := sim.Duration(1524 * 8 * 100) // ns: 1 bit = 100ns at 10Mb/s
	if got != want {
		t.Errorf("TxTime = %v, want %v", got, want)
	}
}

type testHost struct {
	eng *sim.Engine
	ic  *InterruptController
	nic *NIC
}

func newHost(model NICModel) *testHost {
	eng := sim.NewEngine()
	ic := NewInterruptController(eng, &sim.SPINProfile)
	return &testHost{eng: eng, ic: ic, nic: NewNIC(model, eng, ic, VecNIC0)}
}

func TestNICSendReceive(t *testing.T) {
	a, b := newHost(LanceModel), newHost(LanceModel)
	if err := Connect(a.nic, b.nic); err != nil {
		t.Fatal(err)
	}
	var got NetFrame
	b.nic.OnReceive = func(f NetFrame) bool { got = f; return true }
	if err := a.nic.Send(NetFrame{Size: 100, Payload: "ping"}); err != nil {
		t.Fatal(err)
	}
	cluster := sim.NewCluster(a.eng, b.eng)
	cluster.Run(0)
	if got.Payload != "ping" {
		t.Fatalf("payload = %v", got.Payload)
	}
	sent, _, bs, _ := a.nic.Stats()
	_, recv, _, br := b.nic.Stats()
	if sent != 1 || recv != 1 || bs != 100 || br != 100 {
		t.Errorf("stats: sent=%d recv=%d bytes=%d/%d", sent, recv, bs, br)
	}
	// Receiver clock advanced past wire time + fixed latency.
	minArrival := LanceModel.TxTime(100) + LanceModel.FixedLatency
	if b.eng.Now().Sub(0) < minArrival {
		t.Errorf("delivery at %v, want >= %v", b.eng.Now(), minArrival)
	}
}

func TestNICMismatchedMedia(t *testing.T) {
	a, b := newHost(LanceModel), newHost(ForeModel)
	if err := Connect(a.nic, b.nic); err == nil {
		t.Error("connected Ethernet to ATM")
	}
}

func TestNICSendUnconnected(t *testing.T) {
	a := newHost(LanceModel)
	if err := a.nic.Send(NetFrame{Size: 1}); err == nil {
		t.Error("send on unconnected NIC succeeded")
	}
}

func TestNICTransmitterSerializes(t *testing.T) {
	// Two back-to-back sends: the second frame's arrival must trail the
	// first by at least one transmission time (the wire is serial).
	a, b := newHost(LanceModel), newHost(LanceModel)
	_ = Connect(a.nic, b.nic)
	var arrivals []sim.Time
	b.nic.OnReceive = func(NetFrame) bool { arrivals = append(arrivals, b.eng.Now()); return true }
	_ = a.nic.Send(NetFrame{Size: 1500})
	_ = a.nic.Send(NetFrame{Size: 1500})
	sim.NewCluster(a.eng, b.eng).Run(0)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	gap := arrivals[1].Sub(arrivals[0])
	if gap < LanceModel.TxTime(1500) {
		t.Errorf("inter-arrival %v < tx time %v: wire not serialized", gap, LanceModel.TxTime(1500))
	}
}

func TestNICPIOChargesCPU(t *testing.T) {
	a, b := newHost(ForeModel), newHost(ForeModel)
	_ = Connect(a.nic, b.nic)
	before := a.eng.Clock.Busy()
	_ = a.nic.Send(NetFrame{Size: 8132})
	pioCost := a.eng.Clock.Busy() - before - ForeModel.DriverSendCost
	wantPIO := sim.Duration((8132+7)/8) * ForeModel.PIOWordCost
	if pioCost != wantPIO {
		t.Errorf("PIO cost = %v, want %v", pioCost, wantPIO)
	}
}

// Property: translation after Install always succeeds with the installed
// frame for allowed access modes, for any (vpn, frame) pairs.
func TestMMUTranslateProperty(t *testing.T) {
	if err := quick.Check(func(pairs []struct{ V, F uint16 }) bool {
		_, m := newHW()
		ctx := m.CreateContext()
		want := map[uint64]uint64{}
		for _, p := range pairs {
			vpn, frame := uint64(p.V), uint64(p.F)
			if err := m.Install(ctx, vpn, PTE{Frame: frame, Prot: ProtRead}); err != nil {
				return false
			}
			want[vpn] = frame
		}
		for vpn, frame := range want {
			got, fault := m.Translate(ctx, vpn, ProtRead)
			if fault != nil || got != frame {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFramebuffer(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFramebuffer(eng.Clock, 64, 48)
	frame := make([]byte, 64*48)
	for i := range frame {
		frame[i] = byte(i)
	}
	fb.WriteFrame(frame)
	px, err := fb.Pixel(10, 0)
	if err != nil || px != 10 {
		t.Errorf("Pixel = %d, %v", px, err)
	}
	if _, err := fb.Pixel(99, 0); err == nil {
		t.Error("out-of-range pixel read succeeded")
	}
	frames, bytes := fb.Stats()
	if frames != 1 || bytes != int64(len(frame)) {
		t.Errorf("stats = %d,%d", frames, bytes)
	}
	if eng.Clock.Busy() == 0 {
		t.Error("framebuffer writes cost no CPU")
	}
	// Oversized frames truncate to the screen.
	fb.WriteFrame(make([]byte, 2*64*48))
	if _, b := fb.Stats(); b != int64(2*len(frame)) {
		t.Errorf("truncation accounting wrong: %d", b)
	}
}

func TestDiskAsyncCompletionInterrupt(t *testing.T) {
	eng := sim.NewEngine()
	ic := NewInterruptController(eng, &sim.SPINProfile)
	// The disk driver's interrupt handler runs completions.
	ic.Register(VecDisk, func(payload any) {
		c := payload.(DiskCompletion)
		if c.Done != nil {
			c.Done(c)
		}
	})
	d := NewDisk(eng.Clock)
	d.AttachInterrupts(eng, ic)
	d.WriteBlock(5, []byte("async read"))

	var got []byte
	var completedAt sim.Time
	start := eng.Now()
	if err := d.ReadBlockAsync(5, func(c DiskCompletion) {
		got = c.Data[:10]
		completedAt = eng.Now()
	}); err != nil {
		t.Fatal(err)
	}
	// The request returns immediately; the data is not there yet.
	if got != nil {
		t.Fatal("async read completed synchronously")
	}
	eng.Run(0)
	if string(got) != "async read" {
		t.Errorf("data = %q", got)
	}
	if completedAt.Sub(start) < d.SeekTime {
		t.Errorf("completion at %v, before the seek could finish", completedAt.Sub(start))
	}
}

func TestDiskAsyncWithoutAttachment(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng.Clock)
	if err := d.ReadBlockAsync(0, nil); err == nil {
		t.Error("async read without interrupt attachment succeeded")
	}
}

func TestInterruptRaiseNowAndStrings(t *testing.T) {
	eng := sim.NewEngine()
	ic := NewInterruptController(eng, &sim.SPINProfile)
	hit := false
	ic.Register(VecTimer, func(any) { hit = true })
	ic.Raise(VecTimer, nil)
	eng.Run(0)
	if !hit {
		t.Error("immediate interrupt not delivered")
	}
	for v, want := range map[InterruptVector]string{
		VecTimer: "timer", VecDisk: "disk", VecNIC0: "nic0", VecNIC1: "nic1", 99: "vec99",
	} {
		if v.String() != want {
			t.Errorf("vector %d = %q", int(v), v.String())
		}
	}
	for k, want := range map[FaultKind]string{
		FaultNone: "none", FaultBadAddress: "bad-address",
		FaultPageNotPresent: "page-not-present", FaultProtection: "protection-fault",
	} {
		if k.String() != want {
			t.Errorf("kind %d = %q", int(k), k.String())
		}
	}
}

func TestMarkAllocatedToggle(t *testing.T) {
	_, m := newHW()
	ctx := m.CreateContext()
	_ = m.MarkAllocated(ctx, 4, true)
	_, fault := m.Translate(ctx, 4, ProtRead)
	if fault.Kind != FaultPageNotPresent {
		t.Errorf("allocated: %v", fault.Kind)
	}
	_ = m.MarkAllocated(ctx, 4, false)
	_, fault = m.Translate(ctx, 4, ProtRead)
	if fault.Kind != FaultBadAddress {
		t.Errorf("deallocated: %v", fault.Kind)
	}
	if err := m.MarkAllocated(999, 1, true); err == nil {
		t.Error("bad context accepted")
	}
	if m.Faults() < 2 {
		t.Errorf("fault counter = %d", m.Faults())
	}
}

func TestDestroyContextFlushesItsTLBOnly(t *testing.T) {
	_, m := newHW()
	a := m.CreateContext()
	b := m.CreateContext()
	_ = m.Install(a, 1, PTE{Frame: 1, Prot: ProtRead})
	_ = m.Install(b, 1, PTE{Frame: 2, Prot: ProtRead})
	m.Translate(a, 1, ProtRead)
	m.Translate(b, 1, ProtRead)
	_ = m.DestroyContext(a)
	// b's entry survives: next access is a hit.
	hitsBefore, _ := m.TLBStats()
	m.Translate(b, 1, ProtRead)
	hitsAfter, _ := m.TLBStats()
	if hitsAfter != hitsBefore+1 {
		t.Error("destroying context a flushed context b's TLB entry")
	}
}
