package sal

import (
	"fmt"

	"spin/internal/sim"
)

// Framebuffer is the video display device the client-side video extension
// writes decompressed frames into (paper §1.2: the viewer extension
// "decompresses incoming network video packets and displays them to the
// video frame buffer"). Writes cost CPU time like any other memory-mapped
// I/O.
type Framebuffer struct {
	clock  *sim.Clock
	Width  int
	Height int
	// pixels is the current display contents (one byte per pixel, 8-bit
	// grayscale keeps the model simple).
	pixels []byte
	// WriteCostPerWord is the cost of storing one 8-byte word into the
	// (uncached) framebuffer aperture.
	WriteCostPerWord sim.Duration

	frames int64
	bytes  int64
}

// NewFramebuffer returns a display of the given dimensions.
func NewFramebuffer(clock *sim.Clock, width, height int) *Framebuffer {
	return &Framebuffer{
		clock:            clock,
		Width:            width,
		Height:           height,
		pixels:           make([]byte, width*height),
		WriteCostPerWord: 100, // ns: uncached I/O space store
	}
}

// WriteFrame blits data to the display starting at the top-left, truncating
// to the screen size, and counts one displayed frame.
func (fb *Framebuffer) WriteFrame(data []byte) {
	n := len(data)
	if n > len(fb.pixels) {
		n = len(fb.pixels)
	}
	fb.clock.Advance(sim.Duration((n+7)/8) * fb.WriteCostPerWord)
	copy(fb.pixels[:n], data[:n])
	fb.frames++
	fb.bytes += int64(n)
}

// Pixel reads back one pixel (diagnostics).
func (fb *Framebuffer) Pixel(x, y int) (byte, error) {
	if x < 0 || x >= fb.Width || y < 0 || y >= fb.Height {
		return 0, fmt.Errorf("sal: pixel (%d,%d) outside %dx%d", x, y, fb.Width, fb.Height)
	}
	return fb.pixels[y*fb.Width+x], nil
}

// Stats reports frames and bytes displayed.
func (fb *Framebuffer) Stats() (frames, bytes int64) { return fb.frames, fb.bytes }
