package sal

import (
	"fmt"
	"strings"

	"spin/internal/sim"
)

// Console is the machine console ("get a character from the console").
type Console struct {
	out strings.Builder
	in  []byte
}

// Write appends msg to the console output.
func (c *Console) Write(msg string) { c.out.WriteString(msg) }

// Output returns everything written so far.
func (c *Console) Output() string { return c.out.String() }

// FeedInput appends bytes to the input queue (as if typed).
func (c *Console) FeedInput(s string) { c.in = append(c.in, s...) }

// GetChar pops one input character; ok is false when the queue is empty.
func (c *Console) GetChar() (byte, bool) {
	if len(c.in) == 0 {
		return 0, false
	}
	ch := c.in[0]
	c.in = c.in[1:]
	return ch, true
}

// DiskBlockSize is the disk transfer unit (one page).
const DiskBlockSize = 8192

// Disk models the HP C2247 1 GB drive as a synchronous block device with a
// seek+rotation latency and a transfer rate. Reads and writes Sleep (I/O
// wait, not CPU) for the device time, so disk-bound workloads show low CPU
// utilization, as they should.
type Disk struct {
	clock  *sim.Clock
	engine *sim.Engine
	ic     *InterruptController
	blocks map[int64][]byte
	// SeekTime is average seek + rotational latency (~10ms + 5.5ms for
	// the C2247 era; we fold them together).
	SeekTime sim.Duration
	// TransferPerBlock is the media transfer time for one block.
	TransferPerBlock sim.Duration
	// lastBlock enables a simple sequential-access optimization: reads of
	// block n+1 right after n skip the seek.
	lastBlock int64

	reads, writes int64
}

// NewDisk returns a disk charging against clock.
func NewDisk(clock *sim.Clock) *Disk {
	return &Disk{
		clock:            clock,
		blocks:           make(map[int64][]byte),
		SeekTime:         12 * sim.Millisecond,
		TransferPerBlock: 2 * sim.Millisecond,
		lastBlock:        -10,
	}
}

// ReadBlock returns a copy of block b ("read block 22 from SCSI unit 0").
// Unwritten blocks read as zeros.
func (d *Disk) ReadBlock(b int64) []byte {
	d.charge(b)
	d.reads++
	out := make([]byte, DiskBlockSize)
	copy(out, d.blocks[b])
	return out
}

// WriteBlock stores data (truncated/padded to the block size) at block b.
func (d *Disk) WriteBlock(b int64, data []byte) {
	d.charge(b)
	d.writes++
	buf := make([]byte, DiskBlockSize)
	copy(buf, data)
	d.blocks[b] = buf
}

func (d *Disk) charge(b int64) {
	if b != d.lastBlock+1 {
		d.clock.Sleep(d.SeekTime)
	}
	d.clock.Sleep(d.TransferPerBlock)
	d.lastBlock = b
}

// Stats reports read/write counts.
func (d *Disk) Stats() (reads, writes int64) { return d.reads, d.writes }

// AttachInterrupts enables the asynchronous interface: completions are
// delivered as VecDisk interrupts through the controller.
func (d *Disk) AttachInterrupts(engine *sim.Engine, ic *InterruptController) {
	d.engine = engine
	d.ic = ic
}

// DiskCompletion is the payload delivered with a disk interrupt.
type DiskCompletion struct {
	Block int64
	Data  []byte
	// Done is the requester's continuation, invoked by the driver's
	// interrupt handler.
	Done func(DiskCompletion)
}

// ReadBlockAsync starts a read and returns immediately; when the media
// transfer completes (seek + transfer of virtual time later) the disk
// raises a VecDisk interrupt whose handler receives the completion. This is
// the paper's Figure 4 scenario: "a disk driver can direct a scheduler to
// block the current strand during an I/O operation, and an interrupt
// handler can unblock a strand to signal the completion".
func (d *Disk) ReadBlockAsync(b int64, done func(DiskCompletion)) error {
	if d.engine == nil || d.ic == nil {
		return fmt.Errorf("sal: disk has no interrupt attachment")
	}
	latency := d.TransferPerBlock
	if b != d.lastBlock+1 {
		latency += d.SeekTime
	}
	d.lastBlock = b
	d.reads++
	data := make([]byte, DiskBlockSize)
	copy(data, d.blocks[b])
	d.ic.RaiseAt(d.engine.Now().Add(latency), VecDisk, DiskCompletion{Block: b, Data: data, Done: done})
	return nil
}

// InterruptVector identifies an interrupt source.
type InterruptVector int

// Well-known vectors.
const (
	VecTimer InterruptVector = iota
	VecDisk
	VecNIC0
	VecNIC1
)

// InterruptController delivers device interrupts to registered handlers via
// the machine's engine, charging the interrupt-entry cost on delivery.
type InterruptController struct {
	engine   *sim.Engine
	profile  *sim.Profile
	handlers map[InterruptVector]func(payload any)
	count    map[InterruptVector]int64
}

// NewInterruptController returns a controller scheduling on engine.
func NewInterruptController(engine *sim.Engine, profile *sim.Profile) *InterruptController {
	return &InterruptController{
		engine:   engine,
		profile:  profile,
		handlers: make(map[InterruptVector]func(any)),
		count:    make(map[InterruptVector]int64),
	}
}

// Register installs the handler for vector, replacing any previous one.
func (ic *InterruptController) Register(vec InterruptVector, h func(payload any)) {
	ic.handlers[vec] = h
}

// RaiseAt schedules an interrupt for absolute time t.
func (ic *InterruptController) RaiseAt(t sim.Time, vec InterruptVector, payload any) {
	ic.engine.At(t, func() {
		ic.count[vec]++
		ic.engine.Clock.Advance(ic.profile.InterruptEntry)
		if h, ok := ic.handlers[vec]; ok {
			h(payload)
		}
	})
}

// Raise schedules an interrupt for the current time.
func (ic *InterruptController) Raise(vec InterruptVector, payload any) {
	ic.RaiseAt(ic.engine.Now(), vec, payload)
}

// Count reports interrupts delivered on vec.
func (ic *InterruptController) Count(vec InterruptVector) int64 { return ic.count[vec] }

func (v InterruptVector) String() string {
	switch v {
	case VecTimer:
		return "timer"
	case VecDisk:
		return "disk"
	case VecNIC0:
		return "nic0"
	case VecNIC1:
		return "nic1"
	}
	return fmt.Sprintf("vec%d", int(v))
}
