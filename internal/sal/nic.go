package sal

import (
	"fmt"
	"sync/atomic"

	"spin/internal/sim"
)

// NICModel captures the performance-relevant characteristics of a network
// interface: wire rate, media framing, host-interface style (programmed I/O
// versus DMA), fixed hardware latency, and per-packet driver costs. The
// three models below correspond to the paper's hardware. Driver costs are
// calibrated so that UDP/IP round trips land near Table 5 (the paper notes
// neither vendor driver is optimized for latency).
type NICModel struct {
	Name string
	// WireRate is the raw signalling rate in bits per second.
	WireRate int64
	// FrameOverhead is the per-packet media overhead in bytes (preamble,
	// inter-frame gap, CRC for Ethernet).
	FrameOverhead int
	// CellSize/CellPayload, when non-zero, cellize the packet (ATM: 53
	// byte cells carrying 48 payload bytes).
	CellSize, CellPayload int
	// PIOWordCost is the CPU cost of moving one 8-byte word across the
	// host interface with programmed I/O; zero means DMA.
	PIOWordCost sim.Duration
	// DMASetup is the per-packet CPU cost of programming a DMA transfer.
	DMASetup sim.Duration
	// FixedLatency is the one-way hardware latency (card, switch,
	// propagation).
	FixedLatency sim.Duration
	// DriverSendCost / DriverRecvCost are the per-packet CPU costs of the
	// vendor driver's send and receive paths, excluding data movement.
	DriverSendCost, DriverRecvCost sim.Duration
}

// The paper's three network interfaces.
var (
	// LanceModel: 10 Mb/s Lance Ethernet; DMA; drivers unoptimized for
	// latency but optimized for throughput.
	LanceModel = NICModel{
		Name:           "Lance Ethernet",
		WireRate:       10_000_000,
		FrameOverhead:  24, // preamble 8 + IFG 12 + CRC 4
		DMASetup:       2 * sim.Microsecond,
		FixedLatency:   40 * sim.Microsecond,
		DriverSendCost: 62 * sim.Microsecond,
		DriverRecvCost: 72 * sim.Microsecond,
	}
	// ForeModel: FORE TCA-100 155 Mb/s ATM; programmed I/O limits usable
	// bandwidth to ~53 Mb/s between hosts.
	ForeModel = NICModel{
		Name:           "FORE ATM",
		WireRate:       155_000_000,
		CellSize:       53,
		CellPayload:    48,
		PIOWordCost:    1800, // ns per 8-byte word, uncached I/O space
		FixedLatency:   30 * sim.Microsecond,
		DriverSendCost: 45 * sim.Microsecond,
		DriverRecvCost: 55 * sim.Microsecond,
	}
	// T3Model: experimental Digital T3PKT, 45 Mb/s with DMA (the Figure 6
	// video experiment).
	T3Model = NICModel{
		Name:           "Digital T3PKT",
		WireRate:       45_000_000,
		FrameOverhead:  4,
		DMASetup:       2 * sim.Microsecond,
		FixedLatency:   20 * sim.Microsecond,
		DriverSendCost: 35 * sim.Microsecond,
		DriverRecvCost: 30 * sim.Microsecond,
	}

	// The paper's §5.3 note: "Using different device drivers we achieve a
	// round-trip latency of 337 µsecs on Ethernet and 241 µsecs on ATM,
	// while reliable ATM bandwidth between a pair of hosts rises to 41
	// Mb/sec." These are those drivers: leaner per-packet paths and a
	// faster PIO loop.

	// OptimizedLanceModel: a latency-tuned Ethernet driver.
	OptimizedLanceModel = NICModel{
		Name:           "Lance Ethernet (optimized)",
		WireRate:       10_000_000,
		FrameOverhead:  24,
		DMASetup:       2 * sim.Microsecond,
		FixedLatency:   40 * sim.Microsecond,
		DriverSendCost: 4 * sim.Microsecond,
		DriverRecvCost: 7 * sim.Microsecond,
	}
	// OptimizedForeModel: a tuned ATM driver with an unrolled PIO loop.
	OptimizedForeModel = NICModel{
		Name:           "FORE ATM (optimized)",
		WireRate:       155_000_000,
		CellSize:       53,
		CellPayload:    48,
		PIOWordCost:    1450,
		FixedLatency:   30 * sim.Microsecond,
		DriverSendCost: 5 * sim.Microsecond,
		DriverRecvCost: 9 * sim.Microsecond,
	}
)

// WireBytes returns the number of bytes the media carries for an n-byte
// frame, including framing or cellization.
func (m *NICModel) WireBytes(n int) int {
	if m.CellSize > 0 {
		cells := (n + 8 + m.CellPayload - 1) / m.CellPayload // +8: AAL5 trailer
		return cells * m.CellSize
	}
	return n + m.FrameOverhead
}

// TxTime returns the media transmission time for an n-byte frame.
func (m *NICModel) TxTime(n int) sim.Duration {
	bits := int64(m.WireBytes(n)) * 8
	return sim.Duration(bits * int64(sim.Second) / m.WireRate)
}

// hostMoveCost returns the CPU cost of moving an n-byte frame across the
// host interface (PIO per word, or DMA setup).
func (m *NICModel) hostMoveCost(n int) sim.Duration {
	if m.PIOWordCost > 0 {
		words := sim.Duration((n + 7) / 8)
		return words * m.PIOWordCost
	}
	return m.DMASetup
}

// NetFrame is a frame in flight: a wire size plus an opaque payload (the
// protocol stack's packet object rides through unserialized; only Size
// affects timing).
type NetFrame struct {
	Size    int
	Payload any
}

// Wire is the attachable transport behind a NIC's transmitter. Send charges
// the driver and host-interface costs, serializes the frame on the NIC's
// transmitter, and hands it to the wire with the time serialization
// finished; the wire owns everything from there — propagation delay, loss
// and reordering models, multi-hop forwarding through switches — and
// ultimately schedules arrival on a destination NIC via DeliverAt. Connect
// installs the trivial point-to-point wire; internal/vnet installs modeled
// links and switched topologies.
type Wire interface {
	// Transmit carries f, which finished serializing out of the sending
	// NIC at departed (sender-local virtual time).
	Transmit(f NetFrame, departed sim.Time)
}

// NIC is one network interface on one machine. Frames leave through the
// attached Wire and are delivered to the destination NIC through its
// machine's interrupt controller; the registered receive upcall is the
// driver's entry point.
//
// Counters are atomics: they are mutated in interrupt context (the
// simulation goroutine) while Stats/Dropped/RXDropped may be read from
// other goroutines (tests, debug endpoints, parallel RX workers).
type NIC struct {
	Model  NICModel
	engine *sim.Engine
	clock  *sim.Clock
	ic     *InterruptController
	vector InterruptVector

	wire     Wire
	txFreeAt sim.Time

	// OnReceive is the driver receive upcall, called in interrupt context
	// after the driver receive cost has been charged. It reports whether
	// the frame was accepted; a false return means the protocol stack's
	// bounded RX queue was full (backpressure) and the NIC counts the
	// frame as dropped on receive.
	OnReceive func(NetFrame) bool

	// lossRate drops outbound frames with the given probability, using a
	// deterministic PRNG — fault injection for protocol robustness tests.
	lossRate float64
	lossRng  *sim.Rand

	sent, received atomic.Int64
	bytesSent      atomic.Int64
	bytesReceived  atomic.Int64
	dropped        atomic.Int64
	rxDropped      atomic.Int64
}

// InjectLoss makes the NIC drop outbound frames with probability p,
// deterministically from seed. p=0 disables injection.
func (n *NIC) InjectLoss(p float64, seed uint64) {
	n.lossRate = p
	n.lossRng = sim.NewRand(seed)
}

// Dropped reports frames lost to injection.
func (n *NIC) Dropped() int64 { return n.dropped.Load() }

// RXDropped reports received frames the driver upcall refused — arrivals
// that found the stack's bounded RX queue full.
func (n *NIC) RXDropped() int64 { return n.rxDropped.Load() }

// NewNIC creates an interface of the given model on the machine described
// by engine/ic, delivering receive interrupts on vector.
func NewNIC(model NICModel, engine *sim.Engine, ic *InterruptController, vector InterruptVector) *NIC {
	n := &NIC{
		Model:  model,
		engine: engine,
		clock:  engine.Clock,
		ic:     ic,
		vector: vector,
	}
	ic.Register(vector, func(payload any) {
		f := payload.(NetFrame)
		n.clock.Advance(n.Model.DriverRecvCost)
		n.clock.Advance(n.Model.hostMoveCost(f.Size))
		n.received.Add(1)
		n.bytesReceived.Add(int64(f.Size))
		if n.OnReceive != nil && !n.OnReceive(f) {
			n.rxDropped.Add(1)
		}
	})
	return n
}

// AttachWire installs w as the NIC's outbound transport, replacing any
// previous wire. Topology builders (internal/vnet) use this to hang a NIC
// off a modeled link or switch port instead of a fixed peer.
func (n *NIC) AttachWire(w Wire) { n.wire = w }

// Wire returns the attached outbound transport (nil when unconnected).
func (n *NIC) Wire() Wire { return n.wire }

// DeliverAt schedules f's receive interrupt on this NIC at absolute virtual
// time t — the receive-side entry point wires and switch nodes use.
func (n *NIC) DeliverAt(t sim.Time, f NetFrame) {
	n.ic.RaiseAt(t, n.vector, f)
}

// ptpWire is the point-to-point wire Connect installs: fixed hardware
// latency straight to the peer NIC.
type ptpWire struct {
	to      *NIC
	latency sim.Duration
}

func (w *ptpWire) Transmit(f NetFrame, departed sim.Time) {
	w.to.DeliverAt(departed.Add(w.latency), f)
}

// Connect joins two NICs with a full-duplex link. Both must share a model
// (same media).
func Connect(a, b *NIC) error {
	if a.Model.Name != b.Model.Name {
		return fmt.Errorf("sal: cannot connect %s to %s", a.Model.Name, b.Model.Name)
	}
	a.wire = &ptpWire{to: b, latency: a.Model.FixedLatency}
	b.wire = &ptpWire{to: a, latency: b.Model.FixedLatency}
	return nil
}

// Send transmits a frame: it charges the driver send path and data movement
// to this machine's CPU, serializes on the transmitter, and hands the frame
// to the attached wire, which schedules the receive interrupt on the
// destination machine.
func (n *NIC) Send(f NetFrame) error {
	if n.wire == nil {
		return fmt.Errorf("sal: %s not connected", n.Model.Name)
	}
	n.clock.Advance(n.Model.DriverSendCost)
	n.clock.Advance(n.Model.hostMoveCost(f.Size))
	start := n.clock.Now()
	if n.txFreeAt > start {
		start = n.txFreeAt
	}
	tx := n.Model.TxTime(f.Size)
	n.txFreeAt = start.Add(tx)
	n.sent.Add(1)
	n.bytesSent.Add(int64(f.Size))
	if n.lossRate > 0 && n.lossRng != nil && n.lossRng.Float64() < n.lossRate {
		// The frame occupies the wire but never arrives (CRC error,
		// collision): the transmitter cannot tell. A refcounted payload
		// (netstack's pooled packets) is recycled here — the end of the
		// frame's life. The interface assertion keeps sal independent of
		// the protocol stack's packet type.
		n.dropped.Add(1)
		ReleaseFrame(f)
		return nil
	}
	n.wire.Transmit(f, n.txFreeAt)
	return nil
}

// ReleaseFrame recycles a frame's payload at the end of its life (a
// refcounted netstack packet dropped by a wire, link or switch). The
// interface assertion keeps sal independent of the protocol stack's packet
// type; foreign payloads are untouched.
func ReleaseFrame(f NetFrame) {
	if r, ok := f.Payload.(interface{ Release() }); ok {
		r.Release()
	}
}

// Stats reports frames and bytes in each direction.
func (n *NIC) Stats() (sent, received, bytesSent, bytesReceived int64) {
	return n.sent.Load(), n.received.Load(), n.bytesSent.Load(), n.bytesReceived.Load()
}
