package sal

import "fmt"

// Frame records the hardware-visible state of one physical page frame.
type Frame struct {
	// Dirty is set when the frame is written through a mapping. The SPIN
	// "Dirty" benchmark (Table 4) queries this — a facility neither DEC
	// OSF/1 nor Mach exported.
	Dirty bool
	// Referenced is set on any access.
	Referenced bool
	// InUse marks frames handed out by the physical allocator.
	InUse bool
	// Color is the frame's cache color (frame number modulo the number
	// of page-sized cache bins), used by allocation attributes.
	Color int
}

// NumColors is the number of page colors implied by the machine's 512 KB
// direct-mapped external cache and 8 KB pages.
const NumColors = 64

// PhysMem is the machine's physical page-frame array.
type PhysMem struct {
	frames []Frame
}

// NewPhysMem returns physical memory of size bytes (rounded down to whole
// frames). The paper's machines had 64 MB.
func NewPhysMem(size int64) *PhysMem {
	n := size / PageSize
	pm := &PhysMem{frames: make([]Frame, n)}
	for i := range pm.frames {
		pm.frames[i].Color = i % NumColors
	}
	return pm
}

// NumFrames reports the total number of frames.
func (pm *PhysMem) NumFrames() int { return len(pm.frames) }

// Frame returns a pointer to frame f's state.
func (pm *PhysMem) Frame(f uint64) (*Frame, error) {
	if f >= uint64(len(pm.frames)) {
		return nil, fmt.Errorf("sal: frame %d out of range (%d frames)", f, len(pm.frames))
	}
	return &pm.frames[f], nil
}

// Touch records an access to frame f; write marks it dirty.
func (pm *PhysMem) Touch(f uint64, write bool) error {
	fr, err := pm.Frame(f)
	if err != nil {
		return err
	}
	fr.Referenced = true
	if write {
		fr.Dirty = true
	}
	return nil
}
