package sal

import (
	"sync"
	"testing"

	"spin/internal/sim"
)

// Regression for the NIC counter race: sent/received/bytesSent/
// bytesReceived/dropped/rxDropped are mutated in interrupt context (the
// engine goroutine) while Stats()/Dropped()/RXDropped() are read from test
// and debug goroutines. The counters are atomics; under -race this test
// fails if anyone demotes them back to plain int64.
func TestNICStatsRaceWithDelivery(t *testing.T) {
	eng := sim.NewEngine()
	prof := &sim.SPINProfile
	ic := NewInterruptController(eng, prof)
	a := NewNIC(LanceModel, eng, ic, VecNIC0)
	b := NewNIC(LanceModel, eng, ic, VecNIC0+1)
	if err := Connect(a, b); err != nil {
		t.Fatal(err)
	}
	// Refuse every other frame so rxDropped moves too.
	refuse := false
	b.OnReceive = func(NetFrame) bool {
		refuse = !refuse
		return refuse
	}
	a.InjectLoss(0.2, 7)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, r, bs, br := a.Stats()
				_, _, _, _ = s, r, bs, br
				_, r2, _, _ := b.Stats()
				sink += a.Dropped() + b.RXDropped() + r2
			}
		}()
	}
	const frames = 2000
	for i := 0; i < frames; i++ {
		if err := a.Send(NetFrame{Size: 128}); err != nil {
			t.Fatal(err)
		}
		eng.Run(0)
	}
	close(stop)
	wg.Wait()

	sent, _, bytesSent, _ := a.Stats()
	if sent != frames {
		t.Errorf("sent = %d, want %d", sent, frames)
	}
	if bytesSent != frames*128 {
		t.Errorf("bytesSent = %d, want %d", bytesSent, frames*128)
	}
	_, recv, _, bytesRecv := b.Stats()
	if recv+a.Dropped() != frames {
		t.Errorf("received %d + dropped %d != sent %d", recv, a.Dropped(), frames)
	}
	if bytesRecv != recv*128 {
		t.Errorf("bytesReceived = %d, want %d", bytesRecv, recv*128)
	}
	if b.RXDropped() == 0 {
		t.Error("refusing upcall never counted an rx drop")
	}
}

// AttachWire lets a custom transport observe exactly what Send emits, with
// serialization already applied — the seam vnet builds links on.
func TestNICAttachWire(t *testing.T) {
	eng := sim.NewEngine()
	prof := &sim.SPINProfile
	ic := NewInterruptController(eng, prof)
	n := NewNIC(LanceModel, eng, ic, VecNIC0)
	var got []sim.Time
	n.AttachWire(wireFunc(func(f NetFrame, departed sim.Time) {
		got = append(got, departed)
	}))
	if n.Wire() == nil {
		t.Fatal("Wire() nil after AttachWire")
	}
	if err := n.Send(NetFrame{Size: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(NetFrame{Size: 1000}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("wire saw %d frames", len(got))
	}
	// Back-to-back frames serialize: the second departs at least one
	// transmission time after the first.
	if gap := got[1].Sub(got[0]); gap < n.Model.TxTime(1000) {
		t.Errorf("departure gap %v < tx time %v", gap, n.Model.TxTime(1000))
	}
}

type wireFunc func(f NetFrame, departed sim.Time)

func (w wireFunc) Transmit(f NetFrame, departed sim.Time) { w(f, departed) }
