package netdbg

import (
	"strings"
	"testing"
)

// TestTopoUnattached: without a Topo source the command degrades to an
// error reply, like every other nil-field command.
func TestTopoUnattached(t *testing.T) {
	r := newRig(t)
	if got := r.query(t, "topo"); !strings.Contains(got, "error: no topology attached") {
		t.Errorf("topo without source: %q", got)
	}
}

// TestLBCommand: the "lb" command renders the attached balancer snapshot —
// ring membership, client counters, per-backend breaker lines — and
// degrades to an error without one.
func TestLBCommand(t *testing.T) {
	r := newRig(t)
	got := r.query(t, "lb")
	for _, want := range []string{
		"ring 1/2 backends [replica-a], ejections=1",
		"requests=8", "retries=2",
		"replica-a", "closed", "replica-b", "open",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("lb reply missing %q:\n%s", want, got)
		}
	}
	bare := &Debugger{}
	if got := bare.lb(); !strings.Contains(got, "error: no load balancer attached") {
		t.Errorf("lb without balancer: %q", got)
	}
	if !strings.Contains(r.query(t, "help"), "lb") {
		t.Error("help does not list lb")
	}
}
