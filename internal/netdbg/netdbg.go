// Package netdbg implements the network debugger listed among SPIN's core
// services (paper §5.1, after [Redell 88]'s Topaz teledebugging): an
// in-kernel extension that answers debugging queries over UDP, so a remote
// machine can inspect a running kernel — installed events and handlers,
// physical memory state, dispatcher statistics — without stopping it.
package netdbg

import (
	"fmt"
	"sort"
	"strings"

	"spin/internal/dispatch"
	"spin/internal/netstack"
	"spin/internal/sal"
)

// DefaultPort is the debugger's UDP port.
const DefaultPort = 2345

// Target is the set of kernel facilities the debugger exposes. Nil fields
// disable the corresponding commands.
type Target struct {
	Dispatcher *dispatch.Dispatcher
	Phys       *sal.PhysMem
	MMU        *sal.MMU
	// Net, when set, enables the transport inspection commands (the
	// debugger's own stack is used when nil).
	Net *netstack.Stack
	// Topo, when set, enables the "topo" command: it reports the network
	// topology this kernel is part of (nodes, links, state) — e.g. a vnet
	// Internet's Describe.
	Topo func() string
	// Extra registers additional commands: name -> handler(arg) -> reply.
	Extra map[string]func(arg string) string
}

// Debugger is the server-side extension.
type Debugger struct {
	stack  *netstack.Stack
	target Target
	// Queries counts requests served.
	Queries int64
}

// New installs the debugger on stack at port.
func New(stack *netstack.Stack, port uint16, target Target) (*Debugger, error) {
	d := &Debugger{stack: stack, target: target}
	if d.target.Net == nil {
		d.target.Net = stack
	}
	err := stack.UDP().Bind(port, netstack.InKernelDelivery, func(pkt *netstack.Packet) {
		d.Queries++
		reply := d.execute(string(pkt.Payload))
		_ = stack.UDP().Send(port, pkt.Src, pkt.SrcPort, []byte(reply))
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// execute runs one command line: "cmd [arg]".
func (d *Debugger) execute(line string) string {
	cmd, arg, _ := strings.Cut(strings.TrimSpace(line), " ")
	switch cmd {
	case "help":
		return d.help()
	case "events":
		return d.events()
	case "handlers":
		return d.handlers(arg)
	case "stats":
		return d.stats(arg)
	case "faults":
		return d.faults()
	case "frame":
		return d.frame(arg)
	case "tlb":
		return d.tlb()
	case "mem":
		return d.mem()
	case "net":
		return d.net()
	case "topo":
		return d.topo()
	default:
		if d.target.Extra != nil {
			if h, ok := d.target.Extra[cmd]; ok {
				return h(arg)
			}
		}
		return fmt.Sprintf("error: unknown command %q (try help)", cmd)
	}
}

func (d *Debugger) help() string {
	cmds := []string{"events", "faults", "frame <n>", "handlers <event>", "help", "mem", "net", "stats <event>", "tlb", "topo"}
	for c := range d.target.Extra {
		cmds = append(cmds, c)
	}
	sort.Strings(cmds)
	return "commands: " + strings.Join(cmds, ", ")
}

func (d *Debugger) events() string {
	if d.target.Dispatcher == nil {
		return "error: no dispatcher attached"
	}
	return strings.Join(d.target.Dispatcher.Events(), "\n")
}

func (d *Debugger) handlers(event string) string {
	if d.target.Dispatcher == nil {
		return "error: no dispatcher attached"
	}
	owners := d.target.Dispatcher.HandlerOwners(event)
	if owners == nil {
		return fmt.Sprintf("error: no event %q", event)
	}
	return fmt.Sprintf("%s: %d handler(s): %s", event, len(owners), strings.Join(owners, ", "))
}

func (d *Debugger) stats(event string) string {
	if d.target.Dispatcher == nil {
		return "error: no dispatcher attached"
	}
	raises, aborts, faults := d.target.Dispatcher.Stats(event)
	return fmt.Sprintf("%s: raises=%d aborts=%d faults=%d", event, raises, aborts, faults)
}

// faults summarizes extension misbehaviour: global and per-event contained
// fault counts, plus the quarantine log — which handlers the dispatcher has
// unlinked, and why.
func (d *Debugger) faults() string {
	disp := d.target.Dispatcher
	if disp == nil {
		return "error: no dispatcher attached"
	}
	return FaultReport(disp)
}

// FaultReport renders the dispatcher's fault-containment state: contained
// fault totals, per-event fault and quarantine counts, the active policy
// and the quarantine log. Shared by the "faults" wire command and
// spin-httpd's /debug/faults endpoint.
func FaultReport(disp *dispatch.Dispatcher) string {
	total, last := disp.ExtensionFaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "faults: %d contained", total)
	if last != "" {
		fmt.Fprintf(&sb, "; last: %s", last)
	}
	for _, ev := range disp.Events() {
		if _, _, f := disp.Stats(ev); f > 0 {
			fmt.Fprintf(&sb, "\n  %s: faults=%d quarantined=%d", ev, f, disp.QuarantinedOn(ev))
		}
	}
	q := disp.Quarantined()
	pol := disp.QuarantinePolicyInEffect()
	fmt.Fprintf(&sb, "\nquarantine: %d handler(s) unlinked (fault threshold %d, overrun budget %d)",
		len(q), pol.FaultThreshold, pol.OverrunBudget)
	for _, r := range q {
		fmt.Fprintf(&sb, "\n  %s", r)
	}
	return sb.String()
}

func (d *Debugger) frame(arg string) string {
	if d.target.Phys == nil {
		return "error: no physical memory attached"
	}
	var n uint64
	if _, err := fmt.Sscanf(arg, "%d", &n); err != nil {
		return "error: frame <number>"
	}
	fr, err := d.target.Phys.Frame(n)
	if err != nil {
		return "error: " + err.Error()
	}
	return fmt.Sprintf("frame %d: inuse=%v dirty=%v referenced=%v color=%d",
		n, fr.InUse, fr.Dirty, fr.Referenced, fr.Color)
}

func (d *Debugger) tlb() string {
	if d.target.MMU == nil {
		return "error: no MMU attached"
	}
	hits, misses := d.target.MMU.TLBStats()
	return fmt.Sprintf("tlb: hits=%d misses=%d faults=%d", hits, misses, d.target.MMU.Faults())
}

func (d *Debugger) mem() string {
	if d.target.Phys == nil {
		return "error: no physical memory attached"
	}
	inUse := 0
	total := d.target.Phys.NumFrames()
	for i := 0; i < total; i++ {
		fr, _ := d.target.Phys.Frame(uint64(i))
		if fr.InUse {
			inUse++
		}
	}
	return fmt.Sprintf("mem: %d/%d frames in use", inUse, total)
}

// net summarizes the transport state of the target's stack.
func (d *Debugger) net() string {
	st := d.target.Net
	rx, tx := st.Stats()
	ts := st.TCP().Stats()
	return fmt.Sprintf("net %s (%v): rx=%d tx=%d tcp-conns=%d half-open=%d evicted=%d resets=%d",
		st.Host, st.IP, rx, tx, ts.Conns, ts.HalfOpen, ts.HalfOpenEvicted, ts.Resets)
}

// topo reports the surrounding network topology.
func (d *Debugger) topo() string {
	if d.target.Topo == nil {
		return "error: no topology attached"
	}
	return d.target.Topo()
}

// Query sends one debugger command from a client stack and invokes done
// with the reply text. The reply port is ephemeral.
func Query(stack *netstack.Stack, server netstack.IPAddr, port uint16, cmd string, done func(string)) error {
	replyPort, err := stack.UDP().EphemeralPort()
	if err != nil {
		return err
	}
	err = stack.UDP().Bind(replyPort, netstack.InKernelDelivery, func(pkt *netstack.Packet) {
		stack.UDP().Unbind(replyPort)
		if done != nil {
			done(string(pkt.Payload))
		}
	})
	if err != nil {
		return err
	}
	return stack.UDP().Send(replyPort, server, port, []byte(cmd))
}
