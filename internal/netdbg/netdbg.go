// Package netdbg implements the network debugger listed among SPIN's core
// services (paper §5.1, after [Redell 88]'s Topaz teledebugging): an
// in-kernel extension that answers debugging queries over UDP, so a remote
// machine can inspect a running kernel — installed events and handlers,
// physical memory state, dispatcher statistics — without stopping it.
package netdbg

import (
	"fmt"
	"sort"
	"strings"

	"spin/internal/dispatch"
	"spin/internal/netstack"
	"spin/internal/sal"
)

// DefaultPort is the debugger's UDP port.
const DefaultPort = 2345

// Target is the set of kernel facilities the debugger exposes. Nil fields
// disable the corresponding commands.
type Target struct {
	Dispatcher *dispatch.Dispatcher
	Phys       *sal.PhysMem
	MMU        *sal.MMU
	// Net, when set, enables the transport inspection commands (the
	// debugger's own stack is used when nil).
	Net *netstack.Stack
	// Topo, when set, enables the "topo" command: it reports the network
	// topology this kernel is part of (nodes, links, state) — e.g. a vnet
	// Internet's Describe.
	Topo func() string
	// LB, when set, enables the "lb" command: a snapshot of this kernel's
	// load-balancer state (ring membership, breaker states, retry budget).
	LB func() LBReport
	// BCode, when set, enables the "bcode" command: the verified bytecode
	// programs loaded into this kernel (XDP filters, dispatcher guards,
	// steal policies) with run counters and quarantine state.
	BCode func() BCodeReport
	// Extra registers additional commands: name -> handler(arg) -> reply.
	Extra map[string]func(arg string) string
}

// Debugger is the server-side extension.
type Debugger struct {
	stack  *netstack.Stack
	target Target
	// Queries counts requests served.
	Queries int64
}

// New installs the debugger on stack at port.
func New(stack *netstack.Stack, port uint16, target Target) (*Debugger, error) {
	d := &Debugger{stack: stack, target: target}
	if d.target.Net == nil {
		d.target.Net = stack
	}
	err := stack.UDP().Bind(port, netstack.InKernelDelivery, func(pkt *netstack.Packet) {
		d.Queries++
		reply := d.execute(string(pkt.Payload))
		_ = stack.UDP().Send(port, pkt.Src, pkt.SrcPort, []byte(reply))
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// execute runs one command line: "cmd [arg]".
func (d *Debugger) execute(line string) string {
	cmd, arg, _ := strings.Cut(strings.TrimSpace(line), " ")
	switch cmd {
	case "help":
		return d.help()
	case "events":
		return d.events()
	case "handlers":
		return d.handlers(arg)
	case "stats":
		return d.stats(arg)
	case "faults":
		return d.faults()
	case "frame":
		return d.frame(arg)
	case "tlb":
		return d.tlb()
	case "mem":
		return d.mem()
	case "net":
		return d.net()
	case "topo":
		return d.topo()
	case "lb":
		return d.lb()
	case "bcode":
		return d.bcode()
	default:
		if d.target.Extra != nil {
			if h, ok := d.target.Extra[cmd]; ok {
				return h(arg)
			}
		}
		return fmt.Sprintf("error: unknown command %q (try help)", cmd)
	}
}

func (d *Debugger) help() string {
	cmds := []string{"bcode", "events", "faults", "frame <n>", "handlers <event>", "help", "lb", "mem", "net", "stats <event>", "tlb", "topo"}
	for c := range d.target.Extra {
		cmds = append(cmds, c)
	}
	sort.Strings(cmds)
	return "commands: " + strings.Join(cmds, ", ")
}

func (d *Debugger) events() string {
	if d.target.Dispatcher == nil {
		return "error: no dispatcher attached"
	}
	return strings.Join(d.target.Dispatcher.Events(), "\n")
}

func (d *Debugger) handlers(event string) string {
	if d.target.Dispatcher == nil {
		return "error: no dispatcher attached"
	}
	owners := d.target.Dispatcher.HandlerOwners(event)
	if owners == nil {
		return fmt.Sprintf("error: no event %q", event)
	}
	return fmt.Sprintf("%s: %d handler(s): %s", event, len(owners), strings.Join(owners, ", "))
}

func (d *Debugger) stats(event string) string {
	if d.target.Dispatcher == nil {
		return "error: no dispatcher attached"
	}
	raises, aborts, faults := d.target.Dispatcher.Stats(event)
	return fmt.Sprintf("%s: raises=%d aborts=%d faults=%d", event, raises, aborts, faults)
}

// faults summarizes extension misbehaviour: global and per-event contained
// fault counts, plus the quarantine log — which handlers the dispatcher has
// unlinked, and why.
func (d *Debugger) faults() string {
	disp := d.target.Dispatcher
	if disp == nil {
		return "error: no dispatcher attached"
	}
	return FaultReport(disp)
}

// FaultReport renders the dispatcher's fault-containment state: contained
// fault totals, per-event fault and quarantine counts, the active policy
// and the quarantine log. Shared by the "faults" wire command and
// spin-httpd's /debug/faults endpoint.
func FaultReport(disp *dispatch.Dispatcher) string {
	total, last := disp.ExtensionFaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "faults: %d contained", total)
	if last != "" {
		fmt.Fprintf(&sb, "; last: %s", last)
	}
	for _, ev := range disp.Events() {
		if _, _, f := disp.Stats(ev); f > 0 {
			fmt.Fprintf(&sb, "\n  %s: faults=%d quarantined=%d", ev, f, disp.QuarantinedOn(ev))
		}
	}
	q := disp.Quarantined()
	pol := disp.QuarantinePolicyInEffect()
	fmt.Fprintf(&sb, "\nquarantine: %d handler(s) unlinked (fault threshold %d, overrun budget %d)",
		len(q), pol.FaultThreshold, pol.OverrunBudget)
	for _, r := range q {
		fmt.Fprintf(&sb, "\n  %s", r)
	}
	return sb.String()
}

func (d *Debugger) frame(arg string) string {
	if d.target.Phys == nil {
		return "error: no physical memory attached"
	}
	var n uint64
	if _, err := fmt.Sscanf(arg, "%d", &n); err != nil {
		return "error: frame <number>"
	}
	fr, err := d.target.Phys.Frame(n)
	if err != nil {
		return "error: " + err.Error()
	}
	return fmt.Sprintf("frame %d: inuse=%v dirty=%v referenced=%v color=%d",
		n, fr.InUse, fr.Dirty, fr.Referenced, fr.Color)
}

func (d *Debugger) tlb() string {
	if d.target.MMU == nil {
		return "error: no MMU attached"
	}
	hits, misses := d.target.MMU.TLBStats()
	return fmt.Sprintf("tlb: hits=%d misses=%d faults=%d", hits, misses, d.target.MMU.Faults())
}

func (d *Debugger) mem() string {
	if d.target.Phys == nil {
		return "error: no physical memory attached"
	}
	inUse := 0
	total := d.target.Phys.NumFrames()
	for i := 0; i < total; i++ {
		fr, _ := d.target.Phys.Frame(uint64(i))
		if fr.InUse {
			inUse++
		}
	}
	return fmt.Sprintf("mem: %d/%d frames in use", inUse, total)
}

// net summarizes the transport state of the target's stack.
func (d *Debugger) net() string {
	st := d.target.Net
	rx, tx := st.Stats()
	ts := st.TCP().Stats()
	return fmt.Sprintf("net %s (%v): rx=%d tx=%d tcp-conns=%d half-open=%d evicted=%d resets=%d",
		st.Host, st.IP, rx, tx, ts.Conns, ts.HalfOpen, ts.HalfOpenEvicted, ts.Resets)
}

// topo reports the surrounding network topology.
func (d *Debugger) topo() string {
	if d.target.Topo == nil {
		return "error: no topology attached"
	}
	return d.target.Topo()
}

// lb reports the attached load balancer's state.
func (d *Debugger) lb() string {
	if d.target.LB == nil {
		return "error: no load balancer attached"
	}
	return d.target.LB().String()
}

// bcode reports the verified programs loaded into the target kernel.
func (d *Debugger) bcode() string {
	if d.target.BCode == nil {
		return "error: no bcode programs attached"
	}
	return d.target.BCode().String()
}

// BCodeProgInfo is one loaded verified program in a BCodeReport.
type BCodeProgInfo struct {
	Name  string
	Point string // load point: "xdp", "ip-filter", "steal-policy"
	Insns int
	Runs  int64
	// Matched counts verdicts that took the program's action (drops for
	// filters, vetoes for steal policies).
	Matched     int64
	Quarantined bool
}

// BCodeReport is the verified-extension snapshot shared by the "bcode"
// wire command and spin-httpd's /debug/bcode endpoint. The kernel fills
// it from its stack and scheduler; this package only renders it.
type BCodeReport struct {
	Programs []BCodeProgInfo
}

// String renders the report for the wire and the debug endpoint.
func (r BCodeReport) String() string {
	if len(r.Programs) == 0 {
		return "bcode: no verified programs loaded"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "bcode: %d verified program(s)", len(r.Programs))
	for _, p := range r.Programs {
		state := "live"
		if p.Quarantined {
			state = "QUARANTINED"
		}
		fmt.Fprintf(&sb, "\n  %-16s %-12s %3d insns  runs=%-8d matched=%-8d %s",
			p.Name, p.Point, p.Insns, p.Runs, p.Matched, state)
	}
	return sb.String()
}

// LBBackend is one backend's health in an LBReport.
type LBBackend struct {
	Name          string // ring member name
	Host          string // DNS name dialed
	State         string // breaker state: closed / open / half-open
	Picks         int64
	Successes     int64
	Failures      int64
	Probes        int64
	ProbeFailures int64
	Ejections     int64
}

// LBReport is the load-balancer snapshot shared by the "lb" wire command
// and spin-httpd's /debug/lb endpoint: ring membership, per-backend
// breaker states and counters, ejections, and the client's retry-budget
// spend. internal/lb fills it; this package only renders it, so the
// debugger does not depend on the balancer (or vice versa).
type LBReport struct {
	Members   []string // currently in the ring (healthy)
	Backends  []LBBackend
	Ejections int64

	// Client-side dialer counters (zero when only a balancer is attached).
	Requests     int64
	Attempts     int64
	Retries      int64
	Failovers    int64
	BudgetTokens float64
	BudgetSpent  int64
	BudgetDenied int64
}

// String renders the report for the wire and the debug endpoint.
func (r LBReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "lb: ring %d/%d backends [%s], ejections=%d",
		len(r.Members), len(r.Backends), strings.Join(r.Members, " "), r.Ejections)
	fmt.Fprintf(&sb, "\nclient: requests=%d attempts=%d retries=%d failovers=%d budget=%.2f spent=%d denied=%d",
		r.Requests, r.Attempts, r.Retries, r.Failovers, r.BudgetTokens, r.BudgetSpent, r.BudgetDenied)
	for _, b := range r.Backends {
		fmt.Fprintf(&sb, "\n  %-12s %-9s picks=%-6d ok=%-6d fail=%-4d probes=%-5d probe-fail=%-4d ejections=%d",
			b.Name, b.State, b.Picks, b.Successes, b.Failures, b.Probes, b.ProbeFailures, b.Ejections)
	}
	return sb.String()
}

// Query sends one debugger command from a client stack and invokes done
// with the reply text. The reply port is ephemeral.
func Query(stack *netstack.Stack, server netstack.IPAddr, port uint16, cmd string, done func(string)) error {
	replyPort, err := stack.UDP().EphemeralPort()
	if err != nil {
		return err
	}
	err = stack.UDP().Bind(replyPort, netstack.InKernelDelivery, func(pkt *netstack.Packet) {
		stack.UDP().Unbind(replyPort)
		if done != nil {
			done(string(pkt.Payload))
		}
	})
	if err != nil {
		return err
	}
	return stack.UDP().Send(replyPort, server, port, []byte(cmd))
}
