package netdbg

import (
	"strings"
	"testing"

	"spin/internal/dispatch"
	"spin/internal/domain"
)

// The "faults" command reports fault containment over the wire: contained
// totals, per-event counts, the active quarantine policy and its log.
func TestFaultsQueryReportsQuarantine(t *testing.T) {
	r := newRig(t)
	r.disp.SetQuarantinePolicy(dispatch.QuarantinePolicy{FaultThreshold: 2})
	if err := r.disp.Define("Dbg.E", dispatch.DefineOptions{
		Primary: func(_, _ any) any { return "ok" },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.disp.Install("Dbg.E", func(_, _ any) any { panic("bad ext") },
		dispatch.InstallOptions{Installer: domain.Identity{Name: "bad-ext"}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r.disp.Raise("Dbg.E", nil)
	}
	reply := r.query(t, "faults")
	for _, want := range []string{
		"2 contained", "Dbg.E: faults=2 quarantined=1",
		"1 handler(s) unlinked", "fault threshold 2", "bad-ext",
	} {
		if !strings.Contains(reply, want) {
			t.Errorf("faults reply missing %q:\n%s", want, reply)
		}
	}
}

func TestFaultsQueryNoDispatcher(t *testing.T) {
	d := &Debugger{}
	if reply := d.execute("faults"); !strings.Contains(reply, "error") {
		t.Errorf("faults without a dispatcher = %q, want error", reply)
	}
}
