// External test package: vnet (via internal/lb) depends on netdbg for the
// shared LBReport, so tests that build topologies must sit outside the
// package to keep the test binary's import graph acyclic.
package netdbg_test

import (
	"strings"
	"testing"

	"spin/internal/netdbg"
	"spin/internal/sim"
	"spin/internal/vnet"
)

// TestTopoOverVirtualInternet attaches the debugger to one machine of a
// routed topology and asks it, over that same topology, what the topology
// looks like — the "topo" command backed by vnet's Describe.
func TestTopoOverVirtualInternet(t *testing.T) {
	edge := vnet.LinkModel{Latency: 50 * sim.Microsecond}
	in, err := vnet.NewBuilder(31).
		Machine("target", 0).Machine("workstation", 0).Switch("s0").
		Link("target", "s0", edge).Link("workstation", "s0", edge).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	target := in.Machine("target")
	if _, err := netdbg.New(target.Stack, netdbg.DefaultPort, netdbg.Target{
		Dispatcher: target.Dispatcher,
		Topo:       in.Describe,
	}); err != nil {
		t.Fatal(err)
	}
	query := func(cmd string) string {
		var reply string
		done := false
		if err := netdbg.Query(in.Machine("workstation").Stack, in.IP("target"), netdbg.DefaultPort, cmd,
			func(s string) { reply = s; done = true }); err != nil {
			t.Fatal(err)
		}
		if !in.RunUntil(func() bool { return done }, sim.Time(10*sim.Second)) {
			t.Fatalf("query %q never answered", cmd)
		}
		return reply
	}
	topo := query("topo")
	for _, want := range []string{"target", "workstation", "switch  s0", "target~s0"} {
		if !strings.Contains(topo, want) {
			t.Errorf("topo reply missing %q:\n%s", want, topo)
		}
	}
	if !strings.Contains(query("help"), "topo") {
		t.Error("help does not list topo")
	}
}
