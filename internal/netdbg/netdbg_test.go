package netdbg

import (
	"strings"
	"testing"

	"spin/internal/dispatch"
	"spin/internal/netstack"
	"spin/internal/sal"
	"spin/internal/sim"
)

type rig struct {
	cluster *sim.Cluster
	client  *netstack.Stack
	server  *netstack.Stack
	dbg     *Debugger
	disp    *dispatch.Dispatcher
	phys    *sal.PhysMem
	mmu     *sal.MMU
}

func newRig(t *testing.T) *rig {
	t.Helper()
	mk := func(name string, ip netstack.IPAddr) (*sim.Engine, *dispatch.Dispatcher, *netstack.Stack, *sal.NIC) {
		eng := sim.NewEngine()
		prof := &sim.SPINProfile
		disp := dispatch.New(eng, prof)
		ic := sal.NewInterruptController(eng, prof)
		nic := sal.NewNIC(sal.LanceModel, eng, ic, sal.VecNIC0)
		stack, err := netstack.NewStack(name, ip, eng, prof, disp)
		if err != nil {
			t.Fatal(err)
		}
		stack.Attach(nic)
		return eng, disp, stack, nic
	}
	sEng, sDisp, sStack, sNIC := mk("target", netstack.Addr(10, 0, 0, 2))
	cEng, _, cStack, cNIC := mk("workstation", netstack.Addr(10, 0, 0, 1))
	if err := sal.Connect(sNIC, cNIC); err != nil {
		t.Fatal(err)
	}
	phys := sal.NewPhysMem(8 << 20)
	mmu := sal.NewMMU(sEng.Clock, &sim.SPINProfile)
	dbg, err := New(sStack, DefaultPort, Target{
		Dispatcher: sDisp,
		Phys:       phys,
		MMU:        mmu,
		LB: func() LBReport {
			return LBReport{
				Members:   []string{"replica-a"},
				Ejections: 1,
				Requests:  8,
				Retries:   2,
				Backends: []LBBackend{
					{Name: "replica-a", Host: "replica-a.spin.test", State: "closed", Picks: 5, Successes: 5},
					{Name: "replica-b", Host: "replica-b.spin.test", State: "open", Failures: 3, Ejections: 1},
				},
			}
		},
		Extra: map[string]func(string) string{
			"uptime": func(string) string { return "uptime: " + sEng.Now().Sub(0).String() },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		cluster: sim.NewCluster(sEng, cEng),
		client:  cStack, server: sStack,
		dbg: dbg, disp: sDisp, phys: phys, mmu: mmu,
	}
}

func (r *rig) query(t *testing.T, cmd string) string {
	t.Helper()
	var reply string
	done := false
	if err := Query(r.client, netstack.Addr(10, 0, 0, 2), DefaultPort, cmd, func(s string) {
		reply = s
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !r.cluster.RunUntil(func() bool { return done }, sim.Time(10*sim.Second)) {
		t.Fatalf("query %q never answered", cmd)
	}
	return reply
}

func TestHelp(t *testing.T) {
	r := newRig(t)
	reply := r.query(t, "help")
	for _, want := range []string{"events", "frame", "tlb", "uptime"} {
		if !strings.Contains(reply, want) {
			t.Errorf("help missing %q: %s", want, reply)
		}
	}
}

func TestEventsAndHandlers(t *testing.T) {
	r := newRig(t)
	reply := r.query(t, "events")
	if !strings.Contains(reply, "IP.PacketArrived") {
		t.Errorf("events = %q", reply)
	}
	reply = r.query(t, "handlers ICMP.PktArrived")
	if !strings.Contains(reply, "1 handler(s)") {
		t.Errorf("handlers = %q", reply)
	}
	reply = r.query(t, "handlers No.Such")
	if !strings.Contains(reply, "error") {
		t.Errorf("missing-event handlers = %q", reply)
	}
}

func TestStatsReflectTraffic(t *testing.T) {
	r := newRig(t)
	// The queries themselves raise UDP.PktArrived on the target.
	r.query(t, "help")
	reply := r.query(t, "stats UDP.PktArrived")
	if !strings.Contains(reply, "raises=") {
		t.Errorf("stats = %q", reply)
	}
}

func TestFrameAndMem(t *testing.T) {
	r := newRig(t)
	_ = r.phys.Touch(3, true)
	reply := r.query(t, "frame 3")
	if !strings.Contains(reply, "dirty=true") {
		t.Errorf("frame = %q", reply)
	}
	if reply = r.query(t, "frame zzz"); !strings.Contains(reply, "error") {
		t.Errorf("bad frame arg = %q", reply)
	}
	if reply = r.query(t, "mem"); !strings.Contains(reply, "frames in use") {
		t.Errorf("mem = %q", reply)
	}
}

func TestTLBCommand(t *testing.T) {
	r := newRig(t)
	ctx := r.mmu.CreateContext()
	_ = r.mmu.Install(ctx, 1, sal.PTE{Frame: 1, Prot: sal.ProtRead})
	r.mmu.Translate(ctx, 1, sal.ProtRead)
	r.mmu.Translate(ctx, 1, sal.ProtRead)
	reply := r.query(t, "tlb")
	if !strings.Contains(reply, "hits=1") || !strings.Contains(reply, "misses=1") {
		t.Errorf("tlb = %q", reply)
	}
}

func TestExtraCommandAndUnknown(t *testing.T) {
	r := newRig(t)
	if reply := r.query(t, "uptime"); !strings.HasPrefix(reply, "uptime:") {
		t.Errorf("extra = %q", reply)
	}
	if reply := r.query(t, "bogus"); !strings.Contains(reply, "unknown command") {
		t.Errorf("unknown = %q", reply)
	}
	if r.dbg.Queries < 2 {
		t.Errorf("queries = %d", r.dbg.Queries)
	}
}

func TestNetCommand(t *testing.T) {
	r := newRig(t)
	r.query(t, "help") // generate some traffic first
	reply := r.query(t, "net")
	if !strings.Contains(reply, "10.0.0.2") || !strings.Contains(reply, "tcp-conns=0") {
		t.Errorf("net = %q", reply)
	}
	if !strings.Contains(reply, "rx=") {
		t.Errorf("net missing counters: %q", reply)
	}
}
