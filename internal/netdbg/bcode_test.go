package netdbg

import (
	"strings"
	"testing"
)

func TestBCodeReportRenders(t *testing.T) {
	r := BCodeReport{Programs: []BCodeProgInfo{
		{Name: "udp7-drop", Point: "xdp", Insns: 9, Runs: 120, Matched: 7},
		{Name: "hostile", Point: "ip-filter", Insns: 9, Runs: 8, Matched: 0, Quarantined: true},
		{Name: "no-steal-0", Point: "steal-policy", Insns: 6, Runs: 44, Matched: 12},
	}}
	out := r.String()
	for _, want := range []string{
		"3 verified program(s)",
		"udp7-drop", "xdp", "runs=120", "matched=7",
		"hostile", "QUARANTINED",
		"no-steal-0", "steal-policy", "live",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if got := (BCodeReport{}).String(); !strings.Contains(got, "no verified programs") {
		t.Errorf("empty report = %q", got)
	}
}

// The "bcode" wire command serves the report like any other debugger query.
func TestBCodeQueryOverWire(t *testing.T) {
	r := newRig(t)
	r.dbg.target.BCode = func() BCodeReport {
		return BCodeReport{Programs: []BCodeProgInfo{
			{Name: "early", Point: "xdp", Insns: 9, Runs: 3, Matched: 1},
		}}
	}
	reply := r.query(t, "bcode")
	for _, want := range []string{"1 verified program(s)", "early", "runs=3"} {
		if !strings.Contains(reply, want) {
			t.Errorf("bcode reply missing %q:\n%s", want, reply)
		}
	}
	if help := r.query(t, "help"); !strings.Contains(help, "bcode") {
		t.Errorf("help does not list bcode: %s", help)
	}
}

func TestBCodeQueryNoSource(t *testing.T) {
	d := &Debugger{}
	if reply := d.execute("bcode"); !strings.Contains(reply, "error") {
		t.Errorf("bcode without a source = %q, want error", reply)
	}
}
