package strand

import (
	"testing"

	"spin/internal/dispatch"
	"spin/internal/sim"
	"spin/internal/trace"
)

// Multi-CPU scheduling: per-CPU run queues, work stealing, affinity, and
// migration accounting.

func newMultiSched(t *testing.T, cpus int) (*Scheduler, []*sim.Engine) {
	t.Helper()
	engines := make([]*sim.Engine, cpus)
	for i := range engines {
		engines[i] = sim.NewEngine()
	}
	disp := dispatch.New(engines[0], &sim.SPINProfile)
	sched, err := NewMultiScheduler(&sim.SPINProfile, disp, engines...)
	if err != nil {
		t.Fatal(err)
	}
	return sched, engines
}

// runBatch runs n compute-bound strands homed on CPU 0 and returns the
// virtual makespan (the max CPU clock afterwards).
func runBatch(t *testing.T, cpus, n int) (sim.Time, *Scheduler) {
	t.Helper()
	sched, engines := newMultiSched(t, cpus)
	for i := 0; i < n; i++ {
		s := sched.NewStrandOn("w", 1, 0, func(s *Strand) {
			for k := 0; k < 8; k++ {
				s.Exec(10 * sim.Microsecond)
				s.Yield()
			}
		})
		sched.Start(s)
	}
	sched.Run()
	var makespan sim.Time
	for _, eng := range engines {
		if now := eng.Clock.Now(); now > makespan {
			makespan = now
		}
	}
	return makespan, sched
}

func TestWorkStealingSpeedsUpBatch(t *testing.T) {
	one, _ := runBatch(t, 1, 32)
	four, sched := runBatch(t, 4, 32)
	if sched.Steals() == 0 {
		t.Fatal("no steals happened: all strands were homed on CPU 0")
	}
	if sched.Migrations() < sched.Steals() {
		t.Fatalf("migrations %d < steals %d: every steal must migrate",
			sched.Migrations(), sched.Steals())
	}
	speedup := float64(one) / float64(four)
	if speedup < 2 {
		t.Fatalf("4-CPU makespan %v vs 1-CPU %v: speedup %.2fx, want >= 2x", four, one, speedup)
	}
	t.Logf("makespan 1 CPU %v, 4 CPUs %v (%.2fx), steals %d", one, four, speedup, sched.Steals())
}

func TestNoStealsOnSingleCPU(t *testing.T) {
	_, sched := runBatch(t, 1, 8)
	if n := sched.Steals(); n != 0 {
		t.Fatalf("single CPU stole %d strands from itself", n)
	}
	if n := sched.Migrations(); n != 0 {
		t.Fatalf("single CPU migrated %d strands", n)
	}
}

func TestPerCPUStatsAddUp(t *testing.T) {
	_, sched := runBatch(t, 4, 32)
	stats := sched.CPUStats()
	if len(stats) != 4 {
		t.Fatalf("CPUStats returned %d entries, want 4", len(stats))
	}
	var switches, steals, migrations int64
	busy := 0
	for _, st := range stats {
		switches += st.Switches
		steals += st.Steals
		migrations += st.Migrations
		if st.Ready != 0 {
			t.Errorf("cpu%d still has %d ready strands after Run", st.ID, st.Ready)
		}
		if st.Switches > 0 {
			busy++
		}
	}
	if switches != sched.Switches() {
		t.Errorf("per-CPU switches sum %d != Switches() %d", switches, sched.Switches())
	}
	if steals != sched.Steals() || migrations != sched.Migrations() {
		t.Errorf("per-CPU sums (%d,%d) != totals (%d,%d)",
			steals, migrations, sched.Steals(), sched.Migrations())
	}
	if busy < 2 {
		t.Errorf("only %d CPUs ran strands; stealing should spread a 32-strand batch", busy)
	}
}

func TestStrandCPUFollowsSteal(t *testing.T) {
	sched, _ := newMultiSched(t, 2)
	var sawCPU1 bool
	for i := 0; i < 8; i++ {
		s := sched.NewStrandOn("w", 1, 0, func(s *Strand) {
			for k := 0; k < 4; k++ {
				s.Exec(5 * sim.Microsecond)
				s.Yield()
				if s.CPU() == 1 {
					sawCPU1 = true
				}
			}
		})
		if s.CPU() != 0 {
			t.Fatalf("NewStrandOn(0) homed strand on cpu%d", s.CPU())
		}
		sched.Start(s)
	}
	sched.Run()
	if !sawCPU1 {
		t.Error("no strand ever observed itself on CPU 1 after stealing")
	}
}

func TestNewStrandRoundRobinPlacement(t *testing.T) {
	sched, _ := newMultiSched(t, 4)
	for i := 0; i < 8; i++ {
		s := sched.NewStrand("s", 1, func(*Strand) {})
		if got := s.CPU(); got != i%4 {
			t.Fatalf("strand %d placed on cpu%d, want %d", i, got, i%4)
		}
	}
}

func TestSetAffinityMovesQueuedStrand(t *testing.T) {
	sched, _ := newMultiSched(t, 2)
	ranOn := -1
	s := sched.NewStrandOn("pinned", 1, 0, func(s *Strand) { ranOn = s.CPU() })
	sched.Start(s) // queued on cpu0
	sched.SetAffinity(s, 1)
	if s.CPU() != 1 {
		t.Fatalf("after SetAffinity strand homed on cpu%d, want 1", s.CPU())
	}
	if got := sched.CPUStats()[0].Ready; got != 0 {
		t.Fatalf("cpu0 still queues %d strands after re-homing", got)
	}
	if got := sched.Migrations(); got != 1 {
		t.Fatalf("Migrations = %d after SetAffinity, want 1", got)
	}
	sched.Run()
	if ranOn != 1 {
		t.Fatalf("strand ran on cpu%d, want 1", ranOn)
	}
	if sched.Steals() != 0 {
		t.Fatalf("affinity move counted as a steal")
	}
}

func TestSetAffinityBadCPUPanics(t *testing.T) {
	sched, _ := newMultiSched(t, 2)
	s := sched.NewStrand("s", 1, func(*Strand) {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetAffinity(7) on a 2-CPU machine did not panic")
		}
	}()
	sched.SetAffinity(s, 7)
}

func TestCrossCPUSleepWakesOnHomeCPU(t *testing.T) {
	sched, _ := newMultiSched(t, 2)
	wokeOn := -1
	var wokeAt sim.Time
	s := sched.NewStrandOn("sleeper", 1, 1, func(s *Strand) {
		s.Sleep(100 * sim.Microsecond)
		wokeOn = s.CPU()
		wokeAt = s.sched.cpus[s.CPU()].clock.Now()
	})
	sched.Start(s)
	// Keep cpu0 busy so the driver must interleave the sleeper's timer on
	// cpu1 with cpu0's work.
	busy := sched.NewStrandOn("busy", 1, 0, func(s *Strand) {
		for i := 0; i < 50; i++ {
			s.Exec(10 * sim.Microsecond)
			s.Yield()
		}
	})
	sched.Start(busy)
	sched.Run()
	if wokeOn != 1 {
		t.Fatalf("sleeper woke on cpu%d, want its home cpu1", wokeOn)
	}
	if wokeAt < sim.Time(100*sim.Microsecond) {
		t.Fatalf("sleeper woke at %v, before its 100µs timer", wokeAt)
	}
}

func TestStealEmitsTraceRecords(t *testing.T) {
	sched, _ := newMultiSched(t, 2)
	tr := trace.New(1024)
	sched.disp.SetTracer(tr)
	for i := 0; i < 8; i++ {
		s := sched.NewStrandOn("w", 1, 0, func(s *Strand) {
			for k := 0; k < 4; k++ {
				s.Exec(5 * sim.Microsecond)
				s.Yield()
			}
		})
		sched.Start(s)
	}
	sched.Run()
	if sched.Steals() == 0 {
		t.Fatal("workload produced no steals")
	}
	var steals, migrates int64
	for _, rec := range tr.Snapshot() {
		switch rec.Event {
		case "sched.steal":
			steals++
		case "sched.migrate":
			migrates++
		}
	}
	if steals != sched.Steals() {
		t.Errorf("trace has %d sched.steal records, scheduler counted %d", steals, sched.Steals())
	}
	if migrates != sched.Migrations() {
		t.Errorf("trace has %d sched.migrate records, scheduler counted %d", migrates, sched.Migrations())
	}
}

func TestObserverSeesStealsAndSwitches(t *testing.T) {
	sched, _ := newMultiSched(t, 2)
	var events []SchedEvent
	sched.SetObserver(func(ev SchedEvent) { events = append(events, ev) })
	for i := 0; i < 8; i++ {
		s := sched.NewStrandOn("w", 1, 0, func(s *Strand) {
			for k := 0; k < 4; k++ {
				s.Exec(5 * sim.Microsecond)
				s.Yield()
			}
		})
		sched.Start(s)
	}
	sched.Run()
	kinds := map[string]int64{}
	for _, ev := range events {
		kinds[ev.Kind]++
		if ev.Kind == "steal" && ev.CPU == ev.From {
			t.Errorf("steal from self: %v", ev)
		}
	}
	if kinds["switch"] != sched.Switches() {
		t.Errorf("observer saw %d switches, scheduler counted %d", kinds["switch"], sched.Switches())
	}
	if kinds["steal"] != sched.Steals() {
		t.Errorf("observer saw %d steals, scheduler counted %d", kinds["steal"], sched.Steals())
	}
}

func TestClusterScheduler(t *testing.T) {
	e0, e1 := sim.NewEngine(), sim.NewEngine()
	cl := sim.NewCluster(e0, e1)
	disp := dispatch.New(e0, &sim.SPINProfile)
	sched, err := NewClusterScheduler(cl, &sim.SPINProfile, disp)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.NumCPUs(); got != 2 {
		t.Fatalf("cluster scheduler has %d CPUs, want 2", got)
	}
	ran := 0
	for i := 0; i < 4; i++ {
		sched.Start(sched.NewStrand("s", 1, func(*Strand) { ran++ }))
	}
	sched.Run()
	if ran != 4 {
		t.Fatalf("%d strands ran, want 4", ran)
	}
}

func TestReportRendersPerCPU(t *testing.T) {
	_, sched := runBatch(t, 2, 8)
	rep := sched.Report()
	for _, want := range []string{"2 CPU(s)", "cpu0:", "cpu1:", "steals"} {
		if !contains(rep, want) {
			t.Errorf("Report() missing %q:\n%s", want, rep)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
