package strand

import (
	"errors"
	"testing"

	"spin/internal/bcode"
	"spin/internal/sim"
)

// vetoVictim builds a policy vetoing steals from the given victim CPU.
func vetoVictim(victim int32) *bcode.Program {
	return bcode.New(
		bcode.LdCtx(1, StealCtxVictim),
		bcode.JeqImm(1, victim, 2),
		bcode.MovImm(0, 0), // other victims: allow
		bcode.Exit(),
		bcode.MovImm(0, 1), // this victim: veto
		bcode.Exit(),
	)
}

// runPolicyBatch runs the stealing workload with a policy installed and
// returns per-CPU steal counts plus the policy handle.
func runPolicyBatch(t *testing.T, prog *bcode.Program) (map[int]int64, *StealPolicy, *Scheduler) {
	t.Helper()
	sched, _ := newMultiSched(t, 4)
	var pol *StealPolicy
	if prog != nil {
		var err error
		pol, err = sched.SetStealPolicy("test", prog)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		s := sched.NewStrandOn("w", 1, 0, func(s *Strand) {
			for k := 0; k < 8; k++ {
				s.Exec(10 * sim.Microsecond)
				s.Yield()
			}
		})
		sched.Start(s)
	}
	sched.Run()
	steals := map[int]int64{}
	for _, st := range sched.CPUStats() {
		steals[st.ID] = st.Steals
	}
	return steals, pol, sched
}

func TestStealPolicyVetoHonored(t *testing.T) {
	// All work starts on CPU 0; a policy vetoing victim 0 therefore kills
	// every productive steal (nothing ever accumulates elsewhere to
	// re-steal), while the other CPUs still evaluate candidates.
	steals, pol, sched := runPolicyBatch(t, vetoVictim(0))
	total := int64(0)
	for _, n := range steals {
		total += n
	}
	if total != 0 {
		t.Errorf("steals = %d, want 0 (victim 0 is the only source of work)", total)
	}
	evals, vetoes := pol.Stats()
	if evals == 0 {
		t.Fatal("policy never consulted")
	}
	if vetoes == 0 || vetoes > evals {
		t.Errorf("vetoes = %d of %d evals", vetoes, evals)
	}
	if sched.StealPolicyInstalled() != pol {
		t.Error("installed policy not returned")
	}

	// With the policy cleared, the same workload steals again.
	sched.ClearStealPolicy()
	if sched.StealPolicyInstalled() != nil {
		t.Error("policy survives ClearStealPolicy")
	}
	steals2, _, _ := runPolicyBatch(t, nil)
	total2 := int64(0)
	for _, n := range steals2 {
		total2 += n
	}
	if total2 == 0 {
		t.Error("no steals without a policy — workload no longer exercises stealing")
	}
}

func TestStealPolicyAllowAllMatchesBaseline(t *testing.T) {
	// A verdict-0 policy must not change scheduling decisions, only charge
	// guard evaluations. Determinism means identical steal counts.
	allow := bcode.New(bcode.MovImm(0, 0), bcode.Exit())
	with, pol, _ := runPolicyBatch(t, allow)
	without, _, _ := runPolicyBatch(t, nil)
	for id, n := range without {
		if with[id] != n {
			t.Errorf("cpu %d: steals with allow-all policy = %d, baseline %d", id, with[id], n)
		}
	}
	evals, vetoes := pol.Stats()
	if evals == 0 || vetoes != 0 {
		t.Errorf("allow-all stats = (%d evals, %d vetoes)", evals, vetoes)
	}
}

func TestStealPolicyRejectsUnverifiable(t *testing.T) {
	sched, _ := newMultiSched(t, 2)
	// Reading a context word beyond the steal ABI must fail installation.
	bad := bcode.New(bcode.LdCtx(0, StealCtxWords), bcode.Exit())
	if _, err := sched.SetStealPolicy("bad", bad); !errors.Is(err, bcode.ErrVerifyCtxOOB) {
		t.Fatalf("err = %v, want ErrVerifyCtxOOB", err)
	}
	if sched.StealPolicyInstalled() != nil {
		t.Error("rejected policy installed anyway")
	}
}
