package strand

import "spin/internal/sim"

// This file implements the two C-Threads configurations measured in Table 3
// and the DEC OSF/1 kernel-thread interface extension.
//
// The user-level benchmark columns include user/kernel boundary crossings:
// as a thread transfers from user mode to kernel mode it is checkpointed and
// a kernel thread executes on its behalf; leaving the kernel resumes the
// blocked application thread. userCrossing charges one such crossing: the
// trap plus the checkpoint/resume of the user context.

// userStateCost is the cost of saving or restoring a user-level thread's
// processor state (integer + FP register file, PSW) around a crossing.
const userStateCost = 10 * sim.Microsecond

func userCrossing(clock *sim.Clock, prof *sim.Profile) {
	clock.Advance(prof.NullSyscall() / 2) // one direction of the trap path
	clock.Advance(userStateCost)
}

// CThreadsIntegrated is the "integrated" implementation: a kernel extension
// that exports the C-Threads interface using system calls and implements it
// directly on the strand interface, integrated with the scheduling behavior
// of the rest of the kernel.
type CThreadsIntegrated struct {
	pkg   *ThreadPkg
	clock *sim.Clock
	prof  *sim.Profile
}

// NewCThreadsIntegrated builds the integrated C-Threads extension.
func NewCThreadsIntegrated(sched *Scheduler) *CThreadsIntegrated {
	return &CThreadsIntegrated{pkg: NewThreadPkg(sched), clock: sched.clock, prof: sched.profile}
}

// CThread is a C-Threads handle.
type CThread struct{ t *Thread }

// Fork creates a cthread running body at user level (body's kernel-visible
// work is what the caller passes in).
func (c *CThreadsIntegrated) Fork(name string, body func()) *CThread {
	userCrossing(c.clock, c.prof) // app -> kernel
	t := c.pkg.Fork(name, func() {
		userCrossing(c.clock, c.prof) // kernel -> app: run body at user level
		body()
		userCrossing(c.clock, c.prof) // app -> kernel: thread exit
	})
	userCrossing(c.clock, c.prof) // kernel -> app
	return &CThread{t: t}
}

// Join waits for ct to finish.
func (c *CThreadsIntegrated) Join(ct *CThread) {
	userCrossing(c.clock, c.prof)
	c.pkg.Join(ct.t)
	userCrossing(c.clock, c.prof)
}

// CondPair is a counting synchronization object (mutex + condition +
// count, i.e. semaphore semantics) used for ping-pong style signalling;
// counting means a Signal delivered before the matching Wait is not lost.
type CondPair struct {
	sem *Semaphore
}

// NewCondPair allocates the pair.
func (c *CThreadsIntegrated) NewCondPair() *CondPair {
	return &CondPair{sem: c.pkg.NewSemaphore(0)}
}

// SignalAndWait signals the peer and blocks until signalled — one half of a
// ping-pong round. The extension performs the wakeup and the sleep in a
// single kernel visit (handoff style), so it costs one boundary round trip.
func (c *CThreadsIntegrated) SignalAndWait(mine, peer *CondPair) {
	userCrossing(c.clock, c.prof)
	peer.sem.V()
	mine.sem.P()
	userCrossing(c.clock, c.prof)
}

// Signal wakes a waiter on p without blocking.
func (c *CThreadsIntegrated) Signal(p *CondPair) {
	userCrossing(c.clock, c.prof)
	p.sem.V()
	userCrossing(c.clock, c.prof)
}

// Wait blocks on p.
func (c *CThreadsIntegrated) Wait(p *CondPair) {
	userCrossing(c.clock, c.prof)
	p.sem.P()
	userCrossing(c.clock, c.prof)
}

// MachThreads is a kernel extension exporting Mach's kernel thread
// interface (thread_create / thread_sleep / thread_wakeup), used both by
// the layered C-Threads library below and by the UNIX server. Operations
// pay a handle-table lookup on top of the native strand operations.
type MachThreads struct {
	pkg    *ThreadPkg
	clock  *sim.Clock
	prof   *sim.Profile
	lookup sim.Duration
}

// NewMachThreads builds the Mach kernel-thread interface extension.
func NewMachThreads(sched *Scheduler) *MachThreads {
	return &MachThreads{
		pkg:    NewThreadPkg(sched),
		clock:  sched.clock,
		prof:   sched.profile,
		lookup: 3 * sim.Microsecond,
	}
}

// ThreadCreate makes a kernel thread.
func (m *MachThreads) ThreadCreate(name string, body func()) *Thread {
	m.clock.Advance(m.lookup)
	return m.pkg.Fork(name, body)
}

// ThreadJoin waits for t.
func (m *MachThreads) ThreadJoin(t *Thread) {
	m.clock.Advance(m.lookup)
	m.pkg.Join(t)
}

// ThreadSleep blocks the current thread on event (an opaque address).
func (m *MachThreads) ThreadSleep(event *CondPair) {
	m.clock.Advance(m.lookup)
	event.sem.P()
}

// ThreadWakeup wakes one thread sleeping on event.
func (m *MachThreads) ThreadWakeup(event *CondPair) {
	m.clock.Advance(m.lookup)
	event.sem.V()
}

// NewEvent allocates a sleep/wakeup event object.
func (m *MachThreads) NewEvent() *CondPair {
	return &CondPair{sem: m.pkg.NewSemaphore(0)}
}

// CThreadsLayered is the "layered" implementation: a user-level C-Threads
// library layered on the MachThreads kernel extension. Every blocking
// operation crosses the boundary to the kernel-thread layer and pays the
// library's own bookkeeping on top — the double management the paper's
// measurements expose.
type CThreadsLayered struct {
	kern  *MachThreads
	clock *sim.Clock
	prof  *sim.Profile
}

// NewCThreadsLayered builds the layered library over sched. Its per-op
// bookkeeping (UserSyncOp) and per-create stack setup (UserThreadSetup)
// come from the system profile: these library costs differ sharply between
// the measured systems.
func NewCThreadsLayered(sched *Scheduler) *CThreadsLayered {
	return &CThreadsLayered{
		kern:  NewMachThreads(sched),
		clock: sched.clock,
		prof:  sched.profile,
	}
}

// Fork creates a cthread multiplexed on a fresh kernel thread: the library
// allocates and initializes a user stack and descriptor, then creates the
// backing kernel thread.
func (c *CThreadsLayered) Fork(name string, body func()) *CThread {
	c.clock.Advance(c.prof.UserThreadSetup)
	userCrossing(c.clock, c.prof)
	t := c.kern.ThreadCreate(name, func() {
		userCrossing(c.clock, c.prof)
		c.clock.Advance(c.prof.UserSyncOp) // library entry on new thread
		body()
		c.clock.Advance(c.prof.UserSyncOp)
		userCrossing(c.clock, c.prof)
	})
	userCrossing(c.clock, c.prof)
	return &CThread{t: t}
}

// Join waits for ct.
func (c *CThreadsLayered) Join(ct *CThread) {
	c.clock.Advance(c.prof.UserSyncOp)
	userCrossing(c.clock, c.prof)
	c.kern.ThreadJoin(ct.t)
	userCrossing(c.clock, c.prof)
}

// NewCondPair allocates a pair in the kernel layer.
func (c *CThreadsLayered) NewCondPair() *CondPair { return c.kern.NewEvent() }

// SignalAndWait signals the peer and blocks — the library combines the
// wakeup and the sleep into a single kernel visit.
func (c *CThreadsLayered) SignalAndWait(mine, peer *CondPair) {
	c.clock.Advance(c.prof.UserSyncOp)
	userCrossing(c.clock, c.prof)
	c.kern.ThreadWakeup(peer)
	c.kern.ThreadSleep(mine)
	userCrossing(c.clock, c.prof)
}

// Signal wakes a waiter on p.
func (c *CThreadsLayered) Signal(p *CondPair) {
	c.clock.Advance(c.prof.UserSyncOp)
	userCrossing(c.clock, c.prof)
	c.kern.ThreadWakeup(p)
	userCrossing(c.clock, c.prof)
}

// Wait blocks on p.
func (c *CThreadsLayered) Wait(p *CondPair) {
	c.clock.Advance(c.prof.UserSyncOp)
	userCrossing(c.clock, c.prof)
	c.kern.ThreadSleep(p)
	userCrossing(c.clock, c.prof)
}

// OSFThreads is the extension exporting the DEC OSF/1 kernel-thread
// interface, which "allows us to incorporate the vendor's device drivers
// directly into the kernel". It is a thin veneer over the trusted package.
type OSFThreads struct {
	pkg *ThreadPkg
}

// NewOSFThreads builds the OSF/1 thread-interface extension.
func NewOSFThreads(sched *Scheduler) *OSFThreads {
	return &OSFThreads{pkg: NewThreadPkg(sched)}
}

// KernelThread starts a driver thread.
func (o *OSFThreads) KernelThread(name string, body func()) *Thread {
	return o.pkg.Fork(name, body)
}

// AssertWait declares intent to sleep on event (OSF/1 idiom; the counting
// object makes it a no-op — a wakeup between assert and block is kept).
func (o *OSFThreads) AssertWait(event *CondPair) {}

// ThreadBlock blocks on the asserted event.
func (o *OSFThreads) ThreadBlock(event *CondPair) {
	event.sem.P()
}

// ThreadWakeup wakes sleepers on event.
func (o *OSFThreads) ThreadWakeup(event *CondPair) {
	event.sem.V()
}

// NewEvent allocates an event object.
func (o *OSFThreads) NewEvent() *CondPair {
	return &CondPair{sem: o.pkg.NewSemaphore(0)}
}

// Pkg exposes the underlying trusted package.
func (o *OSFThreads) Pkg() *ThreadPkg { return o.pkg }
