// Package strand implements SPIN's extensible thread management (paper
// §4.2, Figure 4). A *strand* reflects processor context but, unlike a
// thread, carries no requisite kernel state beyond a name. Schedulers
// multiplex the processor among strands; thread packages define execution
// models on top of strands. The two communicate through four events —
// Strand.Block, Strand.Unblock, Strand.Checkpoint, Strand.Resume — so that
// application-specific schedulers and thread packages can be installed as
// kernel extensions.
//
// The global scheduler implements the paper's round-robin, preemptive,
// priority policy. Strand bodies run on real goroutines, but exactly one
// runs at a time, handed a token by the scheduler loop — execution is
// deterministic and all time is virtual.
package strand

import (
	"fmt"
	"sync/atomic"

	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/faultinject"
	"spin/internal/sim"
	"spin/internal/trace"
)

// Event names for scheduler/thread-package communication.
const (
	EvBlock      = "Strand.Block"
	EvUnblock    = "Strand.Unblock"
	EvCheckpoint = "Strand.Checkpoint"
	EvResume     = "Strand.Resume"
)

// State is a strand's scheduling state.
type State int

// Strand states.
const (
	Runnable State = iota
	Running
	Blocked
	Dead
)

func (s State) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Strand is one processor context (Strand.T). The *Strand pointer is the
// capability for it: only holders may block/unblock it.
type Strand struct {
	name  string
	prio  int
	state State
	sched *Scheduler

	body func(*Strand)
	// token is signalled to hand the strand the (single) virtual CPU.
	token chan struct{}
	// yield is signalled back to the scheduler loop when the strand
	// gives up the CPU (block, exit, or preemption point).
	started bool
	exited  bool
}

// Name returns the strand's name — per the paper, the only requisite state.
func (s *Strand) Name() string { return s.name }

// State returns the current scheduling state.
func (s *Strand) State() State { return s.state }

// Priority returns the strand's scheduling priority (higher runs first).
func (s *Strand) Priority() int { return s.prio }

// Scheduler is the global scheduler: round-robin within priority,
// preemptive, priority-ordered. It runs strands on the machine's virtual
// CPU, charging context-switch costs from the profile.
type Scheduler struct {
	engine  *sim.Engine
	clock   *sim.Clock
	profile *sim.Profile
	disp    *dispatch.Dispatcher

	// runq maps priority -> FIFO of runnable strands.
	runq    map[int][]*Strand
	current *Strand
	// last is the most recently run strand, for checkpoint delivery and
	// switch accounting.
	last *Strand
	// yieldCh carries control back from the running strand.
	yieldCh chan struct{}
	// switches counts context switches, for tests.
	switches int64
	// strandFaults counts strand-body panics contained by the entry guard:
	// a faulting strand dies alone, the scheduler loop keeps running.
	strandFaults atomic.Int64
}

// NewScheduler creates the global scheduler and defines the four strand
// events. The default implementations (primaries) are the trusted
// scheduler's own: Block marks the strand blocked, Unblock requeues it.
// Installation of additional handlers is allowed (that is how
// application-specific schedulers integrate); the trusted package's
// authorizer admits any installer but the guards it hands out are built by
// the installers themselves over strand capabilities they hold.
func NewScheduler(engine *sim.Engine, profile *sim.Profile, disp *dispatch.Dispatcher) (*Scheduler, error) {
	sched := &Scheduler{
		engine:  engine,
		clock:   engine.Clock,
		profile: profile,
		disp:    disp,
		runq:    make(map[int][]*Strand),
		yieldCh: make(chan struct{}),
	}
	type def struct {
		name    string
		primary dispatch.Handler
	}
	// The primaries act only on native strands; Block/Unblock raised on
	// strands owned by application-specific schedulers are routed by the
	// dispatcher to those schedulers' guarded handlers instead.
	defs := []def{
		{EvBlock, func(arg, _ any) any {
			if s, ok := arg.(*Strand); ok {
				sched.doBlock(s)
			}
			return nil
		}},
		{EvUnblock, func(arg, _ any) any {
			if s, ok := arg.(*Strand); ok {
				sched.doUnblock(s)
			}
			return nil
		}},
		{EvCheckpoint, func(arg, _ any) any { return nil }},
		{EvResume, func(arg, _ any) any { return nil }},
	}
	for _, d := range defs {
		if err := disp.Define(d.name, dispatch.DefineOptions{Primary: d.primary}); err != nil {
			return nil, err
		}
	}
	return sched, nil
}

// NewStrand creates a strand that will execute body when scheduled. It is
// born Blocked; Unblock makes it runnable.
func (sched *Scheduler) NewStrand(name string, prio int, body func(*Strand)) *Strand {
	sched.clock.Advance(sched.profile.ThreadCreate)
	return &Strand{
		name:  name,
		prio:  prio,
		state: Blocked,
		sched: sched,
		body:  body,
		token: make(chan struct{}),
	}
}

// Block signals the scheduler that s is not runnable (paper: a disk driver
// blocks the current strand during an I/O operation). It raises the
// Strand.Block event; the default implementation dequeues the strand.
func (sched *Scheduler) Block(s *Strand) {
	sched.clock.Advance(sched.profile.SchedOp)
	sched.disp.Raise(EvBlock, s)
}

// Unblock signals that s is runnable (e.g. an interrupt handler completing
// an I/O).
func (sched *Scheduler) Unblock(s *Strand) {
	sched.clock.Advance(sched.profile.SchedOp)
	sched.disp.Raise(EvUnblock, s)
}

func (sched *Scheduler) doBlock(s *Strand) {
	switch s.state {
	case Running:
		s.state = Blocked
	case Runnable:
		s.state = Blocked
		sched.dequeue(s)
	}
}

func (sched *Scheduler) doUnblock(s *Strand) {
	if s.state == Blocked {
		s.state = Runnable
		sched.runq[s.prio] = append(sched.runq[s.prio], s)
	}
}

func (sched *Scheduler) dequeue(s *Strand) {
	q := sched.runq[s.prio]
	for i, x := range q {
		if x == s {
			sched.runq[s.prio] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// pick returns the next strand: highest priority, FIFO within a level.
func (sched *Scheduler) pick() *Strand {
	best := -1 << 31
	found := false
	for prio, q := range sched.runq {
		if len(q) > 0 && (!found || prio > best) {
			best = prio
			found = true
		}
	}
	if !found {
		return nil
	}
	q := sched.runq[best]
	s := q[0]
	sched.runq[best] = q[1:]
	return s
}

// Run drives the virtual CPU until no strand is runnable and no timer is
// pending: the scheduler loop of the machine. Each dispatch charges a
// context switch, raises Checkpoint on the outgoing strand and Resume on
// the incoming one, and hands the incoming strand the CPU token. Engine
// events that have come due (timers, interrupts) are delivered between
// strand dispatches; when nothing is runnable the scheduler idles forward
// to the next event.
func (sched *Scheduler) Run() {
	for {
		// Deliver due engine events (e.g. Sleep timers) before picking.
		for {
			at, ok := sched.engine.NextEventTime()
			if !ok || at > sched.clock.Now() {
				break
			}
			sched.engine.Step()
		}
		next := sched.pick()
		if next == nil {
			// Idle: advance to the next timer if one exists.
			if sched.engine.Step() {
				continue
			}
			return
		}
		if sched.last != next {
			sched.clock.Advance(sched.profile.ContextSwitch)
			sched.switches++
			if sched.last != nil && !sched.last.exited {
				sched.disp.Raise(EvCheckpoint, sched.last)
			}
			sched.disp.Raise(EvResume, next)
		}
		sched.last = next
		sched.current = next
		next.state = Running
		if !next.started {
			next.started = true
			go func(s *Strand) {
				<-s.token
				// Entry guard: a panic in the strand body — organic or
				// from the "sched.strand" site — kills this strand only.
				// exit() still runs, so the CPU token returns to the
				// scheduler loop and other strands keep running.
				defer func() {
					if r := recover(); r != nil {
						sched.strandFaults.Add(1)
						if tr := sched.disp.Tracer(); tr != nil {
							tr.Trace(trace.Record{
								Event: "sched.strand.panic", Origin: "sched",
								Start: sched.clock.Now(), Outcome: trace.OutcomeFaulted,
							})
						}
					}
					s.exit()
				}()
				f := sched.disp.InjectorInstalled().Fire("sched.strand")
				if f.Kind == faultinject.KindError || f.Kind == faultinject.KindDrop {
					return // injected: strand dies before its body runs
				}
				s.body(s)
			}(next)
		}
		// Hand over the CPU and wait for it back, timing the slice (the
		// virtual time the strand held the CPU) when tracing is enabled.
		tr := sched.disp.Tracer()
		var sliceStart sim.Time
		if tr != nil {
			sliceStart = sched.clock.Now()
		}
		next.token <- struct{}{}
		<-sched.yieldCh
		if tr != nil {
			tr.Observe("sched.slice", sched.clock.Now().Sub(sliceStart))
		}
		sched.current = nil
	}
}

// yieldToScheduler gives the CPU back to the scheduler loop and waits to be
// rescheduled (unless dying).
func (s *Strand) yieldToScheduler(dying bool) {
	s.sched.yieldCh <- struct{}{}
	if dying {
		return
	}
	<-s.token
}

// exit terminates the strand.
func (s *Strand) exit() {
	s.exited = true
	s.state = Dead
	s.yieldToScheduler(true)
}

// BlockSelf blocks the calling strand and yields; the strand resumes after
// someone Unblocks it. Must be called from the strand's own body.
func (s *Strand) BlockSelf() {
	s.sched.clock.Advance(s.sched.profile.SchedOp)
	s.sched.disp.Raise(EvCheckpoint, s)
	s.sched.disp.Raise(EvBlock, s)
	s.yieldToScheduler(false)
}

// Yield is a preemption point: the caller goes to the back of its run queue
// and the scheduler re-picks — delivering any due timer or interrupt events
// on the way. If nothing else is runnable the caller continues immediately
// (re-picking the same strand does not charge a context switch). The kernel
// is preemptive — strand code is expected to pass preemption points
// regularly, so a handler cannot take over the processor.
func (s *Strand) Yield() {
	sched := s.sched
	s.state = Runnable
	sched.runq[s.prio] = append(sched.runq[s.prio], s)
	s.yieldToScheduler(false)
}

// Start makes a fresh strand runnable. (Convenience for Unblock on a
// newly created strand.)
func (sched *Scheduler) Start(s *Strand) { sched.Unblock(s) }

// Switches reports context switches performed.
func (sched *Scheduler) Switches() int64 { return sched.switches }

// StrandFaults reports strand-body panics contained by the entry guard.
func (sched *Scheduler) StrandFaults() int64 { return sched.strandFaults.Load() }

// Current returns the strand holding the CPU, if any.
func (sched *Scheduler) Current() *Strand { return sched.current }

// GuardStrandOwner builds a dispatch guard admitting only events for
// strands in the given set — the trusted package's mechanism for ensuring
// "extensions do not install handlers on strands for which they do not
// possess a capability".
func GuardStrandOwner(owned ...*Strand) dispatch.Guard {
	set := make(map[*Strand]bool, len(owned))
	for _, s := range owned {
		set[s] = true
	}
	return func(arg any) bool {
		s, ok := arg.(*Strand)
		return ok && set[s]
	}
}

// Identity for the trusted in-kernel thread package.
var trustedPkg = domain.Identity{Name: "kernel-threads", Trusted: true}
