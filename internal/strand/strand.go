// Package strand implements SPIN's extensible thread management (paper
// §4.2, Figure 4). A *strand* reflects processor context but, unlike a
// thread, carries no requisite kernel state beyond a name. Schedulers
// multiplex the processor among strands; thread packages define execution
// models on top of strands. The two communicate through four events —
// Strand.Block, Strand.Unblock, Strand.Checkpoint, Strand.Resume — so that
// application-specific schedulers and thread packages can be installed as
// kernel extensions.
//
// The global scheduler implements the paper's round-robin, preemptive,
// priority policy across one or more virtual CPUs (one per sim.Engine).
// Strand bodies run on real goroutines, but exactly one runs at a time,
// handed a token by the scheduler loop — execution is deterministic and
// all time is virtual. With several CPUs the driver steps the eligible CPU
// with the earliest clock, so per-CPU virtual time overlaps while the
// interleaving stays reproducible.
package strand

import (
	"fmt"
	"sync/atomic"

	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/faultinject"
	"spin/internal/sim"
	"spin/internal/trace"
)

// Event names for scheduler/thread-package communication.
const (
	EvBlock      = "Strand.Block"
	EvUnblock    = "Strand.Unblock"
	EvCheckpoint = "Strand.Checkpoint"
	EvResume     = "Strand.Resume"
)

// State is a strand's scheduling state.
type State int

// Strand states.
const (
	Runnable State = iota
	Running
	Blocked
	Dead
)

func (s State) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Strand is one processor context (Strand.T). The *Strand pointer is the
// capability for it: only holders may block/unblock it.
type Strand struct {
	name  string
	prio  int
	state State
	sched *Scheduler
	// cpu is the strand's home CPU: where Unblock and Yield queue it. It
	// changes when a thief steals the strand or SetAffinity re-homes it.
	cpu *CPU
	// readyAt is the acting CPU's virtual time when the strand last became
	// runnable; the dispatching CPU advances at least this far before
	// running it, so cross-CPU wakeups cannot run in the waker's past.
	readyAt sim.Time

	body func(*Strand)
	// token is signalled to hand the strand a virtual CPU.
	token chan struct{}
	// yield is signalled back to the scheduler loop when the strand
	// gives up the CPU (block, exit, or preemption point).
	started bool
	exited  bool
}

// Name returns the strand's name — per the paper, the only requisite state.
func (s *Strand) Name() string { return s.name }

// State returns the current scheduling state.
func (s *Strand) State() State { return s.state }

// Priority returns the strand's scheduling priority (higher runs first).
func (s *Strand) Priority() int { return s.prio }

// CPU returns the id of the strand's current home CPU.
func (s *Strand) CPU() int { return s.cpu.id }

// Scheduler is the global scheduler: round-robin within priority,
// preemptive, priority-ordered, across one or more virtual CPUs. It
// charges context-switch costs from the profile on the CPU doing the work.
type Scheduler struct {
	profile *sim.Profile
	disp    *dispatch.Dispatcher
	cpus    []*CPU

	// engine/clock are CPU 0's — the boot CPU. Charges made outside the
	// scheduler loop (strand creation from init code, for example) land
	// here, which is also the only CPU when the machine has one.
	engine *sim.Engine
	clock  *sim.Clock

	// active is the CPU the driver is currently stepping; strand bodies
	// observe it through the token-channel handoff, never concurrently.
	active *CPU
	// yieldCh carries control back from the running strand.
	yieldCh chan struct{}
	// rr spreads default strand placement round-robin over the CPUs.
	rr int
	// observer, if set, sees every switch/steal/migrate in order.
	observer func(SchedEvent)
	// stealPolicy, if set, is the verified bytecode program consulted per
	// steal candidate (see bcode_policy.go).
	stealPolicy atomic.Pointer[StealPolicy]
	// strandFaults counts strand-body panics contained by the entry guard:
	// a faulting strand dies alone, the scheduler loop keeps running.
	strandFaults atomic.Int64
}

// defaultStealSeed seeds the per-CPU victim-selection PRNGs; override with
// SetStealSeed for seeded experiments.
const defaultStealSeed = 0x5350494e31313935 // "SPIN1995"

// NewMultiScheduler creates a scheduler multiplexing one virtual CPU per
// engine and defines the four strand events. The default implementations
// (primaries) are the trusted scheduler's own: Block marks the strand
// blocked, Unblock requeues it on its home CPU. Installation of additional
// handlers is allowed (that is how application-specific schedulers
// integrate); the trusted package's authorizer admits any installer but
// the guards it hands out are built by the installers themselves over
// strand capabilities they hold.
func NewMultiScheduler(profile *sim.Profile, disp *dispatch.Dispatcher, engines ...*sim.Engine) (*Scheduler, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("strand: scheduler needs at least one engine")
	}
	sched := &Scheduler{
		profile: profile,
		disp:    disp,
		engine:  engines[0],
		clock:   engines[0].Clock,
		yieldCh: make(chan struct{}),
	}
	for i, eng := range engines {
		sched.cpus = append(sched.cpus, newCPU(i, sched, eng, defaultStealSeed))
	}
	type def struct {
		name    string
		primary dispatch.Handler
	}
	// The primaries act only on native strands; Block/Unblock raised on
	// strands owned by application-specific schedulers are routed by the
	// dispatcher to those schedulers' guarded handlers instead.
	defs := []def{
		{EvBlock, func(arg, _ any) any {
			if s, ok := arg.(*Strand); ok {
				sched.doBlock(s)
			}
			return nil
		}},
		{EvUnblock, func(arg, _ any) any {
			if s, ok := arg.(*Strand); ok {
				sched.doUnblock(s)
			}
			return nil
		}},
		{EvCheckpoint, func(arg, _ any) any { return nil }},
		{EvResume, func(arg, _ any) any { return nil }},
	}
	for _, d := range defs {
		if err := disp.Define(d.name, dispatch.DefineOptions{Primary: d.primary}); err != nil {
			return nil, err
		}
	}
	return sched, nil
}

// NewScheduler creates a single-CPU scheduler on engine — the historical
// constructor; multi-CPU machines use NewMultiScheduler or
// NewClusterScheduler.
func NewScheduler(engine *sim.Engine, profile *sim.Profile, disp *dispatch.Dispatcher) (*Scheduler, error) {
	return NewMultiScheduler(profile, disp, engine)
}

// NewClusterScheduler creates a scheduler with one CPU per engine in the
// cluster.
func NewClusterScheduler(cl *sim.Cluster, profile *sim.Profile, disp *dispatch.Dispatcher) (*Scheduler, error) {
	return NewMultiScheduler(profile, disp, cl.Engines()...)
}

// SetStealSeed reseeds the per-CPU victim-selection PRNGs. Same seed, same
// workload → identical steal sequence; call before Run.
func (sched *Scheduler) SetStealSeed(seed uint64) {
	for _, c := range sched.cpus {
		c.reseed(seed)
	}
}

// SetObserver registers a callback invoked from the scheduler driver for
// every switch, steal, and migration, in execution order. Call before Run;
// pass nil to remove.
func (sched *Scheduler) SetObserver(fn func(SchedEvent)) { sched.observer = fn }

func (sched *Scheduler) observe(ev SchedEvent) {
	if sched.observer != nil {
		sched.observer(ev)
	}
}

// actingClock is the clock that pays for scheduler operations: the CPU the
// driver is stepping (which covers strand bodies, via the token handoff),
// or the boot CPU outside the scheduler loop.
func (sched *Scheduler) actingClock() *sim.Clock {
	if c := sched.active; c != nil {
		return c.clock
	}
	return sched.clock
}

// NewStrand creates a strand that will execute body when scheduled,
// placing it round-robin across the CPUs. It is born Blocked; Unblock
// makes it runnable.
func (sched *Scheduler) NewStrand(name string, prio int, body func(*Strand)) *Strand {
	id := sched.rr % len(sched.cpus)
	sched.rr++
	return sched.NewStrandOn(name, prio, id, body)
}

// NewStrandOn creates a strand homed on a specific CPU. It panics if the
// CPU does not exist.
func (sched *Scheduler) NewStrandOn(name string, prio, cpu int, body func(*Strand)) *Strand {
	if cpu < 0 || cpu >= len(sched.cpus) {
		panic(fmt.Sprintf("strand: no CPU %d (machine has %d)", cpu, len(sched.cpus)))
	}
	sched.actingClock().Advance(sched.profile.ThreadCreate)
	return &Strand{
		name:  name,
		prio:  prio,
		state: Blocked,
		sched: sched,
		cpu:   sched.cpus[cpu],
		body:  body,
		token: make(chan struct{}),
	}
}

// SetAffinity re-homes s onto the given CPU: future Unblocks and Yields
// queue it there. If s is queued runnable it moves immediately. Counted as
// a migration.
func (sched *Scheduler) SetAffinity(s *Strand, cpu int) {
	if cpu < 0 || cpu >= len(sched.cpus) {
		panic(fmt.Sprintf("strand: no CPU %d (machine has %d)", cpu, len(sched.cpus)))
	}
	dst := sched.cpus[cpu]
	if s.cpu == dst {
		return
	}
	src := s.cpu
	if src.dequeue(s) {
		dst.enqueue(s)
	}
	s.cpu = dst
	dst.migrations.Add(1)
	sched.observe(SchedEvent{Kind: "migrate", Strand: s.name, CPU: dst.id, From: src.id, At: sched.actingClock().Now()})
	if tr := sched.disp.Tracer(); tr != nil {
		tr.Trace(trace.Record{Event: "sched.migrate", Origin: "sched", Start: sched.actingClock().Now(), Outcome: trace.OutcomeOK})
	}
}

// Block signals the scheduler that s is not runnable (paper: a disk driver
// blocks the current strand during an I/O operation). It raises the
// Strand.Block event; the default implementation dequeues the strand.
func (sched *Scheduler) Block(s *Strand) {
	sched.actingClock().Advance(sched.profile.SchedOp)
	sched.disp.Raise(EvBlock, s)
}

// Unblock signals that s is runnable (e.g. an interrupt handler completing
// an I/O).
func (sched *Scheduler) Unblock(s *Strand) {
	sched.actingClock().Advance(sched.profile.SchedOp)
	sched.disp.Raise(EvUnblock, s)
}

func (sched *Scheduler) doBlock(s *Strand) {
	switch s.state {
	case Running:
		s.state = Blocked
	case Runnable:
		s.state = Blocked
		s.cpu.dequeue(s)
	}
}

func (sched *Scheduler) doUnblock(s *Strand) {
	if s.state == Blocked {
		s.state = Runnable
		s.readyAt = sched.actingClock().Now()
		s.cpu.enqueue(s)
	}
}

// eligible reports whether the driver may step c now: it has ready work or
// due events, another CPU has queued work it could steal, or it can safely
// idle forward to its own next event.
func (sched *Scheduler) eligible(c *CPU) bool {
	if c.ready.Load().size > 0 {
		return true
	}
	at, hasEvent := c.engine.NextEventTime()
	if hasEvent && at <= c.clock.Now() {
		return true
	}
	for _, d := range sched.cpus {
		if d != c && d.ready.Load().size > 0 {
			return true
		}
	}
	return hasEvent && sched.safeIdleAdvance(c, at)
}

// safeIdleAdvance reports whether c may jump its clock to `at` (its next
// pending event) without risking causality: no other CPU with queued work
// sits at an earlier clock, and no other CPU holds an earlier pending
// event. The CPU owning the globally earliest event always qualifies, so
// the driver cannot stall.
func (sched *Scheduler) safeIdleAdvance(c *CPU, at sim.Time) bool {
	for _, d := range sched.cpus {
		if d == c {
			continue
		}
		if d.ready.Load().size > 0 && d.clock.Now() < at {
			return false
		}
		if dat, ok := d.engine.NextEventTime(); ok && dat < at {
			return false
		}
	}
	return true
}

// pickCPU selects the eligible CPU with the earliest clock (lowest id on
// ties) — the conservative rule sim.Cluster applies to whole machines.
func (sched *Scheduler) pickCPU() *CPU {
	var best *CPU
	for _, c := range sched.cpus {
		if !sched.eligible(c) {
			continue
		}
		if best == nil || c.clock.Now() < best.clock.Now() {
			best = c
		}
	}
	return best
}

// Run drives the virtual CPUs until no strand is runnable and no timer is
// pending: the scheduler loop of the machine. Each iteration steps the
// eligible CPU with the earliest clock; a step delivers due engine events,
// dispatches one strand slice (stealing from a sibling's queue when the
// local one is empty), or idles the CPU forward to its next event.
func (sched *Scheduler) Run() {
	for {
		c := sched.pickCPU()
		if c == nil {
			return
		}
		sched.active = c
		c.step()
		sched.active = nil
	}
}

// dispatch runs one slice of next on c: charge the context switch, raise
// Checkpoint/Resume, hand over the CPU token, and wait for it back.
func (c *CPU) dispatch(next *Strand) {
	sched := c.sched
	// Respect the wakeup timestamp: a strand made runnable by a CPU whose
	// clock is ahead must not run in that CPU's past.
	if next.readyAt > c.clock.Now() {
		c.clock.AdvanceTo(next.readyAt)
	}
	if c.last != next {
		c.clock.Advance(sched.profile.ContextSwitch)
		c.switches.Add(1)
		sched.observe(SchedEvent{Kind: "switch", Strand: next.name, CPU: c.id, From: c.id, At: c.clock.Now()})
		if c.last != nil && !c.last.exited {
			sched.disp.Raise(EvCheckpoint, c.last)
		}
		sched.disp.Raise(EvResume, next)
	}
	c.last = next
	c.current = next
	next.state = Running
	if !next.started {
		next.started = true
		go func(s *Strand) {
			<-s.token
			// Entry guard: a panic in the strand body — organic or
			// from the "sched.strand" site — kills this strand only.
			// exit() still runs, so the CPU token returns to the
			// scheduler loop and other strands keep running.
			defer func() {
				if r := recover(); r != nil {
					s.sched.strandFaults.Add(1)
					if tr := s.sched.disp.Tracer(); tr != nil {
						tr.Trace(trace.Record{
							Event: "sched.strand.panic", Origin: "sched",
							Start: s.cpu.clock.Now(), Outcome: trace.OutcomeFaulted,
						})
					}
				}
				s.exit()
			}()
			f := s.sched.disp.InjectorInstalled().Fire("sched.strand")
			if f.Kind == faultinject.KindError || f.Kind == faultinject.KindDrop {
				return // injected: strand dies before its body runs
			}
			s.body(s)
		}(next)
	}
	// Hand over the CPU and wait for it back, timing the slice (the
	// virtual time the strand held the CPU) when tracing is enabled.
	tr := sched.disp.Tracer()
	var sliceStart sim.Time
	if tr != nil {
		sliceStart = c.clock.Now()
	}
	next.token <- struct{}{}
	<-sched.yieldCh
	if tr != nil {
		tr.Observe("sched.slice", c.clock.Now().Sub(sliceStart))
	}
	c.current = nil
}

// yieldToScheduler gives the CPU back to the scheduler loop and waits to be
// rescheduled (unless dying).
func (s *Strand) yieldToScheduler(dying bool) {
	s.sched.yieldCh <- struct{}{}
	if dying {
		return
	}
	<-s.token
}

// exit terminates the strand.
func (s *Strand) exit() {
	s.exited = true
	s.state = Dead
	s.yieldToScheduler(true)
}

// BlockSelf blocks the calling strand and yields; the strand resumes after
// someone Unblocks it. Must be called from the strand's own body.
func (s *Strand) BlockSelf() {
	s.cpu.clock.Advance(s.sched.profile.SchedOp)
	s.sched.disp.Raise(EvCheckpoint, s)
	s.sched.disp.Raise(EvBlock, s)
	s.yieldToScheduler(false)
}

// Yield is a preemption point: the caller goes to the back of its run queue
// and the scheduler re-picks — delivering any due timer or interrupt events
// on the way. If nothing else is runnable the caller continues immediately
// (re-picking the same strand does not charge a context switch). The kernel
// is preemptive — strand code is expected to pass preemption points
// regularly, so a handler cannot take over the processor.
func (s *Strand) Yield() {
	s.state = Runnable
	s.readyAt = s.cpu.clock.Now()
	s.cpu.enqueue(s)
	s.yieldToScheduler(false)
}

// Exec consumes d of virtual CPU time on the strand's current CPU — the
// simulated equivalent of a compute burst. Must be called from the
// strand's own body.
func (s *Strand) Exec(d sim.Duration) {
	s.cpu.clock.Advance(d)
}

// Start makes a fresh strand runnable. (Convenience for Unblock on a
// newly created strand.)
func (sched *Scheduler) Start(s *Strand) { sched.Unblock(s) }

// Switches reports context switches performed across all CPUs.
func (sched *Scheduler) Switches() int64 {
	var n int64
	for _, c := range sched.cpus {
		n += c.switches.Load()
	}
	return n
}

// StrandFaults reports strand-body panics contained by the entry guard.
func (sched *Scheduler) StrandFaults() int64 { return sched.strandFaults.Load() }

// Current returns the strand holding a CPU, if any. (At most one strand
// runs at a time; per-CPU virtual time overlaps, host execution does not.)
func (sched *Scheduler) Current() *Strand {
	if c := sched.active; c != nil {
		return c.current
	}
	for _, c := range sched.cpus {
		if c.current != nil {
			return c.current
		}
	}
	return nil
}

// GuardStrandOwner builds a dispatch guard admitting only events for
// strands in the given set — the trusted package's mechanism for ensuring
// "extensions do not install handlers on strands for which they do not
// possess a capability".
func GuardStrandOwner(owned ...*Strand) dispatch.Guard {
	set := make(map[*Strand]bool, len(owned))
	for _, s := range owned {
		set[s] = true
	}
	return func(arg any) bool {
		s, ok := arg.(*Strand)
		return ok && set[s]
	}
}

// Identity for the trusted in-kernel thread package.
var trustedPkg = domain.Identity{Name: "kernel-threads", Trusted: true}
