package strand_test

import (
	"fmt"

	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/sim"
	"spin/internal/strand"
)

// Example runs the classic producer/consumer on the trusted in-kernel
// thread package: Fork/Join with a counting semaphore.
func Example() {
	eng := sim.NewEngine()
	disp := dispatch.New(eng, &sim.SPINProfile)
	sched, _ := strand.NewScheduler(eng, &sim.SPINProfile, disp)
	pkg := strand.NewThreadPkg(sched)

	items := pkg.NewSemaphore(0)
	var queue []int
	producer := pkg.Fork("producer", func() {
		for i := 1; i <= 3; i++ {
			queue = append(queue, i*10)
			items.V()
		}
	})
	consumer := pkg.Fork("consumer", func() {
		for i := 0; i < 3; i++ {
			items.P()
			v := queue[0]
			queue = queue[1:]
			fmt.Println("consumed", v)
		}
	})
	_ = producer
	_ = consumer
	sched.Run()
	// Output:
	// consumed 10
	// consumed 20
	// consumed 30
}

// ExampleSubScheduler installs an application-specific scheduler with a
// custom (LIFO) policy on top of the global scheduler.
func ExampleSubScheduler() {
	eng := sim.NewEngine()
	disp := dispatch.New(eng, &sim.SPINProfile)
	sched, _ := strand.NewScheduler(eng, &sim.SPINProfile, disp)
	sub, _ := strand.NewSubScheduler(sched, domain.Identity{Name: "app"})
	sub.Policy = func(q []*strand.SubStrand) int { return len(q) - 1 } // LIFO
	for _, name := range []string{"first", "second", "third"} {
		name := name
		sub.Start(sub.NewSubStrand(name, func(*strand.SubStrand) {
			fmt.Println("ran", name)
		}))
	}
	sched.Run()
	// Output:
	// ran third
	// ran second
	// ran first
}
