package strand

import (
	"testing"

	"spin/internal/sim"
)

func TestSleepWakesAfterDuration(t *testing.T) {
	sched, eng := newSched(t)
	var wokeAt sim.Time
	s := sched.NewStrand("sleeper", 0, func(self *Strand) {
		self.Sleep(5 * sim.Millisecond)
		wokeAt = eng.Now()
	})
	sched.Start(s)
	sched.Run()
	if wokeAt < sim.Time(5*sim.Millisecond) {
		t.Errorf("woke at %v, want >= 5ms", wokeAt)
	}
	if wokeAt > sim.Time(6*sim.Millisecond) {
		t.Errorf("woke at %v, too late", wokeAt)
	}
}

func TestSleepInterleavesWorkers(t *testing.T) {
	sched, _ := newSched(t)
	var order []string
	mk := func(name string, d sim.Duration) {
		s := sched.NewStrand(name, 0, func(self *Strand) {
			self.Sleep(d)
			order = append(order, name)
		})
		sched.Start(s)
	}
	mk("late", 10*sim.Millisecond)
	mk("early", 2*sim.Millisecond)
	sched.Run()
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Errorf("order = %v", order)
	}
}

// TestIdleMonitorMeasuresUtilization reproduces the paper's measurement
// method: a workload that is busy 30% of the time leaves ~70% to the idle
// thread.
func TestIdleMonitorMeasuresUtilization(t *testing.T) {
	sched, _ := newSched(t)
	im := NewIdleMonitor(sched, 100*sim.Microsecond)
	const rounds = 20
	worker := sched.NewStrand("worker", 5, func(self *Strand) {
		for i := 0; i < rounds; i++ {
			sched.clock.Advance(3 * sim.Millisecond) // busy
			self.Sleep(7 * sim.Millisecond)          // waiting for I/O
		}
		im.Stop()
	})
	sched.Start(worker)
	sched.Run()
	u := im.Utilization()
	if u < 0.25 || u > 0.40 {
		t.Errorf("idle-thread utilization = %.3f, want ≈0.30", u)
	}
	// Cross-check against the clock's own busy accounting (both methods
	// should agree; scheduler overheads make the clock's figure slightly
	// higher).
	cu := sched.clock.Utilization(0)
	if diff := cu - u; diff < -0.05 || diff > 0.1 {
		t.Errorf("methods disagree: idle-thread=%.3f clock=%.3f", u, cu)
	}
}

func TestIdleMonitorFullyBusyWorkload(t *testing.T) {
	sched, _ := newSched(t)
	im := NewIdleMonitor(sched, 100*sim.Microsecond)
	worker := sched.NewStrand("hog", 5, func(self *Strand) {
		for i := 0; i < 50; i++ {
			sched.clock.Advance(sim.Millisecond)
			self.Yield() // preemption point; idle still never wins
		}
		im.Stop()
	})
	sched.Start(worker)
	sched.Run()
	if u := im.Utilization(); u < 0.95 {
		t.Errorf("utilization under a CPU hog = %.3f, want ≈1", u)
	}
}
