package strand

import (
	"testing"

	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/sim"
)

func newSched(t *testing.T) (*Scheduler, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	disp := dispatch.New(eng, &sim.SPINProfile)
	sched, err := NewScheduler(eng, &sim.SPINProfile, disp)
	if err != nil {
		t.Fatal(err)
	}
	return sched, eng
}

func TestStrandRunsBody(t *testing.T) {
	sched, _ := newSched(t)
	ran := false
	s := sched.NewStrand("worker", 0, func(*Strand) { ran = true })
	sched.Start(s)
	sched.Run()
	if !ran {
		t.Fatal("body never ran")
	}
	if s.State() != Dead {
		t.Errorf("state = %v, want dead", s.State())
	}
}

func TestPriorityOrdering(t *testing.T) {
	sched, _ := newSched(t)
	var order []string
	for _, spec := range []struct {
		name string
		prio int
	}{{"low", 1}, {"high", 9}, {"mid", 5}} {
		spec := spec
		s := sched.NewStrand(spec.name, spec.prio, func(*Strand) {
			order = append(order, spec.name)
		})
		sched.Start(s)
	}
	sched.Run()
	if len(order) != 3 || order[0] != "high" || order[1] != "mid" || order[2] != "low" {
		t.Errorf("order = %v", order)
	}
}

func TestRoundRobinWithinPriority(t *testing.T) {
	sched, _ := newSched(t)
	var order []string
	mk := func(name string) {
		s := sched.NewStrand(name, 0, func(self *Strand) {
			for i := 0; i < 2; i++ {
				order = append(order, name)
				self.Yield()
			}
		})
		sched.Start(s)
	}
	mk("a")
	mk("b")
	sched.Run()
	want := []string{"a", "b", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestBlockUnblock(t *testing.T) {
	sched, _ := newSched(t)
	var log []string
	worker := sched.NewStrand("worker", 0, func(self *Strand) {
		log = append(log, "worker:start")
		self.BlockSelf()
		log = append(log, "worker:resumed")
	})
	waker := sched.NewStrand("waker", 0, func(*Strand) {
		log = append(log, "waker")
		sched.Unblock(worker)
	})
	sched.Start(worker)
	sched.Start(waker)
	sched.Run()
	want := []string{"worker:start", "waker", "worker:resumed"}
	if len(log) != 3 {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v", log)
		}
	}
}

func TestCheckpointResumeEventsRaised(t *testing.T) {
	sched, eng := newSched(t)
	disp := dispatch.New(eng, &sim.SPINProfile)
	_ = disp // separate dispatcher unused; observe via the scheduler's
	var resumes, checkpoints int
	_, err := schedDisp(sched).Install(EvResume, func(arg, _ any) any {
		resumes++
		return nil
	}, dispatch.InstallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = schedDisp(sched).Install(EvCheckpoint, func(arg, _ any) any {
		checkpoints++
		return nil
	}, dispatch.InstallOptions{})
	a := sched.NewStrand("a", 0, func(self *Strand) { self.Yield() })
	b := sched.NewStrand("b", 0, func(self *Strand) { self.Yield() })
	sched.Start(a)
	sched.Start(b)
	sched.Run()
	if resumes < 3 {
		t.Errorf("resumes = %d, want >= 3 (a,b interleaved)", resumes)
	}
	if checkpoints < 2 {
		t.Errorf("checkpoints = %d, want >= 2", checkpoints)
	}
}

func schedDisp(s *Scheduler) *dispatch.Dispatcher { return s.disp }

func TestForkJoin(t *testing.T) {
	sched, _ := newSched(t)
	pkg := NewThreadPkg(sched)
	result := 0
	main := sched.NewStrand("main", 0, func(*Strand) {
		child := pkg.Fork("child", func() { result = 42 })
		pkg.Join(child)
		result *= 2
	})
	sched.Start(main)
	sched.Run()
	if result != 84 {
		t.Errorf("result = %d: join did not order operations", result)
	}
}

func TestJoinFinishedThread(t *testing.T) {
	sched, _ := newSched(t)
	pkg := NewThreadPkg(sched)
	ok := false
	main := sched.NewStrand("main", 0, func(self *Strand) {
		child := pkg.Fork("child", func() {})
		self.Yield() // let child finish first
		pkg.Join(child)
		ok = true
	})
	sched.Start(main)
	sched.Run()
	if !ok {
		t.Error("join on finished thread hung")
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	sched, _ := newSched(t)
	pkg := NewThreadPkg(sched)
	mu := pkg.NewMutex()
	inside := 0
	maxInside := 0
	var threads []*Thread
	main := sched.NewStrand("main", 0, func(self *Strand) {
		for i := 0; i < 4; i++ {
			threads = append(threads, pkg.Fork("t", func() {
				mu.Lock()
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				// Yield while holding the lock: others must wait.
				sched.Current().Yield()
				inside--
				mu.Unlock()
			}))
		}
		for _, th := range threads {
			pkg.Join(th)
		}
	})
	sched.Start(main)
	sched.Run()
	if maxInside != 1 {
		t.Errorf("max threads in critical section = %d", maxInside)
	}
}

func TestConditionSignalWakesOne(t *testing.T) {
	sched, _ := newSched(t)
	pkg := NewThreadPkg(sched)
	mu := pkg.NewMutex()
	cond := pkg.NewCondition()
	woken := 0
	main := sched.NewStrand("main", 0, func(self *Strand) {
		var ws []*Thread
		for i := 0; i < 3; i++ {
			ws = append(ws, pkg.Fork("w", func() {
				mu.Lock()
				cond.Wait(mu)
				woken++
				mu.Unlock()
			}))
		}
		self.Yield() // let them all block
		cond.Signal()
		self.Yield()
		if woken != 1 {
			t.Errorf("after Signal woken = %d", woken)
		}
		cond.Broadcast()
		for _, w := range ws {
			pkg.Join(w)
		}
	})
	sched.Start(main)
	sched.Run()
	if woken != 3 {
		t.Errorf("woken = %d, want 3", woken)
	}
}

func TestPingPongVirtualCost(t *testing.T) {
	// Table 3 shape: a kernel-thread ping-pong round should cost on the
	// order of the paper's 17µs for SPIN — well under OSF/1 user level's
	// hundreds.
	sched, eng := newSched(t)
	pkg := NewThreadPkg(sched)
	const rounds = 64
	pingSem := pkg.NewSemaphore(0)
	pongSem := pkg.NewSemaphore(0)
	var start, end sim.Time
	main := sched.NewStrand("main", 0, func(self *Strand) {
		ping := pkg.Fork("ping", func() {
			for i := 0; i < rounds; i++ {
				pongSem.V()
				pingSem.P()
			}
		})
		pong := pkg.Fork("pong", func() {
			for i := 0; i < rounds; i++ {
				pongSem.P()
				pingSem.V()
			}
		})
		start = eng.Now()
		pkg.Join(ping)
		pkg.Join(pong)
		end = eng.Now()
	})
	sched.Start(main)
	sched.Run()
	perRound := end.Sub(start) / rounds
	if perRound < 5*sim.Microsecond || perRound > 60*sim.Microsecond {
		t.Errorf("ping-pong round = %v, want O(17µs)", perRound)
	}
}

func TestCThreadsIntegratedVsLayered(t *testing.T) {
	// The layered implementation must be slower than the integrated one
	// (Table 3's comparison), both driven by the same workload.
	run := func(mk func(*Scheduler) interface {
		Fork(string, func()) *CThread
		Join(*CThread)
	}) sim.Duration {
		sched, eng := newSched(t)
		impl := mk(sched)
		var elapsed sim.Duration
		main := sched.NewStrand("main", 0, func(*Strand) {
			start := eng.Now()
			ct := impl.Fork("child", func() {})
			impl.Join(ct)
			elapsed = eng.Now().Sub(start)
		})
		sched.Start(main)
		sched.Run()
		return elapsed
	}
	integrated := run(func(s *Scheduler) interface {
		Fork(string, func()) *CThread
		Join(*CThread)
	} {
		return NewCThreadsIntegrated(s)
	})
	layered := run(func(s *Scheduler) interface {
		Fork(string, func()) *CThread
		Join(*CThread)
	} {
		return NewCThreadsLayered(s)
	})
	if layered <= integrated {
		t.Errorf("layered (%v) should cost more than integrated (%v)", layered, integrated)
	}
}

func TestOSFThreadsSleepWakeup(t *testing.T) {
	sched, _ := newSched(t)
	osf := NewOSFThreads(sched)
	ev := osf.NewEvent()
	var log []string
	driver := osf.KernelThread("driver", func() {
		log = append(log, "sleep")
		osf.AssertWait(ev)
		osf.ThreadBlock(ev)
		log = append(log, "awake")
	})
	_ = driver
	intr := osf.KernelThread("intr", func() {
		log = append(log, "wakeup")
		osf.ThreadWakeup(ev)
	})
	_ = intr
	sched.Run()
	if len(log) != 3 || log[0] != "sleep" || log[1] != "wakeup" || log[2] != "awake" {
		t.Errorf("log = %v", log)
	}
}

func TestSubSchedulerRunsTasks(t *testing.T) {
	sched, _ := newSched(t)
	sub, err := NewSubScheduler(sched, domain.Identity{Name: "app-sched"})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, name := range []string{"t1", "t2", "t3"} {
		name := name
		ss := sub.NewSubStrand(name, func(*SubStrand) {
			order = append(order, name)
		})
		sub.Start(ss)
	}
	sched.Run()
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i, want := range []string{"t1", "t2", "t3"} {
		if order[i] != want {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestSubSchedulerCustomPolicy(t *testing.T) {
	// Replace the policy: LIFO. New scheduling policies integrate without
	// touching the global scheduler.
	sched, _ := newSched(t)
	sub, _ := NewSubScheduler(sched, domain.Identity{Name: "lifo"})
	sub.Policy = func(q []*SubStrand) int { return len(q) - 1 }
	var order []string
	for _, name := range []string{"t1", "t2", "t3"} {
		name := name
		sub.Start(sub.NewSubStrand(name, func(*SubStrand) {
			order = append(order, name)
		}))
	}
	sched.Run()
	if len(order) != 3 || order[0] != "t3" {
		t.Errorf("LIFO order = %v", order)
	}
}

func TestSubSchedulerEventRouting(t *testing.T) {
	// Unblock raised on a substrand must be routed to the subscheduler
	// (guarded handler), not mishandled by the global primary.
	sched, _ := newSched(t)
	sub, _ := NewSubScheduler(sched, domain.Identity{Name: "app"})
	ran := false
	ss := sub.NewSubStrand("late", func(*SubStrand) { ran = true })
	// Raise through the dispatcher, as an interrupt handler would.
	schedDisp(sched).Raise(EvUnblock, ss)
	sched.Run()
	if !ran {
		t.Error("substrand never ran after event-routed unblock")
	}
}

func TestGuardStrandOwner(t *testing.T) {
	sched, _ := newSched(t)
	mine := sched.NewStrand("mine", 0, func(*Strand) {})
	other := sched.NewStrand("other", 0, func(*Strand) {})
	g := GuardStrandOwner(mine)
	if !g(mine) || g(other) {
		t.Error("ownership guard wrong")
	}
	if g("not a strand") {
		t.Error("guard passed non-strand")
	}
}

func TestSchedulerIdleWithNoStrands(t *testing.T) {
	sched, _ := newSched(t)
	sched.Run() // must return immediately
	if sched.Switches() != 0 {
		t.Error("switches on empty run")
	}
}

func TestLotteryPolicyProportionalShare(t *testing.T) {
	// A weight-3 strand should win roughly three times as often as a
	// weight-1 strand. Substrands re-enqueue themselves to keep racing.
	sched, _ := newSched(t)
	sub, err := NewSubScheduler(sched, domain.Identity{Name: "lottery"})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(12345)
	sub.Policy = LotteryPolicy(rng)
	const rounds = 4000
	wins := map[string]int{}
	total := 0
	var heavy, light *SubStrand
	var body func(self *SubStrand)
	body = func(self *SubStrand) {
		if total >= rounds {
			return
		}
		wins[self.Name]++
		total++
		// Re-enter the race: a fresh substrand with the same name and
		// weight (substrands are run-to-completion tasks).
		next := sub.NewSubStrand(self.Name, body)
		next.Weight = self.Weight
		sub.Start(next)
	}
	heavy = sub.NewSubStrand("heavy", body)
	heavy.Weight = 3
	light = sub.NewSubStrand("light", body)
	light.Weight = 1
	sub.Start(heavy)
	sub.Start(light)
	sched.Run()
	if total < rounds {
		t.Fatalf("only %d rounds ran", total)
	}
	ratio := float64(wins["heavy"]) / float64(wins["light"])
	if ratio < 2.4 || ratio > 3.8 {
		t.Errorf("share ratio = %.2f (heavy=%d light=%d), want ≈3", ratio, wins["heavy"], wins["light"])
	}
}

func TestLotteryPolicyDefaultWeight(t *testing.T) {
	rng := sim.NewRand(1)
	policy := LotteryPolicy(rng)
	q := []*SubStrand{{Name: "a"}, {Name: "b"}}
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		counts[policy(q)]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Errorf("zero-weight strands starved: %v", counts)
	}
}

// TestRogueThreadPackageIsolated reproduces §4.3's trust argument: an
// application-specific thread package that ignores the events affecting its
// strands only harms the application using it; other strands proceed.
func TestRogueThreadPackageIsolated(t *testing.T) {
	sched, _ := newSched(t)
	// The rogue sub-scheduler drops Unblock events for its strands (its
	// handler does nothing), so its own tasks never run.
	rogue, err := NewSubScheduler(sched, domain.Identity{Name: "rogue"})
	if err != nil {
		t.Fatal(err)
	}
	rogue.Detach() // remove the correct handlers...
	_, err = schedDisp(sched).Install(EvUnblock, func(arg, _ any) any {
		return nil // ...and ignore the event instead of enqueueing
	}, dispatch.InstallOptions{
		Installer: domain.Identity{Name: "rogue"},
		Guard: func(arg any) bool {
			_, ok := arg.(*SubStrand)
			return ok
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rogueRan := false
	ss := rogue.NewSubStrand("victim", func(*SubStrand) { rogueRan = true })
	rogue.Start(ss)

	// A healthy kernel thread on the global scheduler is unaffected.
	healthyRan := false
	pkg := NewThreadPkg(sched)
	pkg.Fork("healthy", func() { healthyRan = true })
	sched.Run()
	if rogueRan {
		t.Error("rogue package's strand ran despite dropped events")
	}
	if !healthyRan {
		t.Error("healthy thread was harmed by the rogue package")
	}
}

func TestExternalBlockOfRunnableStrand(t *testing.T) {
	// A driver can block a strand that is queued but not running (e.g.
	// cancelling work); it must leave the run queue.
	sched, _ := newSched(t)
	ran := false
	s := sched.NewStrand("victim", 0, func(*Strand) { ran = true })
	sched.Start(s)
	if s.State() != Runnable {
		t.Fatalf("state = %v", s.State())
	}
	sched.Block(s)
	if s.State() != Blocked {
		t.Fatalf("state after Block = %v", s.State())
	}
	sched.Run()
	if ran {
		t.Error("blocked strand ran")
	}
	// Unblocking later lets it run.
	sched.Unblock(s)
	sched.Run()
	if !ran {
		t.Error("unblocked strand never ran")
	}
}

func TestStrandAccessors(t *testing.T) {
	sched, _ := newSched(t)
	s := sched.NewStrand("named", 7, func(*Strand) {})
	if s.Name() != "named" || s.Priority() != 7 {
		t.Errorf("accessors: %q %d", s.Name(), s.Priority())
	}
	for st, want := range map[State]string{
		Runnable: "runnable", Running: "running", Blocked: "blocked", Dead: "dead",
	} {
		if st.String() != want {
			t.Errorf("State(%d) = %q", int(st), st.String())
		}
	}
}

func TestCThreadsSyncOpsBothImpls(t *testing.T) {
	for _, mk := range []func(*Scheduler) cthreadsAPI{
		func(s *Scheduler) cthreadsAPI { return NewCThreadsIntegrated(s) },
		func(s *Scheduler) cthreadsAPI { return NewCThreadsLayered(s) },
	} {
		sched, _ := newSched(t)
		impl := mk(sched)
		var order []string
		main := sched.NewStrand("main", 0, func(*Strand) {
			pair := impl.NewCondPair()
			waiter := impl.Fork("waiter", func() {
				impl.Wait(pair)
				order = append(order, "woke")
			})
			worker := impl.Fork("worker", func() {
				order = append(order, "signal")
				impl.Signal(pair)
			})
			impl.Join(waiter)
			impl.Join(worker)

			// SignalAndWait against a pre-signalled pair returns.
			mine, peer := impl.NewCondPair(), impl.NewCondPair()
			helper := impl.Fork("helper", func() {
				impl.Wait(peer) // consume our signal
				impl.Signal(mine)
			})
			impl.SignalAndWait(mine, peer)
			impl.Join(helper)
			order = append(order, "done")
		})
		sched.Start(main)
		sched.Run()
		if len(order) != 3 || order[2] != "done" {
			t.Errorf("order = %v", order)
		}
	}
}

type cthreadsAPI interface {
	Fork(string, func()) *CThread
	Join(*CThread)
	NewCondPair() *CondPair
	Wait(*CondPair)
	Signal(*CondPair)
	SignalAndWait(mine, peer *CondPair)
}

func TestOSFThreadsPkgAccessor(t *testing.T) {
	sched, _ := newSched(t)
	osf := NewOSFThreads(sched)
	if osf.Pkg() == nil {
		t.Fatal("Pkg nil")
	}
	ev := osf.NewEvent()
	osf.AssertWait(ev) // no-op by design
	done := false
	osf.Pkg().Fork("t", func() {
		osf.ThreadWakeup(ev)
		osf.ThreadBlock(ev) // consume own wakeup: returns immediately
		done = true
	})
	sched.Run()
	if !done {
		t.Error("thread hung")
	}
}
