package strand

import (
	"fmt"
	"sync"
	"sync/atomic"

	"spin/internal/bcode"
)

// Verified steal policies: the scheduler's third extension point (after
// SchedEvent observers and the strand events themselves) accepts the same
// verified bytecode the network path runs. A policy program is consulted
// for every candidate victim during work stealing; a nonzero verdict vetoes
// that victim and the scan moves on. Because the program passed Verify, a
// hostile policy can at worst make stealing conservative — it cannot fault,
// loop, or touch scheduler state.

// Steal-policy context ABI.
const (
	// StealCtxThief is the id of the CPU attempting the steal.
	StealCtxThief = 0
	// StealCtxVictim is the id of the candidate victim CPU.
	StealCtxVictim = 1
	// StealCtxDepth is the victim's ready-queue depth.
	StealCtxDepth = 2
	// StealCtxNow is the thief's virtual time.
	StealCtxNow = 3
	// StealCtxWords is how many words the steal ABI exposes.
	StealCtxWords = 4
)

// StealSpec is the verification spec for steal-policy programs.
var StealSpec = bcode.Spec{Words: StealCtxWords}

// StealPolicy is one installed policy program.
type StealPolicy struct {
	name   string
	prog   *bcode.Program
	run    func(*bcode.Context) uint64
	evals  atomic.Int64
	vetoes atomic.Int64
}

// Name identifies the policy.
func (p *StealPolicy) Name() string { return p.name }

// Insns reports the program length.
func (p *StealPolicy) Insns() int { return len(p.prog.Insns) }

// Stats reports victim evaluations and vetoes issued.
func (p *StealPolicy) Stats() (evals, vetoes int64) { return p.evals.Load(), p.vetoes.Load() }

// SetStealPolicy verifies prog against the steal ABI, compiles it, and
// installs it, replacing any previous policy. Like SetObserver, call it
// before Run (or between runs).
func (sched *Scheduler) SetStealPolicy(name string, prog *bcode.Program) (*StealPolicy, error) {
	if err := bcode.Verify(prog, StealSpec); err != nil {
		return nil, fmt.Errorf("strand: steal policy %s: %w", name, err)
	}
	p := &StealPolicy{name: name, prog: prog, run: prog.Compile()}
	sched.stealPolicy.Store(p)
	return p, nil
}

// ClearStealPolicy removes the installed policy, if any.
func (sched *Scheduler) ClearStealPolicy() { sched.stealPolicy.Store(nil) }

// StealPolicyInstalled returns the installed policy, or nil.
func (sched *Scheduler) StealPolicyInstalled() *StealPolicy {
	return sched.stealPolicy.Load()
}

// stealVetoed consults the policy (if any) about thief stealing from
// victim, charging one guard evaluation on the thief.
func (c *CPU) stealVetoed(victim *CPU) bool {
	p := c.sched.stealPolicy.Load()
	if p == nil {
		return false
	}
	c.clock.Advance(c.sched.profile.GuardEval)
	p.evals.Add(1)
	// Pooled: the compiled program is a func value, so a stack-local
	// Context would escape — one allocation per steal probe.
	ctx := stealCtxPool.Get().(*bcode.Context)
	ctx.W[StealCtxThief] = uint64(c.id)
	ctx.W[StealCtxVictim] = uint64(victim.id)
	ctx.W[StealCtxDepth] = uint64(victim.ready.Load().size)
	ctx.W[StealCtxNow] = uint64(c.clock.Now())
	verdict := p.run(ctx)
	stealCtxPool.Put(ctx)
	if verdict == bcode.VerdictPass {
		return false
	}
	p.vetoes.Add(1)
	return true
}

var stealCtxPool = sync.Pool{New: func() any { return new(bcode.Context) }}
