package strand

import (
	"spin/internal/sim"
)

// This file implements the paper's CPU-utilization measurement method
// (§5.4): "We determine processor utilization by measuring the progress of
// a low-priority idle thread that executes on the server." The IdleMonitor
// is that thread; whatever share of the processor the workload leaves
// behind, the idle thread consumes in fixed-size ticks, so utilization is
// one minus the idle thread's progress over the window.

// IdlePriority is far below any workload priority.
const IdlePriority = -1 << 20

// IdleMonitor measures leftover processor capacity with a low-priority
// spinning strand.
type IdleMonitor struct {
	sched *Scheduler
	tick  sim.Duration
	start sim.Time

	ticks   int64
	stopped bool
}

// Sleep blocks the strand for d of virtual time: it schedules a timer on
// the strand's home-CPU engine and blocks; that CPU delivers the timer and
// the strand resumes. (The building block for I/O-bound workloads.)
func (s *Strand) Sleep(d sim.Duration) {
	sched := s.sched
	s.cpu.engine.After(d, func() {
		sched.doUnblock(s)
	})
	s.BlockSelf()
}

// NewIdleMonitor starts the idle thread with the given measurement
// granularity. Call Stop to retire it, then Utilization for the result.
func NewIdleMonitor(sched *Scheduler, tick sim.Duration) *IdleMonitor {
	im := &IdleMonitor{sched: sched, tick: tick, start: sched.clock.Now()}
	idle := sched.NewStrand("idle-monitor", IdlePriority, func(self *Strand) {
		for !im.stopped {
			// One tick of idle spinning. The time passes (the CPU is
			// genuinely occupied by the idle loop) but it is not
			// workload: account it with Sleep so Clock.Busy keeps
			// meaning "workload busy". Charge whichever CPU the idle
			// strand currently occupies.
			self.cpu.clock.Sleep(im.tick)
			im.ticks++
			self.Yield()
		}
	})
	sched.Start(idle)
	return im
}

// Stop retires the idle thread at the next tick boundary.
func (im *IdleMonitor) Stop() { im.stopped = true }

// IdleTime reports how much processor time the idle thread absorbed.
func (im *IdleMonitor) IdleTime() sim.Duration {
	return sim.Duration(im.ticks) * im.tick
}

// Utilization reports 1 - idle progress over the window since the monitor
// started — the paper's measurement.
func (im *IdleMonitor) Utilization() float64 {
	window := im.sched.clock.Now().Sub(im.start)
	if window <= 0 {
		return 0
	}
	u := 1 - float64(im.IdleTime())/float64(window)
	if u < 0 {
		return 0
	}
	return u
}
