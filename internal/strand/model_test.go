package strand

import (
	"fmt"
	"sync/atomic"
	"testing"

	"spin/internal/sim"
)

// Model-based scheduler test: random interleavings of NewStrand / Block /
// Unblock / Yield / Sleep — with work stealing active on the multi-CPU
// configurations — checked against a reference model:
//
//   - no strand is lost (every body completes its full script once the
//     chaos controller releases its blocks),
//   - no strand is duplicated (a global in-body flag proves at most one
//     body runs at a time; per-strand iteration counts prove each script
//     step executes exactly once),
//   - no strand runs while blocked (a strand the controller Blocked must
//     not re-enter its body until the controller Unblocks it).
//
// CI runs this under -race, so the atomic counters and COW queue swaps are
// also checked for host-level races.

func TestSchedulerModelTorture(t *testing.T) {
	for _, cpus := range []int{1, 2, 4} {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("cpus=%d/seed=%d", cpus, seed), func(t *testing.T) {
				runSchedulerModel(t, cpus, seed)
			})
		}
	}
}

func runSchedulerModel(t *testing.T, cpus int, seed uint64) {
	const (
		workers = 12
		iters   = 40
	)
	sched, _ := newMultiSched(t, cpus)
	sched.SetStealSeed(seed)

	var inBody atomic.Int64
	counts := make([]int, workers)
	// expectBlocked is the reference model's view of controller-imposed
	// blocks. It is only touched from strand bodies, which the token
	// handoff serializes.
	expectBlocked := make(map[int]bool)

	strands := make([]*Strand, workers)
	for i := 0; i < workers; i++ {
		id := i
		rng := sim.NewRand(seed*1000 + uint64(id) + 1)
		prio := rng.Intn(3)
		strands[i] = sched.NewStrand(fmt.Sprintf("w%d", id), prio, func(s *Strand) {
			for k := 0; k < iters; k++ {
				if !inBody.CompareAndSwap(0, 1) {
					t.Errorf("w%d iter %d: another strand body is running concurrently", id, k)
				}
				if s.State() != Running {
					t.Errorf("w%d iter %d: body running with state %v", id, k, s.State())
				}
				if expectBlocked[id] {
					t.Errorf("w%d iter %d: ran while the model says it is blocked", id, k)
				}
				counts[id]++
				switch rng.Intn(5) {
				case 0, 1:
					d := sim.Duration(1+rng.Intn(5)) * sim.Microsecond
					s.Exec(d)
					inBody.Store(0)
				case 2, 3:
					inBody.Store(0)
					s.Yield()
				case 4:
					d := sim.Duration(1+rng.Intn(10)) * sim.Microsecond
					inBody.Store(0)
					s.Sleep(d)
				}
			}
		})
	}

	// The chaos controller outranks every worker: it randomly Blocks
	// runnable victims (recording them in the model) and Unblocks earlier
	// victims, interleaving itself with Yield and Sleep so its decisions
	// land at scattered points of the schedule. Victims are only taken
	// while Runnable, which in this scheduler implies no pending wakeup
	// timer — so "blocked by the controller" is exact, not approximate.
	ctl := sched.NewStrandOn("chaos-ctl", 10, 0, func(s *Strand) {
		rng := sim.NewRand(seed * 7777)
		for k := 0; k < 3*iters; k++ {
			if !inBody.CompareAndSwap(0, 1) {
				t.Errorf("ctl iter %d: another strand body is running concurrently", k)
			}
			victim := rng.Intn(workers)
			switch {
			case !expectBlocked[victim] && strands[victim].State() == Runnable && rng.Intn(2) == 0:
				expectBlocked[victim] = true
				inBody.Store(0)
				sched.Block(strands[victim])
			case expectBlocked[victim]:
				delete(expectBlocked, victim)
				inBody.Store(0)
				sched.Unblock(strands[victim])
			default:
				inBody.Store(0)
			}
			if rng.Intn(3) == 0 {
				s.Sleep(sim.Duration(1+rng.Intn(5)) * sim.Microsecond)
			} else {
				s.Yield()
			}
		}
		// Release every surviving block so no worker is lost.
		for id := range expectBlocked {
			delete(expectBlocked, id)
			sched.Unblock(strands[id])
		}
	})

	for _, s := range strands {
		sched.Start(s)
	}
	sched.Start(ctl)
	sched.Run()

	for i, s := range strands {
		if got := s.State(); got != Dead {
			t.Errorf("w%d finished in state %v, want dead (lost strand)", i, got)
		}
		if counts[i] != iters {
			t.Errorf("w%d executed %d iterations, want exactly %d (lost or duplicated work)",
				i, counts[i], iters)
		}
	}
	for _, st := range sched.CPUStats() {
		if st.Ready != 0 {
			t.Errorf("cpu%d still queues %d strands after the model run", st.ID, st.Ready)
		}
	}
	if cpus > 1 && sched.Steals() == 0 {
		t.Logf("note: no steals at cpus=%d seed=%d", cpus, seed)
	}
}

// TestSwitchesRaceFree reads the scheduler's counters from a second host
// goroutine while the scheduler loop is mutating them — the exact pattern
// that used to race on the plain int64 switch counter. Run under -race
// this fails loudly if any counter regresses to unsynchronized access.
func TestSwitchesRaceFree(t *testing.T) {
	sched, _ := newMultiSched(t, 2)
	for i := 0; i < 16; i++ {
		s := sched.NewStrand("w", 1, func(s *Strand) {
			for k := 0; k < 20; k++ {
				s.Exec(sim.Microsecond)
				s.Yield()
			}
		})
		sched.Start(s)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			total := sched.Switches() + sched.Steals() + sched.Migrations()
			for _, st := range sched.CPUStats() {
				total += st.Switches + int64(st.Ready)
			}
			if total < 0 {
				panic("counters went negative")
			}
		}
	}()
	sched.Run()
	close(stop)
	<-done
	if sched.Switches() == 0 {
		t.Fatal("no switches recorded")
	}
}
