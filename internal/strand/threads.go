package strand

import (
	"spin/internal/sim"
)

// ThreadPkg is the trusted in-kernel thread package exporting the Modula-3
// thread interface: Fork/Join, Mutex, Condition. It is built directly on
// strands (paper: "The implementations of these interfaces are built
// directly from strands and not layered on top of others").
type ThreadPkg struct {
	sched *Scheduler
	prof  *sim.Profile
}

// NewThreadPkg returns the kernel thread package over sched.
func NewThreadPkg(sched *Scheduler) *ThreadPkg {
	return &ThreadPkg{sched: sched, prof: sched.profile}
}

// charge bills one synchronization primitive to the CPU doing the work.
func (p *ThreadPkg) charge() {
	p.sched.actingClock().Advance(p.prof.SyncOp)
}

// Thread is one kernel thread.
type Thread struct {
	pkg     *ThreadPkg
	strand  *Strand
	done    bool
	joiners []*Strand
}

// Fork creates and schedules a kernel thread running body.
func (p *ThreadPkg) Fork(name string, body func()) *Thread {
	t := &Thread{pkg: p}
	t.strand = p.sched.NewStrand(name, 0, func(s *Strand) {
		body()
		t.done = true
		for _, j := range t.joiners {
			p.sched.Unblock(j)
		}
		t.joiners = nil
	})
	p.sched.Start(t.strand)
	return t
}

// Join blocks the calling thread until t terminates. Must be called from
// strand context (inside a running strand's body).
func (p *ThreadPkg) Join(t *Thread) {
	p.charge()
	cur := p.sched.Current()
	if t.done || cur == nil {
		return
	}
	t.joiners = append(t.joiners, cur)
	cur.BlockSelf()
}

// Strand exposes the thread's strand capability.
func (t *Thread) Strand() *Strand { return t.strand }

// Done reports whether the thread has terminated.
func (t *Thread) Done() bool { return t.done }

// Mutex is an in-kernel lock with direct handoff to the first waiter.
type Mutex struct {
	pkg     *ThreadPkg
	holder  *Strand
	waiters []*Strand
}

// NewMutex returns an unlocked mutex.
func (p *ThreadPkg) NewMutex() *Mutex { return &Mutex{pkg: p} }

// Lock acquires m, blocking the calling strand while m is held.
func (m *Mutex) Lock() {
	p := m.pkg
	p.charge()
	cur := p.sched.Current()
	if m.holder == nil {
		m.holder = cur
		return
	}
	m.waiters = append(m.waiters, cur)
	cur.BlockSelf()
	// Direct handoff: Unlock made us the holder before unblocking us.
}

// Unlock releases m, handing it to the first waiter if any.
func (m *Mutex) Unlock() {
	p := m.pkg
	p.charge()
	if len(m.waiters) == 0 {
		m.holder = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.holder = next
	p.sched.Unblock(next)
}

// Condition is a condition variable used with a Mutex.
type Condition struct {
	pkg     *ThreadPkg
	waiters []*Strand
}

// NewCondition returns a condition variable.
func (p *ThreadPkg) NewCondition() *Condition { return &Condition{pkg: p} }

// Wait atomically releases m and blocks; on wakeup it reacquires m.
func (c *Condition) Wait(m *Mutex) {
	p := c.pkg
	p.charge()
	cur := p.sched.Current()
	c.waiters = append(c.waiters, cur)
	m.Unlock()
	cur.BlockSelf()
	m.Lock()
}

// Signal wakes one waiter.
func (c *Condition) Signal() {
	p := c.pkg
	p.charge()
	if len(c.waiters) == 0 {
		return
	}
	next := c.waiters[0]
	c.waiters = c.waiters[1:]
	p.sched.Unblock(next)
}

// Broadcast wakes all waiters.
func (c *Condition) Broadcast() {
	p := c.pkg
	p.charge()
	for _, w := range c.waiters {
		p.sched.Unblock(w)
	}
	c.waiters = nil
}

// Semaphore is a counting semaphore implemented directly on strands (one
// synchronization charge per operation — the kernel treats it as a
// primitive, like thread_sleep/thread_wakeup pairs).
type Semaphore struct {
	pkg     *ThreadPkg
	count   int
	waiters []*Strand
}

// NewSemaphore returns a semaphore with the given initial count.
func (p *ThreadPkg) NewSemaphore(initial int) *Semaphore {
	return &Semaphore{pkg: p, count: initial}
}

// P decrements the semaphore, blocking while it is zero.
func (s *Semaphore) P() {
	p := s.pkg
	p.charge()
	if s.count > 0 {
		s.count--
		return
	}
	cur := p.sched.Current()
	s.waiters = append(s.waiters, cur)
	cur.BlockSelf()
}

// V increments the semaphore and wakes one waiter (direct handoff: the
// woken strand owns the count it was waiting for).
func (s *Semaphore) V() {
	p := s.pkg
	p.charge()
	if len(s.waiters) > 0 {
		next := s.waiters[0]
		s.waiters = s.waiters[1:]
		p.sched.Unblock(next)
		return
	}
	s.count++
}
