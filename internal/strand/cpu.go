package strand

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"spin/internal/sim"
	"spin/internal/trace"
)

// This file implements the multi-CPU half of the strand scheduler: per-CPU
// run queues held as copy-on-write snapshots, randomized work stealing on
// idle, and strand→CPU affinity with migration accounting. The paper's
// extensibility story is unchanged — Block/Unblock/Checkpoint/Resume are
// still dispatcher events, subschedulers still install guarded handlers,
// and GuardStrandOwner still gates strand capabilities — the scheduler
// merely multiplexes several virtual processors instead of one.
//
// Each CPU is bound to one sim.Engine and therefore owns its own virtual
// clock: strands on different CPUs consume virtual time concurrently, so a
// batch of strands finishes in roughly 1/N the virtual makespan on N CPUs.
// The driver remains a single host goroutine stepping the CPU with the
// earliest clock (the same conservative rule sim.Cluster uses for
// machines), so execution stays deterministic under a fixed seed.

// readyList is an immutable snapshot of one CPU's runnable strands:
// priority levels sorted descending, FIFO order within a level. Readers
// (steal scans, the cluster driver's eligibility checks, debuggers) load
// the snapshot lock-free; writers copy the spine and the level they touch
// and swap the pointer under the CPU's writer mutex — the same
// copy-on-write discipline as the dispatcher's event state.
type readyList struct {
	prios []int
	qs    [][]*Strand
	size  int
}

var emptyReady = &readyList{}

// level finds the index of prio in rl.prios, or the insertion point.
func (rl *readyList) level(prio int) (int, bool) {
	for i, p := range rl.prios {
		if p == prio {
			return i, true
		}
		if p < prio {
			return i, false
		}
	}
	return len(rl.prios), false
}

// push returns a new list with s appended to the back of its priority level.
func (rl *readyList) push(s *Strand) *readyList {
	i, ok := rl.level(s.prio)
	next := &readyList{size: rl.size + 1}
	if ok {
		next.prios = append([]int(nil), rl.prios...)
		next.qs = append([][]*Strand(nil), rl.qs...)
		q := make([]*Strand, 0, len(rl.qs[i])+1)
		q = append(q, rl.qs[i]...)
		next.qs[i] = append(q, s)
		return next
	}
	next.prios = make([]int, 0, len(rl.prios)+1)
	next.qs = make([][]*Strand, 0, len(rl.qs)+1)
	next.prios = append(next.prios, rl.prios[:i]...)
	next.prios = append(next.prios, s.prio)
	next.prios = append(next.prios, rl.prios[i:]...)
	next.qs = append(next.qs, rl.qs[:i]...)
	next.qs = append(next.qs, []*Strand{s})
	next.qs = append(next.qs, rl.qs[i:]...)
	return next
}

// dropLevel returns a copy of rl with level i replaced by q (or removed
// when q is empty).
func (rl *readyList) withLevel(i int, q []*Strand) *readyList {
	next := &readyList{size: rl.size - 1}
	if len(q) == 0 {
		next.prios = make([]int, 0, len(rl.prios)-1)
		next.qs = make([][]*Strand, 0, len(rl.qs)-1)
		next.prios = append(next.prios, rl.prios[:i]...)
		next.prios = append(next.prios, rl.prios[i+1:]...)
		next.qs = append(next.qs, rl.qs[:i]...)
		next.qs = append(next.qs, rl.qs[i+1:]...)
		return next
	}
	next.prios = append([]int(nil), rl.prios...)
	next.qs = append([][]*Strand(nil), rl.qs...)
	next.qs[i] = q
	return next
}

// pop returns the front of the highest priority level — the strand the CPU
// runs next.
func (rl *readyList) pop() (*Strand, *readyList) {
	if rl.size == 0 {
		return nil, rl
	}
	q := rl.qs[0]
	return q[0], rl.withLevel(0, q[1:])
}

// stealTail returns the back of the lowest priority level — the coldest
// queued work, the classic victim end for a thief so the owner keeps the
// strands it is about to run.
func (rl *readyList) stealTail() (*Strand, *readyList) {
	if rl.size == 0 {
		return nil, rl
	}
	i := len(rl.qs) - 1
	q := rl.qs[i]
	return q[len(q)-1], rl.withLevel(i, q[:len(q)-1])
}

// remove returns a list without s, reporting whether s was present.
func (rl *readyList) remove(s *Strand) (*readyList, bool) {
	i, ok := rl.level(s.prio)
	if !ok {
		return rl, false
	}
	for j, x := range rl.qs[i] {
		if x == s {
			q := make([]*Strand, 0, len(rl.qs[i])-1)
			q = append(q, rl.qs[i][:j]...)
			q = append(q, rl.qs[i][j+1:]...)
			return rl.withLevel(i, q), true
		}
	}
	return rl, false
}

// CPU is one virtual processor of the scheduler: an engine (and therefore a
// clock) plus a run queue and scheduling counters.
type CPU struct {
	id     int
	sched  *Scheduler
	engine *sim.Engine
	clock  *sim.Clock

	// mu serializes writers of the ready snapshot (own enqueue/dequeue and
	// thieves); readers load the pointer lock-free.
	mu    sync.Mutex
	ready atomic.Pointer[readyList]

	// current/last are driver-goroutine state, synchronized with strand
	// bodies through the CPU-token channel handoffs.
	current *Strand
	last    *Strand

	switches   atomic.Int64
	steals     atomic.Int64
	migrations atomic.Int64

	// rng picks steal victims; seeded deterministically per CPU so runs
	// replay exactly from the scheduler's steal seed.
	rng *sim.Rand
}

func newCPU(id int, sched *Scheduler, engine *sim.Engine, seed uint64) *CPU {
	c := &CPU{id: id, sched: sched, engine: engine, clock: engine.Clock}
	c.ready.Store(emptyReady)
	c.reseed(seed)
	return c
}

func (c *CPU) reseed(seed uint64) {
	c.rng = sim.NewRand(seed + 0x9E3779B97F4A7C15*uint64(c.id+1))
}

// enqueue appends s to the back of its priority level.
func (c *CPU) enqueue(s *Strand) {
	c.mu.Lock()
	c.ready.Store(c.ready.Load().push(s))
	c.mu.Unlock()
}

// dequeue removes s, reporting whether it was queued.
func (c *CPU) dequeue(s *Strand) bool {
	c.mu.Lock()
	next, ok := c.ready.Load().remove(s)
	if ok {
		c.ready.Store(next)
	}
	c.mu.Unlock()
	return ok
}

// popLocal takes the next strand off this CPU's own queue.
func (c *CPU) popLocal() *Strand {
	c.mu.Lock()
	s, next := c.ready.Load().pop()
	if s != nil {
		c.ready.Store(next)
	}
	c.mu.Unlock()
	return s
}

// takeTail surrenders the coldest queued strand to a thief.
func (c *CPU) takeTail() *Strand {
	c.mu.Lock()
	s, next := c.ready.Load().stealTail()
	if s != nil {
		c.ready.Store(next)
	}
	c.mu.Unlock()
	return s
}

// trySteal scans the other CPUs in deterministic random order and steals
// one queued strand. The stolen strand migrates: its home CPU becomes the
// thief, so subsequent Unblocks and Yields keep it here until it is stolen
// again or explicitly re-homed.
func (c *CPU) trySteal() *Strand {
	sched := c.sched
	n := len(sched.cpus)
	if n == 1 {
		return nil
	}
	for _, vi := range c.rng.Perm(n - 1) {
		victim := sched.cpus[(c.id+1+vi)%n]
		// An installed steal policy (verified bytecode) may veto this
		// victim; the scan then continues with the next candidate.
		if c.stealVetoed(victim) {
			continue
		}
		s := victim.takeTail()
		if s == nil {
			continue
		}
		// The steal is scheduler bookkeeping on the thief: one run-queue
		// transition charge, same as any block/unblock.
		c.clock.Advance(sched.profile.SchedOp)
		c.steals.Add(1)
		s.cpu = c
		c.migrations.Add(1)
		sched.observe(SchedEvent{Kind: "steal", Strand: s.name, CPU: c.id, From: victim.id, At: c.clock.Now()})
		sched.observe(SchedEvent{Kind: "migrate", Strand: s.name, CPU: c.id, From: victim.id, At: c.clock.Now()})
		if tr := sched.disp.Tracer(); tr != nil {
			tr.Trace(trace.Record{Event: "sched.steal", Origin: "sched", Start: c.clock.Now(), Outcome: trace.OutcomeOK})
			tr.Trace(trace.Record{Event: "sched.migrate", Origin: "sched", Start: c.clock.Now(), Outcome: trace.OutcomeOK})
		}
		return s
	}
	return nil
}

// step performs one scheduling action on this CPU: deliver due engine
// events, then dispatch one strand slice (local or stolen), else advance
// idle time to the engine's next event. It reports whether progress was
// made.
func (c *CPU) step() bool {
	progress := false
	for {
		at, ok := c.engine.NextEventTime()
		if !ok || at > c.clock.Now() {
			break
		}
		c.engine.Step()
		progress = true
	}
	next := c.popLocal()
	if next == nil {
		next = c.trySteal()
	}
	if next == nil {
		if at, ok := c.engine.NextEventTime(); ok && c.sched.safeIdleAdvance(c, at) {
			return c.engine.Step() || progress
		}
		return progress
	}
	c.dispatch(next)
	return true
}

// SchedEvent is one observed scheduling action. An observer registered with
// SetObserver sees the exact switch/steal/migrate sequence, which the
// determinism tests compare byte for byte across seeded runs.
type SchedEvent struct {
	// Kind is "switch", "steal", or "migrate".
	Kind string
	// Strand is the name of the strand involved.
	Strand string
	// CPU is the acting CPU (the thief or new home for steal/migrate).
	CPU int
	// From is the source CPU for steal/migrate; equal to CPU for switch.
	From int
	// At is the acting CPU's virtual time.
	At sim.Time
}

func (e SchedEvent) String() string {
	return fmt.Sprintf("%s %s cpu%d<-%d @%v", e.Kind, e.Strand, e.CPU, e.From, e.At)
}

// CPUStat is one CPU's scheduling counters.
type CPUStat struct {
	ID         int
	Switches   int64
	Steals     int64
	Migrations int64
	// Ready is the instantaneous run-queue depth.
	Ready int
	// Clock is the CPU's virtual time.
	Clock sim.Time
}

// CPUStats reports per-CPU counters, lock-free.
func (sched *Scheduler) CPUStats() []CPUStat {
	out := make([]CPUStat, len(sched.cpus))
	for i, c := range sched.cpus {
		out[i] = CPUStat{
			ID:         c.id,
			Switches:   c.switches.Load(),
			Steals:     c.steals.Load(),
			Migrations: c.migrations.Load(),
			Ready:      c.ready.Load().size,
			Clock:      c.clock.Now(),
		}
	}
	return out
}

// NumCPUs reports how many virtual processors the scheduler multiplexes.
func (sched *Scheduler) NumCPUs() int { return len(sched.cpus) }

// Steals reports strands taken from another CPU's run queue.
func (sched *Scheduler) Steals() int64 {
	var n int64
	for _, c := range sched.cpus {
		n += c.steals.Load()
	}
	return n
}

// Migrations reports strand home-CPU changes (steals and SetAffinity moves).
func (sched *Scheduler) Migrations() int64 {
	var n int64
	for _, c := range sched.cpus {
		n += c.migrations.Load()
	}
	return n
}

// Report renders the scheduler's per-CPU statistics — the "sched" view
// spin-dbg and spin-httpd's /debug/sched expose.
func (sched *Scheduler) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sched: %d CPU(s), %d switches, %d steals, %d migrations, %d contained faults\n",
		sched.NumCPUs(), sched.Switches(), sched.Steals(), sched.Migrations(), sched.StrandFaults())
	for _, st := range sched.CPUStats() {
		fmt.Fprintf(&sb, "  cpu%d: clock=%v switches=%d steals=%d migrations=%d ready=%d\n",
			st.ID, st.Clock, st.Switches, st.Steals, st.Migrations, st.Ready)
	}
	return sb.String()
}
