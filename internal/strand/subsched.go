package strand

import (
	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/sim"
)

// SubScheduler is an application-specific scheduler placed on top of the
// global scheduler (paper §4.2): it presents itself to the global scheduler
// as a thread package — its carrier strand receives the processor via
// Resume and relinquishes it via Checkpoint/Block — and it schedules its own
// strands with its own policy (FIFO here; the point is the structure, and
// tests replace the policy).
//
// Block and Unblock events raised on its strands are routed to it by the
// dispatcher through guarded handlers, exactly as the paper describes.
type SubScheduler struct {
	global  *Scheduler
	carrier *Strand
	ident   domain.Identity

	// strands this scheduler owns.
	owned map[*SubStrand]bool
	runq  []*SubStrand

	// Policy picks the index of the next substrand to run from the run
	// queue; nil means FIFO (index 0).
	Policy func(q []*SubStrand) int

	refs []dispatch.HandlerRef
}

// SubStrand is a strand owned by an application-specific scheduler: a
// cooperative task that runs step functions until done.
type SubStrand struct {
	Name string
	// Weight is consulted by proportional-share policies (LotteryPolicy);
	// zero means 1.
	Weight   int
	owner    *SubScheduler
	runnable bool
	body     func(*SubStrand)
	finished bool
}

// Finished reports whether the substrand's body has completed.
func (ss *SubStrand) Finished() bool { return ss.finished }

// NewSubScheduler creates an application-specific scheduler and installs
// its Block/Unblock handlers (guarded to its own strands) on the global
// dispatcher.
func NewSubScheduler(global *Scheduler, ident domain.Identity) (*SubScheduler, error) {
	sub := &SubScheduler{
		global: global,
		ident:  ident,
		owned:  make(map[*SubStrand]bool),
	}
	sub.carrier = global.NewStrand("subsched:"+ident.Name, 0, func(s *Strand) {
		sub.loop(s)
	})

	guard := func(arg any) bool {
		ss, ok := arg.(*SubStrand)
		return ok && sub.owned[ss]
	}
	blockRef, err := global.disp.Install(EvBlock, func(arg, _ any) any {
		ss := arg.(*SubStrand)
		ss.runnable = false
		sub.dequeue(ss)
		return nil
	}, dispatch.InstallOptions{Installer: ident, Guard: guard})
	if err != nil {
		return nil, err
	}
	unblockRef, err := global.disp.Install(EvUnblock, func(arg, _ any) any {
		ss := arg.(*SubStrand)
		if !ss.runnable && !ss.finished {
			ss.runnable = true
			sub.runq = append(sub.runq, ss)
			// Receive control of the processor: wake the carrier.
			global.disp.Raise(EvUnblock, sub.carrier)
		}
		return nil
	}, dispatch.InstallOptions{Installer: ident, Guard: guard})
	if err != nil {
		return nil, err
	}
	sub.refs = []dispatch.HandlerRef{blockRef, unblockRef}
	return sub, nil
}

// NewSubStrand creates a strand under this scheduler; Unblock (raised as an
// event on it) makes it runnable.
func (sub *SubScheduler) NewSubStrand(name string, body func(*SubStrand)) *SubStrand {
	ss := &SubStrand{Name: name, owner: sub, body: body}
	sub.owned[ss] = true
	return ss
}

// Start makes a substrand runnable by raising Strand.Unblock on it — the
// dispatcher routes the event to this scheduler.
func (sub *SubScheduler) Start(ss *SubStrand) {
	sub.global.disp.Raise(EvUnblock, ss)
}

// loop is the carrier body: the delivery of Resume (being scheduled by the
// global scheduler) lets it schedule its own strands; with no runnable
// strand it blocks, relinquishing the processor.
func (sub *SubScheduler) loop(carrier *Strand) {
	for {
		if len(sub.runq) == 0 {
			if sub.allFinished() {
				return
			}
			carrier.BlockSelf()
			continue
		}
		i := 0
		if sub.Policy != nil {
			i = sub.Policy(sub.runq)
			if i < 0 || i >= len(sub.runq) {
				i = 0
			}
		}
		ss := sub.runq[i]
		sub.runq = append(sub.runq[:i], sub.runq[i+1:]...)
		ss.runnable = false
		ss.body(ss)
		ss.finished = true
		delete(sub.owned, ss)
		// Preemption point: let the global scheduler reclaim the
		// processor between substrands.
		carrier.Yield()
	}
}

func (sub *SubScheduler) allFinished() bool {
	return len(sub.owned) == 0
}

func (sub *SubScheduler) dequeue(ss *SubStrand) {
	for i, x := range sub.runq {
		if x == ss {
			sub.runq = append(sub.runq[:i], sub.runq[i+1:]...)
			return
		}
	}
}

// Carrier exposes the carrier strand (for starting the scheduler).
func (sub *SubScheduler) Carrier() *Strand { return sub.carrier }

// LotteryPolicy returns a proportional-share policy [Waldspurger & Weihl
// 94]: each runnable substrand holds Weight tickets (default 1) and the
// winner is drawn with the given deterministic PRNG — the kind of
// application-specific policy SPIN lets an extension install without
// touching the global scheduler.
func LotteryPolicy(rng *sim.Rand) func(q []*SubStrand) int {
	return func(q []*SubStrand) int {
		total := 0
		for _, ss := range q {
			w := ss.Weight
			if w <= 0 {
				w = 1
			}
			total += w
		}
		if total == 0 {
			return 0
		}
		ticket := rng.Intn(total)
		for i, ss := range q {
			w := ss.Weight
			if w <= 0 {
				w = 1
			}
			ticket -= w
			if ticket < 0 {
				return i
			}
		}
		return 0
	}
}

// Detach removes the scheduler's event handlers.
func (sub *SubScheduler) Detach() {
	for _, r := range sub.refs {
		_ = sub.global.disp.Remove(r)
	}
}
