package strand

import (
	"testing"

	"spin/internal/sim"
)

// readyList is the COW core of the multi-CPU scheduler; this test drives it
// with 10k random operations against a dead-simple reference (a plain slice
// ordered by priority then arrival) and requires identical behavior.

type refQueue struct {
	items []*Strand
	seqs  []int
	next  int
}

func (r *refQueue) push(s *Strand) {
	r.items = append(r.items, s)
	r.seqs = append(r.seqs, r.next)
	r.next++
}

func (r *refQueue) take(i int) *Strand {
	s := r.items[i]
	r.items = append(r.items[:i], r.items[i+1:]...)
	r.seqs = append(r.seqs[:i], r.seqs[i+1:]...)
	return s
}

// pop takes the earliest-arrived strand of the highest priority.
func (r *refQueue) pop() *Strand {
	best := -1
	for i, s := range r.items {
		if best == -1 || s.prio > r.items[best].prio ||
			(s.prio == r.items[best].prio && r.seqs[i] < r.seqs[best]) {
			best = i
		}
	}
	if best == -1 {
		return nil
	}
	return r.take(best)
}

// stealTail takes the latest-arrived strand of the lowest priority.
func (r *refQueue) stealTail() *Strand {
	best := -1
	for i, s := range r.items {
		if best == -1 || s.prio < r.items[best].prio ||
			(s.prio == r.items[best].prio && r.seqs[i] > r.seqs[best]) {
			best = i
		}
	}
	if best == -1 {
		return nil
	}
	return r.take(best)
}

func (r *refQueue) remove(s *Strand) bool {
	for i, x := range r.items {
		if x == s {
			r.take(i)
			return true
		}
	}
	return false
}

func TestReadyListMatchesReferenceModel(t *testing.T) {
	rng := sim.NewRand(42)
	rl := emptyReady
	ref := &refQueue{}
	var live []*Strand
	id := 0

	check := func(op string, got, want *Strand) {
		t.Helper()
		if got != want {
			gname, wname := "<nil>", "<nil>"
			if got != nil {
				gname = got.name
			}
			if want != nil {
				wname = want.name
			}
			t.Fatalf("%s: readyList returned %s, reference model says %s", op, gname, wname)
		}
	}

	for i := 0; i < 10000; i++ {
		switch rng.Intn(5) {
		case 0, 1: // push
			s := &Strand{name: itoa(id), prio: rng.Intn(5) - 2}
			id++
			rl = rl.push(s)
			ref.push(s)
			live = append(live, s)
		case 2: // pop
			got, next := rl.pop()
			want := ref.pop()
			check("pop", got, want)
			if got != nil {
				rl = next
				live = removeStrand(live, got)
			}
		case 3: // stealTail
			got, next := rl.stealTail()
			want := ref.stealTail()
			check("stealTail", got, want)
			if got != nil {
				rl = next
				live = removeStrand(live, got)
			}
		case 4: // remove a random live strand (Block on a queued strand)
			if len(live) == 0 {
				continue
			}
			s := live[rng.Intn(len(live))]
			next, ok := rl.remove(s)
			refOK := ref.remove(s)
			if ok != refOK {
				t.Fatalf("remove(%s): readyList=%v reference=%v", s.name, ok, refOK)
			}
			rl = next
			live = removeStrand(live, s)
		}
		if rl.size != len(ref.items) {
			t.Fatalf("op %d: size %d, reference has %d", i, rl.size, len(ref.items))
		}
	}
}

// TestReadyListSnapshotsImmutable verifies the COW contract: operations on
// a snapshot never disturb an older snapshot a concurrent reader may hold.
func TestReadyListSnapshotsImmutable(t *testing.T) {
	a := &Strand{name: "a", prio: 1}
	b := &Strand{name: "b", prio: 2}
	c := &Strand{name: "c", prio: 1}
	base := emptyReady.push(a).push(b)
	snapSize := base.size

	_ = base.push(c)
	if _, next := base.pop(); next == base {
		t.Fatal("pop returned the receiver for a non-empty list")
	}
	if _, _ = base.stealTail(); base.size != snapSize {
		t.Fatalf("stealTail mutated snapshot: size %d, want %d", base.size, snapSize)
	}
	if got, _ := base.pop(); got != b {
		t.Fatalf("snapshot changed: pop = %v, want b", got.name)
	}
	if emptyReady.size != 0 {
		t.Fatal("emptyReady mutated")
	}
}

func itoa(n int) string {
	return string(rune('A' + n%26))
}

func removeStrand(xs []*Strand, s *Strand) []*Strand {
	for i, x := range xs {
		if x == s {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}
