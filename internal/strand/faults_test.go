package strand

import (
	"testing"

	"spin/internal/dispatch"
	"spin/internal/faultinject"
	"spin/internal/sim"
)

// Strand fault containment: a panic in a strand body (organic or injected
// at the "sched.strand" entry site) kills that strand only — counted,
// traced, and invisible to its siblings and the scheduler loop.

func TestStrandPanicContained(t *testing.T) {
	sched, _ := newSched(t)
	survivors := 0
	sched.Start(sched.NewStrand("doomed", 1, func(*Strand) { panic("extension bug") }))
	sched.Start(sched.NewStrand("fine-1", 1, func(*Strand) { survivors++ }))
	sched.Start(sched.NewStrand("fine-2", 1, func(*Strand) { survivors++ }))
	sched.Run()
	if n := sched.StrandFaults(); n != 1 {
		t.Errorf("StrandFaults = %d, want 1", n)
	}
	if survivors != 2 {
		t.Errorf("%d survivors ran, want 2", survivors)
	}
}

func TestStrandEntryInjectionSite(t *testing.T) {
	eng := sim.NewEngine()
	disp := dispatch.New(eng, &sim.SPINProfile)
	sched, err := NewScheduler(eng, &sim.SPINProfile, disp)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(11, eng.Clock)
	disp.SetInjector(inj)
	// KindError at the entry site suppresses the body without a panic:
	// the strand exits cleanly and nothing is counted as a fault.
	inj.Arm(faultinject.Rule{Site: "sched.strand", Kind: faultinject.KindError, MaxFires: 1})
	ran := 0
	for i := 0; i < 3; i++ {
		sched.Start(sched.NewStrand("s", 1, func(*Strand) { ran++ }))
	}
	sched.Run()
	if got := inj.FiredAt("sched.strand"); got != 1 {
		t.Fatalf("site fired %d, want 1", got)
	}
	if ran != 2 {
		t.Errorf("%d bodies ran, want 2 (one suppressed)", ran)
	}
	if n := sched.StrandFaults(); n != 0 {
		t.Errorf("StrandFaults = %d, want 0 (suppression is not a panic)", n)
	}
}
