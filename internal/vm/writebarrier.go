package vm

import (
	"sort"

	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/sal"
)

// WriteBarrier implements the fault-based write tracking that concurrent
// and generational garbage collectors build on the VM interface (§5.2:
// "concurrent and generational garbage collectors can use write faults to
// maintain invariants or collect reference information" — the workload the
// Appel benchmarks in Table 4 model). A phase write-protects the region;
// the first write to each page faults once, the handler records the page in
// the dirty set (the collector's remembered set) and opens it for further
// writes at full speed. ResetPhase starts the next collection cycle.
type WriteBarrier struct {
	sys    *System
	ctx    *Context
	region *VirtAddr
	ref    dispatch.HandlerRef

	dirty map[int]bool
	// BarrierFaults counts first-write faults taken.
	BarrierFaults int
	// Phases counts ResetPhase calls.
	Phases int
}

// NewWriteBarrier arms tracking over region in ctx (which must already be
// mapped writable) and begins the first phase.
func NewWriteBarrier(sys *System, ctx *Context, region *VirtAddr, installer domain.Identity) (*WriteBarrier, error) {
	wb := &WriteBarrier{
		sys:    sys,
		ctx:    ctx,
		region: region,
		dirty:  make(map[int]bool),
	}
	lo, hi := region.VPN(0), region.VPN(region.Pages()-1)
	ref, err := sys.Disp.Install(EvProtectionFault, func(arg, _ any) any {
		f := arg.(*sal.Fault)
		page := int(f.VPN - lo)
		if wb.dirty[page] {
			return false // not ours: already opened
		}
		wb.dirty[page] = true
		wb.BarrierFaults++
		// Open the page: subsequent writes run at memory speed.
		return sys.TransSvc.ProtectPage(ctx, region, page, sal.ProtRead|sal.ProtWrite) == nil
	}, dispatch.InstallOptions{
		Installer: installer,
		Guard: func(arg any) bool {
			f, ok := arg.(*sal.Fault)
			return ok && f.Context == ctx.ID() && f.Access&sal.ProtWrite != 0 &&
				f.VPN >= lo && f.VPN <= hi
		},
	})
	if err != nil {
		return nil, err
	}
	wb.ref = ref
	if err := wb.protectAll(); err != nil {
		return nil, err
	}
	return wb, nil
}

// protectAll write-protects the whole region (one batched Prot-N).
func (wb *WriteBarrier) protectAll() error {
	return wb.sys.TransSvc.Protect(wb.ctx, wb.region, sal.ProtRead)
}

// DirtyPages returns the pages written this phase, sorted — the remembered
// set the collector scans.
func (wb *WriteBarrier) DirtyPages() []int {
	out := make([]int, 0, len(wb.dirty))
	for p := range wb.dirty {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// ResetPhase ends the current phase: it clears the dirty set and
// re-protects the region, beginning the next cycle.
func (wb *WriteBarrier) ResetPhase() error {
	wb.dirty = make(map[int]bool)
	wb.Phases++
	return wb.protectAll()
}

// Disarm removes the barrier's fault handler and opens the region.
func (wb *WriteBarrier) Disarm() error {
	_ = wb.sys.Disp.Remove(wb.ref)
	return wb.sys.TransSvc.Protect(wb.ctx, wb.region, sal.ProtRead|sal.ProtWrite)
}
