package vm

import (
	"errors"
	"testing"
	"testing/quick"

	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/sal"
	"spin/internal/sim"
)

func newVM(t *testing.T) *System {
	t.Helper()
	eng := sim.NewEngine()
	disp := dispatch.New(eng, &sim.SPINProfile)
	mmu := sal.NewMMU(eng.Clock, &sim.SPINProfile)
	phys := sal.NewPhysMem(64 << 20)
	sys, err := New(eng, &sim.SPINProfile, disp, mmu, phys)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestAllocateMapAccess(t *testing.T) {
	sys := newVM(t)
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	v, err := sys.VirtSvc.Allocate(asid, sal.PageSize, AnyAttrib)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.PhysSvc.Allocate(sal.PageSize, AnyAttrib)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TransSvc.AddMapping(ctx, v, p, sal.ProtRead|sal.ProtWrite); err != nil {
		t.Fatal(err)
	}
	fault, _ := sys.Access(ctx, v.Start(), sal.ProtRead)
	if fault != nil {
		t.Fatalf("fault on mapped page: %v", fault.Kind)
	}
}

func TestDirtyQuery(t *testing.T) {
	sys := newVM(t)
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	v, _ := sys.VirtSvc.Allocate(asid, sal.PageSize, AnyAttrib)
	p, _ := sys.PhysSvc.Allocate(sal.PageSize, AnyAttrib)
	_ = sys.TransSvc.AddMapping(ctx, v, p, sal.ProtRead|sal.ProtWrite)

	dirty, err := sys.PhysSvc.IsDirty(p)
	if err != nil || dirty {
		t.Fatalf("fresh page dirty=%v err=%v", dirty, err)
	}
	sys.Access(ctx, v.Start(), sal.ProtRead)
	dirty, _ = sys.PhysSvc.IsDirty(p)
	if dirty {
		t.Error("read marked page dirty")
	}
	sys.Access(ctx, v.Start(), sal.ProtWrite)
	dirty, _ = sys.PhysSvc.IsDirty(p)
	if !dirty {
		t.Error("write did not mark page dirty")
	}
}

func TestUnhandledFaultReturns(t *testing.T) {
	sys := newVM(t)
	ctx := sys.TransSvc.Create()
	fault, _ := sys.Access(ctx, userBase, sal.ProtRead)
	if fault == nil || fault.Kind != sal.FaultBadAddress {
		t.Errorf("fault = %v", fault)
	}
}

func TestFaultEventResolution(t *testing.T) {
	sys := newVM(t)
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	v, _ := sys.VirtSvc.Allocate(asid, sal.PageSize, AnyAttrib)
	p, _ := sys.PhysSvc.Allocate(sal.PageSize, AnyAttrib)
	_ = sys.TransSvc.AddMapping(ctx, v, p, sal.ProtRead)

	// Write to read-only page: protection fault; install a handler that
	// upgrades protection and resolves.
	handled := 0
	_, err := sys.Disp.Install(EvProtectionFault, func(arg, _ any) any {
		handled++
		_ = sys.TransSvc.Protect(ctx, v, sal.ProtRead|sal.ProtWrite)
		return true
	}, dispatch.InstallOptions{Guard: GuardContext(ctx)})
	if err != nil {
		t.Fatal(err)
	}
	fault, trapLat := sys.Access(ctx, v.Start(), sal.ProtWrite)
	if fault != nil {
		t.Fatalf("resolved fault still returned: %v", fault.Kind)
	}
	if handled != 1 {
		t.Errorf("handler ran %d times", handled)
	}
	if trapLat <= 0 {
		t.Error("trap latency not measured")
	}
}

func TestFaultRetryBound(t *testing.T) {
	sys := newVM(t)
	ctx := sys.TransSvc.Create()
	// A handler that claims resolution but never fixes the mapping must
	// not loop forever.
	calls := 0
	_, _ = sys.Disp.Install(EvBadAddress, func(arg, _ any) any {
		calls++
		return true
	}, dispatch.InstallOptions{})
	fault, _ := sys.Access(ctx, userBase, sal.ProtRead)
	if fault == nil {
		t.Fatal("lying handler convinced Access")
	}
	if calls < 2 || calls > 8 {
		t.Errorf("handler calls = %d, want bounded retries", calls)
	}
}

func TestPhysAllocatorColors(t *testing.T) {
	sys := newVM(t)
	p, err := sys.PhysSvc.Allocate(4*sal.PageSize, Attrib{Color: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range p.frames {
		fr, _ := sys.Phys.Frame(f)
		if fr.Color != 3 {
			t.Errorf("frame %d color %d, want 3", f, fr.Color)
		}
	}
}

func TestPhysAllocatorContiguous(t *testing.T) {
	sys := newVM(t)
	p, err := sys.PhysSvc.Allocate(8*sal.PageSize, Attrib{Color: -1, Contiguous: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(p.frames); i++ {
		if p.frames[i] != p.frames[i-1]+1 {
			t.Fatalf("frames not contiguous: %v", p.frames)
		}
	}
}

func TestPhysAllocatorExhaustion(t *testing.T) {
	sys := newVM(t)
	free := sys.PhysSvc.FreePages()
	_, err := sys.PhysSvc.Allocate(int64(free+1)*sal.PageSize, AnyAttrib)
	if !errors.Is(err, ErrNoMemory) {
		t.Errorf("err = %v, want ErrNoMemory", err)
	}
	// Failed allocation must not leak frames.
	if sys.PhysSvc.FreePages() != free {
		t.Errorf("free pages leaked: %d -> %d", free, sys.PhysSvc.FreePages())
	}
}

func TestDeallocateInvalidatesMappings(t *testing.T) {
	sys := newVM(t)
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	v, _ := sys.VirtSvc.Allocate(asid, sal.PageSize, AnyAttrib)
	p, _ := sys.PhysSvc.Allocate(sal.PageSize, AnyAttrib)
	_ = sys.TransSvc.AddMapping(ctx, v, p, sal.ProtRead)
	if err := sys.PhysSvc.Deallocate(p); err != nil {
		t.Fatal(err)
	}
	// The mapping must be gone: access faults.
	fault, _ := sys.Access(ctx, v.Start(), sal.ProtRead)
	if fault == nil {
		t.Fatal("mapping survived physical deallocation")
	}
	// Double free is a capability error.
	if err := sys.PhysSvc.Deallocate(p); !errors.Is(err, ErrBadCapability) {
		t.Errorf("double free err = %v", err)
	}
}

func TestReclaimNomination(t *testing.T) {
	sys := newVM(t)
	candidate, _ := sys.PhysSvc.Allocate(sal.PageSize, AnyAttrib)
	alternative, _ := sys.PhysSvc.Allocate(sal.PageSize, AnyAttrib)
	// A client nominates its less-important page instead.
	_, _ = sys.Disp.Install(EvReclaim, func(arg, _ any) any {
		if arg.(*PhysAddr) == candidate {
			return alternative
		}
		return (*PhysAddr)(nil)
	}, dispatch.InstallOptions{})
	victim, err := sys.PhysSvc.Reclaim(candidate)
	if err != nil {
		t.Fatal(err)
	}
	if victim != alternative {
		t.Error("nomination ignored")
	}
	// The candidate survives; the alternative is gone.
	if _, err := sys.PhysSvc.IsDirty(candidate); err != nil {
		t.Errorf("candidate dead after nominated reclaim: %v", err)
	}
	if err := sys.PhysSvc.Deallocate(alternative); !errors.Is(err, ErrBadCapability) {
		t.Errorf("alternative still live: %v", err)
	}
}

func TestReclaimWithoutHandlers(t *testing.T) {
	sys := newVM(t)
	candidate, _ := sys.PhysSvc.Allocate(sal.PageSize, AnyAttrib)
	victim, err := sys.PhysSvc.Reclaim(candidate)
	if err != nil {
		t.Fatal(err)
	}
	if victim != candidate {
		t.Error("unhandled reclaim should take the candidate")
	}
}

func TestVirtAddrDistinct(t *testing.T) {
	sys := newVM(t)
	asid := sys.VirtSvc.NewASID()
	a, _ := sys.VirtSvc.Allocate(asid, 3*sal.PageSize, AnyAttrib)
	b, _ := sys.VirtSvc.Allocate(asid, sal.PageSize, AnyAttrib)
	if a.Start()+uint64(a.Size()) > b.Start() {
		t.Errorf("ranges overlap: %#x+%d vs %#x", a.Start(), a.Size(), b.Start())
	}
	other := sys.VirtSvc.NewASID()
	c, _ := sys.VirtSvc.Allocate(other, sal.PageSize, AnyAttrib)
	if c.ASID() == a.ASID() {
		t.Error("ASIDs not distinct")
	}
}

func TestAddMappingSizeMismatch(t *testing.T) {
	sys := newVM(t)
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	v, _ := sys.VirtSvc.Allocate(asid, 2*sal.PageSize, AnyAttrib)
	p, _ := sys.PhysSvc.Allocate(sal.PageSize, AnyAttrib)
	if err := sys.TransSvc.AddMapping(ctx, v, p, sal.ProtRead); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestDestroyContext(t *testing.T) {
	sys := newVM(t)
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	v, _ := sys.VirtSvc.Allocate(asid, sal.PageSize, AnyAttrib)
	p, _ := sys.PhysSvc.Allocate(sal.PageSize, AnyAttrib)
	_ = sys.TransSvc.AddMapping(ctx, v, p, sal.ProtRead)
	frame := p.frames[0]
	if sys.TransSvc.MappingsOf(frame) != 1 {
		t.Fatal("reverse map missing")
	}
	if err := sys.TransSvc.Destroy(ctx); err != nil {
		t.Fatal(err)
	}
	if sys.TransSvc.MappingsOf(frame) != 0 {
		t.Error("reverse map leaked after Destroy")
	}
	if err := sys.TransSvc.Destroy(ctx); !errors.Is(err, ErrBadCapability) {
		t.Errorf("double destroy err = %v", err)
	}
}

func TestProtCostShape(t *testing.T) {
	// Table 4 shape: Prot100 must cost far less than 100×Prot1 — a fixed
	// service overhead plus a small per-page cost.
	sys := newVM(t)
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	v1, _ := sys.VirtSvc.Allocate(asid, sal.PageSize, AnyAttrib)
	p1, _ := sys.PhysSvc.Allocate(sal.PageSize, AnyAttrib)
	_ = sys.TransSvc.AddMapping(ctx, v1, p1, sal.ProtRead|sal.ProtWrite)
	v100, _ := sys.VirtSvc.Allocate(asid, 100*sal.PageSize, AnyAttrib)
	p100, _ := sys.PhysSvc.Allocate(100*sal.PageSize, AnyAttrib)
	_ = sys.TransSvc.AddMapping(ctx, v100, p100, sal.ProtRead|sal.ProtWrite)

	start := sys.Clock.Now()
	_ = sys.TransSvc.Protect(ctx, v1, sal.ProtRead)
	prot1 := sys.Clock.Now().Sub(start)

	start = sys.Clock.Now()
	_ = sys.TransSvc.Protect(ctx, v100, sal.ProtRead)
	prot100 := sys.Clock.Now().Sub(start)

	if prot100 >= 100*prot1 {
		t.Errorf("no batching advantage: prot1=%v prot100=%v", prot1, prot100)
	}
	// Against the paper: ~16µs and ~213µs for SPIN.
	if prot1 < 10*sim.Microsecond || prot1 > 25*sim.Microsecond {
		t.Errorf("Prot1 = %v, want ≈16µs", prot1)
	}
	if prot100 < 150*sim.Microsecond || prot100 > 300*sim.Microsecond {
		t.Errorf("Prot100 = %v, want ≈213µs", prot100)
	}
}

func TestDemandZero(t *testing.T) {
	sys := newVM(t)
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	region, _ := sys.VirtSvc.Allocate(asid, 4*sal.PageSize, AnyAttrib)
	dz, err := NewDemandZero(sys, ctx, region, sal.ProtRead|sal.ProtWrite, domain.Identity{Name: "app"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		fault, _ := sys.Access(ctx, region.Start()+uint64(i)*sal.PageSize, sal.ProtWrite)
		if fault != nil {
			t.Fatalf("page %d: %v", i, fault.Kind)
		}
	}
	if dz.Faults != 4 {
		t.Errorf("materialized %d pages, want 4", dz.Faults)
	}
	// Second touch: no new faults.
	sys.Access(ctx, region.Start(), sal.ProtWrite)
	if dz.Faults != 4 {
		t.Error("already-mapped page refaulted")
	}
	dz.Disarm()
}

func TestDemandZeroGuardIsolation(t *testing.T) {
	// Faults in another context must not be serviced by this region's
	// handler.
	sys := newVM(t)
	ctxA := sys.TransSvc.Create()
	ctxB := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	region, _ := sys.VirtSvc.Allocate(asid, sal.PageSize, AnyAttrib)
	dz, _ := NewDemandZero(sys, ctxA, region, sal.ProtRead, domain.Identity{Name: "a"})
	// Mark the same range allocated in B so the same event is raised.
	_ = sys.TransSvc.MarkAllocated(ctxB, region)
	fault, _ := sys.Access(ctxB, region.Start(), sal.ProtRead)
	if fault == nil {
		t.Fatal("foreign context fault resolved by guarded handler")
	}
	if dz.Faults != 0 {
		t.Error("handler ran for foreign context")
	}
}

func TestAddressSpaceCopyOnWrite(t *testing.T) {
	sys := newVM(t)
	parent := NewAddressSpace(sys, domain.Identity{Name: "parent"})
	region, err := parent.AllocateMemory(2*sal.PageSize, sal.ProtRead|sal.ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the parent's first page before the fork.
	sys.Access(parent.Ctx, region.Start(), sal.ProtWrite)

	child, err := parent.Copy(domain.Identity{Name: "child"})
	if err != nil {
		t.Fatal(err)
	}
	// Both sides read without faulting.
	if f, _ := sys.Access(parent.Ctx, region.Start(), sal.ProtRead); f != nil {
		t.Fatalf("parent read: %v", f.Kind)
	}
	if f, _ := sys.Access(child.Ctx, region.Start(), sal.ProtRead); f != nil {
		t.Fatalf("child read: %v", f.Kind)
	}
	// Before any write both map the same frame.
	pf, _ := sys.TransSvc.FrameOf(parent.Ctx, region, 0)
	cf, _ := sys.TransSvc.FrameOf(child.Ctx, region, 0)
	if pf != cf {
		t.Fatal("COW did not share frames")
	}
	// Child writes: gets a private copy.
	if f, _ := sys.Access(child.Ctx, region.Start(), sal.ProtWrite); f != nil {
		t.Fatalf("child COW write: %v", f.Kind)
	}
	if child.CowFaults != 1 {
		t.Errorf("child COW faults = %d", child.CowFaults)
	}
	cf2, _ := sys.TransSvc.FrameOf(child.Ctx, region, 0)
	if cf2 == pf {
		t.Error("child write did not break sharing")
	}
	// Parent writes its (still-shared) page: its own COW fault.
	if f, _ := sys.Access(parent.Ctx, region.Start(), sal.ProtWrite); f != nil {
		t.Fatalf("parent COW write: %v", f.Kind)
	}
	if parent.CowFaults != 1 {
		t.Errorf("parent COW faults = %d", parent.CowFaults)
	}
	parent.Destroy()
	child.Destroy()
}

func TestMachTaskExtension(t *testing.T) {
	sys := newVM(t)
	task := NewTask(sys, domain.Identity{Name: "task"})
	addr, err := task.VMAllocate(3 * sal.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := sys.Access(task.AddressSpace().Ctx, addr, sal.ProtWrite); f != nil {
		t.Fatalf("write to vm_allocate'd memory: %v", f.Kind)
	}
	if err := task.VMProtect(addr, sal.ProtRead); err != nil {
		t.Fatal(err)
	}
	if f, _ := sys.Access(task.AddressSpace().Ctx, addr, sal.ProtWrite); f == nil {
		t.Fatal("write after vm_protect(read) succeeded")
	}
	if err := task.VMDeallocate(addr); err != nil {
		t.Fatal(err)
	}
	if err := task.VMProtect(addr, sal.ProtRead); err == nil {
		t.Error("vm_protect after deallocate succeeded")
	}
}

// Property: alloc/dealloc sequences conserve frames: free + in-use is
// constant, and no frame is handed out twice concurrently.
func TestAllocatorConservationProperty(t *testing.T) {
	if err := quick.Check(func(ops []uint8) bool {
		sys := newVM(t)
		totalFree := sys.PhysSvc.FreePages()
		var live []*PhysAddr
		owned := map[uint64]bool{}
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				p, err := sys.PhysSvc.Allocate(int64(op%8+1)*sal.PageSize, AnyAttrib)
				if err != nil {
					continue
				}
				for _, f := range p.frames {
					if owned[f] {
						return false // double allocation
					}
					owned[f] = true
				}
				live = append(live, p)
			} else {
				i := int(op) % len(live)
				p := live[i]
				for _, f := range p.frames {
					delete(owned, f)
				}
				if err := sys.PhysSvc.Deallocate(p); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if sys.PhysSvc.FreePages()+sys.PhysSvc.InUsePages() != totalFree {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestExamineMapping(t *testing.T) {
	sys := newVM(t)
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	v, _ := sys.VirtSvc.Allocate(asid, sal.PageSize, AnyAttrib)
	p, _ := sys.PhysSvc.Allocate(sal.PageSize, AnyAttrib)
	// Unmapped: ProtNone.
	prot, err := sys.TransSvc.ExamineMapping(ctx, v)
	if err != nil || prot != sal.ProtNone {
		t.Errorf("unmapped examine = %v, %v", prot, err)
	}
	_ = sys.TransSvc.AddMapping(ctx, v, p, sal.ProtRead|sal.ProtExec)
	prot, err = sys.TransSvc.ExamineMapping(ctx, v)
	if err != nil || prot != sal.ProtRead|sal.ProtExec {
		t.Errorf("examine = %v, %v", prot, err)
	}
	if _, err := sys.TransSvc.ExamineMapping(nil, v); !errors.Is(err, ErrBadCapability) {
		t.Errorf("nil ctx: %v", err)
	}
}

func TestProtectPageSingle(t *testing.T) {
	sys := newVM(t)
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	v, _ := sys.VirtSvc.Allocate(asid, 2*sal.PageSize, AnyAttrib)
	p, _ := sys.PhysSvc.Allocate(2*sal.PageSize, AnyAttrib)
	_ = sys.TransSvc.AddMapping(ctx, v, p, sal.ProtRead|sal.ProtWrite)
	if err := sys.TransSvc.ProtectPage(ctx, v, 1, sal.ProtRead); err != nil {
		t.Fatal(err)
	}
	// Page 0 still writable, page 1 not.
	if f, _ := sys.Access(ctx, v.Start(), sal.ProtWrite); f != nil {
		t.Error("page 0 lost write access")
	}
	if f, _ := sys.Access(ctx, v.Start()+sal.PageSize, sal.ProtWrite); f == nil {
		t.Error("page 1 kept write access")
	}
	if err := sys.TransSvc.ProtectPage(ctx, v, 5, sal.ProtRead); !errors.Is(err, ErrBadCapability) {
		t.Errorf("out-of-range page: %v", err)
	}
}

func TestCapabilityAccessors(t *testing.T) {
	sys := newVM(t)
	p, _ := sys.PhysSvc.Allocate(3*sal.PageSize, AnyAttrib)
	if p.Size() != 3*sal.PageSize || p.Pages() != 3 {
		t.Errorf("size=%d pages=%d", p.Size(), p.Pages())
	}
	ctx := sys.TransSvc.Create()
	if ctx.ID() == 0 {
		t.Error("context id zero")
	}
}

func TestVirtAddrDeallocateRemovesMappings(t *testing.T) {
	sys := newVM(t)
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	v, _ := sys.VirtSvc.Allocate(asid, sal.PageSize, AnyAttrib)
	p, _ := sys.PhysSvc.Allocate(sal.PageSize, AnyAttrib)
	_ = sys.TransSvc.AddMapping(ctx, v, p, sal.ProtRead)
	if err := sys.VirtSvc.Deallocate(v); err != nil {
		t.Fatal(err)
	}
	if sys.TransSvc.MappingsOf(p.frames[0]) != 0 {
		t.Error("mappings survived virtual deallocation")
	}
	if err := sys.VirtSvc.Deallocate(v); !errors.Is(err, ErrBadCapability) {
		t.Errorf("double dealloc: %v", err)
	}
}

func TestTaskDeallocateMissingRegion(t *testing.T) {
	sys := newVM(t)
	task := NewTask(sys, domain.Identity{Name: "t"})
	if err := task.VMDeallocate(0xdeadbeef); err == nil {
		t.Error("dealloc of unmapped address succeeded")
	}
}
