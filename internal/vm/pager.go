package vm

import (
	"fmt"

	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/faultinject"
	"spin/internal/sal"
)

// Pager is a demand-paging extension with a disk backing store — the
// canonical composition §4.1 names ("Implementors of higher level memory
// management abstractions can use these events to define services, such as
// demand paging"). It bounds a region's resident set: page faults bring
// pages in (from swap if previously evicted), and crossing the resident
// limit evicts a victim to swap, chosen by a second-chance (clock)
// policy over the hardware referenced bits.
type Pager struct {
	sys    *System
	disk   *sal.Disk
	ctx    *Context
	region *VirtAddr
	prot   sal.Prot
	ident  domain.Identity

	// MaxResident bounds the region's resident pages.
	MaxResident int

	// resident maps page index -> backing physical capability.
	resident map[int]*PhysAddr
	// swapSlot maps page index -> disk block holding its contents.
	swapSlot map[int]int64
	// clockHand iterates page indices for second-chance eviction.
	clockOrder []int
	clockHand  int
	nextBlock  int64
	ref        dispatch.HandlerRef

	// Faults, SwapIns and Evictions expose behaviour.
	Faults    int
	SwapIns   int
	Evictions int
}

// NewPager arms demand paging with backing store over region in ctx,
// keeping at most maxResident pages resident. swapBase is the first disk
// block of the region's swap area.
func NewPager(sys *System, disk *sal.Disk, ctx *Context, region *VirtAddr,
	prot sal.Prot, maxResident int, swapBase int64, installer domain.Identity) (*Pager, error) {
	if maxResident < 1 {
		return nil, fmt.Errorf("vm: pager needs maxResident >= 1")
	}
	pg := &Pager{
		sys:         sys,
		disk:        disk,
		ctx:         ctx,
		region:      region,
		prot:        prot,
		ident:       installer,
		MaxResident: maxResident,
		resident:    make(map[int]*PhysAddr),
		swapSlot:    make(map[int]int64),
		nextBlock:   swapBase,
	}
	if err := sys.TransSvc.MarkAllocated(ctx, region); err != nil {
		return nil, err
	}
	lo, hi := region.VPN(0), region.VPN(region.Pages()-1)
	ref, err := sys.Disp.Install(EvPageNotPresent, func(arg, _ any) any {
		f := arg.(*sal.Fault)
		return pg.fault(int(f.VPN - lo))
	}, dispatch.InstallOptions{
		Installer: installer,
		Guard: func(arg any) bool {
			f, ok := arg.(*sal.Fault)
			return ok && f.Context == ctx.id && f.VPN >= lo && f.VPN <= hi
		},
	})
	if err != nil {
		return nil, err
	}
	pg.ref = ref
	return pg, nil
}

// fault brings one page in, evicting first if the resident set is full.
// Each fault is one sample in the "vm.pager.fault" latency series when
// tracing is enabled — the disk transfer and mapping costs it covers are
// what the paper's Table 4 measures.
func (pg *Pager) fault(page int) bool {
	// Injection site "vm.pager.fault": error/drop fails the page-in (the
	// faulting access is denied, as on backing-store failure); a panic rule
	// exercises the dispatcher's handler containment.
	if f := pg.sys.Disp.InjectorInstalled().Fire("vm.pager.fault"); f.Kind == faultinject.KindError || f.Kind == faultinject.KindDrop {
		return false
	}
	if tr := pg.sys.Disp.Tracer(); tr != nil {
		start := pg.sys.Clock.Now()
		defer func() {
			tr.Observe("vm.pager.fault", pg.sys.Clock.Now().Sub(start))
		}()
	}
	pg.Faults++
	if len(pg.resident) >= pg.MaxResident {
		if !pg.evictOne() {
			return false
		}
	}
	p, err := pg.sys.PhysSvc.Allocate(sal.PageSize, AnyAttrib)
	if err != nil {
		return false
	}
	// Swap-in if this page was evicted before; zero-fill otherwise.
	if slot, ok := pg.swapSlot[page]; ok {
		_ = pg.disk.ReadBlock(slot)
		pg.SwapIns++
	}
	if err := pg.sys.TransSvc.MapPage(pg.ctx, pg.region, page, p, 0, pg.prot); err != nil {
		_ = pg.sys.PhysSvc.Deallocate(p)
		return false
	}
	pg.resident[page] = p
	pg.clockOrder = append(pg.clockOrder, page)
	return true
}

// evictOne writes a victim to swap and unmaps it, using second-chance over
// the hardware referenced bits.
func (pg *Pager) evictOne() bool {
	for sweep := 0; sweep < 2*len(pg.clockOrder)+1; sweep++ {
		if len(pg.clockOrder) == 0 {
			return false
		}
		pg.clockHand %= len(pg.clockOrder)
		page := pg.clockOrder[pg.clockHand]
		p, ok := pg.resident[page]
		if !ok {
			pg.clockOrder = append(pg.clockOrder[:pg.clockHand], pg.clockOrder[pg.clockHand+1:]...)
			continue
		}
		fr, err := pg.sys.Phys.Frame(p.frames[0])
		if err == nil && fr.Referenced {
			// Second chance: clear and advance.
			fr.Referenced = false
			pg.clockHand++
			continue
		}
		return pg.evict(page, p)
	}
	// Everything referenced twice around: take the hand's page.
	page := pg.clockOrder[pg.clockHand%len(pg.clockOrder)]
	return pg.evict(page, pg.resident[page])
}

func (pg *Pager) evict(page int, p *PhysAddr) bool {
	slot, ok := pg.swapSlot[page]
	if !ok {
		slot = pg.nextBlock
		pg.nextBlock++
		pg.swapSlot[page] = slot
	}
	pg.disk.WriteBlock(slot, nil) // page-out: the transfer cost is the point
	if err := pg.sys.TransSvc.UnmapPage(pg.ctx, pg.region, page); err != nil {
		return false
	}
	if err := pg.sys.PhysSvc.Deallocate(p); err != nil {
		return false
	}
	delete(pg.resident, page)
	for i, v := range pg.clockOrder {
		if v == page {
			pg.clockOrder = append(pg.clockOrder[:i], pg.clockOrder[i+1:]...)
			break
		}
	}
	pg.Evictions++
	return true
}

// Resident reports the resident page count.
func (pg *Pager) Resident() int { return len(pg.resident) }

// IsResident reports whether page index i is mapped.
func (pg *Pager) IsResident(i int) bool {
	_, ok := pg.resident[i]
	return ok
}

// Disarm removes the pager's fault handler.
func (pg *Pager) Disarm() { _ = pg.sys.Disp.Remove(pg.ref) }
