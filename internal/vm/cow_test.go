package vm

import (
	"testing"

	"spin/internal/domain"
	"spin/internal/sal"
)

// Deeper copy-on-write scenarios.

func TestForkChainThreeGenerations(t *testing.T) {
	sys := newVM(t)
	gen1 := NewAddressSpace(sys, domain.Identity{Name: "gen1"})
	region, err := gen1.AllocateMemory(2*sal.PageSize, sal.ProtRead|sal.ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	sys.Access(gen1.Ctx, region.Start(), sal.ProtWrite)

	gen2, err := gen1.Copy(domain.Identity{Name: "gen2"})
	if err != nil {
		t.Fatal(err)
	}
	gen3, err := gen2.Copy(domain.Identity{Name: "gen3"})
	if err != nil {
		t.Fatal(err)
	}

	// All three read the same frame.
	f1, _ := sys.TransSvc.FrameOf(gen1.Ctx, region, 0)
	f2, _ := sys.TransSvc.FrameOf(gen2.Ctx, region, 0)
	f3, _ := sys.TransSvc.FrameOf(gen3.Ctx, region, 0)
	if f1 != f2 || f2 != f3 {
		t.Fatalf("generations not sharing: %d %d %d", f1, f2, f3)
	}

	// The grandchild writes: only it splits.
	if f, _ := sys.Access(gen3.Ctx, region.Start(), sal.ProtWrite); f != nil {
		t.Fatalf("gen3 write: %v", f.Kind)
	}
	nf3, _ := sys.TransSvc.FrameOf(gen3.Ctx, region, 0)
	nf1, _ := sys.TransSvc.FrameOf(gen1.Ctx, region, 0)
	nf2, _ := sys.TransSvc.FrameOf(gen2.Ctx, region, 0)
	if nf3 == f1 {
		t.Error("gen3 did not split")
	}
	if nf1 != f1 || nf2 != f2 {
		t.Error("gen1/gen2 frames changed by gen3's write")
	}

	// Then the parent writes: it splits too; gen2 keeps the original.
	if f, _ := sys.Access(gen1.Ctx, region.Start(), sal.ProtWrite); f != nil {
		t.Fatalf("gen1 write: %v", f.Kind)
	}
	wf1, _ := sys.TransSvc.FrameOf(gen1.Ctx, region, 0)
	wf2, _ := sys.TransSvc.FrameOf(gen2.Ctx, region, 0)
	if wf1 == wf2 {
		t.Error("gen1 write did not split from gen2")
	}
	gen1.Destroy()
	gen2.Destroy()
	gen3.Destroy()
}

func TestCOWSecondPageIndependent(t *testing.T) {
	sys := newVM(t)
	parent := NewAddressSpace(sys, domain.Identity{Name: "p"})
	region, _ := parent.AllocateMemory(4*sal.PageSize, sal.ProtRead|sal.ProtWrite)
	child, err := parent.Copy(domain.Identity{Name: "c"})
	if err != nil {
		t.Fatal(err)
	}
	// Child writes page 2 only.
	if f, _ := sys.Access(child.Ctx, region.Start()+2*sal.PageSize, sal.ProtWrite); f != nil {
		t.Fatalf("write: %v", f.Kind)
	}
	for i := 0; i < 4; i++ {
		pf, _ := sys.TransSvc.FrameOf(parent.Ctx, region, i)
		cf, _ := sys.TransSvc.FrameOf(child.Ctx, region, i)
		if i == 2 && pf == cf {
			t.Errorf("page 2 still shared")
		}
		if i != 2 && pf != cf {
			t.Errorf("page %d split without a write", i)
		}
	}
	if child.CowFaults != 1 {
		t.Errorf("cow faults = %d", child.CowFaults)
	}
}

func TestReclaimSharedCOWFrame(t *testing.T) {
	// Reclaiming physical memory that backs a COW-shared page must
	// invalidate the mapping in every sharing context.
	sys := newVM(t)
	parent := NewAddressSpace(sys, domain.Identity{Name: "p"})
	region, _ := parent.AllocateMemory(sal.PageSize, sal.ProtRead|sal.ProtWrite)
	child, _ := parent.Copy(domain.Identity{Name: "c"})

	frame, _ := sys.TransSvc.FrameOf(parent.Ctx, region, 0)
	if sys.TransSvc.MappingsOf(frame) != 2 {
		t.Fatalf("mappings = %d, want 2", sys.TransSvc.MappingsOf(frame))
	}
	// Find the PhysAddr capability backing the region (it is the
	// parent's first allocation).
	victim := parent.regions[0].p
	if _, err := sys.PhysSvc.Reclaim(victim); err != nil {
		t.Fatal(err)
	}
	if sys.TransSvc.MappingsOf(frame) != 0 {
		t.Errorf("mappings survived reclaim: %d", sys.TransSvc.MappingsOf(frame))
	}
	// Both sides now fault (and their COW handlers cannot resolve a
	// missing frame, so the fault surfaces).
	if f, _ := sys.Access(parent.Ctx, region.Start(), sal.ProtRead); f == nil {
		t.Error("parent mapping survived reclaim")
	}
	if f, _ := sys.Access(child.Ctx, region.Start(), sal.ProtRead); f == nil {
		t.Error("child mapping survived reclaim")
	}
}

func TestCOWReadOnlyRegionNeverSplits(t *testing.T) {
	sys := newVM(t)
	parent := NewAddressSpace(sys, domain.Identity{Name: "p"})
	text, _ := parent.AllocateMemory(sal.PageSize, sal.ProtRead|sal.ProtExec)
	child, _ := parent.Copy(domain.Identity{Name: "c"})
	// Reads on both sides: no faults, no splits.
	if f, _ := sys.Access(parent.Ctx, text.Start(), sal.ProtRead); f != nil {
		t.Fatalf("parent read: %v", f.Kind)
	}
	if f, _ := sys.Access(child.Ctx, text.Start(), sal.ProtRead); f != nil {
		t.Fatalf("child read: %v", f.Kind)
	}
	pf, _ := sys.TransSvc.FrameOf(parent.Ctx, text, 0)
	cf, _ := sys.TransSvc.FrameOf(child.Ctx, text, 0)
	if pf != cf {
		t.Error("read-only region split")
	}
	// A write to the read-only region faults and stays faulted (the COW
	// handler only covers shared writable regions).
	if f, _ := sys.Access(child.Ctx, text.Start(), sal.ProtWrite); f == nil {
		t.Error("write to read-only text succeeded")
	}
}

func TestFreePagesConservedAcrossForkLifecycle(t *testing.T) {
	sys := newVM(t)
	before := sys.PhysSvc.FreePages()
	parent := NewAddressSpace(sys, domain.Identity{Name: "p"})
	region, _ := parent.AllocateMemory(4*sal.PageSize, sal.ProtRead|sal.ProtWrite)
	child, _ := parent.Copy(domain.Identity{Name: "c"})
	// Child splits two pages.
	sys.Access(child.Ctx, region.Start(), sal.ProtWrite)
	sys.Access(child.Ctx, region.Start()+sal.PageSize, sal.ProtWrite)
	parent.Destroy()
	child.Destroy()
	// Destroy tears down contexts; physical pages are still owned by
	// their capabilities. Release them through the service.
	for _, r := range append(parent.regions, child.regions...) {
		_ = sys.PhysSvc.Deallocate(r.p)
	}
	// The child's split pages were allocated by the COW handler and held
	// in its cowPrivate list.
	for _, p := range child.cowPrivate {
		_ = sys.PhysSvc.Deallocate(p)
	}
	if got := sys.PhysSvc.FreePages(); got != before {
		t.Errorf("free pages = %d, want %d (leak of %d)", got, before, before-got)
	}
}
