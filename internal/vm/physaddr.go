package vm

import (
	"spin/internal/sal"
	"spin/internal/sim"
)

// Attrib expresses machine-specific allocation preferences (paper: "an
// optional series of attributes that reflect preferences for machine
// specific parameters such as color or contiguity").
type Attrib struct {
	// Color requests frames of one cache color; -1 means any.
	Color int
	// Contiguous requests physically contiguous frames.
	Contiguous bool
}

// AnyAttrib is the default: any color, no contiguity.
var AnyAttrib = Attrib{Color: -1}

// PhysAddr is a capability for physical memory (PhysAddr.T). A physical
// page "is not, for most purposes, a nameable entity"; clients hold this
// capability, not frame numbers. Frames are reachable only by the
// translation service.
type PhysAddr struct {
	frames []uint64
	owner  *PhysAddrService
	dead   bool
}

// Pages reports the number of frames backing the capability.
func (p *PhysAddr) Pages() int { return len(p.frames) }

// Size reports the backing size in bytes.
func (p *PhysAddr) Size() int64 { return int64(len(p.frames)) * sal.PageSize }

// PhysAddrService controls the use and allocation of physical pages.
type PhysAddrService struct {
	sys      *System
	free     map[int][]uint64 // per-color free lists
	liveCaps map[*PhysAddr]bool
	total    int
	inUse    int
}

func newPhysAddrService(sys *System) *PhysAddrService {
	svc := &PhysAddrService{
		sys:      sys,
		free:     make(map[int][]uint64),
		liveCaps: make(map[*PhysAddr]bool),
		total:    sys.Phys.NumFrames(),
	}
	// Seed free lists; low frames are reserved for the kernel image
	// (first 2 MB), as on real hardware.
	reserved := (2 << 20) / sal.PageSize
	for f := reserved; f < sys.Phys.NumFrames(); f++ {
		fr, _ := sys.Phys.Frame(uint64(f))
		svc.free[fr.Color] = append(svc.free[fr.Color], uint64(f))
	}
	return svc
}

// Allocate grants a capability for size bytes (rounded up to whole pages) of
// physical memory satisfying attrib. Raising Allocate costs a procedure
// call plus per-frame bookkeeping.
func (svc *PhysAddrService) Allocate(size int64, attrib Attrib) (*PhysAddr, error) {
	svc.sys.Clock.Advance(svc.sys.Profile.CrossDomainCall)
	pages := int((size + sal.PageSize - 1) / sal.PageSize)
	if pages == 0 {
		pages = 1
	}
	frames, err := svc.take(pages, attrib)
	if err != nil {
		return nil, err
	}
	svc.sys.Clock.Advance(sim.Duration(pages) * 200)
	for _, f := range frames {
		fr, _ := svc.sys.Phys.Frame(f)
		fr.InUse = true
		fr.Dirty = false
		fr.Referenced = false
	}
	cap := &PhysAddr{frames: frames, owner: svc}
	svc.liveCaps[cap] = true
	svc.inUse += pages
	return cap, nil
}

func (svc *PhysAddrService) take(pages int, attrib Attrib) ([]uint64, error) {
	if attrib.Contiguous {
		return svc.takeContiguous(pages)
	}
	frames := make([]uint64, 0, pages)
	if attrib.Color >= 0 {
		list := svc.free[attrib.Color]
		if len(list) < pages {
			return nil, ErrNoMemory
		}
		frames = append(frames, list[:pages]...)
		svc.free[attrib.Color] = list[pages:]
		return frames, nil
	}
	for color := 0; color < sal.NumColors && len(frames) < pages; color++ {
		list := svc.free[color]
		for len(list) > 0 && len(frames) < pages {
			frames = append(frames, list[0])
			list = list[1:]
		}
		svc.free[color] = list
	}
	if len(frames) < pages {
		svc.putBack(frames)
		return nil, ErrNoMemory
	}
	return frames, nil
}

// takeContiguous scans free frames for a physically contiguous run.
func (svc *PhysAddrService) takeContiguous(pages int) ([]uint64, error) {
	avail := make(map[uint64]bool)
	for _, list := range svc.free {
		for _, f := range list {
			avail[f] = true
		}
	}
	for start := range avail {
		run := true
		for i := 1; i < pages; i++ {
			if !avail[start+uint64(i)] {
				run = false
				break
			}
		}
		if !run {
			continue
		}
		frames := make([]uint64, pages)
		for i := range frames {
			frames[i] = start + uint64(i)
		}
		svc.removeFromFree(frames)
		return frames, nil
	}
	return nil, ErrNoMemory
}

func (svc *PhysAddrService) removeFromFree(frames []uint64) {
	victim := make(map[uint64]bool, len(frames))
	for _, f := range frames {
		victim[f] = true
	}
	for color, list := range svc.free {
		out := list[:0]
		for _, f := range list {
			if !victim[f] {
				out = append(out, f)
			}
		}
		svc.free[color] = out
	}
}

func (svc *PhysAddrService) putBack(frames []uint64) {
	for _, f := range frames {
		fr, _ := svc.sys.Phys.Frame(f)
		fr.InUse = false
		svc.free[fr.Color] = append(svc.free[fr.Color], f)
	}
}

// Deallocate returns the capability's memory. The translation service first
// invalidates any mappings to it, so a client cannot keep a usable mapping
// to memory it no longer owns.
func (svc *PhysAddrService) Deallocate(p *PhysAddr) error {
	svc.sys.Clock.Advance(svc.sys.Profile.CrossDomainCall)
	if p == nil || p.dead || !svc.liveCaps[p] {
		return badCap("PhysAddr.T")
	}
	svc.sys.TransSvc.invalidateFrames(p.frames)
	svc.putBack(p.frames)
	svc.inUse -= len(p.frames)
	delete(svc.liveCaps, p)
	p.dead = true
	return nil
}

// Reclaim asks to reclaim the candidate page. Handlers of the
// PhysAddr.Reclaim event may nominate an alternative, which is reclaimed
// instead; any mappings to the reclaimed memory are invalidated. It returns
// the capability actually reclaimed.
func (svc *PhysAddrService) Reclaim(candidate *PhysAddr) (*PhysAddr, error) {
	if candidate == nil || candidate.dead || !svc.liveCaps[candidate] {
		return nil, badCap("PhysAddr.T")
	}
	victim := candidate
	if alt, ok := svc.sys.Disp.Raise(EvReclaim, candidate).(*PhysAddr); ok && alt != nil {
		if !alt.dead && svc.liveCaps[alt] {
			victim = alt
		}
	}
	if err := svc.Deallocate(victim); err != nil {
		return nil, err
	}
	return victim, nil
}

// IsDirty reports whether any frame backing p has been written through a
// mapping — the Table 4 "Dirty" query, a facility the comparison systems do
// not export.
func (svc *PhysAddrService) IsDirty(p *PhysAddr) (bool, error) {
	svc.sys.Clock.Advance(svc.sys.Profile.CrossDomainCall)
	svc.sys.Clock.Advance(svc.sys.Profile.VMQueryCost)
	if p == nil || p.dead {
		return false, badCap("PhysAddr.T")
	}
	for _, f := range p.frames {
		fr, err := svc.sys.Phys.Frame(f)
		if err != nil {
			return false, err
		}
		if fr.Dirty {
			return true, nil
		}
	}
	return false, nil
}

// FreePages reports the number of free frames.
func (svc *PhysAddrService) FreePages() int {
	n := 0
	for _, list := range svc.free {
		n += len(list)
	}
	return n
}

// InUsePages reports the number of allocated frames.
func (svc *PhysAddrService) InUsePages() int { return svc.inUse }
