package vm_test

import (
	"fmt"

	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/sal"
	"spin/internal/sim"
	"spin/internal/vm"
)

func newSystem() *vm.System {
	eng := sim.NewEngine()
	disp := dispatch.New(eng, &sim.SPINProfile)
	mmu := sal.NewMMU(eng.Clock, &sim.SPINProfile)
	phys := sal.NewPhysMem(64 << 20)
	sys, err := vm.New(eng, &sim.SPINProfile, disp, mmu, phys)
	if err != nil {
		panic(err)
	}
	return sys
}

// Example composes the three decomposed services exactly as §4 describes:
// "allocate a single virtual page, a physical page, and then create a
// mapping between the two".
func Example() {
	sys := newSystem()
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()

	v, _ := sys.VirtSvc.Allocate(asid, sal.PageSize, vm.AnyAttrib)
	p, _ := sys.PhysSvc.Allocate(sal.PageSize, vm.AnyAttrib)
	_ = sys.TransSvc.AddMapping(ctx, v, p, sal.ProtRead|sal.ProtWrite)

	if fault, _ := sys.Access(ctx, v.Start(), sal.ProtWrite); fault == nil {
		fmt.Println("mapped and writable")
	}
	dirty, _ := sys.PhysSvc.IsDirty(p)
	fmt.Println("dirty:", dirty)
	// Output:
	// mapped and writable
	// dirty: true
}

// Example_demandPaging arms the zero-fill extension: pages materialize on
// first touch through the Translation.PageNotPresent event.
func Example_demandPaging() {
	sys := newSystem()
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	region, _ := sys.VirtSvc.Allocate(asid, 4*sal.PageSize, vm.AnyAttrib)
	dz, _ := vm.NewDemandZero(sys, ctx, region, sal.ProtRead|sal.ProtWrite,
		domain.Identity{Name: "app"})

	for i := 0; i < 3; i++ {
		sys.Access(ctx, region.Start()+uint64(i)*sal.PageSize, sal.ProtWrite)
	}
	fmt.Println("pages materialized:", dz.Faults)
	// Output: pages materialized: 3
}
