package vm

import (
	"testing"

	"spin/internal/domain"
	"spin/internal/sal"
)

func newBarrierRig(t *testing.T, pages int) (*System, *WriteBarrier, *Context, *VirtAddr) {
	t.Helper()
	sys := newVM(t)
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	region, _ := sys.VirtSvc.Allocate(asid, int64(pages)*sal.PageSize, AnyAttrib)
	phys, _ := sys.PhysSvc.Allocate(int64(pages)*sal.PageSize, AnyAttrib)
	if err := sys.TransSvc.AddMapping(ctx, region, phys, sal.ProtRead|sal.ProtWrite); err != nil {
		t.Fatal(err)
	}
	wb, err := NewWriteBarrier(sys, ctx, region, domain.Identity{Name: "gc"})
	if err != nil {
		t.Fatal(err)
	}
	return sys, wb, ctx, region
}

func TestWriteBarrierTracksExactDirtySet(t *testing.T) {
	sys, wb, ctx, region := newBarrierRig(t, 8)
	for _, page := range []int{1, 5, 6} {
		if f, _ := sys.Access(ctx, region.Start()+uint64(page)*sal.PageSize, sal.ProtWrite); f != nil {
			t.Fatalf("write %d: %v", page, f.Kind)
		}
	}
	got := wb.DirtyPages()
	want := []int{1, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("dirty = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dirty = %v, want %v", got, want)
		}
	}
	if wb.BarrierFaults != 3 {
		t.Errorf("faults = %d", wb.BarrierFaults)
	}
}

func TestWriteBarrierFaultsOncePerPage(t *testing.T) {
	sys, wb, ctx, region := newBarrierRig(t, 4)
	for i := 0; i < 10; i++ {
		if f, _ := sys.Access(ctx, region.Start(), sal.ProtWrite); f != nil {
			t.Fatalf("write %d: %v", i, f.Kind)
		}
	}
	if wb.BarrierFaults != 1 {
		t.Errorf("faults = %d, want 1 (page opened after the first)", wb.BarrierFaults)
	}
}

func TestWriteBarrierReadsFree(t *testing.T) {
	sys, wb, ctx, region := newBarrierRig(t, 4)
	if f, _ := sys.Access(ctx, region.Start(), sal.ProtRead); f != nil {
		t.Fatalf("read under barrier faulted: %v", f.Kind)
	}
	if len(wb.DirtyPages()) != 0 {
		t.Error("read marked a page dirty")
	}
}

func TestWriteBarrierPhases(t *testing.T) {
	sys, wb, ctx, region := newBarrierRig(t, 4)
	sys.Access(ctx, region.Start(), sal.ProtWrite)
	if err := wb.ResetPhase(); err != nil {
		t.Fatal(err)
	}
	if len(wb.DirtyPages()) != 0 {
		t.Error("dirty set survived phase reset")
	}
	// The same page faults again in the new phase.
	before := wb.BarrierFaults
	sys.Access(ctx, region.Start(), sal.ProtWrite)
	if wb.BarrierFaults != before+1 {
		t.Error("page not re-protected by ResetPhase")
	}
	if wb.DirtyPages()[0] != 0 {
		t.Errorf("dirty = %v", wb.DirtyPages())
	}
}

func TestWriteBarrierDisarm(t *testing.T) {
	sys, wb, ctx, region := newBarrierRig(t, 4)
	if err := wb.Disarm(); err != nil {
		t.Fatal(err)
	}
	if f, _ := sys.Access(ctx, region.Start(), sal.ProtWrite); f != nil {
		t.Fatalf("write after disarm faulted: %v", f.Kind)
	}
	if wb.BarrierFaults != 0 {
		t.Error("disarmed barrier took a fault")
	}
}

func TestWriteBarrierCostShape(t *testing.T) {
	// The barrier's per-phase cost is the Appel2 shape: one batched
	// protect plus one fault+resolve per written page.
	sys, wb, ctx, region := newBarrierRig(t, 8)
	start := sys.Clock.Now()
	for page := 0; page < 8; page++ {
		sys.Access(ctx, region.Start()+uint64(page)*sal.PageSize, sal.ProtWrite)
	}
	perPage := sys.Clock.Now().Sub(start) / 8
	// Table 4's Appel2 for SPIN is ~29-36µs/page.
	if perPage.Micros() < 15 || perPage.Micros() > 60 {
		t.Errorf("per-page barrier cost = %v, want ≈30µs (Appel2 shape)", perPage)
	}
	_ = wb
}
