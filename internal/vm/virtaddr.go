package vm

import (
	"spin/internal/sal"
)

// VirtAddr is a capability for a range of virtual addresses (VirtAddr.T):
// "composed of a virtual address, a length, and an address space identifier
// that makes the address unique".
type VirtAddr struct {
	start uint64
	size  int64
	asid  uint64
	owner *VirtAddrService
	dead  bool
}

// Start returns the first virtual address of the range.
func (v *VirtAddr) Start() uint64 { return v.start }

// Size returns the range length in bytes.
func (v *VirtAddr) Size() int64 { return v.size }

// ASID returns the address space identifier qualifying the range.
func (v *VirtAddr) ASID() uint64 { return v.asid }

// Pages returns the number of pages in the range.
func (v *VirtAddr) Pages() int { return int(v.size / sal.PageSize) }

// VPN returns the virtual page number of page i of the range.
func (v *VirtAddr) VPN(i int) uint64 { return (v.start >> sal.PageShift) + uint64(i) }

// VirtAddrService allocates capabilities for virtual addresses.
type VirtAddrService struct {
	sys *System
	// next is the per-ASID bump pointer. User ranges start above the
	// kernel reservation.
	next     map[uint64]uint64
	nextASID uint64
	live     map[*VirtAddr]bool
}

// userBase is the lowest user virtual address handed out.
const userBase = 1 << 24 // 16 MB

func newVirtAddrService(sys *System) *VirtAddrService {
	return &VirtAddrService{
		sys:      sys,
		next:     make(map[uint64]uint64),
		nextASID: 1,
		live:     make(map[*VirtAddr]bool),
	}
}

// NewASID mints a fresh address-space identifier.
func (svc *VirtAddrService) NewASID() uint64 {
	id := svc.nextASID
	svc.nextASID++
	svc.next[id] = userBase
	return id
}

// Allocate grants a capability for size bytes (rounded up to whole pages) of
// virtual address range in the given address space.
func (svc *VirtAddrService) Allocate(asid uint64, size int64, _ Attrib) (*VirtAddr, error) {
	svc.sys.Clock.Advance(svc.sys.Profile.CrossDomainCall)
	if size <= 0 {
		size = sal.PageSize
	}
	size = (size + sal.PageSize - 1) &^ (sal.PageSize - 1)
	cur, ok := svc.next[asid]
	if !ok {
		cur = userBase
	}
	const ceiling = uint64(1) << 42
	if cur+uint64(size) > ceiling {
		return nil, ErrNoSpace
	}
	v := &VirtAddr{start: cur, size: size, asid: asid, owner: svc}
	svc.next[asid] = cur + uint64(size)
	svc.live[v] = true
	return v, nil
}

// Deallocate releases the range; the translation service removes any
// mappings within it first.
func (svc *VirtAddrService) Deallocate(v *VirtAddr) error {
	svc.sys.Clock.Advance(svc.sys.Profile.CrossDomainCall)
	if v == nil || v.dead || !svc.live[v] {
		return badCap("VirtAddr.T")
	}
	svc.sys.TransSvc.removeRangeEverywhere(v)
	delete(svc.live, v)
	v.dead = true
	return nil
}
