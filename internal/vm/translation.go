package vm

import (
	"fmt"

	"spin/internal/sal"
)

// Context is a capability for an addressing context (Translation.T).
type Context struct {
	id    uint64
	owner *TranslationService
	dead  bool
}

// ID exposes the underlying MMU context id for diagnostic use.
func (c *Context) ID() uint64 { return c.id }

// mapping records one page mapped in one context, for reverse lookups.
type mapping struct {
	ctx *Context
	vpn uint64
}

// TranslationService expresses the relationship between virtual addresses
// and physical memory: it interprets references to both, constructs
// mappings, and installs them into the MMU. It raises the
// Translation.{PageNotPresent,BadAddress,ProtectionFault} events on
// exceptional MMU conditions (via System.Access).
type TranslationService struct {
	sys  *System
	live map[*Context]bool
	// reverse maps frame -> mappings, so reclaimed or deallocated
	// physical memory can have all its mappings invalidated.
	reverse map[uint64][]mapping
	// backing maps (ctx,vpn) -> frame, so removals can update reverse.
	backing map[uint64]map[uint64]uint64
}

func newTranslationService(sys *System) *TranslationService {
	return &TranslationService{
		sys:     sys,
		live:    make(map[*Context]bool),
		reverse: make(map[uint64][]mapping),
		backing: make(map[uint64]map[uint64]uint64),
	}
}

// Create allocates a new addressing context.
func (svc *TranslationService) Create() *Context {
	svc.sys.Clock.Advance(svc.sys.Profile.CrossDomainCall)
	ctx := &Context{id: svc.sys.MMU.CreateContext(), owner: svc}
	svc.live[ctx] = true
	svc.backing[ctx.id] = make(map[uint64]uint64)
	return ctx
}

// Destroy tears down a context and all its mappings.
func (svc *TranslationService) Destroy(ctx *Context) error {
	svc.sys.Clock.Advance(svc.sys.Profile.CrossDomainCall)
	if ctx == nil || ctx.dead || !svc.live[ctx] {
		return badCap("Translation.T")
	}
	for vpn, frame := range svc.backing[ctx.id] {
		svc.dropReverse(frame, ctx, vpn)
	}
	delete(svc.backing, ctx.id)
	_ = svc.sys.MMU.DestroyContext(ctx.id)
	delete(svc.live, ctx)
	ctx.dead = true
	return nil
}

// AddMapping maps the pages of v onto the frames of p in ctx with the given
// protection. v and p must cover the same number of pages.
func (svc *TranslationService) AddMapping(ctx *Context, v *VirtAddr, p *PhysAddr, prot sal.Prot) error {
	svc.sys.Clock.Advance(svc.sys.Profile.CrossDomainCall)
	if err := svc.check(ctx); err != nil {
		return err
	}
	if v == nil || v.dead {
		return badCap("VirtAddr.T")
	}
	if p == nil || p.dead {
		return badCap("PhysAddr.T")
	}
	if v.Pages() != p.Pages() {
		return fmt.Errorf("vm: AddMapping size mismatch: %d virtual pages, %d physical", v.Pages(), p.Pages())
	}
	svc.sys.Clock.Advance(svc.sys.Profile.VMServiceFixed)
	for i := 0; i < v.Pages(); i++ {
		vpn := v.VPN(i)
		frame := p.frames[i]
		if err := svc.sys.MMU.Install(ctx.id, vpn, sal.PTE{Frame: frame, Prot: prot}); err != nil {
			return err
		}
		svc.backing[ctx.id][vpn] = frame
		svc.reverse[frame] = append(svc.reverse[frame], mapping{ctx: ctx, vpn: vpn})
	}
	return nil
}

// MapPage maps a single page of v (page index i) onto a single frame of p
// (page index j) — the finest-grained composition the interface allows.
func (svc *TranslationService) MapPage(ctx *Context, v *VirtAddr, i int, p *PhysAddr, j int, prot sal.Prot) error {
	svc.sys.Clock.Advance(svc.sys.Profile.CrossDomainCall)
	if err := svc.check(ctx); err != nil {
		return err
	}
	if v == nil || v.dead || i < 0 || i >= v.Pages() {
		return badCap("VirtAddr.T page")
	}
	if p == nil || p.dead || j < 0 || j >= len(p.frames) {
		return badCap("PhysAddr.T page")
	}
	vpn := v.VPN(i)
	frame := p.frames[j]
	if err := svc.sys.MMU.Install(ctx.id, vpn, sal.PTE{Frame: frame, Prot: prot}); err != nil {
		return err
	}
	svc.backing[ctx.id][vpn] = frame
	svc.reverse[frame] = append(svc.reverse[frame], mapping{ctx: ctx, vpn: vpn})
	return nil
}

// RemoveMapping unmaps the pages of v from ctx.
func (svc *TranslationService) RemoveMapping(ctx *Context, v *VirtAddr) error {
	svc.sys.Clock.Advance(svc.sys.Profile.CrossDomainCall)
	if err := svc.check(ctx); err != nil {
		return err
	}
	if v == nil || v.dead {
		return badCap("VirtAddr.T")
	}
	svc.sys.Clock.Advance(svc.sys.Profile.VMServiceFixed)
	for i := 0; i < v.Pages(); i++ {
		vpn := v.VPN(i)
		if frame, ok := svc.backing[ctx.id][vpn]; ok {
			svc.dropReverse(frame, ctx, vpn)
			delete(svc.backing[ctx.id], vpn)
		}
		_ = svc.sys.MMU.Remove(ctx.id, vpn)
	}
	return nil
}

// UnmapPage removes the mapping of a single page of v (page index i) from
// ctx — the finest-grained removal, used by pagers evicting one page.
func (svc *TranslationService) UnmapPage(ctx *Context, v *VirtAddr, i int) error {
	svc.sys.Clock.Advance(svc.sys.Profile.CrossDomainCall)
	if err := svc.check(ctx); err != nil {
		return err
	}
	if v == nil || v.dead || i < 0 || i >= v.Pages() {
		return badCap("VirtAddr.T page")
	}
	vpn := v.VPN(i)
	if frame, ok := svc.backing[ctx.id][vpn]; ok {
		svc.dropReverse(frame, ctx, vpn)
		delete(svc.backing[ctx.id], vpn)
	}
	return svc.sys.MMU.Remove(ctx.id, vpn)
}

// Protect changes the protection of the pages of v in ctx: one fixed
// service charge plus a per-page MMU operation (the Prot1/Prot100 shape).
func (svc *TranslationService) Protect(ctx *Context, v *VirtAddr, prot sal.Prot) error {
	svc.sys.Clock.Advance(svc.sys.Profile.CrossDomainCall)
	if err := svc.check(ctx); err != nil {
		return err
	}
	if v == nil || v.dead {
		return badCap("VirtAddr.T")
	}
	svc.sys.Clock.Advance(svc.sys.Profile.VMServiceFixed)
	for i := 0; i < v.Pages(); i++ {
		if err := svc.sys.MMU.Protect(ctx.id, v.VPN(i), prot); err != nil {
			return err
		}
	}
	return nil
}

// ProtectPage changes the protection of a single page of v.
func (svc *TranslationService) ProtectPage(ctx *Context, v *VirtAddr, i int, prot sal.Prot) error {
	svc.sys.Clock.Advance(svc.sys.Profile.CrossDomainCall)
	if err := svc.check(ctx); err != nil {
		return err
	}
	if v == nil || v.dead || i < 0 || i >= v.Pages() {
		return badCap("VirtAddr.T page")
	}
	svc.sys.Clock.Advance(svc.sys.Profile.VMServiceFixed)
	return svc.sys.MMU.Protect(ctx.id, v.VPN(i), prot)
}

// ExamineMapping returns the protection of the first page of v in ctx.
func (svc *TranslationService) ExamineMapping(ctx *Context, v *VirtAddr) (sal.Prot, error) {
	svc.sys.Clock.Advance(svc.sys.Profile.CrossDomainCall)
	if err := svc.check(ctx); err != nil {
		return 0, err
	}
	if v == nil || v.dead {
		return 0, badCap("VirtAddr.T")
	}
	pte, ok := svc.sys.MMU.Examine(ctx.id, v.VPN(0))
	if !ok {
		return sal.ProtNone, nil
	}
	return pte.Prot, nil
}

// MarkAllocated tells the MMU which pages of v are VM-allocated in ctx so
// unmapped accesses fault as PageNotPresent rather than BadAddress.
func (svc *TranslationService) MarkAllocated(ctx *Context, v *VirtAddr) error {
	if err := svc.check(ctx); err != nil {
		return err
	}
	for i := 0; i < v.Pages(); i++ {
		_ = svc.sys.MMU.MarkAllocated(ctx.id, v.VPN(i), true)
	}
	return nil
}

// FrameOf exposes the frame backing page i of v in ctx, for extensions that
// compose services (e.g. copy-on-write needs the source frame).
func (svc *TranslationService) FrameOf(ctx *Context, v *VirtAddr, i int) (uint64, bool) {
	if ctx == nil || ctx.dead {
		return 0, false
	}
	f, ok := svc.backing[ctx.id][v.VPN(i)]
	return f, ok
}

func (svc *TranslationService) check(ctx *Context) error {
	if ctx == nil || ctx.dead || !svc.live[ctx] {
		return badCap("Translation.T")
	}
	return nil
}

func (svc *TranslationService) dropReverse(frame uint64, ctx *Context, vpn uint64) {
	list := svc.reverse[frame]
	out := list[:0]
	for _, m := range list {
		if m.ctx != ctx || m.vpn != vpn {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		delete(svc.reverse, frame)
	} else {
		svc.reverse[frame] = out
	}
}

// invalidateFrames removes every mapping to the given frames; called when
// physical memory is reclaimed or deallocated ("The translation service
// ultimately invalidates any mappings to a reclaimed page").
func (svc *TranslationService) invalidateFrames(frames []uint64) {
	for _, f := range frames {
		for _, m := range svc.reverse[f] {
			_ = svc.sys.MMU.Remove(m.ctx.id, m.vpn)
			delete(svc.backing[m.ctx.id], m.vpn)
		}
		delete(svc.reverse, f)
	}
}

// removeRangeEverywhere removes mappings of v from every live context;
// called when a virtual range is deallocated.
func (svc *TranslationService) removeRangeEverywhere(v *VirtAddr) {
	for ctx := range svc.live {
		for i := 0; i < v.Pages(); i++ {
			vpn := v.VPN(i)
			if frame, ok := svc.backing[ctx.id][vpn]; ok {
				svc.dropReverse(frame, ctx, vpn)
				delete(svc.backing[ctx.id], vpn)
				_ = svc.sys.MMU.Remove(ctx.id, vpn)
			}
		}
	}
}

// MappingsOf reports how many contexts currently map frame — used by tests
// and by the reclaim path.
func (svc *TranslationService) MappingsOf(frame uint64) int {
	return len(svc.reverse[frame])
}
