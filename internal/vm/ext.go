package vm

import (
	"fmt"

	"spin/internal/dispatch"
	"spin/internal/domain"
	"spin/internal/sal"
)

// This file contains kernel extensions built *on top of* the three core
// services, demonstrating the paper's claim that higher-level memory
// abstractions — demand paging, UNIX address spaces with copy-on-write,
// Mach-style tasks — compose from fine-grained operations.

// DemandZero implements zero-fill demand paging for one region: it installs
// a guarded handler on Translation.PageNotPresent that allocates a physical
// page and maps it on first touch.
type DemandZero struct {
	sys    *System
	ctx    *Context
	region *VirtAddr
	prot   sal.Prot
	ref    dispatch.HandlerRef
	// Faults counts pages materialized.
	Faults int
}

// NewDemandZero arms demand-zero paging over region in ctx. The region is
// marked allocated so untouched pages fault as PageNotPresent.
func NewDemandZero(sys *System, ctx *Context, region *VirtAddr, prot sal.Prot, installer domain.Identity) (*DemandZero, error) {
	dz := &DemandZero{sys: sys, ctx: ctx, region: region, prot: prot}
	if err := sys.TransSvc.MarkAllocated(ctx, region); err != nil {
		return nil, err
	}
	lo, hi := region.VPN(0), region.VPN(region.Pages()-1)
	ref, err := sys.Disp.Install(EvPageNotPresent, func(arg, _ any) any {
		f := arg.(*sal.Fault)
		page := int(f.VPN - lo)
		p, err := sys.PhysSvc.Allocate(sal.PageSize, AnyAttrib)
		if err != nil {
			return false
		}
		if err := sys.TransSvc.MapPage(ctx, region, page, p, 0, prot); err != nil {
			return false
		}
		dz.Faults++
		return true
	}, dispatch.InstallOptions{
		Installer: installer,
		Guard: func(arg any) bool {
			f, ok := arg.(*sal.Fault)
			return ok && f.Context == ctx.id && f.VPN >= lo && f.VPN <= hi
		},
	})
	if err != nil {
		return nil, err
	}
	dz.ref = ref
	return dz, nil
}

// Disarm removes the handler.
func (dz *DemandZero) Disarm() { _ = dz.sys.Disp.Remove(dz.ref) }

// AddressSpace is the UNIX-address-space extension (paper §4.1: "we have
// built an extension that implements UNIX address space semantics ... It
// exports an interface for copying an existing address space, and for
// allocating additional memory within one").
type AddressSpace struct {
	sys  *System
	Ctx  *Context
	asid uint64
	// regions tracks the allocated ranges and their nominal protections.
	regions []*asRegion
	ident   domain.Identity
	cowRef  dispatch.HandlerRef
	armed   bool
	// cowPrivate holds the physical capabilities allocated by the COW
	// handler, so the owner can release them when the space dies.
	cowPrivate []*PhysAddr
	// CowFaults counts copy-on-write copies performed.
	CowFaults int
}

type asRegion struct {
	v    *VirtAddr
	p    *PhysAddr
	prot sal.Prot
	// shared marks regions currently in copy-on-write sharing.
	shared bool
}

// NewAddressSpace creates an empty address space.
func NewAddressSpace(sys *System, ident domain.Identity) *AddressSpace {
	as := &AddressSpace{
		sys:   sys,
		Ctx:   sys.TransSvc.Create(),
		asid:  sys.VirtSvc.NewASID(),
		ident: ident,
	}
	return as
}

// AllocateMemory grows the space by size bytes of zeroed, mapped memory and
// returns the new region's virtual range. It composes the three services
// directly: virtual range, physical pages, mapping.
func (as *AddressSpace) AllocateMemory(size int64, prot sal.Prot) (*VirtAddr, error) {
	v, err := as.sys.VirtSvc.Allocate(as.asid, size, AnyAttrib)
	if err != nil {
		return nil, err
	}
	p, err := as.sys.PhysSvc.Allocate(v.Size(), AnyAttrib)
	if err != nil {
		return nil, err
	}
	if err := as.sys.TransSvc.AddMapping(as.Ctx, v, p, prot); err != nil {
		return nil, err
	}
	as.regions = append(as.regions, &asRegion{v: v, p: p, prot: prot})
	return v, nil
}

// Copy implements fork-style address space copy with copy-on-write: the
// child shares the parent's physical pages; both sides' writable regions are
// write-protected, and a ProtectionFault handler copies a page on first
// write.
func (as *AddressSpace) Copy(childIdent domain.Identity) (*AddressSpace, error) {
	child := NewAddressSpace(as.sys, childIdent)
	child.asid = as.asid // same numbering so regions align
	for _, r := range as.regions {
		// Share the parent's frames in the child at read-only
		// protection; write-protect the parent too.
		shareProt := r.prot &^ sal.ProtWrite
		if err := as.sys.TransSvc.AddMapping(child.Ctx, r.v, r.p, shareProt); err != nil {
			return nil, err
		}
		if r.prot&sal.ProtWrite != 0 {
			if err := as.sys.TransSvc.Protect(as.Ctx, r.v, shareProt); err != nil {
				return nil, err
			}
			r.shared = true
		}
		child.regions = append(child.regions, &asRegion{v: r.v, p: r.p, prot: r.prot, shared: r.prot&sal.ProtWrite != 0})
	}
	if err := as.armCOW(); err != nil {
		return nil, err
	}
	if err := child.armCOW(); err != nil {
		return nil, err
	}
	return child, nil
}

// armCOW installs this space's copy-on-write fault handler (idempotent).
func (as *AddressSpace) armCOW() error {
	if as.armed {
		return nil
	}
	ref, err := as.sys.Disp.Install(EvProtectionFault, func(arg, _ any) any {
		f := arg.(*sal.Fault)
		return as.resolveCOW(f)
	}, dispatch.InstallOptions{
		Installer: as.ident,
		Guard: func(arg any) bool {
			f, ok := arg.(*sal.Fault)
			return ok && f.Context == as.Ctx.id && f.Access&sal.ProtWrite != 0
		},
	})
	if err != nil {
		return err
	}
	as.cowRef = ref
	as.armed = true
	return nil
}

// resolveCOW gives the faulting space a private copy of the written page.
func (as *AddressSpace) resolveCOW(f *sal.Fault) bool {
	for _, r := range as.regions {
		if !r.shared {
			continue
		}
		lo, hi := r.v.VPN(0), r.v.VPN(r.v.Pages()-1)
		if f.VPN < lo || f.VPN > hi {
			continue
		}
		page := int(f.VPN - lo)
		// Allocate a private frame and copy the shared page into it.
		private, err := as.sys.PhysSvc.Allocate(sal.PageSize, AnyAttrib)
		if err != nil {
			return false
		}
		as.sys.Clock.Advance(as.sys.Profile.CopyPerWord * (sal.PageSize / 8))
		if err := as.sys.TransSvc.MapPage(as.Ctx, r.v, page, private, 0, r.prot); err != nil {
			return false
		}
		as.cowPrivate = append(as.cowPrivate, private)
		as.CowFaults++
		return true
	}
	return false
}

// Destroy tears the space down.
func (as *AddressSpace) Destroy() {
	if as.armed {
		_ = as.sys.Disp.Remove(as.cowRef)
		as.armed = false
	}
	_ = as.sys.TransSvc.Destroy(as.Ctx)
}

// Task is the Mach-task-flavoured extension (paper: "Another kernel
// extension defines a memory management interface supporting Mach's task
// abstraction"): vm_allocate / vm_protect / vm_deallocate over an address
// space.
type Task struct {
	as *AddressSpace
}

// NewTask creates a task with an empty address space.
func NewTask(sys *System, ident domain.Identity) *Task {
	return &Task{as: NewAddressSpace(sys, ident)}
}

// VMAllocate allocates size bytes of zero memory, returning its address.
func (t *Task) VMAllocate(size int64) (uint64, error) {
	v, err := t.as.AllocateMemory(size, sal.ProtRead|sal.ProtWrite)
	if err != nil {
		return 0, err
	}
	return v.Start(), nil
}

// VMProtect sets the protection of the region containing addr.
func (t *Task) VMProtect(addr uint64, prot sal.Prot) error {
	r := t.as.regionAt(addr)
	if r == nil {
		return fmt.Errorf("vm: task has no region at %#x", addr)
	}
	r.prot = prot
	return t.as.sys.TransSvc.Protect(t.as.Ctx, r.v, prot)
}

// VMDeallocate removes the region containing addr.
func (t *Task) VMDeallocate(addr uint64) error {
	r := t.as.regionAt(addr)
	if r == nil {
		return fmt.Errorf("vm: task has no region at %#x", addr)
	}
	if err := t.as.sys.TransSvc.RemoveMapping(t.as.Ctx, r.v); err != nil {
		return err
	}
	return t.as.sys.VirtSvc.Deallocate(r.v)
}

// AddressSpace exposes the underlying space.
func (t *Task) AddressSpace() *AddressSpace { return t.as }

func (as *AddressSpace) regionAt(addr uint64) *asRegion {
	for _, r := range as.regions {
		if addr >= r.v.Start() && addr < r.v.Start()+uint64(r.v.Size()) {
			return r
		}
	}
	return nil
}
