// Package vm implements SPIN's extensible memory management (paper §4.1,
// Figure 3): three decomposed services — physical storage (PhysAddr),
// naming (VirtAddr), and translation (Translation) — each exported through a
// fine-grained interface, plus the MMU-exception events through which
// extensions implement higher-level abstractions (demand paging,
// copy-on-write address spaces, Mach-style tasks).
//
// The decomposition is the paper's point: because invoking each service
// costs a procedure call, it is feasible to expose "allocate a single
// virtual page, a physical page, and create a mapping between the two" as
// separate operations and let applications compose them.
package vm

import (
	"errors"
	"fmt"

	"spin/internal/dispatch"
	"spin/internal/sal"
	"spin/internal/sim"
)

// Event names raised by the translation and physical-address services.
const (
	EvPageNotPresent  = "Translation.PageNotPresent"
	EvBadAddress      = "Translation.BadAddress"
	EvProtectionFault = "Translation.ProtectionFault"
	EvReclaim         = "PhysAddr.Reclaim"
)

// System bundles the three memory services over one machine's hardware.
type System struct {
	Engine  *sim.Engine
	Clock   *sim.Clock
	Profile *sim.Profile
	Disp    *dispatch.Dispatcher
	MMU     *sal.MMU
	Phys    *sal.PhysMem

	PhysSvc  *PhysAddrService
	VirtSvc  *VirtAddrService
	TransSvc *TranslationService
}

// New wires a memory system over the given hardware and dispatcher, defining
// the four VM events.
func New(engine *sim.Engine, profile *sim.Profile, disp *dispatch.Dispatcher,
	mmu *sal.MMU, phys *sal.PhysMem) (*System, error) {

	s := &System{
		Engine:  engine,
		Clock:   engine.Clock,
		Profile: profile,
		Disp:    disp,
		MMU:     mmu,
		Phys:    phys,
	}
	s.PhysSvc = newPhysAddrService(s)
	s.VirtSvc = newVirtAddrService(s)
	s.TransSvc = newTranslationService(s)

	// Fault events return a bool: true when a handler resolved the fault
	// and the access should be retried. AnyResolved combines handlers.
	anyResolved := func(results []any) any {
		for _, r := range results {
			if b, ok := r.(bool); ok && b {
				return true
			}
		}
		return false
	}
	for _, name := range []string{EvPageNotPresent, EvBadAddress, EvProtectionFault} {
		if err := disp.Define(name, dispatch.DefineOptions{Combiner: anyResolved}); err != nil {
			return nil, err
		}
	}
	// Reclaim handlers may volunteer an alternative page; the first
	// non-nil alternative wins.
	firstAlternative := func(results []any) any {
		for _, r := range results {
			if p, ok := r.(*PhysAddr); ok && p != nil {
				return p
			}
		}
		return nil
	}
	if err := disp.Define(EvReclaim, dispatch.DefineOptions{Combiner: firstAlternative}); err != nil {
		return nil, err
	}
	return s, nil
}

// Access simulates one user-mode memory access at va in ctx with the given
// access mode. On a fault, it charges the trap and delivery path, raises the
// corresponding Translation event, and — if some handler resolved the fault
// — charges the resume path and retries. It returns the final fault (nil on
// success) and the handler-entry latency of the *first* fault, which is what
// the Table 4 "Trap" benchmark measures.
func (s *System) Access(ctx *Context, va uint64, mode sal.Prot) (faultOut *sal.Fault, trapLatency sim.Duration) {
	const maxRetries = 4
	vpn := va >> sal.PageShift
	for attempt := 0; attempt < maxRetries; attempt++ {
		frame, fault := s.MMU.Translate(ctx.id, vpn, mode)
		if fault == nil {
			_ = s.Phys.Touch(frame, mode&sal.ProtWrite != 0)
			return nil, trapLatency
		}
		// Hardware trap into the kernel, then fault delivery to the
		// handling extension.
		start := s.Clock.Now()
		s.Clock.Advance(s.Profile.Trap)
		s.Clock.Advance(s.Profile.ExceptionDeliver)
		if attempt == 0 {
			trapLatency = s.Clock.Now().Sub(start)
		}
		var ev string
		switch fault.Kind {
		case sal.FaultBadAddress:
			ev = EvBadAddress
		case sal.FaultPageNotPresent:
			ev = EvPageNotPresent
		case sal.FaultProtection:
			ev = EvProtectionFault
		default:
			return fault, trapLatency
		}
		resolved, _ := s.Disp.Raise(ev, fault).(bool)
		if !resolved {
			return fault, trapLatency
		}
		// Resume the faulting context and retry the access.
		s.Clock.Advance(s.Profile.ExceptionResume)
		s.Clock.Advance(s.Profile.Trap)
	}
	return &sal.Fault{Context: ctx.id, VPN: vpn, Access: mode, Kind: sal.FaultProtection}, trapLatency
}

// GuardContext returns a dispatch guard matching faults in ctx — the
// per-instance dispatch idiom: one event name, per-context handlers.
func GuardContext(ctx *Context) dispatch.Guard {
	id := ctx.id
	return func(arg any) bool {
		f, ok := arg.(*sal.Fault)
		return ok && f.Context == id
	}
}

// Errors shared by the services.
var (
	ErrNoMemory      = errors.New("vm: out of physical memory")
	ErrBadCapability = errors.New("vm: invalid or stale capability")
	ErrNoSpace       = errors.New("vm: virtual address space exhausted")
)

func badCap(what string) error { return fmt.Errorf("%w: %s", ErrBadCapability, what) }
