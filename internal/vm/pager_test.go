package vm

import (
	"testing"

	"spin/internal/domain"
	"spin/internal/sal"
	"spin/internal/sim"
)

func newPagerRig(t *testing.T, pages, maxResident int) (*System, *Pager, *Context, *VirtAddr, *sal.Disk) {
	t.Helper()
	sys := newVM(t)
	disk := sal.NewDisk(sys.Clock)
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	region, err := sys.VirtSvc.Allocate(asid, int64(pages)*sal.PageSize, AnyAttrib)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewPager(sys, disk, ctx, region, sal.ProtRead|sal.ProtWrite, maxResident, 1000, domain.Identity{Name: "pager"})
	if err != nil {
		t.Fatal(err)
	}
	return sys, pg, ctx, region, disk
}

func touch(t *testing.T, sys *System, ctx *Context, region *VirtAddr, page int) {
	t.Helper()
	if f, _ := sys.Access(ctx, region.Start()+uint64(page)*sal.PageSize, sal.ProtWrite); f != nil {
		t.Fatalf("page %d fault unresolved: %v", page, f.Kind)
	}
}

func TestPagerDemandFill(t *testing.T) {
	sys, pg, ctx, region, _ := newPagerRig(t, 8, 8)
	for i := 0; i < 8; i++ {
		touch(t, sys, ctx, region, i)
	}
	if pg.Faults != 8 || pg.Evictions != 0 || pg.SwapIns != 0 {
		t.Errorf("faults=%d evictions=%d swapins=%d", pg.Faults, pg.Evictions, pg.SwapIns)
	}
	// Warm touches: no further faults.
	touch(t, sys, ctx, region, 3)
	if pg.Faults != 8 {
		t.Error("resident page refaulted")
	}
}

func TestPagerBoundsResidentSet(t *testing.T) {
	sys, pg, ctx, region, disk := newPagerRig(t, 16, 4)
	for i := 0; i < 16; i++ {
		touch(t, sys, ctx, region, i)
	}
	if pg.Resident() > 4 {
		t.Errorf("resident = %d, exceeds bound 4", pg.Resident())
	}
	if pg.Evictions != 12 {
		t.Errorf("evictions = %d, want 12", pg.Evictions)
	}
	_, writes := disk.Stats()
	if writes != 12 {
		t.Errorf("page-out writes = %d, want 12", writes)
	}
}

func TestPagerSwapInRestoresEvicted(t *testing.T) {
	sys, pg, ctx, region, disk := newPagerRig(t, 8, 2)
	touch(t, sys, ctx, region, 0)
	touch(t, sys, ctx, region, 1)
	touch(t, sys, ctx, region, 2) // evicts one of 0/1
	evicted := 0
	if pg.IsResident(0) {
		evicted = 1
	}
	if pg.IsResident(evicted) {
		t.Fatalf("expected page %d evicted", evicted)
	}
	readsBefore, _ := disk.Stats()
	touch(t, sys, ctx, region, evicted) // swap-in
	if pg.SwapIns != 1 {
		t.Errorf("swapins = %d", pg.SwapIns)
	}
	readsAfter, _ := disk.Stats()
	if readsAfter != readsBefore+1 {
		t.Error("swap-in did not read the disk")
	}
	if !pg.IsResident(evicted) {
		t.Error("swapped-in page not resident")
	}
}

func TestPagerSecondChancePrefersUnreferenced(t *testing.T) {
	sys, pg, ctx, region, _ := newPagerRig(t, 8, 3)
	touch(t, sys, ctx, region, 0)
	touch(t, sys, ctx, region, 1)
	touch(t, sys, ctx, region, 2)
	// Clear all referenced bits, then re-reference pages 0 and 2 only.
	for i := 0; i < 3; i++ {
		p := pg.resident[i]
		fr, _ := sys.Phys.Frame(p.frames[0])
		fr.Referenced = false
	}
	touch(t, sys, ctx, region, 0)
	touch(t, sys, ctx, region, 2)
	// Fault a fourth page: the clock should pass the referenced pages and
	// take page 1.
	touch(t, sys, ctx, region, 3)
	if pg.IsResident(1) {
		t.Error("second chance evicted a recently referenced page instead of page 1")
	}
	if !pg.IsResident(0) || !pg.IsResident(2) || !pg.IsResident(3) {
		t.Error("wrong resident set after eviction")
	}
}

func TestPagerFramesConserved(t *testing.T) {
	sys, pg, ctx, region, _ := newPagerRig(t, 32, 4)
	free := sys.PhysSvc.FreePages()
	for round := 0; round < 3; round++ {
		for i := 0; i < 32; i++ {
			touch(t, sys, ctx, region, i)
		}
	}
	// The pager may hold at most MaxResident frames beyond the baseline.
	held := free - sys.PhysSvc.FreePages()
	if held != pg.Resident() {
		t.Errorf("frames held = %d, resident = %d — leak", held, pg.Resident())
	}
	if held > 4 {
		t.Errorf("pager holds %d frames, bound is 4", held)
	}
}

func TestPagerDiskWaitIsIdleTime(t *testing.T) {
	sys, _, ctx, region, _ := newPagerRig(t, 16, 2)
	start := sys.Clock.Now()
	busyStart := sys.Clock.Busy()
	for i := 0; i < 16; i++ {
		touch(t, sys, ctx, region, i)
	}
	wall := sys.Clock.Now().Sub(start)
	busy := sys.Clock.Busy() - busyStart
	// Page-outs sleep on the disk: most elapsed time must be idle.
	if float64(busy) > 0.5*float64(wall) {
		t.Errorf("paging workload busy %v of %v — disk waits not idle", busy, wall)
	}
}

func TestPagerRejectsZeroResident(t *testing.T) {
	sys := newVM(t)
	disk := sal.NewDisk(sys.Clock)
	ctx := sys.TransSvc.Create()
	asid := sys.VirtSvc.NewASID()
	region, _ := sys.VirtSvc.Allocate(asid, sal.PageSize, AnyAttrib)
	if _, err := NewPager(sys, disk, ctx, region, sal.ProtRead, 0, 0, domain.Identity{}); err == nil {
		t.Error("pager with zero resident bound accepted")
	}
	_ = sim.Microsecond
}
