package domain

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"spin/internal/safe"
)

func consoleExporter(t *testing.T) *T {
	t.Helper()
	d, err := CreateFromModule("Console", func(o *safe.ObjectFile) {
		o.Export("Console.Write", func(msg string) int { return len(msg) })
		o.Export("Console.Beep", func() {})
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCreateRejectsUnsafe(t *testing.T) {
	obj := safe.NewObjectFile("rogue").Export("R.F", func() {}).Sign(safe.Unsigned)
	if _, err := Create(obj); !errors.Is(err, ErrNotSafe) {
		t.Fatalf("err = %v, want ErrNotSafe", err)
	}
}

func TestCreateAcceptsAsserted(t *testing.T) {
	obj := safe.NewObjectFile("vendor_driver").
		Export("Driver.Send", func([]byte) {}).
		Sign(safe.KernelAssertion)
	d, err := Create(obj)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.ExportedNames()) != 1 {
		t.Errorf("exports = %v", d.ExportedNames())
	}
}

func TestResolvePatchesImports(t *testing.T) {
	console := consoleExporter(t)
	var write func(string) int
	client, err := CreateFromModule("Gatekeeper", func(o *safe.ObjectFile) {
		o.Import("Console.Write", &write)
	})
	if err != nil {
		t.Fatal(err)
	}
	if client.FullyResolved() {
		t.Fatal("client should have unresolved imports")
	}
	if err := Resolve(console, client); err != nil {
		t.Fatal(err)
	}
	if !client.FullyResolved() {
		t.Fatalf("unresolved after link: %v", client.Unresolved())
	}
	if write("Intruder Alert") != 14 {
		t.Error("linked call broken")
	}
}

func TestResolveDoesNotExportExtraSymbols(t *testing.T) {
	console := consoleExporter(t)
	var write func(string) int
	client, _ := CreateFromModule("Client", func(o *safe.ObjectFile) {
		o.Import("Console.Write", &write)
		o.Export("Client.Run", func() {})
	})
	if err := Resolve(console, client); err != nil {
		t.Fatal(err)
	}
	// Resolution must not add Console's symbols to client's exports.
	if _, ok := client.LookupExport("Console.Write"); ok {
		t.Error("Resolve leaked source export into target")
	}
}

func TestResolveTypeConflict(t *testing.T) {
	console := consoleExporter(t)
	var badWrite func(int) string // wrong signature
	client, _ := CreateFromModule("Evil", func(o *safe.ObjectFile) {
		o.Import("Console.Write", &badWrite)
	})
	err := Resolve(console, client)
	if err == nil {
		t.Fatal("type-conflicting link accepted")
	}
	var tc *safe.TypeConflictError
	if !errors.As(err, &tc) {
		t.Fatalf("err type %T", err)
	}
	if client.FullyResolved() {
		t.Error("conflicting import marked resolved")
	}
	if badWrite != nil {
		t.Error("conflicting slot was patched")
	}
}

func TestResolveLeavesForeignImportsUnresolved(t *testing.T) {
	console := consoleExporter(t)
	var write func(string) int
	var read func() string
	client, _ := CreateFromModule("C", func(o *safe.ObjectFile) {
		o.Import("Console.Write", &write)
		o.Import("Keyboard.Read", &read)
	})
	if err := Resolve(console, client); err != nil {
		t.Fatal(err)
	}
	un := client.Unresolved()
	if len(un) != 1 || un[0] != "Keyboard.Read" {
		t.Errorf("Unresolved = %v", un)
	}
}

func TestCrossLink(t *testing.T) {
	var aCallsB func() string
	var bCallsA func() string
	a, _ := CreateFromModule("A", func(o *safe.ObjectFile) {
		o.Export("A.Hello", func() string { return "A" })
		o.Import("B.Hello", &aCallsB)
	})
	b, _ := CreateFromModule("B", func(o *safe.ObjectFile) {
		o.Export("B.Hello", func() string { return "B" })
		o.Import("A.Hello", &bCallsA)
	})
	if err := CrossLink(a, b); err != nil {
		t.Fatal(err)
	}
	if aCallsB() != "B" || bCallsA() != "A" {
		t.Error("cross-link broken")
	}
}

func TestCombineAggregatesExports(t *testing.T) {
	console := consoleExporter(t)
	disk, _ := CreateFromModule("Disk", func(o *safe.ObjectFile) {
		o.Export("Disk.Read", func(block int) []byte { return nil })
	})
	pub := Combine("SpinPublic", console, disk)
	var write func(string) int
	var read func(int) []byte
	client, _ := CreateFromModule("App", func(o *safe.ObjectFile) {
		o.Import("Console.Write", &write)
		o.Import("Disk.Read", &read)
	})
	if err := Resolve(pub, client); err != nil {
		t.Fatal(err)
	}
	if !client.FullyResolved() {
		t.Fatalf("unresolved: %v", client.Unresolved())
	}
	if got := len(pub.ExportedNames()); got != 3 {
		t.Errorf("aggregate exports %d names, want 3", got)
	}
}

func TestCombineSkipsNil(t *testing.T) {
	console := consoleExporter(t)
	pub := Combine("P", nil, console, nil)
	if len(pub.ExportedNames()) != 2 {
		t.Errorf("exports = %v", pub.ExportedNames())
	}
}

func TestCombineCarriesUnresolved(t *testing.T) {
	var write func(string) int
	client, _ := CreateFromModule("C", func(o *safe.ObjectFile) {
		o.Import("Console.Write", &write)
	})
	agg := Combine("Agg", client)
	console := consoleExporter(t)
	if err := Resolve(console, agg); err != nil {
		t.Fatal(err)
	}
	if write("hi") != 2 {
		t.Error("resolving aggregate did not patch child slot")
	}
}

func TestSelfResolve(t *testing.T) {
	var f func() int
	d, _ := CreateFromModule("Self", func(o *safe.ObjectFile) {
		o.Export("Self.F", func() int { return 9 })
		o.Import("Self.F", &f)
	})
	if err := Resolve(d, d); err != nil {
		t.Fatal(err)
	}
	if f() != 9 {
		t.Error("self-resolution broken")
	}
}

func TestNameserverExportImport(t *testing.T) {
	ns := NewNameserver()
	console := consoleExporter(t)
	if err := ns.Export("ConsoleService", console, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ns.Import("ConsoleService", Identity{Name: "app"})
	if err != nil {
		t.Fatal(err)
	}
	if got != console {
		t.Error("imported wrong domain")
	}
}

func TestNameserverDuplicateExport(t *testing.T) {
	ns := NewNameserver()
	console := consoleExporter(t)
	if err := ns.Export("X", console, nil); err != nil {
		t.Fatal(err)
	}
	if err := ns.Export("X", console, nil); err == nil {
		t.Error("duplicate export accepted")
	}
	ns.Unexport("X")
	if err := ns.Export("X", console, nil); err != nil {
		t.Errorf("re-export after Unexport failed: %v", err)
	}
}

func TestNameserverAuthorization(t *testing.T) {
	ns := NewNameserver()
	console := consoleExporter(t)
	err := ns.Export("ConsoleService", console, TrustedOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Import("ConsoleService", Identity{Name: "app"}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("untrusted import err = %v, want ErrUnauthorized", err)
	}
	if _, err := ns.Import("ConsoleService", Identity{Name: "core", Trusted: true}); err != nil {
		t.Errorf("trusted import failed: %v", err)
	}
}

func TestNameserverNotExported(t *testing.T) {
	ns := NewNameserver()
	if _, err := ns.Import("Nope", Identity{}); !errors.Is(err, ErrNotExported) {
		t.Errorf("err = %v, want ErrNotExported", err)
	}
}

func TestNameserverLinkAgainst(t *testing.T) {
	ns := NewNameserver()
	console := consoleExporter(t)
	_ = ns.Export("ConsoleService", console, nil)
	var write func(string) int
	client, _ := CreateFromModule("C", func(o *safe.ObjectFile) {
		o.Import("Console.Write", &write)
	})
	if err := ns.LinkAgainst("ConsoleService", Identity{Name: "c"}, client); err != nil {
		t.Fatal(err)
	}
	if write("abc") != 3 {
		t.Error("LinkAgainst did not patch")
	}
}

func TestNameserverNames(t *testing.T) {
	ns := NewNameserver()
	console := consoleExporter(t)
	_ = ns.Export("B", console, nil)
	_ = ns.Export("A", console, nil)
	names := ns.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("Names = %v", names)
	}
}

// Property: linking N clients against one exporter resolves all of them and
// every client observes the same shared implementation (data symbols are
// shared at memory speed).
func TestManyClientsShareImplementation(t *testing.T) {
	if err := quick.Check(func(nClients uint8) bool {
		n := int(nClients%16) + 1
		counter := 0
		exp, err := CreateFromModule("Svc", func(o *safe.ObjectFile) {
			o.Export("Svc.Bump", func() int { counter++; return counter })
		})
		if err != nil {
			return false
		}
		slots := make([]func() int, n)
		for i := 0; i < n; i++ {
			c, err := CreateFromModule(fmt.Sprintf("c%d", i), func(o *safe.ObjectFile) {
				o.Import("Svc.Bump", &slots[i])
			})
			if err != nil || Resolve(exp, c) != nil {
				return false
			}
		}
		for i := 0; i < n; i++ {
			if slots[i]() != i+1 {
				return false
			}
		}
		return counter == n
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Concurrent linking: many goroutines resolving different clients against
// one exporter must be safe (the linker holds per-domain locks).
func TestConcurrentResolve(t *testing.T) {
	counter := 0
	var mu sync.Mutex
	exp, err := CreateFromModule("Svc", func(o *safe.ObjectFile) {
		o.Export("Svc.Bump", func() {
			mu.Lock()
			counter++
			mu.Unlock()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	slots := make([]func(), n)
	clients := make([]*T, n)
	for i := 0; i < n; i++ {
		c, err := CreateFromModule(fmt.Sprintf("c%d", i), func(o *safe.ObjectFile) {
			o.Import("Svc.Bump", &slots[i])
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := Resolve(exp, clients[i]); err != nil {
				t.Errorf("resolve %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if !clients[i].FullyResolved() {
			t.Fatalf("client %d unresolved", i)
		}
		slots[i]()
	}
	if counter != n {
		t.Errorf("counter = %d", counter)
	}
}

// Concurrent nameserver export/import.
func TestConcurrentNameserver(t *testing.T) {
	ns := NewNameserver()
	console := consoleExporter(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("svc-%d", i)
			if err := ns.Export(name, console, nil); err != nil {
				t.Errorf("export %s: %v", name, err)
			}
			if _, err := ns.Import(name, Identity{Name: "x"}); err != nil {
				t.Errorf("import %s: %v", name, err)
			}
		}(i)
	}
	wg.Wait()
	if len(ns.Names()) != 8 {
		t.Errorf("names = %v", ns.Names())
	}
}
