package domain

import (
	"errors"
	"testing"

	"spin/internal/safe"
)

// Crash-only teardown at the nameserver: Destroy deletes the owner's
// bindings under the lock, then runs each registered subsystem reclaimer
// outside it, itemizing everything recovered.

func TestDestroyUnexportsAndRunsReclaimers(t *testing.T) {
	ns := NewNameserver()
	iface, err := CreateFromModule("Svc", func(o *safe.ObjectFile) {
		o.Export("Svc.Ping", func() int { return 1 })
	})
	if err != nil {
		t.Fatal(err)
	}
	ext := Identity{Name: "ext"}
	if err := ns.ExportOwned("SvcA", iface, nil, ext); err != nil {
		t.Fatal(err)
	}
	if err := ns.ExportOwned("SvcB", iface, nil, ext); err != nil {
		t.Fatal(err)
	}
	if err := ns.Export("Other", iface, nil); err != nil { // owner "Svc" (the domain)
		t.Fatal(err)
	}
	var sawOwner Identity
	ns.AddReclaimer("dispatch", func(owner Identity) int { sawOwner = owner; return 2 })
	ns.AddReclaimer("net", func(Identity) int { return 0 })

	report := ns.Destroy(ext)
	if len(report.Unexported) != 2 {
		t.Errorf("Unexported = %v, want SvcA and SvcB", report.Unexported)
	}
	if sawOwner != ext {
		t.Errorf("reclaimer saw owner %+v, want %+v", sawOwner, ext)
	}
	if report.Reclaimed["dispatch"] != 2 || report.Reclaimed["net"] != 0 {
		t.Errorf("Reclaimed = %+v", report.Reclaimed)
	}
	if got := report.Total(); got != 4 { // 2 names + 2 dispatch
		t.Errorf("Total = %d, want 4", got)
	}
	if _, err := ns.Import("SvcA", Identity{Name: "app"}); !errors.Is(err, ErrNotExported) {
		t.Errorf("SvcA importable after destroy: %v", err)
	}
	if _, err := ns.Import("Other", Identity{Name: "app"}); err != nil {
		t.Errorf("unowned export destroyed too: %v", err)
	}
	// The freed name is immediately re-exportable by a successor.
	if err := ns.ExportOwned("SvcA", iface, nil, Identity{Name: "ext2"}); err != nil {
		t.Errorf("SvcA not re-exportable: %v", err)
	}
}

func TestOwnerOf(t *testing.T) {
	ns := NewNameserver()
	iface, err := CreateFromModule("Svc", func(o *safe.ObjectFile) {
		o.Export("Svc.Ping", func() int { return 1 })
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.ExportOwned("Named", iface, nil, Identity{Name: "ext"}); err != nil {
		t.Fatal(err)
	}
	if owner, ok := ns.OwnerOf("Named"); !ok || owner != "ext" {
		t.Errorf("OwnerOf(Named) = %q, %v", owner, ok)
	}
	if _, ok := ns.OwnerOf("Missing"); ok {
		t.Error("OwnerOf found a binding that does not exist")
	}
	// Export without an explicit owner records the exporting domain.
	if err := ns.Export("Implicit", iface, nil); err != nil {
		t.Fatal(err)
	}
	if owner, ok := ns.OwnerOf("Implicit"); !ok || owner != "Svc" {
		t.Errorf("OwnerOf(Implicit) = %q, %v, want the domain name", owner, ok)
	}
}
