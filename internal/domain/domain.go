// Package domain implements SPIN's logical protection domains (paper §3.1,
// Figure 2): kernel namespaces that contain code and exported interfaces,
// created from safe object files and stitched together at runtime by an
// in-kernel dynamic linker. Once resolved, code in separate domains shares
// resources at memory speed — a cross-domain call costs a procedure call.
//
// The package also provides the in-kernel nameserver through which modules
// export interfaces under global names and importers locate them, optionally
// gated by an exporter-supplied authorization procedure.
package domain

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"spin/internal/safe"
)

// ErrNotSafe is returned when a domain is created from an object file that
// fails safety verification.
var ErrNotSafe = errors.New("domain: object file is not safe")

// T is a logical protection domain — a set of program symbols that code with
// access to the domain may reference. A *T value is itself a capability: it
// is unforgeable (callers can only obtain one from Create/Combine or the
// nameserver) and holding it confers the right to link against the domain.
type T struct {
	name string

	mu      sync.Mutex
	objects []*safe.ObjectFile
	// exports maps symbol name -> exporting symbol. Aggregate domains
	// merge the export maps of their children at Combine time.
	exports map[string]safe.Symbol
	// unresolved maps symbol name -> import slots awaiting resolution.
	unresolved map[string][]safe.Symbol
}

// Name returns the domain's diagnostic name.
func (d *T) Name() string { return d.name }

// Create initializes a domain with the contents of a safe object file.
// Symbols exported by the object are exported from the domain; imported
// symbols are left unresolved (paper: Domain.Create). It returns ErrNotSafe
// (wrapped) if the object fails verification.
func Create(obj *safe.ObjectFile) (*T, error) {
	if err := obj.Verify(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotSafe, err)
	}
	d := &T{
		name:       obj.Name,
		objects:    []*safe.ObjectFile{obj},
		exports:    make(map[string]safe.Symbol),
		unresolved: make(map[string][]safe.Symbol),
	}
	for _, s := range obj.Exports() {
		d.exports[s.Name] = s
	}
	for _, s := range obj.Imports() {
		d.unresolved[s.Name] = append(d.unresolved[s.Name], s)
	}
	return d, nil
}

// CreateFromModule creates a domain containing interfaces defined by the
// calling module, allowing modules to name and export themselves at runtime
// (paper: Domain.CreateFromModule). The builder function receives a fresh
// object file to populate; the object is compiler-signed on its behalf,
// modelling that in-tree modules were compiled by the type-safe compiler.
func CreateFromModule(name string, build func(*safe.ObjectFile)) (*T, error) {
	obj := safe.NewObjectFile(name)
	build(obj)
	obj.Sign(safe.Compiler)
	return Create(obj)
}

// Resolve resolves any undefined symbols in the target domain against
// symbols exported from the source (paper: Domain.Resolve). Text and data
// symbols are patched in place; resolution does not export additional
// symbols from the target. Type-conflicting resolutions fail with
// *safe.TypeConflictError and leave the slot untouched.
func Resolve(source, target *T) error {
	if source == nil || target == nil {
		return errors.New("domain: Resolve on nil domain")
	}
	// Lock ordering: always lock source before target; self-resolve locks
	// once.
	source.mu.Lock()
	if source != target {
		defer source.mu.Unlock()
		target.mu.Lock()
		defer target.mu.Unlock()
	} else {
		defer source.mu.Unlock()
	}

	var firstErr error
	for name, slots := range target.unresolved {
		exp, ok := source.exports[name]
		if !ok {
			continue
		}
		var remaining []safe.Symbol
		for _, slot := range slots {
			if err := safe.Patch(slot, exp); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				remaining = append(remaining, slot)
				continue
			}
		}
		if len(remaining) == 0 {
			delete(target.unresolved, name)
		} else {
			target.unresolved[name] = remaining
		}
	}
	return firstErr
}

// CrossLink performs the common idiom of a pair of Resolve operations so
// that two domains satisfy each other's imports.
func CrossLink(a, b *T) error {
	if err := Resolve(a, b); err != nil {
		return err
	}
	return Resolve(b, a)
}

// Combine creates a new aggregate domain that exports the interfaces of the
// given domains (paper: Domain.Combine). Later domains win on duplicate
// export names, and unresolved imports of all children remain visible in the
// aggregate so that a single Resolve against it can finish linking.
func Combine(name string, ds ...*T) *T {
	agg := &T{
		name:       name,
		exports:    make(map[string]safe.Symbol),
		unresolved: make(map[string][]safe.Symbol),
	}
	for _, d := range ds {
		if d == nil {
			continue
		}
		d.mu.Lock()
		agg.objects = append(agg.objects, d.objects...)
		for n, s := range d.exports {
			agg.exports[n] = s
		}
		for n, slots := range d.unresolved {
			agg.unresolved[n] = append(agg.unresolved[n], slots...)
		}
		d.mu.Unlock()
	}
	return agg
}

// Unresolved returns the names of symbols still awaiting resolution, sorted.
func (d *T) Unresolved() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.unresolved))
	for n, slots := range d.unresolved {
		if len(slots) > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// FullyResolved reports whether every import in the domain has been patched.
func (d *T) FullyResolved() bool { return len(d.Unresolved()) == 0 }

// ExportedNames returns the names this domain exports, sorted.
func (d *T) ExportedNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.exports))
	for n := range d.exports {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupExport returns the named exported symbol, if present.
func (d *T) LookupExport(name string) (safe.Symbol, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.exports[name]
	return s, ok
}

// Objects returns the object files backing this domain.
func (d *T) Objects() []*safe.ObjectFile {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]*safe.ObjectFile(nil), d.objects...)
}
