package domain

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Identity names a principal performing an import — an extension, an
// application, or the kernel itself. It is what an exporter's authorizer
// sees (paper §3.1: "An exporter can register an authorization procedure
// with the nameserver that will be called with the identity of the importer
// whenever the interface is imported").
type Identity struct {
	// Name is the principal's name, e.g. "unix-server" or "video-client".
	Name string
	// Trusted marks principals the kernel trusts (core services).
	Trusted bool
}

// Authorizer decides whether importer may import an interface. A nil
// Authorizer admits everyone.
type Authorizer func(importer Identity) error

// ErrUnauthorized is returned (wrapped) when an authorizer denies an import.
var ErrUnauthorized = errors.New("domain: import unauthorized")

// ErrNotExported is returned when no interface is registered under a name.
var ErrNotExported = errors.New("domain: interface not exported")

type binding struct {
	dom   *T
	auth  Authorizer
	owner string
}

// reclaimer is one subsystem's teardown hook (see AddReclaimer).
type reclaimer struct {
	name string
	fn   func(owner Identity) int
}

// Nameserver is the in-kernel registry through which modules export
// interface domains under global names (e.g. Console.InterfaceName =
// "ConsoleService") and importers locate them. The importer, exporter and
// authorizer interact through direct procedure calls, so the fine-grained
// control has low cost.
//
// The nameserver is also the anchor for crash-only domain teardown: each
// binding records the owning principal, subsystems register reclaimers for
// the resources a principal can hold outside the nameserver (event handlers,
// capabilities, network endpoints), and Destroy withdraws a principal's
// whole footprint in one call.
type Nameserver struct {
	mu         sync.Mutex
	bindings   map[string]binding
	reclaimers []reclaimer
}

// NewNameserver returns an empty nameserver.
func NewNameserver() *Nameserver {
	return &Nameserver{bindings: make(map[string]binding)}
}

// Export registers dom under name with an optional authorizer, owned by the
// domain itself (owner = dom.Name()). Re-export of an existing name fails:
// interface names version services, so replacing one is an explicit Unexport
// followed by Export.
func (ns *Nameserver) Export(name string, dom *T, auth Authorizer) error {
	if dom == nil {
		return errors.New("domain: Export of nil domain")
	}
	return ns.ExportOwned(name, dom, auth, Identity{Name: dom.Name()})
}

// ExportOwned is Export with an explicit owning principal — the identity a
// later Destroy must present to withdraw the binding. Extensions that export
// several interfaces under one identity use this so a single Destroy finds
// them all.
func (ns *Nameserver) ExportOwned(name string, dom *T, auth Authorizer, owner Identity) error {
	if dom == nil {
		return errors.New("domain: Export of nil domain")
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, exists := ns.bindings[name]; exists {
		return fmt.Errorf("domain: interface %q already exported", name)
	}
	ns.bindings[name] = binding{dom: dom, auth: auth, owner: owner.Name}
	return nil
}

// Unexport removes the binding for name, if any.
func (ns *Nameserver) Unexport(name string) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	delete(ns.bindings, name)
}

// Import returns the domain exported under name after consulting the
// exporter's authorizer with the importer's identity.
func (ns *Nameserver) Import(name string, importer Identity) (*T, error) {
	ns.mu.Lock()
	b, ok := ns.bindings[name]
	ns.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExported, name)
	}
	if b.auth != nil {
		if err := b.auth(importer); err != nil {
			return nil, fmt.Errorf("%w: %q for %q: %v", ErrUnauthorized, name, importer.Name, err)
		}
	}
	return b.dom, nil
}

// LinkAgainst imports the named interface and resolves target's undefined
// symbols against it — the common import-and-link idiom.
func (ns *Nameserver) LinkAgainst(name string, importer Identity, target *T) error {
	src, err := ns.Import(name, importer)
	if err != nil {
		return err
	}
	return Resolve(src, target)
}

// AddReclaimer registers a teardown hook under a diagnostic name (by
// convention the subsystem's trace origin: "dispatch", "capability",
// "net.udp", ...). Destroy calls every reclaimer with the departing
// principal's identity; the hook withdraws whatever resources that principal
// holds in its subsystem and returns how many it reclaimed. Registration
// order is preserved — teardown runs hooks in the order subsystems booted.
func (ns *Nameserver) AddReclaimer(name string, fn func(owner Identity) int) {
	if fn == nil {
		return
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.reclaimers = append(ns.reclaimers, reclaimer{name: name, fn: fn})
}

// DestroyReport accounts for one crash-only teardown: which bindings the
// nameserver withdrew and what each subsystem reclaimer recovered.
type DestroyReport struct {
	// Owner is the destroyed principal.
	Owner Identity
	// Unexported lists the interface names withdrawn, sorted.
	Unexported []string
	// Reclaimed maps reclaimer name -> resources reclaimed (only reclaimers
	// that recovered something appear).
	Reclaimed map[string]int
}

// Total reports the total number of resources reclaimed, bindings included.
func (r DestroyReport) Total() int {
	n := len(r.Unexported)
	for _, v := range r.Reclaimed {
		n += v
	}
	return n
}

// Destroy is crash-only domain teardown (the paper's §4.3 failure model
// applied deliberately): it withdraws every binding exported under owner's
// identity and runs every registered reclaimer so the principal's event
// handlers, capabilities and endpoints are recovered in one call, without
// the departing code's cooperation. Importers that already linked against
// the destroyed interfaces keep their direct procedure pointers — teardown
// revokes the ability to acquire, not memory safety of what was acquired —
// and the freed names are immediately re-exportable by a replacement.
func (ns *Nameserver) Destroy(owner Identity) DestroyReport {
	rep := DestroyReport{Owner: owner, Reclaimed: make(map[string]int)}
	ns.mu.Lock()
	for name, b := range ns.bindings {
		if b.owner == owner.Name {
			delete(ns.bindings, name)
			rep.Unexported = append(rep.Unexported, name)
		}
	}
	hooks := append([]reclaimer(nil), ns.reclaimers...)
	ns.mu.Unlock()
	sort.Strings(rep.Unexported)
	// Reclaimers run outside the nameserver lock: they take their own
	// subsystems' locks, and those subsystems may consult the nameserver.
	for _, h := range hooks {
		if n := h.fn(owner); n > 0 {
			rep.Reclaimed[h.name] += n
		}
	}
	return rep
}

// OwnerOf reports the owning principal of an exported name, if bound.
func (ns *Nameserver) OwnerOf(name string) (string, bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	b, ok := ns.bindings[name]
	return b.owner, ok
}

// Names lists all exported interface names, sorted.
func (ns *Nameserver) Names() []string {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	out := make([]string, 0, len(ns.bindings))
	for n := range ns.bindings {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TrustedOnly is an Authorizer admitting only trusted principals; it is the
// guard core services place on hardware-facing interfaces.
func TrustedOnly(importer Identity) error {
	if !importer.Trusted {
		return fmt.Errorf("principal %q is not trusted", importer.Name)
	}
	return nil
}
