package domain

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Identity names a principal performing an import — an extension, an
// application, or the kernel itself. It is what an exporter's authorizer
// sees (paper §3.1: "An exporter can register an authorization procedure
// with the nameserver that will be called with the identity of the importer
// whenever the interface is imported").
type Identity struct {
	// Name is the principal's name, e.g. "unix-server" or "video-client".
	Name string
	// Trusted marks principals the kernel trusts (core services).
	Trusted bool
}

// Authorizer decides whether importer may import an interface. A nil
// Authorizer admits everyone.
type Authorizer func(importer Identity) error

// ErrUnauthorized is returned (wrapped) when an authorizer denies an import.
var ErrUnauthorized = errors.New("domain: import unauthorized")

// ErrNotExported is returned when no interface is registered under a name.
var ErrNotExported = errors.New("domain: interface not exported")

type binding struct {
	dom  *T
	auth Authorizer
}

// Nameserver is the in-kernel registry through which modules export
// interface domains under global names (e.g. Console.InterfaceName =
// "ConsoleService") and importers locate them. The importer, exporter and
// authorizer interact through direct procedure calls, so the fine-grained
// control has low cost.
type Nameserver struct {
	mu       sync.Mutex
	bindings map[string]binding
}

// NewNameserver returns an empty nameserver.
func NewNameserver() *Nameserver {
	return &Nameserver{bindings: make(map[string]binding)}
}

// Export registers dom under name with an optional authorizer. Re-export of
// an existing name fails: interface names version services, so replacing one
// is an explicit Unexport followed by Export.
func (ns *Nameserver) Export(name string, dom *T, auth Authorizer) error {
	if dom == nil {
		return errors.New("domain: Export of nil domain")
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, exists := ns.bindings[name]; exists {
		return fmt.Errorf("domain: interface %q already exported", name)
	}
	ns.bindings[name] = binding{dom: dom, auth: auth}
	return nil
}

// Unexport removes the binding for name, if any.
func (ns *Nameserver) Unexport(name string) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	delete(ns.bindings, name)
}

// Import returns the domain exported under name after consulting the
// exporter's authorizer with the importer's identity.
func (ns *Nameserver) Import(name string, importer Identity) (*T, error) {
	ns.mu.Lock()
	b, ok := ns.bindings[name]
	ns.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExported, name)
	}
	if b.auth != nil {
		if err := b.auth(importer); err != nil {
			return nil, fmt.Errorf("%w: %q for %q: %v", ErrUnauthorized, name, importer.Name, err)
		}
	}
	return b.dom, nil
}

// LinkAgainst imports the named interface and resolves target's undefined
// symbols against it — the common import-and-link idiom.
func (ns *Nameserver) LinkAgainst(name string, importer Identity, target *T) error {
	src, err := ns.Import(name, importer)
	if err != nil {
		return err
	}
	return Resolve(src, target)
}

// Names lists all exported interface names, sorted.
func (ns *Nameserver) Names() []string {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	out := make([]string, 0, len(ns.bindings))
	for n := range ns.bindings {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TrustedOnly is an Authorizer admitting only trusted principals; it is the
// guard core services place on hardware-facing interfaces.
func TrustedOnly(importer Identity) error {
	if !importer.Trusted {
		return fmt.Errorf("principal %q is not trusted", importer.Name)
	}
	return nil
}
