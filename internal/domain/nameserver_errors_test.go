package domain

import (
	"errors"
	"strings"
	"testing"

	"spin/internal/safe"
)

// Table-driven error paths through the nameserver: every way an export or
// import can be refused, and what the caller sees. The paper's access
// control lives entirely in these refusals (§3.1) — an extension that cannot
// import an interface cannot name, let alone call, the resource behind it.
func TestNameserverErrorPaths(t *testing.T) {
	exporter := func(t *testing.T) *T {
		t.Helper()
		d, err := CreateFromModule("Svc", func(o *safe.ObjectFile) {
			o.Export("Svc.Call", func() {})
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	importerOf := func(name string) *T {
		var call func()
		d, _ := CreateFromModule("Client", func(o *safe.ObjectFile) {
			o.Import(name, &call)
		})
		return d
	}

	cases := []struct {
		name    string
		run     func(t *testing.T, ns *Nameserver) error
		wantErr error  // matched with errors.Is when non-nil
		wantMsg string // substring of the error text otherwise
	}{
		{
			name: "import-miss",
			run: func(t *testing.T, ns *Nameserver) error {
				_, err := ns.Import("NoSuchService", Identity{Name: "app"})
				return err
			},
			wantErr: ErrNotExported,
		},
		{
			name: "import-denied",
			run: func(t *testing.T, ns *Nameserver) error {
				if err := ns.Export("Guarded", exporter(t), TrustedOnly); err != nil {
					t.Fatal(err)
				}
				_, err := ns.Import("Guarded", Identity{Name: "rogue"})
				return err
			},
			wantErr: ErrUnauthorized,
		},
		{
			name: "import-denied-names-principal",
			run: func(t *testing.T, ns *Nameserver) error {
				if err := ns.Export("Guarded", exporter(t), TrustedOnly); err != nil {
					t.Fatal(err)
				}
				_, err := ns.Import("Guarded", Identity{Name: "rogue"})
				return err
			},
			wantMsg: `"rogue"`,
		},
		{
			name: "export-duplicate",
			run: func(t *testing.T, ns *Nameserver) error {
				if err := ns.Export("Svc", exporter(t), nil); err != nil {
					t.Fatal(err)
				}
				return ns.Export("Svc", exporter(t), nil)
			},
			wantMsg: "already exported",
		},
		{
			name: "export-nil-domain",
			run: func(t *testing.T, ns *Nameserver) error {
				return ns.Export("Svc", nil, nil)
			},
			wantMsg: "nil domain",
		},
		{
			name: "import-after-unexport",
			run: func(t *testing.T, ns *Nameserver) error {
				if err := ns.Export("Svc", exporter(t), nil); err != nil {
					t.Fatal(err)
				}
				ns.Unexport("Svc")
				_, err := ns.Import("Svc", Identity{Name: "app"})
				return err
			},
			wantErr: ErrNotExported,
		},
		{
			name: "link-against-miss",
			run: func(t *testing.T, ns *Nameserver) error {
				return ns.LinkAgainst("NoSuchService", Identity{Name: "app"}, importerOf("Svc.Call"))
			},
			wantErr: ErrNotExported,
		},
		{
			name: "link-against-denied",
			run: func(t *testing.T, ns *Nameserver) error {
				if err := ns.Export("Guarded", exporter(t), TrustedOnly); err != nil {
					t.Fatal(err)
				}
				return ns.LinkAgainst("Guarded", Identity{Name: "rogue"}, importerOf("Svc.Call"))
			},
			wantErr: ErrUnauthorized,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(t, NewNameserver())
			if err == nil {
				t.Fatal("no error")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Errorf("err = %v, want %v", err, tc.wantErr)
			}
			if tc.wantMsg != "" && !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("err = %q, want substring %q", err, tc.wantMsg)
			}
		})
	}
}

// A denied LinkAgainst must leave the importer's symbols untouched, so a
// later authorized link still resolves them.
func TestLinkAgainstDenialLeavesImporterLinkable(t *testing.T) {
	ns := NewNameserver()
	svc, err := CreateFromModule("Svc", func(o *safe.ObjectFile) {
		o.Export("Svc.Ping", func() int { return 42 })
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.Export("Svc", svc, TrustedOnly); err != nil {
		t.Fatal(err)
	}
	var ping func() int
	client, err := CreateFromModule("Client", func(o *safe.ObjectFile) {
		o.Import("Svc.Ping", &ping)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.LinkAgainst("Svc", Identity{Name: "rogue"}, client); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("rogue link err = %v, want ErrUnauthorized", err)
	}
	if ping != nil {
		t.Fatal("denied link resolved the import anyway")
	}
	if err := ns.LinkAgainst("Svc", Identity{Name: "core", Trusted: true}, client); err != nil {
		t.Fatal(err)
	}
	if ping == nil || ping() != 42 {
		t.Error("authorized link did not resolve Svc.Ping")
	}
}
