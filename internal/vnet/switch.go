package vnet

import (
	"spin/internal/netstack"
	"spin/internal/sal"
	"spin/internal/sim"
)

// DefaultForwardCost is a switch's per-frame forwarding latency (lookup +
// crossbar), charged on the switch's own clock.
const DefaultForwardCost = 2 * sim.Microsecond

// Switch is a store-and-forward network node: frames arrive on a port, pay
// the forwarding cost on the switch's own engine/clock, and leave through
// the port its route table names for the packet's destination address.
// Route tables are programmed by the topology builder (BFS shortest paths);
// a frame with no route — or a non-IP payload — is dropped.
type Switch struct {
	Name        string
	ForwardCost sim.Duration

	engine *sim.Engine
	clock  *sim.Clock
	ports  []*Port
	routes map[netstack.IPAddr]*Port

	forwarded, noRoute, ttlExpired int64
}

func newSwitch(name string) *Switch {
	eng := sim.NewEngine()
	return &Switch{
		Name:        name,
		ForwardCost: DefaultForwardCost,
		engine:      eng,
		clock:       eng.Clock,
		routes:      make(map[netstack.IPAddr]*Port),
	}
}

// Engine returns the switch's simulation engine (registered with the
// Internet's cluster).
func (sw *Switch) Engine() *sim.Engine { return sw.engine }

// Stats reports frames forwarded, dropped for want of a route, and dropped
// by TTL expiry.
func (sw *Switch) Stats() (forwarded, noRoute, ttlExpired int64) {
	return sw.forwarded, sw.noRoute, sw.ttlExpired
}

// Ports returns the switch's ports in link-attachment order.
func (sw *Switch) Ports() []*Port { return sw.ports }

// addPort grows the switch by one port; out (the link half transmitting
// away from this port) is wired by the builder after both ends exist.
func (sw *Switch) addPort(name string) *Port {
	p := &Port{sw: sw, name: name}
	sw.ports = append(sw.ports, p)
	return p
}

// Port is one switch attachment point. It is a link endpoint (frames arrive
// here) and holds the outbound half of the same link.
type Port struct {
	sw   *Switch
	name string
	out  sal.Wire // transmit half of the attached link, away from the switch
}

// Name returns the port's label ("s0[2]" or the far node's name).
func (p *Port) Name() string { return p.name }

// DeliverAt schedules the frame's forwarding step on the switch's engine —
// the endpoint contract links deliver into.
func (p *Port) DeliverAt(t sim.Time, f sal.NetFrame) {
	p.sw.engine.At(t, func() { p.sw.forward(f) })
}

// forward runs one frame through the switch at its arrival event: charge
// the forwarding cost, decrement TTL (loop guard), look up the output port,
// and hand the frame to that port's link half with the switch's current
// time as departure.
func (sw *Switch) forward(f sal.NetFrame) {
	sw.clock.Advance(sw.ForwardCost)
	pkt, ok := f.Payload.(*netstack.Packet)
	if !ok {
		sw.noRoute++
		sal.ReleaseFrame(f)
		return
	}
	out := sw.routes[pkt.Dst]
	if out == nil || out.out == nil {
		sw.noRoute++
		sal.ReleaseFrame(f)
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		sw.ttlExpired++
		sal.ReleaseFrame(f)
		return
	}
	sw.forwarded++
	out.out.Transmit(f, sw.clock.Now())
}
