package vnet

import (
	"fmt"

	"spin"
	"spin/internal/netstack"
	"spin/internal/sal"
	"spin/internal/sim"
)

// VirtualEtherModel is the default NIC for topology hosts: a fast virtual
// Ethernet whose card adds no fixed latency (delay lives on the links) and
// whose driver costs are small, so large topologies spend their virtual
// time in the links and protocols under test, not the NIC model.
var VirtualEtherModel = sal.NICModel{
	Name:           "Virtual Ethernet",
	WireRate:       1_000_000_000,
	FrameOverhead:  24,
	DMASetup:       1 * sim.Microsecond,
	FixedLatency:   0,
	DriverSendCost: 2 * sim.Microsecond,
	DriverRecvCost: 3 * sim.Microsecond,
}

const (
	nodeMachine = iota + 1
	nodeSwitch
)

type machineSpec struct {
	name string
	ip   netstack.IPAddr
	cfg  spin.Config
}

type linkSpec struct {
	name, a, b string
	model      LinkModel
}

// Builder is the topology DSL. Calls chain; errors latch and surface at
// Build:
//
//	inet, err := vnet.NewBuilder(seed).
//		Machine("a", 0).Machine("b", 0).Switch("s0").
//		Link("a", "s0", edge).Link("b", "s0", edge).
//		Build()
type Builder struct {
	seed     uint64
	nicModel sal.NICModel
	err      error

	nodes    map[string]int
	machines []machineSpec
	switches []string
	links    []linkSpec
}

// NewBuilder starts a topology. seed drives every link's fault models.
func NewBuilder(seed uint64) *Builder {
	return &Builder{
		seed:     seed,
		nicModel: VirtualEtherModel,
		nodes:    make(map[string]int),
	}
}

func (b *Builder) fail(format string, args ...any) *Builder {
	if b.err == nil {
		b.err = fmt.Errorf("vnet: "+format, args...)
	}
	return b
}

// NICModel overrides the NIC model topology hosts get (default
// VirtualEtherModel).
func (b *Builder) NICModel(m sal.NICModel) *Builder {
	b.nicModel = m
	return b
}

// Machine declares a host. ip 0 auto-assigns 10.x.y.1 by declaration order.
func (b *Builder) Machine(name string, ip netstack.IPAddr) *Builder {
	return b.MachineCfg(name, spin.Config{IP: ip})
}

// MachineCfg declares a host with a full machine configuration (CPUs,
// memory, profile). cfg.IP 0 auto-assigns.
func (b *Builder) MachineCfg(name string, cfg spin.Config) *Builder {
	if b.nodes[name] != 0 {
		return b.fail("duplicate node %q", name)
	}
	b.nodes[name] = nodeMachine
	b.machines = append(b.machines, machineSpec{name: name, ip: cfg.IP, cfg: cfg})
	return b
}

// Switch declares a store-and-forward switch node.
func (b *Builder) Switch(name string) *Builder {
	if b.nodes[name] != 0 {
		return b.fail("duplicate node %q", name)
	}
	b.nodes[name] = nodeSwitch
	b.switches = append(b.switches, name)
	return b
}

// Link joins two declared nodes with a modeled link named "a~b".
func (b *Builder) Link(a, bn string, m LinkModel) *Builder {
	return b.LinkNamed(a+"~"+bn, a, bn, m)
}

// LinkNamed joins two declared nodes under an explicit link name (needed
// for parallel links between the same pair).
func (b *Builder) LinkNamed(name, a, bn string, m LinkModel) *Builder {
	if b.nodes[a] == 0 || b.nodes[bn] == 0 {
		return b.fail("link %q: unknown node", name)
	}
	if a == bn {
		return b.fail("link %q: self loop", name)
	}
	for _, l := range b.links {
		if l.name == name {
			return b.fail("duplicate link %q (use LinkNamed)", name)
		}
	}
	b.links = append(b.links, linkSpec{name: name, a: a, b: bn, model: m})
	return b
}

// attachment is one node's end of one link: the NIC (machine side) or port
// (switch side) facing the link, plus the outbound half.
type attachment struct {
	neighbor string
	nic      *sal.NIC
	port     *Port
	out      *half
}

// Build constructs the Internet: boots machines, wires links, computes BFS
// shortest-path routes for every machine address, and registers every
// engine with one conservative cluster.
func (b *Builder) Build() (*Internet, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.machines) == 0 {
		return nil, fmt.Errorf("vnet: topology has no machines")
	}
	in := &Internet{
		cluster:  sim.NewCluster(),
		coord:    sim.NewEngine(),
		seed:     b.seed,
		machines: make(map[string]*spin.Machine, len(b.machines)),
		switches: make(map[string]*Switch, len(b.switches)),
		links:    make(map[string]*Link, len(b.links)),
	}
	for i, ms := range b.machines {
		cfg := ms.cfg
		if cfg.IP == 0 {
			n := i + 1
			cfg.IP = netstack.Addr(10, byte(n>>8), byte(n), 1)
		}
		m, err := spin.NewMachine(ms.name, cfg)
		if err != nil {
			return nil, fmt.Errorf("vnet: boot %q: %w", ms.name, err)
		}
		in.machines[ms.name] = m
		in.machineOrder = append(in.machineOrder, ms.name)
	}
	for _, name := range b.switches {
		in.switches[name] = newSwitch(name)
		in.switchOrder = append(in.switchOrder, name)
	}

	// Wire links: each end gets a NIC (machine) or port (switch); each
	// direction's half transmits to the far end's endpoint.
	adj := make(map[string][]*attachment, len(b.nodes))
	endAt := func(node, far string, out *half) (*attachment, endpoint) {
		at := &attachment{neighbor: far, out: out}
		if m := in.machines[node]; m != nil {
			at.nic = m.AddNIC(b.nicModel)
			at.nic.AttachWire(out)
			adj[node] = append(adj[node], at)
			return at, at.nic
		}
		sw := in.switches[node]
		at.port = sw.addPort(far)
		at.port.out = out
		adj[node] = append(adj[node], at)
		return at, at.port
	}
	for _, ls := range b.links {
		l := newLink(ls.name, ls.model, b.seed)
		l.ab.dir = ls.a + "->" + ls.b
		l.ba.dir = ls.b + "->" + ls.a
		_, epA := endAt(ls.a, ls.b, l.ab)
		_, epB := endAt(ls.b, ls.a, l.ba)
		l.ab.to = epB
		l.ba.to = epA
		in.links[ls.name] = l
		in.linkOrder = append(in.linkOrder, ls.name)
	}

	b.computeRoutes(in, adj)

	for _, name := range in.machineOrder {
		in.cluster.Add(in.machines[name].Engine)
	}
	for _, name := range in.switchOrder {
		in.cluster.Add(in.switches[name].Engine())
	}
	in.cluster.Add(in.coord)
	return in, nil
}

// computeRoutes runs one BFS per destination machine over the node graph
// and programs, at every other node, the attachment its shortest path
// leaves through: host stacks get AddRoute, switches get route-table
// entries. Declaration order makes tie-breaks deterministic.
func (b *Builder) computeRoutes(in *Internet, adj map[string][]*attachment) {
	for _, dstName := range in.machineOrder {
		dstIP := in.machines[dstName].Stack.IP
		// BFS from the destination; the edge by which a node is first
		// discovered is the first hop of its shortest path back.
		visited := map[string]bool{dstName: true}
		queue := []string{dstName}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, at := range adj[u] {
				v := at.neighbor
				if visited[v] {
					continue
				}
				visited[v] = true
				queue = append(queue, v)
				// v reaches dst via its own side of this edge: the
				// attachment on v whose outbound half is the reverse
				// direction of at.out's link.
				back := reverseAttachment(adj[v], at)
				if back == nil {
					continue
				}
				if m := in.machines[v]; m != nil {
					m.Stack.AddRoute(dstIP, back.nic)
				} else if sw := in.switches[v]; sw != nil {
					sw.routes[dstIP] = back.port
				}
			}
		}
	}
}

// reverseAttachment finds, among v's attachments, the end of the same link
// as at (the halves of one link point at each other's link).
func reverseAttachment(atts []*attachment, at *attachment) *attachment {
	for _, cand := range atts {
		if cand.out.link == at.out.link {
			return cand
		}
	}
	return nil
}

// Star builds n hosts ("h0".."h{n-1}") around one switch ("s0"), every
// spoke carrying the same link model.
func Star(n int, spoke LinkModel, seed uint64) (*Internet, error) {
	b := NewBuilder(seed).Switch("s0")
	for i := 0; i < n; i++ {
		h := fmt.Sprintf("h%d", i)
		b.Machine(h, 0).Link(h, "s0", spoke)
	}
	return b.Build()
}

// Dumbbell builds the classic bottleneck topology: left hosts ("l0"..)
// on switch "sl", right hosts ("r0"..) on switch "sr", and one shared
// "bottleneck" link between the switches.
func Dumbbell(left, right int, edge, bottleneck LinkModel, seed uint64) (*Internet, error) {
	b := NewBuilder(seed).Switch("sl").Switch("sr").
		LinkNamed("bottleneck", "sl", "sr", bottleneck)
	for i := 0; i < left; i++ {
		h := fmt.Sprintf("l%d", i)
		b.Machine(h, 0).Link(h, "sl", edge)
	}
	for i := 0; i < right; i++ {
		h := fmt.Sprintf("r%d", i)
		b.Machine(h, 0).Link(h, "sr", edge)
	}
	return b.Build()
}

// FatTree builds a two-level multi-rooted tree: cores core switches
// ("c0"..), edges edge switches ("e0"..) each uplinked to every core, and
// hostsPerEdge hosts ("h0".."..") per edge switch. Cross-edge traffic
// transits one core (BFS picks the first-declared one, deterministically).
func FatTree(cores, edges, hostsPerEdge int, up, down LinkModel, seed uint64) (*Internet, error) {
	b := NewBuilder(seed)
	for c := 0; c < cores; c++ {
		b.Switch(fmt.Sprintf("c%d", c))
	}
	for e := 0; e < edges; e++ {
		es := fmt.Sprintf("e%d", e)
		b.Switch(es)
		for c := 0; c < cores; c++ {
			b.Link(es, fmt.Sprintf("c%d", c), up)
		}
		for h := 0; h < hostsPerEdge; h++ {
			hn := fmt.Sprintf("h%d", e*hostsPerEdge+h)
			b.Machine(hn, 0).Link(hn, es, down)
		}
	}
	return b.Build()
}
