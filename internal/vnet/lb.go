package vnet

import (
	"fmt"

	"spin/internal/domain"
	"spin/internal/lb"
)

// Load-balancing glue: build an internal/lb Balancer / ResilientDialer on
// a topology machine over named backend machines, and wire backend death
// (DestroyDomain) to DNS withdrawal so the whole failover story — records
// withdrawn, negative TTLs bounding staleness, ring re-convergence —
// happens through the same naming plumbing real traffic uses.

// Balancer builds a load balancer on machine over the named backends
// (topology machine names; each is dialed as "<name>.spin.test"). The
// balancer's seed, when cfg.Seed is zero, derives from the topology seed
// so routing replays — and diverges — with it. EnableDNS must have run
// (the balancer resolves backends by name).
func (in *Internet) Balancer(machine string, cfg lb.Config, backends ...string) (*lb.Balancer, error) {
	s, err := in.Sockets(machine)
	if err != nil {
		return nil, err
	}
	if s.Resolver() == nil {
		return nil, fmt.Errorf("vnet: Balancer: machine %q has no resolver (EnableDNS first)", machine)
	}
	if cfg.Seed == 0 {
		cfg.Seed = in.seed ^ hashString(machine) ^ 0xba1a
	}
	bal := lb.NewBalancer(s.Stack(), s.Resolver(), cfg)
	for _, b := range backends {
		if in.machines[b] == nil {
			return nil, fmt.Errorf("vnet: Balancer: unknown backend machine %q", b)
		}
		bal.AddBackend(b, qualify(b))
	}
	return bal, nil
}

// ResilientDialer wraps machine's socket layer with bal-driven backend
// selection and failover; its DialContext drops into http.Transport.
func (in *Internet) ResilientDialer(machine string, bal *lb.Balancer, policy lb.RetryPolicy) (*lb.ResilientDialer, error) {
	s, err := in.Sockets(machine)
	if err != nil {
		return nil, err
	}
	return lb.NewResilientDialer(s, bal, policy, in.seed^hashString(machine)), nil
}

// WithdrawOnDestroy arms the DNS half of crash-only backend teardown: a
// reclaimer on machine's nameserver that, when owner's domain is
// destroyed, withdraws the given names (default: the machine's own name)
// from the topology zone and flushes them from every internet-owned
// resolver. Combined with the "net.tcp" reclaimer that drops the
// listener, DestroyDomain then kills the backend completely: new dials
// are refused, and new resolves see NXDOMAIN within the negative TTL.
func (in *Internet) WithdrawOnDestroy(machine, owner string, aliases ...string) error {
	m := in.machines[machine]
	if m == nil {
		return fmt.Errorf("vnet: WithdrawOnDestroy: unknown machine %q", machine)
	}
	if len(aliases) == 0 {
		aliases = []string{machine}
	}
	names := append([]string(nil), aliases...)
	m.Namespace.AddReclaimer("vnet.dns", func(o domain.Identity) int {
		if o.Name != owner {
			return 0
		}
		n := 0
		for _, a := range names {
			if in.RemoveName(a) {
				n++
			}
		}
		return n
	})
	return nil
}
