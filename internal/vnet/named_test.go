package vnet

import (
	"errors"
	"io"
	"net/http"
	"testing"

	"spin/internal/netstack"
	"spin/internal/sim"
)

// namedStar builds the canonical named-service topology: web server,
// client and nameserver around one switch, with web.spin.test serving
// a page over the in-kernel HTTP extension.
func namedStar(seed uint64) (*Internet, error) {
	edge := LinkModel{Latency: 200 * sim.Microsecond}
	in, err := NewBuilder(seed).
		Machine("web", 0).
		Machine("client", 0).
		Machine("ns", 0).
		Switch("s0").
		Link("web", "s0", edge).
		Link("client", "s0", edge).
		Link("ns", "s0", edge).
		Build()
	if err != nil {
		return nil, err
	}
	if err := in.EnableDNS("ns"); err != nil {
		return nil, err
	}
	if _, err := netstack.NewHTTPServer(in.Machine("web").Stack, 80, netstack.InKernelDelivery,
		netstack.ContentMap{"/": []byte("extensibility, safety and performance")}); err != nil {
		return nil, err
	}
	return in, nil
}

// fetchByName runs the acceptance scenario: an unmodified net/http client
// resolves web.spin.test through the topology's DNS and fetches the page.
func fetchByName(in *Internet) (string, error) {
	dialer, err := in.Dialer("client")
	if err != nil {
		return "", err
	}
	httpc := &http.Client{Transport: &http.Transport{
		DialContext:       dialer.DialContext,
		DisableKeepAlives: true,
	}}
	resp, err := httpc.Get("http://web.spin.test/")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", errors.New("status " + resp.Status)
	}
	return string(body), nil
}

// End-to-end named service: resolve + dial + HTTP over the 3-machine star,
// by plain Go stdlib client code.
func TestNamedServiceHTTP(t *testing.T) {
	in, err := namedStar(42)
	if err != nil {
		t.Fatal(err)
	}
	body, err := fetchByName(in)
	if err != nil {
		t.Fatal(err)
	}
	if body != "extensibility, safety and performance" {
		t.Fatalf("body = %q", body)
	}
	// The client really resolved: one DNS query hit the ns machine.
	if st := in.Machine("ns").DNS.Stats(); st.Queries != 1 || st.Answered != 1 {
		t.Errorf("ns DNS stats = %+v, want 1 answered query", st)
	}
	if st := in.Machine("client").Resolver.Stats(); st.Lookups != 1 || st.Sent != 1 {
		t.Errorf("client resolver stats = %+v", st)
	}
	// Everything drains: no connections left on either end.
	in.Driver().Drain()
	if got := in.Machine("client").Stack.TCP().Conns() + in.Machine("web").Stack.TCP().Conns(); got != 0 {
		t.Errorf("connections left after fetch: %d", got)
	}
}

// The acceptance bar for determinism: the same seed replays the whole
// resolve-then-fetch byte-identically — every link digest, and therefore
// the topology fingerprint, matches across runs.
func TestNamedServiceReplayDeterministic(t *testing.T) {
	fp, err := CheckReplay(3, func() (*Internet, error) { return namedStar(7) },
		func(in *Internet) error {
			body, err := fetchByName(in)
			if err != nil {
				return err
			}
			if body == "" {
				return errors.New("empty body")
			}
			in.Driver().Drain()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if fp == 0 {
		t.Error("zero fingerprint — no traffic digested")
	}
}

// Aliases repoint: AddName moves a service between machines and the next
// (cache-expired) resolve follows it.
func TestAddNameRepoints(t *testing.T) {
	in, err := namedStar(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.AddName("www", "web"); err != nil {
		t.Fatal(err)
	}
	client := in.Machine("client")
	resolve := func(name string) (netstack.IPAddr, error) {
		var ip netstack.IPAddr
		var rerr error
		done := false
		client.Resolver.LookupA(name, func(a []netstack.IPAddr, e error) {
			if e == nil {
				ip = a[0]
			}
			rerr, done = e, true
		})
		if !in.RunUntil(func() bool { return done }, 0) {
			return 0, errors.New("lookup hung")
		}
		return ip, rerr
	}
	ip, err := resolve("www.spin.test")
	if err != nil || ip != in.IP("web") {
		t.Fatalf("www -> %v, %v; want %v", ip, err, in.IP("web"))
	}
	in.AddName("www", "ns") // failover
	client.Resolver.FlushCache()
	ip, err = resolve("www.spin.test")
	if err != nil || ip != in.IP("ns") {
		t.Fatalf("repointed www -> %v, %v; want %v", ip, err, in.IP("ns"))
	}
	if _, err := resolve("gone.spin.test"); !errors.Is(err, netstack.ErrNameNotFound) {
		t.Errorf("absent name: %v", err)
	}
	if err := in.AddName("x", "nope"); err == nil {
		t.Error("AddName to unknown machine accepted")
	}
	// Removal: the alias stops resolving.
	in.RemoveName("www")
	client.Resolver.FlushCache()
	if _, err := resolve("www.spin.test"); !errors.Is(err, netstack.ErrNameNotFound) {
		t.Errorf("removed name still resolves: %v", err)
	}
	// Error paths: DNS is already enabled, and socket layers only exist for
	// known machines.
	if err := in.EnableDNS("web"); err == nil {
		t.Error("second EnableDNS accepted")
	}
	if _, err := in.Sockets("nope"); err == nil {
		t.Error("Sockets for unknown machine accepted")
	}
	if _, err := in.Dialer("nope"); err == nil {
		t.Error("Dialer for unknown machine accepted")
	}
}

// The foreground bugfix's acceptance scenario: a dial through a link whose
// frames are all dropped (a partitioned machine) returns ErrTimedOut in
// bounded virtual time — no infinite SYN retransmission — leaves no
// connection behind, and replays deterministically.
func TestDialPartitionedMachineTimesOut(t *testing.T) {
	build := func() (*Internet, error) {
		in, err := namedStar(11)
		if err != nil {
			return nil, err
		}
		// 100%-drop netem hook on the web spoke: the DNS still answers
		// (ns is reachable), but nothing reaches the web machine.
		in.Link("web~s0").AddHook(func(*FrameEvent) Verdict { return Drop })
		in.Machine("client").Stack.TCP().SetMaxRetx(2)
		return in, nil
	}
	drive := func(in *Internet) error {
		client := in.Machine("client")
		start := client.Clock.Now()
		_, err := fetchByName(in)
		if err == nil {
			return errors.New("fetch through a partition succeeded")
		}
		if !errors.Is(err, netstack.ErrTimedOut) {
			return errors.New("err = " + err.Error() + ", want ErrTimedOut")
		}
		// Bounded virtual time: resolve (~ms) + 200+400+800ms of capped
		// SYN backoff. Far below the 30s an uncapped dial would blow past.
		if elapsed := client.Clock.Now().Sub(start); elapsed > 2*sim.Second {
			return errors.New("timed-out dial took " + elapsed.String())
		}
		in.Driver().Drain()
		if got := client.Stack.TCP().Conns(); got != 0 {
			return errors.New("connections left after timeout")
		}
		return nil
	}
	if _, err := CheckReplay(3, build, drive); err != nil {
		t.Fatal(err)
	}
}
