package vnet

import (
	"fmt"
	"testing"

	"spin/internal/netstack"
	"spin/internal/sim"
)

// driveStar sends seeded cross-traffic over a star: every host fires UDP
// datagrams at its clockwise neighbor over lossy spokes, and a few hosts
// run TCP transfers — enough concurrent traffic that any nondeterminism in
// link models, switch forwarding or cluster stepping shows up in the
// digests.
func driveStar(in *Internet, n int) error {
	for i := 0; i < n; i++ {
		m := in.Machine(fmt.Sprintf("h%d", i))
		m.Stack.UDP().Bind(9, nil, func(*netstack.Packet) {})
	}
	for i := 0; i < n; i++ {
		src := in.Machine(fmt.Sprintf("h%d", i))
		dst := in.IP(fmt.Sprintf("h%d", (i+1)%n))
		for k := 0; k < 3; k++ {
			if err := src.Stack.UDP().Send(100, dst, 9, make([]byte, 64+i%7)); err != nil {
				return err
			}
		}
	}
	convs := []Conversation{
		{From: "h0", To: fmt.Sprintf("h%d", n/2), Bytes: 8 << 10},
		{From: fmt.Sprintf("h%d", n/3), To: fmt.Sprintf("h%d", 2*n/3), Bytes: 8 << 10},
	}
	results, err := RunConversations(in, convs, sim.Time(60*sim.Second))
	if err != nil {
		return err
	}
	for _, r := range results {
		if !r.Complete || r.Corrupt {
			return fmt.Errorf("transfer %s->%s failed: %+v", r.From, r.To, r)
		}
	}
	return nil
}

// TestStar200Determinism: a 200-machine seeded star replays byte-identically
// — every per-link digest and the folded fingerprint match across runs.
func TestStar200Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("200-machine topology in -short mode")
	}
	const n = 200
	lossy := LinkModel{Latency: 150 * sim.Microsecond, Loss: 0.02, Reorder: 0.05, ReorderDelay: 200 * sim.Microsecond}
	build := func() (*Internet, error) { return Star(n, lossy, 4242) }

	// Two full runs must agree link-by-link, not just in the fold.
	var first map[string][2]uint64
	var firstFP uint64
	for run := 0; run < 2; run++ {
		in, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if err := driveStar(in, n); err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first, firstFP = in.LinkDigests(), in.Fingerprint()
			continue
		}
		second := in.LinkDigests()
		if len(second) != len(first) {
			t.Fatalf("link count changed across runs: %d vs %d", len(second), len(first))
		}
		for name, d := range second {
			if d != first[name] {
				t.Errorf("link %s digests diverged: %x vs %x", name, d, first[name])
			}
		}
		if fp := in.Fingerprint(); fp != firstFP {
			t.Errorf("fingerprint diverged: %#x vs %#x", fp, firstFP)
		}
	}
	if firstFP == 0 {
		t.Error("fingerprint is zero — no traffic folded in")
	}
}

// TestStar200DifferentSeedDiverges: changing only the seed must change the
// traffic (loss pattern, hence retransmissions, hence digests).
func TestStar200DifferentSeedDiverges(t *testing.T) {
	if testing.Short() {
		t.Skip("200-machine topology in -short mode")
	}
	const n = 200
	lossy := LinkModel{Latency: 150 * sim.Microsecond, Loss: 0.02, Reorder: 0.05, ReorderDelay: 200 * sim.Microsecond}
	fps := make([]uint64, 2)
	for i, seed := range []uint64{4242, 4243} {
		in, err := Star(n, lossy, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := driveStar(in, n); err != nil {
			t.Fatal(err)
		}
		fps[i] = in.Fingerprint()
	}
	if fps[0] == fps[1] {
		t.Errorf("different seeds produced identical fingerprint %#x", fps[0])
	}
}

// TestDumbbell16Determinism: 16 machines through a shared lossy bottleneck,
// replayed via the CheckReplay harness.
func TestDumbbell16Determinism(t *testing.T) {
	bottleneck := LinkModel{
		Latency: 500 * sim.Microsecond, BandwidthBps: 50_000_000,
		Loss: 0.01, Reorder: 0.05, ReorderDelay: 300 * sim.Microsecond,
	}
	build := func() (*Internet, error) { return Dumbbell(8, 8, edge, bottleneck, 777) }
	drive := func(in *Internet) error {
		convs := make([]Conversation, 8)
		for i := range convs {
			convs[i] = Conversation{
				From: fmt.Sprintf("l%d", i), To: fmt.Sprintf("r%d", i),
				Bytes: 8 << 10,
			}
		}
		results, err := RunConversations(in, convs, sim.Time(60*sim.Second))
		if err != nil {
			return err
		}
		for _, r := range results {
			if !r.Complete || r.Corrupt {
				return fmt.Errorf("transfer %s->%s failed: %+v", r.From, r.To, r)
			}
		}
		return nil
	}
	fp, err := CheckReplay(3, build, drive)
	if err != nil {
		t.Fatal(err)
	}
	if fp == 0 {
		t.Error("zero fingerprint from a run with traffic")
	}
	// And a different seed diverges.
	in, err := Dumbbell(8, 8, edge, LinkModel{
		Latency: 500 * sim.Microsecond, BandwidthBps: 50_000_000,
		Loss: 0.01, Reorder: 0.05, ReorderDelay: 300 * sim.Microsecond,
	}, 778)
	if err != nil {
		t.Fatal(err)
	}
	if err := drive(in); err != nil {
		t.Fatal(err)
	}
	if in.Fingerprint() == fp {
		t.Error("seed 778 reproduced seed 777's fingerprint")
	}
}
