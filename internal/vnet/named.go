package vnet

import (
	"fmt"

	"spin/internal/netstack"
	"spin/internal/sim"
)

// Named-service topologies: one machine becomes the topology's DNS
// authority (every host gets "<name>.spin.test" plus any aliases), every
// other machine gets a stub resolver pointing at it, and the whole cluster
// can be driven by blocking stdlib-style code — net/http included —
// through a shared netstack.Driver.

// DNSDomain is the suffix every topology machine is named under.
const DNSDomain = "spin.test"

// defaultDNSTTL is how long resolvers may cache topology names.
const defaultDNSTTL = 60 * sim.Second

// EnableDNS makes machine `server` the topology's authoritative DNS
// server: its zone maps "<name>.spin.test" to every machine's address, and
// every machine (the server included) gets a resolver pointed at it,
// seeded from the topology seed so lookups replay byte-identically.
// Call before the simulation runs; AddName adds service aliases after.
func (in *Internet) EnableDNS(server string) error {
	if in.dnsServer != "" {
		return fmt.Errorf("vnet: DNS already served by %q", in.dnsServer)
	}
	srv := in.machines[server]
	if srv == nil {
		return fmt.Errorf("vnet: EnableDNS: unknown machine %q", server)
	}
	zone := netstack.NewZone()
	for _, name := range in.machineOrder {
		if err := zone.AddA(name+"."+DNSDomain, defaultDNSTTL, in.machines[name].Stack.IP); err != nil {
			return err
		}
	}
	if err := srv.ServeDNS(zone); err != nil {
		return err
	}
	for _, name := range in.machineOrder {
		m := in.machines[name]
		in.resolvers = append(in.resolvers, m.UseResolver(netstack.ResolverConfig{
			Servers: []netstack.IPAddr{srv.Stack.IP},
			Seed:    in.seed ^ hashString(name),
		}))
	}
	in.dnsServer = server
	return nil
}

// AddName points alias (bare names get the spin.test suffix) at a machine
// in the topology zone — the service-discovery hook: "web.spin.test" can
// front whichever machine currently serves the content.
func (in *Internet) AddName(alias, machine string) error {
	if in.dnsServer == "" {
		return fmt.Errorf("vnet: AddName before EnableDNS")
	}
	m := in.machines[machine]
	if m == nil {
		return fmt.Errorf("vnet: AddName: unknown machine %q", machine)
	}
	return in.machines[in.dnsServer].Zone.AddA(qualify(alias), defaultDNSTTL, m.Stack.IP)
}

// RemoveName withdraws a name from the topology zone (failover: re-point
// it with AddName) and flushes it from every internet-owned resolver, so
// the next resolve consults the authority and caches the NXDOMAIN for the
// negative TTL — the stale window is the negative TTL, not the withdrawn
// record's remaining positive TTL. It reports whether the zone held the
// name. Call from simulation context (a coordinator At callback or under
// the topology driver), like the resolvers themselves.
func (in *Internet) RemoveName(alias string) bool {
	if in.dnsServer == "" {
		return false
	}
	name := qualify(alias)
	removed := in.machines[in.dnsServer].Zone.Remove(name)
	for _, r := range in.resolvers {
		r.Flush(name)
	}
	return removed
}

// qualify appends the topology domain to bare one-label names.
func qualify(alias string) string {
	for i := 0; i < len(alias); i++ {
		if alias[i] == '.' {
			return alias
		}
	}
	return alias + "." + DNSDomain
}

// Driver returns the topology's blocking-adapter driver, created on first
// use over the cluster. Once any blocking socket code runs, advance the
// simulation only through the driver (blocking calls, Run, Drain) — not
// via Internet.Run — so engine access stays serialized.
func (in *Internet) Driver() *netstack.Driver {
	if in.driver == nil {
		in.driver = netstack.NewDriver(in.cluster)
	}
	return in.driver
}

// Sockets returns a machine's stdlib-compatible socket layer over the
// shared topology driver.
func (in *Internet) Sockets(machine string) (*netstack.Sockets, error) {
	m := in.machines[machine]
	if m == nil {
		return nil, fmt.Errorf("vnet: Sockets: unknown machine %q", machine)
	}
	return netstack.NewSockets(in.Driver(), m.Stack, m.Resolver), nil
}

// Dialer returns a machine's name-resolving dialer; its DialContext drops
// into http.Transport so unmodified net/http runs over the topology.
func (in *Internet) Dialer(machine string) (*netstack.Dialer, error) {
	s, err := in.Sockets(machine)
	if err != nil {
		return nil, err
	}
	return s.Dialer(), nil
}
