package vnet

import (
	"fmt"
	"testing"

	"spin/internal/sim"
)

// TestConversationMatrix sweeps the default matrix — loss × reorder ×
// partition × machine count, 14 cells — and requires every transfer in
// every cell to complete byte-exactly. Each cell also replays: running it
// twice must reproduce the same fingerprint.
func TestConversationMatrix(t *testing.T) {
	matrix := DefaultMatrix()
	if len(matrix) < 12 {
		t.Fatalf("matrix has %d cells, want >= 12", len(matrix))
	}
	for _, cfg := range matrix {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			results, fp, err := RunMatrixCell(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != cfg.Conversations {
				t.Fatalf("got %d results, want %d", len(results), cfg.Conversations)
			}
			for _, r := range results {
				if !r.Complete {
					t.Errorf("%s->%s:%d incomplete (%d bytes)", r.From, r.To, r.Port, r.Received)
				}
				if r.Corrupt {
					t.Errorf("%s->%s:%d corrupted", r.From, r.To, r.Port)
				}
			}
			// Lossy and partitioned cells must actually have hurt.
			if cfg.Loss > 0 || cfg.Partition {
				var retx int64
				for _, r := range results {
					retx += r.Retransmits
				}
				if retx == 0 {
					t.Error("adverse cell saw zero retransmissions — faults not exercised")
				}
			}
			// Replay: the same cell reruns to the same fingerprint.
			if _, fp2, err := RunMatrixCell(cfg); err != nil {
				t.Fatalf("replay: %v", err)
			} else if fp2 != fp {
				t.Errorf("replay fingerprint %#x != first run %#x", fp2, fp)
			}
		})
	}
}

// TestTopologySmoke32 is the CI smoke: boot 32 machines in a star, run one
// matrix-style config over them, verify completion and that a digest
// replays — small enough for every CI run, large enough to exercise the
// switch and cluster at fan-in.
func TestTopologySmoke32(t *testing.T) {
	cfg := MatrixConfig{
		Name: "smoke32", Machines: 32,
		Loss: 0.01, Reorder: 0.05,
		Conversations: 8, Bytes: 8 << 10, Seed: 3232,
	}
	results, fp, err := RunMatrixCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Complete || r.Corrupt {
			t.Fatalf("smoke transfer failed: %+v", r)
		}
	}
	_, fp2, err := RunMatrixCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fp != fp2 {
		t.Fatalf("smoke digest mismatch: %#x vs %#x", fp, fp2)
	}
}

// TestMatrixCellsDistinct: different cells produce different traffic; the
// fingerprint actually depends on the configuration, not just the code.
func TestMatrixCellsDistinct(t *testing.T) {
	a := MatrixConfig{Name: "a", Machines: 4, Conversations: 2, Bytes: 4 << 10, Seed: 1}
	b := a
	b.Name, b.Loss, b.Seed = "b", 0.05, 1
	_, fpA, err := RunMatrixCell(a)
	if err != nil {
		t.Fatal(err)
	}
	_, fpB, err := RunMatrixCell(b)
	if err != nil {
		t.Fatal(err)
	}
	if fpA == fpB {
		t.Errorf("clean and lossy cells share fingerprint %#x", fpA)
	}
}

// TestConversationHarnessErrors: misuse surfaces as errors, not panics.
func TestConversationHarnessErrors(t *testing.T) {
	in, err := Star(2, edge, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunConversations(in, []Conversation{{From: "h0", To: "nope", Bytes: 10}}, sim.Time(sim.Second)); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := RunConversations(in, []Conversation{{From: "nope", To: "h0", Bytes: 10}}, sim.Time(sim.Second)); err == nil {
		t.Error("unknown machine accepted")
	}
}

// TestConversationDeadline: a transfer that cannot finish (permanently
// downed spoke) reports incomplete instead of hanging.
func TestConversationDeadline(t *testing.T) {
	in, err := Star(2, edge, 1)
	if err != nil {
		t.Fatal(err)
	}
	in.Link("h0~s0").SetDown(true)
	results, err := RunConversations(in, []Conversation{
		{From: "h0", To: "h1", Bytes: 4 << 10},
	}, sim.Time(2*sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Complete {
		t.Error("transfer completed across a dead link")
	}
	if results[0].Received != 0 {
		t.Errorf("received %d bytes across a dead link", results[0].Received)
	}
}

func init() {
	// Guard: the matrix template must pair distinct machines in every cell
	// (From == To would short-circuit the network entirely).
	for _, cfg := range DefaultMatrix() {
		for i := 0; i < cfg.Conversations; i++ {
			from := i % cfg.Machines
			to := (i + cfg.Machines/2) % cfg.Machines
			if from == to {
				panic(fmt.Sprintf("matrix cell %s pairs h%d with itself", cfg.Name, from))
			}
		}
	}
}
