// Package vnet builds virtual internets out of spin Machines: routed
// multi-machine topologies whose nodes are full SPIN kernels (and simple
// store-and-forward switches), connected by modeled links with latency,
// bandwidth serialization, and seeded loss / reordering / duplication.
//
// Everything runs on sim.Cluster's conservative discrete-event stepping:
// each machine and each switch owns its engine and clock, frames hop
// between engines at computed arrival times, and the globally earliest
// event always runs first. With a fixed topology and seed, a run is
// byte-identical — per-link frame-order digests (Link.Digests,
// Internet.Fingerprint) make that checkable, netem-style hooks (Link.
// AddHook) and faultinject sites ("vnet.link:<name>") bend traffic
// deterministically, and CaptureLink exports any link's frames as a
// tshark-readable pcap file.
//
// Topologies come from the Builder DSL or the Star / Dumbbell / FatTree
// helpers; the conversation harness (RunConversations) drives cross-machine
// TCP transfers over any of them.
package vnet

import (
	"fmt"
	"io"

	"spin"
	"spin/internal/faultinject"
	"spin/internal/netstack"
	"spin/internal/sim"
	"spin/internal/trace"
)

// Internet is a built topology: machines, switches and links coordinated by
// one conservative cluster. Construct one with a Builder (or the topology
// helpers), then drive traffic and Run it.
type Internet struct {
	cluster *sim.Cluster
	// coord is the coordinator engine: a clockless scheduler for topology
	// events (link flaps, scripted failures) at exact virtual times.
	coord *sim.Engine

	seed         uint64
	machines     map[string]*spin.Machine
	machineOrder []string
	switches     map[string]*Switch
	switchOrder  []string
	links        map[string]*Link
	linkOrder    []string

	inj *faultinject.Injector
	tr  *trace.Tracer

	// Naming & sockets (named.go): the topology-wide DNS authority and the
	// blocking-adapter driver over the cluster.
	dnsServer string
	driver    *netstack.Driver
	// resolvers are the per-machine stub resolvers EnableDNS installed
	// (internet-owned), in machine order — RemoveName flushes a withdrawn
	// name from each so staleness is bounded by the negative TTL.
	resolvers []*netstack.Resolver
}

// Seed returns the seed the topology's link models replay from.
func (in *Internet) Seed() uint64 { return in.seed }

// Cluster returns the conservative cluster driving all engines.
func (in *Internet) Cluster() *sim.Cluster { return in.cluster }

// Machine returns a machine by name (nil if absent).
func (in *Internet) Machine(name string) *spin.Machine { return in.machines[name] }

// Machines lists machine names in declaration order.
func (in *Internet) Machines() []string { return in.machineOrder }

// Switch returns a switch by name (nil if absent).
func (in *Internet) Switch(name string) *Switch { return in.switches[name] }

// Switches lists switch names in declaration order.
func (in *Internet) Switches() []string { return in.switchOrder }

// Link returns a link by name (nil if absent).
func (in *Internet) Link(name string) *Link { return in.links[name] }

// Links lists link names in declaration order.
func (in *Internet) Links() []string { return in.linkOrder }

// IP returns a machine's address.
func (in *Internet) IP(name string) netstack.IPAddr {
	if m := in.machines[name]; m != nil {
		return m.Stack.IP
	}
	return 0
}

// Run drains the whole topology until every engine is idle or the earliest
// pending event passes deadline (0 = none). Returns events executed.
func (in *Internet) Run(deadline sim.Time) int { return in.cluster.Run(deadline) }

// RunUntil steps until pred holds, everything drains, or deadline passes.
func (in *Internet) RunUntil(pred func() bool, deadline sim.Time) bool {
	return in.cluster.RunUntil(pred, deadline)
}

// At schedules fn on the coordinator engine at virtual time t — the hook
// for scripted topology events (flaps, staged traffic).
func (in *Internet) At(t sim.Time, fn func()) { in.coord.At(t, fn) }

// FlapLink schedules a partition: the named link goes down at downAt and
// comes back at upAt. TCP conversations across it stall and recover by
// retransmission once the link heals.
func (in *Internet) FlapLink(name string, downAt, upAt sim.Time) error {
	l := in.links[name]
	if l == nil {
		return fmt.Errorf("vnet: no link %q", name)
	}
	in.coord.At(downAt, func() { l.SetDown(true) })
	in.coord.At(upAt, func() { l.SetDown(false) })
	return nil
}

// EnableFaultInjection arms a deterministic injector on every link: sites
// "vnet.link:<name>" (per link) and "vnet.link" (any link) consult it per
// frame. The injector has no clock — KindDelay rules stretch flight time
// instead of charging a CPU. Arm rules on the returned injector.
func (in *Internet) EnableFaultInjection(seed uint64) *faultinject.Injector {
	in.inj = faultinject.New(seed, nil)
	for _, name := range in.linkOrder {
		in.links[name].inj = in.inj
	}
	return in.inj
}

// EnableTracing records per-link frame events (vnet.link.deliver, .lost,
// .down, .hook-drop, .injected) in a fresh tracer ring shared by all links.
func (in *Internet) EnableTracing(ringSize int) *trace.Tracer {
	in.tr = trace.New(ringSize)
	for _, name := range in.linkOrder {
		in.links[name].tr = in.tr
	}
	return in.tr
}

// CaptureLink streams both directions of the named link to w as a classic
// pcap capture. Call before running; returns the capture for Records/Err.
func (in *Internet) CaptureLink(name string, w io.Writer) (*Capture, error) {
	l := in.links[name]
	if l == nil {
		return nil, fmt.Errorf("vnet: no link %q", name)
	}
	c := NewCapture(w)
	l.cap = c
	return c, nil
}

// LinkDigests returns every link's per-direction frame-order digests, keyed
// by link name.
func (in *Internet) LinkDigests() map[string][2]uint64 {
	out := make(map[string][2]uint64, len(in.links))
	for name, l := range in.links {
		ab, ba := l.Digests()
		out[name] = [2]uint64{ab, ba}
	}
	return out
}

// Fingerprint folds the whole run into one value: every link's digests (in
// declaration order) plus every machine's end-state counters (IP packets
// received/sent, per-NIC frames and bytes). Two runs of the same seeded
// topology match exactly when their fingerprints match.
func (in *Internet) Fingerprint() uint64 {
	fp := mix64(in.seed)
	for _, name := range in.linkOrder {
		ab, ba := in.links[name].Digests()
		fp = mix64(fp ^ hashString(name) ^ ab)
		fp = mix64(fp ^ ba)
	}
	for _, name := range in.machineOrder {
		m := in.machines[name]
		recv, sent := m.Stack.Stats()
		fp = mix64(fp ^ hashString(name) ^ uint64(recv)<<32 ^ uint64(sent))
		for _, nic := range m.NICs() {
			s, r, bs, br := nic.Stats()
			fp = mix64(fp ^ uint64(s)<<48 ^ uint64(r)<<32 ^ uint64(bs)<<16 ^ uint64(br))
		}
	}
	for _, name := range in.switchOrder {
		f, nr, ttl := in.switches[name].Stats()
		fp = mix64(fp ^ hashString(name) ^ uint64(f)<<32 ^ uint64(nr)<<16 ^ uint64(ttl))
	}
	return fp
}

// Describe renders the topology: nodes, links and their models — the
// debugger's "topo" view.
func (in *Internet) Describe() string {
	s := fmt.Sprintf("vnet: %d machines, %d switches, %d links (seed %d)\n",
		len(in.machineOrder), len(in.switchOrder), len(in.linkOrder), in.seed)
	for _, name := range in.machineOrder {
		m := in.machines[name]
		s += fmt.Sprintf("  machine %-12s %v  nics=%d\n", name, m.Stack.IP, len(m.NICs()))
	}
	for _, name := range in.switchOrder {
		sw := in.switches[name]
		s += fmt.Sprintf("  switch  %-12s ports=%d\n", name, len(sw.ports))
	}
	for _, name := range in.linkOrder {
		l := in.links[name]
		state := "up"
		if l.down {
			state = "DOWN"
		}
		s += fmt.Sprintf("  link    %-12s lat=%v bw=%d loss=%.3f %s\n",
			name, l.Model.Latency, l.Model.BandwidthBps, l.Model.Loss, state)
	}
	return s
}
