package vnet

import (
	"fmt"

	"spin/internal/netstack"
	"spin/internal/sim"
)

// Conversation is one cross-machine TCP transfer for the harness: From
// connects to To on Port and streams Bytes of a deterministic pattern; the
// server side verifies every byte as it arrives.
type Conversation struct {
	From, To string
	Port     uint16
	Bytes    int
	// Chunk is the application write size (default 4096).
	Chunk int
}

// ConvResult is one conversation's outcome.
type ConvResult struct {
	From, To string
	Port     uint16
	// Received counts verified in-order bytes at the server.
	Received int
	// Complete reports the full payload arrived before the deadline.
	Complete bool
	// Corrupt reports a byte arrived that did not match the pattern —
	// must never happen, whatever the links did.
	Corrupt bool
	// Retransmits is the client connection's retransmission count.
	Retransmits int64
}

// pattern is the deterministic payload byte at offset off of conversation
// idx — cheap to generate on both sides, position-sensitive so swapped or
// duplicated-into-stream bytes are caught.
func pattern(idx, off int) byte { return byte(idx*31 + off*7 + 11) }

// RunConversations drives convs over the topology until every transfer
// completes or the earliest pending event passes deadline (0 = drain).
// Conversations with Port 0 get distinct ports from 4000 up. The returned
// results are in convs order; err is non-nil only for harness misuse
// (unknown machine), never for lost traffic.
func RunConversations(in *Internet, convs []Conversation, deadline sim.Time) ([]ConvResult, error) {
	results := make([]ConvResult, len(convs))
	done := 0
	for i := range convs {
		c := convs[i]
		if c.Port == 0 {
			c.Port = uint16(4000 + i)
		}
		if c.Chunk <= 0 {
			c.Chunk = 4096
		}
		r := &results[i]
		r.From, r.To, r.Port = c.From, c.To, c.Port
		server := in.Machine(c.To)
		client := in.Machine(c.From)
		if server == nil || client == nil {
			return nil, fmt.Errorf("vnet: conversation %d: unknown machine %q or %q", i, c.From, c.To)
		}
		idx, total := i, c.Bytes
		err := server.Stack.TCP().Listen(c.Port, netstack.InKernelDelivery, func(conn *netstack.Conn) {
			conn.OnData = func(_ *netstack.Conn, b []byte) {
				for _, by := range b {
					if by != pattern(idx, r.Received) {
						r.Corrupt = true
					}
					r.Received++
				}
				if r.Received >= total && !r.Complete {
					r.Complete = true
					done++
				}
			}
		})
		if err != nil {
			return nil, fmt.Errorf("vnet: conversation %d: listen: %w", i, err)
		}
		conn, err := client.Stack.TCP().Connect(server.Stack.IP, c.Port, netstack.InKernelDelivery)
		if err != nil {
			return nil, fmt.Errorf("vnet: conversation %d: connect: %w", i, err)
		}
		chunk := c.Chunk
		conn.OnConnect = func(cn *netstack.Conn) {
			buf := make([]byte, 0, chunk)
			for off := 0; off < total; {
				n := chunk
				if off+n > total {
					n = total - off
				}
				buf = buf[:0]
				for j := 0; j < n; j++ {
					buf = append(buf, pattern(idx, off+j))
				}
				_ = cn.Send(buf)
				off += n
			}
		}
		rr := r
		cc := conn
		defer func() { rr.Retransmits = cc.Retransmits() }()
	}
	in.RunUntil(func() bool { return done == len(convs) }, deadline)
	return results, nil
}

// CheckReplay builds and drives the same scenario runs times and verifies
// every run produces an identical fingerprint — the determinism gate. It
// returns the common fingerprint.
func CheckReplay(runs int, build func() (*Internet, error), drive func(*Internet) error) (uint64, error) {
	var fp uint64
	for i := 0; i < runs; i++ {
		in, err := build()
		if err != nil {
			return 0, fmt.Errorf("vnet: replay run %d: build: %w", i, err)
		}
		if drive != nil {
			if err := drive(in); err != nil {
				return 0, fmt.Errorf("vnet: replay run %d: drive: %w", i, err)
			}
		}
		f := in.Fingerprint()
		if i == 0 {
			fp = f
		} else if f != fp {
			return 0, fmt.Errorf("vnet: replay diverged: run %d fingerprint %#x != run 0 %#x", i, f, fp)
		}
	}
	return fp, nil
}

// MatrixConfig is one cell of the conversation matrix: a star topology of
// Machines hosts whose spokes all carry Loss/Reorder, Conversations
// concurrent pairwise transfers of Bytes each, optionally partitioned
// mid-flight (one spoke flapped down and up).
type MatrixConfig struct {
	Name          string
	Machines      int
	Loss, Reorder float64
	Partition     bool
	Conversations int
	Bytes         int
	Seed          uint64
}

// Deadline is the virtual-time budget for one matrix cell: generous enough
// for lossy, partitioned transfers (retransmission timeout is 200ms
// virtual), tight enough that a wedged transfer fails fast.
const matrixDeadline = sim.Time(120 * sim.Second)

// RunMatrixCell builds the cell's topology, drives its conversations, and
// returns the results plus the run's fingerprint. Every transfer must
// complete with zero corruption; the first violation is the returned error.
func RunMatrixCell(cfg MatrixConfig) ([]ConvResult, uint64, error) {
	spoke := LinkModel{
		Latency:      200 * sim.Microsecond,
		Loss:         cfg.Loss,
		Reorder:      cfg.Reorder,
		ReorderDelay: 300 * sim.Microsecond,
	}
	in, err := Star(cfg.Machines, spoke, cfg.Seed)
	if err != nil {
		return nil, 0, err
	}
	if cfg.Partition {
		// Cut host 0's spoke 1ms in — early enough that no transfer over
		// it has finished — and heal it at 600ms; TCP must ride it out.
		if err := in.FlapLink("h0~s0", sim.Time(1*sim.Millisecond), sim.Time(600*sim.Millisecond)); err != nil {
			return nil, 0, err
		}
	}
	convs := make([]Conversation, cfg.Conversations)
	for i := range convs {
		convs[i] = Conversation{
			From:  fmt.Sprintf("h%d", i%cfg.Machines),
			To:    fmt.Sprintf("h%d", (i+cfg.Machines/2)%cfg.Machines),
			Bytes: cfg.Bytes,
		}
	}
	results, err := RunConversations(in, convs, matrixDeadline)
	if err != nil {
		return nil, 0, err
	}
	for _, r := range results {
		if !r.Complete {
			return results, 0, fmt.Errorf("vnet: %s: %s->%s:%d incomplete (%d/%d bytes)",
				cfg.Name, r.From, r.To, r.Port, r.Received, cfg.Bytes)
		}
		if r.Corrupt {
			return results, 0, fmt.Errorf("vnet: %s: %s->%s:%d corrupted", cfg.Name, r.From, r.To, r.Port)
		}
	}
	return results, in.Fingerprint(), nil
}

// DefaultMatrix is the harness's standard sweep: loss × reorder ×
// partition × machine count, every cell a complete seeded scenario.
func DefaultMatrix() []MatrixConfig {
	var out []MatrixConfig
	for _, machines := range []int{2, 4, 8} {
		for _, loss := range []float64{0, 0.05} {
			for _, reorder := range []float64{0, 0.1} {
				out = append(out, MatrixConfig{
					Name:          fmt.Sprintf("m%d/loss%.2f/reorder%.1f", machines, loss, reorder),
					Machines:      machines,
					Loss:          loss,
					Reorder:       reorder,
					Conversations: machines / 2,
					Bytes:         16 << 10,
					Seed:          uint64(machines)*1000 + uint64(loss*100)*10 + uint64(reorder*10),
				})
			}
		}
	}
	// Partition cells: clean and lossy.
	for _, loss := range []float64{0, 0.02} {
		out = append(out, MatrixConfig{
			Name:          fmt.Sprintf("m4/partition/loss%.2f", loss),
			Machines:      4,
			Loss:          loss,
			Partition:     true,
			Conversations: 2,
			Bytes:         32 << 10,
			Seed:          7_000 + uint64(loss*100),
		})
	}
	return out
}
