package vnet

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"spin/internal/netstack"
	"spin/internal/sim"
)

// buildPair returns a two-machine direct-link topology.
func buildPair(t *testing.T, model LinkModel, seed uint64) *Internet {
	t.Helper()
	in, err := NewBuilder(seed).
		Machine("a", 0).Machine("b", 0).
		Link("a", "b", model).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestHookDroppedFramesNeverReachPeer: property, across several seeds and
// drop predicates — every frame a hook drops is invisible to the peer NIC,
// and every frame it passes arrives. Checked against the NIC's own receive
// counters, not the link's bookkeeping.
func TestHookDroppedFramesNeverReachPeer(t *testing.T) {
	for _, seed := range []uint64{1, 2, 77} {
		for _, modulus := range []int{2, 3, 5} {
			in := buildPair(t, LinkModel{Latency: 20 * sim.Microsecond}, seed)
			a, b := in.Machine("a"), in.Machine("b")
			dropped := 0
			in.Link("a~b").AddHook(func(ev *FrameEvent) Verdict {
				pkt, ok := ev.Frame.Payload.(*netstack.Packet)
				if ok && pkt.Proto == netstack.ProtoUDP && len(pkt.Payload) > 0 &&
					int(pkt.Payload[0])%modulus == 0 {
					dropped++
					return Drop
				}
				return Pass
			})
			got := 0
			b.Stack.UDP().Bind(9, nil, func(*netstack.Packet) { got++ })
			const n = 60
			for i := 0; i < n; i++ {
				payload := []byte{byte(i), byte(seed)}
				if err := a.Stack.UDP().Send(100, in.IP("b"), 9, payload); err != nil {
					t.Fatal(err)
				}
				in.Run(0)
			}
			if dropped == 0 {
				t.Fatalf("seed %d mod %d: predicate never matched", seed, modulus)
			}
			_, recv, _, _ := b.NICs()[0].Stats()
			if int(recv) != n-dropped {
				t.Errorf("seed %d mod %d: peer NIC saw %d frames, want %d sent - %d dropped",
					seed, modulus, recv, n, dropped)
			}
			if got != n-dropped {
				t.Errorf("seed %d mod %d: delivered %d datagrams, want %d",
					seed, modulus, got, n-dropped)
			}
			ab, _ := in.Link("a~b").Stats()
			if int(ab.HookDropped) != dropped {
				t.Errorf("link counted %d hook drops, hook made %d", ab.HookDropped, dropped)
			}
		}
	}
}

// TestHookAlterPreservesWireParity: altering a frame in a hook is
// wire-identical to the sender having sent the altered bytes — the link
// digest (computed from encoded wire bytes post-hook) and the peer's view
// must match a run where the source sent the altered payload directly.
func TestHookAlterPreservesWireParity(t *testing.T) {
	const n = 30
	run := func(alterInHook bool) (uint64, []byte) {
		in := buildPair(t, LinkModel{Latency: 20 * sim.Microsecond}, 9)
		a, b := in.Machine("a"), in.Machine("b")
		if alterInHook {
			in.Link("a~b").AddHook(func(ev *FrameEvent) Verdict {
				if pkt, ok := ev.Frame.Payload.(*netstack.Packet); ok &&
					pkt.Proto == netstack.ProtoUDP && len(pkt.Payload) > 0 {
					pkt.Payload[0] ^= 0xAA
				}
				return Pass
			})
		}
		var seen []byte
		b.Stack.UDP().Bind(9, nil, func(pkt *netstack.Packet) {
			seen = append(seen, pkt.Payload...)
		})
		for i := 0; i < n; i++ {
			payload := []byte{byte(i), byte(i * 3)}
			if !alterInHook {
				payload[0] ^= 0xAA // sender applies the same mutation
			}
			if err := a.Stack.UDP().Send(100, in.IP("b"), 9, payload); err != nil {
				t.Fatal(err)
			}
			in.Run(0)
		}
		ab, _ := in.Link("a~b").Digests()
		return ab, seen
	}
	dHook, seenHook := run(true)
	dSrc, seenSrc := run(false)
	if dHook != dSrc {
		t.Errorf("wire digest differs: hook-altered %#x vs source-altered %#x", dHook, dSrc)
	}
	if !bytes.Equal(seenHook, seenSrc) {
		t.Error("peer payloads differ between hook-altered and source-altered runs")
	}
}

// TestHookDelay: ExtraDelay added by a hook pushes arrivals out in virtual
// time without touching any CPU clock.
func TestHookDelay(t *testing.T) {
	in := buildPair(t, LinkModel{}, 3)
	a, b := in.Machine("a"), in.Machine("b")
	const holdup = 7 * sim.Millisecond
	in.Link("a~b").AddHook(func(ev *FrameEvent) Verdict {
		ev.ExtraDelay += holdup
		return Pass
	})
	var arrival sim.Time
	b.Stack.UDP().Bind(9, nil, func(*netstack.Packet) { arrival = b.Clock.Now() })
	if err := a.Stack.UDP().Send(100, in.IP("b"), 9, []byte{1}); err != nil {
		t.Fatal(err)
	}
	in.Run(0)
	if arrival < sim.Time(holdup) {
		t.Errorf("arrival at %v, before the %v hook delay", arrival, holdup)
	}
}

// goldenScenario drives the fixed capture workload: a clean two-machine
// link, three UDP datagrams and a ping, seed 1000 — fully deterministic.
func goldenScenario(t *testing.T, w *bytes.Buffer) *Capture {
	t.Helper()
	in := buildPair(t, LinkModel{Latency: 50 * sim.Microsecond}, 1000)
	cap, err := in.CaptureLink("a~b", w)
	if err != nil {
		t.Fatal(err)
	}
	a, b := in.Machine("a"), in.Machine("b")
	b.Stack.UDP().Bind(9, nil, func(*netstack.Packet) {})
	for i := 0; i < 3; i++ {
		if err := a.Stack.UDP().Send(100, in.IP("b"), 9, []byte{byte(i), 0xBE, 0xEF}); err != nil {
			t.Fatal(err)
		}
		in.Run(0)
	}
	if err := a.Stack.Ping(in.IP("b"), 1, 8, nil); err != nil {
		t.Fatal(err)
	}
	in.Run(0)
	return cap
}

// TestPCAPGoldenFile: the capture of the fixed scenario must match the
// checked-in fixture byte for byte. Regenerate with -update after an
// intentional format or scenario change.
var updateGolden = os.Getenv("UPDATE_GOLDEN") != ""

func TestPCAPGoldenFile(t *testing.T) {
	var buf bytes.Buffer
	cap := goldenScenario(t, &buf)
	if cap.Err() != nil {
		t.Fatal(cap.Err())
	}
	// 3 datagrams + ping request + ping reply.
	if cap.Records() != 5 {
		t.Fatalf("captured %d records, want 5", cap.Records())
	}
	golden := filepath.Join("testdata", "golden.pcap")
	if updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing fixture (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("capture diverged from fixture: got %d bytes, fixture %d bytes", buf.Len(), len(want))
	}
}

// TestPCAPFormat validates the writer against the classic pcap layout:
// little-endian magic, version 2.4, snaplen, Ethernet linktype, and
// per-record headers whose lengths and microsecond timestamps are
// consistent with the frames written.
func TestPCAPFormat(t *testing.T) {
	var buf bytes.Buffer
	goldenScenario(t, &buf)
	b := buf.Bytes()
	if len(b) < pcapHdrLen {
		t.Fatalf("capture too short: %d bytes", len(b))
	}
	if magic := binary.LittleEndian.Uint32(b[0:4]); magic != pcapMagic {
		t.Fatalf("magic %#x, want %#x little-endian", magic, uint32(pcapMagic))
	}
	if maj := binary.LittleEndian.Uint16(b[4:6]); maj != 2 {
		t.Errorf("version major %d, want 2", maj)
	}
	if min := binary.LittleEndian.Uint16(b[6:8]); min != 4 {
		t.Errorf("version minor %d, want 4", min)
	}
	if sl := binary.LittleEndian.Uint32(b[16:20]); sl != pcapSnapLen {
		t.Errorf("snaplen %d, want %d", sl, pcapSnapLen)
	}
	if lt := binary.LittleEndian.Uint32(b[20:24]); lt != pcapEthernet {
		t.Errorf("linktype %d, want %d (Ethernet)", lt, pcapEthernet)
	}
	// Walk records: each must parse, carry a plausible IPv4-in-Ethernet
	// frame, and timestamps must not decrease (no reordering configured).
	off := pcapHdrLen
	var lastTS uint64
	records := 0
	for off < len(b) {
		if off+pcapRecHdrLen > len(b) {
			t.Fatalf("truncated record header at %d", off)
		}
		sec := binary.LittleEndian.Uint32(b[off : off+4])
		usec := binary.LittleEndian.Uint32(b[off+4 : off+8])
		incl := binary.LittleEndian.Uint32(b[off+8 : off+12])
		orig := binary.LittleEndian.Uint32(b[off+12 : off+16])
		if usec >= 1_000_000 {
			t.Errorf("record %d: usec %d out of range", records, usec)
		}
		if incl != orig {
			t.Errorf("record %d: incl %d != orig %d under snaplen", records, incl, orig)
		}
		ts := uint64(sec)*1_000_000 + uint64(usec)
		if ts < lastTS {
			t.Errorf("record %d: timestamp went backwards", records)
		}
		lastTS = ts
		frame := b[off+pcapRecHdrLen : off+pcapRecHdrLen+int(incl)]
		if pkt, err := netstack.ParsePacket(frame); err != nil {
			t.Errorf("record %d: frame does not parse: %v", records, err)
		} else if pkt.Src == 0 || pkt.Dst == 0 {
			t.Errorf("record %d: zero addresses", records)
		}
		off += pcapRecHdrLen + int(incl)
		records++
	}
	if records != 5 {
		t.Errorf("walked %d records, want 5", records)
	}
}
