package vnet

import (
	"encoding/binary"
	"io"

	"spin/internal/sim"
)

// pcap classic capture format (little-endian), readable by tshark/tcpdump/
// Wireshark: a 24-byte global header followed by per-record headers with
// second/microsecond timestamps. Virtual time maps directly: sim.Time is
// nanoseconds since boot, so a capture of a simulated exchange opens as a
// capture taken at the epoch.
const (
	pcapMagic     = 0xa1b2c3d4
	pcapVerMajor  = 2
	pcapVerMinor  = 4
	pcapSnapLen   = 65535
	pcapEthernet  = 1 // LINKTYPE_ETHERNET
	pcapHdrLen    = 24
	pcapRecHdrLen = 16
)

// Capture writes frames in pcap classic format. One Capture may serve both
// directions of a link (or several links); records are written in transmit
// order, which is deterministic under the cluster's conservative stepping.
type Capture struct {
	w       io.Writer
	err     error
	records int
}

// NewCapture writes the pcap global header to w and returns the capture.
// The first write error is latched and reported by Err; later records are
// discarded.
func NewCapture(w io.Writer) *Capture {
	c := &Capture{w: w}
	var hdr [pcapHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVerMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVerMinor)
	// thiszone, sigfigs: zero.
	binary.LittleEndian.PutUint32(hdr[16:20], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], pcapEthernet)
	_, c.err = w.Write(hdr[:])
	return c
}

// Record writes one frame observed at virtual time t.
func (c *Capture) Record(t sim.Time, frame []byte) {
	if c.err != nil {
		return
	}
	n := len(frame)
	if n > pcapSnapLen {
		n = pcapSnapLen
	}
	var hdr [pcapRecHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(t/sim.Time(sim.Second)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(t%sim.Time(sim.Second))/1000)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(n))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(frame)))
	if _, c.err = c.w.Write(hdr[:]); c.err != nil {
		return
	}
	if _, c.err = c.w.Write(frame[:n]); c.err != nil {
		return
	}
	c.records++
}

// Records reports how many frames have been written.
func (c *Capture) Records() int { return c.records }

// Err reports the first write error, if any.
func (c *Capture) Err() error { return c.err }
