package vnet

import (
	"strings"
	"testing"

	"spin/internal/faultinject"
	"spin/internal/netstack"
	"spin/internal/sim"
)

// edge is a plain low-latency link for tests.
var edge = LinkModel{Latency: 100 * sim.Microsecond}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(1).Build(); err == nil {
		t.Error("empty topology built")
	}
	if _, err := NewBuilder(1).Machine("a", 0).Machine("a", 0).Build(); err == nil {
		t.Error("duplicate node built")
	}
	if _, err := NewBuilder(1).Machine("a", 0).Link("a", "nope", edge).Build(); err == nil {
		t.Error("link to unknown node built")
	}
	if _, err := NewBuilder(1).Machine("a", 0).Machine("b", 0).
		Link("a", "b", edge).Link("a", "b", edge).Build(); err == nil {
		t.Error("duplicate link name built")
	}
}

func TestPingThroughSwitch(t *testing.T) {
	in, err := NewBuilder(42).
		Machine("a", 0).Machine("b", 0).Switch("s0").
		Link("a", "s0", edge).Link("b", "s0", edge).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var rtt sim.Duration
	a := in.Machine("a")
	if err := a.Stack.Ping(in.IP("b"), 1, 64, func(d sim.Duration) { rtt = d }); err != nil {
		t.Fatal(err)
	}
	in.Run(0)
	if rtt == 0 {
		t.Fatal("no ping reply through switch")
	}
	// Two hops each way: at least 4x the one-way link latency.
	if rtt < 4*edge.Latency {
		t.Errorf("rtt %v < 4x link latency", rtt)
	}
	fwd, noRoute, ttl := in.Switch("s0").Stats()
	if fwd != 2 {
		t.Errorf("switch forwarded %d, want 2 (request+reply)", fwd)
	}
	if noRoute != 0 || ttl != 0 {
		t.Errorf("switch drops: noRoute=%d ttlExpired=%d", noRoute, ttl)
	}
	ab, ba := in.Link("a~s0").Digests()
	if ab == 0 || ba == 0 {
		t.Error("link carried traffic but digests are zero")
	}
	if !strings.Contains(in.Describe(), "switch  s0") {
		t.Error("Describe omits the switch")
	}
}

func TestDumbbellTCP(t *testing.T) {
	// 64 KB across a 10 Mb/s bottleneck: the transfer must complete and
	// the bottleneck's serialization must dominate the virtual time.
	bottleneck := LinkModel{Latency: 1 * sim.Millisecond, BandwidthBps: 10_000_000}
	in, err := Dumbbell(2, 2, edge, bottleneck, 7)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunConversations(in, []Conversation{
		{From: "l0", To: "r0", Bytes: 64 << 10},
	}, sim.Time(60*sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Complete || results[0].Corrupt {
		t.Fatalf("transfer failed: %+v", results[0])
	}
	// 64 KB at 10 Mb/s is ~52 ms of pure serialization; the run cannot be
	// faster than that.
	if now := in.Machine("l0").Clock.Now(); now < sim.Time(50*sim.Millisecond) {
		t.Errorf("finished at %v, faster than the bottleneck allows", now)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// Two frames back to back through a slow link: the second's arrival is
	// pushed out by the first's link-serialization time.
	slow := LinkModel{Latency: 0, BandwidthBps: 8_000_000} // 1 byte/µs
	in, err := NewBuilder(3).
		Machine("a", 0).Machine("b", 0).
		Link("a", "b", slow).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	a, b := in.Machine("a"), in.Machine("b")
	got := 0
	b.Stack.UDP().Bind(9, nil, func(*netstack.Packet) { got++ })
	for i := 0; i < 2; i++ {
		if err := a.Stack.UDP().Send(100, in.IP("b"), 9, make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	in.Run(0)
	if got != 2 {
		t.Fatalf("delivered %d datagrams, want 2", got)
	}
	// Each ~1042-byte frame takes ~1042 µs on the link; two serialized
	// frames mean b's clock passed 2 ms.
	if now := b.Clock.Now(); now < sim.Time(2*sim.Millisecond) {
		t.Errorf("b finished at %v, too fast for 8 Mb/s serialization", now)
	}
}

func TestSeededLoss(t *testing.T) {
	lossy := LinkModel{Latency: 10 * sim.Microsecond, Loss: 0.3}
	in, err := NewBuilder(99).
		Machine("a", 0).Machine("b", 0).
		Link("a", "b", lossy).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	a, b := in.Machine("a"), in.Machine("b")
	got := 0
	b.Stack.UDP().Bind(9, nil, func(*netstack.Packet) { got++ })
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Stack.UDP().Send(100, in.IP("b"), 9, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		in.Run(0)
	}
	ab, _ := in.Link("a~b").Stats()
	if ab.Lost == 0 {
		t.Fatal("30% loss model dropped nothing")
	}
	if int(ab.Delivered) != got {
		t.Errorf("delivered %d frames but %d datagrams arrived", ab.Delivered, got)
	}
	if got+int(ab.Lost) != n {
		t.Errorf("delivered %d + lost %d != sent %d", got, ab.Lost, n)
	}
	// 30% of 200: well inside [30, 90] unless the PRNG is broken.
	if ab.Lost < 30 || ab.Lost > 90 {
		t.Errorf("lost %d of %d at p=0.3, implausible", ab.Lost, n)
	}
}

func TestDuplicateDelivery(t *testing.T) {
	dup := LinkModel{Latency: 10 * sim.Microsecond, Duplicate: 0.5}
	in, err := NewBuilder(5).
		Machine("a", 0).Machine("b", 0).
		Link("a", "b", dup).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	a, b := in.Machine("a"), in.Machine("b")
	got := 0
	b.Stack.UDP().Bind(9, nil, func(*netstack.Packet) { got++ })
	const n = 100
	for i := 0; i < n; i++ {
		if err := a.Stack.UDP().Send(100, in.IP("b"), 9, make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
		in.Run(0)
	}
	ab, _ := in.Link("a~b").Stats()
	if ab.Duplicated == 0 {
		t.Fatal("50% duplication duplicated nothing")
	}
	if got != n+int(ab.Duplicated) {
		t.Errorf("got %d datagrams, want %d sent + %d dup", got, n, ab.Duplicated)
	}
}

func TestPartitionRecovery(t *testing.T) {
	// Kill the only path mid-transfer; TCP retransmission must finish the
	// transfer after the link heals.
	in, err := NewBuilder(11).
		Machine("a", 0).Machine("b", 0).Switch("s0").
		Link("a", "s0", edge).Link("b", "s0", edge).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := in.FlapLink("a~s0", sim.Time(2*sim.Millisecond), sim.Time(500*sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	results, err := RunConversations(in, []Conversation{
		{From: "a", To: "b", Bytes: 32 << 10},
	}, sim.Time(60*sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if !r.Complete || r.Corrupt {
		t.Fatalf("transfer did not survive the partition: %+v", r)
	}
	if r.Retransmits == 0 {
		t.Error("partition caused no retransmissions — flap had no effect")
	}
	ab, _ := in.Link("a~s0").Stats()
	if ab.Down == 0 {
		t.Error("no frames were dropped while the link was down")
	}
	if in.Link("a~s0").IsDown() {
		t.Error("link still down after the flap window")
	}
}

func TestFaultInjectionSites(t *testing.T) {
	in, err := NewBuilder(13).
		Machine("a", 0).Machine("b", 0).
		Link("a", "b", edge).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	inj := in.EnableFaultInjection(77)
	// Drop the first 3 frames on a~b specifically, then delay every later
	// frame via the generic site.
	inj.Arm(
		faultinject.Rule{Site: "vnet.link:a~b", Kind: faultinject.KindDrop, MaxFires: 3},
		faultinject.Rule{Site: "vnet.link", Kind: faultinject.KindDelay, Delay: 5 * sim.Millisecond},
	)
	a, b := in.Machine("a"), in.Machine("b")
	got := 0
	b.Stack.UDP().Bind(9, nil, func(*netstack.Packet) { got++ })
	const n = 10
	for i := 0; i < n; i++ {
		if err := a.Stack.UDP().Send(100, in.IP("b"), 9, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
		in.Run(0)
	}
	if got != n-3 {
		t.Errorf("delivered %d, want %d (3 injected drops)", got, n-3)
	}
	ab, _ := in.Link("a~b").Stats()
	if ab.Injected != 3 {
		t.Errorf("injected drops = %d, want 3", ab.Injected)
	}
	if inj.FiredAt("vnet.link") == 0 {
		t.Error("generic vnet.link site never fired")
	}
	// Delays stretched flight time: b's arrivals ran ~5ms after a's sends,
	// so b's clock passed 5ms while a sent only tiny frames.
	if now := b.Clock.Now(); now < sim.Time(5*sim.Millisecond) {
		t.Errorf("b clock %v: injected delay did not stretch flight time", now)
	}
}

func TestFatTreeCrossEdge(t *testing.T) {
	in, err := FatTree(2, 2, 2, edge, edge, 21)
	if err != nil {
		t.Fatal(err)
	}
	// h0 (edge e0) to h3 (edge e1): must transit e0 -> a core -> e1.
	results, err := RunConversations(in, []Conversation{
		{From: "h0", To: "h3", Bytes: 8 << 10},
	}, sim.Time(30*sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Complete || results[0].Corrupt {
		t.Fatalf("cross-edge transfer failed: %+v", results[0])
	}
	// Exactly one core carried the traffic (deterministic BFS tie-break).
	c0fwd, _, _ := in.Switch("c0").Stats()
	c1fwd, _, _ := in.Switch("c1").Stats()
	if c0fwd == 0 && c1fwd == 0 {
		t.Error("no core switch forwarded anything")
	}
	if c0fwd != 0 && c1fwd != 0 {
		t.Error("both cores carried the flow; BFS should pick one")
	}
}

func TestTracingRecordsLinkEvents(t *testing.T) {
	lossy := LinkModel{Latency: 10 * sim.Microsecond, Loss: 0.5}
	in, err := NewBuilder(17).
		Machine("a", 0).Machine("b", 0).
		Link("a", "b", lossy).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := in.EnableTracing(1024)
	a := in.Machine("a")
	for i := 0; i < 40; i++ {
		if err := a.Stack.UDP().Send(100, in.IP("b"), 9, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
		in.Run(0)
	}
	deliver, lost := 0, 0
	for _, rec := range tr.Snapshot() {
		switch rec.Event {
		case "vnet.link.deliver":
			deliver++
		case "vnet.link.lost":
			lost++
		}
	}
	if deliver == 0 || lost == 0 {
		t.Errorf("trace saw deliver=%d lost=%d, want both > 0", deliver, lost)
	}
}
