package vnet

import (
	"testing"

	"spin/internal/netstack"
	"spin/internal/sim"
)

// BenchmarkVnetHop measures the real (wall-clock) cost of one link
// traversal in a switched topology: UDP datagrams from h0 to h1 through
// s0, two hops each. The vnet-hop-ns metric is the simulator's per-hop
// overhead — what bounds how large a topology and how much traffic a
// wall-clock second of testing can cover. Gated by scripts/bench_smoke.sh
// against BENCH_baseline.json.
func BenchmarkVnetHop(b *testing.B) {
	in, err := Star(2, LinkModel{Latency: 50 * sim.Microsecond}, 1)
	if err != nil {
		b.Fatal(err)
	}
	h0 := in.Machine("h0")
	dst := in.IP("h1")
	got := 0
	in.Machine("h1").Stack.UDP().Bind(9, nil, func(*netstack.Packet) { got++ })
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h0.Stack.UDP().Send(100, dst, 9, payload); err != nil {
			b.Fatal(err)
		}
		in.Run(0)
	}
	b.StopTimer()
	if got != b.N {
		b.Fatalf("delivered %d of %d datagrams", got, b.N)
	}
	// Two link hops per datagram (h0->s0, s0->h1).
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*2), "vnet-hop-ns")
}
