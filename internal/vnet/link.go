package vnet

import (
	"encoding/binary"

	"spin/internal/faultinject"
	"spin/internal/netstack"
	"spin/internal/sal"
	"spin/internal/sim"
	"spin/internal/trace"
)

// LinkModel is the performance and fault model of one link. The zero value
// is an ideal wire: no latency, no bandwidth constraint beyond the NICs'
// own, no loss, no reordering, no duplication.
type LinkModel struct {
	// Latency is the one-way propagation delay.
	Latency sim.Duration
	// BandwidthBps, when non-zero, serializes frames at this rate on the
	// link itself — the bottleneck model for dumbbell experiments. NIC-side
	// serialization (the sender's wire rate) still applies first.
	BandwidthBps int64
	// Loss drops frames in flight with this probability, seeded and
	// per-direction, so a run replays exactly.
	Loss float64
	// Reorder delays a frame by ReorderDelay with this probability, letting
	// later frames overtake it.
	Reorder      float64
	ReorderDelay sim.Duration
	// Duplicate delivers a frame twice with this probability.
	Duplicate float64
}

// Verdict is a netem hook's decision about one frame.
type Verdict uint8

// Hook verdicts.
const (
	// Pass lets the frame continue (possibly altered, possibly delayed).
	Pass Verdict = iota
	// Drop discards the frame; the peer never sees it.
	Drop
)

// FrameEvent is what a netem hook observes: one frame entering a link
// direction, after NIC-side serialization and before the link's own fault
// models run. Hooks may mutate the frame (size, payload packet fields) and
// add delay; returning Drop discards it.
type FrameEvent struct {
	// Link and Dir identify where the frame is ("a~b", "h1->s0").
	Link, Dir string
	// Frame is the frame in flight, mutable in place.
	Frame *sal.NetFrame
	// Depart is when the frame finished serializing out of the sender.
	Depart sim.Time
	// ExtraDelay is added to the frame's arrival time; hooks accumulate
	// into it (netem-style delay injection).
	ExtraDelay sim.Duration
}

// Hook inspects, alters, delays or drops frames on a link direction. Hooks
// run in frame-transmit order on the sending machine's goroutine; they must
// not block.
type Hook func(ev *FrameEvent) Verdict

// LinkStats counts one direction's traffic.
type LinkStats struct {
	// Delivered frames reached the far endpoint (duplicates included).
	Delivered int64
	// Lost frames were dropped by the seeded loss model.
	Lost int64
	// Down frames were dropped because the link was administratively down.
	Down int64
	// HookDropped frames were dropped by a netem hook.
	HookDropped int64
	// Injected frames were dropped by a faultinject rule at the link site.
	Injected int64
	// Duplicated and Reordered count the fault models firing.
	Duplicated, Reordered int64
}

// endpoint is anything a link can deliver frames to: a host NIC or a switch
// port. Both schedule the arrival on their own machine's engine.
type endpoint interface {
	DeliverAt(t sim.Time, f sal.NetFrame)
}

// half is one direction of a link. It implements sal.Wire: the sending NIC
// (or switch port) hands it frames with serialization already applied, and
// the half owns everything to the far endpoint — bandwidth, loss, reorder,
// duplication, hooks, capture, digest.
type half struct {
	link   *Link
	dir    string
	to     endpoint
	rng    *sim.Rand
	freeAt sim.Time // link-bandwidth serialization

	stats   LinkStats
	digest  uint64
	scratch []byte
}

// Link is a full-duplex modeled link between two nodes of an Internet. Both
// directions share the model but have independent PRNGs, counters and
// digests.
type Link struct {
	Name  string
	Model LinkModel

	ab, ba *half // a->b, b->a

	down  bool
	hooks []Hook

	// inj/tr/cap are set by the Internet (EnableFaultInjection,
	// EnableTracing, CaptureLink) before the simulation runs.
	inj *faultinject.Injector
	tr  *trace.Tracer
	cap *Capture

	// site is the per-link faultinject site name, "vnet.link:<name>".
	site string
}

func newLink(name string, model LinkModel, seed uint64) *Link {
	l := &Link{Name: name, Model: model, site: "vnet.link:" + name}
	l.ab = &half{link: l, rng: sim.NewRand(mix64(seed ^ hashString(name)))}
	l.ba = &half{link: l, rng: sim.NewRand(mix64(seed ^ hashString(name) ^ 0x9e37))}
	return l
}

// SetDown administratively downs (true) or restores (false) the link; while
// down every frame in either direction is dropped. Schedule flips from the
// Internet's coordinator engine (FlapLink) so they land at a deterministic
// virtual time.
func (l *Link) SetDown(down bool) { l.down = down }

// IsDown reports the administrative state.
func (l *Link) IsDown() bool { return l.down }

// AddHook appends a netem hook observing both directions, run in
// registration order; the first Drop wins.
func (l *Link) AddHook(h Hook) { l.hooks = append(l.hooks, h) }

// Stats returns both directions' counters (a->b, b->a — the a side is the
// first node named when the link was built).
func (l *Link) Stats() (ab, ba LinkStats) { return l.ab.stats, l.ba.stats }

// Digests returns the per-direction frame-order digests: a chained hash
// over (encoded frame bytes, arrival time) of every delivered frame. Two
// runs of the same seeded topology produce byte-identical traffic exactly
// when these match on every link.
func (l *Link) Digests() (ab, ba uint64) { return l.ab.digest, l.ba.digest }

// mix64 is the splitmix64 finalizer — deterministic 64-bit mixing for
// seeds and digests.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashString folds a string into 64 bits (FNV-1a).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// hashBytes folds a byte slice into 64 bits (FNV-1a).
func hashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// txTime returns the link-side serialization time for n bytes (zero when
// the link has no bandwidth constraint of its own).
func (m *LinkModel) txTime(n int) sim.Duration {
	if m.BandwidthBps <= 0 {
		return 0
	}
	return sim.Duration(int64(n) * 8 * int64(sim.Second) / m.BandwidthBps)
}

// encode renders the frame's wire bytes into the half's scratch buffer —
// netstack packets get their real wire form (what pcap and the digest see);
// foreign payloads are represented by their size.
func (h *half) encode(f sal.NetFrame) []byte {
	if pkt, ok := f.Payload.(*netstack.Packet); ok {
		h.scratch = netstack.AppendPacket(h.scratch[:0], pkt)
		return h.scratch
	}
	h.scratch = binary.LittleEndian.AppendUint64(h.scratch[:0], uint64(f.Size))
	return h.scratch
}

// drop discards a frame (releasing a pooled payload) and traces the event.
func (h *half) drop(f sal.NetFrame, at sim.Time, why string) {
	sal.ReleaseFrame(f)
	if h.link.tr != nil {
		h.link.tr.Trace(trace.Record{
			Event: "vnet.link." + why, Origin: h.link.Name + " " + h.dir,
			Start: at, Outcome: trace.OutcomeFaulted,
		})
	}
}

// Transmit carries one frame across this direction: administrative state,
// fault injection, hooks, link-bandwidth serialization, seeded loss /
// reorder / duplication, then arrival at the far endpoint. Runs on the
// sending node's goroutine at its virtual "departed" time.
func (h *half) Transmit(f sal.NetFrame, departed sim.Time) {
	l := h.link
	if l.down {
		h.stats.Down++
		h.drop(f, departed, "down")
		return
	}
	var extra sim.Duration
	// Fault injection: the per-link site first, then the generic one.
	for _, site := range [2]string{l.site, "vnet.link"} {
		ft := l.inj.Fire(site)
		if !ft.Fired() {
			continue
		}
		switch ft.Kind {
		case faultinject.KindDrop, faultinject.KindError:
			h.stats.Injected++
			h.drop(f, departed, "injected")
			return
		case faultinject.KindDelay:
			// The injector has a nil clock here: the delay is returned,
			// not charged to any CPU, and stretches the flight time.
			extra += ft.Delay
		}
		break
	}
	// Netem hooks: inspect / alter / delay / drop.
	if len(l.hooks) > 0 {
		ev := FrameEvent{Link: l.Name, Dir: h.dir, Frame: &f, Depart: departed, ExtraDelay: extra}
		for _, hook := range l.hooks {
			if hook(&ev) == Drop {
				h.stats.HookDropped++
				h.drop(f, departed, "hook-drop")
				return
			}
		}
		extra = ev.ExtraDelay
	}
	// Link-bandwidth serialization (bottleneck links).
	start := departed
	if h.freeAt > start {
		start = h.freeAt
	}
	tx := l.Model.txTime(f.Size)
	h.freeAt = start.Add(tx)
	arrival := h.freeAt.Add(l.Model.Latency + extra)
	// Seeded fault models, fixed draw order per frame: loss, reorder, dup.
	if l.Model.Loss > 0 && h.rng.Float64() < l.Model.Loss {
		h.stats.Lost++
		h.drop(f, departed, "lost")
		return
	}
	if l.Model.Reorder > 0 && h.rng.Float64() < l.Model.Reorder {
		h.stats.Reordered++
		arrival = arrival.Add(l.Model.ReorderDelay)
	}
	dup := l.Model.Duplicate > 0 && h.rng.Float64() < l.Model.Duplicate
	h.deliver(f, arrival)
	if dup {
		h.stats.Duplicated++
		h.deliver(cloneFrame(f), arrival)
	}
}

// deliver commits one frame arrival: digest, capture, trace, then the far
// endpoint's interrupt (or switch forwarding step) at the arrival time.
func (h *half) deliver(f sal.NetFrame, arrival sim.Time) {
	wire := h.encode(f)
	h.digest = mix64(h.digest ^ hashBytes(wire) ^ uint64(arrival))
	h.stats.Delivered++
	if h.link.cap != nil {
		h.link.cap.Record(arrival, wire)
	}
	if h.link.tr != nil {
		h.link.tr.Trace(trace.Record{
			Event: "vnet.link.deliver", Origin: h.link.Name + " " + h.dir,
			Start: arrival,
		})
	}
	h.to.DeliverAt(arrival, f)
}

// cloneFrame deep-copies a frame for duplicate delivery: the two arrivals
// have independent lifetimes, so a pooled packet must not be shared.
func cloneFrame(f sal.NetFrame) sal.NetFrame {
	if pkt, ok := f.Payload.(*netstack.Packet); ok {
		return sal.NetFrame{Size: f.Size, Payload: pkt.Clone()}
	}
	return f
}
