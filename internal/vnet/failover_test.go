package vnet

// Resilient service discovery end-to-end: N replicated HTTP backends
// behind a consistent-hash balancer while faultinject-style failures kill
// one backend (crash-only DestroyDomain) and partition another (FlapLink).
// The experiments assert the SLO (availability, bounded retries, bounded
// re-convergence) and that the whole failover story — health probes,
// breaker ejections, DNS withdrawal, retry budgets — replays
// byte-identically under a fixed seed.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"

	"spin/internal/domain"
	"spin/internal/lb"
	"spin/internal/netstack"
	"spin/internal/sim"
)

// failoverLab is a star topology: nBackends replicated spin-httpd machines
// b0..bN-1, a client running the balancer + resilient dialer, and the DNS
// authority, all around one switch.
type failoverLab struct {
	in      *Internet
	bal     *lb.Balancer
	rd      *lb.ResilientDialer
	httpc   *http.Client
	names   []string
	servers map[string]*netstack.HTTPServer
}

func failoverStar(seed uint64, nBackends int, cfg lb.Config, policy lb.RetryPolicy) (*failoverLab, error) {
	edge := LinkModel{Latency: 200 * sim.Microsecond}
	bld := NewBuilder(seed)
	names := make([]string, nBackends)
	for i := range names {
		names[i] = fmt.Sprintf("b%d", i)
		bld.Machine(names[i], 0)
	}
	bld.Machine("client", 0).Machine("ns", 0).Switch("s0")
	for _, n := range names {
		bld.Link(n, "s0", edge)
	}
	bld.Link("client", "s0", edge).Link("ns", "s0", edge)
	in, err := bld.Build()
	if err != nil {
		return nil, err
	}
	if err := in.EnableDNS("ns"); err != nil {
		return nil, err
	}
	servers := make(map[string]*netstack.HTTPServer, nBackends)
	for _, n := range names {
		srv, err := netstack.NewHTTPServerOwned("httpd-"+n, in.Machine(n).Stack, 80,
			netstack.InKernelDelivery, netstack.ContentMap{"/": []byte("ok " + n)})
		if err != nil {
			return nil, err
		}
		servers[n] = srv
		// Crash-only: DestroyDomain("httpd-bN") also withdraws bN's DNS name.
		if err := in.WithdrawOnDestroy(n, "httpd-"+n); err != nil {
			return nil, err
		}
	}
	bal, err := in.Balancer("client", cfg, names...)
	if err != nil {
		return nil, err
	}
	rd, err := in.ResilientDialer("client", bal, policy)
	if err != nil {
		return nil, err
	}
	return &failoverLab{
		in:  in,
		bal: bal,
		rd:  rd,
		httpc: &http.Client{Transport: &http.Transport{
			DialContext:       rd.DialContext,
			DisableKeepAlives: true,
		}},
		names:   names,
		servers: servers,
	}, nil
}

// sleep advances virtual time from the client's blocking goroutine — the
// pacing between requests.
func (lab *failoverLab) sleep(d sim.Duration) {
	fired := false
	drv := lab.in.Driver()
	eng := lab.in.Machine("client").Engine
	drv.Run(func() { eng.After(d, func() { fired = true }) })
	drv.WaitUntil(func() bool { return fired })
}

// get performs one HTTP transaction through the resilient dialer. All the
// blocking calls happen on the calling goroutine — the byte-identical
// replay contract — unlike http.Client, whose split read/write loops
// interleave with the simulation at wall-clock whim.
func (lab *failoverLab) get() (string, error) {
	conn, err := lab.rd.Dial("tcp", "app.spin.test:80")
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET / HTTP/1.1\r\nHost: app.spin.test\r\nConnection: close\r\n\r\n"); err != nil {
		return "", err
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", errors.New(resp.Status)
	}
	return string(body), nil
}

// drive issues requests sequentially (one blocking goroutine: the replay
// contract), paced apart in virtual time, and counts successes.
func (lab *failoverLab) drive(requests int, pace sim.Duration) (ok, failed int) {
	for i := 0; i < requests; i++ {
		if _, err := lab.get(); err == nil {
			ok++
		} else {
			failed++
		}
		lab.sleep(pace)
	}
	return ok, failed
}

// counts renders per-backend service counts — the determinism experiment's
// second fingerprint (identical seeds must route identically).
func (lab *failoverLab) counts() string {
	s := ""
	for _, n := range lab.names {
		s += fmt.Sprintf("%s:served=%d,ok=%d;", n, lab.servers[n].Requests, lab.bal.Successes(n))
	}
	return s
}

// shutdown stops periodic health probing (else the engine queue never
// empties) and drains the topology.
func (lab *failoverLab) shutdown() {
	lab.in.Driver().Run(lab.bal.StopHealth)
	lab.in.Driver().Drain()
}

// resolveSync is a blocking LookupA over the topology driver.
func resolveSync(in *Internet, r *netstack.Resolver, host string) ([]netstack.IPAddr, error) {
	var (
		addrs []netstack.IPAddr
		rerr  error
		done  bool
	)
	drv := in.Driver()
	drv.Run(func() {
		r.LookupA(host, func(a []netstack.IPAddr, err error) { addrs, rerr, done = a, err, true })
	})
	drv.WaitUntil(func() bool { return done })
	return addrs, rerr
}

// The capstone experiment (EXPERIMENTS.md "failover"): 5 replicated
// backends; the run kills one (crash-only DestroyDomain, DNS withdrawn)
// and partitions another for 800ms. SLO: availability >= 99%, retries
// bounded by the budget the traffic earned, the killed backend ejected
// within 1s of the kill, and the partitioned backend back in the ring
// after it heals.
func TestFailoverSLOExperiment(t *testing.T) {
	lab, err := failoverStar(21, 5, lb.Config{}, lb.RetryPolicy{
		MaxAttempts:    4,
		AttemptTimeout: 300 * sim.Millisecond,
		BaseBackoff:    10 * sim.Millisecond,
		MaxBackoff:     100 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		requests = 300
		pace     = 10 * sim.Millisecond
		flapAt   = sim.Time(500 * sim.Millisecond)
		flapHeal = sim.Time(1300 * sim.Millisecond)
		killAt   = sim.Time(1800 * sim.Millisecond)
	)
	if err := lab.in.FlapLink("b2~s0", flapAt, flapHeal); err != nil {
		t.Fatal(err)
	}
	var killReport domain.DestroyReport
	lab.in.At(killAt, func() {
		killReport = lab.in.Machine("b1").DestroyDomain(domain.Identity{Name: "httpd-b1"})
	})
	// Sample convergence shortly after the kill, before any later breaker
	// activity (the dead backend's half-open probes re-open it forever).
	var ejectAt sim.Time
	lab.in.At(killAt.Add(sim.Duration(sim.Second)), func() { ejectAt = lab.bal.LastEjectAt() })

	lab.in.Driver().Run(lab.bal.StartHealth)
	ok, failed := lab.drive(requests, pace)
	lab.shutdown()

	// SLO: availability.
	if avail := float64(ok) / requests; avail < 0.99 {
		t.Errorf("availability %.2f%% (ok=%d failed=%d), SLO is >= 99%%", avail*100, ok, failed)
	}
	// SLO: no retry storm — retries bounded by what the budget allows
	// (initial half bucket + per-request earnings).
	reqs, attempts, retries, failovers := lab.rd.Stats()
	if reqs != requests {
		t.Errorf("requests = %d, want %d", reqs, requests)
	}
	maxRetries := int64(5 + 0.1*requests) // BudgetCap/2 to start + BudgetRatio per request
	if retries > maxRetries {
		t.Errorf("retries = %d, exceeds earned budget %d", retries, maxRetries)
	}
	if attempts != reqs+retries {
		t.Errorf("attempts = %d, want requests+retries = %d", attempts, reqs+retries)
	}
	if failovers == 0 {
		t.Error("no failovers despite a kill and a partition")
	}
	// SLO: re-convergence — the kill ejects b1 from the ring within 1s.
	if ejectAt < killAt {
		t.Fatalf("no ejection after the kill (lastEject %v, kill %v)", ejectAt, killAt)
	}
	if conv := ejectAt.Sub(killAt); conv > sim.Duration(sim.Second) {
		t.Errorf("re-convergence took %v, want <= 1s", conv)
	}
	// The partitioned backend healed and rejoined the ring.
	if rejoin := lab.bal.LastRejoinAt(); rejoin <= flapHeal {
		t.Errorf("partitioned backend never rejoined after heal (lastRejoin %v)", rejoin)
	}
	// Crash-only teardown withdrew the DNS record...
	if killReport.Reclaimed["vnet.dns"] != 1 {
		t.Errorf("kill reclaimed %v, want vnet.dns:1", killReport.Reclaimed)
	}
	if killReport.Reclaimed["net.tcp"] == 0 {
		t.Errorf("kill reclaimed %v, want the listener gone too", killReport.Reclaimed)
	}
	// ...so the dead name now resolves to NXDOMAIN, not a stale address.
	if _, err := resolveSync(lab.in, lab.in.Machine("client").Resolver, "b1.spin.test"); !errors.Is(err, netstack.ErrNameNotFound) {
		t.Errorf("resolving the killed backend: err = %v, want ErrNameNotFound", err)
	}
	// The survivors all took traffic.
	for _, n := range []string{"b0", "b2", "b3", "b4"} {
		if lab.bal.Successes(n) == 0 {
			t.Errorf("backend %s served nothing", n)
		}
	}
	// The EXPERIMENTS.md "failover" table is read off this line.
	t.Logf("ok=%d failed=%d attempts=%d retries=%d failovers=%d reconverge=%v ejections=%d reclaimed=%v",
		ok, failed, attempts, retries, failovers, ejectAt.Sub(killAt), lab.bal.Ejections(), killReport.Reclaimed)
}

// Satellite: failover is deterministic. The same seed replays the whole
// kill-one-backend run byte-identically — topology fingerprint AND
// per-backend request counts — while a different seed diverges.
func TestFailoverDeterministic(t *testing.T) {
	const (
		requests = 120
		pace     = 10 * sim.Millisecond
		killAt   = sim.Time(400 * sim.Millisecond)
	)
	run := func(seed uint64) (fp uint64, counts string, err error) {
		var lab *failoverLab
		fp, err = CheckReplay(1,
			func() (*Internet, error) {
				var e error
				lab, e = failoverStar(seed, 5, lb.Config{}, lb.RetryPolicy{AttemptTimeout: 300 * sim.Millisecond})
				return lab.in, e
			},
			func(in *Internet) error {
				in.At(killAt, func() {
					in.Machine("b1").DestroyDomain(domain.Identity{Name: "httpd-b1"})
				})
				in.Driver().Run(lab.bal.StartHealth)
				ok, _ := lab.drive(requests, pace)
				lab.shutdown()
				if ok == 0 {
					return errors.New("no request succeeded")
				}
				return nil
			})
		return fp, lab.counts(), err
	}

	fp1, counts1, err := run(77)
	if err != nil {
		t.Fatal(err)
	}
	fp2, counts2, err := run(77)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Errorf("same seed, different fingerprints: %#x vs %#x", fp1, fp2)
	}
	if counts1 != counts2 {
		t.Errorf("same seed, different per-backend counts:\n  %s\n  %s", counts1, counts2)
	}
	fp3, _, err := run(78)
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Error("different seed, identical fingerprint — seed not reaching the failover path")
	}
}

// Satellite regression: withdrawing a name (RemoveName, or DestroyDomain
// through WithdrawOnDestroy) must flush it from every internet-owned
// resolver, so the next resolve consults the authority and sees NXDOMAIN —
// bounded by the negative TTL — instead of serving the stale A record for
// its remaining positive TTL (60s).
func TestRemoveNameBoundsStaleness(t *testing.T) {
	lab, err := failoverStar(5, 2, lb.Config{}, lb.RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	in := lab.in
	res := in.Machine("client").Resolver
	if _, err := resolveSync(in, res, "b1.spin.test"); err != nil {
		t.Fatalf("initial resolve: %v", err)
	}
	q0 := in.Machine("ns").DNS.Stats().Queries

	removed := false
	in.Driver().Run(func() { removed = in.RemoveName("b1") })
	if !removed {
		t.Fatal("RemoveName did not find b1 in the zone")
	}
	// Immediately re-resolve: the positive cache entry had ~60s of TTL
	// left, but the flush forces an authoritative query -> NXDOMAIN.
	if _, err := resolveSync(in, res, "b1.spin.test"); !errors.Is(err, netstack.ErrNameNotFound) {
		t.Fatalf("re-resolve after withdrawal: err = %v, want ErrNameNotFound (not the stale A)", err)
	}
	q1 := in.Machine("ns").DNS.Stats().Queries
	if q1 != q0+1 {
		t.Errorf("authority queries %d -> %d, want exactly one more (flushed entry re-fetched)", q0, q1)
	}
	// Within the negative TTL the NXDOMAIN is served from cache.
	if _, err := resolveSync(in, res, "b1.spin.test"); !errors.Is(err, netstack.ErrNameNotFound) {
		t.Fatalf("negative-cached resolve: err = %v", err)
	}
	if q2 := in.Machine("ns").DNS.Stats().Queries; q2 != q1 {
		t.Errorf("authority queried again within the negative TTL (%d -> %d)", q1, q2)
	}
	// Re-pointing the name and waiting out the negative TTL restores it:
	// the stale window is bounded, in both directions, by the TTLs.
	if err := in.AddName("b1", "b0"); err != nil {
		t.Fatal(err)
	}
	lab.sleep(6 * sim.Second) // past the 5s default negative TTL
	addrs, err := resolveSync(in, res, "b1.spin.test")
	if err != nil {
		t.Fatalf("resolve after re-point + negative TTL: %v", err)
	}
	if len(addrs) != 1 || addrs[0] != in.IP("b0") {
		t.Errorf("re-pointed resolve = %v, want %v", addrs, in.IP("b0"))
	}
	lab.shutdown()
}

// Stock net/http still composes: an unmodified http.Client whose transport
// dials through the ResilientDialer fails over when a backend is killed
// mid-run, with passive outlier detection alone (no active probes, so the
// engine queue quiesces between requests the way net/http's split
// read/write goroutines require for replay).
func TestFailoverHTTPClientPassive(t *testing.T) {
	lab, err := failoverStar(33, 5, lb.Config{}, lb.RetryPolicy{AttemptTimeout: 300 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const killAt = sim.Time(100 * sim.Millisecond)
	lab.in.At(killAt, func() {
		lab.in.Machine("b2").DestroyDomain(domain.Identity{Name: "httpd-b2"})
	})
	ok := 0
	for i := 0; i < 40; i++ {
		resp, err := lab.httpc.Get("http://app.spin.test/")
		if err != nil {
			t.Errorf("request %d: %v", i, err)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusOK && len(body) > 0 {
			ok++
		}
		lab.sleep(20 * sim.Millisecond)
	}
	lab.shutdown()
	if ok != 40 {
		t.Errorf("ok = %d/40; failover through net/http lost requests", ok)
	}
	// The dead backend was ejected by passive detection alone.
	if lab.bal.Ejections() == 0 {
		t.Error("no ejections — passive outlier detection never tripped")
	}
	for _, be := range lab.rd.Report().Backends {
		if be.Name == "b2" && be.State == "closed" {
			t.Error("killed backend still closed (in ring) at end of run")
		}
	}
}

// BenchmarkFailoverReconverge measures the virtual time from a backend's
// crash-only kill to its ejection from the ring, driven purely by active
// health checks (no client traffic). failover-reconverge-ns is VIRTUAL —
// deterministic, gated tight by bench_smoke.sh.
func BenchmarkFailoverReconverge(b *testing.B) {
	const killAt = sim.Time(500 * sim.Millisecond)
	var virt sim.Duration
	for i := 0; i < b.N; i++ {
		lab, err := failoverStar(9, 5, lb.Config{}, lb.RetryPolicy{})
		if err != nil {
			b.Fatal(err)
		}
		lab.in.At(0, lab.bal.StartHealth)
		lab.in.At(killAt, func() {
			lab.in.Machine("b1").DestroyDomain(domain.Identity{Name: "httpd-b1"})
		})
		if !lab.in.RunUntil(func() bool { return lab.bal.LastEjectAt() >= killAt }, sim.Time(10*sim.Second)) {
			b.Fatal("never re-converged")
		}
		virt = lab.bal.LastEjectAt().Sub(killAt)
	}
	b.ReportMetric(float64(virt), "failover-reconverge-ns")
}
