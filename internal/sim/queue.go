package sim

import "container/heap"

// Event is a scheduled simulation callback.
type Event struct {
	At     Time
	Do     func()
	seq    int64 // tie-break: FIFO among same-time events
	index  int   // heap index; -1 once popped or cancelled
	cancel bool
}

// Cancel marks the event so it will be skipped when its time arrives.
func (e *Event) Cancel() { e.cancel = true }

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.cancel }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine couples a Clock with a time-ordered event queue. It is the heart of
// the discrete-event simulation: device interrupts, wire deliveries, timer
// expirations and preemption ticks are all Events.
type Engine struct {
	Clock *Clock
	queue eventHeap
	seq   int64
}

// NewEngine returns an engine with a fresh clock at time zero.
func NewEngine() *Engine {
	return &Engine{Clock: NewClock()}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.Clock.Now() }

// At schedules fn to run at absolute virtual time t. If t is in the past it
// runs at the current time (next Step).
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.Clock.Now() {
		t = e.Clock.Now()
	}
	ev := &Event{At: t, Do: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) *Event {
	return e.At(e.Clock.Now().Add(d), fn)
}

// Pending reports the number of live (uncancelled) queued events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancel {
			n++
		}
	}
	return n
}

// Step pops and runs the earliest event, advancing the clock to its time as
// idle time (the CPU was waiting for it). It returns false when the queue is
// empty. Cancelled events are discarded without running.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.Clock.AdvanceTo(ev.At)
		ev.Do()
		return true
	}
	return false
}

// Run steps until the queue drains or the clock passes deadline (0 means no
// deadline). It returns the number of events executed.
func (e *Engine) Run(deadline Time) int {
	n := 0
	for len(e.queue) > 0 {
		if deadline != 0 && e.queue[0].At > deadline {
			e.Clock.AdvanceTo(deadline)
			return n
		}
		if e.Step() {
			n++
		}
	}
	return n
}

// RunUntil steps until pred() is true, the queue drains, or the clock passes
// deadline. It reports whether pred became true.
func (e *Engine) RunUntil(pred func() bool, deadline Time) bool {
	for !pred() {
		if len(e.queue) == 0 {
			return pred()
		}
		if deadline != 0 && e.queue[0].At > deadline {
			e.Clock.AdvanceTo(deadline)
			return pred()
		}
		e.Step()
	}
	return true
}
