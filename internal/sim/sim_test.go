package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(100)
	if c.Now() != 100 {
		t.Errorf("Now = %v, want 100", c.Now())
	}
	if c.Busy() != 100 {
		t.Errorf("Busy = %v, want 100", c.Busy())
	}
	c.Sleep(50)
	if c.Now() != 150 {
		t.Errorf("after Sleep Now = %v, want 150", c.Now())
	}
	if c.Busy() != 100 {
		t.Errorf("Sleep must not accrue busy time; Busy = %v", c.Busy())
	}
}

func TestClockNegativeAdvanceIgnored(t *testing.T) {
	c := NewClock()
	c.Advance(-5)
	c.Sleep(-5)
	if c.Now() != 0 || c.Busy() != 0 {
		t.Errorf("negative durations must be ignored: now=%v busy=%v", c.Now(), c.Busy())
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.Advance(100)
	c.AdvanceTo(50) // past: no-op
	if c.Now() != 100 {
		t.Errorf("AdvanceTo past moved clock to %v", c.Now())
	}
	c.AdvanceTo(400)
	if c.Now() != 400 {
		t.Errorf("AdvanceTo future: %v want 400", c.Now())
	}
	if c.Busy() != 100 {
		t.Errorf("AdvanceTo must be idle time; busy=%v", c.Busy())
	}
}

func TestClockUtilization(t *testing.T) {
	c := NewClock()
	start := c.Now()
	c.Advance(30)
	c.Sleep(70)
	u := c.Utilization(start)
	if u < 0.299 || u > 0.301 {
		t.Errorf("utilization = %v, want 0.30", u)
	}
	c.ResetBusy()
	if c.Busy() != 0 {
		t.Errorf("ResetBusy left %v", c.Busy())
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(300, func() { order = append(order, 3) })
	e.At(100, func() { order = append(order, 1) })
	e.At(200, func() { order = append(order, 2) })
	n := e.Run(0)
	if n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 300 {
		t.Errorf("clock at %v, want 300", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events must run FIFO; order = %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(100, func() { ran = true })
	ev.Cancel()
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	e.Run(0)
	if ran {
		t.Error("cancelled event ran")
	}
}

func TestEngineDeadline(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(100, func() { ran++ })
	e.At(500, func() { ran++ })
	n := e.Run(200)
	if n != 1 || ran != 1 {
		t.Errorf("ran %d events (cb %d), want 1", n, ran)
	}
	if e.Now() != 200 {
		t.Errorf("clock should land on deadline: %v", e.Now())
	}
	// Remaining event still pending.
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestEngineAfterAndCascade(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.After(10, func() {
		hits = append(hits, e.Now())
		e.After(10, func() { hits = append(hits, e.Now()) })
	})
	e.Run(0)
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 20 {
		t.Errorf("hits = %v, want [10 20]", hits)
	}
}

func TestEnginePastEventRunsNow(t *testing.T) {
	e := NewEngine()
	e.Clock.Advance(100)
	var at Time
	e.At(50, func() { at = e.Now() })
	e.Run(0)
	if at != 100 {
		t.Errorf("past event ran at %v, want 100", at)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i*10), func() { count++ })
	}
	ok := e.RunUntil(func() bool { return count >= 3 }, 0)
	if !ok || count != 3 {
		t.Errorf("RunUntil stopped at count=%d ok=%v", count, ok)
	}
	ok = e.RunUntil(func() bool { return count >= 100 }, 0)
	if ok || count != 5 {
		t.Errorf("RunUntil on drained queue: count=%d ok=%v", count, ok)
	}
}

func TestNullSyscallComposition(t *testing.T) {
	// Table 2 row 2 calibration: SPIN 4µs, OSF/1 5µs, Mach 7µs.
	cases := []struct {
		p    *Profile
		want Duration
		tol  Duration
	}{
		{&SPINProfile, 4 * Microsecond, Microsecond / 2},
		{&OSF1Profile, 5 * Microsecond, Microsecond / 2},
		{&MachProfile, 7 * Microsecond, Microsecond / 2},
	}
	for _, c := range cases {
		got := c.p.NullSyscall()
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%s null syscall = %v, want %v±%v", c.p.Name, got, c.want, c.tol)
		}
	}
}

func TestHeapCollectorTrigger(t *testing.T) {
	clock := NewClock()
	h := NewHeap(clock, &SPINProfile)
	h.TriggerBytes = 1000
	h.Alloc(600)
	if h.Collections() != 0 {
		t.Fatal("collected too early")
	}
	h.Alloc(600)
	if h.Collections() != 1 {
		t.Fatalf("collections = %d, want 1", h.Collections())
	}
	if h.AllocatedSinceGC() != 0 {
		t.Errorf("young space not reset: %d", h.AllocatedSinceGC())
	}
}

func TestHeapCollectorDisabled(t *testing.T) {
	clock := NewClock()
	h := NewHeap(clock, &SPINProfile)
	h.TriggerBytes = 100
	h.CollectorEnabled = false
	for i := 0; i < 50; i++ {
		h.Alloc(64)
	}
	if h.Collections() != 0 {
		t.Errorf("disabled collector ran %d times", h.Collections())
	}
	// Forced collection still works.
	h.Collect()
	if h.Collections() != 1 {
		t.Errorf("forced collect did not run")
	}
}

func TestHeapLiveAccounting(t *testing.T) {
	h := NewHeap(NewClock(), &SPINProfile)
	h.Alloc(10)
	h.Alloc(10)
	h.Free()
	if h.Live() != 1 {
		t.Errorf("Live = %d, want 1", h.Live())
	}
	h.Free()
	h.Free() // extra Free must not underflow
	if h.Live() != 0 {
		t.Errorf("Live = %d, want 0", h.Live())
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced zero stream")
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(7)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(5)
	if err := quick.Check(func(n uint8) bool {
		m := int(n % 64)
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == m
	}, nil); err != nil {
		t.Error(err)
	}
}

// Property: for any sequence of scheduled times, events execute in
// non-decreasing time order and the clock never goes backwards.
func TestEngineMonotonicProperty(t *testing.T) {
	if err := quick.Check(func(times []uint16) bool {
		e := NewEngine()
		var executed []Time
		for _, tv := range times {
			tv := Time(tv)
			e.At(tv, func() { executed = append(executed, e.Now()) })
		}
		e.Run(0)
		if len(executed) != len(times) {
			return false
		}
		for i := 1; i < len(executed); i++ {
			if executed[i] < executed[i-1] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
