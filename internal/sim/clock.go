// Package sim provides the discrete-event simulation substrate on which the
// SPIN reproduction runs: a virtual clock, a time-ordered event queue, cost
// profiles calibrated to the paper's 133 MHz Alpha measurements, and a
// deterministic random number generator.
//
// Nothing in the simulated kernels reads wall-clock time. Every operation
// that would consume CPU cycles on the paper's hardware advances the virtual
// clock by a primitive cost drawn from a Profile. Composite results (table
// rows, figure series) therefore emerge from executing real code paths, not
// from hard-coded answers.
package sim

import (
	"fmt"
	"sync/atomic"
)

// Time is virtual time in nanoseconds since boot.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000
	Millisecond Duration = 1000 * 1000
	Second      Duration = 1000 * 1000 * 1000
)

// Micros reports d in fractional microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1000 }

// Millis reports d in fractional milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e6 }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// String renders t as a virtual-time stamp: the offset since boot in the
// same units as Duration, prefixed with "+" (trace records and reports
// print these; raw nanosecond counts are unreadable at profile scale).
func (t Time) String() string {
	if t < 0 {
		return fmt.Sprintf("-%v", Duration(-t))
	}
	return "+" + Duration(t).String()
}

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Add returns t advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Clock is the per-simulation virtual clock. A clock additionally tracks
// "busy" time separately from total elapsed time so that experiments such as
// Figure 6 can report CPU utilization: Advance accrues busy time, while
// Sleep (idle waiting, e.g. for a wire) does not.
//
// The clock is safe for concurrent use: the dispatcher's lock-free Raise
// path charges costs from many goroutines at once (the parallel dispatch
// benchmarks and race tests), so both accumulators are atomics and never
// guarded by a lock. Concurrent advances commute — total elapsed and busy
// time are exact regardless of interleaving. AdvanceTo and ResetBusy are
// meant for the single-threaded simulation engine; calling them concurrently
// with Advance is safe but their read-modify sequences are not atomic as a
// unit.
type Clock struct {
	now  atomic.Int64 // Time
	busy atomic.Int64 // Duration
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return Time(c.now.Load()) }

// Advance moves the clock forward by d and accounts it as busy (CPU) time.
// Negative durations are ignored.
func (c *Clock) Advance(d Duration) {
	if d <= 0 {
		return
	}
	c.now.Add(int64(d))
	c.busy.Add(int64(d))
}

// Sleep moves the clock forward by d without accruing busy time. It models
// waiting for an external resource (wire, disk platter) during which the CPU
// could do other work.
func (c *Clock) Sleep(d Duration) {
	if d <= 0 {
		return
	}
	c.now.Add(int64(d))
}

// AdvanceTo moves the clock to t if t is in the future, as idle time.
func (c *Clock) AdvanceTo(t Time) {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Busy returns accumulated busy (CPU) time.
func (c *Clock) Busy() Duration { return Duration(c.busy.Load()) }

// ResetBusy clears the busy-time accumulator, for utilization measurements
// over a window.
func (c *Clock) ResetBusy() { c.busy.Store(0) }

// Utilization reports busy time as a fraction of the window since 'start'.
func (c *Clock) Utilization(start Time) float64 {
	window := c.Now().Sub(start)
	if window <= 0 {
		return 0
	}
	u := float64(c.Busy()) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}
