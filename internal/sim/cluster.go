package sim

// Cluster coordinates several Engines — one per simulated machine — into a
// single causally consistent simulation. Each machine has its own clock;
// cross-machine interactions (wire deliveries) are scheduled on the
// destination engine at sender-local-time + delay. The cluster always steps
// the engine with the globally earliest pending event, the classic
// conservative strategy: an engine's new events are never earlier than its
// own clock, so stepping the minimum cannot violate causality.
type Cluster struct {
	engines []*Engine
}

// NewCluster returns an empty cluster.
func NewCluster(engines ...*Engine) *Cluster {
	return &Cluster{engines: engines}
}

// Add registers an engine with the cluster.
func (c *Cluster) Add(e *Engine) { c.engines = append(c.engines, e) }

// Engines returns the cluster's engines in registration order (the slice is
// shared; callers must not mutate it).
func (c *Cluster) Engines() []*Engine { return c.engines }

// next returns the engine with the earliest pending event, or nil.
func (c *Cluster) next() *Engine {
	var best *Engine
	var bestAt Time
	for _, e := range c.engines {
		at, ok := e.NextEventTime()
		if !ok {
			continue
		}
		if best == nil || at < bestAt {
			best, bestAt = e, at
		}
	}
	return best
}

// Step runs the globally earliest event. It returns false when every engine
// is drained.
func (c *Cluster) Step() bool {
	e := c.next()
	if e == nil {
		return false
	}
	return e.Step()
}

// Run steps until all engines drain or the earliest pending event is past
// deadline (0 means none). It returns the number of events executed.
func (c *Cluster) Run(deadline Time) int {
	n := 0
	for {
		e := c.next()
		if e == nil {
			return n
		}
		at, _ := e.NextEventTime()
		if deadline != 0 && at > deadline {
			return n
		}
		if e.Step() {
			n++
		}
	}
}

// RunUntil steps until pred() holds, everything drains, or deadline passes.
// It reports whether pred became true.
func (c *Cluster) RunUntil(pred func() bool, deadline Time) bool {
	for !pred() {
		e := c.next()
		if e == nil {
			return pred()
		}
		at, _ := e.NextEventTime()
		if deadline != 0 && at > deadline {
			return pred()
		}
		e.Step()
	}
	return true
}

// NextEventTime reports the time of the engine's earliest live event.
func (e *Engine) NextEventTime() (Time, bool) {
	for len(e.queue) > 0 {
		if e.queue[0].cancel {
			// Lazily discard cancelled heads.
			popCancelled(e)
			continue
		}
		return e.queue[0].At, true
	}
	return 0, false
}

func popCancelled(e *Engine) {
	// Only called when the queue head is cancelled: a manual heap pop
	// (container/heap's Pop without the interface indirection) that marks
	// the discarded event as off-heap.
	ev := e.queue[0]
	n := len(e.queue)
	e.queue.Swap(0, n-1)
	e.queue[n-1] = nil
	e.queue = e.queue[:n-1]
	ev.index = -1
	if n > 1 {
		siftDown(e.queue, 0)
	}
}

// siftDown restores the heap property from index i downward. It mirrors
// container/heap's down(); we keep a local copy so NextEventTime can discard
// cancelled heads without allocating.
func siftDown(h eventHeap, i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.Less(right, left) {
			smallest = right
		}
		if !h.Less(smallest, i) {
			return
		}
		h.Swap(i, smallest)
		i = smallest
	}
}
