package sim

// Rand is a small deterministic PRNG (xorshift64*) so simulations are
// reproducible without importing math/rand state that tests elsewhere might
// perturb. The zero value is invalid; use NewRand.
type Rand struct {
	state uint64
}

// NewRand returns a PRNG seeded with seed (0 is remapped to a fixed odd
// constant, since xorshift must not start at zero).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0,n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float in [0,1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0,n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
