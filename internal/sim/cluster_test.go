package sim

import "testing"

func TestClusterInterleavesByTime(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	var order []string
	a.At(10, func() { order = append(order, "a10") })
	b.At(5, func() { order = append(order, "b5") })
	a.At(20, func() { order = append(order, "a20") })
	b.At(15, func() { order = append(order, "b15") })
	c := NewCluster(a, b)
	n := c.Run(0)
	if n != 4 {
		t.Fatalf("ran %d", n)
	}
	want := []string{"b5", "a10", "b15", "a20"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestClusterCrossScheduling(t *testing.T) {
	// Ping-pong: machine A sends to B with 3ns wire delay; B replies.
	a, b := NewEngine(), NewEngine()
	c := NewCluster(a, b)
	var gotReplyAt Time
	a.At(0, func() {
		a.Clock.Advance(2) // A's send cost
		sendAt := a.Now()
		b.At(sendAt.Add(3), func() { // wire delay
			b.Clock.Advance(4) // B's processing
			replyAt := b.Now()
			a.At(replyAt.Add(3), func() {
				gotReplyAt = a.Now()
			})
		})
	})
	c.Run(0)
	// 2 (A send) + 3 (wire) + 4 (B proc) + 3 (wire) = 12.
	if gotReplyAt != 12 {
		t.Errorf("reply at %v, want 12", gotReplyAt)
	}
	if b.Now() != 9 {
		t.Errorf("B clock = %v, want 9", b.Now())
	}
}

func TestClusterDeadline(t *testing.T) {
	a := NewEngine()
	ran := 0
	a.At(10, func() { ran++ })
	a.At(100, func() { ran++ })
	c := NewCluster(a)
	c.Run(50)
	if ran != 1 {
		t.Errorf("ran %d, want 1", ran)
	}
}

func TestClusterRunUntil(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	count := 0
	a.At(10, func() { count++ })
	b.At(20, func() { count++ })
	a.At(30, func() { count++ })
	c := NewCluster(a, b)
	if !c.RunUntil(func() bool { return count == 2 }, 0) {
		t.Fatal("RunUntil failed")
	}
	if count != 2 {
		t.Errorf("count = %d", count)
	}
}

func TestNextEventTimeSkipsCancelled(t *testing.T) {
	e := NewEngine()
	ev1 := e.At(10, func() {})
	e.At(20, func() {})
	ev1.Cancel()
	at, ok := e.NextEventTime()
	if !ok || at != 20 {
		t.Errorf("NextEventTime = %v,%v want 20,true", at, ok)
	}
	e2 := NewEngine()
	ev := e2.At(5, func() {})
	ev.Cancel()
	if _, ok := e2.NextEventTime(); ok {
		t.Error("all-cancelled queue reported a next event")
	}
}

func TestNextEventTimeManyCancelled(t *testing.T) {
	e := NewEngine()
	var evs []*Event
	for i := 0; i < 100; i++ {
		evs = append(evs, e.At(Time(i), func() {}))
	}
	for i := 0; i < 99; i++ {
		evs[i].Cancel()
	}
	at, ok := e.NextEventTime()
	if !ok || at != 99 {
		t.Errorf("NextEventTime = %v,%v", at, ok)
	}
	ran := 0
	e.Run(0)
	_ = ran
	if e.Now() != 99 {
		t.Errorf("clock = %v", e.Now())
	}
}

// Cancelled-head discard across a multi-engine cluster: NextEventTime must
// skip (and physically pop) cancelled heads on every engine so the
// conservative scheduler picks the true global minimum, and the discarded
// events must be marked off-heap.
func TestClusterCancelledHeadsAcrossEngines(t *testing.T) {
	a, b, c := NewEngine(), NewEngine(), NewEngine()
	var order []string
	// a's earliest two events are cancelled; its first live event is at 30.
	ca1 := a.At(1, func() { order = append(order, "a1") })
	ca2 := a.At(2, func() { order = append(order, "a2") })
	a.At(30, func() { order = append(order, "a30") })
	// b's head is cancelled; live at 10.
	cb := b.At(3, func() { order = append(order, "b3") })
	b.At(10, func() { order = append(order, "b10") })
	// c is entirely cancelled.
	cc := c.At(4, func() { order = append(order, "c4") })
	for _, ev := range []*Event{ca1, ca2, cb, cc} {
		ev.Cancel()
	}

	// NextEventTime on each engine reports the earliest live event and
	// discards the cancelled heads as a side effect.
	if at, ok := a.NextEventTime(); !ok || at != 30 {
		t.Fatalf("a.NextEventTime = %v,%v want 30,true", at, ok)
	}
	if at, ok := b.NextEventTime(); !ok || at != 10 {
		t.Fatalf("b.NextEventTime = %v,%v want 10,true", at, ok)
	}
	if _, ok := c.NextEventTime(); ok {
		t.Fatal("all-cancelled engine reported a next event")
	}
	// Discarded events are marked off-heap (index -1), matching Step's
	// contract for popped events.
	for i, ev := range []*Event{ca1, ca2, cb, cc} {
		if ev.index != -1 {
			t.Errorf("cancelled event %d still has heap index %d", i, ev.index)
		}
	}

	n := NewCluster(a, b, c).Run(0)
	if n != 2 {
		t.Fatalf("cluster ran %d events, want 2", n)
	}
	if len(order) != 2 || order[0] != "b10" || order[1] != "a30" {
		t.Fatalf("order = %v, want [b10 a30]", order)
	}
}

// A head cancelled between scheduling and stepping must not stall Run: the
// cluster's next() keeps discarding until the queues drain.
func TestClusterCancelDuringRun(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	var later *Event
	ran := false
	a.At(5, func() { later.Cancel() })
	later = b.At(10, func() { ran = true })
	b.At(20, func() {})
	NewCluster(a, b).Run(0)
	if ran {
		t.Error("cancelled event ran")
	}
	if b.Now() != 20 {
		t.Errorf("b clock = %v, want 20", b.Now())
	}
}

func TestClusterEmpty(t *testing.T) {
	c := NewCluster()
	if c.Step() {
		t.Error("empty cluster stepped")
	}
	if c.Run(0) != 0 {
		t.Error("empty cluster ran events")
	}
}
