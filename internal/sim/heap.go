package sim

// Heap models the in-kernel Modula-3 heap with its trace-based,
// mostly-copying collector (Bartlett-style, per the paper). The model is
// about cost and safety accounting, not about real memory: allocations
// advance the virtual clock, and when the collector is enabled, crossing the
// trigger threshold charges a collection pause. Section 5.5's observation —
// fast paths avoid allocation, so disabling the collector changes nothing —
// is reproduced by construction: code on fast paths simply never calls
// Alloc.
type Heap struct {
	clock   *Clock
	profile *Profile

	// CollectorEnabled gates collection pauses; the paper's experiment
	// toggles this.
	CollectorEnabled bool

	// TriggerBytes is the live-allocation threshold that triggers a
	// collection cycle.
	TriggerBytes int64

	allocated   int64 // bytes allocated since last collection
	liveObjects int64
	collections int64
}

// NewHeap returns a heap accounting against clock with profile costs.
func NewHeap(clock *Clock, profile *Profile) *Heap {
	return &Heap{
		clock:            clock,
		profile:          profile,
		CollectorEnabled: true,
		TriggerBytes:     1 << 20, // 1MB young space
	}
}

// Alloc charges one general heap allocation of size bytes and runs a
// collection if the trigger is crossed while the collector is enabled.
func (h *Heap) Alloc(size int64) {
	h.clock.Advance(h.profile.HeapAllocCost)
	h.allocated += size
	h.liveObjects++
	if h.CollectorEnabled && h.allocated >= h.TriggerBytes {
		h.Collect()
	}
}

// Free models an extension explicitly dropping a reference. There is no
// explicit deallocation in the safe heap — memory is reclaimed only by the
// collector — so Free only adjusts liveness accounting.
func (h *Heap) Free() {
	if h.liveObjects > 0 {
		h.liveObjects--
	}
}

// Collect charges one collection cycle and resets the young-space
// accounting. It can be called directly (forced collection) even when the
// automatic trigger is disabled.
func (h *Heap) Collect() {
	h.clock.Advance(h.profile.GCPauseCost)
	h.allocated = 0
	h.collections++
}

// Collections reports how many collection cycles have run.
func (h *Heap) Collections() int64 { return h.collections }

// AllocatedSinceGC reports bytes allocated since the last collection.
func (h *Heap) AllocatedSinceGC() int64 { return h.allocated }

// Live reports the number of live objects per the model's accounting.
func (h *Heap) Live() int64 { return h.liveObjects }
